// Real-time, thread-per-shard transport.
//
// The same protocol state machines that run under the deterministic
// simulator run here on actual OS threads with wall-clock delays: each
// process owns one mailbox thread per delivery shard (IProcess::
// delivery_shards(), 1 for almost everything) that serializes its
// handlers, and a scheduler thread applies the configured delay model
// before routing envelopes to destination mailboxes. Used by the
// throughput/latency benches (E3) and the examples.
//
// Delivery is lock-free in the steady state: senders publish MailItems
// into the destination shard's bounded MPSC ring (runtime/mailbox.h) and
// the shard thread drains them in batches; mutexes appear only when a
// consumer parks idle or a full ring spills to the overflow deque.
//
// Locking map (statically checked under clang -Wthread-safety):
//   * each MailboxShard's internal mu guards its overflow deque and parks
//     its idle consumer (see runtime/mailbox.h for the wake handshake);
//   * sched_mu_ guards the delayed-delivery priority queue.
//   * rng_mu_ guards the delay-model RNG (senders draw delays concurrently).
// boxes_ itself is written only before start() and is read-only afterwards,
// so lookups need no lock.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/sync.h"
#include "common/types.h"
#include "crypto/auth.h"
#include "net/delay.h"
#include "net/transport.h"
#include "runtime/mailbox.h"

namespace bftreg::runtime {

struct RuntimeConfig {
  uint64_t seed{1};
  uint64_t master_secret{0x5eC4e7B17e5eCBA5ULL};
  /// Artificial per-message delay; null means deliver immediately
  /// (still asynchronously, through the destination mailbox).
  std::unique_ptr<net::DelayModel> delay;
};

class ThreadNetwork final : public net::Transport {
 public:
  explicit ThreadNetwork(RuntimeConfig config);
  ~ThreadNetwork() override;

  ThreadNetwork(const ThreadNetwork&) = delete;
  ThreadNetwork& operator=(const ThreadNetwork&) = delete;

  /// Registers a process before start(); caller retains ownership.
  void add_process(const ProcessId& pid, net::IProcess* process);

  /// Spawns mailbox threads and invokes on_start() on each of them.
  void start();

  /// Drains mailboxes and joins all threads.
  ///
  /// Contract: idempotent -- only the first call (the winner of the
  /// `running_` exchange) performs the shutdown; later or concurrent calls
  /// return immediately without waiting for it to finish. Must be called
  /// from an *external* thread (the owner or any client thread), never from
  /// a mailbox or scheduler thread: stop() joins those threads and would
  /// self-deadlock. Asserted in debug builds.
  void stop();

  void mark_crashed(const ProcessId& pid);

  // --- live restart (dynamic membership) ----------------------------------
  //
  // Crash/rejoin of a single process while the network keeps running:
  //   mark_crashed(pid)    -- stop delivering (items are dropped at handle
  //                           time, so a crash takes effect mid-batch);
  //   quiesce(pid)         -- wait until no mailbox thread is inside the old
  //                           process's handler (safe point for WAL replay);
  //   replace_process(pid) -- atomically swap in the recovered process
  //                           object (same shard count); stale backlog items
  //                           deliver to the NEW process, which is just the
  //                           network being slow;
  //   revive(pid)          -- resume delivery.
  // The caller owns both process objects and must keep the old one alive
  // until stop() (mailbox threads may still hold its pointer in in-flight
  // MailItems; they never dereference it post-swap, but harnesses keep a
  // graveyard anyway for clarity).

  /// Blocks until every mailbox thread of `pid` has left its handler.
  /// Call after mark_crashed(pid); the crashed flag keeps new items from
  /// entering handlers, so this is a one-way barrier, not a lull.
  void quiesce(const ProcessId& pid);

  /// Swaps the process object handling `pid`'s mailbox. The replacement
  /// must want the same number of delivery shards.
  void replace_process(const ProcessId& pid, net::IProcess* process);

  /// Clears the crashed flag; delivery to `pid` resumes.
  void revive(const ProcessId& pid);

  // --- net::Transport -----------------------------------------------------
  void send_payload(const ProcessId& from, const ProcessId& to,
                    Payload payload) override;
  TimeNs now() const override;
  void post(const ProcessId& pid, std::function<void()> fn) override;
  void post_after(const ProcessId& pid, TimeNs delta,
                  std::function<void()> fn) override;
  net::NetworkMetrics& metrics() override { return metrics_; }

 private:
  struct Mailbox {
    /// Atomic so replace_process can swap in a recovered server while
    /// mailbox threads run; handlers load it per item (acquire pairs with
    /// the swap's release, ordering the new object's construction first).
    std::atomic<net::IProcess*> process{nullptr};
    std::atomic<bool> crashed{false};
    // One ring + consumer thread per delivery shard; sized at add_process
    // from process->delivery_shards() and immutable afterwards.
    std::vector<std::unique_ptr<MailboxShard>> shards;
    /// Handler-entry tokens, one per shard (heap-separate: no false
    /// sharing with the hot ring). A thread increments seq_cst BEFORE the
    /// crashed check, so quiesce()'s crashed-then-count order is a sound
    /// Dekker handshake: once every counter reads 0, no handler of the old
    /// process is running or can start.
    std::vector<std::unique_ptr<std::atomic<int>>> active;
    std::vector<std::thread> threads;
  };

  /// A delayed delivery (envelope) or a delayed task (post_after timer);
  /// `fn` non-null marks a task, which is enqueued to `pid`'s mailbox when
  /// due instead of being routed as a message.
  struct Timed {
    TimeNs due;
    uint64_t seq;
    net::Envelope env;
    ProcessId pid;
    std::function<void()> fn;
    bool operator>(const Timed& o) const {
      return due != o.due ? due > o.due : seq > o.seq;
    }
  };

  void mailbox_loop(Mailbox* box, MailboxShard* shard, std::atomic<int>* active);
  void scheduler_loop() EXCLUDES(sched_mu_);
  void enqueue(Mailbox* box, uint32_t shard, MailItem item);
  void route(net::Envelope env);
  Mailbox* find(const ProcessId& pid) const;
  bool on_internal_thread() const;

  crypto::Authenticator auth_;
  std::unique_ptr<net::DelayModel> delay_;
  net::NetworkMetrics metrics_;
  std::unordered_map<ProcessId, std::unique_ptr<Mailbox>> boxes_;
  // Dense per-role index over boxes_ (role x index -> Mailbox*), built by
  // add_process and immutable after start(): the per-message find() on the
  // send/route hot path is two array loads instead of a hash probe.
  std::vector<Mailbox*> by_role_[3];

  Mutex sched_mu_;
  CondVar sched_cv_;
  std::priority_queue<Timed, std::vector<Timed>, std::greater<>> sched_queue_
      GUARDED_BY(sched_mu_);
  std::thread sched_thread_;

  // send() draws a delay under rng_mu_ and then (after releasing it)
  // schedules under sched_mu_; the declared order keeps any future nesting
  // in that direction -- tools/bftreg_lint flags inversions statically.
  Mutex rng_mu_ ACQUIRED_BEFORE(sched_mu_);
  Rng rng_ GUARDED_BY(rng_mu_);

  std::atomic<uint64_t> next_seq_{0};
  std::atomic<bool> running_{false};
  std::chrono::steady_clock::time_point epoch_;
};

/// Runs a client operation on its mailbox thread and blocks the calling
/// thread until the protocol's completion callback fires. `start_fn`
/// receives a `done` closure it must arrange to be called exactly once.
class BlockingInvoker {
 public:
  explicit BlockingInvoker(ThreadNetwork& net) : net_(net) {}

  void run(const ProcessId& pid,
           const std::function<void(std::function<void()> done)>& start_fn);

 private:
  ThreadNetwork& net_;
};

}  // namespace bftreg::runtime
