// Small statistics helpers used by the benchmark harness and tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bftreg {

/// Streaming mean/variance (Welford) plus min/max.
class OnlineStats {
 public:
  void add(double x);

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  uint64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Sample collector with exact percentiles (sorts on demand).
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  void clear() {
    values_.clear();
    sorted_ = false;
  }

  size_t count() const { return values_.size(); }
  double mean() const;
  /// p in [0, 100]; nearest-rank percentile. Returns 0 on empty.
  double percentile(double p) const;
  double min() const { return percentile(0); }
  double median() const { return percentile(50); }
  double p99() const { return percentile(99); }
  double max() const { return percentile(100); }

  const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_{false};
};

/// Fixed-width text table used by the bench binaries to print the
/// paper-claim reproductions in a uniform format.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> row);
  std::string render() const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bftreg
