// Write-back reader: BSR upgraded to atomic reads (library extension).
//
// The paper stops at safety/regularity because *fast* MWMR atomicity is
// impossible (Georgiou et al. [13], cited in Section VI) -- but slow
// atomicity is not. This reader applies the classic ABD write-back idea
// to BSR: phase one is Fig. 2's witness-verified get-data; phase two
// writes the chosen (tag, value) pair back to n-f servers before
// returning. The write-back forces every subsequent read's quorum to
// intersect it in >= f+1 honest servers, so no later read can return an
// older write: cross-reader new/old inversion -- the one freedom
// regularity still allowed (see checker/consistency.h) -- is gone.
//
// Costs exactly what the impossibility theorem says it must: the read is
// two rounds, not one. bench_read_latency and bench_regularity put the
// price next to what it buys.
#pragma once

#include <functional>
#include <map>

#include "net/transport.h"
#include "registers/bsr_reader.h"
#include "registers/config.h"
#include "registers/messages.h"
#include "registers/quorum.h"

namespace bftreg::registers {

class WriteBackReader final : public net::IProcess {
 public:
  using Callback = std::function<void(const ReadResult&)>;

  WriteBackReader(ProcessId self, SystemConfig config, net::Transport* transport,
                  uint32_t object = 0);

  void start_read(Callback callback);
  void on_message(const net::Envelope& env) override;

  bool busy() const { return phase_ != Phase::kIdle; }
  const ProcessId& id() const { return self_; }
  const Tag& local_tag() const { return local_.tag; }

 private:
  enum class Phase { kIdle, kGetData, kWriteBack };

  void on_data_resp(const ProcessId& from, const RegisterMessage& msg);
  void on_ack(const ProcessId& from, const RegisterMessage& msg);
  void begin_write_back();
  void finish(bool fresh);

  const ProcessId self_;
  const SystemConfig config_;
  net::Transport* const transport_;
  const uint32_t object_;

  TaggedValue local_;

  Phase phase_{Phase::kIdle};
  uint64_t op_id_{0};
  QuorumTracker responded_;
  std::map<ProcessId, TaggedValue> responses_;
  bool fresh_{false};
  Callback callback_;
  TimeNs invoked_at_{0};
};

}  // namespace bftreg::registers
