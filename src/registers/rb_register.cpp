#include "registers/rb_register.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/serde.h"

namespace bftreg::registers {

namespace {

/// RB blob: the (writer, op_id, object, tag, value) tuple a PUT-DATA
/// carries.
Bytes encode_blob(const ProcessId& writer, uint64_t op_id, uint32_t object,
                  const Tag& tag, const Bytes& value) {
  Serializer s;
  s.put_process_id(writer);
  s.put_u64(op_id);
  s.put_u32(object);
  s.put_tag(tag);
  s.put_bytes(value);
  return s.take();
}

struct Blob {
  ProcessId writer;
  uint64_t op_id;
  uint32_t object;
  Tag tag;
  Bytes value;
};

std::optional<Blob> decode_blob(const Bytes& bytes) {
  Deserializer d(bytes);
  Blob b;
  b.writer = d.get_process_id();
  b.op_id = d.get_u64();
  b.object = d.get_u32();
  b.tag = d.get_tag();
  b.value = d.get_bytes();
  if (!d.done()) return std::nullopt;
  return b;
}

}  // namespace

// --------------------------------------------------------------- RbServer

RbServer::RbServer(ProcessId self, SystemConfig config, net::Transport* transport,
                   Bytes initial)
    : self_(self),
      config_(std::move(config)),
      transport_(transport),
      initial_(std::move(initial)),
      store_(initial_, StorePolicy::kAll, config_.max_history) {
  assert(config_.valid_for_rb());
  stored_bytes_ += store_.materialize(0).second;
  bracha_ = std::make_unique<broadcast::BrachaPeer>(
      self_, config_.servers(), config_.f,
      [this](const ProcessId& to, Bytes frame) {
        transport_->send(self_, to, std::move(frame));
      },
      [this](Bytes blob) { on_rb_deliver(blob); });
}

std::vector<TaggedValue> RbServer::store(uint32_t object) const {
  std::vector<TaggedValue> out;
  const auto* rec = store_.find(object);
  if (rec == nullptr) {
    out.push_back(TaggedValue{Tag::initial(), initial_});
    return out;
  }
  out.reserve(rec->log.size());
  for (const LogEntry& e : rec->log) {
    const BytesView v = e.val.view();
    out.push_back(TaggedValue{e.tag, Bytes(v.begin(), v.end())});
  }
  return out;
}

void RbServer::reply(const ProcessId& to, const RegisterMessage& msg) {
  transport_->send(self_, to, msg.encode());
}

void RbServer::on_message(const net::Envelope& env) {
  // Server-to-server Bracha frames first (they are not RegisterMessages).
  if (env.from.is_server() && bracha_->on_frame(env.from, env.payload)) return;

  auto msg = RegisterMessage::parse(env.payload);
  if (!msg) return;
  switch (msg->type) {
    case MsgType::kQueryTag: {
      RegisterMessage resp;
      resp.type = MsgType::kTagResp;
      resp.op_id = msg->op_id;
      resp.object = msg->object;
      const auto* rec = store_.find(msg->object);
      resp.tag = rec != nullptr ? rec->log.newest().tag : Tag::initial();
      reply(env.from, resp);
      break;
    }
    case MsgType::kPutData:
      handle_put_data(env.from, *msg);
      break;
    case MsgType::kQueryData:
      handle_query(env.from, *msg);
      break;
    case MsgType::kReadDone: {
      auto it = subscribers_.find(env.from);
      if (it != subscribers_.end() && it->second.first <= msg->op_id) {
        subscribers_.erase(it);
      }
      break;
    }
    default:
      break;
  }
}

void RbServer::handle_put_data(const ProcessId& from, const RegisterMessage& msg) {
  if (!from.is_client()) return;  // writers only; servers speak Bracha
  // The writer's PUT-DATA is the SEND step of the reliable broadcast; the
  // apply + ACK happen in on_rb_deliver once ECHO/READY complete.
  bracha_->on_external_send(
      encode_blob(from, msg.op_id, msg.object, msg.tag, msg.value));
}

void RbServer::on_rb_deliver(const Bytes& blob) {
  auto b = decode_blob(blob);
  if (!b) return;

  const auto res = store_.apply(b->object, b->tag, b->value);
  stored_bytes_ = static_cast<size_t>(static_cast<long long>(stored_bytes_) +
                                      res.bytes_delta);
  const bool added = res.added;
  if (added) store_.publish(*res.rec);

  RegisterMessage ack;
  ack.type = MsgType::kAck;
  ack.op_id = b->op_id;
  ack.object = b->object;
  ack.tag = b->tag;
  reply(b->writer, ack);

  if (added) {
    RegisterMessage update;
    update.type = MsgType::kDataUpdate;
    update.object = b->object;
    update.tag = b->tag;
    update.value = b->value;
    for (const auto& [reader, sub] : subscribers_) {
      if (sub.second != b->object) continue;
      update.op_id = sub.first;
      reply(reader, update);
    }
  }
}

void RbServer::handle_query(const ProcessId& from, const RegisterMessage& msg) {
  subscribers_[from] = {msg.op_id, msg.object};
  RegisterMessage resp;
  resp.type = MsgType::kDataResp;
  resp.op_id = msg.op_id;
  resp.object = msg.object;
  // Answer for unknown objects as the lazy initialization without
  // materializing state (a reader probing random ids must not balloon us).
  if (const auto* rec = store_.find(msg.object)) {
    const LogEntry& newest = rec->log.newest();
    resp.tag = newest.tag;
    const BytesView v = newest.val.view();
    resp.value.assign(v.begin(), v.end());
  } else {
    resp.tag = Tag::initial();
    resp.value = initial_;
  }
  reply(from, resp);
}

// --------------------------------------------------------------- RbReader

RbReader::RbReader(ProcessId self, SystemConfig config,
                   net::Transport* transport, uint32_t object)
    : self_(self),
      config_(std::move(config)),
      transport_(transport),
      object_(object),
      responded_(config_.quorum()) {
  local_ = TaggedValue{Tag::initial(), config_.initial_value};
}

void RbReader::start_read(Callback callback) {
  assert(!reading_ && "at most one operation per client");
  reading_ = true;
  saw_update_ = false;
  callback_ = std::move(callback);
  invoked_at_ = transport_->now();
  ++op_id_;
  responded_.reset();
  max_tag_.clear();
  vouchers_.clear();

  RegisterMessage query;
  query.type = MsgType::kQueryData;
  query.op_id = op_id_;
  query.object = object_;
  const Bytes payload = query.encode();
  for (uint32_t i = 0; i < config_.n; ++i) {
    transport_->send(self_, ProcessId::server(i), payload);
  }
}

void RbReader::on_message(const net::Envelope& env) {
  if (!reading_ || !env.from.is_server()) return;
  auto msg = RegisterMessage::parse(env.payload);
  if (!msg || msg->op_id != op_id_ || msg->object != object_) return;
  switch (msg->type) {
    case MsgType::kDataResp:
      responded_.add(env.from);
      note_pair(env.from, TaggedValue{msg->tag, std::move(msg->value)});
      break;
    case MsgType::kDataUpdate:
      saw_update_ = true;
      note_pair(env.from, TaggedValue{msg->tag, std::move(msg->value)});
      break;
    default:
      return;
  }
  try_complete();
}

void RbReader::note_pair(const ProcessId& from, const TaggedValue& pair) {
  auto [it, inserted] = max_tag_.emplace(from, pair.tag);
  if (!inserted) it->second = std::max(it->second, pair.tag);
  vouchers_[pair].insert(from);
}

void RbReader::try_complete() {
  if (!responded_.reached()) return;

  // H = (f+1)-th largest per-server newest tag. Robust both ways: at most
  // f Byzantine tags can sit above it (so H is at most the largest honest
  // tag and waiting for it terminates), and at least f+1 servers claim a
  // tag >= H (so one honest server really holds something >= H).
  std::vector<Tag> tags;
  tags.reserve(max_tag_.size());
  for (const auto& [server, tag] : max_tag_) tags.push_back(tag);
  std::sort(tags.begin(), tags.end(), std::greater<>());
  const Tag h = tags[std::min(tags.size() - 1, config_.f)];

  const TaggedValue* best = nullptr;
  for (const auto& [pair, voters] : vouchers_) {
    if (voters.size() >= config_.witness_threshold() && pair.tag >= h) {
      best = &pair;  // ascending map: last qualifying pair has highest tag
    }
  }
  if (best == nullptr) return;  // keep waiting for DATA-UPDATE pushes

  bool fresh = false;
  if (best->tag > local_.tag) {
    local_ = *best;
    fresh = true;
  }
  finish(local_, fresh);
}

void RbReader::finish(const TaggedValue& chosen, bool fresh) {
  reading_ = false;

  RegisterMessage done;
  done.type = MsgType::kReadDone;
  done.op_id = op_id_;
  done.object = object_;
  const Bytes payload = done.encode();
  for (uint32_t i = 0; i < config_.n; ++i) {
    transport_->send(self_, ProcessId::server(i), payload);
  }

  ReadResult result;
  result.value = chosen.value;
  result.tag = chosen.tag;
  result.fresh = fresh;
  result.invoked_at = invoked_at_;
  result.completed_at = transport_->now();
  result.rounds = saw_update_ ? 2 : 1;
  Callback cb = std::move(callback_);
  callback_ = nullptr;
  if (cb) cb(result);
}

}  // namespace bftreg::registers
