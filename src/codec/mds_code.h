// Value-level MDS codec: the paper's Phi / Phi^{-1} (Section IV-A).
//
// Splits a value into k elements, produces n coded elements (one per
// server), and reconstructs the value from any set of received elements
// containing at least k + 2e consistent ones, tolerating up to e erroneous
// elements. The BCSR parameterization is k = n - 5f, giving e <= 2f error
// tolerance with m = n - f responses, exactly the budget Lemma 4 consumes.
//
// Wire format: the value length is prepended to the payload before
// encoding, so decoding is self-delimiting; a 32-bit checksum of the value
// is included as well, which lets `decode` reject the (concurrency-induced)
// case where stripes decode to a mix of two different writes.
//
// Striping layout (shard-major): the padded payload
//   [len u32][checksum u32][value][zero pad]          (stripes * k bytes)
// is cut into k contiguous shards of `stripes` bytes each; data symbol j of
// stripe s is payload[j * stripes + s]. With shards contiguous, encoding an
// element is k coeff x shard region products (gf_region.h) instead of a
// per-stripe column-major scatter, and the erasure-decode fast path applies
// the precomputed interpolation matrix as region ops over whole received
// elements. Berlekamp-Welch remains the per-stripe slow path.
#pragma once

#include <optional>
#include <vector>

#include "codec/rs.h"
#include "common/types.h"

namespace bftreg::codec {

class MdsCode {
 public:
  /// Requires 1 <= k <= n <= 255.
  explicit MdsCode(size_t n, size_t k,
                   RsLayout layout = RsLayout::kCoefficients);

  /// The paper's BCSR code: k = n - 5f (requires n >= 5f + 1).
  static MdsCode for_bcsr(size_t n, size_t f,
                          RsLayout layout = RsLayout::kCoefficients);

  size_t n() const { return rs_.n(); }
  size_t k() const { return rs_.k(); }
  RsLayout layout() const { return rs_.layout(); }

  /// Header prepended to the value before striping: u32 length + u32
  /// checksum (little-endian). Public so differential tests can rebuild the
  /// padded payload independently.
  static constexpr size_t kHeaderBytes = 8;

  /// Coded-element size (bytes) for a value of `value_size` bytes; every
  /// element has this same size. Approximately value_size / k.
  size_t element_size(size_t value_size) const;

  /// Encodes `value` into n coded elements.
  std::vector<Bytes> encode(const Bytes& value) const;

  /// Decodes from per-server elements (index = server position; nullopt =
  /// no response / erasure). Tolerates up to floor((m - k) / 2) erroneous
  /// elements among the m same-sized present ones. Returns nullopt if no
  /// consistent value can be reconstructed.
  std::optional<Bytes> decode(const std::vector<std::optional<Bytes>>& elements) const;

 private:
  struct Group;

  std::optional<Bytes> decode_group_impl(
      const Group* g, const std::vector<std::optional<Bytes>>& elements) const;
  std::optional<Bytes> finish(const std::vector<uint8_t>& payload) const;

  RsCode rs_;
};

}  // namespace bftreg::codec
