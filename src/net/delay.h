// Message delay models.
//
// The paper's system model is fully asynchronous: channels are reliable but
// may reorder arbitrarily, and there is no bound on delay (Section II-A).
// A `DelayModel` turns that nondeterminism into a reproducible, seeded
// distribution. Per-link overrides and a payload-inspecting hook allow the
// lower-bound proof schedules (Thms. 3, 5, 6) to be scripted exactly: "this
// PUT-DATA is fast to s_i, slow to everyone else".
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "common/rng.h"
#include "common/types.h"
#include "net/envelope.h"

namespace bftreg::net {

class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Latency to assign to this envelope. `rng` is the transport's seeded
  /// stream, so equal seeds give equal schedules.
  virtual TimeNs delay(const Envelope& env, Rng& rng) = 0;
};

/// Constant one-way delay.
class FixedDelay final : public DelayModel {
 public:
  explicit FixedDelay(TimeNs d) : d_(d) {}
  TimeNs delay(const Envelope&, Rng&) override { return d_; }

 private:
  TimeNs d_;
};

/// Uniform in [lo, hi].
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(TimeNs lo, TimeNs hi) : lo_(lo), hi_(hi) {}
  TimeNs delay(const Envelope&, Rng& rng) override {
    return rng.uniform_range(lo_, hi_);
  }

 private:
  TimeNs lo_;
  TimeNs hi_;
};

/// min + Exp(mean); the classic LAN tail model.
class ExponentialDelay final : public DelayModel {
 public:
  ExponentialDelay(TimeNs min, double mean_extra) : min_(min), mean_(mean_extra) {}
  TimeNs delay(const Envelope&, Rng& rng) override {
    return min_ + static_cast<TimeNs>(rng.exponential(mean_));
  }

 private:
  TimeNs min_;
  double mean_;
};

/// Heavy-tailed delays: min + LogNormal(mu, sigma).
class LognormalDelay final : public DelayModel {
 public:
  LognormalDelay(TimeNs min, double mu, double sigma)
      : min_(min), mu_(mu), sigma_(sigma) {}
  TimeNs delay(const Envelope&, Rng& rng) override {
    return min_ + static_cast<TimeNs>(rng.lognormal(mu_, sigma_));
  }

 private:
  TimeNs min_;
  double mu_;
  double sigma_;
};

/// Wraps a base model with (a) per-directed-link overrides and (b) an
/// optional payload-inspecting hook. The hook wins over link overrides,
/// which win over the base model. This is how the impossibility-proof
/// executions are scripted without touching protocol code.
class ScriptedDelay final : public DelayModel {
 public:
  using Hook = std::function<std::optional<TimeNs>(const Envelope&)>;

  explicit ScriptedDelay(std::unique_ptr<DelayModel> base) : base_(std::move(base)) {}

  void set_link_delay(const ProcessId& from, const ProcessId& to, TimeNs d) {
    links_[{from, to}] = d;
  }
  void clear_link_delay(const ProcessId& from, const ProcessId& to) {
    links_.erase({from, to});
  }
  void clear_all_links() { links_.clear(); }

  void set_hook(Hook hook) { hook_ = std::move(hook); }
  void clear_hook() { hook_ = nullptr; }

  TimeNs delay(const Envelope& env, Rng& rng) override {
    if (hook_) {
      if (auto d = hook_(env)) return *d;
    }
    auto it = links_.find({env.from, env.to});
    if (it != links_.end()) return it->second;
    return base_->delay(env, rng);
  }

 private:
  std::unique_ptr<DelayModel> base_;
  std::map<std::pair<ProcessId, ProcessId>, TimeNs> links_;
  Hook hook_;
};

}  // namespace bftreg::net
