#include "workload/workload.h"

#include <cassert>

namespace bftreg::workload {

WorkloadGenerator::WorkloadGenerator(WorkloadOptions options)
    : options_(options), rng_(options.seed) {}

Op WorkloadGenerator::next() {
  assert(!done());
  ++emitted_;
  Op op;
  op.is_read = rng_.bernoulli(options_.read_ratio);
  if (!op.is_read) {
    op.value = make_value(options_.seed, write_counter_++, options_.value_size);
  }
  return op;
}

std::vector<Op> WorkloadGenerator::all() {
  std::vector<Op> ops;
  ops.reserve(remaining());
  while (!done()) ops.push_back(next());
  return ops;
}

Bytes make_value(uint64_t seed, uint64_t index, size_t size) {
  Bytes out(size);
  uint64_t h = fnv1a64(&index, sizeof(index), seed ^ 0x77777777u);
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<uint8_t>(h >> ((i % 8) * 8));
    if (i % 8 == 7) h = fnv1a64(&h, sizeof(h));
  }
  return out;
}

}  // namespace bftreg::workload
