// Arithmetic in GF(2^8).
//
// Field for the [n, k] Reed-Solomon MDS code of Section IV ("we use a
// linear [n,k] MDS erasure code over a finite field F_q"). GF(2^8) keeps
// symbols byte-sized and supports up to n = 255 servers, far beyond any
// deployment the paper contemplates. The representation uses the standard
// AES-adjacent primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D).
#pragma once

#include <cstdint>

namespace bftreg::codec::gf {

/// Addition and subtraction coincide (characteristic 2).
constexpr uint8_t add(uint8_t a, uint8_t b) { return a ^ b; }
constexpr uint8_t sub(uint8_t a, uint8_t b) { return a ^ b; }

/// Multiplication via log/antilog tables.
uint8_t mul(uint8_t a, uint8_t b);

/// Multiplicative inverse; precondition a != 0.
uint8_t inv(uint8_t a);

/// a / b; precondition b != 0.
uint8_t div(uint8_t a, uint8_t b);

/// a^power (power >= 0); 0^0 == 1 by convention.
uint8_t pow(uint8_t a, unsigned power);

/// The generator element g = 0x02; exp_table(i) = g^i for i in [0, 254].
uint8_t exp_table(unsigned i);

/// Discrete log base g; precondition a != 0.
uint8_t log_table(uint8_t a);

}  // namespace bftreg::codec::gf
