// Unit fixture for tools/bftreg_lint: each banned pattern is demonstrated
// on a synthetic source, and each waiver/exemption path is exercised.
#include "tools/lint_rules.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

namespace bftreg::lint {
namespace {

bool has_rule(const std::vector<Violation>& vs, const std::string& rule) {
  return std::any_of(vs.begin(), vs.end(),
                     [&](const Violation& v) { return v.rule == rule; });
}

TEST(LintRawThread, FlaggedOutsideRuntimeDirs) {
  const std::string src = "#include <thread>\nstd::thread t([]{});\n";
  const auto vs = lint_content("src/registers/bsr_reader.cpp", src);
  ASSERT_TRUE(has_rule(vs, "raw-thread"));
  EXPECT_EQ(vs.front().line, 2);
}

TEST(LintRawThread, AllowedInRuntimeSocknetHarness) {
  const std::string src = "std::thread t([]{});\n";
  EXPECT_FALSE(has_rule(lint_content("src/runtime/thread_network.cpp", src),
                        "raw-thread"));
  EXPECT_FALSE(
      has_rule(lint_content("src/socknet/tcp_network.cpp", src), "raw-thread"));
  EXPECT_FALSE(
      has_rule(lint_content("src/harness/thread_cluster.cpp", src), "raw-thread"));
}

TEST(LintRawThread, CommentedMentionNotFlagged) {
  const std::string src = "// std::thread is banned here\nint x;\n";
  EXPECT_FALSE(has_rule(lint_content("src/registers/server.cpp", src), "raw-thread"));
}

TEST(LintDetach, FlaggedEverywhereEvenRuntime) {
  const std::string src = "std::thread t([]{});\nt.detach();\n";
  const auto vs = lint_content("src/runtime/thread_network.cpp", src);
  ASSERT_TRUE(has_rule(vs, "detach"));
}

TEST(LintRawRandom, RandAndRandomDeviceFlagged) {
  EXPECT_TRUE(has_rule(
      lint_content("src/workload/workload.cpp", "int x = rand();\n"), "raw-random"));
  EXPECT_TRUE(has_rule(
      lint_content("src/workload/workload.cpp", "srand(42);\n"), "raw-random"));
  EXPECT_TRUE(
      has_rule(lint_content("src/workload/workload.cpp", "std::random_device rd;\n"),
               "raw-random"));
}

TEST(LintRawRandom, RngHeaderExemptAndIdentifiersNotFlagged) {
  EXPECT_FALSE(has_rule(
      lint_content("src/common/rng.h", "std::random_device rd;\n"), "raw-random"));
  // Identifiers merely containing "rand" are not calls to rand().
  EXPECT_FALSE(has_rule(
      lint_content("src/sim/simulator.cpp", "auto v = uniform_rand(9);\n"),
      "raw-random"));
}

TEST(LintUnguardedMutex, MutexWithoutCompanionFlagged) {
  const std::string src =
      "class Q {\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int items_;\n"
      "};\n";
  const auto vs = lint_content("src/registers/quorum.h", src);
  ASSERT_TRUE(has_rule(vs, "unguarded-mutex"));
  EXPECT_EQ(vs.front().line, 3);
}

TEST(LintUnguardedMutex, GuardedCompanionSatisfiesRule) {
  const std::string src =
      "class Q {\n"
      "  Mutex mu_;\n"
      "  int items_ GUARDED_BY(mu_);\n"
      "};\n";
  EXPECT_FALSE(has_rule(lint_content("src/registers/quorum.h", src),
                        "unguarded-mutex"));
}

TEST(LintUnguardedMutex, WrapperAndStdMutexBothMatched) {
  EXPECT_TRUE(has_rule(lint_content("src/net/x.h", "Mutex lone_;\n"),
                       "unguarded-mutex"));
  EXPECT_TRUE(has_rule(lint_content("src/net/x.h", "mutable std::mutex lone_;\n"),
                       "unguarded-mutex"));
}

TEST(LintResilienceLiteral, FlaggedOutsideConfig) {
  const auto vs =
      lint_content("src/registers/server.cpp", "size_t q = 4 * f + 1;\n");
  ASSERT_TRUE(has_rule(vs, "resilience-literal"));
  EXPECT_TRUE(has_rule(
      lint_content("src/codec/mds_code.cpp", "size_t k = n - 5*f;\n"),
      "resilience-literal"));
  EXPECT_TRUE(has_rule(lint_content("src/harness/sim_cluster.cpp",
                                    "return f * 3 + 1;\n"),
                       "resilience-literal"));
}

TEST(LintResilienceLiteral, ConfigHeaderExempt) {
  EXPECT_FALSE(has_rule(
      lint_content("src/registers/config.h", "return 4 * f + 1;\n"),
      "resilience-literal"));
}

TEST(LintResilienceLiteral, UnrelatedArithmeticNotFlagged) {
  EXPECT_FALSE(has_rule(
      lint_content("src/codec/rs.cpp", "size_t bytes = 4 * frames;\n"),
      "resilience-literal"));
  // Schedule constructions slice index ranges with 2*f; only the protocol
  // bound multipliers 3/4/5 are reserved for config.h.
  EXPECT_FALSE(has_rule(
      lint_content("src/harness/scenarios.cpp", "withhold_put(1, f, 2 * f);\n"),
      "resilience-literal"));
}

TEST(LintQuorumArithmetic, InlineQuorumFormsFlaggedOutsideConfig) {
  const auto vs = lint_content("src/registers/op_mux.cpp",
                               "size_t need = n - f;\n");
  ASSERT_TRUE(has_rule(vs, "quorum-arithmetic"));
  EXPECT_EQ(vs.front().line, 1);
  EXPECT_TRUE(has_rule(
      lint_content("src/registers/server.cpp",
                   "if (acks > (n + f) / 2) finish();\n"),
      "quorum-arithmetic"));
}

TEST(LintQuorumArithmetic, ConfigHeaderExempt) {
  EXPECT_FALSE(has_rule(
      lint_content("src/registers/config.h", "return n - f;\n"),
      "quorum-arithmetic"));
}

TEST(LintQuorumArithmetic, WordBoundariesRespected) {
  // Identifiers that merely end in n / start with f are not the protocol
  // parameters.
  EXPECT_FALSE(has_rule(
      lint_content("src/codec/rs.cpp", "size_t pad = len - frames;\n"),
      "quorum-arithmetic"));
  EXPECT_FALSE(has_rule(
      lint_content("src/codec/rs.cpp", "size_t mid = (len + fanout) / 2;\n"),
      "quorum-arithmetic"));
}

TEST(LintQuorumArithmetic, WaiverHonored) {
  EXPECT_FALSE(has_rule(
      lint_content("src/harness/scenarios.cpp",
                   "// index range, not a quorum size:"
                   " bftreg-lint: allow(quorum-arithmetic)\n"
                   "withhold(0, n - f, n);\n"),
      "quorum-arithmetic"));
}

TEST(LintUnboundedStore, TagKeyedMapInRegistersFlagged) {
  const auto vs = lint_content("src/registers/server.h",
                               "std::map<Tag, Bytes> log;\n");
  ASSERT_TRUE(has_rule(vs, "unbounded-store"));
  EXPECT_EQ(vs.front().line, 1);
}

TEST(LintUnboundedStore, CompactStoreHeaderAndOtherLayersExempt) {
  // The compact store header documents the replaced layout; other layers
  // (tests, harness) may model reference stores freely.
  EXPECT_FALSE(has_rule(
      lint_content("src/registers/object_store.h",
                   "// was: std::map<Tag, Bytes> log;\n"
                   "std::map<Tag, Bytes> reference;\n"),
      "unbounded-store"));
  EXPECT_FALSE(has_rule(
      lint_content("src/harness/sim_cluster.h", "std::map<Tag, Bytes> model;\n"),
      "unbounded-store"));
  // TaggedValue-keyed maps are a different (response-bounded) shape.
  EXPECT_FALSE(has_rule(
      lint_content("src/registers/protocol_ops.h",
                   "std::map<TaggedValue, size_t> witnesses_;\n"),
      "unbounded-store"));
}

TEST(LintUnboundedStore, WaiverHonored) {
  EXPECT_FALSE(has_rule(
      lint_content("src/registers/protocol_ops.h",
                   "// bounded by one round's responses:"
                   " bftreg-lint: allow(unbounded-store)\n"
                   "std::map<Tag, std::set<ProcessId>> tag_votes_;\n"),
      "unbounded-store"));
}

TEST(LintSocknetThread, ThreadOutsideEventLoopFlagged) {
  EXPECT_TRUE(has_rule(
      lint_content("src/socknet/tcp_network.cpp",
                   "std::thread reader([this] { read_loop(); });\n"),
      "socknet-thread"));
}

TEST(LintSocknetThread, EventLoopPoolExempt) {
  // The shard pool and the mailbox consumers are the transport's only
  // legitimate thread spawns.
  EXPECT_FALSE(has_rule(
      lint_content("src/socknet/event_loop.cpp",
                   "threads_.emplace_back(std::thread([this] { loop(); }));\n"),
      "socknet-thread"));
  EXPECT_FALSE(has_rule(
      lint_content("src/socknet/event_loop.h", "std::thread thread_;\n"),
      "socknet-thread"));
}

TEST(LintSocknetThread, OtherLayersNotCovered) {
  // src/runtime keeps its thread allowance; this rule is socknet-only.
  EXPECT_FALSE(has_rule(
      lint_content("src/runtime/thread_network.cpp",
                   "std::thread t([&] { pump(); });\n"),
      "socknet-thread"));
}

TEST(LintSocknetThread, WaiverHonored) {
  EXPECT_FALSE(has_rule(
      lint_content("src/socknet/tcp_network.cpp",
                   "// one-shot drain helper: bftreg-lint: allow(socknet-thread)\n"
                   "std::thread t([&] { drain(); });\n"),
      "socknet-thread"));
}

TEST(LintLegacySingleOp, BusyCallSitesFlaggedOutsideRegisters) {
  EXPECT_TRUE(has_rule(
      lint_content("src/harness/sim_cluster.cpp",
                   "while (reader.busy()) sim_.step();\n"),
      "legacy-single-op"));
  EXPECT_TRUE(has_rule(
      lint_content("src/workload/driver.cpp", "if (!writer->busy()) go();\n"),
      "legacy-single-op"));
}

TEST(LintLegacySingleOp, RegistersLayerAndUnrelatedNamesExempt) {
  // The low-level clients themselves implement and document busy().
  EXPECT_FALSE(has_rule(
      lint_content("src/registers/bsr_reader.h",
                   "bool busy() const { return !mux_.idle(); }\n"),
      "legacy-single-op"));
  // A bare identifier or a different method is not a busy() call site.
  EXPECT_FALSE(has_rule(
      lint_content("src/harness/sim_cluster.cpp", "bool busy = false;\n"),
      "legacy-single-op"));
  EXPECT_FALSE(has_rule(
      lint_content("src/harness/sim_cluster.cpp", "spin_while_busy();\n"),
      "legacy-single-op"));
}

TEST(LintBlockingInLock, SyscallUnderMutexLockFlagged) {
  // The old transport's exact shape: framing + write_all inside the send
  // mutex, serializing every sender behind the kernel.
  const std::string src =
      "void send(const Bytes& frame) {\n"
      "  MutexLock lock(send_mu_);\n"
      "  if (!write_all(fd, frame.data(), frame.size())) reconnect();\n"
      "}\n";
  const auto vs = lint_content("src/socknet/tcp_network.cpp", src);
  ASSERT_TRUE(has_rule(vs, "blocking-in-lock"));
  EXPECT_EQ(vs.front().line, 3);
}

TEST(LintBlockingInLock, RawSyscallsAndNestedScopesFlagged) {
  EXPECT_TRUE(has_rule(
      lint_content("src/socknet/tcp_network.cpp",
                   "MutexLock lock(mu_);\n"
                   "ssize_t w = ::sendmsg(fd, &mh, MSG_NOSIGNAL);\n"),
      "blocking-in-lock"));
  // Held across a nested scope: still held at the call.
  EXPECT_TRUE(has_rule(
      lint_content("src/socknet/tcp_network.cpp",
                   "{\n"
                   "  MutexLock lock(conn_mu_);\n"
                   "  for (int fd : fds) {\n"
                   "    ::recv(fd, buf, sizeof(buf), 0);\n"
                   "  }\n"
                   "}\n"),
      "blocking-in-lock"));
}

TEST(LintBlockingInLock, OutsideLockScopeNotFlagged) {
  // Stage-under-lock, syscall-after-release: the pattern the rule demands.
  const std::string src =
      "std::deque<OutFrame> work;\n"
      "{\n"
      "  MutexLock lock(out_mu_);\n"
      "  work.swap(queue_);\n"
      "}\n"
      "::sendmsg(fd, &mh, MSG_NOSIGNAL);\n";
  EXPECT_FALSE(
      has_rule(lint_content("src/socknet/tcp_network.cpp", src), "blocking-in-lock"));
}

TEST(LintBlockingInLock, QualifiedMembersAndWaiverExempt) {
  // `Cluster::write(` is a member definition, not the write(2) syscall.
  EXPECT_FALSE(has_rule(
      lint_content("src/harness/thread_cluster.cpp",
                   "MutexLock lock(mu_);\n"
                   "WriteResult ThreadCluster::write(size_t w, Bytes v) {\n"),
      "blocking-in-lock"));
  EXPECT_FALSE(has_rule(
      lint_content("src/storage/wal.cpp",
                   "MutexLock lock(mu_);\n"
                   "// bftreg-lint: allow(blocking-in-lock) WAL must sync in order\n"
                   "::fsync(fd_);\n"),
      "blocking-in-lock"));
}

TEST(LintWaiver, SameLineAndPreviousLineWaive) {
  const std::string same =
      "std::mutex g;  // bftreg-lint: allow(unguarded-mutex) guards stderr\n";
  EXPECT_FALSE(has_rule(lint_content("src/common/x.cpp", same), "unguarded-mutex"));

  const std::string prev =
      "// bftreg-lint: allow(unguarded-mutex) guards stderr\n"
      "std::mutex g;\n";
  EXPECT_FALSE(has_rule(lint_content("src/common/x.cpp", prev), "unguarded-mutex"));
}

TEST(LintWaiver, WaiverIsRuleSpecific) {
  const std::string src =
      "// bftreg-lint: allow(raw-thread) wrong rule named\n"
      "std::mutex g;\n";
  EXPECT_TRUE(has_rule(lint_content("src/common/x.cpp", src), "unguarded-mutex"));
}

TEST(LintLockOrder, CollectsBeforeAndAfterEdges) {
  const std::string src =
      "class N {\n"
      "  Mutex a_ ACQUIRED_BEFORE(b_, c_);\n"
      "  Mutex b_;\n"
      "  std::mutex c_ ACQUIRED_AFTER(b_);\n"
      "};\n";
  const auto order = collect_lock_order(src);
  ASSERT_TRUE(order.count("a_"));
  EXPECT_TRUE(order.at("a_").count("b_"));
  EXPECT_TRUE(order.at("a_").count("c_"));
  ASSERT_TRUE(order.count("b_"));  // AFTER(b_) on c_ means b_ < c_
  EXPECT_TRUE(order.at("b_").count("c_"));
}

TEST(LintLockOrder, InversionInNestedScopeFlagged) {
  const std::string src =
      "Mutex a_ ACQUIRED_BEFORE(b_);\n"
      "Mutex b_;\n"
      "void f() {\n"
      "  MutexLock l1(b_);\n"
      "  MutexLock l2(a_);\n"
      "}\n";
  const auto vs = lint_content("src/net/x.cpp", src);
  ASSERT_TRUE(has_rule(vs, "lock-order"));
  for (const auto& v : vs) {
    if (v.rule == "lock-order") {
      EXPECT_EQ(v.line, 5);
    }
  }
}

TEST(LintLockOrder, DeclaredDirectionNotFlagged) {
  const std::string src =
      "Mutex a_ ACQUIRED_BEFORE(b_);\n"
      "Mutex b_;\n"
      "void f() {\n"
      "  MutexLock l1(a_);\n"
      "  MutexLock l2(b_);\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_content("src/net/x.cpp", src), "lock-order"));
}

TEST(LintLockOrder, SequentialScopesDoNotNest) {
  // The first lock's scope closes before the second acquisition: no hold.
  const std::string src =
      "Mutex a_ ACQUIRED_BEFORE(b_);\n"
      "Mutex b_;\n"
      "void f() {\n"
      "  { MutexLock l1(b_); }\n"
      "  { MutexLock l2(a_); }\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_content("src/net/x.cpp", src), "lock-order"));
}

TEST(LintLockOrder, MemberAccessNormalizedToBareName) {
  const std::string src =
      "Mutex gate_ ACQUIRED_BEFORE(mu);\n"
      "void f(Box* box) {\n"
      "  MutexLock l1(box->mu);\n"
      "  MutexLock l2(this->gate_);\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint_content("src/net/x.cpp", src), "lock-order"));
}

TEST(LintLockOrder, CrossFileOrderViaExplicitMap) {
  // Edges declared in a header, inversion in the matching .cpp -- the
  // two-pass lint_tree wiring, exercised through the overload directly.
  const auto order = collect_lock_order("Mutex rng_mu_ ACQUIRED_BEFORE(sched_mu_);\n");
  const std::string cpp =
      "void N::stop() {\n"
      "  MutexLock l1(sched_mu_);\n"
      "  MutexLock l2(rng_mu_);\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint_content("src/runtime/n.cpp", cpp, order), "lock-order"));
  EXPECT_FALSE(has_rule(lint_content("src/runtime/n.cpp", cpp, LockOrder{}),
                        "lock-order"));
}

TEST(LintLockOrder, Waivable) {
  const std::string src =
      "Mutex a_ ACQUIRED_BEFORE(b_);\n"
      "Mutex b_;\n"
      "void f() {\n"
      "  MutexLock l1(b_);\n"
      "  // bftreg-lint: allow(lock-order) teardown holds both, documented\n"
      "  MutexLock l2(a_);\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_content("src/net/x.cpp", src), "lock-order"));
}

TEST(LintFormat, CompilerStyleOutput) {
  const Violation v{"src/a.cpp", 7, "detach", "msg"};
  EXPECT_EQ(format(v), "src/a.cpp:7: [detach] msg");
}

// ---------------------------------------------------------------------------
// Whole-program passes (lint_program over a synthetic multi-file tree).
// ---------------------------------------------------------------------------

const Violation* find_rule(const std::vector<Violation>& vs,
                           const std::string& rule) {
  for (const auto& v : vs) {
    if (v.rule == rule) return &v;
  }
  return nullptr;
}

TEST(LintInterproceduralBlocking, TransitiveChainFlaggedAtCallSite) {
  // send() holds out_mu_ and calls flush(), which reaches ::sendmsg through
  // sendmsg_frames() -- two hops the single-file rule cannot see.
  const std::vector<SourceFile> files = {
      {"src/socknet/io.cpp",
       "ssize_t sendmsg_frames(int fd) {\n"
       "  return ::sendmsg(fd, &mh, 0);\n"
       "}\n"
       "void flush(int fd) {\n"
       "  sendmsg_frames(fd);\n"
       "}\n"},
      {"src/socknet/send.cpp",
       "void send(int fd) {\n"
       "  MutexLock lock(out_mu_);\n"
       "  flush(fd);\n"
       "}\n"},
  };
  const auto vs = lint_program(files);
  const Violation* v = find_rule(vs, "blocking-in-lock");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->file, "src/socknet/send.cpp");
  EXPECT_EQ(v->line, 3);  // the call site, not the distant syscall
  EXPECT_NE(v->message.find("flush -> sendmsg_frames -> ::sendmsg"),
            std::string::npos)
      << v->message;
}

TEST(LintInterproceduralBlocking, ReleasedBeforeCallNotFlagged) {
  // The scheduler-loop hand-off: guard.unlock() before the call, re-lock
  // after. The chain exists but the lock is not held across it.
  const std::vector<SourceFile> files = {
      {"src/runtime/loop.cpp",
       "void route(int fd) { ::write(fd, buf, n); }\n"
       "void loop(int fd) {\n"
       "  MutexLock lock(sched_mu_);\n"
       "  lock.unlock();\n"
       "  route(fd);\n"
       "  lock.lock();\n"
       "}\n"},
  };
  EXPECT_FALSE(has_rule(lint_program(files), "blocking-in-lock"));
}

TEST(LintLockCycle, ThreeLockCycleAcrossFilesReported) {
  // a_ < b_ and b_ < c_ are declared in two headers; code observes c_
  // taken before a_, closing a three-lock cycle no single file shows.
  const std::vector<SourceFile> files = {
      {"src/net/a.h", "Mutex a_ ACQUIRED_BEFORE(b_);\nMutex b_;\n"},
      {"src/net/b.h", "Mutex b2_ ACQUIRED_BEFORE(c_);\nMutex c_;\n"
                      "Mutex b_ ACQUIRED_BEFORE(c_);\n"},
      {"src/net/use.cpp",
       "void f() {\n"
       "  MutexLock l1(c_);\n"
       "  MutexLock l2(a_);\n"
       "}\n"},
  };
  const auto vs = lint_program(files);
  const Violation* v = find_rule(vs, "lock-cycle");
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("a_"), std::string::npos);
  EXPECT_NE(v->message.find("b_"), std::string::npos);
  EXPECT_NE(v->message.find("c_"), std::string::npos);
}

TEST(LintLockCycle, ConsistentOrderNotReported) {
  const std::vector<SourceFile> files = {
      {"src/net/a.h", "Mutex a_ ACQUIRED_BEFORE(b_);\nMutex b_;\n"},
      {"src/net/use.cpp",
       "void f() {\n"
       "  MutexLock l1(a_);\n"
       "  MutexLock l2(b_);\n"
       "}\n"},
  };
  EXPECT_FALSE(has_rule(lint_program(files), "lock-cycle"));
}

TEST(LintLockOrderUndeclared, ObservedNestingWithoutDeclarationFlagged) {
  const std::vector<SourceFile> files = {
      {"src/net/use.cpp",
       "void f() {\n"
       "  MutexLock l1(a_);\n"
       "  MutexLock l2(b_);\n"
       "}\n"},
  };
  const auto vs = lint_program(files);
  const Violation* v = find_rule(vs, "lock-order-undeclared");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->line, 3);
  EXPECT_NE(v->message.find("'a_' then 'b_'"), std::string::npos) << v->message;
}

TEST(LintLockOrderUndeclared, DeclaredEdgeCoversObservation) {
  // The declared edge (even transitively, a_ < b_ < c_) covers the
  // observed a_-then-c_ nesting: nothing to report.
  const std::vector<SourceFile> files = {
      {"src/net/a.h",
       "Mutex a_ ACQUIRED_BEFORE(b_);\nMutex b_ ACQUIRED_BEFORE(c_);\n"
       "Mutex c_;\n"},
      {"src/net/use.cpp",
       "void f() {\n"
       "  MutexLock l1(a_);\n"
       "  MutexLock l2(c_);\n"
       "}\n"},
  };
  EXPECT_FALSE(has_rule(lint_program(files), "lock-order-undeclared"));
}

TEST(LintLockOrderUndeclared, InterproceduralAcquisitionFlagged) {
  // f holds big_mu_ and calls bump(), which takes counter_mu_ -- an
  // acquisition edge that exists only through the call graph.
  const std::vector<SourceFile> files = {
      {"src/net/metrics.cpp",
       "void bump() {\n"
       "  MutexLock lock(counter_mu_);\n"
       "  ++n_;\n"
       "}\n"},
      {"src/net/send.cpp",
       "void f() {\n"
       "  MutexLock lock(big_mu_);\n"
       "  bump();\n"
       "}\n"},
  };
  const auto vs = lint_program(files);
  const Violation* v = find_rule(vs, "lock-order-undeclared");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->file, "src/net/send.cpp");
  EXPECT_NE(v->message.find("bump"), std::string::npos);
}

TEST(LintSerdeSymmetry, ReorderedDeserializeFieldCaught) {
  // The acceptance-criteria fixture: deserialize() reads the two u32
  // fields in the reverse of the order serialize() wrote them.
  const std::vector<SourceFile> files = {
      {"src/registers/msg.cpp",
       "Bytes Msg::serialize() const {\n"
       "  Serializer s;\n"
       "  s.put_u32(object);\n"
       "  s.put_u64(seq);\n"
       "  s.put_bytes(value);\n"
       "  return s.take();\n"
       "}\n"
       "std::optional<Msg> Msg::deserialize(const Bytes& in) {\n"
       "  Deserializer d(in);\n"
       "  Msg m;\n"
       "  m.seq = d.get_u64();\n"
       "  m.object = d.get_u32();\n"
       "  m.value = d.get_bytes();\n"
       "  return m;\n"
       "}\n"},
  };
  const auto vs = lint_program(files);
  const Violation* v = find_rule(vs, "serde-symmetry");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->line, 11);  // first divergent read
  EXPECT_NE(v->message.find("put_u32"), std::string::npos) << v->message;
  EXPECT_NE(v->message.find("get_u64"), std::string::npos) << v->message;
}

TEST(LintSerdeSymmetry, MissingTrailingReadCaught) {
  // Asymmetry in the other direction: the reader stops one field short.
  const std::vector<SourceFile> files = {
      {"src/registers/blob.cpp",
       "void encode_blob(Serializer& s, const Blob& b) {\n"
       "  s.put_u64(b.seq);\n"
       "  s.put_tag(b.tag);\n"
       "  s.put_bytes(b.data);\n"
       "}\n"
       "Blob decode_blob(Deserializer& d) {\n"
       "  Blob b;\n"
       "  b.seq = d.get_u64();\n"
       "  b.tag = d.get_tag();\n"
       "  return b;\n"
       "}\n"},
  };
  const auto vs = lint_program(files);
  const Violation* v = find_rule(vs, "serde-symmetry");
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("put_bytes"), std::string::npos) << v->message;
  EXPECT_NE(v->message.find("no counterpart"), std::string::npos) << v->message;
}

TEST(LintSerdeSymmetry, SymmetricPairAndWidthClassesClean) {
  // bool is u8-width on the wire; bytes/bytes_view/string are one
  // length-prefixed class -- none of these count as drift.
  const std::vector<SourceFile> files = {
      {"src/registers/msg.cpp",
       "Bytes Msg::encode() const {\n"
       "  Serializer s;\n"
       "  s.put_bool(flag);\n"
       "  s.put_bytes(value);\n"
       "  s.put_string(name);\n"
       "  return s.take();\n"
       "}\n"
       "std::optional<Msg> Msg::parse(const Bytes& in) {\n"
       "  Deserializer d(in);\n"
       "  Msg m;\n"
       "  m.flag = d.get_u8() != 0;\n"
       "  m.value = d.get_bytes_view();\n"
       "  m.name = d.get_string();\n"
       "  return m;\n"
       "}\n"},
  };
  EXPECT_FALSE(has_rule(lint_program(files), "serde-symmetry"));
}

TEST(LintUncheckedResult, DiscardedResultReturnFlagged) {
  const std::vector<SourceFile> files = {
      {"src/registers/config.cpp",
       "Result<Config> build_bounded(int n) {\n"
       "  return Config{n};\n"
       "}\n"},
      {"src/harness/use.cpp",
       "void setup(Builder& b) {\n"
       "  b.build_bounded(5);\n"
       "}\n"},
  };
  const auto vs = lint_program(files);
  const Violation* v = find_rule(vs, "unchecked-result");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->file, "src/harness/use.cpp");
  EXPECT_EQ(v->line, 2);
}

TEST(LintUncheckedResult, ConsumedResultsNotFlagged) {
  const std::vector<SourceFile> files = {
      {"src/registers/config.cpp",
       "Result<Config> build_bounded(int n) {\n"
       "  return Config{n};\n"
       "}\n"},
      {"src/harness/use.cpp",
       "Result<Config> forward(Builder& b) {\n"
       "  auto r = b.build_bounded(1);\n"
       "  if (b.build_bounded(2).ok()) use();\n"
       "  (void)b.build_bounded(3);\n"
       "  return b.build_bounded(4);\n"
       "}\n"},
  };
  EXPECT_FALSE(has_rule(lint_program(files), "unchecked-result"));
}

TEST(LintUncheckedResult, PlainReturnTypesNotFlagged) {
  // WriteResult is a plain struct; only Result<T> carries an error that
  // must be checked.
  const std::vector<SourceFile> files = {
      {"src/registers/w.cpp",
       "WriteResult write_now(int n) {\n"
       "  return WriteResult{n};\n"
       "}\n"},
      {"src/harness/use.cpp",
       "void go(Client& c) {\n"
       "  c.write_now(5);\n"
       "}\n"},
  };
  EXPECT_FALSE(has_rule(lint_program(files), "unchecked-result"));
}

TEST(LintProgram, WholeProgramFindingsAreWaivable) {
  const std::vector<SourceFile> files = {
      {"src/net/use.cpp",
       "void f() {\n"
       "  MutexLock l1(a_);\n"
       "  // bftreg-lint: allow(lock-order-undeclared) teardown-only nesting\n"
       "  MutexLock l2(b_);\n"
       "}\n"},
  };
  EXPECT_FALSE(has_rule(lint_program(files), "lock-order-undeclared"));
}

TEST(LintAtomicInRing, ImplicitOrderFlaggedInScope) {
  EXPECT_TRUE(has_rule(
      lint_content("src/runtime/mailbox.h", "bool v = stopped_.load();\n"),
      "atomic-in-ring"));
  EXPECT_TRUE(has_rule(lint_content("src/common/mpsc_ring.h",
                                    "slot.seq.store(pos + 1);\n"),
                       "atomic-in-ring"));
  EXPECT_TRUE(has_rule(
      lint_content("src/runtime/thread_network.cpp",
                   "next_seq_.fetch_add(1);\n"),
      "atomic-in-ring"));
  EXPECT_TRUE(has_rule(
      lint_content("src/common/seqlock.h", "active_.exchange(next);\n"),
      "atomic-in-ring"));
}

TEST(LintAtomicInRing, ExplicitOrderSatisfiesRule) {
  EXPECT_FALSE(has_rule(
      lint_content("src/runtime/mailbox.h",
                   "bool v = stopped_.load(std::memory_order_acquire);\n"),
      "atomic-in-ring"));
  EXPECT_FALSE(has_rule(
      lint_content("src/common/mpsc_ring.h",
                   "slot.seq.store(pos + 1, std::memory_order_release);\n"),
      "atomic-in-ring"));
  EXPECT_FALSE(has_rule(
      lint_content(
          "src/runtime/thread_network.cpp",
          "head_.compare_exchange_weak(pos, pos + 1,\n"
          "                            std::memory_order_relaxed,\n"
          "                            std::memory_order_relaxed);\n"),
      "atomic-in-ring"));
}

TEST(LintAtomicInRing, MultiLineCallScannedAcrossWrap) {
  // The order argument lands on a later line; paren-balanced look-ahead
  // must find it before flagging.
  EXPECT_FALSE(has_rule(
      lint_content("src/runtime/mailbox.h",
                   "spilled_.store(true,\n"
                   "               std::memory_order_release);\n"),
      "atomic-in-ring"));
  // Still flagged when the wrapped call never names an order.
  EXPECT_TRUE(has_rule(lint_content("src/runtime/mailbox.h",
                                    "spilled_.store(\n"
                                    "    some_long_expression_value);\n"),
               "atomic-in-ring"));
}

TEST(LintAtomicInRing, OutOfScopeAndNonAtomicNamesExempt) {
  // Same code outside the delivery path: other layers may take the
  // seq_cst default.
  EXPECT_FALSE(has_rule(
      lint_content("src/socknet/tcp_network.cpp", "running_.load();\n"),
      "atomic-in-ring"));
  EXPECT_FALSE(has_rule(
      lint_content("src/registers/server.cpp", "puts_applied_.fetch_add(1);\n"),
      "atomic-in-ring"));
  // Non-atomic member names that merely contain the words are untouched.
  EXPECT_FALSE(has_rule(
      lint_content("src/runtime/thread_network.cpp",
                   "object_store(object);\nreload(x);\n"),
      "atomic-in-ring"));
}

TEST(LintAtomicInRing, WaiverHonored) {
  EXPECT_FALSE(has_rule(
      lint_content("src/runtime/mailbox.h",
                   "// bftreg-lint: allow(atomic-in-ring) -- ordering moot\n"
                   "bool v = stopped_.load();\n"),
      "atomic-in-ring"));
}

TEST(LintSarif, GoldenDocument) {
  const std::vector<Violation> vs = {
      {"src/socknet/tcp_network.cpp", 42, "blocking-in-lock",
       "blocking call '::sendmsg' while 'out_mu' is held"},
  };
  const std::string doc = to_sarif(vs);
  const std::string expected =
      "{\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [{\n"
      "    \"tool\": {\"driver\": {\n"
      "      \"name\": \"bftreg_lint\",\n"
      "      \"informationUri\": \"docs/ANALYSIS.md\",\n"
      "      \"rules\": [\n"
      "        {\"id\": \"raw-thread\", \"shortDescription\": {\"text\": "
      "\"std::thread outside the runtime/transport/harness layers\"}},\n"
      "        {\"id\": \"detach\", \"shortDescription\": {\"text\": "
      "\"detached thread outlives its transport\"}},\n"
      "        {\"id\": \"raw-random\", \"shortDescription\": {\"text\": "
      "\"unseeded randomness breaks replayability\"}},\n"
      "        {\"id\": \"unguarded-mutex\", \"shortDescription\": {\"text\": "
      "\"mutex member without a GUARDED_BY companion\"}},\n"
      "        {\"id\": \"resilience-literal\", \"shortDescription\": "
      "{\"text\": \"resilience bound arithmetic outside config.h\"}},\n"
      "        {\"id\": \"lock-order\", \"shortDescription\": {\"text\": "
      "\"nested acquisition inverts a declared lock order\"}},\n"
      "        {\"id\": \"legacy-single-op\", \"shortDescription\": {\"text\": "
      "\"busy() call outside the low-level register clients\"}},\n"
      "        {\"id\": \"blocking-in-lock\", \"shortDescription\": {\"text\": "
      "\"call chain from a MutexLock scope to a blocking syscall\"}},\n"
      "        {\"id\": \"lock-cycle\", \"shortDescription\": {\"text\": "
      "\"cycle in the global declared+observed lock-order graph\"}},\n"
      "        {\"id\": \"lock-order-undeclared\", \"shortDescription\": "
      "{\"text\": \"observed acquisition order with no declared edge\"}},\n"
      "        {\"id\": \"serde-symmetry\", \"shortDescription\": {\"text\": "
      "\"serialize/deserialize wire formats drifted apart\"}},\n"
      "        {\"id\": \"unchecked-result\", \"shortDescription\": {\"text\": "
      "\"discarded Result<T> return value\"}},\n"
      "        {\"id\": \"atomic-in-ring\", \"shortDescription\": {\"text\": "
      "\"implicit seq_cst atomic access in the lock-free delivery path\"}},\n"
      "        {\"id\": \"quorum-arithmetic\", \"shortDescription\": {\"text\": "
      "\"quorum-sized arithmetic outside config.h\"}},\n"
      "        {\"id\": \"socknet-thread\", \"shortDescription\": {\"text\": "
      "\"std::thread in src/socknet outside the event-loop shard pool\"}},\n"
      "        {\"id\": \"unbounded-store\", \"shortDescription\": {\"text\": "
      "\"Tag-keyed std::map outside the compact object store\"}}\n"
      "      ]\n"
      "    }},\n"
      "    \"results\": [\n"
      "      {\"ruleId\": \"blocking-in-lock\", \"ruleIndex\": 7, \"level\": "
      "\"error\", \"message\": {\"text\": \"blocking call '::sendmsg' while "
      "'out_mu' is held\"}, \"locations\": [{\"physicalLocation\": "
      "{\"artifactLocation\": {\"uri\": \"src/socknet/tcp_network.cpp\"}, "
      "\"region\": {\"startLine\": 42}}}]}\n"
      "    ]\n"
      "  }]\n"
      "}\n";
  EXPECT_EQ(doc, expected);
}

TEST(LintSarif, EmptyRunAndEscaping) {
  EXPECT_NE(to_sarif({}).find("\"results\": []"), std::string::npos);
  const std::vector<Violation> vs = {
      {"src/a.cpp", 1, "detach", "quote \" backslash \\ tab\t"}};
  const std::string doc = to_sarif(vs);
  EXPECT_NE(doc.find("quote \\\" backslash \\\\ tab\\t"), std::string::npos);
}

// The real tree must be clean -- this is the same check the ctest
// registration of the bftreg_lint binary performs, kept here too so a
// plain `ctest -R lint` covers both the rules and the tree.
TEST(LintTree, RepoSourcesAreClean) {
  const char* root = std::getenv("BFTREG_REPO_ROOT");
  if (root == nullptr) GTEST_SKIP() << "BFTREG_REPO_ROOT not set";
  const auto vs = lint_tree(root);
  for (const auto& v : vs) ADD_FAILURE() << format(v);
}

}  // namespace
}  // namespace bftreg::lint
