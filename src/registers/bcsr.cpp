#include "registers/bcsr.h"

#include <cassert>

namespace bftreg::registers {

std::vector<Bytes> bcsr_initial_elements(const SystemConfig& config) {
  return codec::MdsCode::for_bcsr(config.n, config.f).encode(config.initial_value);
}

BcsrWriter::BcsrWriter(ProcessId self, SystemConfig config,
                       net::Transport* transport, uint32_t object)
    : BsrWriter(self, config, transport, object),
      code_(codec::MdsCode::for_bcsr(config.n, config.f)) {
  assert(config.valid_for_bcsr());
}

void BcsrWriter::send_put_data(const Tag& tag) {
  // Fig. 4 line 7: (PUT-DATA, (t_w, c_i)) to s_i, where c_i = Phi_i(v).
  std::vector<Bytes> elements = code_.encode(value_);
  RegisterMessage put;
  put.type = MsgType::kPutData;
  put.op_id = current_op_id();
  put.object = object();
  put.tag = tag;
  for (uint32_t i = 0; i < config_.n; ++i) {
    // Each element is consumed by exactly one message; move it into the
    // frame instead of re-copying a value_size/k buffer per server.
    put.value = std::move(elements[i]);
    send_to_server(i, put);
  }
}

BcsrReader::BcsrReader(ProcessId self, SystemConfig config,
                       net::Transport* transport, uint32_t object)
    : self_(self),
      config_(std::move(config)),
      transport_(transport),
      object_(object),
      code_(codec::MdsCode::for_bcsr(config_.n, config_.f)),
      last_value_(config_.initial_value),
      responded_(config_.quorum()) {}

void BcsrReader::start_read(Callback callback) {
  assert(!reading_ && "at most one operation per client");
  reading_ = true;
  callback_ = std::move(callback);
  invoked_at_ = transport_->now();
  ++op_id_;
  responded_.reset();
  elements_.assign(config_.n, std::nullopt);

  RegisterMessage query;
  query.type = MsgType::kQueryData;
  query.op_id = op_id_;
  query.object = object_;
  const Bytes payload = query.encode();
  for (uint32_t i = 0; i < config_.n; ++i) {
    transport_->send(self_, ProcessId::server(i), payload);
  }
}

void BcsrReader::on_message(const net::Envelope& env) {
  if (!reading_ || !env.from.is_server()) return;
  auto msg = RegisterMessage::parse(env.payload);
  if (!msg || msg->type != MsgType::kDataResp || msg->op_id != op_id_ ||
      msg->object != object_) {
    return;
  }
  if (env.from.index >= config_.n) return;
  if (!responded_.add(env.from)) return;
  elements_[env.from.index] = std::move(msg->value);
  if (responded_.reached()) finish();
}

void BcsrReader::finish() {
  // Fig. 5 line 4: return Phi^{-1}(received elements) if possible,
  // otherwise fall back (v0 / last decodable value).
  ReadResult result;
  auto decoded = code_.decode(elements_);
  if (decoded) {
    last_value_ = *decoded;
    result.fresh = true;
  } else {
    ++decode_failures_;
    result.fresh = false;
  }
  result.value = last_value_;

  reading_ = false;
  result.invoked_at = invoked_at_;
  result.completed_at = transport_->now();
  result.rounds = 1;
  Callback cb = std::move(callback_);
  callback_ = nullptr;
  if (cb) cb(result);
}

}  // namespace bftreg::registers
