// Unit fixture for tools/bftreg_lint: each banned pattern is demonstrated
// on a synthetic source, and each waiver/exemption path is exercised.
#include "tools/lint_rules.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

namespace bftreg::lint {
namespace {

bool has_rule(const std::vector<Violation>& vs, const std::string& rule) {
  return std::any_of(vs.begin(), vs.end(),
                     [&](const Violation& v) { return v.rule == rule; });
}

TEST(LintRawThread, FlaggedOutsideRuntimeDirs) {
  const std::string src = "#include <thread>\nstd::thread t([]{});\n";
  const auto vs = lint_content("src/registers/bsr_reader.cpp", src);
  ASSERT_TRUE(has_rule(vs, "raw-thread"));
  EXPECT_EQ(vs.front().line, 2);
}

TEST(LintRawThread, AllowedInRuntimeSocknetHarness) {
  const std::string src = "std::thread t([]{});\n";
  EXPECT_FALSE(has_rule(lint_content("src/runtime/thread_network.cpp", src),
                        "raw-thread"));
  EXPECT_FALSE(
      has_rule(lint_content("src/socknet/tcp_network.cpp", src), "raw-thread"));
  EXPECT_FALSE(
      has_rule(lint_content("src/harness/thread_cluster.cpp", src), "raw-thread"));
}

TEST(LintRawThread, CommentedMentionNotFlagged) {
  const std::string src = "// std::thread is banned here\nint x;\n";
  EXPECT_FALSE(has_rule(lint_content("src/registers/server.cpp", src), "raw-thread"));
}

TEST(LintDetach, FlaggedEverywhereEvenRuntime) {
  const std::string src = "std::thread t([]{});\nt.detach();\n";
  const auto vs = lint_content("src/runtime/thread_network.cpp", src);
  ASSERT_TRUE(has_rule(vs, "detach"));
}

TEST(LintRawRandom, RandAndRandomDeviceFlagged) {
  EXPECT_TRUE(has_rule(
      lint_content("src/workload/workload.cpp", "int x = rand();\n"), "raw-random"));
  EXPECT_TRUE(has_rule(
      lint_content("src/workload/workload.cpp", "srand(42);\n"), "raw-random"));
  EXPECT_TRUE(
      has_rule(lint_content("src/workload/workload.cpp", "std::random_device rd;\n"),
               "raw-random"));
}

TEST(LintRawRandom, RngHeaderExemptAndIdentifiersNotFlagged) {
  EXPECT_FALSE(has_rule(
      lint_content("src/common/rng.h", "std::random_device rd;\n"), "raw-random"));
  // Identifiers merely containing "rand" are not calls to rand().
  EXPECT_FALSE(has_rule(
      lint_content("src/sim/simulator.cpp", "auto v = uniform_rand(9);\n"),
      "raw-random"));
}

TEST(LintUnguardedMutex, MutexWithoutCompanionFlagged) {
  const std::string src =
      "class Q {\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int items_;\n"
      "};\n";
  const auto vs = lint_content("src/registers/quorum.h", src);
  ASSERT_TRUE(has_rule(vs, "unguarded-mutex"));
  EXPECT_EQ(vs.front().line, 3);
}

TEST(LintUnguardedMutex, GuardedCompanionSatisfiesRule) {
  const std::string src =
      "class Q {\n"
      "  Mutex mu_;\n"
      "  int items_ GUARDED_BY(mu_);\n"
      "};\n";
  EXPECT_FALSE(has_rule(lint_content("src/registers/quorum.h", src),
                        "unguarded-mutex"));
}

TEST(LintUnguardedMutex, WrapperAndStdMutexBothMatched) {
  EXPECT_TRUE(has_rule(lint_content("src/net/x.h", "Mutex lone_;\n"),
                       "unguarded-mutex"));
  EXPECT_TRUE(has_rule(lint_content("src/net/x.h", "mutable std::mutex lone_;\n"),
                       "unguarded-mutex"));
}

TEST(LintResilienceLiteral, FlaggedOutsideConfig) {
  const auto vs =
      lint_content("src/registers/server.cpp", "size_t q = 4 * f + 1;\n");
  ASSERT_TRUE(has_rule(vs, "resilience-literal"));
  EXPECT_TRUE(has_rule(
      lint_content("src/codec/mds_code.cpp", "size_t k = n - 5*f;\n"),
      "resilience-literal"));
  EXPECT_TRUE(has_rule(lint_content("src/harness/sim_cluster.cpp",
                                    "return f * 3 + 1;\n"),
                       "resilience-literal"));
}

TEST(LintResilienceLiteral, ConfigHeaderExempt) {
  EXPECT_FALSE(has_rule(
      lint_content("src/registers/config.h", "return 4 * f + 1;\n"),
      "resilience-literal"));
}

TEST(LintResilienceLiteral, UnrelatedArithmeticNotFlagged) {
  EXPECT_FALSE(has_rule(
      lint_content("src/codec/rs.cpp", "size_t bytes = 4 * frames;\n"),
      "resilience-literal"));
  // Schedule constructions slice index ranges with 2*f; only the protocol
  // bound multipliers 3/4/5 are reserved for config.h.
  EXPECT_FALSE(has_rule(
      lint_content("src/harness/scenarios.cpp", "withhold_put(1, f, 2 * f);\n"),
      "resilience-literal"));
}

TEST(LintLegacySingleOp, BusyCallSitesFlaggedOutsideRegisters) {
  EXPECT_TRUE(has_rule(
      lint_content("src/harness/sim_cluster.cpp",
                   "while (reader.busy()) sim_.step();\n"),
      "legacy-single-op"));
  EXPECT_TRUE(has_rule(
      lint_content("src/workload/driver.cpp", "if (!writer->busy()) go();\n"),
      "legacy-single-op"));
}

TEST(LintLegacySingleOp, RegistersLayerAndUnrelatedNamesExempt) {
  // The low-level clients themselves implement and document busy().
  EXPECT_FALSE(has_rule(
      lint_content("src/registers/bsr_reader.h",
                   "bool busy() const { return !mux_.idle(); }\n"),
      "legacy-single-op"));
  // A bare identifier or a different method is not a busy() call site.
  EXPECT_FALSE(has_rule(
      lint_content("src/harness/sim_cluster.cpp", "bool busy = false;\n"),
      "legacy-single-op"));
  EXPECT_FALSE(has_rule(
      lint_content("src/harness/sim_cluster.cpp", "spin_while_busy();\n"),
      "legacy-single-op"));
}

TEST(LintBlockingInLock, SyscallUnderMutexLockFlagged) {
  // The old transport's exact shape: framing + write_all inside the send
  // mutex, serializing every sender behind the kernel.
  const std::string src =
      "void send(const Bytes& frame) {\n"
      "  MutexLock lock(send_mu_);\n"
      "  if (!write_all(fd, frame.data(), frame.size())) reconnect();\n"
      "}\n";
  const auto vs = lint_content("src/socknet/tcp_network.cpp", src);
  ASSERT_TRUE(has_rule(vs, "blocking-in-lock"));
  EXPECT_EQ(vs.front().line, 3);
}

TEST(LintBlockingInLock, RawSyscallsAndNestedScopesFlagged) {
  EXPECT_TRUE(has_rule(
      lint_content("src/socknet/tcp_network.cpp",
                   "MutexLock lock(mu_);\n"
                   "ssize_t w = ::sendmsg(fd, &mh, MSG_NOSIGNAL);\n"),
      "blocking-in-lock"));
  // Held across a nested scope: still held at the call.
  EXPECT_TRUE(has_rule(
      lint_content("src/socknet/tcp_network.cpp",
                   "{\n"
                   "  MutexLock lock(conn_mu_);\n"
                   "  for (int fd : fds) {\n"
                   "    ::recv(fd, buf, sizeof(buf), 0);\n"
                   "  }\n"
                   "}\n"),
      "blocking-in-lock"));
}

TEST(LintBlockingInLock, OutsideLockScopeNotFlagged) {
  // Stage-under-lock, syscall-after-release: the pattern the rule demands.
  const std::string src =
      "std::deque<OutFrame> work;\n"
      "{\n"
      "  MutexLock lock(out_mu_);\n"
      "  work.swap(queue_);\n"
      "}\n"
      "::sendmsg(fd, &mh, MSG_NOSIGNAL);\n";
  EXPECT_FALSE(
      has_rule(lint_content("src/socknet/tcp_network.cpp", src), "blocking-in-lock"));
}

TEST(LintBlockingInLock, QualifiedMembersAndWaiverExempt) {
  // `Cluster::write(` is a member definition, not the write(2) syscall.
  EXPECT_FALSE(has_rule(
      lint_content("src/harness/thread_cluster.cpp",
                   "MutexLock lock(mu_);\n"
                   "WriteResult ThreadCluster::write(size_t w, Bytes v) {\n"),
      "blocking-in-lock"));
  EXPECT_FALSE(has_rule(
      lint_content("src/storage/wal.cpp",
                   "MutexLock lock(mu_);\n"
                   "// bftreg-lint: allow(blocking-in-lock) WAL must sync in order\n"
                   "::fsync(fd_);\n"),
      "blocking-in-lock"));
}

TEST(LintWaiver, SameLineAndPreviousLineWaive) {
  const std::string same =
      "std::mutex g;  // bftreg-lint: allow(unguarded-mutex) guards stderr\n";
  EXPECT_FALSE(has_rule(lint_content("src/common/x.cpp", same), "unguarded-mutex"));

  const std::string prev =
      "// bftreg-lint: allow(unguarded-mutex) guards stderr\n"
      "std::mutex g;\n";
  EXPECT_FALSE(has_rule(lint_content("src/common/x.cpp", prev), "unguarded-mutex"));
}

TEST(LintWaiver, WaiverIsRuleSpecific) {
  const std::string src =
      "// bftreg-lint: allow(raw-thread) wrong rule named\n"
      "std::mutex g;\n";
  EXPECT_TRUE(has_rule(lint_content("src/common/x.cpp", src), "unguarded-mutex"));
}

TEST(LintLockOrder, CollectsBeforeAndAfterEdges) {
  const std::string src =
      "class N {\n"
      "  Mutex a_ ACQUIRED_BEFORE(b_, c_);\n"
      "  Mutex b_;\n"
      "  std::mutex c_ ACQUIRED_AFTER(b_);\n"
      "};\n";
  const auto order = collect_lock_order(src);
  ASSERT_TRUE(order.count("a_"));
  EXPECT_TRUE(order.at("a_").count("b_"));
  EXPECT_TRUE(order.at("a_").count("c_"));
  ASSERT_TRUE(order.count("b_"));  // AFTER(b_) on c_ means b_ < c_
  EXPECT_TRUE(order.at("b_").count("c_"));
}

TEST(LintLockOrder, InversionInNestedScopeFlagged) {
  const std::string src =
      "Mutex a_ ACQUIRED_BEFORE(b_);\n"
      "Mutex b_;\n"
      "void f() {\n"
      "  MutexLock l1(b_);\n"
      "  MutexLock l2(a_);\n"
      "}\n";
  const auto vs = lint_content("src/net/x.cpp", src);
  ASSERT_TRUE(has_rule(vs, "lock-order"));
  for (const auto& v : vs) {
    if (v.rule == "lock-order") {
      EXPECT_EQ(v.line, 5);
    }
  }
}

TEST(LintLockOrder, DeclaredDirectionNotFlagged) {
  const std::string src =
      "Mutex a_ ACQUIRED_BEFORE(b_);\n"
      "Mutex b_;\n"
      "void f() {\n"
      "  MutexLock l1(a_);\n"
      "  MutexLock l2(b_);\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_content("src/net/x.cpp", src), "lock-order"));
}

TEST(LintLockOrder, SequentialScopesDoNotNest) {
  // The first lock's scope closes before the second acquisition: no hold.
  const std::string src =
      "Mutex a_ ACQUIRED_BEFORE(b_);\n"
      "Mutex b_;\n"
      "void f() {\n"
      "  { MutexLock l1(b_); }\n"
      "  { MutexLock l2(a_); }\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_content("src/net/x.cpp", src), "lock-order"));
}

TEST(LintLockOrder, MemberAccessNormalizedToBareName) {
  const std::string src =
      "Mutex gate_ ACQUIRED_BEFORE(mu);\n"
      "void f(Box* box) {\n"
      "  MutexLock l1(box->mu);\n"
      "  MutexLock l2(this->gate_);\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint_content("src/net/x.cpp", src), "lock-order"));
}

TEST(LintLockOrder, CrossFileOrderViaExplicitMap) {
  // Edges declared in a header, inversion in the matching .cpp -- the
  // two-pass lint_tree wiring, exercised through the overload directly.
  const auto order = collect_lock_order("Mutex rng_mu_ ACQUIRED_BEFORE(sched_mu_);\n");
  const std::string cpp =
      "void N::stop() {\n"
      "  MutexLock l1(sched_mu_);\n"
      "  MutexLock l2(rng_mu_);\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint_content("src/runtime/n.cpp", cpp, order), "lock-order"));
  EXPECT_FALSE(has_rule(lint_content("src/runtime/n.cpp", cpp, LockOrder{}),
                        "lock-order"));
}

TEST(LintLockOrder, Waivable) {
  const std::string src =
      "Mutex a_ ACQUIRED_BEFORE(b_);\n"
      "Mutex b_;\n"
      "void f() {\n"
      "  MutexLock l1(b_);\n"
      "  // bftreg-lint: allow(lock-order) teardown holds both, documented\n"
      "  MutexLock l2(a_);\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_content("src/net/x.cpp", src), "lock-order"));
}

TEST(LintFormat, CompilerStyleOutput) {
  const Violation v{"src/a.cpp", 7, "detach", "msg"};
  EXPECT_EQ(format(v), "src/a.cpp:7: [detach] msg");
}

// The real tree must be clean -- this is the same check the ctest
// registration of the bftreg_lint binary performs, kept here too so a
// plain `ctest -R lint` covers both the rules and the tree.
TEST(LintTree, RepoSourcesAreClean) {
  const char* root = std::getenv("BFTREG_REPO_ROOT");
  if (root == nullptr) GTEST_SKIP() << "BFTREG_REPO_ROOT not set";
  const auto vs = lint_tree(root);
  for (const auto& v : vs) ADD_FAILURE() << format(v);
}

}  // namespace
}  // namespace bftreg::lint
