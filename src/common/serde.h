// Bounds-checked binary serialization.
//
// Every message that crosses the (simulated) network is flattened to bytes
// through `Serializer` and parsed back through `Deserializer`. Parsing must
// survive arbitrary adversarial payloads -- a Byzantine server may send any
// byte string -- so `Deserializer` never reads out of bounds and reports
// failure through `ok()` instead of crashing.
#pragma once

#include <cstring>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.h"

namespace bftreg {

/// Append-only little-endian encoder.
class Serializer {
 public:
  Serializer() = default;

  void put_u8(uint8_t v) { buf_.push_back(v); }

  void put_u16(uint16_t v) { put_uint(v, 2); }
  void put_u32(uint32_t v) { put_uint(v, 4); }
  void put_u64(uint64_t v) { put_uint(v, 8); }

  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  /// Grows the buffer's capacity by at least `additional` bytes. Callers
  /// that know a message's size (messages.cpp computes it exactly) reserve
  /// once up front so large coded elements append without realloc-copies.
  void reserve(size_t additional) { buf_.reserve(buf_.size() + additional); }

  /// Length-prefixed (u32) byte string.
  void put_bytes(const Bytes& b) {
    reserve(4 + b.size());
    put_u32(static_cast<uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  /// Same wire format from a borrowed view (zero-copy encode paths: the
  /// register server serializes history straight out of its value slab).
  void put_bytes(BytesView b) {
    reserve(4 + b.size());
    put_u32(static_cast<uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  void put_string(std::string_view s) {
    reserve(4 + s.size());
    put_u32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void put_process_id(const ProcessId& id) {
    put_u8(static_cast<uint8_t>(id.role));
    put_u32(id.index);
  }

  void put_tag(const Tag& t) {
    put_u64(t.num);
    put_process_id(t.writer);
  }

  size_t size() const { return buf_.size(); }

  /// Moves the accumulated buffer out; the serializer is reset. Discarding
  /// the return value would silently drop the encoded message.
  [[nodiscard]] Bytes take() { return std::move(buf_); }

  const Bytes& buffer() const { return buf_; }

 private:
  void put_uint(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

/// Bounds-checked little-endian decoder. After any failed read, `ok()` is
/// false and all subsequent reads return zero values; callers check `ok()`
/// once at the end of parsing a message.
class Deserializer {
 public:
  explicit Deserializer(const Bytes& data) : data_(data.data()), size_(data.size()) {}
  explicit Deserializer(BytesView data) : data_(data.data()), size_(data.size()) {}
  Deserializer(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  /// Checking ok()/done() is the whole point of the bounds-checked decoder:
  /// a call whose result is ignored is always a bug, hence [[nodiscard]].
  [[nodiscard]] bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

  /// True iff parsing succeeded AND consumed the whole buffer.
  [[nodiscard]] bool done() const { return ok_ && pos_ == size_; }

  uint8_t get_u8() { return static_cast<uint8_t>(get_uint(1)); }
  uint16_t get_u16() { return static_cast<uint16_t>(get_uint(2)); }
  uint32_t get_u32() { return static_cast<uint32_t>(get_uint(4)); }
  uint64_t get_u64() { return get_uint(8); }

  bool get_bool() { return get_u8() != 0; }

  Bytes get_bytes() {
    const BytesView v = get_bytes_view();
    return Bytes(v.begin(), v.end());
  }

  /// Zero-copy variant of get_bytes: a view into the message buffer, valid
  /// only while that buffer lives. Large-payload paths (coded elements,
  /// history entries) bounds-check and consume the bytes through this view
  /// and copy at most once, directly into their destination.
  BytesView get_bytes_view() {
    uint32_t len = get_u32();
    if (!ok_ || remaining() < len) {
      ok_ = false;
      return {};
    }
    const BytesView out(data_ + pos_, len);
    pos_ += len;
    return out;
  }

  std::string get_string() {
    const BytesView v = get_bytes_view();
    return std::string(v.begin(), v.end());
  }

  ProcessId get_process_id() {
    uint8_t role = get_u8();
    uint32_t index = get_u32();
    if (role > static_cast<uint8_t>(Role::kReader)) {
      ok_ = false;
      return {};
    }
    return ProcessId{static_cast<Role>(role), index};
  }

  Tag get_tag() {
    Tag t;
    t.num = get_u64();
    t.writer = get_process_id();
    return t;
  }

 private:
  uint64_t get_uint(int bytes) {
    if (!ok_ || remaining() < static_cast<size_t>(bytes)) {
      ok_ = false;
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += bytes;
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_{0};
  bool ok_{true};
};

}  // namespace bftreg
