// Network accounting used by the bandwidth/storage experiments (E4, E7).
#pragma once

#include <cstdint>

#include "common/sync.h"

namespace bftreg::net {

struct MetricsSnapshot {
  uint64_t messages_sent{0};
  uint64_t bytes_sent{0};
  uint64_t messages_delivered{0};
  uint64_t auth_failures{0};
  /// Frames shed by a bounded transport queue (or dropped after a failed
  /// reconnect) instead of blocking the sender. Client deadlines retransmit.
  uint64_t messages_dropped{0};
};

/// Thread-safe counters; the simulator uses it single-threaded, the
/// threaded runtime concurrently.
class NetworkMetrics {
 public:
  void on_send(uint64_t bytes) {
    MutexLock lock(mu_);
    ++snap_.messages_sent;
    snap_.bytes_sent += bytes;
  }
  void on_deliver() {
    MutexLock lock(mu_);
    ++snap_.messages_delivered;
  }
  void on_auth_failure() {
    MutexLock lock(mu_);
    ++snap_.auth_failures;
  }
  void on_drop() { on_drop_n(1); }
  void on_drop_n(uint64_t count) {
    MutexLock lock(mu_);
    snap_.messages_dropped += count;
  }

  MetricsSnapshot snapshot() const {
    MutexLock lock(mu_);
    return snap_;
  }

  void reset() {
    MutexLock lock(mu_);
    snap_ = MetricsSnapshot{};
  }

 private:
  mutable Mutex mu_;
  MetricsSnapshot snap_ GUARDED_BY(mu_);
};

}  // namespace bftreg::net
