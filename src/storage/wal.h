// Write-ahead log for durable register servers.
//
// The paper's model stops at fail-stop servers: a crashed server never
// returns. Real deployments restart processes, and a restarted server may
// rejoin safely *iff* it comes back with a state it legitimately held
// before the crash -- then it is indistinguishable from a slow-but-honest
// server, which every protocol here already tolerates. The WAL provides
// exactly that: PUT-DATA applications are logged before they are
// acknowledged, and recovery replays the log.
//
// Record format (little-endian):
//   [u32 magic][u32 object][tag: u64 num + role u8 + u32 idx]
//   [u32 value_len][value bytes][u32 crc]
// where crc covers everything from `object` through the value. Replay
// stops at the first malformed/torn record and reports how many bytes of
// tail were discarded -- the standard torn-write discipline.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace bftreg::storage {

struct WalRecord {
  uint32_t object{0};
  Tag tag{};
  Bytes value;

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

struct ReplayResult {
  std::vector<WalRecord> records;
  /// Bytes of unparseable tail discarded (0 on a clean log).
  size_t truncated_bytes{0};
};

class WriteAheadLog {
 public:
  /// Opens (creating if absent) the log at `path` for appending.
  explicit WriteAheadLog(std::string path);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record and flushes it to the OS (no fsync: the threat
  /// model here is process restart, not power loss).
  void append(const WalRecord& record);

  /// Rewrites the log to contain exactly `records` (compaction), via
  /// write-to-temp + atomic rename.
  void compact(const std::vector<WalRecord>& records);

  size_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

  /// Replays a log file; missing file yields an empty result.
  static ReplayResult replay(const std::string& path);

 private:
  void open_for_append();

  std::string path_;
  std::FILE* file_{nullptr};
  size_t bytes_written_{0};
};

}  // namespace bftreg::storage
