// Direct unit tests for each Byzantine strategy: what exactly does each
// adversary send back? (The integration suites verify protocols *survive*
// them; these verify the strategies behave as documented, so a test
// failure there can be attributed correctly.)
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "adversary/byzantine_server.h"
#include "adversary/churn.h"
#include "sim/simulator.h"

namespace bftreg::adversary {
namespace {

using registers::MsgType;
using registers::RegisterMessage;

class Probe final : public net::IProcess {
 public:
  void on_message(const net::Envelope& env) override {
    raw.push_back(env.payload.to_bytes());
    if (auto m = RegisterMessage::parse(env.payload)) parsed.push_back(*m);
  }
  std::vector<Bytes> raw;
  std::vector<RegisterMessage> parsed;
};

class AdversaryFixture : public ::testing::Test {
 protected:
  AdversaryFixture() : sim_(sim::SimConfig::with_fixed_delay(1, 10)) {
    sim_.add_process(client_, &probe_);
  }

  ByzantineServer* make(StrategyKind kind, uint64_t seed = 7) {
    ServerContext ctx;
    ctx.self = ProcessId::server(0);
    ctx.config.n = 5;
    ctx.config.f = 1;
    ctx.transport = &sim_;
    ctx.initial = Bytes{'i', 'n', 'i', 't'};
    ctx.rng = Rng(seed);
    server_ = std::make_unique<ByzantineServer>(std::move(ctx),
                                                make_strategy(kind, seed));
    sim_.add_process(ProcessId::server(0), server_.get());
    return server_.get();
  }

  void send(MsgType type, uint64_t op = 1, Tag tag = {}, Bytes value = {}) {
    RegisterMessage m;
    m.type = type;
    m.op_id = op;
    m.tag = tag;
    m.value = std::move(value);
    sim_.send(client_, ProcessId::server(0), m.encode());
    sim_.run_until_idle();
  }

  sim::Simulator sim_;
  ProcessId client_ = ProcessId::reader(0);
  Probe probe_;
  std::unique_ptr<ByzantineServer> server_;
};

TEST_F(AdversaryFixture, SilentNeverResponds) {
  make(StrategyKind::kSilent);
  send(MsgType::kQueryTag);
  send(MsgType::kQueryData);
  send(MsgType::kPutData, 2, Tag{1, ProcessId::writer(0)}, Bytes{'x'});
  EXPECT_TRUE(probe_.raw.empty());
}

TEST_F(AdversaryFixture, StaleAlwaysAnswersInitialState) {
  make(StrategyKind::kStale);
  send(MsgType::kPutData, 1, Tag{9, ProcessId::writer(0)}, Bytes{'n', 'e', 'w'});
  send(MsgType::kQueryData, 2);
  ASSERT_EQ(probe_.parsed.size(), 2u);
  EXPECT_EQ(probe_.parsed[0].type, MsgType::kAck);  // acks without storing
  EXPECT_EQ(probe_.parsed[1].type, MsgType::kDataResp);
  EXPECT_EQ(probe_.parsed[1].tag, Tag::initial());
  EXPECT_EQ(probe_.parsed[1].value, (Bytes{'i', 'n', 'i', 't'}));
}

TEST_F(AdversaryFixture, FabricateInventsHugeTags) {
  make(StrategyKind::kFabricate);
  send(MsgType::kQueryTag);
  send(MsgType::kQueryData, 2);
  ASSERT_EQ(probe_.parsed.size(), 2u);
  EXPECT_GE(probe_.parsed[0].tag.num, 1'000'000'000u);
  EXPECT_GE(probe_.parsed[1].tag.num, 1'000'000'000u);
  EXPECT_FALSE(probe_.parsed[1].value.empty());
}

TEST_F(AdversaryFixture, ColludersWithSameSeedMatchExactly) {
  // Two colluders constructed with the same team seed must fabricate the
  // identical pair for the same op -- that is the whole attack.
  sim::Simulator sim2(sim::SimConfig::with_fixed_delay(1, 10));
  Probe probe2;
  sim2.add_process(ProcessId::reader(0), &probe2);
  ServerContext ctx;
  ctx.self = ProcessId::server(1);
  ctx.config.n = 5;
  ctx.config.f = 1;
  ctx.transport = &sim2;
  ctx.rng = Rng(123);
  ByzantineServer other(std::move(ctx),
                        std::make_unique<ColludeStrategy>(42));
  sim2.add_process(ProcessId::server(1), &other);
  make(StrategyKind::kCollude, 42);

  send(MsgType::kQueryData, 5);
  RegisterMessage q;
  q.type = MsgType::kQueryData;
  q.op_id = 5;
  sim2.send(ProcessId::reader(0), ProcessId::server(1), q.encode());
  sim2.run_until_idle();

  ASSERT_EQ(probe_.parsed.size(), 1u);
  ASSERT_EQ(probe2.parsed.size(), 1u);
  EXPECT_EQ(probe_.parsed[0].tag, probe2.parsed[0].tag);
  EXPECT_EQ(probe_.parsed[0].value, probe2.parsed[0].value);
}

TEST_F(AdversaryFixture, ColludersFabricationVariesWithOp) {
  make(StrategyKind::kCollude, 42);
  send(MsgType::kQueryData, 1);
  send(MsgType::kQueryData, 2);
  ASSERT_EQ(probe_.parsed.size(), 2u);
  EXPECT_NE(probe_.parsed[0].value, probe_.parsed[1].value);
}

TEST_F(AdversaryFixture, DoubleReplierSendsTwoConflictingAnswers) {
  make(StrategyKind::kDoubleReply);
  send(MsgType::kQueryData);
  ASSERT_EQ(probe_.parsed.size(), 2u);
  EXPECT_NE(probe_.parsed[0].tag, probe_.parsed[1].tag);
}

TEST_F(AdversaryFixture, MalformedSendsUnparsableJunk) {
  make(StrategyKind::kMalformed);
  send(MsgType::kQueryData);
  send(MsgType::kQueryTag, 2);
  EXPECT_GE(probe_.raw.size(), 2u);
  EXPECT_TRUE(probe_.parsed.empty()) << "junk must not parse as a message";
}

TEST_F(AdversaryFixture, TurncoatIsHonestThenStale) {
  make(StrategyKind::kTurncoat);  // honest for 20 messages
  const Tag t{3, ProcessId::writer(0)};
  send(MsgType::kPutData, 1, t, Bytes{'v'});
  send(MsgType::kQueryData, 2);
  ASSERT_EQ(probe_.parsed.size(), 2u);
  EXPECT_EQ(probe_.parsed[1].tag, t) << "still honest: serves the stored pair";

  // Burn through the honest budget.
  for (uint64_t i = 0; i < 20; ++i) send(MsgType::kQueryTag, 100 + i);
  probe_.parsed.clear();
  send(MsgType::kQueryData, 999);
  ASSERT_EQ(probe_.parsed.size(), 1u);
  EXPECT_EQ(probe_.parsed[0].tag, Tag::initial()) << "turned: stale answers";
}

TEST_F(AdversaryFixture, StrategyNamesRoundTrip) {
  for (auto kind : kAllStrategyKinds) {
    EXPECT_STRNE(to_string(kind), "?");
  }
}

// ------------------------------------------------- churn schedules

std::vector<ChurnSchedule> all_churn_schedules(size_t victim) {
  return {crash_during_write_schedule(victim),
          crash_during_read_writeback_schedule(victim),
          rejoin_mid_round_schedule(victim)};
}

TEST(ChurnScheduleTest, BuildersProduceSortedNamedSchedules) {
  std::set<std::string> names;
  for (const auto& s : all_churn_schedules(2)) {
    EXPECT_FALSE(s.name.empty());
    names.insert(s.name);
    ASSERT_FALSE(s.steps.empty()) << s.name;
    for (size_t i = 1; i < s.steps.size(); ++i) {
      EXPECT_LE(s.steps[i - 1].at, s.steps[i].at)
          << s.name << ": steps must be time-ordered (the interpreter "
          << "advances virtual time monotonically)";
    }
  }
  EXPECT_EQ(names.size(), 3u) << "names key the RNG reseed; must be distinct";
}

TEST(ChurnScheduleTest, VictimIndexReachesEveryCrashAndRestart) {
  for (const auto& s : all_churn_schedules(3)) {
    size_t crashes = 0;
    size_t restarts = 0;
    for (const auto& step : s.steps) {
      if (step.action == ChurnAction::kCrash) {
        ++crashes;
        EXPECT_EQ(step.index, 3u) << s.name;
      }
      if (step.action == ChurnAction::kRestart) {
        ++restarts;
        EXPECT_EQ(step.index, 3u) << s.name;
      }
    }
    EXPECT_EQ(crashes, 1u) << s.name;
    EXPECT_EQ(restarts, 1u) << s.name;
  }
}

TEST(ChurnScheduleTest, RestartAlwaysFollowsItsCrash) {
  for (const auto& s : all_churn_schedules(0)) {
    TimeNs crash_at = 0;
    TimeNs restart_at = 0;
    for (const auto& step : s.steps) {
      if (step.action == ChurnAction::kCrash) crash_at = step.at;
      if (step.action == ChurnAction::kRestart) restart_at = step.at;
    }
    EXPECT_LT(crash_at, restart_at) << s.name;
  }
}

TEST(ChurnScheduleTest, ActionNamesRoundTrip) {
  EXPECT_STREQ(to_string(ChurnAction::kCrash), "crash");
  EXPECT_STREQ(to_string(ChurnAction::kRestart), "restart");
  EXPECT_STREQ(to_string(ChurnAction::kStartWrite), "start-write");
  EXPECT_STREQ(to_string(ChurnAction::kStartRead), "start-read");
}

}  // namespace
}  // namespace bftreg::adversary
