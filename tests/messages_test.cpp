// Wire-format tests: round trips and adversarial payload handling.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "registers/messages.h"

namespace bftreg::registers {
namespace {

TEST(MessagesTest, RoundTripQueryTag) {
  RegisterMessage m;
  m.type = MsgType::kQueryTag;
  m.op_id = 42;
  auto parsed = RegisterMessage::parse(m.encode());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, MsgType::kQueryTag);
  EXPECT_EQ(parsed->op_id, 42u);
}

TEST(MessagesTest, RoundTripPutData) {
  RegisterMessage m;
  m.type = MsgType::kPutData;
  m.op_id = 7;
  m.tag = Tag{99, ProcessId::writer(3)};
  m.value = Bytes{1, 2, 3, 4, 5};
  auto parsed = RegisterMessage::parse(m.encode());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tag, m.tag);
  EXPECT_EQ(parsed->value, m.value);
}

TEST(MessagesTest, RoundTripHistory) {
  RegisterMessage m;
  m.type = MsgType::kHistoryResp;
  m.op_id = 1;
  m.history = {TaggedValue{Tag{1, ProcessId::writer(0)}, Bytes{9}},
               TaggedValue{Tag{2, ProcessId::writer(1)}, Bytes{8, 8}},
               TaggedValue{Tag::initial(), {}}};
  auto parsed = RegisterMessage::parse(m.encode());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->history, m.history);
}

TEST(MessagesTest, RoundTripTagHistory) {
  RegisterMessage m;
  m.type = MsgType::kTagHistoryResp;
  m.tags = {Tag::initial(), Tag{5, ProcessId::writer(2)}};
  auto parsed = RegisterMessage::parse(m.encode());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tags, m.tags);
}

TEST(MessagesTest, RoundTripEveryType) {
  for (uint8_t t = 1; t <= static_cast<uint8_t>(MsgType::kDataUpdate); ++t) {
    RegisterMessage m;
    m.type = static_cast<MsgType>(t);
    m.op_id = t;
    auto parsed = RegisterMessage::parse(m.encode());
    ASSERT_TRUE(parsed.has_value()) << "type=" << int(t);
    EXPECT_EQ(parsed->type, m.type);
  }
}

TEST(MessagesTest, RejectsEmptyPayload) {
  EXPECT_FALSE(RegisterMessage::parse({}).has_value());
}

TEST(MessagesTest, RejectsUnknownType) {
  RegisterMessage m;
  m.type = MsgType::kQueryTag;
  Bytes b = m.encode();
  b[0] = 0;  // below range
  EXPECT_FALSE(RegisterMessage::parse(b).has_value());
  b[0] = 200;  // above range
  EXPECT_FALSE(RegisterMessage::parse(b).has_value());
}

TEST(MessagesTest, RejectsTruncation) {
  RegisterMessage m;
  m.type = MsgType::kPutData;
  m.value = Bytes(100, 7);
  Bytes b = m.encode();
  for (size_t cut : {size_t{1}, size_t{10}, size_t{50}, b.size() - 1}) {
    Bytes t(b.begin(), b.begin() + cut);
    EXPECT_FALSE(RegisterMessage::parse(t).has_value()) << "cut=" << cut;
  }
}

TEST(MessagesTest, RejectsTrailingGarbage) {
  RegisterMessage m;
  m.type = MsgType::kAck;
  Bytes b = m.encode();
  b.push_back(0xFF);
  EXPECT_FALSE(RegisterMessage::parse(b).has_value());
}

TEST(MessagesTest, RejectsForgedHistoryCount) {
  // Claim 2^30 history entries with a tiny buffer: must fail fast, not OOM.
  RegisterMessage m;
  m.type = MsgType::kHistoryResp;
  Bytes b = m.encode();
  // history count lives right after type(1) + op_id(8) + object(4) +
  // tag(13) + value len(4).
  const size_t off = 1 + 8 + 4 + 13 + 4;
  b[off] = 0xFF;
  b[off + 1] = 0xFF;
  b[off + 2] = 0xFF;
  b[off + 3] = 0x3F;
  EXPECT_FALSE(RegisterMessage::parse(b).has_value());
}

TEST(MessagesTest, SurvivesRandomFuzzWithoutCrashing) {
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    Bytes junk(rng.uniform(128));
    for (auto& v : junk) v = static_cast<uint8_t>(rng.uniform(256));
    auto parsed = RegisterMessage::parse(junk);  // must not crash or hang
    (void)parsed;
  }
  SUCCEED();
}

TEST(MessagesTest, MutationFuzzRoundTripNeverCrashes) {
  Rng rng(123);
  RegisterMessage m;
  m.type = MsgType::kHistoryResp;
  m.history = {TaggedValue{Tag{1, ProcessId::writer(0)}, Bytes(32, 1)},
               TaggedValue{Tag{2, ProcessId::writer(0)}, Bytes(32, 2)}};
  const Bytes base = m.encode();
  for (int i = 0; i < 5000; ++i) {
    Bytes mutated = base;
    const size_t flips = 1 + rng.uniform(4);
    for (size_t j = 0; j < flips; ++j) {
      mutated[rng.uniform(mutated.size())] ^= static_cast<uint8_t>(1 + rng.uniform(255));
    }
    auto parsed = RegisterMessage::parse(mutated);
    (void)parsed;
  }
  SUCCEED();
}

}  // namespace
}  // namespace bftreg::registers
