// Register server: Fig. 3 (BSR) / Fig. 6 (BCSR), plus the responses needed
// by the Section III-C regularity extensions.
//
// The server is value-agnostic: for BSR the stored bytes are full register
// values, for BCSR they are this server's coded elements; the protocol logic
// is identical (the paper's Figs. 3 and 6 differ only in what `v` is). It
// serves the model's whole set of shared variables (Section II-B): every
// request names an object id, and the server keeps one list L per object,
// lazily initialized to {(t0, initial)}.
//
// Supported requests:
//   QUERY-TAG           -> TAG-RESP(max tag in L)              (get-tag-resp)
//   PUT-DATA(t, v)      -> ACK; L grows per StorePolicy        (put-data-resp)
//   QUERY-DATA          -> DATA-RESP(max pair in L)            (get-data-resp)
//   QUERY-HISTORY       -> HISTORY-RESP(entire L)      (history regularity fix)
//   QUERY-TAG-HISTORY   -> TAG-HISTORY-RESP(all tags)     (2R read, phase one)
//   QUERY-DATA-AT(t)    -> DATA-AT-RESP(t, v) now or deferred until t arrives;
//                          DATA-AT-MISSING immediately if unknown
//   READ-DONE           -> drops any deferred queries from that reader
//   QUERY-DATA-BATCH    -> DATA-BATCH-RESP: the newest pair of every object
//                          named in the request (extension: one-shot multi-get)
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "net/transport.h"
#include "registers/config.h"
#include "registers/messages.h"

namespace bftreg::registers {

class RegisterServer : public net::IProcess {
 public:
  /// `initial` is what this server stores under the distinguished tag t0
  /// for every object: the register's v0 for BSR, or this server's coded
  /// element Phi_i(v0) for BCSR.
  RegisterServer(ProcessId self, SystemConfig config, net::Transport* transport,
                 Bytes initial);

  void on_message(const net::Envelope& env) override;

  // --- introspection (tests, storage accounting for E4) -------------------

  /// The list L for `object` (creating it if this server has never heard
  /// of the object -- harmless, matches lazy initialization).
  const std::map<Tag, Bytes>& store(uint32_t object = 0) {
    return object_store(object);
  }
  Tag max_tag(uint32_t object = 0) {
    return object_store(object).rbegin()->first;
  }
  const Bytes& max_value(uint32_t object = 0) {
    return object_store(object).rbegin()->second;
  }

  /// Total payload bytes stored across every object (the paper's
  /// storage-cost metric).
  size_t stored_bytes() const;

  size_t objects_known() const { return stores_.size(); }
  std::vector<uint32_t> object_ids() const {
    std::vector<uint32_t> out;
    out.reserve(stores_.size());
    for (const auto& [object, store] : stores_) out.push_back(object);
    return out;
  }
  uint64_t puts_applied() const { return puts_applied_; }

 protected:
  /// Inserts (tag, value) according to the store policy; returns true if the
  /// entry was added. Also satisfies deferred QUERY-DATA-AT readers.
  /// Virtual so durable servers (storage::PersistentRegisterServer) can
  /// interpose write-ahead logging.
  virtual bool apply_put(uint32_t object, const Tag& tag, Bytes value);

  void reply(const ProcessId& to, const RegisterMessage& msg);

  std::map<Tag, Bytes>& object_store(uint32_t object);

  /// Read-only lookup of L: nullptr when this server has never stored a put
  /// for `object`. Unlike object_store(), never inserts -- read-only
  /// handlers answer for unknown objects as if the store were its lazy
  /// initialization {(t0, initial)}, WITHOUT materializing it, so a client
  /// (or Byzantine peer) querying random object ids cannot balloon server
  /// state.
  const std::map<Tag, Bytes>* find_store(uint32_t object) const;

  /// Newest (tag, value) of `object` without creating its store; the value
  /// pointer aliases either the store or `initial_`.
  std::pair<Tag, const Bytes*> newest_entry(uint32_t object) const;

  const ProcessId self_;
  const SystemConfig config_;
  net::Transport* const transport_;

 private:
  void handle_query_tag(const ProcessId& from, const RegisterMessage& req);
  void handle_put_data(const ProcessId& from, RegisterMessage req);
  void handle_query_data(const ProcessId& from, const RegisterMessage& req);
  void handle_query_history(const ProcessId& from, const RegisterMessage& req);
  void handle_query_tag_history(const ProcessId& from, const RegisterMessage& req);
  void handle_query_data_at(const ProcessId& from, const RegisterMessage& req);
  void handle_read_done(const ProcessId& from, const RegisterMessage& req);
  void handle_query_data_batch(const ProcessId& from, const RegisterMessage& req);

  Bytes initial_;
  /// object id -> the list L of Fig. 3 / Fig. 6.
  std::map<uint32_t, std::map<Tag, Bytes>> stores_;
  /// Readers waiting for a tag they asked about that we have not yet seen:
  /// (object, tag) -> [(reader, op_id)].
  std::map<std::pair<uint32_t, Tag>, std::vector<std::pair<ProcessId, uint64_t>>>
      deferred_;
  /// Reverse index: (reader, op_id) -> the deferred_ keys that hold its
  /// waiters, so READ-DONE cancels with two targeted lookups instead of
  /// sweeping every deferred entry (which is O(all waiters server-wide) and
  /// grows with unrelated readers' backlogs).
  std::map<std::pair<ProcessId, uint64_t>, std::vector<std::pair<uint32_t, Tag>>>
      deferred_by_op_;
  uint64_t puts_applied_{0};
};

}  // namespace bftreg::registers
