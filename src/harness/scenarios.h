// Scripted executions from the paper's proofs, packaged for reuse by
// tests, examples and the resilience benches. Also the interpreter for the
// declarative churn schedules (adversary/churn.h).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adversary/byzantine_server.h"
#include "adversary/churn.h"
#include "harness/sim_cluster.h"

namespace bftreg::harness {

/// The Theorem 5 Byzantine server: stores PUT-DATA honestly and answers
/// QUERY-TAG honestly, but serves readers the *second newest* pair --
/// "s_0 returns v1 instead of v2".
class LaggingLiar final : public adversary::Strategy {
 public:
  void handle(const net::Envelope& env, adversary::ServerContext& ctx) override;

 private:
  std::map<Tag, Bytes> store_;
};

/// Runs the Theorem 5 proof schedule on `cluster` (requires 2 writers and
/// 1 reader; server 0 should be a LaggingLiar):
///   W1(v1) completes with PUT-DATA withheld from the last server;
///   W2(v2) completes with PUT-DATA withheld from server 1;
///   the read runs with the last server's replies delayed.
/// Returns the value the read returned. At n = 4f the result is the stale
/// "v1"; at n = 4f+1 the same schedule yields "v2".
Bytes run_theorem5_schedule(SimCluster& cluster);

/// Runs the Theorem 3 schedule (requires n = 5, f = 1, 5 writers, 1
/// reader): W1(v1) completes everywhere; W2..W5 start writes whose
/// PUT-DATA reaches only "their" server; the read then runs. Plain BSR
/// returns v0 (regularity violation); the history/2R variants return v1.
registers::ReadResult run_theorem3_schedule(SimCluster& cluster);

// --- churn schedules ---------------------------------------------------------

/// Deterministic per-schedule seed: fnv1a64 over the schedule NAME, xored
/// with the cluster's base seed. ctest may shuffle test order (and earlier
/// operations advance a shared RNG's state), so run_churn_schedule reseeds
/// the scenario RNG from this value -- a failing schedule then replays
/// bit-identically from (name, base seed) alone, in any test order.
uint64_t schedule_seed(const std::string& name, uint64_t base_seed);

/// What a churn schedule run observed; the caller feeds the cluster's
/// recorder to checker::consistency afterwards.
struct ChurnOutcome {
  /// The reseed actually applied (schedule_seed of name x base).
  uint64_t seed{0};
  /// Recorder ids of the writes/reads the schedule started (all awaited).
  std::vector<uint64_t> write_ids;
  std::vector<uint64_t> read_ids;
  /// Requests the recovering server(s) dropped while catching up, summed.
  uint64_t refused_during_catch_up{0};
  /// Every restarted server finished catch-up and is serving again.
  bool recovered_serving{true};
};

/// Interprets `schedule` against `cluster` (requires options.wal_dir for
/// kRestart steps): reseeds the scenario RNG via schedule_seed, applies
/// each step at its virtual-time offset, awaits every started operation,
/// and drives the simulator until all restarted servers serve again.
ChurnOutcome run_churn_schedule(SimCluster& cluster,
                                const adversary::ChurnSchedule& schedule);

}  // namespace bftreg::harness
