// Integration and property tests for BCSR (Section IV): the SWMR
// erasure-coded safe register with one-shot reads, n >= 5f+1.
#include <gtest/gtest.h>

#include <string>

#include "checker/consistency.h"
#include "harness/sim_cluster.h"
#include "workload/workload.h"

namespace bftreg::harness {
namespace {

using adversary::StrategyKind;
using checker::CheckOptions;
using checker::check_safety;

ClusterOptions bcsr_options(size_t n, size_t f, uint64_t seed = 1,
                            size_t readers = 2) {
  ClusterOptions o;
  o.protocol = Protocol::kBcsr;
  o.config.n = n;
  o.config.f = f;
  o.config.initial_value = Bytes{};
  o.num_writers = 1;  // SWMR
  o.num_readers = readers;
  o.seed = seed;
  return o;
}

CheckOptions bcsr_check() {
  CheckOptions c;
  c.reads_report_tags = false;  // coded reads return values, not tags
  return c;
}

TEST(BcsrTest, ReadBeforeAnyWriteReturnsInitialValue) {
  SimCluster cluster(bcsr_options(6, 1));
  const auto r = cluster.read(0);
  EXPECT_EQ(r.value, Bytes{});
  EXPECT_TRUE(r.fresh);  // v0's codeword decodes fine
}

TEST(BcsrTest, ReadAfterWriteDecodesWrittenValue) {
  SimCluster cluster(bcsr_options(6, 1));
  const Bytes payload = workload::make_value(1, 0, 300);
  cluster.write(0, payload);
  const auto r = cluster.read(0);
  EXPECT_EQ(r.value, payload);
  EXPECT_EQ(r.rounds, 1);
}

TEST(BcsrTest, ServersStoreElementsNotFullValues) {
  // The paper's storage argument (Section I-C): each server holds ~1/k of
  // the value, so total storage is ~n/k, not n.
  const size_t n = 11;
  const size_t f = 1;  // k = n - 5f = 6
  SimCluster cluster(bcsr_options(n, f));
  const Bytes payload = workload::make_value(2, 0, 6000);
  cluster.write(0, payload);
  cluster.sim().run_until_idle();

  const size_t k = n - 5 * f;
  for (size_t i = 0; i < n; ++i) {
    auto* srv = cluster.server(i);
    ASSERT_NE(srv, nullptr);
    const size_t element = srv->max_value().size();
    EXPECT_LT(element, payload.size() / k + 64)
        << "server " << i << " stores a near-1/k share";
    EXPECT_GT(element, payload.size() / k - 64);
  }
}

TEST(BcsrTest, SequentialWritesAlwaysReadLatest) {
  SimCluster cluster(bcsr_options(11, 2, 5));
  for (int i = 0; i < 6; ++i) {
    const Bytes payload = workload::make_value(5, i, 100 + i * 37);
    cluster.write(0, payload);
    EXPECT_EQ(cluster.read(i % 2).value, payload) << "write " << i;
  }
  const auto res = check_safety(cluster.recorder().ops(), bcsr_check());
  EXPECT_TRUE(res.ok) << res.violation;
}

TEST(BcsrTest, LivenessWithFCrashedServers) {
  SimCluster cluster(bcsr_options(6, 1));
  cluster.start();
  cluster.crash_server(2);
  const Bytes payload = workload::make_value(3, 0, 128);
  cluster.write(0, payload);
  EXPECT_EQ(cluster.read(0).value, payload);
}

TEST(BcsrTest, EmptyAndTinyValuesRoundTrip) {
  SimCluster cluster(bcsr_options(6, 1));
  cluster.write(0, Bytes{});
  EXPECT_EQ(cluster.read(0).value, Bytes{});
  cluster.write(0, Bytes{0x42});
  EXPECT_EQ(cluster.read(0).value, Bytes{0x42});
}

TEST(BcsrTest, LargeValueRoundTrip) {
  SimCluster cluster(bcsr_options(11, 2));
  const Bytes payload = workload::make_value(7, 0, 100'000);
  cluster.write(0, payload);
  EXPECT_EQ(cluster.read(0).value, payload);
}

struct BcsrSweepParam {
  StrategyKind kind;
  size_t n;
  size_t f;
};

class BcsrAdversarySweep : public ::testing::TestWithParam<BcsrSweepParam> {};

TEST_P(BcsrAdversarySweep, SequentialWorkloadSafeUnderFByzantine) {
  const auto [kind, n, f] = GetParam();
  SimCluster cluster(bcsr_options(n, f, 101 + n + f));
  for (size_t i = 0; i < f; ++i) {
    cluster.set_byzantine((i * 3 + 2) % n, kind);
  }
  for (int i = 0; i < 8; ++i) {
    const Bytes payload = workload::make_value(n, i, 64 + i * 11);
    cluster.write(0, payload);
    EXPECT_EQ(cluster.read(i % 2).value, payload)
        << to_string(kind) << " n=" << n << " f=" << f << " round " << i;
  }
  const auto res = check_safety(cluster.recorder().ops(), bcsr_check());
  EXPECT_TRUE(res.ok) << res.violation;
}

std::vector<BcsrSweepParam> bcsr_sweep_params() {
  std::vector<BcsrSweepParam> out;
  for (StrategyKind kind : adversary::kAllStrategyKinds) {
    out.push_back({kind, 6, 1});
    out.push_back({kind, 11, 2});
    out.push_back({kind, 16, 3});
    out.push_back({kind, 18, 3});  // n > 5f+1: slack beyond the bound
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, BcsrAdversarySweep,
                         ::testing::ValuesIn(bcsr_sweep_params()),
                         [](const auto& info) {
                           std::string name = adversary::to_string(info.param.kind);
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name + "_n" + std::to_string(info.param.n);
                         });

// Lemma 4's exact adversarial mix, end to end: f Byzantine garbage + f
// stale-honest servers, reader still decodes the latest value.
TEST(BcsrTest, Lemma4WorstCaseMix) {
  const size_t n = 11;
  const size_t f = 2;
  SimCluster cluster(bcsr_options(n, f, 77));
  cluster.set_byzantine(0, StrategyKind::kFabricate);
  cluster.set_byzantine(1, StrategyKind::kFabricate);

  // Make two honest servers permanently slow for PUT-DATA only, so their
  // elements are stale at read time (they are the paper's "erroneous by
  // staleness" elements).
  cluster.start();
  auto& delay = cluster.sim().delay_model();
  delay.set_hook([](const net::Envelope& env) -> std::optional<TimeNs> {
    if (!env.to.is_server()) return std::nullopt;
    if (env.to.index != 2 && env.to.index != 3) return std::nullopt;
    auto msg = registers::RegisterMessage::parse(env.payload);
    if (msg && msg->type == registers::MsgType::kPutData) {
      return TimeNs{100'000'000};  // effectively never before the read
    }
    return std::nullopt;
  });

  const Bytes v1 = workload::make_value(9, 1, 256);
  cluster.write(0, v1);  // completes: n-f acks don't need the slow two
  const Bytes v2 = workload::make_value(9, 2, 256);
  cluster.write(0, v2);
  EXPECT_EQ(cluster.read(0).value, v2);
}

class BcsrRandomScheduleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BcsrRandomScheduleTest, RandomExecutionIsSafe) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 31 + 7);
  const size_t f = 1 + rng.uniform(2);
  const size_t n = 5 * f + 1 + rng.uniform(3);
  SimCluster cluster(bcsr_options(n, f, seed, /*readers=*/2));
  for (size_t i = 0; i < f; ++i) {
    const auto kind = adversary::kAllStrategyKinds[rng.uniform(
        std::size(adversary::kAllStrategyKinds))];
    cluster.set_byzantine(rng.uniform(n), kind);
  }

  // SWMR: one writer; reads from two readers interleave with the writes.
  // (Plain flag + id instead of std::optional: GCC 12's -Wmaybe-uninitialized
  // false-positives on the optional in this loop shape.)
  uint64_t wop_id = 0;
  bool wop_active = false;
  std::vector<std::optional<uint64_t>> rop(2);
  uint64_t counter = 0;
  for (int step = 0; step < 60; ++step) {
    if (wop_active && cluster.op_done(wop_id)) wop_active = false;
    for (auto& r : rop) {
      if (r && cluster.op_done(*r)) r.reset();
    }
    if (!wop_active && rng.bernoulli(0.35)) {
      wop_id = cluster.start_write(0, workload::make_value(seed, counter++, 48));
      wop_active = true;
    }
    const size_t rc = rng.uniform(2);
    if (!rop[rc] && rng.bernoulli(0.6)) rop[rc] = cluster.start_read(rc);
    cluster.sim().run_until_time(cluster.sim().now() + rng.uniform(3000));
  }
  if (wop_active) cluster.await(wop_id);
  for (auto& r : rop) {
    if (r) cluster.await(*r);
  }

  const auto res = check_safety(cluster.recorder().ops(), bcsr_check());
  EXPECT_TRUE(res.ok) << "seed=" << seed << ": " << res.violation << "\n"
                      << cluster.recorder().dump();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BcsrRandomScheduleTest,
                         ::testing::Range<uint64_t>(1, 16));

}  // namespace
}  // namespace bftreg::harness
