#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/sync.h"

namespace bftreg {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
// Serializes whole lines to stderr so concurrent loggers never interleave.
// bftreg-lint: allow(unguarded-mutex) -- the guarded resource is stderr.
Mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void init_log_from_env() {
  const char* env = std::getenv("BFTREG_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) set_log_level(LogLevel::kDebug);
  else if (std::strcmp(env, "info") == 0) set_log_level(LogLevel::kInfo);
  else if (std::strcmp(env, "warn") == 0) set_log_level(LogLevel::kWarn);
  else if (std::strcmp(env, "error") == 0) set_log_level(LogLevel::kError);
  else if (std::strcmp(env, "off") == 0) set_log_level(LogLevel::kOff);
}

void log_line(LogLevel level, const std::string& msg) {
  if (log_level() > level) return;
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace bftreg
