#include "harness/thread_cluster.h"

#include <cassert>
#include <chrono>
#include <future>
#include <thread>

#include "common/log.h"
#include "storage/persistent_server.h"

namespace bftreg::harness {

using registers::ReadResult;
using registers::WriteResult;

struct ThreadCluster::WriterSlot {
  std::unique_ptr<net::IProcess> proc;
  std::function<void(Bytes, registers::BsrWriter::Callback)> start;
};

struct ThreadCluster::ReaderSlot {
  std::unique_ptr<net::IProcess> proc;
  std::function<void(registers::BsrReader::Callback)> start;
};

ThreadCluster::ThreadCluster(ThreadClusterOptions options)
    : options_(std::move(options)) {
  runtime::RuntimeConfig rc;
  rc.seed = options_.seed;
  if (options_.delay_hi > 0) {
    rc.delay = std::make_unique<net::UniformDelay>(options_.delay_lo,
                                                   options_.delay_hi);
  }
  net_ = std::make_unique<runtime::ThreadNetwork>(std::move(rc));
  if (options_.protocol == Protocol::kBcsr) {
    initial_elements_ = registers::bcsr_initial_elements(options_.config);
  }
  build();
}

ThreadCluster::~ThreadCluster() { stop(); }

Bytes ThreadCluster::initial_for_server(size_t index) const {
  if (options_.protocol == Protocol::kBcsr) return initial_elements_[index];
  return options_.config.initial_value;
}

std::string ThreadCluster::wal_path(size_t index) const {
  return options_.wal_dir + "/server-" + std::to_string(index) + ".wal";
}

void ThreadCluster::build() {
  const auto& cfg = options_.config;

  servers_.resize(cfg.n);
  persistent_servers_.assign(cfg.n, nullptr);
  for (size_t i = 0; i < cfg.n; ++i) {
    const ProcessId pid = ProcessId::server(static_cast<uint32_t>(i));
    if (options_.protocol == Protocol::kRb) {
      servers_[i] = std::make_unique<registers::RbServer>(pid, cfg, net_.get(),
                                                          initial_for_server(i));
    } else if (!options_.wal_dir.empty()) {
      auto srv = std::make_unique<storage::PersistentRegisterServer>(
          pid, cfg, net_.get(), initial_for_server(i), wal_path(i));
      persistent_servers_[i] = srv.get();
      servers_[i] = std::move(srv);
    } else {
      servers_[i] = std::make_unique<registers::RegisterServer>(
          pid, cfg, net_.get(), initial_for_server(i));
    }
  }

  for (size_t i = 0; i < options_.num_writers; ++i) {
    const ProcessId pid = ProcessId::writer(static_cast<uint32_t>(i));
    auto slot = std::make_unique<WriterSlot>();
    if (options_.protocol == Protocol::kBcsr) {
      auto w = std::make_unique<registers::BcsrWriter>(pid, cfg, net_.get());
      auto* raw = w.get();
      slot->start = [raw](Bytes v, registers::BsrWriter::Callback cb) {
        raw->start_write(std::move(v), std::move(cb));
      };
      slot->proc = std::move(w);
    } else {
      auto w = std::make_unique<registers::BsrWriter>(pid, cfg, net_.get());
      auto* raw = w.get();
      slot->start = [raw](Bytes v, registers::BsrWriter::Callback cb) {
        raw->start_write(std::move(v), std::move(cb));
      };
      slot->proc = std::move(w);
    }
    writers_.push_back(std::move(slot));
  }

  auto make_reader = [&](const ProcessId& pid,
                         auto reader_ptr) -> std::unique_ptr<ReaderSlot> {
    auto slot = std::make_unique<ReaderSlot>();
    auto* raw = reader_ptr.get();
    slot->start = [raw](registers::BsrReader::Callback cb) {
      raw->start_read(std::move(cb));
    };
    slot->proc = std::move(reader_ptr);
    (void)pid;
    return slot;
  };

  for (size_t i = 0; i < options_.num_readers; ++i) {
    const ProcessId pid = ProcessId::reader(static_cast<uint32_t>(i));
    switch (options_.protocol) {
      case Protocol::kBsr:
        readers_.push_back(make_reader(
            pid, std::make_unique<registers::BsrReader>(pid, cfg, net_.get())));
        break;
      case Protocol::kBsrHistory:
        readers_.push_back(make_reader(
            pid, std::make_unique<registers::HistoryReader>(pid, cfg, net_.get())));
        break;
      case Protocol::kBsr2R:
        readers_.push_back(make_reader(
            pid,
            std::make_unique<registers::TwoRoundReader>(pid, cfg, net_.get())));
        break;
      case Protocol::kBcsr:
        readers_.push_back(make_reader(
            pid, std::make_unique<registers::BcsrReader>(pid, cfg, net_.get())));
        break;
      case Protocol::kRb:
        readers_.push_back(make_reader(
            pid, std::make_unique<registers::RbReader>(pid, cfg, net_.get())));
        break;
      case Protocol::kBsrWb:
        readers_.push_back(make_reader(
            pid,
            std::make_unique<registers::WriteBackReader>(pid, cfg, net_.get())));
        break;
    }
  }
}

void ThreadCluster::restart_server(size_t index) {
  assert(!options_.wal_dir.empty() && "restart_server requires wal_dir");
  assert(started_.load() && "restart_server needs a running network");
  storage::PersistentRegisterServer* old = persistent_servers_[index];
  assert(old != nullptr && "restart_server only rejoins WAL-backed servers");
  (void)old;
  const ProcessId pid = ProcessId::server(static_cast<uint32_t>(index));

  // Crash, then wait until no mailbox thread is inside the old server's
  // handler: its last WAL append has fully returned, so the replay below
  // reads a file no one is writing.
  net_->mark_crashed(pid);
  net_->quiesce(pid);
  retired_.push_back(std::move(servers_[index]));

  auto srv = std::make_unique<storage::PersistentRegisterServer>(
      pid, options_.config, net_.get(), initial_for_server(index),
      wal_path(index), storage::RecoveryPolicy::kCatchUpBeforeServe);
  auto* raw = srv.get();
  persistent_servers_[index] = raw;
  servers_[index] = std::move(srv);
  net_->replace_process(pid, raw);
  net_->revive(pid);
  net_->post(pid, [raw] { raw->begin_catch_up(); });

  // Block until the catch-up state machine finishes (peers answer on their
  // own mailbox threads). Bounded: a wedged catch-up should fail the drill
  // loudly, not hang the suite.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!raw->is_serving()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      LOG_ERROR << "restart_server(" << index
                << "): quorum catch-up did not complete within 30s";
      assert(false && "restart_server: catch-up timed out");
      return;
    }
    std::this_thread::yield();
  }
}

storage::PersistentRegisterServer* ThreadCluster::persistent_server(
    size_t index) {
  return persistent_servers_[index];
}

void ThreadCluster::set_byzantine(size_t index, adversary::StrategyKind kind) {
  assert(!started_.load() && "set_byzantine must precede start()");
  adversary::ServerContext ctx;
  ctx.self = ProcessId::server(static_cast<uint32_t>(index));
  ctx.config = options_.config;
  ctx.transport = net_.get();
  ctx.initial = initial_for_server(index);
  ctx.rng = Rng(options_.seed * 7919 + index);
  servers_[index] = std::make_unique<adversary::ByzantineServer>(
      std::move(ctx), adversary::make_strategy(kind, options_.seed + index));
  persistent_servers_[index] = nullptr;
}

void ThreadCluster::start() {
  std::call_once(start_once_, [this] { start_impl(); });
}

void ThreadCluster::start_impl() {
  started_.store(true);
  for (size_t i = 0; i < servers_.size(); ++i) {
    net_->add_process(ProcessId::server(static_cast<uint32_t>(i)),
                      servers_[i].get());
  }
  for (size_t i = 0; i < writers_.size(); ++i) {
    net_->add_process(ProcessId::writer(static_cast<uint32_t>(i)),
                      writers_[i]->proc.get());
  }
  for (size_t i = 0; i < readers_.size(); ++i) {
    net_->add_process(ProcessId::reader(static_cast<uint32_t>(i)),
                      readers_[i]->proc.get());
  }
  net_->start();
}

void ThreadCluster::stop() {
  if (net_) net_->stop();
}

WriteResult ThreadCluster::write(size_t writer, Bytes value) {
  start();
  WriteResult out;
  runtime::BlockingInvoker invoker(*net_);
  invoker.run(ProcessId::writer(static_cast<uint32_t>(writer)),
              [&](std::function<void()> done) {
                writers_[writer]->start(std::move(value),
                                        [&out, done](const WriteResult& r) {
                                          out = r;
                                          done();
                                        });
              });
  return out;
}

ReadResult ThreadCluster::read(size_t reader) {
  start();
  ReadResult out;
  runtime::BlockingInvoker invoker(*net_);
  invoker.run(ProcessId::reader(static_cast<uint32_t>(reader)),
              [&](std::function<void()> done) {
                readers_[reader]->start([&out, done](const ReadResult& r) {
                  out = r;
                  done();
                });
              });
  return out;
}

}  // namespace bftreg::harness
