// Compact per-shard object store: the million-object storage layer.
//
// This header is the storage half of registers/server.h (and of the RB
// baseline server): everything a shard keeps per object, engineered for
// object-count scale. The previous layout -- `std::map<uint32_t,
// ObjectState>` shard tables, a `std::map<Tag, Bytes>` list L per object,
// every value its own heap vector -- costs a dozen malloc nodes and several
// hundred stray bytes per object. Here the same state is:
//
//   * CompactObjectStore: an open-addressing FlatHashMap from object id to
//     a slot in a chunked, never-moving pool of ObjectRec. Records must not
//     move: each embeds the object's NewestCache (seqlock + atomics), whose
//     address is published to the lock-free NewestCacheIndex for cross-
//     shard readers.
//   * ObjectLog: the list L as a compact sorted array with front slack -- a
//     small-vector ring. Entries are 40-byte PODs (16-byte Tag + 24-byte
//     ValueRef) kept in ascending tag order; appends of growing tags (the
//     common case -- tags are monotone per writer) are O(1), `max_history`
//     GC pops the front without shifting, and back-filled old tags memmove
//     the shorter side.
//   * ValueRef: value bytes up to 16 bytes live inside the entry itself;
//     longer values are blocks in the shard's SlabArena (no per-value
//     malloc, no per-block header).
//
// One store per shard, touched only by the shard's owner thread -- except
// the NewestCache/NewestCacheIndex publish path, which keeps exactly the
// lock-free contract it had in server.h (single-writer publish, any-thread
// read). The split between apply() and publish() is what enables write
// coalescing: a mailbox batch applies every PUT-DATA to the logs first and
// publishes each touched object's newest pair once at the end.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/flat_hash.h"
#include "common/seqlock.h"
#include "common/slab.h"
#include "common/types.h"
#include "registers/config.h"
#include "registers/messages.h"

namespace bftreg::registers {

/// Lock-free published copy of an object's newest (tag, value) pair.
/// Written only by the object's owner shard; readable from any thread.
/// Values up to kInlineValueCap bytes live inside the seqlock snapshot;
/// larger ones are swapped through an atomic shared_ptr whose pointee is
/// immutable and self-consistent (tag and value travel together).
class NewestCache {
 public:
  /// Largest value carried inline in the seqlock snapshot. Sized so one
  /// seqlock slot (sequence + version + header + data) is exactly a cache
  /// line: small-register control values fit; bulk values take the
  /// shared_ptr path. (The old 256-byte cap made every object pay ~640
  /// bytes of slots; at a million objects the cap IS the footprint.)
  static constexpr size_t kInlineValueCap = 32;

  /// Owner shard only. Publishes (tag, value) as the newest pair.
  void publish(const Tag& tag, BytesView value);

  /// Any thread. Returns false only before the first publish. `value` may
  /// be null when the caller wants just the tag (QUERY-TAG).
  bool read(Tag* tag, Bytes* value) const;

 private:
  struct InlineEntry {
    uint64_t tag_num{0};
    uint32_t writer_index{0};
    uint8_t writer_role{0};
    /// 1: the pair lives in oversize_ (len/data unused).
    uint8_t oversize{0};
    uint16_t len{0};
    uint8_t data[kInlineValueCap]{};
  };

  common::Seqlock<InlineEntry> inline_;
  /// Published *before* the inline sentinel that points at it, so a reader
  /// that sees oversize == 1 always finds the pointer (release/acquire via
  /// the seqlock's sequence).
  std::atomic<std::shared_ptr<const TaggedValue>> oversize_;
};

/// Append-only object -> NewestCache* index, written by one shard thread
/// and probed lock-free by any thread (QUERY-DATA-BATCH reads objects owned
/// by other shards through this). Nodes are immutable once the bucket-head
/// release store publishes them, and objects are never removed, so readers
/// traverse plain `next` pointers with no further synchronization.
class NewestCacheIndex {
 public:
  NewestCacheIndex() = default;
  NewestCacheIndex(const NewestCacheIndex&) = delete;
  NewestCacheIndex& operator=(const NewestCacheIndex&) = delete;

  /// Owner shard only; `object` must not already be present.
  void insert(uint32_t object, const NewestCache* cache);

  /// Any thread; nullptr when the object was never materialized.
  const NewestCache* find(uint32_t object) const;

  /// Any thread; appends every indexed object id to `out` (unsorted).
  /// Traverses the same immutable nodes as find(), so it observes at least
  /// everything published before the call.
  void collect(std::vector<uint32_t>* out) const;

  /// Bytes of node-pool chunks (writer thread; resident accounting).
  size_t allocated_bytes() const {
    return node_chunks_.size() * kNodesPerChunk * sizeof(Node);
  }

 private:
  static constexpr size_t kBuckets = 64;  // power of two

  struct Node {
    uint32_t object;
    const NewestCache* cache;
    Node* next;
  };

  std::atomic<Node*> heads_[kBuckets]{};
  /// Owns the nodes, pooled in chunks so a million index entries cost a
  /// million times 24 bytes, not a million mallocs. Chunks never move or
  /// shrink (published nodes are reachable lock-free); touched only by the
  /// writing shard thread.
  static constexpr size_t kNodesPerChunk = 256;
  std::vector<std::unique_ptr<Node[]>> node_chunks_;
  size_t used_in_last_{kNodesPerChunk};
};

/// Value bytes by reference: inline up to kInlineCap, else a slab block.
/// POD on purpose -- log entries are moved with memmove. Lifecycle is
/// managed by CompactObjectStore (make/release against the shard's arena).
struct ValueRef {
  static constexpr uint32_t kInlineCap = 16;

  uint32_t len{0};
  union {
    uint8_t inl[kInlineCap];
    uint8_t* ptr;
  };

  BytesView view() const {
    return len <= kInlineCap ? BytesView(inl, len) : BytesView(ptr, len);
  }
};

/// One entry of the list L: 40 trivially-copyable bytes.
struct LogEntry {
  Tag tag;
  ValueRef val;
};
static_assert(std::is_trivially_copyable_v<LogEntry>,
              "ObjectLog moves entries with memmove");

/// The list L as a sorted array with front slack. Entries live at
/// [slots_+head, slots_+head+count), ascending by tag. GC pops the front in
/// O(1) (the slack); inserts append at the back in O(1) when the tag is the
/// new maximum (the common case) and shift the cheaper side otherwise.
/// The backing array comes from the shard's SlabArena; every mutating call
/// takes the arena explicitly because the log itself is 20 bytes and owns
/// no allocator.
class ObjectLog {
 public:
  uint32_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  const LogEntry* begin() const { return slots_ + head_; }
  const LogEntry* end() const { return slots_ + head_ + count_; }
  const LogEntry& oldest() const { return slots_[head_]; }
  const LogEntry& newest() const { return slots_[head_ + count_ - 1]; }

  /// Binary search; nullptr when the tag is not present.
  const LogEntry* find(const Tag& tag) const;

  /// Sorted insert. Returns false (and leaves the log untouched) when the
  /// tag is already present.
  bool insert(const Tag& tag, const ValueRef& val, common::SlabArena& arena);

  /// Releases the oldest entry's value and drops it. Precondition: !empty().
  void pop_oldest(common::SlabArena& arena);

  /// Releases every value and the backing array (store teardown).
  void destroy(common::SlabArena& arena);

  /// Bytes of value payload across all entries.
  size_t value_bytes() const;

 private:
  void grow(common::SlabArena& arena);

  LogEntry* slots_{nullptr};
  uint32_t head_{0};
  uint32_t count_{0};
  uint32_t cap_{0};
};

/// Everything one shard stores about its objects. Single-owner-thread,
/// except the embedded NewestCache/NewestCacheIndex publish/read paths.
class CompactObjectStore {
 public:
  struct ObjectRec {
    /// 160 bytes: two 64-byte seqlock slots + active/version words + the
    /// oversize pointer. With the 24-byte log and the id the record is 192
    /// bytes -- the figure docs/PERF.md budgets per object.
    NewestCache newest;
    ObjectLog log;
    uint32_t object{0};

    ObjectRec() = default;
    ObjectRec(const ObjectRec&) = delete;
    ObjectRec& operator=(const ObjectRec&) = delete;
  };

  struct ApplyResult {
    ObjectRec* rec{nullptr};
    bool added{false};
    /// Value bytes added minus bytes GC'd (the caller maintains whatever
    /// aggregate counter its introspection API promises).
    long long bytes_delta{0};
  };

  CompactObjectStore(Bytes initial, StorePolicy policy, size_t max_history);
  ~CompactObjectStore();

  CompactObjectStore(const CompactObjectStore&) = delete;
  CompactObjectStore& operator=(const CompactObjectStore&) = delete;

  /// Creates (if needed) `object`'s record, seeding the log with
  /// {t0, initial} and publishing that snapshot + the index entry on first
  /// touch. Returns (record, value bytes added: initial size or 0).
  std::pair<ObjectRec*, size_t> materialize(uint32_t object);

  /// Read-only lookup; never inserts (a client querying random ids must
  /// not balloon server state).
  const ObjectRec* find(uint32_t object) const {
    const uint32_t* idx = map_.find(object);
    return idx == nullptr ? nullptr : &rec_at(*idx);
  }
  ObjectRec* find(uint32_t object) {
    uint32_t* idx = map_.find(object);
    return idx == nullptr ? nullptr : &rec_at(*idx);
  }

  /// Inserts (tag, value) per the store policy, then applies max_history
  /// GC. Does NOT publish the newest pair -- callers follow with publish()
  /// (immediately, or once per mailbox batch when coalescing).
  ApplyResult apply(uint32_t object, const Tag& tag, BytesView value);

  /// Publishes rec's current newest pair through its seqlock cache.
  void publish(ObjectRec& rec);

  const NewestCacheIndex& index() const { return index_; }
  size_t size() const { return count_; }

  /// fn(const ObjectRec&) for every record, unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (size_t c = 0; c < chunks_.size(); ++c) {
      const size_t n =
          (c + 1 == chunks_.size()) ? used_in_last_ : kRecsPerChunk;
      for (size_t i = 0; i < n; ++i) fn(chunks_[c][i]);
    }
  }

  /// Full walk of value payload bytes (debug cross-check of the caller's
  /// incremental counter).
  size_t walk_value_bytes() const;

  /// Bytes this store holds from the system: record chunks, hash table,
  /// slab chunks. The bench's resident-per-object metric reads this.
  size_t resident_bytes() const;

  const Bytes& initial_value() const { return initial_; }

 private:
  static constexpr size_t kRecsPerChunk = 256;  // 256 * 192B = 48 KiB

  ObjectRec& rec_at(uint32_t idx) {
    return chunks_[idx / kRecsPerChunk][idx % kRecsPerChunk];
  }
  const ObjectRec& rec_at(uint32_t idx) const {
    return chunks_[idx / kRecsPerChunk][idx % kRecsPerChunk];
  }

  ValueRef make_ref(BytesView value);

  Bytes initial_;
  const StorePolicy policy_;
  const size_t max_history_;

  common::FlatHashMap<uint32_t, uint32_t> map_;  // object -> record index
  std::vector<std::unique_ptr<ObjectRec[]>> chunks_;
  size_t used_in_last_{kRecsPerChunk};
  size_t count_{0};
  common::SlabArena arena_;
  NewestCacheIndex index_;
};

}  // namespace bftreg::registers
