// Differential tests for the bulk GF(2^8) region codec (codec/gf_region.h
// and the region-restructured MdsCode paths).
//
// Three layers of cross-checking:
//   1. every region kernel against byte-at-a-time gf::mul, exhaustively
//      over all 256 constants, odd lengths and misaligned offsets;
//   2. MdsCode::encode under every available kernel against the retained
//      per-stripe scalar reference (RsCode::encode_stripe driven over an
//      independently reconstructed payload) -- bit-identical, not just
//      decodable;
//   3. encode/decode round trips under the full Lemma 4 adversarial budget
//      (f garbage + f stale), including garbage that only diverges
//      mid-element so the bulk pass must detect the divergent stripe and
//      fall back to Berlekamp-Welch.
// Runs under both sanitizer presets via the default `unit` ctest label.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <vector>

#include "codec/gf256.h"
#include "codec/gf_region.h"
#include "codec/mds_code.h"
#include "codec/rs.h"
#include "common/rng.h"
#include "common/types.h"

namespace bftreg::codec {
namespace {

std::vector<gf::RegionKernel> available_kernels() {
  std::vector<gf::RegionKernel> out;
  for (auto k : {gf::RegionKernel::kScalar, gf::RegionKernel::kSwar,
                 gf::RegionKernel::kSsse3, gf::RegionKernel::kAvx2}) {
    if (gf::kernel_available(k)) out.push_back(k);
  }
  return out;
}

/// Restores auto-dispatch after tests that force a kernel.
class RegionKernelTest : public ::testing::Test {
 protected:
  ~RegionKernelTest() override { gf::reset_kernel(); }
};

TEST(RegionKernelAvailability, ScalarAndSwarAlwaysPresent) {
  EXPECT_TRUE(gf::kernel_available(gf::RegionKernel::kScalar));
  EXPECT_TRUE(gf::kernel_available(gf::RegionKernel::kSwar));
  const auto ks = available_kernels();
  ASSERT_GE(ks.size(), 2u);
  for (auto k : ks) {
    SCOPED_TRACE(gf::kernel_name(k));
    EXPECT_STRNE(gf::kernel_name(k), "?");
  }
}

TEST_F(RegionKernelTest, ForceKernelSwitchesDispatch) {
  for (auto k : available_kernels()) {
    ASSERT_TRUE(gf::force_kernel(k));
    EXPECT_EQ(gf::active_kernel(), k);
  }
  gf::reset_kernel();
  EXPECT_TRUE(gf::kernel_available(gf::active_kernel()));
}

TEST_F(RegionKernelTest, EnvVarOverridesAutoSelection) {
  ::setenv("BFTREG_GF_KERNEL", "scalar", 1);
  gf::reset_kernel();
  EXPECT_EQ(gf::active_kernel(), gf::RegionKernel::kScalar);
  ::setenv("BFTREG_GF_KERNEL", "swar", 1);
  gf::reset_kernel();
  EXPECT_EQ(gf::active_kernel(), gf::RegionKernel::kSwar);
  ::unsetenv("BFTREG_GF_KERNEL");
  gf::reset_kernel();
}

// Every kernel x every constant x odd lengths x misaligned offsets, against
// the log/antilog single-byte multiply.
TEST(RegionKernelDifferential, MulRegionMatchesGfMulExhaustively) {
  const auto kernels = available_kernels();
  const size_t lens[] = {0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 200};
  Rng rng(41);
  std::vector<uint8_t> src(256 + 3);
  for (auto& b : src) b = static_cast<uint8_t>(rng.uniform(256));

  for (unsigned c = 0; c < 256; ++c) {
    for (const size_t len : lens) {
      for (const size_t offset : {size_t{0}, size_t{1}, size_t{3}}) {
        const uint8_t* s = src.data() + offset;
        std::vector<uint8_t> expect(len);
        for (size_t i = 0; i < len; ++i) {
          expect[i] = gf::mul(static_cast<uint8_t>(c), s[i]);
        }
        for (const auto k : kernels) {
          std::vector<uint8_t> dst(len, 0xCD);
          gf::mul_region_as(k, dst.data(), s, static_cast<uint8_t>(c), len);
          ASSERT_EQ(dst, expect) << "mul_region " << gf::kernel_name(k)
                                 << " c=" << c << " len=" << len
                                 << " offset=" << offset;
        }
      }
    }
  }
}

TEST(RegionKernelDifferential, MulAddRegionMatchesGfMulExhaustively) {
  const auto kernels = available_kernels();
  const size_t lens[] = {0, 1, 8, 13, 16, 31, 32, 100};
  Rng rng(42);
  std::vector<uint8_t> src(128), base(128);
  for (auto& b : src) b = static_cast<uint8_t>(rng.uniform(256));
  for (auto& b : base) b = static_cast<uint8_t>(rng.uniform(256));

  for (unsigned c = 0; c < 256; ++c) {
    for (const size_t len : lens) {
      std::vector<uint8_t> expect(base.begin(), base.begin() + static_cast<long>(len));
      for (size_t i = 0; i < len; ++i) {
        expect[i] = gf::add(expect[i], gf::mul(static_cast<uint8_t>(c), src[i]));
      }
      for (const auto k : kernels) {
        std::vector<uint8_t> dst(base.begin(), base.begin() + static_cast<long>(len));
        gf::mul_add_region_as(k, dst.data(), src.data(), static_cast<uint8_t>(c),
                              len);
        ASSERT_EQ(dst, expect) << "mul_add_region " << gf::kernel_name(k)
                               << " c=" << c << " len=" << len;
      }
    }
  }
}

TEST_F(RegionKernelTest, MulRegionAllowsAliasedDst) {
  Rng rng(43);
  for (const auto k : available_kernels()) {
    ASSERT_TRUE(gf::force_kernel(k));
    std::vector<uint8_t> buf(97);
    for (auto& b : buf) b = static_cast<uint8_t>(rng.uniform(256));
    std::vector<uint8_t> expect(buf.size());
    for (size_t i = 0; i < buf.size(); ++i) expect[i] = gf::mul(0x53, buf[i]);
    gf::mul_region(buf.data(), buf.data(), 0x53, buf.size());
    EXPECT_EQ(buf, expect) << gf::kernel_name(k);
  }
}

TEST(RegionKernelDifferential, AddRegionIsXor) {
  Rng rng(44);
  std::vector<uint8_t> a(77), b(77), expect(77);
  for (auto& x : a) x = static_cast<uint8_t>(rng.uniform(256));
  for (auto& x : b) x = static_cast<uint8_t>(rng.uniform(256));
  for (size_t i = 0; i < a.size(); ++i) {
    expect[i] = static_cast<uint8_t>(a[i] ^ b[i]);
  }
  gf::add_region(a.data(), b.data(), a.size());
  EXPECT_EQ(a, expect);
}

// ----------------------------------------------------- MdsCode differential

struct BcsrParam {
  size_t n;
  size_t f;
  RsLayout layout;
};

std::vector<BcsrParam> bcsr_params() {
  std::vector<BcsrParam> out;
  for (auto layout : {RsLayout::kCoefficients, RsLayout::kSystematic}) {
    out.push_back({6, 1, layout});
    out.push_back({8, 1, layout});
    out.push_back({11, 2, layout});
    out.push_back({13, 2, layout});
    out.push_back({16, 3, layout});
    out.push_back({21, 4, layout});
  }
  return out;
}

Bytes random_value(Rng& rng, size_t size) {
  Bytes v(size);
  for (auto& b : v) b = static_cast<uint8_t>(rng.uniform(256));
  return v;
}

/// The retained scalar reference: rebuild the padded payload independently
/// (header layout documented in mds_code.h) and drive the original
/// per-stripe RsCode::encode_stripe over gathered shard-major symbols.
std::vector<Bytes> reference_encode(const MdsCode& code, const RsCode& rs,
                                    const Bytes& value) {
  const size_t stripes = code.element_size(value.size());
  const size_t kk = code.k();
  std::vector<uint8_t> payload(stripes * kk, 0);
  const auto len = static_cast<uint32_t>(value.size());
  const auto sum =
      static_cast<uint32_t>(fnv1a64(value.data(), value.size()) & 0xffffffffu);
  for (size_t i = 0; i < 4; ++i) payload[i] = static_cast<uint8_t>(len >> (8 * i));
  for (size_t i = 0; i < 4; ++i) {
    payload[4 + i] = static_cast<uint8_t>(sum >> (8 * i));
  }
  std::copy(value.begin(), value.end(), payload.begin() + MdsCode::kHeaderBytes);

  std::vector<Bytes> elements(code.n(), Bytes(stripes));
  std::vector<uint8_t> data(kk);
  for (size_t s = 0; s < stripes; ++s) {
    for (size_t j = 0; j < kk; ++j) data[j] = payload[j * stripes + s];
    const auto coded = rs.encode_stripe(data.data());
    for (size_t i = 0; i < code.n(); ++i) elements[i][s] = coded[i];
  }
  return elements;
}

class BcsrRegionTest : public ::testing::TestWithParam<BcsrParam> {
 protected:
  ~BcsrRegionTest() override { gf::reset_kernel(); }
};

TEST_P(BcsrRegionTest, EncodeBitIdenticalAcrossKernelsAndReference) {
  const auto [n, f, layout] = GetParam();
  const auto code = MdsCode::for_bcsr(n, f, layout);
  const RsCode rs(n, code.k(), layout);
  Rng rng(500 + n * 17 + f);

  const size_t sizes[] = {0, 1, 7, 8, 9, 100, 1 + rng.uniform(4096), 65536};
  for (const size_t size : sizes) {
    const Bytes value = random_value(rng, size);
    const auto reference = reference_encode(code, rs, value);
    for (const auto k : available_kernels()) {
      ASSERT_TRUE(gf::force_kernel(k));
      const auto elements = code.encode(value);
      ASSERT_EQ(elements, reference)
          << "kernel=" << gf::kernel_name(k) << " n=" << n << " f=" << f
          << " size=" << size;
    }
  }
}

TEST_P(BcsrRegionTest, Lemma4AdversarialDecodeUnderEveryKernel) {
  const auto [n, f, layout] = GetParam();
  const auto code = MdsCode::for_bcsr(n, f, layout);
  Rng rng(900 + n * 19 + f);

  for (const auto kernel : available_kernels()) {
    ASSERT_TRUE(gf::force_kernel(kernel));
    for (int trial = 0; trial < 8; ++trial) {
      const size_t size = trial == 0 ? 0 : rng.uniform(8192);
      const Bytes value = random_value(rng, size);
      const Bytes old_value = random_value(rng, size);
      const auto fresh = code.encode(value);
      const auto stale = code.encode(old_value);

      // n - f responses, f garbage + f stale among them (Lemma 4's budget).
      std::vector<size_t> positions(n);
      for (size_t i = 0; i < n; ++i) positions[i] = i;
      rng.shuffle(positions);
      std::vector<std::optional<Bytes>> received(n);
      for (size_t i = 0; i < n - f; ++i) {
        const size_t pos = positions[i];
        if (i < f) {
          received[pos] = random_value(rng, fresh[pos].size());
        } else if (i < 2 * f) {
          received[pos] = stale[pos];
        } else {
          received[pos] = fresh[pos];
        }
      }
      auto decoded = code.decode(received);
      ASSERT_TRUE(decoded.has_value())
          << "kernel=" << gf::kernel_name(kernel) << " n=" << n << " f=" << f
          << " trial=" << trial;
      EXPECT_EQ(*decoded, value);
    }
  }
}

// Garbage that agrees with the fresh codeword on an honest prefix and only
// diverges from some mid-element stripe onward: the trusted set built from
// stripe 0 includes the liar, so the bulk pass must spot the divergent
// stripe, Berlekamp-Welch it, and resume with a rebuilt trusted set.
TEST_P(BcsrRegionTest, MidElementDivergenceFallsBackToPerStripe) {
  const auto [n, f, layout] = GetParam();
  const auto code = MdsCode::for_bcsr(n, f, layout);
  Rng rng(1300 + n * 23 + f);

  for (const auto kernel : available_kernels()) {
    ASSERT_TRUE(gf::force_kernel(kernel));
    const Bytes value = random_value(rng, 4096);
    const auto fresh = code.encode(value);
    const size_t stripes = fresh[0].size();

    std::vector<size_t> positions(n);
    for (size_t i = 0; i < n; ++i) positions[i] = i;
    rng.shuffle(positions);
    std::vector<std::optional<Bytes>> received(n);
    for (size_t i = 0; i < n; ++i) received[i] = fresh[i];
    // f liars, each honest up to its own cut point then garbage.
    for (size_t i = 0; i < f; ++i) {
      const size_t pos = positions[i];
      const size_t cut = 1 + rng.uniform(stripes - 1);
      for (size_t s = cut; s < stripes; ++s) {
        (*received[pos])[s] = static_cast<uint8_t>(rng.uniform(256));
      }
    }
    auto decoded = code.decode(received);
    ASSERT_TRUE(decoded.has_value())
        << "kernel=" << gf::kernel_name(kernel) << " n=" << n << " f=" << f;
    EXPECT_EQ(*decoded, value);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BcsrRegionTest, ::testing::ValuesIn(bcsr_params()),
                         [](const auto& info) {
                           return std::string(info.param.layout ==
                                                      RsLayout::kSystematic
                                                  ? "sys_"
                                                  : "coef_") +
                                  "n" + std::to_string(info.param.n) + "f" +
                                  std::to_string(info.param.f);
                         });

// One large-value sweep (the 0 - 1 MiB end of the range) at the acceptance
// configuration (n = 11, f = 2): every kernel must produce bit-identical
// elements and survive the worst-case mix.
TEST_F(RegionKernelTest, MegabyteValueBitIdenticalAndDecodable) {
  const auto code = MdsCode::for_bcsr(11, 2);
  Rng rng(77);
  const Bytes value = random_value(rng, (1u << 20) - 13);
  const Bytes old_value = random_value(rng, value.size());

  std::optional<std::vector<Bytes>> first;
  for (const auto k : available_kernels()) {
    ASSERT_TRUE(gf::force_kernel(k));
    auto elements = code.encode(value);
    if (!first) {
      first = std::move(elements);
      continue;
    }
    ASSERT_EQ(elements, *first) << gf::kernel_name(k);
  }

  const auto stale = code.encode(old_value);
  std::vector<std::optional<Bytes>> received(11);
  for (size_t i = 0; i < 11 - 2; ++i) received[i] = (*first)[i];
  received[0] = random_value(rng, (*first)[0].size());  // garbage
  received[1] = random_value(rng, (*first)[1].size());  // garbage
  received[2] = stale[2];
  received[3] = stale[3];
  gf::reset_kernel();
  auto decoded = code.decode(received);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, value);
}

}  // namespace
}  // namespace bftreg::codec
