#include "registers/batch_reader.h"

#include <cassert>

namespace bftreg::registers {

BatchReader::BatchReader(ProcessId self, SystemConfig config,
                         net::Transport* transport)
    : self_(self),
      config_(std::move(config)),
      transport_(transport),
      responded_(config_.quorum()) {}

void BatchReader::start_read(std::vector<uint32_t> objects, Callback callback) {
  assert(!reading_ && "at most one operation per client");
  assert(!objects.empty());
  // Servers cap batches at 4096 (see RegisterServer); a larger request
  // would have every honest response rejected as partial below.
  assert(objects.size() <= 4096 && "batch exceeds the server-side cap");
  reading_ = true;
  callback_ = std::move(callback);
  invoked_at_ = transport_->now();
  ++op_id_;
  objects_ = std::move(objects);
  responded_.reset();
  responses_.clear();

  RegisterMessage query;
  query.type = MsgType::kQueryDataBatch;
  query.op_id = op_id_;
  query.objects = objects_;
  const Bytes payload = query.encode();
  for (uint32_t i = 0; i < config_.n; ++i) {
    transport_->send(self_, ProcessId::server(i), payload);
  }
}

void BatchReader::on_message(const net::Envelope& env) {
  if (!reading_ || !env.from.is_server()) return;
  auto msg = RegisterMessage::parse(env.payload);
  if (!msg || msg->type != MsgType::kDataBatchResp || msg->op_id != op_id_) return;
  // A response that does not cover the full request (malformed or capped)
  // cannot vouch per object; drop it.
  if (msg->objects != objects_ || msg->history.size() != objects_.size()) return;
  if (!responded_.add(env.from)) return;
  responses_.emplace(env.from, std::move(msg->history));
  if (responded_.reached()) finish();
}

void BatchReader::finish() {
  BatchReadResult batch;
  batch.invoked_at = invoked_at_;
  batch.rounds = 1;
  batch.results.reserve(objects_.size());

  for (size_t i = 0; i < objects_.size(); ++i) {
    const uint32_t object = objects_[i];
    // Fig. 2's selection, object-wise.
    std::map<TaggedValue, size_t> witnesses;
    for (const auto& [server, pairs] : responses_) ++witnesses[pairs[i]];
    const TaggedValue* best = nullptr;
    for (const auto& [pair, count] : witnesses) {
      if (count >= config_.witness_threshold()) best = &pair;  // ascending
    }

    auto [it, inserted] =
        locals_.try_emplace(object, TaggedValue{Tag::initial(),
                                                config_.initial_value});
    TaggedValue& local = it->second;
    ReadResult r;
    r.fresh = false;
    if (best != nullptr && best->tag > local.tag) {
      local = *best;
      r.fresh = true;
    }
    r.value = local.value;
    r.tag = local.tag;
    r.invoked_at = invoked_at_;
    r.rounds = 1;
    batch.results.push_back(std::move(r));
  }

  reading_ = false;
  batch.completed_at = transport_->now();
  for (auto& r : batch.results) r.completed_at = batch.completed_at;
  Callback cb = std::move(callback_);
  callback_ = nullptr;
  if (cb) cb(batch);
}

}  // namespace bftreg::registers
