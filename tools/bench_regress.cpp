// Benchmark regression gate for the checked-in throughput baselines.
//
//   bench_regress <baseline.json> <current.json> [--max-regress=0.20]
//
// Four schemas are understood, selected by the files' "schema" field (both
// files must agree):
//
//   bftreg-bench-codec-v1      written by `bench_codec --json=PATH`; points
//                              keyed by (n, f, size, kernel), metrics
//                              encode/decode_clean/decode_adv MB/s.
//   bftreg-bench-client-v1     written by `bench_mixed_workload --json=PATH`;
//                              points keyed by (protocol, depth), metric
//                              ops_per_ms of the pipelined client.
//   bftreg-bench-transport-v1  written by `bench_transport --json=PATH`;
//                              points keyed by (transport, size, fanin)
//                              plus "/shards=N" for shard-sweep rows,
//                              metrics msgs_per_sec and mbps of the raw
//                              data plane.
//   bftreg-bench-objects-v1    written by `bench_objects --json=PATH`;
//                              points keyed by (store, workload, dist,
//                              keys, size), metrics ops_per_sec (higher is
//                              better) and bytes_per_object -- the one
//                              CEILING metric: the gate fails when the
//                              current footprint EXCEEDS baseline *
//                              (1 + max_regress).
//
// Every point present in BOTH files is compared metric by metric; if any
// current metric falls below baseline * (1 - max_regress) -- or above
// baseline * (1 + max_regress) for ceiling metrics -- the gate fails
// (exit 1). Points that exist only on one side (e.g. the CI host lacks
// AVX2) are reported but do not fail the gate -- hardware variance is not
// a regression.
//
// The parser below is deliberately minimal: it only understands the flat
// one-object-per-result layout our own writer produces, which keeps this
// tool dependency-free (no JSON library in the image).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// One comparable point: metric name -> value. Higher is better for every
/// metric except the ones ceiling_metric() names.
using Point = std::map<std::string, double>;
using PointMap = std::map<std::string, Point>;  // key: schema-specific

/// Metrics where LOWER is better (resource footprints, not throughput):
/// the gate inverts for these and fails on growth past the tolerance.
bool ceiling_metric(const std::string& name) {
  return name == "bytes_per_object";
}

/// Extracts the numeric value following `"key":` in `obj`, or -1.
double find_number(const std::string& obj, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = obj.find(needle);
  if (at == std::string::npos) return -1.0;
  return std::strtod(obj.c_str() + at + needle.size(), nullptr);
}

/// Extracts the quoted string following `"key":` in `obj`, or "".
std::string find_string(const std::string& obj, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  size_t at = obj.find(needle);
  if (at == std::string::npos) return "";
  at = obj.find('"', at + needle.size());
  if (at == std::string::npos) return "";
  const size_t end = obj.find('"', at + 1);
  if (end == std::string::npos) return "";
  return obj.substr(at + 1, end - at - 1);
}

bool load(const std::string& path, PointMap* out, std::string* schema) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_regress: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  *schema = find_string(text, "schema");

  // Walk the result objects: each is a brace-delimited span after "results".
  size_t pos = text.find("\"results\"");
  if (pos == std::string::npos) {
    std::fprintf(stderr, "bench_regress: %s has no results array\n", path.c_str());
    return false;
  }
  const bool client_schema = *schema == "bftreg-bench-client-v1";
  const bool transport_schema = *schema == "bftreg-bench-transport-v1";
  const bool objects_schema = *schema == "bftreg-bench-objects-v1";
  while ((pos = text.find('{', pos + 1)) != std::string::npos) {
    const size_t end = text.find('}', pos);
    if (end == std::string::npos) break;
    const std::string obj = text.substr(pos, end - pos + 1);
    pos = end;

    char key[128];
    Point p;
    if (client_schema) {
      const std::string protocol = find_string(obj, "protocol");
      const double depth = find_number(obj, "depth");
      if (protocol.empty() || depth < 0) continue;
      std::snprintf(key, sizeof(key), "protocol=%s/depth=%d", protocol.c_str(),
                    static_cast<int>(depth));
      p["ops_per_ms"] = find_number(obj, "ops_per_ms");
    } else if (transport_schema) {
      const std::string transport = find_string(obj, "transport");
      const double size = find_number(obj, "size");
      if (transport.empty() || size < 0) continue;
      int len = std::snprintf(key, sizeof(key), "transport=%s/size=%d/fanin=%d",
                              transport.c_str(), static_cast<int>(size),
                              static_cast<int>(find_number(obj, "fanin")));
      // Shard-sweep rows carry an extra "shards" field; base-grid rows omit
      // it so their keys keep matching baselines written before the sweep
      // existed.
      const double shards = find_number(obj, "shards");
      if (shards > 0 && len > 0 && static_cast<size_t>(len) < sizeof(key)) {
        std::snprintf(key + len, sizeof(key) - static_cast<size_t>(len),
                      "/shards=%d", static_cast<int>(shards));
      }
      p["msgs_per_sec"] = find_number(obj, "msgs_per_sec");
      p["mbps"] = find_number(obj, "mbps");
    } else if (objects_schema) {
      const std::string store = find_string(obj, "store");
      const std::string workload = find_string(obj, "workload");
      if (store.empty() || workload.empty()) continue;
      std::snprintf(key, sizeof(key),
                    "store=%s/workload=%s/dist=%s/keys=%d/size=%d",
                    store.c_str(), workload.c_str(),
                    find_string(obj, "dist").c_str(),
                    static_cast<int>(find_number(obj, "keys")),
                    static_cast<int>(find_number(obj, "size")));
      // Footprint rows carry bytes_per_object, throughput rows ops_per_sec;
      // find_number's -1 for the absent one is dropped by the <= 0 guard in
      // the comparison loop.
      p["ops_per_sec"] = find_number(obj, "ops_per_sec");
      p["bytes_per_object"] = find_number(obj, "bytes_per_object");
    } else {
      const std::string kernel = find_string(obj, "kernel");
      const double n = find_number(obj, "n");
      if (kernel.empty() || n < 0) continue;
      std::snprintf(key, sizeof(key), "n=%d/f=%d/size=%d/kernel=%s",
                    static_cast<int>(n), static_cast<int>(find_number(obj, "f")),
                    static_cast<int>(find_number(obj, "size")), kernel.c_str());
      p["encode"] = find_number(obj, "encode_mbps");
      p["decode_clean"] = find_number(obj, "decode_clean_mbps");
      p["decode_adv"] = find_number(obj, "decode_adv_mbps");
    }
    (*out)[key] = p;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_path, cur_path;
  double max_regress = 0.20;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-regress=", 14) == 0) {
      max_regress = std::strtod(argv[i] + 14, nullptr);
    } else if (base_path.empty()) {
      base_path = argv[i];
    } else if (cur_path.empty()) {
      cur_path = argv[i];
    }
  }
  if (cur_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_regress <baseline.json> <current.json> "
                 "[--max-regress=0.20]\n");
    return 2;
  }

  PointMap base, cur;
  std::string base_schema, cur_schema;
  if (!load(base_path, &base, &base_schema) || !load(cur_path, &cur, &cur_schema)) {
    return 2;
  }
  if (base_schema != cur_schema) {
    std::fprintf(stderr, "bench_regress: schema mismatch (%s vs %s)\n",
                 base_schema.c_str(), cur_schema.c_str());
    return 2;
  }

  int regressions = 0;
  int compared = 0;
  for (const auto& [key, b] : base) {
    const auto it = cur.find(key);
    if (it == cur.end()) {
      std::printf("SKIP  %-48s (absent in current run)\n", key.c_str());
      continue;
    }
    const Point& c = it->second;
    for (const auto& [name, base_v] : b) {
      if (base_v <= 0) continue;
      const auto cur_it = c.find(name);
      if (cur_it == c.end()) continue;
      const double cur_v = cur_it->second;
      ++compared;
      const double delta = (cur_v - base_v) / base_v * 100.0;
      const bool regressed = ceiling_metric(name)
                                 ? cur_v > base_v * (1.0 + max_regress)
                                 : cur_v < base_v * (1.0 - max_regress);
      if (regressed) {
        ++regressions;
        std::printf("FAIL  %-48s %-13s %8.1f -> %8.1f (%+.1f%%)\n",
                    key.c_str(), name.c_str(), base_v, cur_v, delta);
      } else {
        std::printf("ok    %-48s %-13s %8.1f -> %8.1f (%+.1f%%)\n",
                    key.c_str(), name.c_str(), base_v, cur_v, delta);
      }
    }
  }
  for (const auto& [key, _] : cur) {
    if (!base.count(key)) {
      std::printf("NEW   %-48s (absent in baseline)\n", key.c_str());
    }
  }
  std::printf("bench_regress: %d metrics compared, %d regressed more than %.0f%%\n",
              compared, regressions, max_regress * 100.0);
  return regressions > 0 ? 1 : 0;
}
