// Scripted executions from the paper's proofs, packaged for reuse by
// tests, examples and the resilience benches.
#pragma once

#include <map>
#include <memory>

#include "adversary/byzantine_server.h"
#include "harness/sim_cluster.h"

namespace bftreg::harness {

/// The Theorem 5 Byzantine server: stores PUT-DATA honestly and answers
/// QUERY-TAG honestly, but serves readers the *second newest* pair --
/// "s_0 returns v1 instead of v2".
class LaggingLiar final : public adversary::Strategy {
 public:
  void handle(const net::Envelope& env, adversary::ServerContext& ctx) override;

 private:
  std::map<Tag, Bytes> store_;
};

/// Runs the Theorem 5 proof schedule on `cluster` (requires 2 writers and
/// 1 reader; server 0 should be a LaggingLiar):
///   W1(v1) completes with PUT-DATA withheld from the last server;
///   W2(v2) completes with PUT-DATA withheld from server 1;
///   the read runs with the last server's replies delayed.
/// Returns the value the read returned. At n = 4f the result is the stale
/// "v1"; at n = 4f+1 the same schedule yields "v2".
Bytes run_theorem5_schedule(SimCluster& cluster);

/// Runs the Theorem 3 schedule (requires n = 5, f = 1, 5 writers, 1
/// reader): W1(v1) completes everywhere; W2..W5 start writes whose
/// PUT-DATA reaches only "their" server; the read then runs. Plain BSR
/// returns v0 (regularity violation); the history/2R variants return v1.
registers::ReadResult run_theorem3_schedule(SimCluster& cluster);

}  // namespace bftreg::harness
