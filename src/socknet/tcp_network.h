// TCP loopback transport: the protocols over a real network stack.
//
// Third implementation of net::Transport (after the deterministic
// simulator and the in-memory thread runtime): every process gets a
// listening TCP socket on 127.0.0.1; sends ship length-prefixed,
// MAC-sealed frames through the kernel. Nothing protocol-level changes --
// the same state machines run unmodified -- which is the point: the
// paper's algorithms assume only reliable authenticated point-to-point
// channels, and TCP + the MAC layer provides exactly that.
//
// Data plane (rebuilt for throughput; before/after numbers in docs/PERF.md):
//
//   Outbound  send() seals a 22-byte header, appends (header, payload) to a
//             bounded per-destination queue and returns -- no syscall, no
//             payload concatenation, no blocking I/O under a lock. A
//             per-endpoint writer thread drains whole queues with sendmsg +
//             iovec coalescing: every frame pending for a peer goes out in
//             as few syscalls as IOV_MAX allows. A full queue sheds the
//             frame (metrics().messages_dropped) instead of growing without
//             bound; client deadlines (registers::OpMux) retransmit.
//
//   Inbound   one epoll reader thread per endpoint (replacing
//             thread-per-connection) reads into large refcounted chunks,
//             parses frames in place, and delivers payload *views* aliasing
//             the chunk (common/buffer.h) -- zero payload copies between
//             the kernel and the handler. Each parsed envelope is published
//             straight into the destination shard's lock-free MPSC ring
//             (runtime/mailbox.h): no per-wake closure allocation, no
//             mailbox mutex on the hot path, and the handler thread starts
//             draining while the reader is still parsing. Idle handler
//             threads are futex-parked and woken at most once per
//             empty->non-empty transition.
//
// Scope: single-host loopback (the offline build environment has no
// external network). The wire format is position-independent, so pointing
// the address book at remote hosts is a config change, not a code change.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/sync.h"
#include "common/types.h"
#include "crypto/auth.h"
#include "net/transport.h"
#include "runtime/mailbox.h"

namespace bftreg::socknet {

struct TcpConfig {
  uint64_t master_secret{0x5eC4e7B17e5eCBA5ULL};
  /// Listening address (loopback only in this build).
  const char* host{"127.0.0.1"};
  /// Per-destination outbound queue cap in bytes (headers + payloads). A
  /// send() that would push a non-empty queue past the cap is shed and
  /// counted in metrics().messages_dropped; a single frame larger than the
  /// cap is still accepted so jumbo payloads cannot deadlock themselves.
  size_t max_outbox_bytes{32 * 1024 * 1024};
  /// Receive chunk size: frames are parsed in place inside chunks of this
  /// capacity (grown per-frame when a single frame is larger).
  size_t recv_chunk_bytes{256 * 1024};
  /// Cap on pooled receive chunks per endpoint. Chunks are recycled through
  /// a free list when the last payload view into them dies; without the
  /// pool, large-payload workloads pay an mmap + page-fault round trip per
  /// message (measured ~330 soft faults per 1 MiB frame).
  size_t recv_pool_bytes{64 * 1024 * 1024};
};

class TcpNetwork final : public net::Transport {
 public:
  explicit TcpNetwork(TcpConfig config);
  ~TcpNetwork() override;

  TcpNetwork(const TcpNetwork&) = delete;
  TcpNetwork& operator=(const TcpNetwork&) = delete;

  /// Registers a process: binds a listening socket on an ephemeral port
  /// and records it in the address book. Call before start().
  void add_process(const ProcessId& pid, net::IProcess* process);

  /// Spawns the reader/writer/mailbox threads and delivers on_start() to
  /// every process (on its mailbox thread, like the other runtimes).
  void start();

  /// Closes sockets and joins all threads.
  ///
  /// Contract: idempotent -- only the first call (the winner of the
  /// `running_` exchange) performs the shutdown; later or concurrent calls
  /// return immediately without waiting for it to finish. Must be called
  /// from an *external* thread (the owner or any client thread), never from
  /// a mailbox, reader, or writer thread: stop() joins those threads and
  /// would self-deadlock. Asserted in debug builds.
  void stop();

  /// The port a process listens on (for logging / external tooling).
  uint16_t port_of(const ProcessId& pid) const;

  // --- net::Transport -----------------------------------------------------
  void send_payload(const ProcessId& from, const ProcessId& to,
                    Payload payload) override;
  TimeNs now() const override;
  void post(const ProcessId& pid, std::function<void()> fn) override;
  void post_after(const ProcessId& pid, TimeNs delta,
                  std::function<void()> fn) override;
  net::NetworkMetrics& metrics() override { return metrics_; }

  // --- test hooks ----------------------------------------------------------

  /// Receive-path accounting for the zero-copy guarantee: the only payload
  /// bytes ever copied on delivery are partial-frame tails carried across a
  /// chunk roll (bounded by one chunk, independent of payload size).
  struct RecvStats {
    uint64_t chunks_allocated{0};
    uint64_t tail_bytes_copied{0};
    uint64_t payload_bytes_delivered{0};
  };
  RecvStats recv_stats(const ProcessId& pid) const;

  /// Shuts down every connection accepted by `pid`'s endpoint (simulates a
  /// peer's socket dying mid-stream; senders must reconnect).
  void debug_shutdown_inbound(const ProcessId& pid);

  /// Pauses/resumes `pid`'s writer thread so tests can fill the bounded
  /// outbound queue deterministically. stop() overrides a pause.
  void debug_pause_writer(const ProcessId& pid, bool paused);

  /// Bytes currently queued from `from` toward `to` (headers + payloads).
  size_t debug_outbox_bytes(const ProcessId& from, const ProcessId& to) const;

 private:
  struct Endpoint;

  /// Frame header: [u32 length][from pid (5)][to pid (5)][u64 mac]; length
  /// counts everything after itself (addressing + mac + payload).
  static constexpr size_t kHeaderSize = 4 + 5 + 5 + 8;

  /// One sealed outbound frame: fixed header + refcounted payload view. The
  /// writer thread scatter-gathers both with sendmsg, so the payload is
  /// never concatenated into a contiguous frame -- and a payload fanned out
  /// to n peers is shared by all n frames, not copied.
  struct OutFrame {
    std::array<uint8_t, kHeaderSize> header;
    Payload payload;
  };

  struct OutQueue {
    std::deque<OutFrame> pending;
    size_t pending_bytes{0};
  };

  /// Refcounted receive chunk; delivered payloads alias it via
  /// Payload(shared_ptr, view) and keep it alive past the reader's reuse.
  struct Chunk {
    explicit Chunk(size_t capacity)
        : data(new uint8_t[capacity]), cap(capacity) {}
    std::unique_ptr<uint8_t[]> data;
    size_t cap;
    size_t filled{0};
  };

  /// Bounded free list of receive chunks. Shared-ptr'd independently of the
  /// Endpoint because delivered payloads (which return chunks here from
  /// their deleter) may outlive the network object.
  struct ChunkPool {
    explicit ChunkPool(size_t cap) : max_bytes(cap) {}
    const size_t max_bytes;
    Mutex mu;
    std::vector<std::unique_ptr<Chunk>> free_list GUARDED_BY(mu);
    size_t bytes GUARDED_BY(mu){0};
  };

  /// Per-connection reader state (reader thread private).
  struct ConnState {
    std::shared_ptr<Chunk> chunk;
    size_t parse_pos{0};
  };

  /// Pending post_after timer; fired by the timer thread via post().
  struct Timer {
    TimeNs due;
    uint64_t seq;
    ProcessId pid;
    std::function<void()> fn;
    bool operator>(const Timer& o) const {
      return due != o.due ? due > o.due : seq > o.seq;
    }
  };

  void reader_loop(Endpoint* ep);
  void writer_loop(Endpoint* ep);
  void mailbox_loop(runtime::MailboxShard* shard);
  void timer_loop() EXCLUDES(timer_mu_);
  void enqueue(Endpoint* ep, std::function<void()> fn);
  void deliver(Endpoint* ep, net::Envelope env);
  int connect_to(const ProcessId& to);
  Endpoint* find(const ProcessId& pid);
  const Endpoint* find(const ProcessId& pid) const;
  bool on_internal_thread() const;

  // Reader-thread helpers (all private to `ep`'s reader thread).
  void accept_ready(Endpoint* ep);
  bool conn_readable(Endpoint* ep, int fd, ConnState& st);
  bool parse_frames(Endpoint* ep, ConnState& st);
  bool ensure_recv_space(Endpoint* ep, ConnState& st);
  static std::shared_ptr<Chunk> acquire_chunk(Endpoint* ep, size_t min_cap);
  void close_conn(Endpoint* ep, int fd);

  // Writer-thread helpers.
  void flush_to(Endpoint* ep, const ProcessId& to, std::deque<OutFrame>* frames);
  static bool sendmsg_frames(int fd, std::deque<OutFrame>* frames);

  crypto::Authenticator auth_;
  TcpConfig config_;
  net::NetworkMetrics metrics_;
  std::map<ProcessId, std::unique_ptr<Endpoint>> endpoints_;
  std::atomic<bool> running_{false};
  std::chrono::steady_clock::time_point epoch_;

  Mutex timer_mu_;
  CondVar timer_cv_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timer_queue_
      GUARDED_BY(timer_mu_);
  std::thread timer_thread_;
  std::atomic<uint64_t> timer_seq_{0};
};

}  // namespace bftreg::socknet
