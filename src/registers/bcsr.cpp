#include "registers/bcsr.h"

#include <cassert>
#include <memory>

namespace bftreg::registers {

std::vector<Bytes> bcsr_initial_elements(const SystemConfig& config) {
  return codec::MdsCode::for_bcsr(config.n, config.f).encode(config.initial_value);
}

BcsrWriter::BcsrWriter(ProcessId self, SystemConfig config,
                       net::Transport* transport, uint32_t object)
    : BsrWriter(self, config, transport, object,
                codec::MdsCode::for_bcsr(config.n, config.f)) {
  assert(config.valid_for_bcsr());
}

BcsrReader::BcsrReader(ProcessId self, SystemConfig config,
                       net::Transport* transport, uint32_t object)
    : mux_(self, std::move(config), transport),
      object_(object),
      code_(codec::MdsCode::for_bcsr(mux_.config().n, mux_.config().f)),
      state_(LocalState::initial(mux_.config())) {}

void BcsrReader::start_read(Callback callback) {
  assert(!busy() && "at most one operation per client");
  mux_.start(std::make_unique<BcsrReadOp>(mux_.config(), &code_, &state_,
                                          std::move(callback)),
             OpKind::kBcsrRead, object_);
}

}  // namespace bftreg::registers
