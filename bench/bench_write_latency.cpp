// E2 -- write latency (paper claims: Fig. 1 two-phase writes; Section I-B
// RB tax on the baseline).
//
// Claim reproduced: BSR/BCSR writes are exactly two rounds (4 one-way
// delays); the RB-based write pays get-tag (2d) + PUT + ECHO + READY + ACK
// = 6d -- the 1.5x blowup the paper attributes to reliable broadcast.
#include "bench_util.h"

using namespace bftreg;
using namespace bftreg::bench;

int main() {
  std::printf("E2: write latency\n");
  std::printf("fixed one-way delay = 1000 ns; BSR write = 2 rounds = 4000 ns\n\n");

  const struct {
    harness::Protocol protocol;
    size_t f;
  } rows[] = {
      {harness::Protocol::kBsr, 1},  {harness::Protocol::kBsr, 2},
      {harness::Protocol::kBsr, 3},  {harness::Protocol::kBcsr, 1},
      {harness::Protocol::kBcsr, 2}, {harness::Protocol::kBsrHistory, 1},
      {harness::Protocol::kBsr2R, 1},
      {harness::Protocol::kRb, 1},   {harness::Protocol::kRb, 2},
      {harness::Protocol::kRb, 3},
  };

  TextTable table({"protocol", "n", "f", "write delays (fixed d)",
                   "random med (us)", "random p99 (us)", "vs BSR"});
  double bsr_fixed = 0;
  for (const auto& row : rows) {
    const size_t n = harness::min_servers(row.protocol, row.f);
    const auto fixed = run_quiescent(row.protocol, n, row.f, 50, 1, 1000, 1000);
    const auto rnd = run_quiescent(row.protocol, n, row.f, 200, 2, 500, 1500);
    const double delays = fixed.writes.median() / 1000.0;  // one-way units
    if (row.protocol == harness::Protocol::kBsr && row.f == 1) bsr_fixed = delays;
    table.add_row({to_string(row.protocol), std::to_string(n),
                   std::to_string(row.f), TextTable::fmt(delays, 1),
                   fmt_us(rnd.writes.median()), fmt_us(rnd.writes.p99()),
                   TextTable::fmt(bsr_fixed > 0 ? delays / bsr_fixed : 0, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape check: BSR and BCSR writes cost 4 one-way delays (two rounds) at\n"
      "every f; the RB baseline costs 6 (1.50x) -- the Section I-B claim that\n"
      "per-message RB use blows latency up by 1.5x.\n");
  return 0;
}
