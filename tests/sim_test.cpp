// Tests for the deterministic discrete-event simulator.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "adversary/churn.h"
#include "harness/scenarios.h"
#include "net/transport.h"
#include "sim/simulator.h"

namespace bftreg::sim {
namespace {

/// Records every delivered envelope; can auto-reply.
class Recorder final : public net::IProcess {
 public:
  explicit Recorder(ProcessId self, net::Transport* transport = nullptr)
      : self_(self), transport_(transport) {}

  void on_start() override { started_ = true; }

  void on_message(const net::Envelope& env) override {
    received_.push_back(env);
    if (transport_ != nullptr && !env.payload.empty() && env.payload[0] == 'P') {
      transport_->send(self_, env.from, Bytes{'R'});
    }
  }

  bool started() const { return started_; }
  const std::vector<net::Envelope>& received() const { return received_; }

 private:
  ProcessId self_;
  net::Transport* transport_;
  bool started_{false};
  std::vector<net::Envelope> received_;
};

TEST(SimulatorTest, DeliversWithConfiguredDelay) {
  Simulator sim(SimConfig::with_fixed_delay(1, 500));
  Recorder a(ProcessId::writer(0));
  Recorder b(ProcessId::server(0));
  sim.add_process(ProcessId::writer(0), &a);
  sim.add_process(ProcessId::server(0), &b);

  sim.send(ProcessId::writer(0), ProcessId::server(0), Bytes{1, 2, 3});
  sim.run_until_idle();

  ASSERT_EQ(b.received().size(), 1u);
  EXPECT_EQ(b.received()[0].payload, (Bytes{1, 2, 3}));
  EXPECT_EQ(b.received()[0].from, ProcessId::writer(0));
  EXPECT_EQ(sim.now(), 500u);
}

TEST(SimulatorTest, StartAllInvokesOnStart) {
  Simulator sim(SimConfig::with_fixed_delay(1, 10));
  Recorder a(ProcessId::server(0));
  sim.add_process(ProcessId::server(0), &a);
  sim.start_all();
  sim.run_until_idle();
  EXPECT_TRUE(a.started());
}

TEST(SimulatorTest, RequestReplyRoundTrip) {
  Simulator sim(SimConfig::with_fixed_delay(2, 100));
  Recorder client(ProcessId::reader(0), &sim);
  Recorder server(ProcessId::server(0), &sim);
  sim.add_process(ProcessId::reader(0), &client);
  sim.add_process(ProcessId::server(0), &server);

  sim.send(ProcessId::reader(0), ProcessId::server(0), Bytes{'P'});
  sim.run_until_idle();

  ASSERT_EQ(client.received().size(), 1u);
  EXPECT_EQ(client.received()[0].payload, (Bytes{'R'}));
  EXPECT_EQ(sim.now(), 200u);  // one round trip = 2 one-way delays
}

TEST(SimulatorTest, IdenticalSeedsGiveIdenticalSchedules) {
  auto run = [](uint64_t seed) {
    Simulator sim(SimConfig::with_uniform_delay(seed, 10, 1000));
    Recorder dst(ProcessId::server(0));
    sim.add_process(ProcessId::server(0), &dst);
    for (uint8_t i = 0; i < 50; ++i) {
      sim.send(ProcessId::writer(0), ProcessId::server(0), Bytes{i});
    }
    sim.run_until_idle();
    std::vector<uint8_t> order;
    for (const auto& env : dst.received()) order.push_back(env.payload[0]);
    return order;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // overwhelmingly likely with 50 messages
}

TEST(SimulatorTest, RandomDelaysReorderMessages) {
  // The asynchronous model allows arbitrary per-channel reordering.
  Simulator sim(SimConfig::with_uniform_delay(7, 1, 10000));
  Recorder dst(ProcessId::server(0));
  sim.add_process(ProcessId::server(0), &dst);
  for (uint8_t i = 0; i < 100; ++i) {
    sim.send(ProcessId::writer(0), ProcessId::server(0), Bytes{i});
  }
  sim.run_until_idle();
  ASSERT_EQ(dst.received().size(), 100u);
  bool reordered = false;
  for (size_t i = 1; i < dst.received().size(); ++i) {
    if (dst.received()[i].payload[0] < dst.received()[i - 1].payload[0]) {
      reordered = true;
    }
  }
  EXPECT_TRUE(reordered);
}

TEST(SimulatorTest, CrashedDestinationReceivesNothing) {
  Simulator sim(SimConfig::with_fixed_delay(1, 10));
  Recorder dst(ProcessId::server(0));
  sim.add_process(ProcessId::server(0), &dst);
  sim.send(ProcessId::writer(0), ProcessId::server(0), Bytes{1});
  sim.mark_crashed(ProcessId::server(0));
  sim.run_until_idle();
  EXPECT_TRUE(dst.received().empty());
}

TEST(SimulatorTest, CrashedSenderPlacesNoMessages) {
  Simulator sim(SimConfig::with_fixed_delay(1, 10));
  Recorder dst(ProcessId::server(0));
  sim.add_process(ProcessId::server(0), &dst);
  sim.mark_crashed(ProcessId::writer(0));
  sim.send(ProcessId::writer(0), ProcessId::server(0), Bytes{1});
  sim.run_until_idle();
  EXPECT_TRUE(dst.received().empty());
  EXPECT_EQ(sim.metrics().snapshot().messages_sent, 0u);
}

TEST(SimulatorTest, ForgedMacIsDroppedAndCounted) {
  Simulator sim(SimConfig::with_fixed_delay(1, 10));
  Recorder dst(ProcessId::reader(0));
  sim.add_process(ProcessId::reader(0), &dst);

  // A Byzantine server fabricates an envelope claiming to come from another
  // server without knowing the channel key.
  net::Envelope forged;
  forged.from = ProcessId::server(1);
  forged.to = ProcessId::reader(0);
  forged.payload = Bytes{0xEE};
  forged.mac = 0xBADC0FFEE;  // not a valid seal
  sim.inject_raw(std::move(forged));
  sim.run_until_idle();

  EXPECT_TRUE(dst.received().empty());
  EXPECT_EQ(sim.metrics().snapshot().auth_failures, 1u);
}

TEST(SimulatorTest, ScriptedLinkDelayOverridesBase) {
  Simulator sim(SimConfig::with_fixed_delay(1, 100));
  Recorder fast(ProcessId::server(0));
  Recorder slow(ProcessId::server(1));
  sim.add_process(ProcessId::server(0), &fast);
  sim.add_process(ProcessId::server(1), &slow);

  sim.delay_model().set_link_delay(ProcessId::writer(0), ProcessId::server(1), 9999);
  sim.send(ProcessId::writer(0), ProcessId::server(0), Bytes{1});
  sim.send(ProcessId::writer(0), ProcessId::server(1), Bytes{2});

  sim.run_until_time(100);
  EXPECT_EQ(fast.received().size(), 1u);
  EXPECT_TRUE(slow.received().empty());
  sim.run_until_idle();
  EXPECT_EQ(slow.received().size(), 1u);
  EXPECT_EQ(sim.now(), 9999u);
}

TEST(SimulatorTest, PayloadHookWinsOverLinkOverride) {
  Simulator sim(SimConfig::with_fixed_delay(1, 100));
  Recorder dst(ProcessId::server(0));
  sim.add_process(ProcessId::server(0), &dst);

  sim.delay_model().set_link_delay(ProcessId::writer(0), ProcessId::server(0), 5000);
  sim.delay_model().set_hook([](const net::Envelope& env) -> std::optional<TimeNs> {
    if (!env.payload.empty() && env.payload[0] == 'X') return TimeNs{1};
    return std::nullopt;
  });
  sim.send(ProcessId::writer(0), ProcessId::server(0), Bytes{'X'});
  sim.send(ProcessId::writer(0), ProcessId::server(0), Bytes{'Y'});
  sim.run_until_idle();

  ASSERT_EQ(dst.received().size(), 2u);
  EXPECT_EQ(dst.received()[0].payload, (Bytes{'X'}));  // hook made it fast
  EXPECT_EQ(dst.received()[1].payload, (Bytes{'Y'}));
}

TEST(SimulatorTest, SchedulingPrimitives) {
  Simulator sim(SimConfig::with_fixed_delay(1, 10));
  std::vector<int> order;
  sim.schedule_after(300, [&] { order.push_back(3); });
  sim.schedule_after(100, [&] { order.push_back(1); });
  sim.schedule_after(200, [&] { order.push_back(2); });
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300u);
}

TEST(SimulatorTest, EqualTimeEventsRunInScheduleOrder) {
  Simulator sim(SimConfig::with_fixed_delay(1, 10));
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(77, [&order, i] { order.push_back(i); });
  }
  sim.run_until_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, RunUntilPredicate) {
  Simulator sim(SimConfig::with_fixed_delay(1, 10));
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(static_cast<TimeNs>(i * 10), [&] { ++count; });
  }
  EXPECT_TRUE(sim.run_until([&] { return count == 5; }));
  EXPECT_EQ(count, 5);
  sim.run_until_idle();
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, RunUntilReturnsFalseWhenQueueDrains) {
  Simulator sim(SimConfig::with_fixed_delay(1, 10));
  EXPECT_FALSE(sim.run_until([] { return false; }));
}

TEST(SimulatorTest, MetricsCountSendsAndDeliveries) {
  Simulator sim(SimConfig::with_fixed_delay(1, 10));
  Recorder dst(ProcessId::server(0));
  sim.add_process(ProcessId::server(0), &dst);
  sim.send(ProcessId::writer(0), ProcessId::server(0), Bytes(100, 0));
  sim.send(ProcessId::writer(0), ProcessId::server(0), Bytes(50, 0));
  sim.run_until_idle();
  const auto m = sim.metrics().snapshot();
  EXPECT_EQ(m.messages_sent, 2u);
  EXPECT_EQ(m.bytes_sent, 150u);
  EXPECT_EQ(m.messages_delivered, 2u);
}

TEST(SimulatorTest, PostRunsInProcessContextUnlessCrashed) {
  Simulator sim(SimConfig::with_fixed_delay(1, 10));
  int runs = 0;
  sim.post(ProcessId::writer(0), [&] { ++runs; });
  sim.mark_crashed(ProcessId::writer(1));
  sim.post(ProcessId::writer(1), [&] { ++runs; });
  sim.run_until_idle();
  EXPECT_EQ(runs, 1);
}

// ---------------------------------------------- churn schedule seeding

/// Unique temp directory per test; removed recursively on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& stem) {
    path_ = (std::filesystem::temp_directory_path() /
             ("bftreg_" + stem + "_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter_++)))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

TEST(ScheduleSeedTest, IsAPureFunctionOfNameAndBase) {
  EXPECT_EQ(harness::schedule_seed("crash-during-write", 7),
            harness::schedule_seed("crash-during-write", 7));
  EXPECT_NE(harness::schedule_seed("crash-during-write", 7),
            harness::schedule_seed("rejoin-mid-round", 7));
  // The base seed folds in by xor, so varying it perturbs every schedule.
  EXPECT_EQ(harness::schedule_seed("x", 0) ^ 42u,
            harness::schedule_seed("x", 42));
}

TEST(ScheduleSeedTest, ChurnRunsAreReproducibleAcrossTestOrdering) {
  // ctest may shuffle tests, and earlier operations advance the shared
  // simulator RNG. run_churn_schedule reseeds from schedule_seed, so the
  // SAME schedule must produce the SAME operation values and results
  // whether or not unrelated traffic ran first.
  auto run = [](bool with_prelude, const std::string& wal_dir) {
    harness::ClusterOptions o;
    o.protocol = harness::Protocol::kBsr;
    o.config.n = 5;
    o.config.f = 1;
    o.seed = 7;
    o.wal_dir = wal_dir;
    harness::SimCluster cluster(o);
    if (with_prelude) {
      // Unrelated traffic: consumes delay/value draws before the schedule.
      cluster.write(0, Bytes{'p', 'r', 'e'});
      cluster.read(0);
    }
    const auto out = harness::run_churn_schedule(
        cluster, adversary::crash_during_write_schedule(1));
    std::vector<Bytes> values;
    for (const uint64_t id : out.write_ids) {
      for (const auto& op : cluster.recorder().ops()) {
        if (op.id == id) values.push_back(op.value);
      }
    }
    for (const uint64_t id : out.read_ids) {
      values.push_back(cluster.read_result(id).value);
    }
    return std::make_pair(out.seed, values);
  };

  TempDir wal_a("churn_seed_a");
  TempDir wal_b("churn_seed_b");
  const auto [seed_a, values_a] = run(false, wal_a.path());
  const auto [seed_b, values_b] = run(true, wal_b.path());
  EXPECT_EQ(seed_a, seed_b);
  ASSERT_FALSE(values_a.empty());
  EXPECT_EQ(values_a, values_b)
      << "schedule execution must not depend on what ran before it";
}

}  // namespace
}  // namespace bftreg::sim
