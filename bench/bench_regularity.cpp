// E6 -- regularity: what plain BSR loses and what the Section III-C fixes
// recover (Theorem 3 + the two extensions).
//
// Part 1 replays the exact Theorem 3 execution (n = 5, f = 1, one complete
// write then four one-server writes) on BSR and both regular variants.
// Part 2 runs randomized concurrent executions and reports the fraction
// that satisfy regularity, plus the bandwidth each variant paid.
// Expected shape: BSR returns v0 and fails regularity in part 1 and below
// 100% in part 2; both variants are 100% regular; history pays bandwidth,
// 2R pays a round.
#include "bench_util.h"
#include "checker/consistency.h"
#include "harness/scenarios.h"

using namespace bftreg;
using namespace bftreg::bench;

namespace {

struct RegResult {
  double regular_pct{0};
  double safe_pct{0};
  double atomic_pct{0};
  double read_bytes_avg{0};
  double read_rounds{1};
};

RegResult random_regularity(harness::Protocol protocol, size_t trials) {
  size_t regular = 0;
  size_t safe = 0;
  size_t atomic = 0;
  double bytes_sum = 0;
  double rounds_sum = 0;
  size_t reads = 0;
  for (uint64_t seed = 1; seed <= trials; ++seed) {
    harness::ClusterOptions o = make_options(protocol, 5, 1, seed, 500, 1500);
    o.num_writers = 3;
    o.num_readers = 2;
    harness::SimCluster cluster(o);
    Rng rng(seed * 13);
    cluster.set_byzantine(rng.uniform(5),
                          adversary::kAllStrategyKinds[rng.uniform(
                              std::size(adversary::kAllStrategyKinds))]);

    std::vector<std::optional<uint64_t>> wop(3), rop(2);
    std::vector<uint64_t> read_ids;
    uint64_t counter = 0;
    for (int step = 0; step < 50; ++step) {
      for (auto& s : wop) {
        if (s && cluster.op_done(*s)) s.reset();
      }
      for (auto& s : rop) {
        if (s && cluster.op_done(*s)) s.reset();
      }
      if (rng.bernoulli(0.4)) {
        const size_t c = rng.uniform(3);
        if (!wop[c]) {
          wop[c] = cluster.start_write(c, workload::make_value(seed, counter++, 32));
        }
      } else {
        const size_t c = rng.uniform(2);
        if (!rop[c]) {
          rop[c] = cluster.start_read(c);
          read_ids.push_back(*rop[c]);
        }
      }
      cluster.sim().run_until_time(cluster.sim().now() + rng.uniform(3000));
    }
    for (auto& s : wop) {
      if (s) cluster.await(*s);
    }
    for (auto& s : rop) {
      if (s) cluster.await(*s);
    }
    for (uint64_t id : read_ids) {
      rounds_sum += cluster.read_result(id).rounds;
      ++reads;
    }
    bytes_sum += static_cast<double>(cluster.sim().metrics().snapshot().bytes_sent);

    checker::CheckOptions copts;
    copts.reads_report_tags = protocol != harness::Protocol::kBcsr;
    if (checker::check_safety(cluster.recorder().ops(), copts).ok) ++safe;
    if (checker::check_regularity(cluster.recorder().ops(), copts).ok) ++regular;
    if (checker::check_atomicity(cluster.recorder().ops(), copts).ok) ++atomic;
  }
  RegResult out;
  out.regular_pct = 100.0 * static_cast<double>(regular) / trials;
  out.safe_pct = 100.0 * static_cast<double>(safe) / trials;
  out.atomic_pct = 100.0 * static_cast<double>(atomic) / trials;
  out.read_bytes_avg = bytes_sum / static_cast<double>(trials);
  out.read_rounds = reads > 0 ? rounds_sum / static_cast<double>(reads) : 0;
  return out;
}

const char* short_name(harness::Protocol p) { return harness::to_string(p); }

}  // namespace

int main() {
  std::printf("E6: regularity -- Theorem 3 and the Section III-C fixes\n\n");

  std::printf("part 1: the exact Theorem 3 schedule (n=5, f=1)\n");
  TextTable t1({"protocol", "read returned", "safe (Def.1)", "regular (Def.2)"});
  for (auto protocol : {harness::Protocol::kBsr, harness::Protocol::kBsrHistory,
                        harness::Protocol::kBsr2R}) {
    harness::ClusterOptions o;
    o.protocol = protocol;
    o.config.n = 5;
    o.config.f = 1;
    o.num_writers = 5;
    o.num_readers = 1;
    o.seed = 42;
    harness::SimCluster cluster(o);
    const auto r = harness::run_theorem3_schedule(cluster);
    checker::CheckOptions copts;
    const bool safe = checker::check_safety(cluster.recorder().ops(), copts).ok;
    const bool regular =
        checker::check_regularity(cluster.recorder().ops(), copts).ok;
    t1.add_row({short_name(protocol),
                r.value.empty() ? "v0  <-- slid back!"
                                : std::string(r.value.begin(), r.value.end()),
                safe ? "yes" : "NO", regular ? "yes" : "NO"});
  }
  std::printf("%s\n", t1.render().c_str());

  std::printf("part 2: randomized concurrent executions (40 seeds each)\n");
  TextTable t2({"protocol", "safe %", "regular %", "atomic %", "avg read rounds",
                "avg exec bytes"});
  for (auto protocol : {harness::Protocol::kBsr, harness::Protocol::kBsrHistory,
                        harness::Protocol::kBsr2R, harness::Protocol::kBsrWb}) {
    const auto res = random_regularity(protocol, 40);
    t2.add_row({short_name(protocol), TextTable::fmt(res.safe_pct, 0),
                TextTable::fmt(res.regular_pct, 0),
                TextTable::fmt(res.atomic_pct, 0),
                TextTable::fmt(res.read_rounds, 2),
                TextTable::fmt(res.read_bytes_avg, 0)});
  }
  std::printf("%s\n", t2.render().c_str());
  std::printf(
      "shape check: BSR is always safe but not always regular (Thm. 3);\n"
      "history reads buy regularity with bandwidth (larger exec bytes),\n"
      "two-round reads buy it with an extra round (2.0 vs 1.0); only the\n"
      "write-back extension GUARANTEES atomicity -- also at 2 rounds, the\n"
      "floor set by the semi-fast impossibility result [13]. (Random\n"
      "schedules rarely hit the cross-reader inversions that separate\n"
      "regular from atomic; the scripted schedule in extensions_test.cpp's\n"
      "AtomicityTest shows BSR failing atomicity deterministically while\n"
      "writeback_test.cpp shows BSR-WB surviving the same schedule.)\n");
  return 0;
}
