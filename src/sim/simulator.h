// Deterministic discrete-event network simulator.
//
// Implements `net::Transport` over a virtual clock. Every run is a pure
// function of (seed, registered processes, scripted delays): events are
// ordered by (delivery time, send sequence), so ties break deterministically
// and any execution -- including one exhibiting a safety violation -- can be
// replayed from its seed. Message authentication is enforced on delivery;
// envelopes with bad MACs are dropped and counted, mirroring how the paper's
// signature assumption neutralizes sender spoofing (Section II-A).
#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "crypto/auth.h"
#include "net/delay.h"
#include "net/transport.h"

namespace bftreg::sim {

struct SimConfig {
  uint64_t seed{1};
  /// Master secret for the pairwise-key registry (unknown to the adversary).
  uint64_t master_secret{0x5eC4e7B17e5eCBA5ULL};
  /// Base delay model; wrapped in a ScriptedDelay so tests/benches can
  /// override links or install payload hooks at any time.
  std::unique_ptr<net::DelayModel> delay;

  static SimConfig with_uniform_delay(uint64_t seed, TimeNs lo, TimeNs hi) {
    SimConfig c;
    c.seed = seed;
    c.delay = std::make_unique<net::UniformDelay>(lo, hi);
    return c;
  }
  static SimConfig with_fixed_delay(uint64_t seed, TimeNs d) {
    SimConfig c;
    c.seed = seed;
    c.delay = std::make_unique<net::FixedDelay>(d);
    return c;
  }
};

class Simulator final : public net::Transport {
 public:
  explicit Simulator(SimConfig config);

  // --- topology -----------------------------------------------------------

  /// Registers a process; the caller retains ownership and must keep the
  /// object alive for the simulator's lifetime.
  void add_process(const ProcessId& pid, net::IProcess* process);

  /// Marks a process as crashed: no further sends from it are placed and no
  /// deliveries to it occur (the model's "delivery depends only on the
  /// destination being non-faulty").
  void mark_crashed(const ProcessId& pid);
  bool is_crashed(const ProcessId& pid) const;

  /// Clears the crashed mark: sends and deliveries resume. Pair with a
  /// fresh add_process(pid, ...) to model crash/rejoin -- add_process
  /// overwrites, and deliveries resolve the process pointer at delivery
  /// time, so events queued across the restart reach the NEW object (to
  /// the protocol that is just a slow network).
  void revive(const ProcessId& pid) { crashed_.erase(pid); }

  /// Calls on_start() for every registered process (as time-0 events).
  void start_all();

  // --- net::Transport -----------------------------------------------------

  void send_payload(const ProcessId& from, const ProcessId& to,
                    Payload payload) override;
  TimeNs now() const override { return now_; }
  void post(const ProcessId& pid, std::function<void()> fn) override;
  void post_after(const ProcessId& pid, TimeNs delta,
                  std::function<void()> fn) override;
  net::NetworkMetrics& metrics() override { return metrics_; }

  // --- scheduling / execution --------------------------------------------

  void schedule_at(TimeNs at, std::function<void()> fn);
  void schedule_after(TimeNs delta, std::function<void()> fn);

  /// Executes the next event; false if the queue is empty.
  bool step();

  /// Runs until no events remain.
  void run_until_idle();

  /// Runs until `pred()` is true or the queue drains; returns pred().
  bool run_until(const std::function<bool()>& pred);

  /// Runs events with time <= deadline (later events stay queued).
  void run_until_time(TimeNs deadline);

  size_t pending_events() const { return queue_.size(); }
  uint64_t events_executed() const { return events_executed_; }

  // --- knobs --------------------------------------------------------------

  Rng& rng() { return rng_; }
  net::ScriptedDelay& delay_model() { return *scripted_; }
  const crypto::Authenticator& authenticator() const { return auth_; }

  /// Injects a pre-built envelope without sealing it (testing hook for
  /// spoofing attempts; delivery will MAC-check and drop forgeries).
  void inject_raw(net::Envelope env);

 private:
  struct Event {
    TimeNs at;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct EventCompare {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void deliver(net::Envelope env);

  TimeNs now_{0};
  uint64_t next_seq_{0};
  uint64_t events_executed_{0};
  Rng rng_;
  crypto::Authenticator auth_;
  std::unique_ptr<net::ScriptedDelay> scripted_;
  net::NetworkMetrics metrics_;
  std::unordered_map<ProcessId, net::IProcess*> processes_;
  std::unordered_set<ProcessId> crashed_;
  std::priority_queue<Event, std::vector<Event>, EventCompare> queue_;
};

}  // namespace bftreg::sim
