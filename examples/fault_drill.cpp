// fault_drill: watch BSR shrug off every adversary in the framework --
// then watch the same protocol break the moment you run it below the
// paper's resilience bound.
//
// Part 1 runs a read/write workload against n = 4f+1 servers with f
// Byzantine servers cycling through every strategy (silent, stale,
// fabricating, colluding, double-replying, malformed, turncoat) and checks
// the recorded execution for safety each time.
//
// Part 2 re-runs the Theorem 5 proof schedule at n = 4f: two partial
// writes, one lagging liar, and a reader that provably returns a stale
// value -- the tight lower bound, live.
//
//   ./build/examples/fault_drill
#include <cstdio>
#include <map>
#include <string>

#include "checker/consistency.h"
#include "harness/scenarios.h"
#include "harness/sim_cluster.h"

using namespace bftreg;

namespace {

Bytes val(const std::string& s) { return Bytes(s.begin(), s.end()); }

bool drill(adversary::StrategyKind kind) {
  harness::ClusterOptions o;
  o.protocol = harness::Protocol::kBsr;
  o.config.n = 9;
  o.config.f = 2;
  o.num_writers = 2;
  o.num_readers = 2;
  o.seed = 1000 + static_cast<uint64_t>(kind);
  harness::SimCluster cluster(o);
  cluster.set_byzantine(1, kind);
  cluster.set_byzantine(6, kind);

  bool reads_exact = true;
  for (int i = 0; i < 10; ++i) {
    const std::string v = "gen-" + std::to_string(i);
    cluster.write(i % 2, val(v));
    const auto r = cluster.read(i % 2);
    reads_exact = reads_exact && (r.value == val(v));
  }
  checker::CheckOptions copts;
  copts.strict_validity = true;
  const auto verdict = checker::check_safety(cluster.recorder().ops(), copts);
  std::printf("  %-13s  reads-exact=%s  safety=%s\n",
              adversary::to_string(kind), reads_exact ? "yes" : "NO ",
              verdict.ok ? "OK" : "VIOLATED");
  return reads_exact && verdict.ok;
}

}  // namespace

int main() {
  std::printf("== part 1: BSR at n=9, f=2 vs every adversary =====================\n");
  bool all_ok = true;
  for (auto kind : adversary::kAllStrategyKinds) all_ok = all_ok && drill(kind);
  std::printf("  -> %s\n\n", all_ok ? "all drills passed" : "DRILL FAILURE");

  std::printf("== part 2: the Theorem 5 schedule at n = 4f (one server short) ====\n");
  harness::ClusterOptions o;
  o.protocol = harness::Protocol::kBsr;
  o.config.n = 4;
  o.config.f = 1;
  o.num_writers = 2;
  o.num_readers = 1;
  o.seed = 5;
  harness::SimCluster cluster(o);
  cluster.set_byzantine(0, std::make_unique<harness::LaggingLiar>());
  const Bytes got = harness::run_theorem5_schedule(cluster);
  std::printf("  W1(v1) complete, then W2(v2) complete, then read() -> \"%s\"\n",
              std::string(got.begin(), got.end()).c_str());

  checker::CheckOptions copts;
  const auto verdict = checker::check_safety(cluster.recorder().ops(), copts);
  std::printf("  safety checker: %s\n",
              verdict.ok ? "OK (unexpected!)" : verdict.violation.c_str());
  std::printf("  -> n >= 4f+1 is not an implementation artifact; it is the bound.\n");

  return all_ok && !verdict.ok ? 0 : 1;
}
