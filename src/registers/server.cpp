#include "registers/server.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/log.h"

namespace bftreg::registers {

RegisterServer::RegisterServer(ProcessId self, SystemConfig config,
                               net::Transport* transport, Bytes initial)
    : self_(self),
      config_(std::move(config)),
      transport_(transport),
      initial_(std::move(initial)) {
  const size_t nshards = std::max<size_t>(1, config_.server_shards);
  shards_.reserve(nshards);
  for (size_t s = 0; s < nshards; ++s) {
    shards_.push_back(std::make_unique<Shard>(initial_, config_.store_policy,
                                              config_.max_history));
  }
  // The default register exists from the start.
  const auto [rec, seeded] = shard_for(0).store.materialize(0);
  (void)rec;
  stored_bytes_.fetch_add(seeded, std::memory_order_relaxed);
}

uint32_t RegisterServer::delivery_shards() const {
  return static_cast<uint32_t>(shards_.size());
}

uint32_t RegisterServer::shard_of(const net::Envelope& env) const {
  // Wire layout (messages.cpp): type u8 at 0, op_id u64 at 1, object u32
  // little-endian at 9. Peeking avoids a full defensive parse per routing
  // decision; anything shorter than the fixed prefix cannot be a valid
  // message and lands on shard 0 for the parser to reject.
  constexpr size_t kObjectOffset = 1 + 8;
  if (env.payload.size() < kObjectOffset + 4) return 0;
  const uint8_t* p = env.payload.data() + kObjectOffset;
  const uint32_t object = static_cast<uint32_t>(p[0]) |
                          (static_cast<uint32_t>(p[1]) << 8) |
                          (static_cast<uint32_t>(p[2]) << 16) |
                          (static_cast<uint32_t>(p[3]) << 24);
  return owner_shard(object);
}

uint32_t RegisterServer::owner_shard(uint32_t object) const {
  if (shards_.size() == 1) return 0;
  return static_cast<uint32_t>(fnv1a64(&object, sizeof(object)) %
                               shards_.size());
}

RegisterServer::Shard& RegisterServer::shard_for(uint32_t object) {
  return *shards_[owner_shard(object)];
}

const RegisterServer::Shard& RegisterServer::shard_for(uint32_t object) const {
  return *shards_[owner_shard(object)];
}

std::vector<TaggedValue> RegisterServer::store(uint32_t object) const {
  std::vector<TaggedValue> out;
  const auto* rec = shard_for(object).store.find(object);
  if (rec == nullptr) {
    out.push_back(TaggedValue{Tag::initial(), initial_});
    return out;
  }
  out.reserve(rec->log.size());
  for (const LogEntry& e : rec->log) {
    const BytesView v = e.val.view();
    out.push_back(TaggedValue{e.tag, Bytes(v.begin(), v.end())});
  }
  return out;
}

std::pair<Tag, Bytes> RegisterServer::newest_entry(uint32_t object) const {
  const auto* rec = shard_for(object).store.find(object);
  if (rec == nullptr) return {Tag::initial(), initial_};
  const LogEntry& newest = rec->log.newest();
  const BytesView v = newest.val.view();
  return {newest.tag, Bytes(v.begin(), v.end())};
}

bool RegisterServer::read_newest(uint32_t object, Tag* tag, Bytes* value) const {
  const NewestCache* cache = shard_for(object).store.index().find(object);
  return cache != nullptr && cache->read(tag, value);
}

size_t RegisterServer::stored_bytes() const {
  const size_t total = stored_bytes_.load(std::memory_order_relaxed);
#ifndef NDEBUG
  // Quiescent callers only (see header): cross-check the incremental
  // counter against the full walk it replaced.
  size_t walked = 0;
  for (const auto& shard : shards_) walked += shard->store.walk_value_bytes();
  assert(walked == total && "incremental stored_bytes diverged from walk");
#endif
  return total;
}

size_t RegisterServer::objects_known() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->store.size();
  return total;
}

std::vector<uint32_t> RegisterServer::object_ids() const {
  std::vector<uint32_t> out;
  out.reserve(objects_known());
  for (const auto& shard : shards_) {
    shard->store.for_each([&out](const CompactObjectStore::ObjectRec& rec) {
      out.push_back(rec.object);
    });
  }
  std::sort(out.begin(), out.end());
  return out;
}

void RegisterServer::reply(const ProcessId& to, RegisterMessage& msg) {
  msg.epoch = view_epoch_.load(std::memory_order_acquire);
  transport_->send(self_, to, msg.encode());
}

void RegisterServer::observe_epoch(uint64_t epoch) {
  uint64_t cur = view_epoch_.load(std::memory_order_relaxed);
  while (epoch > cur &&
         !view_epoch_.compare_exchange_weak(cur, epoch,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
  }
}

void RegisterServer::broadcast_view(uint64_t epoch,
                                    const std::vector<uint32_t>& members,
                                    const std::vector<ProcessId>& recipients) {
  observe_epoch(epoch);
  RegisterMessage msg;
  msg.type = MsgType::kViewAnnounce;
  msg.objects = members;
  msg.epoch = epoch;  // the announced epoch, not (necessarily) our newest
  const Bytes payload = msg.encode();
  for (const ProcessId& to : recipients) {
    if (to == self_) continue;
    transport_->send(self_, to, payload);
  }
}

void RegisterServer::handle_query_objects(const ProcessId& from,
                                          const RegisterMessage& req) {
  // Same cap as QUERY-DATA-BATCH: the recovering peer syncs in batches, and
  // an unbounded id list would let a ballooned store forge a huge reply.
  constexpr size_t kMaxObjects = 4096;
  RegisterMessage resp;
  resp.type = MsgType::kObjectsResp;
  resp.op_id = req.op_id;
  resp.objects.reserve(std::min(kMaxObjects, objects_known()));
  for (const auto& shard : shards_) {
    shard->store.index().collect(&resp.objects);
    if (resp.objects.size() >= kMaxObjects) break;
  }
  std::sort(resp.objects.begin(), resp.objects.end());
  if (resp.objects.size() > kMaxObjects) resp.objects.resize(kMaxObjects);
  reply(from, resp);
}

void RegisterServer::on_batch_begin(uint32_t shard) {
  if (shard >= shards_.size()) return;
  shards_[shard]->in_batch = true;
}

void RegisterServer::on_batch_end(uint32_t shard) {
  if (shard >= shards_.size()) return;
  Shard& s = *shards_[shard];
  flush_batch(s);
  s.in_batch = false;
  s.batch_read_cache.clear();
}

void RegisterServer::flush_batch(Shard& shard) {
  if (!shard.pending_dirty.empty()) {
    // One publish per touched object, no matter how many puts the batch
    // applied to it.
    std::sort(shard.pending_dirty.begin(), shard.pending_dirty.end());
    shard.pending_dirty.erase(
        std::unique(shard.pending_dirty.begin(), shard.pending_dirty.end()),
        shard.pending_dirty.end());
    for (const uint32_t object : shard.pending_dirty) {
      if (auto* rec = shard.store.find(object)) shard.store.publish(*rec);
    }
    shard.pending_dirty.clear();
  }
  if (!shard.pending_out.empty()) {
    // Replies only after every publish above: an ACK must imply the put is
    // visible to cross-shard readers (Fig. 3's ack => stored contract).
    for (auto& [to, msg] : shard.pending_out) reply(to, msg);
    shard.pending_out.clear();
  }
}

void RegisterServer::on_message(const net::Envelope& env) {
  auto msg = RegisterMessage::parse(env.payload);
  if (!msg) {
    LOG_DEBUG << to_string(self_) << ": dropping malformed payload from "
              << to_string(env.from);
    return;
  }
  // Fold the piggybacked epoch in before dispatch: even requests carry the
  // sender's view, so a server that missed an announce converges anyway.
  observe_epoch(msg->epoch);
  if (msg->type != MsgType::kPutData) {
    // Any non-put for this shard sees the batch's puts fully published
    // first, so same-shard reads never observe the coalescing window.
    Shard& shard = shard_for(msg->object);
    if (shard.in_batch) flush_batch(shard);
  }
  switch (msg->type) {
    case MsgType::kQueryTag:
      handle_query_tag(env.from, *msg);
      break;
    case MsgType::kPutData:
      handle_put_data(env.from, std::move(*msg));
      break;
    case MsgType::kQueryData:
      handle_query_data(env.from, *msg);
      break;
    case MsgType::kQueryHistory:
      handle_query_history(env.from, *msg);
      break;
    case MsgType::kQueryTagHistory:
      handle_query_tag_history(env.from, *msg);
      break;
    case MsgType::kQueryDataAt:
      handle_query_data_at(env.from, *msg);
      break;
    case MsgType::kReadDone:
      handle_read_done(env.from, *msg);
      break;
    case MsgType::kQueryDataBatch:
      handle_query_data_batch(env.from, *msg);
      break;
    case MsgType::kQueryObjects:
      handle_query_objects(env.from, *msg);
      break;
    case MsgType::kViewAnnounce:
      // The epoch fold above is the whole effect: views are tracked by
      // clients; servers only need the epoch for piggybacking.
      break;
    default:
      // Response types and RB frames are not for a basic server.
      break;
  }
}

void RegisterServer::handle_query_tag(const ProcessId& from,
                                      const RegisterMessage& req) {
  RegisterMessage resp;
  resp.type = MsgType::kTagResp;
  resp.op_id = req.op_id;
  resp.object = req.object;
  // Seqlock fast path: the newest tag comes from the published snapshot,
  // not the shard's table (identical answer -- the owner publishes on every
  // applied put and this handler runs on the owner shard).
  if (!read_newest(req.object, &resp.tag, nullptr)) resp.tag = Tag::initial();
  reply(from, resp);
}

bool RegisterServer::apply_put(uint32_t object, const Tag& tag, Bytes value) {
  Shard& shard = shard_for(object);
  const auto res = shard.store.apply(object, tag, value);
  if (res.bytes_delta >= 0) {
    stored_bytes_.fetch_add(static_cast<size_t>(res.bytes_delta),
                            std::memory_order_relaxed);
  } else {
    stored_bytes_.fetch_sub(static_cast<size_t>(-res.bytes_delta),
                            std::memory_order_relaxed);
  }
  if (!res.added) return false;
  puts_applied_.fetch_add(1, std::memory_order_relaxed);

  // Publish the (possibly unchanged, if an old tag was back-filled) newest
  // pair; tags only grow, so snapshot versions are tag-monotonic. Inside a
  // batch the publish is deferred to the flush -- one publish per object
  // per batch.
  if (shard.in_batch) {
    shard.pending_dirty.push_back(object);
  } else {
    shard.store.publish(*res.rec);
  }

  // Wake any readers whose two-round get-data asked for this tag. The value
  // comes from the put itself, not a store lookup: GC may already have
  // dropped the entry (tiny max_history), but the (tag, value) pair we were
  // asked to witness is right here.
  if (auto* waiters = shard.deferred.find({object, tag})) {
    RegisterMessage resp;
    resp.type = MsgType::kDataAtResp;
    resp.object = object;
    resp.tag = tag;
    resp.value = std::move(value);
    for (const auto& [reader, op_id] : *waiters) {
      resp.op_id = op_id;
      // Unindex the satisfied waiter (its other deferred keys, if any, stay).
      if (auto* rev = shard.deferred_by_op.find({reader, op_id})) {
        std::erase(*rev, std::make_pair(object, tag));
        if (rev->empty()) shard.deferred_by_op.erase({reader, op_id});
      }
      if (shard.in_batch) {
        shard.pending_out.emplace_back(reader, resp);
      } else {
        reply(reader, resp);
      }
    }
    shard.deferred.erase({object, tag});
  }
  return true;
}

void RegisterServer::handle_put_data(const ProcessId& from, RegisterMessage req) {
  Shard& shard = shard_for(req.object);
  apply_put(req.object, req.tag, std::move(req.value));
  // Fig. 3: the ACK is sent regardless of whether the entry was new.
  RegisterMessage ack;
  ack.type = MsgType::kAck;
  ack.op_id = req.op_id;
  ack.object = req.object;
  ack.tag = req.tag;
  if (shard.in_batch) {
    // Held until the batch's publishes land (ack => stored visibly).
    shard.pending_out.emplace_back(from, std::move(ack));
  } else {
    reply(from, ack);
  }
}

void RegisterServer::handle_query_data(const ProcessId& from,
                                       const RegisterMessage& req) {
  RegisterMessage resp;
  resp.type = MsgType::kDataResp;
  resp.op_id = req.op_id;
  resp.object = req.object;
  if (!read_newest(req.object, &resp.tag, &resp.value)) {
    resp.tag = Tag::initial();
    resp.value = initial_;
  }
  reply(from, resp);
}

void RegisterServer::handle_query_history(const ProcessId& from,
                                          const RegisterMessage& req) {
  RegisterMessage resp;
  resp.type = MsgType::kHistoryResp;
  resp.op_id = req.op_id;
  resp.object = req.object;
  if (const auto* rec = shard_for(req.object).store.find(req.object)) {
    // Borrowed views straight into the log/slab: this handler runs on the
    // owner shard and encode() happens before we return, so nothing can
    // mutate the entries underneath the views.
    resp.history_views.reserve(rec->log.size());
    for (const LogEntry& e : rec->log) {
      resp.history_views.emplace_back(e.tag, e.val.view());
    }
  } else {
    resp.history_views.emplace_back(Tag::initial(), BytesView(initial_));
  }
  reply(from, resp);
}

void RegisterServer::handle_query_tag_history(const ProcessId& from,
                                              const RegisterMessage& req) {
  RegisterMessage resp;
  resp.type = MsgType::kTagHistoryResp;
  resp.op_id = req.op_id;
  resp.object = req.object;
  if (const auto* rec = shard_for(req.object).store.find(req.object)) {
    resp.tags.reserve(rec->log.size());
    for (const LogEntry& e : rec->log) resp.tags.push_back(e.tag);
  } else {
    resp.tags.push_back(Tag::initial());
  }
  reply(from, resp);
}

void RegisterServer::handle_query_data_at(const ProcessId& from,
                                          const RegisterMessage& req) {
  const auto* rec = shard_for(req.object).store.find(req.object);
  BytesView value;
  bool found = false;
  if (rec != nullptr) {
    if (const LogEntry* e = rec->log.find(req.tag)) {
      value = e->val.view();
      found = true;
    }
  } else if (req.tag == Tag::initial()) {
    value = BytesView(initial_);  // unknown object reads as its lazy init
    found = true;
  }
  if (found) {
    RegisterMessage resp;
    resp.type = MsgType::kDataAtResp;
    resp.op_id = req.op_id;
    resp.object = req.object;
    resp.tag = req.tag;
    resp.value.assign(value.begin(), value.end());
    reply(from, resp);
    return;
  }
  // Not known yet: tell the reader so, and defer a real answer until the
  // corresponding PUT-DATA reaches us (channels are reliable, so unless the
  // writer crashed mid-multicast it eventually will; see the liveness
  // discussion in two_round_reader.h). PUT-DATA for this object routes to
  // this shard, so the wake-up in apply_put finds the waiter locally.
  Shard& shard = shard_for(req.object);
  shard.deferred[{req.object, req.tag}].emplace_back(from, req.op_id);
  shard.deferred_by_op[{from, req.op_id}].emplace_back(req.object, req.tag);
  RegisterMessage resp;
  resp.type = MsgType::kDataAtMissing;
  resp.op_id = req.op_id;
  resp.object = req.object;
  resp.tag = req.tag;
  reply(from, resp);
}

void RegisterServer::handle_query_data_batch(const ProcessId& from,
                                             const RegisterMessage& req) {
  // Cap the batch: an oversized request must not balloon server state with
  // lazily created stores (the model's clients are crash-only, but defense
  // in depth costs nothing).
  constexpr size_t kMaxBatch = 4096;
  const size_t count = std::min(req.objects.size(), kMaxBatch);

  // Batch-scoped read memo: when the mailbox batch carries several of these
  // requests (fan-in from many readers), each distinct object costs one
  // seqlock read for the whole batch. Only used inside a batch bracket --
  // the memo is cleared at on_batch_end, bounding staleness to the batch.
  Shard& home = shard_for(req.object);
  const bool memo = home.in_batch;

  RegisterMessage resp;
  resp.type = MsgType::kDataBatchResp;
  resp.op_id = req.op_id;
  resp.objects.assign(req.objects.begin(),
                      req.objects.begin() + static_cast<long>(count));
  resp.history.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // The request's objects may be owned by other shards; the seqlock
    // snapshots are the one structure safe to read across shard threads.
    if (memo) {
      if (const TaggedValue* hit = home.batch_read_cache.find(req.objects[i])) {
        resp.history.push_back(*hit);
        continue;
      }
    }
    TaggedValue tv;
    if (!read_newest(req.objects[i], &tv.tag, &tv.value)) {
      tv = TaggedValue{Tag::initial(), initial_};
    }
    if (memo) home.batch_read_cache.try_emplace(req.objects[i], tv);
    resp.history.push_back(std::move(tv));
  }
  reply(from, resp);
}

void RegisterServer::handle_read_done(const ProcessId& from,
                                      const RegisterMessage& req) {
  // Exact-match on the op id: ids are namespaced per (client, object,
  // protocol) and therefore NOT monotone across a client's concurrent
  // operations -- a range erase (op_id <= done id) would cancel deferred
  // replies belonging to that client's still-running reads in other
  // namespaces. The reverse index pinpoints this op's deferred keys, so
  // the cancel never touches other readers' waiters. READ-DONE carries the
  // op's object id, so it routes to the shard holding those waiters.
  Shard& shard = shard_for(req.object);
  auto* keys = shard.deferred_by_op.find({from, req.op_id});
  if (keys == nullptr) return;
  for (const auto& key : *keys) {
    auto* waiters = shard.deferred.find(key);
    if (waiters == nullptr) continue;
    std::erase_if(*waiters, [&](const auto& w) {
      return w.first == from && w.second == req.op_id;
    });
    if (waiters->empty()) shard.deferred.erase(key);
  }
  shard.deferred_by_op.erase({from, req.op_id});
}

}  // namespace bftreg::registers
