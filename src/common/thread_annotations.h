// Clang thread-safety analysis macros.
//
// These expand to Clang's capability attributes when the compiler supports
// them (clang with -Wthread-safety) and to nothing elsewhere (gcc), so the
// same headers compile everywhere while clang statically proves that every
// access to a GUARDED_BY member happens with its mutex held. The names and
// semantics follow the LLVM/abseil convention:
//
//   CAPABILITY("mutex")   -- a type that is a lockable capability
//   SCOPED_CAPABILITY     -- an RAII type that acquires/releases on scope
//   GUARDED_BY(mu)        -- field may only be touched while `mu` is held
//   PT_GUARDED_BY(mu)     -- pointee (not the pointer) is protected by `mu`
//   REQUIRES(mu)          -- function must be called with `mu` held
//   ACQUIRE(mu)/RELEASE(mu) -- function acquires / releases `mu`
//   TRY_ACQUIRE(ok, mu)   -- conditional acquire, returns `ok` on success
//   EXCLUDES(mu)          -- function must NOT be called with `mu` held
//   ASSERT_CAPABILITY(mu) -- runtime assertion that `mu` is held
//   RETURN_CAPABILITY(mu) -- function returns a reference to `mu`
//   NO_THREAD_SAFETY_ANALYSIS -- opt a function out of the analysis
//
// See docs/ANALYSIS.md for how these are checked in CI and what they
// guarantee (and do not guarantee) about the runtime transports.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define BFTREG_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef BFTREG_THREAD_ANNOTATION
#define BFTREG_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define CAPABILITY(x) BFTREG_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY BFTREG_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) BFTREG_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) BFTREG_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) BFTREG_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) BFTREG_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) BFTREG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  BFTREG_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) BFTREG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  BFTREG_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) BFTREG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  BFTREG_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) BFTREG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) BFTREG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) BFTREG_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) BFTREG_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS BFTREG_THREAD_ANNOTATION(no_thread_safety_analysis)
