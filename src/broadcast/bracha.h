// Bracha asynchronous reliable broadcast [2] (Inf. Comput. 1987).
//
// The primitive the paper deliberately does *without*: it provides the
// eventual all-or-none property (if any honest process delivers m, every
// honest process eventually delivers m) at the price of two extra message
// exchanges -- the "1.5 rounds" of Section I-B -- and n >= 3f+1 processes.
//
// This implementation is embeddable: a host process (here, the baseline
// RB register server) owns a BrachaPeer, feeds it incoming ECHO/READY
// frames, and gets a deliver callback. Instances are keyed by the digest of
// the broadcast blob, so concurrent broadcasts from different origins
// proceed independently.
//
// Standard thresholds for n >= 3f+1:
//   send ECHO  on first SEND (or on enough ECHOs/READYs, implied below)
//   send READY on ceil((n+f+1)/2) ECHOs, or on f+1 READYs (amplification)
//   deliver    on 2f+1 READYs
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace bftreg::broadcast {

/// Per-instance round-trip statistics, used by bench_rb_cost (E7).
struct BrachaStats {
  uint64_t echoes_sent{0};
  uint64_t readies_sent{0};
  uint64_t delivered{0};
};

class BrachaPeer {
 public:
  /// `send(to, frame)` must transmit `frame` to peer `to`; `deliver(blob)`
  /// fires exactly once per delivered blob.
  BrachaPeer(ProcessId self, std::vector<ProcessId> peers, size_t f,
             std::function<void(const ProcessId&, Bytes)> send,
             std::function<void(Bytes)> deliver);

  /// Origin-side API: reliably broadcast `blob` to all peers (including
  /// ourselves, handled locally).
  void broadcast(const Bytes& blob);

  /// Host feeds every incoming frame here. Returns false if the payload is
  /// not a well-formed Bracha frame (the host may then try other parsers).
  bool on_frame(const ProcessId& from, BytesView frame);

  /// Injects an externally received SEND step: used when the "origin" is a
  /// client whose PUT-DATA plays the role of the SEND message.
  void on_external_send(const Bytes& blob);

  const BrachaStats& stats() const { return stats_; }

  // Frame layout (exposed for tests): [kMagic][phase][blob...]
  static constexpr uint8_t kMagic = 0xB7;
  enum class Phase : uint8_t { kSend = 1, kEcho = 2, kReady = 3 };

  static Bytes make_frame(Phase phase, const Bytes& blob);

 private:
  struct Instance {
    Bytes blob;
    std::set<ProcessId> echoes;
    std::set<ProcessId> readies;
    bool echoed{false};
    bool readied{false};
    bool delivered{false};
  };

  size_t echo_threshold() const { return (peers_.size() + f_ + 2) / 2; }
  size_t ready_amplify_threshold() const { return f_ + 1; }
  size_t deliver_threshold() const { return 2 * f_ + 1; }

  void maybe_progress(uint64_t digest, Instance& inst);
  void send_phase_to_all(Phase phase, const Bytes& blob);
  Instance& instance_for(const Bytes& blob);

  const ProcessId self_;
  const std::vector<ProcessId> peers_;
  const size_t f_;
  std::function<void(const ProcessId&, Bytes)> send_;
  std::function<void(Bytes)> deliver_;
  std::unordered_map<uint64_t, Instance> instances_;
  BrachaStats stats_;
};

}  // namespace bftreg::broadcast
