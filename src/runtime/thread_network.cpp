#include "runtime/thread_network.h"

#include <cassert>
#include <future>

#include "common/log.h"

namespace bftreg::runtime {

ThreadNetwork::ThreadNetwork(RuntimeConfig config)
    : auth_(crypto::KeyRegistry(config.master_secret)),
      delay_(std::move(config.delay)),
      rng_(config.seed),
      epoch_(std::chrono::steady_clock::now()) {}

ThreadNetwork::~ThreadNetwork() { stop(); }

void ThreadNetwork::add_process(const ProcessId& pid, net::IProcess* process) {
  assert(!running_.load());
  auto box = std::make_unique<Mailbox>();
  box->process = process;
  boxes_[pid] = std::move(box);
}

void ThreadNetwork::start() {
  assert(!running_.load());
  running_.store(true);
  sched_thread_ = std::thread([this] { scheduler_loop(); });
  for (auto& [pid, box] : boxes_) {
    Mailbox* b = box.get();
    b->thread = std::thread([this, b] { mailbox_loop(b); });
    enqueue(b, [b] { b->process->on_start(); });
  }
}

bool ThreadNetwork::on_internal_thread() const {
  const auto self = std::this_thread::get_id();
  if (sched_thread_.joinable() && self == sched_thread_.get_id()) return true;
  for (const auto& [pid, box] : boxes_) {
    if (box->thread.joinable() && self == box->thread.get_id()) return true;
  }
  return false;
}

void ThreadNetwork::stop() {
  if (!running_.exchange(false)) return;
  // Joining our own mailbox/scheduler thread would deadlock; stop() is an
  // external-thread API (see header contract).
  assert(!on_internal_thread() && "stop() called from a network-owned thread");
  {
    MutexLock lock(sched_mu_);
    sched_cv_.notify_all();
  }
  if (sched_thread_.joinable()) sched_thread_.join();
  for (auto& [pid, box] : boxes_) {
    {
      MutexLock lock(box->mu);
      box->cv.notify_all();
    }
    if (box->thread.joinable()) box->thread.join();
  }
}

void ThreadNetwork::mark_crashed(const ProcessId& pid) {
  if (Mailbox* box = find(pid)) box->crashed.store(true);
}

TimeNs ThreadNetwork::now() const {
  return static_cast<TimeNs>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now() - epoch_)
                                 .count());
}

ThreadNetwork::Mailbox* ThreadNetwork::find(const ProcessId& pid) {
  auto it = boxes_.find(pid);
  return it == boxes_.end() ? nullptr : it->second.get();
}

void ThreadNetwork::enqueue(Mailbox* box, std::function<void()> fn) {
  MutexLock lock(box->mu);
  const bool was_idle = box->items.empty();
  box->items.push_back(std::move(fn));
  // Only an empty->non-empty transition can find the mailbox thread asleep;
  // otherwise it is mid-batch and re-checks the queue before waiting.
  if (was_idle) box->cv.notify_one();
}

void ThreadNetwork::mailbox_loop(Mailbox* box) {
  // Swap the whole queue out per wakeup instead of popping one item per
  // lock round trip: under load this takes the mutex once per burst, not
  // once per message. The per-item crashed check is preserved -- a crash
  // takes effect mid-batch, exactly as it did item-by-item.
  std::deque<std::function<void()>> work;
  for (;;) {
    work.clear();
    {
      MutexLock lock(box->mu);
      while (box->items.empty() && running_.load()) box->cv.wait(lock);
      if (box->items.empty()) return;  // stopped and drained
      work.swap(box->items);
    }
    for (auto& fn : work) {
      if (!box->crashed.load()) fn();
    }
  }
}

void ThreadNetwork::send_payload(const ProcessId& from, const ProcessId& to,
                                 Payload payload) {
  if (Mailbox* src = find(from); src != nullptr && src->crashed.load()) return;
  net::Envelope env;
  env.from = from;
  env.to = to;
  env.seq = next_seq_.fetch_add(1);
  env.sent_at = now();
  env.mac = auth_.seal(from, to, payload);
  env.payload = std::move(payload);
  metrics_.on_send(env.payload.size());

  TimeNs d = 0;
  if (delay_) {
    MutexLock lock(rng_mu_);
    d = delay_->delay(env, rng_);
  }
  if (d == 0) {
    route(std::move(env));
    return;
  }
  MutexLock lock(sched_mu_);
  sched_queue_.push(Timed{now() + d, env.seq, std::move(env), ProcessId{}, nullptr});
  sched_cv_.notify_one();
}

void ThreadNetwork::route(net::Envelope env) {
  Mailbox* box = find(env.to);
  if (box == nullptr || box->crashed.load()) return;
  if (!auth_.verify(env.from, env.to, env.payload, env.mac)) {
    metrics_.on_auth_failure();
    return;
  }
  metrics_.on_deliver();
  net::IProcess* proc = box->process;
  enqueue(box, [proc, e = std::move(env)] { proc->on_message(e); });
}

void ThreadNetwork::scheduler_loop() {
  MutexLock lock(sched_mu_);
  for (;;) {
    if (!running_.load()) {
      // Shutting down: anything not yet due is dropped -- pending
      // post_after timers may be arbitrarily far in the future and must
      // not stall stop(), which joins this thread.
      while (!sched_queue_.empty() && sched_queue_.top().due <= now()) {
        Timed item = std::move(const_cast<Timed&>(sched_queue_.top()));
        sched_queue_.pop();
        lock.unlock();
        if (item.fn) {
          post(item.pid, std::move(item.fn));
        } else {
          route(std::move(item.env));
        }
        lock.lock();
      }
      return;
    }
    if (sched_queue_.empty()) {
      sched_cv_.wait(lock);
      continue;
    }
    const TimeNs due = sched_queue_.top().due;
    const TimeNs t = now();
    if (t < due) {
      sched_cv_.wait_for(lock, std::chrono::nanoseconds(due - t));
      continue;
    }
    Timed item = std::move(const_cast<Timed&>(sched_queue_.top()));
    sched_queue_.pop();
    lock.unlock();
    if (item.fn) {
      post(item.pid, std::move(item.fn));
    } else {
      route(std::move(item.env));
    }
    lock.lock();
  }
}

void ThreadNetwork::post(const ProcessId& pid, std::function<void()> fn) {
  if (Mailbox* box = find(pid)) enqueue(box, std::move(fn));
}

void ThreadNetwork::post_after(const ProcessId& pid, TimeNs delta,
                               std::function<void()> fn) {
  if (delta == 0) {
    post(pid, std::move(fn));
    return;
  }
  MutexLock lock(sched_mu_);
  sched_queue_.push(
      Timed{now() + delta, next_seq_.fetch_add(1), net::Envelope{}, pid, std::move(fn)});
  sched_cv_.notify_one();
}

void BlockingInvoker::run(
    const ProcessId& pid,
    const std::function<void(std::function<void()> done)>& start_fn) {
  auto promise = std::make_shared<std::promise<void>>();
  std::future<void> fut = promise->get_future();
  net_.post(pid, [start_fn, promise] {
    start_fn([promise] { promise->set_value(); });
  });
  fut.wait();
}

}  // namespace bftreg::runtime
