// tcp_cluster: the BSR register over REAL TCP sockets.
//
// Every server and client binds its own loopback TCP port; frames travel
// through the kernel with length prefixes and SipHash MACs. The protocol
// objects are byte-for-byte the ones the deterministic simulator verifies
// -- the transport is the only thing that changed, which is the repo's
// central design claim (DESIGN.md §6.1). Pointing the address book at
// other hosts would distribute the emulation for real.
//
// The client side is the high-level RegisterClient: one process issues
// writes and reads (sequentially via the blocking wrapper, then pipelined
// to show the multiplexer amortizing kernel round-trips).
//
//   ./build/examples/tcp_cluster
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "registers/registers.h"
#include "socknet/tcp_network.h"

using namespace bftreg;

int main() {
  socknet::TcpNetwork net(socknet::TcpConfig{});

  auto built = registers::SystemConfig::builder().n(5).f(1).build_for_bsr();
  if (!built) {
    std::fprintf(stderr, "config: %s\n", built.error().detail.c_str());
    return 2;
  }
  const registers::SystemConfig cfg = built.value();

  std::vector<std::unique_ptr<registers::RegisterServer>> servers;
  for (uint32_t i = 0; i < cfg.n; ++i) {
    servers.push_back(std::make_unique<registers::RegisterServer>(
        ProcessId::server(i), cfg, &net, Bytes{}));
    net.add_process(ProcessId::server(i), servers.back().get());
  }
  registers::RegisterClient client(ProcessId::writer(0), cfg, &net);
  net.add_process(client.id(), &client);
  net.start();

  registers::BlockingRegisterClient kv(client);

  std::printf("BSR over TCP loopback (n=%zu, f=%zu)\n", cfg.n, cfg.f);
  for (uint32_t i = 0; i < cfg.n; ++i) {
    std::printf("  server:%u listening on 127.0.0.1:%u\n", i,
                net.port_of(ProcessId::server(i)));
  }
  std::printf("\n");

  const std::string hello = "over-the-wire";
  kv.write(0, Bytes(hello.begin(), hello.end()));
  const auto first = kv.read(0);
  std::printf("write(\"over-the-wire\"), read() -> \"%s\"\n\n",
              std::string(first.value.begin(), first.value.end()).c_str());

  Samples reads, writes;
  for (int i = 0; i < 200; ++i) {
    const std::string v = "v" + std::to_string(i);
    auto t0 = std::chrono::steady_clock::now();
    kv.write(0, Bytes(v.begin(), v.end()));
    writes.add(std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - t0)
                   .count());
    t0 = std::chrono::steady_clock::now();
    (void)kv.read(0);
    reads.add(std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
  }
  std::printf("200 write+read pairs over kernel sockets:\n");
  std::printf("  read : median %.0f us, p99 %.0f us   (one-shot: 1 RTT)\n",
              reads.median(), reads.p99());
  std::printf("  write: median %.0f us, p99 %.0f us   (two rounds: 2 RTT)\n",
              writes.median(), writes.p99());

  // Pipelined: issue 64 reads at once from the same client; the mux keeps
  // all of them in flight so total wall-clock is ~1 RTT, not 64.
  std::promise<void> drained;
  std::atomic<int> remaining{64};
  const auto burst0 = std::chrono::steady_clock::now();
  net.post(client.id(), [&] {
    for (int i = 0; i < 64; ++i) {
      client.read(0, [&](const registers::ReadResult&) {
        if (remaining.fetch_sub(1) == 1) drained.set_value();
      });
    }
  });
  drained.get_future().wait();
  const double burst_us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - burst0)
                              .count();
  std::printf("  64 pipelined reads: %.0f us total (%.1f us/op amortized)\n",
              burst_us, burst_us / 64);

  const auto m = net.metrics().snapshot();
  std::printf("  %llu messages, %llu bytes on the wire, %llu auth failures\n",
              static_cast<unsigned long long>(m.messages_sent),
              static_cast<unsigned long long>(m.bytes_sent),
              static_cast<unsigned long long>(m.auth_failures));

  net.stop();
  return 0;
}
