// Unit tests for the safety/regularity checkers over hand-built histories,
// plus churn executions (crash/rejoin schedules on a live cluster) judged
// by the same checkers.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "adversary/churn.h"
#include "checker/consistency.h"
#include "checker/execution.h"
#include "harness/scenarios.h"
#include "harness/sim_cluster.h"

namespace bftreg::checker {
namespace {

const Bytes kV0{};  // empty initial value
const Bytes kA{'a'};
const Bytes kB{'b'};
const Bytes kC{'c'};

Tag tag(uint64_t n, uint32_t w = 0) { return Tag{n, ProcessId::writer(w)}; }

struct HistoryBuilder {
  ExecutionRecorder rec;

  /// Complete write over [t1, t2].
  void write(TimeNs t1, TimeNs t2, Bytes v, Tag t, uint32_t client = 0) {
    const uint64_t id = rec.begin_write(ProcessId::writer(client), t1, std::move(v));
    rec.complete_write(id, t2, t);
  }
  /// Crashed (incomplete) write invoked at t1.
  void crashed_write(TimeNs t1, Bytes v, uint32_t client = 0) {
    rec.begin_write(ProcessId::writer(client), t1, std::move(v));
  }
  void read(TimeNs t1, TimeNs t2, Bytes v, Tag t, uint32_t client = 0) {
    const uint64_t id = rec.begin_read(ProcessId::reader(client), t1);
    rec.complete_read(id, t2, std::move(v), t);
  }
};

CheckOptions opts(bool strict = false) {
  CheckOptions o;
  o.initial_value = kV0;
  o.strict_validity = strict;
  return o;
}

TEST(SafetyCheckerTest, EmptyExecutionIsSafe) {
  EXPECT_TRUE(check_safety({}, opts()).ok);
}

TEST(SafetyCheckerTest, ReadAfterWriteReturningThatWriteIsSafe) {
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.read(20, 30, kA, tag(1));
  EXPECT_TRUE(check_safety(h.rec.ops(), opts()).ok);
}

TEST(SafetyCheckerTest, ReadReturningStaleValueIsUnsafe) {
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.write(20, 30, kB, tag(2));
  h.read(40, 50, kA, tag(1));  // a completed write (B) falls between A and r
  const auto res = check_safety(h.rec.ops(), opts());
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.violation.find("safety"), std::string::npos);
}

TEST(SafetyCheckerTest, InitialValueLegalOnlyBeforeAnyCompleteWrite) {
  HistoryBuilder h1;
  h1.read(0, 5, kV0, Tag::initial());
  EXPECT_TRUE(check_safety(h1.rec.ops(), opts()).ok);

  HistoryBuilder h2;
  h2.write(0, 10, kA, tag(1));
  h2.read(20, 30, kV0, Tag::initial());
  EXPECT_FALSE(check_safety(h2.rec.ops(), opts()).ok);
}

TEST(SafetyCheckerTest, ConcurrentReadMayReturnAnything) {
  HistoryBuilder h;
  h.write(0, 100, kA, tag(1));
  h.read(50, 60, kC, tag(9));  // concurrent with the write; clause (ii)
  EXPECT_TRUE(check_safety(h.rec.ops(), opts()).ok);
}

TEST(SafetyCheckerTest, StrictValidityRejectsFabricatedValues) {
  HistoryBuilder h;
  h.write(0, 100, kA, tag(1));
  h.read(50, 60, kC, tag(9));  // kC was never written
  EXPECT_FALSE(check_safety(h.rec.ops(), opts(true)).ok);
}

TEST(SafetyCheckerTest, StrictValidityAcceptsConcurrentWrittenValue) {
  HistoryBuilder h;
  h.write(0, 100, kA, tag(1));
  h.read(50, 60, kA, tag(1));
  EXPECT_TRUE(check_safety(h.rec.ops(), opts(true)).ok);
}

TEST(SafetyCheckerTest, CrashedWriteValueIsLegalForLaterRead) {
  // w(A) crashes; read may return A (Lemma 3 allows any write that began
  // before the read, and an incomplete write cannot be superseded).
  HistoryBuilder h;
  h.crashed_write(0, kA);
  h.read(100, 110, kA, tag(1));
  EXPECT_TRUE(check_safety(h.rec.ops(), opts()).ok);
}

TEST(SafetyCheckerTest, CrashedWriteDoesNotMakeV0Illegal) {
  HistoryBuilder h;
  h.crashed_write(0, kA);
  h.read(100, 110, kV0, Tag::initial());
  EXPECT_TRUE(check_safety(h.rec.ops(), opts()).ok);
}

TEST(SafetyCheckerTest, ValueFromFutureWriteIsUnsafe) {
  HistoryBuilder h;
  h.read(0, 10, kA, tag(1));       // returns A before A was ever written
  h.write(20, 30, kA, tag(1));
  EXPECT_FALSE(check_safety(h.rec.ops(), opts()).ok);
}

TEST(SafetyCheckerTest, TwoSequentialWritesReadNewestIsSafe) {
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.write(20, 30, kB, tag(2));
  h.read(40, 50, kB, tag(2));
  EXPECT_TRUE(check_safety(h.rec.ops(), opts()).ok);
}

TEST(SafetyCheckerTest, OverlappingWritesEitherValueLegalAfterBothComplete) {
  // Two concurrent writes; a later read may return either (neither falls
  // completely between the other and the read).
  HistoryBuilder h;
  h.write(0, 100, kA, tag(1, 0));
  h.write(50, 150, kB, tag(1, 1));
  h.read(200, 210, kA, tag(1, 0));
  EXPECT_TRUE(check_safety(h.rec.ops(), opts()).ok);
  HistoryBuilder h2;
  h2.write(0, 100, kA, tag(1, 0));
  h2.write(50, 150, kB, tag(1, 1));
  h2.read(200, 210, kB, tag(1, 1));
  EXPECT_TRUE(check_safety(h2.rec.ops(), opts()).ok);
}

// ------------------------------------------------------------- regularity

TEST(RegularityCheckerTest, Theorem3ScenarioIsUnsafeForRegularity) {
  // The paper's counterexample: w1(v1) completes; w2..w5 start but do not
  // complete; the read (concurrent with w2..w5) returns v0. Safe by clause
  // (ii), but NOT regular.
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1, 0));          // w1 completes
  h.crashed_write(20, kB, 1);             // in-progress writes
  h.crashed_write(20, kC, 2);
  h.read(30, 40, kV0, Tag::initial());    // returns v0

  EXPECT_TRUE(check_safety(h.rec.ops(), opts()).ok);
  const auto res = check_regularity(h.rec.ops(), opts());
  EXPECT_FALSE(res.ok);
}

TEST(RegularityCheckerTest, ConcurrentWriteValueIsRegular) {
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.write(20, 100, kB, tag(2));
  h.read(50, 60, kB, tag(2));  // concurrent write's value: fine
  EXPECT_TRUE(check_regularity(h.rec.ops(), opts()).ok);
}

TEST(RegularityCheckerTest, LastCompleteWriteIsRegular) {
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.write(20, 100, kB, tag(2));
  h.read(50, 60, kA, tag(1));  // last complete preceding write: fine
  EXPECT_TRUE(check_regularity(h.rec.ops(), opts()).ok);
}

TEST(RegularityCheckerTest, SkippingACompletedWriteIsIrregular) {
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.write(20, 30, kB, tag(2));   // complete before the read
  h.write(40, 200, kC, tag(3));  // concurrent with the read
  h.read(100, 110, kA, tag(1));  // skips completed B
  EXPECT_FALSE(check_regularity(h.rec.ops(), opts()).ok);
  EXPECT_TRUE(check_safety(h.rec.ops(), opts()).ok);  // but still safe (ii)
}

TEST(RegularityCheckerTest, NewOldInversionDetected) {
  // Each read is individually legal (B is concurrent with both reads; A is
  // the last complete write), but together they order B before A -- the
  // new/old inversion Definition 2 forbids.
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.write(20, 200, kB, tag(2));   // concurrent with both reads
  h.read(50, 60, kB, tag(2), 0);
  h.read(70, 80, kA, tag(1), 0);  // same reader goes backward
  const auto res = check_regularity(h.rec.ops(), opts());
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.violation.find("inversion"), std::string::npos);
}

TEST(RegularityCheckerTest, CrossReaderInversionIsAllowed) {
  // Different readers may disagree on concurrent writes: regular, not
  // atomic, semantics.
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.write(20, 200, kB, tag(2));   // concurrent with both reads
  h.read(50, 60, kB, tag(2), 0);  // reader 0 sees the new value
  h.read(70, 80, kA, tag(1), 1);  // reader 1 still sees the old one
  EXPECT_TRUE(check_regularity(h.rec.ops(), opts()).ok);
}

TEST(RegularityCheckerTest, ConcurrentReadsMayDisagree) {
  // Two reads concurrent with each other during a write may see different
  // states; that alone is not an inversion.
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.write(20, 200, kB, tag(2));
  h.read(50, 150, kB, tag(2), 0);
  h.read(60, 160, kA, tag(1), 1);
  EXPECT_TRUE(check_regularity(h.rec.ops(), opts()).ok);
}

TEST(RecorderTest, DumpContainsOps) {
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.read(20, 30, kA, tag(1));
  const std::string d = h.rec.dump();
  EXPECT_NE(d.find("W1"), std::string::npos);
  EXPECT_NE(d.find("R2"), std::string::npos);
}

TEST(RecorderTest, TimelineShowsBarsAndIncompleteMarkers) {
  HistoryBuilder h;
  h.write(0, 50, kA, tag(1));
  h.crashed_write(60, kB, 1);
  h.read(70, 100, kA, tag(1));
  const std::string t = h.rec.dump_timeline(32);
  EXPECT_NE(t.find("time axis: [0, 100]"), std::string::npos);
  EXPECT_NE(t.find("W1 writer:0"), std::string::npos);
  EXPECT_NE(t.find('#'), std::string::npos);
  EXPECT_NE(t.find('>'), std::string::npos);  // the crashed write
  EXPECT_NE(t.find("R3 reader:0"), std::string::npos);
}

TEST(RecorderTest, TimelineOfEmptyExecution) {
  ExecutionRecorder rec;
  EXPECT_EQ(rec.dump_timeline(), "(empty execution)\n");
}

TEST(RecorderTest, IncompleteOpsHaveOpenInterval) {
  ExecutionRecorder rec;
  rec.begin_write(ProcessId::writer(0), 5, kA);
  ASSERT_EQ(rec.ops().size(), 1u);
  EXPECT_FALSE(rec.ops()[0].completed);
  EXPECT_NE(rec.dump().find("inf"), std::string::npos);
}

// --------------------------------------------- churn under the checker
//
// The churn schedules (adversary/churn.h) crash and rejoin a server at the
// adversarial moments of the membership layer -- mid-write, mid-writeback,
// mid-round -- and the SAME Definitions 1/2 checkers that judge Byzantine
// executions judge these: recovery must not cost the register its
// consistency class.

/// Unique temp directory per test; removed recursively on destruction.
class TempWalDir {
 public:
  explicit TempWalDir(const std::string& stem) {
    path_ = (std::filesystem::temp_directory_path() /
             ("bftreg_" + stem + "_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter_++)))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempWalDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

harness::ClusterOptions churn_options(harness::Protocol protocol,
                                      const std::string& wal_dir,
                                      uint64_t seed) {
  harness::ClusterOptions o;
  o.protocol = protocol;
  o.config.n = 5;
  o.config.f = 1;
  o.seed = seed;
  o.wal_dir = wal_dir;
  return o;
}

TEST(ChurnCheckerTest, CrashDuringWriteStaysSafeAndRegular) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    TempWalDir wal("churn_write");  // fresh per run: no stale WAL replay
    harness::SimCluster cluster(
        churn_options(harness::Protocol::kBsr, wal.path(), seed));
    const auto out = harness::run_churn_schedule(
        cluster, adversary::crash_during_write_schedule(1));
    EXPECT_TRUE(out.recovered_serving);

    CheckOptions copts;
    copts.strict_validity = true;  // BSR's witness rule holds through churn
    EXPECT_TRUE(check_safety(cluster.recorder().ops(), copts).ok)
        << cluster.recorder().dump_timeline();
    EXPECT_TRUE(check_regularity(cluster.recorder().ops(), copts).ok)
        << cluster.recorder().dump_timeline();
  }
}

TEST(ChurnCheckerTest, CrashDuringReadWritebackStaysAtomic) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    TempWalDir wal("churn_wb");  // fresh per run: no stale WAL replay
    harness::SimCluster cluster(
        churn_options(harness::Protocol::kBsrWb, wal.path(), seed));
    const auto out = harness::run_churn_schedule(
        cluster, adversary::crash_during_read_writeback_schedule(1));
    EXPECT_TRUE(out.recovered_serving);

    CheckOptions copts;
    copts.strict_validity = true;
    // The write-back variant promises atomicity; losing and recovering the
    // write-back target mid-read must not break it.
    EXPECT_TRUE(check_atomicity(cluster.recorder().ops(), copts).ok)
        << cluster.recorder().dump_timeline();
  }
}

TEST(ChurnCheckerTest, RejoinMidRoundRefusesTrafficYetStaysRegular) {
  uint64_t total_refused = 0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    TempWalDir wal("churn_rejoin");  // fresh per run: no stale WAL replay
    harness::SimCluster cluster(
        churn_options(harness::Protocol::kBsr, wal.path(), seed));
    const auto out = harness::run_churn_schedule(
        cluster, adversary::rejoin_mid_round_schedule(1));
    EXPECT_TRUE(out.recovered_serving);
    total_refused += out.refused_during_catch_up;

    CheckOptions copts;
    copts.strict_validity = true;
    EXPECT_TRUE(check_safety(cluster.recorder().ops(), copts).ok)
        << cluster.recorder().dump_timeline();
    EXPECT_TRUE(check_regularity(cluster.recorder().ops(), copts).ok)
        << cluster.recorder().dump_timeline();
  }
  // The rejoin lands while a write round is in flight, so live traffic
  // reaches the server during catch-up -- and every such request must show
  // up as a refusal (dropped, never answered), not as a stale reply.
  EXPECT_GT(total_refused, 0u);
}

TEST(ChurnCheckerTest, EveryVictimPositionSurvivesCrashRejoin) {
  // The catch-up layer must not care WHICH server churns: the same
  // schedule across victim positions, judged by the plain safety checker
  // without strict validity.
  for (size_t victim = 1; victim < 4; ++victim) {
    SCOPED_TRACE("victim=" + std::to_string(victim));
    TempWalDir wal("churn_victims");  // fresh per run: no stale WAL replay
    harness::SimCluster cluster(
        churn_options(harness::Protocol::kBsr, wal.path(), 11 + victim));
    const auto out = harness::run_churn_schedule(
        cluster, adversary::crash_during_write_schedule(victim));
    EXPECT_TRUE(out.recovered_serving);
    EXPECT_TRUE(check_safety(cluster.recorder().ops(), CheckOptions{}).ok)
        << cluster.recorder().dump_timeline();
  }
}

}  // namespace
}  // namespace bftreg::checker
