// E4 -- storage and communication cost of coding vs replication (paper
// claims: Section I-C "the total storage cost across the n servers is n/k
// units", same for bandwidth).
//
// Expected shape: BCSR's measured storage and per-op bytes approach
// (n/k) x value_size while BSR's are n x value_size, with the per-element
// overhead (header + tags) fading as values grow.
#include "bench_util.h"
#include "codec/gf_region.h"

using namespace bftreg;
using namespace bftreg::bench;

namespace {

struct CostRow {
  size_t stored;
  uint64_t write_bytes;
  uint64_t read_bytes;
};

CostRow run_cost(harness::Protocol protocol, size_t n, size_t f,
                 size_t value_size) {
  auto options = make_options(protocol, n, f, 11, 500, 1500);
  options.config.store_policy = registers::StorePolicy::kMaxOnly;
  harness::SimCluster cluster(options);

  CostRow row{};
  constexpr size_t kOps = 4;
  for (size_t i = 0; i < kOps; ++i) {
    auto before = cluster.sim().metrics().snapshot();
    cluster.write(0, workload::make_value(3, i, value_size));
    cluster.sim().run_until_idle();
    auto after = cluster.sim().metrics().snapshot();
    row.write_bytes += (after.bytes_sent - before.bytes_sent) / kOps;

    before = after;
    cluster.read(0);
    cluster.sim().run_until_idle();
    after = cluster.sim().metrics().snapshot();
    row.read_bytes += (after.bytes_sent - before.bytes_sent) / kOps;
  }
  // kMaxOnly still accretes monotonically increasing tags; normalize to
  // per-version storage by dividing across the written versions.
  row.stored = cluster.total_stored_bytes() / kOps;
  return row;
}

}  // namespace

int main() {
  std::printf("E4: storage & communication cost, replication vs MDS coding\n");
  std::printf("f = 1; BSR n = 5; BCSR n = 11 => k = n-5f = 6, n/k = 1.83\n");
  // The cost ratios are kernel-independent, but wall-clock is not; record
  // which gf_region kernel encoded the BCSR elements for reproducibility.
  std::printf("codec kernel: %s\n\n",
              codec::gf::kernel_name(codec::gf::active_kernel()));

  TextTable table({"value size", "protocol", "stored/version", "norm (x value)",
                   "write bytes", "read bytes", "theory"});
  for (const size_t size : {size_t{1} << 10, size_t{16} << 10, size_t{256} << 10,
                            size_t{1} << 20}) {
    const auto bsr = run_cost(harness::Protocol::kBsr, 5, 1, size);
    const auto bcsr = run_cost(harness::Protocol::kBcsr, 11, 1, size);
    const double v = static_cast<double>(size);
    table.add_row({std::to_string(size >> 10) + " KiB", "BSR n=5",
                   std::to_string(bsr.stored),
                   TextTable::fmt(static_cast<double>(bsr.stored) / v, 2),
                   std::to_string(bsr.write_bytes), std::to_string(bsr.read_bytes),
                   "n = 5.00"});
    table.add_row({std::to_string(size >> 10) + " KiB", "BCSR n=11 k=6",
                   std::to_string(bcsr.stored),
                   TextTable::fmt(static_cast<double>(bcsr.stored) / v, 2),
                   std::to_string(bcsr.write_bytes), std::to_string(bcsr.read_bytes),
                   "n/k = 1.83"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape check: BSR stores/ships ~n copies of the value; BCSR converges\n"
      "to the paper's n/k units as values grow (header overhead amortizes).\n"
      "Coding buys this with 6 extra servers -- and Theorem 6 shows those\n"
      "servers are necessary for one-shot coded reads.\n");
  return 0;
}
