#include "registers/bsr_reader.h"

#include <cassert>

namespace bftreg::registers {

BsrReader::BsrReader(ProcessId self, SystemConfig config,
                     net::Transport* transport, uint32_t object)
    : self_(self),
      config_(std::move(config)),
      transport_(transport),
      object_(object),
      responded_(config_.quorum()) {
  local_ = TaggedValue{Tag::initial(), config_.initial_value};
}

void BsrReader::start_read(Callback callback) {
  assert(!reading_ && "at most one operation per client");
  reading_ = true;
  callback_ = std::move(callback);
  invoked_at_ = transport_->now();
  ++op_id_;
  responded_.reset();
  responses_.clear();

  RegisterMessage query;
  query.type = MsgType::kQueryData;
  query.op_id = op_id_;
  query.object = object_;
  const Bytes payload = query.encode();
  for (uint32_t i = 0; i < config_.n; ++i) {
    transport_->send(self_, ProcessId::server(i), payload);
  }
}

void BsrReader::on_message(const net::Envelope& env) {
  if (!reading_ || !env.from.is_server()) return;
  auto msg = RegisterMessage::parse(env.payload);
  if (!msg || msg->type != MsgType::kDataResp || msg->op_id != op_id_ ||
      msg->object != object_) {
    return;
  }
  if (!responded_.add(env.from)) return;
  responses_.emplace(env.from, TaggedValue{msg->tag, std::move(msg->value)});
  if (responded_.reached()) finish();
}

void BsrReader::finish() {
  // P <- pairs with at least f+1 witnesses (Fig. 2 line 5).
  std::map<TaggedValue, size_t> witnesses;
  for (const auto& [server, pair] : responses_) ++witnesses[pair];

  const TaggedValue* best = nullptr;
  for (const auto& [pair, count] : witnesses) {
    if (count >= config_.witness_threshold()) {
      // std::map iterates in ascending order, so the last qualifying pair
      // is the highest (Fig. 2 line 6).
      best = &pair;
    }
  }

  bool fresh = false;
  if (best != nullptr && best->tag > local_.tag) {  // Fig. 2 line 7
    local_ = *best;
    fresh = true;
  }

  reading_ = false;
  ReadResult result;
  result.value = local_.value;
  result.tag = local_.tag;
  result.fresh = fresh;
  result.invoked_at = invoked_at_;
  result.completed_at = transport_->now();
  result.rounds = 1;
  Callback cb = std::move(callback_);
  callback_ = nullptr;
  if (cb) cb(result);
}

}  // namespace bftreg::registers
