// Batched multi-object reads (library extension).
//
// A single one-shot round fetches the newest pair of MANY shared variables
// at once -- the multi-get pattern every key-value store serves. Each
// object gets the full Fig. 2 treatment independently: per-object witness
// counting with the f+1 threshold, per-object monotone local state. The
// batch costs one round and one request/response message per server no
// matter how many objects it names, so a b-object batch saves a factor of
// b in messages over b separate BSR reads (and keeps the paper's safety
// guarantee per object, since the witness argument of Lemma 1/Lemma 5 is
// object-wise).
//
// Low-level single-operation client; protocol logic in BatchReadOp
// (protocol_ops.h), multiplexed flavor in RegisterClient (client.h).
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "net/transport.h"
#include "registers/config.h"
#include "registers/op_mux.h"
#include "registers/protocol_ops.h"
#include "registers/results.h"

namespace bftreg::registers {

class BatchReader final : public net::IProcess {
 public:
  using Callback = std::function<void(const BatchReadResult&)>;

  BatchReader(ProcessId self, SystemConfig config, net::Transport* transport);

  /// Begins a batched read of `objects` (deduplicated server-side state is
  /// per object; duplicates in the list are allowed and answered twice).
  void start_read(std::vector<uint32_t> objects, Callback callback);

  void on_message(const net::Envelope& env) override { mux_.on_message(env); }

  bool busy() const { return !mux_.idle(); }
  const ProcessId& id() const { return mux_.id(); }

 private:
  OpMux mux_;
  /// Persistent per-object local pairs (Fig. 2 line 1, object-wise).
  std::map<uint32_t, LocalState> states_;
};

}  // namespace bftreg::registers
