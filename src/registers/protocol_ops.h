// Per-protocol operation state machines for the operation multiplexer.
//
// Each class is one in-flight operation of one protocol flavor: the
// request it sends, the witness/decode logic that tallies responses, and
// the fallback it completes with on timeout. Operation bookkeeping (ids,
// routing, deadlines, retransmission) lives in OpMux; everything here is a
// direct transcription of the corresponding figure of the paper, unchanged
// from the single-operation clients it was factored out of.
//
// Why multiplexing preserves the paper's guarantees: the witness rule
// (f+1 identical reports pin an honest server, Lemma 1/Lemma 5) and the
// quorum bound (n-f responses, Lemma 6) are counted *per operation* over
// that operation's own QuorumTracker and response map. Concurrent
// operations of one client never share tallies -- they are
// indistinguishable, on the wire and in the proofs, from operations of
// that many distinct well-formed clients. The only cross-operation state
// is the monotone local pair (Fig. 2 line 1), which is per object and only
// ever advances, and the writer's tag floor (below), which exists to keep
// a client's concurrent writes on distinct tags.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "codec/mds_code.h"
#include "registers/op_mux.h"
#include "registers/quorum.h"
#include "registers/results.h"

namespace bftreg::registers {

/// Per-(client, object) state persisting across operations.
struct LocalState {
  /// The reader's monotone local pair (t_local, v_local) of Fig. 2 line 1.
  TaggedValue local;
  /// BCSR: the last successfully decoded value (Fig. 5's fallback).
  Bytes last_decoded;
  uint64_t decode_failures{0};
  /// Highest tag number this client has issued a write under for this
  /// object. A client pipelining writes to one object must not reuse a tag
  /// (two concurrent get-tag phases could otherwise both pick the same
  /// base); each write takes max(base.num, floor) + 1 and raises the floor.
  uint64_t last_issued_num{0};

  static LocalState initial(const SystemConfig& config) {
    return LocalState{TaggedValue{Tag::initial(), config.initial_value},
                      config.initial_value, 0, 0};
  }
};

using ReadCallback = std::function<void(const ReadResult&)>;
using WriteCallback = std::function<void(const WriteResult&)>;
using BatchReadCallback = std::function<void(const BatchReadResult&)>;

/// BSR one-shot read (Fig. 2): one QUERY-DATA round, f+1-witness selection.
class BsrReadOp final : public PendingOp {
 public:
  BsrReadOp(const SystemConfig& config, LocalState* state, ReadCallback cb)
      : state_(state), cb_(std::move(cb)), responded_(config.quorum()) {}

 protected:
  void send_request() override;
  void on_response(const ProcessId& from, RegisterMessage msg) override;
  void on_timeout() override;

 private:
  void finish();
  void complete(bool fresh);

  LocalState* const state_;
  ReadCallback cb_;
  QuorumTracker responded_;
  std::map<ProcessId, TaggedValue> responses_;
};

/// BCSR one-shot coded read (Fig. 5): collect n-f elements, run the
/// error-correcting decoder, fall back to the last decodable value.
class BcsrReadOp final : public PendingOp {
 public:
  BcsrReadOp(const SystemConfig& config, const codec::MdsCode* code,
             LocalState* state, ReadCallback cb)
      : code_(code),
        state_(state),
        cb_(std::move(cb)),
        responded_(config.quorum()),
        elements_(config.n) {}

 protected:
  void send_request() override;
  void on_response(const ProcessId& from, RegisterMessage msg) override;
  void on_timeout() override;

 private:
  void complete(bool fresh);

  const codec::MdsCode* const code_;
  LocalState* const state_;
  ReadCallback cb_;
  QuorumTracker responded_;
  std::vector<std::optional<Bytes>> elements_;  // index = server position
};

/// History-based regular read (Section III-C, option 1): one
/// QUERY-HISTORY round; a server witnesses every pair in its history.
class HistoryReadOp final : public PendingOp {
 public:
  HistoryReadOp(const SystemConfig& config, LocalState* state, ReadCallback cb)
      : state_(state), cb_(std::move(cb)), responded_(config.quorum()) {}

 protected:
  void send_request() override;
  void on_response(const ProcessId& from, RegisterMessage msg) override;
  void on_timeout() override;

 private:
  void finish();
  void complete(bool fresh);

  LocalState* const state_;
  ReadCallback cb_;
  QuorumTracker responded_;
  std::map<TaggedValue, size_t> witnesses_;
};

/// Two-round regular read (Section III-C, option 2): get-tag over
/// histories, then get-data for the chosen tag.
class TwoRoundReadOp final : public PendingOp {
 public:
  TwoRoundReadOp(const SystemConfig& config, LocalState* state, ReadCallback cb)
      : state_(state), cb_(std::move(cb)), responded_(config.quorum()) {}

 protected:
  void send_request() override;
  void on_response(const ProcessId& from, RegisterMessage msg) override;
  void on_timeout() override;

 private:
  enum class Phase { kGetTag, kGetData };

  void on_tag_history(const ProcessId& from, const RegisterMessage& msg);
  void on_data_at(const ProcessId& from, const RegisterMessage& msg);
  void begin_get_data();
  void send_read_done();
  void complete(bool fresh);

  LocalState* const state_;
  ReadCallback cb_;
  Phase phase_{Phase::kGetTag};
  QuorumTracker responded_;
  // Bounded by one get-tag round's responses (<= n), not a value log.
  std::map<Tag, std::set<ProcessId>> tag_votes_;  // bftreg-lint: allow(unbounded-store)
  Tag target_{};
  std::map<Bytes, std::set<ProcessId>> value_votes_;
};

/// Write-back atomic read (library extension): Fig. 2's get-data, then the
/// chosen pair is written back to a quorum before returning.
class WriteBackReadOp final : public PendingOp {
 public:
  WriteBackReadOp(const SystemConfig& config, LocalState* state, ReadCallback cb)
      : state_(state), cb_(std::move(cb)), responded_(config.quorum()) {}

 protected:
  void send_request() override;
  void on_response(const ProcessId& from, RegisterMessage msg) override;
  void on_timeout() override;

 private:
  enum class Phase { kGetData, kWriteBack };

  void begin_write_back();
  void complete(bool fresh);

  LocalState* const state_;
  ReadCallback cb_;
  Phase phase_{Phase::kGetData};
  QuorumTracker responded_;
  std::map<ProcessId, TaggedValue> responses_;
  bool fresh_{false};
};

/// Write (Fig. 1 / Fig. 4): get-tag with rank-(f+1) selection, then
/// put-data -- replicated when `code` is null, per-server coded elements
/// (Fig. 4 line 7) otherwise.
class WriteOp final : public PendingOp {
 public:
  WriteOp(const SystemConfig& config, const codec::MdsCode* code,
          LocalState* state, Bytes value, WriteCallback cb)
      : code_(code),
        state_(state),
        value_(std::move(value)),
        cb_(std::move(cb)),
        responded_(config.quorum()) {}

 protected:
  void send_request() override;
  void on_response(const ProcessId& from, RegisterMessage msg) override;
  void on_timeout() override;

 private:
  enum class Phase { kGetTag, kPutData };

  void on_tag_resp(const ProcessId& from, const RegisterMessage& msg);
  void on_ack(const ProcessId& from, const RegisterMessage& msg);
  void send_put_data();
  void complete();

  const codec::MdsCode* const code_;  // null = replicated put
  LocalState* const state_;
  Bytes value_;
  WriteCallback cb_;
  Phase phase_{Phase::kGetTag};
  QuorumTracker responded_;
  std::vector<Tag> tags_;
  Tag write_tag_{};
};

/// Batched multi-object one-shot read (library extension): one round, one
/// request/response per server, Fig. 2's witness selection per object.
class BatchReadOp final : public PendingOp {
 public:
  BatchReadOp(const SystemConfig& config, std::map<uint32_t, LocalState>* states,
              std::vector<uint32_t> objects, BatchReadCallback cb)
      : states_(states),
        objects_(std::move(objects)),
        cb_(std::move(cb)),
        responded_(config.quorum()) {}

 protected:
  void send_request() override;
  void on_response(const ProcessId& from, RegisterMessage msg) override;
  void on_timeout() override;

 private:
  void complete();

  /// Shared per-object local pairs; lazily initialized so batch reads and
  /// single-object reads through the same client stay mutually monotone.
  std::map<uint32_t, LocalState>* const states_;
  std::vector<uint32_t> objects_;
  BatchReadCallback cb_;
  QuorumTracker responded_;
  std::map<ProcessId, std::vector<TaggedValue>> responses_;
};

}  // namespace bftreg::registers
