#include "common/types.h"

namespace bftreg {

const char* to_string(Role role) {
  switch (role) {
    case Role::kServer:
      return "server";
    case Role::kWriter:
      return "writer";
    case Role::kReader:
      return "reader";
  }
  return "unknown";
}

std::string to_string(const ProcessId& id) {
  std::string out = to_string(id.role);
  out += ':';
  out += std::to_string(id.index);
  return out;
}

std::string to_string(const Tag& tag) {
  std::string out = "(";
  out += std::to_string(tag.num);
  out += ',';
  out += to_string(tag.writer);
  out += ')';
  return out;
}

uint64_t fnv1a64(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace bftreg
