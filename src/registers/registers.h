// Umbrella header: the public API of the register library.
//
// Protocols provided (see DESIGN.md for the paper mapping):
//   BsrWriter/BsrReader + RegisterServer  -- MWMR replicated safe register,
//     one-shot reads, n >= 4f+1 (Section III).
//   BcsrWriter/BcsrReader + RegisterServer -- SWMR erasure-coded safe
//     register, one-shot reads, n >= 5f+1 (Section IV).
//   HistoryReader   -- one-shot *regular* reads via full-history responses
//     (Section III-C, option 1).
//   TwoRoundReader  -- two-round regular reads (Section III-C, option 2).
//   RbWriter/RbReader + RbServer -- RB-based baseline, n >= 3f+1
//     (comparator; Section VI / [15]).
//   WriteBackReader -- extension: ABD-style write-back upgrades BSR reads
//     to atomicity at the cost of a second round (consistent with the
//     semi-fast atomicity impossibility of [13]).
//   BatchReader -- extension: one-shot multi-get over many objects.
#pragma once

#include "registers/batch_reader.h"    // IWYU pragma: export
#include "registers/bcsr.h"            // IWYU pragma: export
#include "registers/bsr_reader.h"      // IWYU pragma: export
#include "registers/bsr_writer.h"      // IWYU pragma: export
#include "registers/config.h"          // IWYU pragma: export
#include "registers/history_reader.h"  // IWYU pragma: export
#include "registers/messages.h"        // IWYU pragma: export
#include "registers/rb_register.h"     // IWYU pragma: export
#include "registers/server.h"          // IWYU pragma: export
#include "registers/two_round_reader.h"  // IWYU pragma: export
#include "registers/writeback_reader.h"  // IWYU pragma: export
