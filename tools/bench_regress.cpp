// Benchmark regression gate for BENCH_codec.json.
//
//   bench_regress <baseline.json> <current.json> [--max-regress=0.20]
//
// Both files follow the bftreg-bench-codec-v1 schema written by
// `bench_codec --json=PATH`. Every (n, f, size, kernel) point present in
// BOTH files is compared metric by metric; if any current metric falls
// below baseline * (1 - max_regress), the gate fails (exit 1). Points that
// exist only on one side (e.g. the CI host lacks AVX2) are reported but do
// not fail the gate -- hardware variance is not a regression.
//
// The parser below is deliberately minimal: it only understands the flat
// one-object-per-result layout our own writer produces, which keeps this
// tool dependency-free (no JSON library in the image).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Point {
  double encode_mbps{0};
  double decode_clean_mbps{0};
  double decode_adv_mbps{0};
};

using PointMap = std::map<std::string, Point>;  // key: "n=../f=../size=../kernel=.."

/// Extracts the numeric value following `"key":` in `obj`, or -1.
double find_number(const std::string& obj, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = obj.find(needle);
  if (at == std::string::npos) return -1.0;
  return std::strtod(obj.c_str() + at + needle.size(), nullptr);
}

/// Extracts the quoted string following `"key":` in `obj`, or "".
std::string find_string(const std::string& obj, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  size_t at = obj.find(needle);
  if (at == std::string::npos) return "";
  at = obj.find('"', at + needle.size());
  if (at == std::string::npos) return "";
  const size_t end = obj.find('"', at + 1);
  if (end == std::string::npos) return "";
  return obj.substr(at + 1, end - at - 1);
}

bool load(const std::string& path, PointMap* out, std::string* schema) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_regress: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  *schema = find_string(text, "schema");

  // Walk the result objects: each is a brace-delimited span after "results".
  size_t pos = text.find("\"results\"");
  if (pos == std::string::npos) {
    std::fprintf(stderr, "bench_regress: %s has no results array\n", path.c_str());
    return false;
  }
  while ((pos = text.find('{', pos + 1)) != std::string::npos) {
    const size_t end = text.find('}', pos);
    if (end == std::string::npos) break;
    const std::string obj = text.substr(pos, end - pos + 1);
    pos = end;

    const std::string kernel = find_string(obj, "kernel");
    const double n = find_number(obj, "n");
    if (kernel.empty() || n < 0) continue;
    char key[128];
    std::snprintf(key, sizeof(key), "n=%d/f=%d/size=%d/kernel=%s",
                  static_cast<int>(n), static_cast<int>(find_number(obj, "f")),
                  static_cast<int>(find_number(obj, "size")), kernel.c_str());
    Point p;
    p.encode_mbps = find_number(obj, "encode_mbps");
    p.decode_clean_mbps = find_number(obj, "decode_clean_mbps");
    p.decode_adv_mbps = find_number(obj, "decode_adv_mbps");
    (*out)[key] = p;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_path, cur_path;
  double max_regress = 0.20;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-regress=", 14) == 0) {
      max_regress = std::strtod(argv[i] + 14, nullptr);
    } else if (base_path.empty()) {
      base_path = argv[i];
    } else if (cur_path.empty()) {
      cur_path = argv[i];
    }
  }
  if (cur_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_regress <baseline.json> <current.json> "
                 "[--max-regress=0.20]\n");
    return 2;
  }

  PointMap base, cur;
  std::string base_schema, cur_schema;
  if (!load(base_path, &base, &base_schema) || !load(cur_path, &cur, &cur_schema)) {
    return 2;
  }
  if (base_schema != cur_schema) {
    std::fprintf(stderr, "bench_regress: schema mismatch (%s vs %s)\n",
                 base_schema.c_str(), cur_schema.c_str());
    return 2;
  }

  int regressions = 0;
  int compared = 0;
  for (const auto& [key, b] : base) {
    const auto it = cur.find(key);
    if (it == cur.end()) {
      std::printf("SKIP  %-48s (absent in current run)\n", key.c_str());
      continue;
    }
    const Point& c = it->second;
    const struct {
      const char* name;
      double base_v;
      double cur_v;
    } metrics[] = {
        {"encode", b.encode_mbps, c.encode_mbps},
        {"decode_clean", b.decode_clean_mbps, c.decode_clean_mbps},
        {"decode_adv", b.decode_adv_mbps, c.decode_adv_mbps},
    };
    for (const auto& m : metrics) {
      if (m.base_v <= 0) continue;
      ++compared;
      const double floor = m.base_v * (1.0 - max_regress);
      const double delta = (m.cur_v - m.base_v) / m.base_v * 100.0;
      if (m.cur_v < floor) {
        ++regressions;
        std::printf("FAIL  %-48s %-13s %8.1f -> %8.1f MB/s (%+.1f%%)\n",
                    key.c_str(), m.name, m.base_v, m.cur_v, delta);
      } else {
        std::printf("ok    %-48s %-13s %8.1f -> %8.1f MB/s (%+.1f%%)\n",
                    key.c_str(), m.name, m.base_v, m.cur_v, delta);
      }
    }
  }
  for (const auto& [key, _] : cur) {
    if (!base.count(key)) {
      std::printf("NEW   %-48s (absent in baseline)\n", key.c_str());
    }
  }
  std::printf("bench_regress: %d metrics compared, %d regressed more than %.0f%%\n",
              compared, regressions, max_regress * 100.0);
  return regressions > 0 ? 1 : 0;
}
