// E8 -- codec feasibility (Section IV-A): throughput of the [n, k] MDS
// code with k = n - 5f and Berlekamp-Welch error decoding.
//
// Two modes:
//
//  * default: google-benchmark microbenchmarks -- encode, erasure-only
//    decode (bulk interpolation path), and decode under the full Lemma 4
//    error budget (f Byzantine-garbage + f stale elements). Each run is
//    labeled with the active gf_region kernel (override via the
//    BFTREG_GF_KERNEL env var). Expected shape: encode/decode scale
//    linearly in value size; error decoding costs a small constant factor
//    over the clean path thanks to chunked verify-then-materialize.
//
//  * `bench_codec --json=PATH [--quick]`: skips google-benchmark and emits
//    a machine-readable throughput snapshot -- encode / decode-clean /
//    decode-adversarial MB/s per (n, f, size, kernel), iterating over every
//    region kernel the host supports. CI diffs this against the checked-in
//    BENCH_codec.json baseline with tools/bench_regress (fails on > 20%
//    regression). `--quick` shortens the per-point measurement window.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "codec/gf_region.h"
#include "codec/mds_code.h"
#include "common/rng.h"
#include "workload/workload.h"

using namespace bftreg;

namespace {

void bm_encode(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t f = static_cast<size_t>(state.range(1));
  const size_t size = static_cast<size_t>(state.range(2));
  const auto code = codec::MdsCode::for_bcsr(n, f);
  const Bytes value = workload::make_value(1, 0, size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(value));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * size));
  state.counters["k"] = static_cast<double>(code.k());
  state.SetLabel(codec::gf::kernel_name(codec::gf::active_kernel()));
}

void bm_decode_clean(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t f = static_cast<size_t>(state.range(1));
  const size_t size = static_cast<size_t>(state.range(2));
  const auto code = codec::MdsCode::for_bcsr(n, f);
  const Bytes value = workload::make_value(1, 0, size);
  const auto elements = code.encode(value);
  std::vector<std::optional<Bytes>> received(n);
  for (size_t i = 0; i < n - f; ++i) received[i] = elements[i];  // f erasures
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(received));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * size));
  state.SetLabel(codec::gf::kernel_name(codec::gf::active_kernel()));
}

/// The Lemma 4 worst case: f garbage + f stale among n - f received.
std::vector<std::optional<Bytes>> adversarial_responses(
    const codec::MdsCode& code, const Bytes& value, const Bytes& old_value) {
  const size_t n = code.n();
  const size_t f = (n - code.k()) / 5;
  const auto elements = code.encode(value);
  const auto old_elements = code.encode(old_value);
  Rng rng(7);
  std::vector<std::optional<Bytes>> received(n);
  for (size_t i = 0; i < n - f; ++i) received[i] = elements[i];
  for (size_t i = 0; i < f; ++i) {
    Bytes junk(elements[i].size());  // garbage of the right size
    for (auto& b : junk) b = static_cast<uint8_t>(rng.uniform(256));
    received[i] = junk;
    received[f + i] = old_elements[f + i];  // stale
  }
  return received;
}

void bm_decode_adversarial(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t f = static_cast<size_t>(state.range(1));
  const size_t size = static_cast<size_t>(state.range(2));
  const auto code = codec::MdsCode::for_bcsr(n, f);
  const Bytes value = workload::make_value(1, 0, size);
  const Bytes old_value = workload::make_value(1, 1, size);
  const auto received = adversarial_responses(code, value, old_value);
  for (auto _ : state) {
    auto out = code.decode(received);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * size));
  state.SetLabel(codec::gf::kernel_name(codec::gf::active_kernel()));
}

void codec_args(benchmark::internal::Benchmark* b) {
  for (int64_t size : {1 << 10, 16 << 10, 256 << 10}) {
    b->Args({6, 1, size});    // n = 5f+1, k = 1 (worst storage ratio)
    b->Args({11, 1, size});   // k = 6
    b->Args({16, 2, size});   // k = 6, f = 2
    b->Args({21, 3, size});   // k = 6, f = 3
  }
}

BENCHMARK(bm_encode)->Apply(codec_args)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_decode_clean)->Apply(codec_args)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_decode_adversarial)->Apply(codec_args)->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------------- JSON mode

/// MB/s of `fn` (which processes `bytes` per call), measured by running it
/// in batches until the window elapses and keeping the best batch rate.
template <typename Fn>
double measure_mbps(size_t bytes, double window_seconds, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  // Calibrate a batch size of roughly 10ms.
  size_t batch = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (size_t i = 0; i < batch; ++i) fn();
    const double dt = std::chrono::duration<double>(clock::now() - t0).count();
    if (dt >= 0.01 || batch >= (1u << 20)) break;
    batch *= 4;
  }
  double best = 0.0;
  const auto deadline = clock::now() + std::chrono::duration<double>(window_seconds);
  do {
    const auto t0 = clock::now();
    for (size_t i = 0; i < batch; ++i) fn();
    const double dt = std::chrono::duration<double>(clock::now() - t0).count();
    const double mbps =
        static_cast<double>(batch * bytes) / (dt * 1024.0 * 1024.0);
    if (mbps > best) best = mbps;
  } while (clock::now() < deadline);
  return best;
}

struct JsonConfig {
  size_t n;
  size_t f;
  size_t size;
};

int run_json_mode(const std::string& path, bool quick) {
  // (n, f, size) grid; (11, 2, 64 KiB) is the acceptance configuration.
  const JsonConfig configs[] = {
      {6, 1, 65536},  {11, 1, 65536},   {11, 2, 65536},
      {16, 2, 65536}, {11, 2, 1 << 20}, {21, 3, 262144},
  };
  const double window = quick ? 0.06 : 0.5;

  FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "bench_codec: cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"schema\": \"bftreg-bench-codec-v1\",\n");
  std::fprintf(out, "  \"quick\": %s,\n  \"results\": [", quick ? "true" : "false");

  bool first = true;
  for (const auto k :
       {codec::gf::RegionKernel::kScalar, codec::gf::RegionKernel::kSwar,
        codec::gf::RegionKernel::kSsse3, codec::gf::RegionKernel::kAvx2}) {
    if (!codec::gf::kernel_available(k)) continue;
    codec::gf::force_kernel(k);
    for (const auto& cfg : configs) {
      const auto code = codec::MdsCode::for_bcsr(cfg.n, cfg.f);
      const Bytes value = workload::make_value(1, 0, cfg.size);
      const Bytes old_value = workload::make_value(1, 1, cfg.size);
      const auto clean = [&] {
        auto r = code.encode(value);
        std::vector<std::optional<Bytes>> received(cfg.n);
        for (size_t i = 0; i < cfg.n - cfg.f; ++i) received[i] = std::move(r[i]);
        return received;
      }();
      const auto adv = adversarial_responses(code, value, old_value);

      const double enc = measure_mbps(cfg.size, window,
                                      [&] { benchmark::DoNotOptimize(code.encode(value)); });
      const double dec_clean = measure_mbps(cfg.size, window,
                                            [&] { benchmark::DoNotOptimize(code.decode(clean)); });
      const double dec_adv = measure_mbps(cfg.size, window,
                                          [&] { benchmark::DoNotOptimize(code.decode(adv)); });

      std::fprintf(out,
                   "%s\n    {\"n\": %zu, \"f\": %zu, \"size\": %zu, "
                   "\"kernel\": \"%s\", \"encode_mbps\": %.1f, "
                   "\"decode_clean_mbps\": %.1f, \"decode_adv_mbps\": %.1f}",
                   first ? "" : ",", cfg.n, cfg.f, cfg.size,
                   codec::gf::kernel_name(k), enc, dec_clean, dec_adv);
      first = false;
      std::fprintf(stderr, "  %-6s n=%2zu f=%zu size=%7zu  enc %8.1f  clean %8.1f  adv %8.1f MB/s\n",
                   codec::gf::kernel_name(k), cfg.n, cfg.f, cfg.size, enc,
                   dec_clean, dec_adv);
    }
  }
  codec::gf::reset_kernel();
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "bench_codec: wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool quick = false;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return run_json_mode(json_path, quick);

  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
