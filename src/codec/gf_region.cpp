#include "codec/gf_region.h"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "codec/gf256.h"

#if defined(__x86_64__) || defined(__i386__)
#define BFTREG_GF_X86 1
#include <immintrin.h>
#else
#define BFTREG_GF_X86 0
#endif

namespace bftreg::codec::gf {

namespace {

// ------------------------------------------------------------ split tables
//
// For every constant c, two 16-entry product tables:
//   lo[x] = c * x          (x = low nibble)
//   hi[x] = c * (x << 4)   (x = high nibble)
// so c * b = lo[b & 15] ^ hi[b >> 4]. 8 KiB total, built once; the same
// tables feed the scalar kernel and the pshufb shuffles.
struct alignas(16) SplitTable {
  uint8_t lo[16];
  uint8_t hi[16];
};

struct SplitTables {
  SplitTable t[256];

  SplitTables() {
    for (unsigned c = 0; c < 256; ++c) {
      for (unsigned x = 0; x < 16; ++x) {
        t[c].lo[x] = mul(static_cast<uint8_t>(c), static_cast<uint8_t>(x));
        t[c].hi[x] = mul(static_cast<uint8_t>(c), static_cast<uint8_t>(x << 4));
      }
    }
  }
};

const SplitTable& split_table(uint8_t c) {
  static const SplitTables tables;
  return tables.t[c];
}

// --------------------------------------------------------------- scalar
void mul_region_scalar(uint8_t* dst, const uint8_t* src, uint8_t c, size_t len) {
  const SplitTable& t = split_table(c);
  for (size_t i = 0; i < len; ++i) {
    dst[i] = static_cast<uint8_t>(t.lo[src[i] & 0x0f] ^ t.hi[src[i] >> 4]);
  }
}

void mul_add_region_scalar(uint8_t* dst, const uint8_t* src, uint8_t c,
                           size_t len) {
  const SplitTable& t = split_table(c);
  for (size_t i = 0; i < len; ++i) {
    dst[i] = static_cast<uint8_t>(dst[i] ^ t.lo[src[i] & 0x0f] ^ t.hi[src[i] >> 4]);
  }
}

// ----------------------------------------------------------------- SWAR
//
// Eight byte lanes per 64-bit word: shift-and-add in the constant's bits
// with per-lane reduction by the primitive polynomial 0x11D (the lane's
// overflow bit, replicated down, selects the 0x1D feedback). Branch-free.
constexpr uint64_t kHiBits = 0x8080808080808080ull;
constexpr uint64_t kLoSeven = 0xfefefefefefefefeull;

inline uint64_t mul_word_swar(uint64_t v, uint8_t c) {
  uint64_t acc = 0;
  for (unsigned bit = 0; bit < 8; ++bit) {
    const uint64_t take = 0ull - static_cast<uint64_t>((c >> bit) & 1);
    acc ^= v & take;
    const uint64_t over = v & kHiBits;
    v = ((v << 1) & kLoSeven) ^ ((over >> 7) * 0x1dull);
  }
  return acc;
}

void mul_region_swar(uint8_t* dst, const uint8_t* src, uint8_t c, size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t v;
    std::memcpy(&v, src + i, 8);
    const uint64_t r = mul_word_swar(v, c);
    std::memcpy(dst + i, &r, 8);
  }
  if (i < len) mul_region_scalar(dst + i, src + i, c, len - i);
}

void mul_add_region_swar(uint8_t* dst, const uint8_t* src, uint8_t c,
                         size_t len) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t v;
    uint64_t d;
    std::memcpy(&v, src + i, 8);
    std::memcpy(&d, dst + i, 8);
    d ^= mul_word_swar(v, c);
    std::memcpy(dst + i, &d, 8);
  }
  if (i < len) mul_add_region_scalar(dst + i, src + i, c, len - i);
}

// ---------------------------------------------------------------- SSSE3
#if BFTREG_GF_X86

__attribute__((target("ssse3"))) void mul_region_ssse3(uint8_t* dst,
                                                       const uint8_t* src,
                                                       uint8_t c, size_t len) {
  const SplitTable& t = split_table(c);
  const __m128i tlo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i thi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i lo = _mm_and_si128(v, mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi16(v, 4), mask);
    const __m128i r =
        _mm_xor_si128(_mm_shuffle_epi8(tlo, lo), _mm_shuffle_epi8(thi, hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), r);
  }
  if (i < len) mul_region_scalar(dst + i, src + i, c, len - i);
}

__attribute__((target("ssse3"))) void mul_add_region_ssse3(uint8_t* dst,
                                                           const uint8_t* src,
                                                           uint8_t c,
                                                           size_t len) {
  const SplitTable& t = split_table(c);
  const __m128i tlo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i thi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i lo = _mm_and_si128(v, mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi16(v, 4), mask);
    const __m128i r =
        _mm_xor_si128(_mm_shuffle_epi8(tlo, lo), _mm_shuffle_epi8(thi, hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, r));
  }
  if (i < len) mul_add_region_scalar(dst + i, src + i, c, len - i);
}

// ----------------------------------------------------------------- AVX2
__attribute__((target("avx2"))) void mul_region_avx2(uint8_t* dst,
                                                     const uint8_t* src,
                                                     uint8_t c, size_t len) {
  const SplitTable& t = split_table(c);
  const __m256i tlo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m256i thi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i lo = _mm256_and_si256(v, mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), mask);
    const __m256i r = _mm256_xor_si256(_mm256_shuffle_epi8(tlo, lo),
                                       _mm256_shuffle_epi8(thi, hi));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), r);
  }
  if (i < len) mul_region_ssse3(dst + i, src + i, c, len - i);
}

__attribute__((target("avx2"))) void mul_add_region_avx2(uint8_t* dst,
                                                         const uint8_t* src,
                                                         uint8_t c,
                                                         size_t len) {
  const SplitTable& t = split_table(c);
  const __m256i tlo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m256i thi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i lo = _mm256_and_si256(v, mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), mask);
    const __m256i r = _mm256_xor_si256(_mm256_shuffle_epi8(tlo, lo),
                                       _mm256_shuffle_epi8(thi, hi));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, r));
  }
  if (i < len) mul_add_region_ssse3(dst + i, src + i, c, len - i);
}

#endif  // BFTREG_GF_X86

// -------------------------------------------------------------- dispatch

RegionKernel detect_kernel() {
#if BFTREG_GF_X86
  if (__builtin_cpu_supports("avx2")) return RegionKernel::kAvx2;
  if (__builtin_cpu_supports("ssse3")) return RegionKernel::kSsse3;
#endif
  return RegionKernel::kSwar;
}

RegionKernel initial_kernel() {
  RegionKernel best = detect_kernel();
  if (const char* env = std::getenv("BFTREG_GF_KERNEL")) {
    const std::string want(env);
    RegionKernel forced = best;
    if (want == "scalar") {
      forced = RegionKernel::kScalar;
    } else if (want == "swar") {
      forced = RegionKernel::kSwar;
    } else if (want == "ssse3") {
      forced = RegionKernel::kSsse3;
    } else if (want == "avx2") {
      forced = RegionKernel::kAvx2;
    } else if (want != "auto" && !want.empty()) {
      std::fprintf(stderr,
                   "bftreg: unknown BFTREG_GF_KERNEL '%s' (want "
                   "auto|scalar|swar|ssse3|avx2); using %s\n",
                   env, kernel_name(best));
      return best;
    }
    if (kernel_available(forced)) return forced;
    std::fprintf(stderr,
                 "bftreg: BFTREG_GF_KERNEL=%s unavailable on this CPU; "
                 "using %s\n",
                 env, kernel_name(best));
  }
  return best;
}

std::atomic<RegionKernel>& kernel_slot() {
  static std::atomic<RegionKernel> slot{initial_kernel()};
  return slot;
}

}  // namespace

const char* kernel_name(RegionKernel k) {
  switch (k) {
    case RegionKernel::kScalar: return "scalar";
    case RegionKernel::kSwar: return "swar";
    case RegionKernel::kSsse3: return "ssse3";
    case RegionKernel::kAvx2: return "avx2";
  }
  return "?";
}

bool kernel_available(RegionKernel k) {
  switch (k) {
    case RegionKernel::kScalar:
    case RegionKernel::kSwar:
      return true;
    case RegionKernel::kSsse3:
#if BFTREG_GF_X86
      return __builtin_cpu_supports("ssse3") != 0;
#else
      return false;
#endif
    case RegionKernel::kAvx2:
#if BFTREG_GF_X86
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

RegionKernel active_kernel() {
  return kernel_slot().load(std::memory_order_relaxed);
}

bool force_kernel(RegionKernel k) {
  if (!kernel_available(k)) return false;
  kernel_slot().store(k, std::memory_order_relaxed);
  return true;
}

void reset_kernel() {
  kernel_slot().store(initial_kernel(), std::memory_order_relaxed);
}

void mul_region_as(RegionKernel k, uint8_t* dst, const uint8_t* src, uint8_t c,
                   size_t len) {
  assert(kernel_available(k));
  switch (k) {
    case RegionKernel::kScalar: mul_region_scalar(dst, src, c, len); return;
    case RegionKernel::kSwar: mul_region_swar(dst, src, c, len); return;
#if BFTREG_GF_X86
    case RegionKernel::kSsse3: mul_region_ssse3(dst, src, c, len); return;
    case RegionKernel::kAvx2: mul_region_avx2(dst, src, c, len); return;
#else
    default: mul_region_swar(dst, src, c, len); return;
#endif
  }
}

void mul_add_region_as(RegionKernel k, uint8_t* dst, const uint8_t* src,
                       uint8_t c, size_t len) {
  assert(kernel_available(k));
  switch (k) {
    case RegionKernel::kScalar: mul_add_region_scalar(dst, src, c, len); return;
    case RegionKernel::kSwar: mul_add_region_swar(dst, src, c, len); return;
#if BFTREG_GF_X86
    case RegionKernel::kSsse3: mul_add_region_ssse3(dst, src, c, len); return;
    case RegionKernel::kAvx2: mul_add_region_avx2(dst, src, c, len); return;
#else
    default: mul_add_region_swar(dst, src, c, len); return;
#endif
  }
}

void mul_region(uint8_t* dst, const uint8_t* src, uint8_t c, size_t len) {
  if (len == 0) return;
  if (c == 0) {
    std::memset(dst, 0, len);
    return;
  }
  if (c == 1) {
    if (dst != src) std::memcpy(dst, src, len);
    return;
  }
  mul_region_as(active_kernel(), dst, src, c, len);
}

void mul_add_region(uint8_t* dst, const uint8_t* src, uint8_t c, size_t len) {
  if (len == 0 || c == 0) return;
  if (c == 1) {
    add_region(dst, src, len);
    return;
  }
  mul_add_region_as(active_kernel(), dst, src, c, len);
}

void add_region(uint8_t* dst, const uint8_t* src, size_t len) {
  // Plain per-lane xor; every compiler autovectorizes this.
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t a;
    uint64_t b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < len; ++i) dst[i] = static_cast<uint8_t>(dst[i] ^ src[i]);
}

}  // namespace bftreg::codec::gf
