#include "codec/mds_code.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>

#include "codec/gf256.h"
#include "codec/gf_region.h"
#include "common/types.h"
#include "registers/config.h"

namespace bftreg::codec {

namespace {

uint32_t value_checksum(const Bytes& v) {
  return static_cast<uint32_t>(fnv1a64(v.data(), v.size()) & 0xffffffffu);
}

/// Padded-payload scratch reused across encode calls on the same thread
/// (writers encode every PUT-DATA; the buffer stabilizes at the largest
/// value seen instead of reallocating per call).
std::vector<uint8_t>& encode_scratch() {
  thread_local std::vector<uint8_t> buf;
  return buf;
}

/// out[0, len) = sum_i coeffs[i] * shard_i[0, len), each shard a contiguous
/// byte region. The first term overwrites (mul_region memsets on a zero
/// coefficient), so `out` needs no pre-clearing.
void accumulate_row(const uint8_t* coeffs, size_t k, const uint8_t* const* shards,
                    size_t len, uint8_t* out) {
  gf::mul_region(out, shards[0], coeffs[0], len);
  for (size_t i = 1; i < k; ++i) {
    gf::mul_add_region(out, shards[i], coeffs[i], len);
  }
}

/// a (rows x inner) times b (inner x cols).
GfMatrix mat_mul(const GfMatrix& a, const GfMatrix& b) {
  assert(a.cols() == b.rows());
  GfMatrix out(a.rows(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t i = 0; i < a.cols(); ++i) {
      const uint8_t f = a.at(r, i);
      if (f == 0) continue;
      for (size_t c = 0; c < b.cols(); ++c) {
        out.at(r, c) = gf::add(out.at(r, c), gf::mul(f, b.at(i, c)));
      }
    }
  }
  return out;
}

}  // namespace

MdsCode::MdsCode(size_t n, size_t k, RsLayout layout) : rs_(n, k, layout) {}

MdsCode MdsCode::for_bcsr(size_t n, size_t f, RsLayout layout) {
  assert(n >= registers::bcsr_min_servers(f) && "BCSR requires n >= 5f + 1");
  return MdsCode(n, registers::bcsr_code_dimension(n, f), layout);
}

size_t MdsCode::element_size(size_t value_size) const {
  const size_t payload = value_size + kHeaderBytes;
  return (payload + k() - 1) / k();
}

std::vector<Bytes> MdsCode::encode(const Bytes& value) const {
  const size_t stripes = element_size(value.size());
  const size_t kk = k();

  // payload = [len u32][checksum u32][value][zero padding]; shard j is the
  // contiguous slice [j * stripes, (j+1) * stripes).
  std::vector<uint8_t>& payload = encode_scratch();
  payload.assign(stripes * kk, 0);
  const auto len = static_cast<uint32_t>(value.size());
  const uint32_t sum = value_checksum(value);
  for (size_t i = 0; i < 4; ++i) payload[i] = static_cast<uint8_t>(len >> (8 * i));
  for (size_t i = 0; i < 4; ++i) payload[4 + i] = static_cast<uint8_t>(sum >> (8 * i));
  std::copy(value.begin(), value.end(), payload.begin() + kHeaderBytes);

  std::vector<const uint8_t*> shards(kk);
  for (size_t j = 0; j < kk; ++j) shards[j] = payload.data() + j * stripes;

  // Each element is one generator row applied to the shards as whole-region
  // products -- encoded directly into its output buffer, no per-stripe
  // intermediate. Systematic identity rows reduce to a memset + memcpy
  // inside the region kernels' 0/1-coefficient fast paths.
  const GfMatrix& gen = rs_.generator();
  std::vector<Bytes> elements(n());
  for (size_t i = 0; i < n(); ++i) {
    elements[i].resize(stripes);
    accumulate_row(gen.row(i), kk, shards.data(), stripes, elements[i].data());
  }
  return elements;
}

struct MdsCode::Group {
  size_t size{0};                   // element size (== stripe count)
  std::vector<size_t> positions;    // server indices with this size
};

std::optional<Bytes> MdsCode::decode(
    const std::vector<std::optional<Bytes>>& elements) const {
  assert(elements.size() == n());

  // Bucket present elements by size; a Byzantine server lying about the
  // element size lands in a minority bucket and is simply excluded, which
  // costs it its vote but cannot corrupt a majority-size decode.
  std::map<size_t, Group> groups;
  for (size_t i = 0; i < n(); ++i) {
    if (!elements[i] || elements[i]->empty()) continue;
    Group& g = groups[elements[i]->size()];
    g.size = elements[i]->size();
    g.positions.push_back(i);
  }

  std::vector<const Group*> ordered;
  ordered.reserve(groups.size());
  for (const auto& [sz, g] : groups) ordered.push_back(&g);
  std::sort(ordered.begin(), ordered.end(), [](const Group* a, const Group* b) {
    if (a->positions.size() != b->positions.size()) {
      return a->positions.size() > b->positions.size();
    }
    return a->size > b->size;
  });

  for (const Group* g : ordered) {
    if (g->positions.size() < k()) continue;
    if (auto v = decode_group_impl(g, elements)) return v;
  }
  return std::nullopt;
}

// Out-of-line helper so the header stays minimal. Decodes one same-size
// bucket: stripe 0 via Berlekamp-Welch establishes the trusted position
// set, then -- as long as the trusted set holds -- whole data shards are
// produced by region accumulations (the per-stripe interpolation is one
// fixed k x k linear map, so it distributes over contiguous shard slices).
// A stripe where any trusted position diverges from the interpolated
// codeword (e.g. a stale element that agreed on earlier stripes) falls
// back to per-stripe Berlekamp-Welch, rebuilds the trusted set, and the
// bulk pass resumes with the new matrices. The verify/materialize passes
// run in chunks so an adversarially-placed divergence cannot waste more
// than one chunk of region work.
std::optional<Bytes> MdsCode::decode_group_impl(
    const Group* g, const std::vector<std::optional<Bytes>>& elements) const {
  const size_t stripes = g->size;
  const size_t m = g->positions.size();
  const size_t e_budget = rs_.max_errors(m);
  const size_t kk = k();
  constexpr size_t kChunk = 16384;  // bytes per shard slice per bulk step

  auto symbol_at = [&](size_t stripe) {
    std::vector<ReceivedSymbol> syms;
    syms.reserve(m);
    for (size_t pos : g->positions) {
      syms.push_back(ReceivedSymbol{pos, (*elements[pos])[stripe]});
    }
    return syms;
  };

  // The trusted set and its interpolation matrix are rebuilt whenever a
  // stripe proves them wrong. Each rebuild costs one O(k^3) inversion plus
  // a map recomputation; an adversary can force at most one rebuild per
  // corrupted element pattern, and the chunked bulk pass bounds the wasted
  // region work per rebuild.
  std::vector<size_t> good;
  std::optional<GfMatrix> inv;
  auto rebuild_trusted = [&](const std::vector<uint8_t>& coeffs,
                             size_t stripe) -> bool {
    good.clear();
    for (size_t pos : g->positions) {
      if (poly_eval(coeffs, rs_.alpha(pos)) == (*elements[pos])[stripe]) {
        good.push_back(pos);
      }
    }
    if (good.size() < kk) return false;
    std::vector<uint8_t> xs(kk);
    for (size_t i = 0; i < kk; ++i) xs[i] = rs_.alpha(good[i]);
    inv = gf_invert(vandermonde(xs, kk));
    return inv.has_value();
  };

  std::vector<uint8_t> payload(stripes * kk);
  auto store_stripe = [&](size_t s, const std::vector<uint8_t>& data) {
    for (size_t j = 0; j < kk; ++j) payload[j * stripes + s] = data[j];
  };

  auto first = rs_.bw_decode(symbol_at(0), e_budget);
  if (!first || !rebuild_trusted(*first, 0)) return std::nullopt;
  store_stripe(0, rs_.coeffs_to_data(*first));

  // d_map: data shards from the k trusted symbol shards (inv for the
  // coefficient layout; Vd x inv evaluates the polynomial at the data
  // points for the systematic layout). check: one row per *extra* trusted
  // position, predicting its symbols from the same shards (the first k
  // trusted rows are identity by construction and need no check).
  GfMatrix d_map;
  GfMatrix check;
  auto rebuild_maps = [&]() {
    if (rs_.layout() == RsLayout::kCoefficients) {
      d_map = *inv;
    } else {
      std::vector<uint8_t> data_points(kk);
      for (size_t j = 0; j < kk; ++j) data_points[j] = rs_.alpha(j);
      d_map = mat_mul(vandermonde(data_points, kk), *inv);
    }
    std::vector<uint8_t> extra_points(good.size() - kk);
    for (size_t t = kk; t < good.size(); ++t) {
      extra_points[t - kk] = rs_.alpha(good[t]);
    }
    check = mat_mul(vandermonde(extra_points, kk), *inv);
  };
  rebuild_maps();

  std::vector<const uint8_t*> shards(kk);
  std::vector<uint8_t> pred;
  size_t s = 1;
  while (s < stripes) {
    const size_t end = std::min(stripes, s + kChunk);
    const size_t len = end - s;
    for (size_t i = 0; i < kk; ++i) shards[i] = elements[good[i]]->data() + s;

    // Verify the chunk against every extra trusted position; the earliest
    // diverging stripe bounds how much of the chunk is usable.
    size_t bad = SIZE_MAX;
    pred.resize(len);
    for (size_t t = kk; t < good.size(); ++t) {
      const size_t limit = std::min(len, bad == SIZE_MAX ? len : bad - s);
      if (limit == 0) break;
      accumulate_row(check.row(t - kk), kk, shards.data(), limit, pred.data());
      const uint8_t* actual = elements[good[t]]->data() + s;
      if (std::memcmp(pred.data(), actual, limit) != 0) {
        size_t i = 0;
        while (pred[i] == actual[i]) ++i;
        bad = s + i;
      }
    }

    // Materialize data shards over the verified prefix with region ops.
    const size_t clean_end = bad == SIZE_MAX ? end : bad;
    if (clean_end > s) {
      for (size_t j = 0; j < kk; ++j) {
        accumulate_row(d_map.row(j), kk, shards.data(), clean_end - s,
                       payload.data() + j * stripes + s);
      }
      s = clean_end;
    }

    if (bad != SIZE_MAX) {
      // Divergent stripe: full Berlekamp-Welch, re-learn which positions to
      // trust, then resume the bulk pass with the new matrices.
      auto fixed = rs_.bw_decode(symbol_at(s), e_budget);
      if (!fixed || !rebuild_trusted(*fixed, s)) return std::nullopt;
      store_stripe(s, rs_.coeffs_to_data(*fixed));
      ++s;
      rebuild_maps();
    }
  }
  return finish(payload);
}

std::optional<Bytes> MdsCode::finish(const std::vector<uint8_t>& payload) const {
  if (payload.size() < kHeaderBytes) return std::nullopt;
  uint32_t len = 0;
  uint32_t sum = 0;
  for (size_t i = 0; i < 4; ++i) len |= static_cast<uint32_t>(payload[i]) << (8 * i);
  for (size_t i = 0; i < 4; ++i)
    sum |= static_cast<uint32_t>(payload[4 + i]) << (8 * i);
  if (len > payload.size() - kHeaderBytes) return std::nullopt;
  Bytes value(payload.begin() + kHeaderBytes,
              payload.begin() + kHeaderBytes + len);
  if (value_checksum(value) != sum) return std::nullopt;
  return value;
}

}  // namespace bftreg::codec
