#include "common/result.h"

namespace bftreg {

const char* to_string(Errc e) {
  switch (e) {
    case Errc::kOk:
      return "ok";
    case Errc::kMalformedMessage:
      return "malformed message";
    case Errc::kDecodeFailed:
      return "decode failed";
    case Errc::kTimeout:
      return "timeout";
    case Errc::kInvalidArgument:
      return "invalid argument";
    case Errc::kNotFound:
      return "not found";
    case Errc::kAuthFailed:
      return "authentication failed";
    case Errc::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

}  // namespace bftreg
