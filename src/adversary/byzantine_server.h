// Byzantine server framework.
//
// The model lets up to f servers "behave arbitrarily and deviate from the
// algorithm in any way" (Section II-A). Arbitrary behaviour cannot be
// enumerated, so the framework is a pluggable strategy interface plus the
// concrete behaviours the paper's proofs and our property tests rely on:
// staying silent, replying with stale state, fabricating tags/values,
// colluding on a common fabrication (the strongest witness-forging attack:
// f identical lies, defeated only by the f+1 witness rule of Lemma 5),
// double replies, malformed bytes, and fully scripted behaviours for the
// impossibility-proof schedules (Thms. 3, 5, 6).
//
// Byzantine servers still send through the authenticated transport under
// their own identity -- the signature assumption prevents sender spoofing,
// and sim_test shows forged envelopes are dropped.
#pragma once

#include <functional>
#include <memory>

#include "common/rng.h"
#include "net/transport.h"
#include "registers/config.h"
#include "registers/messages.h"

namespace bftreg::adversary {

/// Everything a strategy may use to misbehave.
struct ServerContext {
  ProcessId self;
  registers::SystemConfig config;
  net::Transport* transport{nullptr};
  /// What an honest server at this position would have stored for t0
  /// (v0 for BSR; the coded element Phi_i(v0) for BCSR).
  Bytes initial;
  Rng rng{0};

  void send(const ProcessId& to, const registers::RegisterMessage& msg) const {
    transport->send(self, to, msg.encode());
  }
  void send_raw(const ProcessId& to, Bytes payload) const {
    transport->send(self, to, std::move(payload));
  }
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual void handle(const net::Envelope& env, ServerContext& ctx) = 0;
};

/// A server process driven by a strategy.
class ByzantineServer final : public net::IProcess {
 public:
  ByzantineServer(ServerContext ctx, std::unique_ptr<Strategy> strategy)
      : ctx_(std::move(ctx)), strategy_(std::move(strategy)) {}

  void on_message(const net::Envelope& env) override {
    strategy_->handle(env, ctx_);
  }

  ServerContext& context() { return ctx_; }

 private:
  ServerContext ctx_;
  std::unique_ptr<Strategy> strategy_;
};

// --------------------------------------------------------------- strategies

/// Ignores everything: indistinguishable from a crashed server.
class SilentStrategy final : public Strategy {
 public:
  void handle(const net::Envelope&, ServerContext&) override {}
};

/// Answers every request as if no write ever happened: t0 / v0 forever.
/// ACKs puts without storing them. This is the "slow/stale" server of
/// Section IV-A's erroneous-element discussion, pushed to the extreme.
class StaleStrategy final : public Strategy {
 public:
  void handle(const net::Envelope& env, ServerContext& ctx) override;
};

/// Fabricates: absurdly high tags and random values, hoping a reader
/// adopts them. Defeated by witness counting (a fabrication has at most
/// f witnesses) and by rank-(f+1) tag selection at writers.
class FabricateStrategy final : public Strategy {
 public:
  void handle(const net::Envelope& env, ServerContext& ctx) override;
};

/// Collusion: all f Byzantine servers constructed with the same `team_seed`
/// produce the *identical* fabricated pair for a given op, mounting the
/// strongest possible witness-forging attack: f matching lies. Lemma 5's
/// f+1 threshold is exactly what keeps this out.
class ColludeStrategy final : public Strategy {
 public:
  explicit ColludeStrategy(uint64_t team_seed) : team_seed_(team_seed) {}
  void handle(const net::Envelope& env, ServerContext& ctx) override;

 private:
  Tag team_tag(uint64_t op_id) const;
  Bytes team_value(uint64_t op_id) const;
  uint64_t team_seed_;
};

/// Replies twice with conflicting answers to every query; exercises the
/// per-server dedup in every client.
class DoubleReplyStrategy final : public Strategy {
 public:
  void handle(const net::Envelope& env, ServerContext& ctx) override;
};

/// Replies with random unparsable bytes; exercises defensive parsing.
class MalformedStrategy final : public Strategy {
 public:
  void handle(const net::Envelope& env, ServerContext& ctx) override;
};

/// Behaves honestly for `honest_ops` requests, then turns stale: models a
/// server compromised mid-execution.
class TurncoatStrategy final : public Strategy {
 public:
  explicit TurncoatStrategy(uint64_t honest_ops);
  void handle(const net::Envelope& env, ServerContext& ctx) override;

 private:
  uint64_t remaining_;
  StaleStrategy stale_;
  std::unique_ptr<Strategy> honest_;  // lazily built HonestAdapter
};

/// Fully scripted behaviour for bespoke scenarios (lower-bound proofs).
class ScriptedStrategy final : public Strategy {
 public:
  using Fn = std::function<void(const net::Envelope&, ServerContext&)>;
  explicit ScriptedStrategy(Fn fn) : fn_(std::move(fn)) {}
  void handle(const net::Envelope& env, ServerContext& ctx) override {
    fn_(env, ctx);
  }

 private:
  Fn fn_;
};

/// Names for the parameterized test/bench sweeps.
enum class StrategyKind {
  kSilent,
  kStale,
  kFabricate,
  kCollude,
  kDoubleReply,
  kMalformed,
  kTurncoat,
};

const char* to_string(StrategyKind kind);

std::unique_ptr<Strategy> make_strategy(StrategyKind kind, uint64_t seed);

/// Every kind, for sweeping.
inline constexpr StrategyKind kAllStrategyKinds[] = {
    StrategyKind::kSilent,     StrategyKind::kStale,
    StrategyKind::kFabricate,  StrategyKind::kCollude,
    StrategyKind::kDoubleReply, StrategyKind::kMalformed,
    StrategyKind::kTurncoat,
};

}  // namespace bftreg::adversary
