// Wire-level message envelope.
//
// Everything the protocols exchange travels as an `Envelope`: opaque payload
// bytes plus addressing and a MAC. The simulator and the threaded runtime
// both move envelopes; protocols never see transport internals.
#pragma once

#include <cstdint>

#include "common/buffer.h"
#include "common/types.h"
#include "crypto/auth.h"

namespace bftreg::net {

struct Envelope {
  ProcessId from;
  ProcessId to;
  /// Refcounted view of the payload bytes. In-memory transports move the
  /// sender's vector straight into it; the TCP data plane aliases its
  /// receive chunks, so delivery costs zero payload copies end-to-end.
  Payload payload;
  /// Globally unique send sequence number; used for deterministic
  /// tie-breaking in the simulator's event queue and for tracing.
  uint64_t seq{0};
  crypto::MacTag mac{0};
  /// Transport time at which the message was sent.
  TimeNs sent_at{0};
};

}  // namespace bftreg::net
