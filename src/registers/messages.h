// Wire messages for all register protocols (BSR, BCSR, regular variants,
// and the RB-based baseline).
//
// One tagged union covers every protocol so that a single defensive parser
// guards all of them: a Byzantine server's payload is parsed bounds-checked
// and rejected as a unit if malformed. Client requests carry an `op_id` so
// responses straggling in from a previous operation are ignored.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"

namespace bftreg::registers {

enum class MsgType : uint8_t {
  // --- BSR / BCSR core (Figs. 1-6) ---------------------------------------
  kQueryTag = 1,        // writer -> server: get-tag
  kTagResp = 2,         // server -> writer: max tag in L
  kPutData = 3,         // writer -> server: (tag, value | coded element)
  kAck = 4,             // server -> writer: put-data acknowledged
  kQueryData = 5,       // reader -> server: get-data (one-shot read)
  kDataResp = 6,        // server -> reader: (t_max, v_max | c_max)

  // --- regularity extensions (Section III-C) ------------------------------
  kQueryHistory = 7,    // reader -> server: get-data, history flavor
  kHistoryResp = 8,     // server -> reader: full list L
  kQueryTagHistory = 9, // reader -> server: 2R get-tag
  kTagHistoryResp = 10, // server -> reader: all tags in L
  kQueryDataAt = 11,    // reader -> server: 2R get-data for a specific tag
  kDataAtResp = 12,     // server -> reader: (t, v) for the requested tag
  kDataAtMissing = 13,  // server -> reader: tag not (yet) known
  kReadDone = 14,       // reader -> server: cancel deferred replies/subscription

  // --- RB-based baseline (Bracha among servers) ---------------------------
  kRbEcho = 15,         // server -> server
  kRbReady = 16,        // server -> server
  kDataUpdate = 17,     // server -> subscribed reader: newly applied pair

  // --- batched multi-object reads (library extension) ---------------------
  kQueryDataBatch = 18,  // reader -> server: newest pair of EACH object
  kDataBatchResp = 19,   // server -> reader: pairs aligned with `objects`

  // --- dynamic membership (reconfiguration extension) ----------------------
  kQueryObjects = 20,    // recovering server -> peer: list your object ids
  kObjectsResp = 21,     // peer -> recovering server: ids in `objects`
  kViewAnnounce = 22,    // join/leave announcement: `epoch` + members in
                         // `objects` (empty = the full static server set)
};

struct TaggedValue {
  Tag tag;
  Bytes value;

  friend bool operator==(const TaggedValue&, const TaggedValue&) = default;
  friend auto operator<=>(const TaggedValue&, const TaggedValue&) = default;
};

struct RegisterMessage {
  MsgType type{MsgType::kQueryTag};
  uint64_t op_id{0};
  /// Shared-variable (object) id: the model's "finite set of shared
  /// variables" (Section II-B). One server set emulates many independent
  /// registers; each request/response names the object it concerns.
  uint32_t object{0};
  Tag tag{};
  Bytes value;
  std::vector<TaggedValue> history;  // kHistoryResp; kDataBatchResp pairs
  /// Encode-only sibling of `history`: borrowed (tag, value-view) pairs
  /// serialized after `history` under one combined count, so a server can
  /// answer QUERY-HISTORY straight out of its value slab without copying
  /// every value into a TaggedValue first. parse() never fills this (an
  /// inbound message's views would dangle once the payload buffer dies);
  /// the views must outlive encode() only.
  std::vector<std::pair<Tag, BytesView>> history_views;
  std::vector<Tag> tags;             // kTagHistoryResp
  std::vector<uint32_t> objects;     // kQueryDataBatch / kDataBatchResp;
                                     // member server indices (kViewAnnounce)
  /// Membership epoch this message was sent under. Servers stamp their
  /// current epoch into every reply so clients learn of view changes by
  /// piggyback; 0 is the initial (static) view. Trails the wire format so
  /// the object-id peek at offset 9 (RegisterServer::shard_of) is
  /// untouched.
  uint64_t epoch{0};

  Bytes encode() const;

  /// Defensive parse; nullopt on any malformation (wrong type byte,
  /// truncation, oversized counts, trailing bytes).
  static std::optional<RegisterMessage> parse(BytesView payload);
};

const char* to_string(MsgType t);

}  // namespace bftreg::registers
