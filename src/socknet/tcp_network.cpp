#include "socknet/tcp_network.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cassert>
#include <cstring>
#include <deque>
#include <utility>

#include "common/log.h"
#include "common/serde.h"

namespace bftreg::socknet {

namespace {

/// Reads exactly `len` bytes; false on EOF/error.
bool read_exact(int fd, uint8_t* buf, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t r = ::recv(fd, buf + got, len - got, 0);
    if (r <= 0) return false;
    got += static_cast<size_t>(r);
  }
  return true;
}

bool write_all(int fd, const uint8_t* buf, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t w = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
    if (w <= 0) return false;
    sent += static_cast<size_t>(w);
  }
  return true;
}

constexpr size_t kMaxFrame = 64 * 1024 * 1024;  // sanity cap: 64 MiB

}  // namespace

struct TcpNetwork::Endpoint {
  ProcessId pid;
  net::IProcess* process{nullptr};
  // Atomic: stop() publishes -1 while the accept thread is still reading it.
  std::atomic<int> listen_fd{-1};
  uint16_t port{0};

  std::thread accept_thread;
  Mutex conn_mu;
  std::vector<std::thread> conn_threads GUARDED_BY(conn_mu);
  // Accepted sockets, for shutdown on stop.
  std::vector<int> conn_fds GUARDED_BY(conn_mu);

  // Mailbox serializing handler execution (same discipline as the other
  // runtimes: protocol code is single-threaded per process).
  Mutex mu;
  CondVar cv;
  std::deque<std::function<void()>> items GUARDED_BY(mu);
  std::thread mailbox_thread;

  // Cached outbound connections: destination -> fd.
  Mutex out_mu;
  std::map<ProcessId, int> out_fds GUARDED_BY(out_mu);
};

TcpNetwork::TcpNetwork(TcpConfig config)
    : auth_(crypto::KeyRegistry(config.master_secret)),
      config_(config),
      epoch_(std::chrono::steady_clock::now()) {}

TcpNetwork::~TcpNetwork() { stop(); }

TimeNs TcpNetwork::now() const {
  return static_cast<TimeNs>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now() - epoch_)
                                 .count());
}

TcpNetwork::Endpoint* TcpNetwork::find(const ProcessId& pid) {
  auto it = endpoints_.find(pid);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

uint16_t TcpNetwork::port_of(const ProcessId& pid) const {
  auto it = endpoints_.find(pid);
  return it == endpoints_.end() ? 0 : it->second->port;
}

void TcpNetwork::add_process(const ProcessId& pid, net::IProcess* process) {
  assert(!running_.load());
  auto ep = std::make_unique<Endpoint>();
  ep->pid = pid;
  ep->process = process;

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  assert(listen_fd >= 0);
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::inet_addr(config_.host);
  addr.sin_port = 0;  // ephemeral
  [[maybe_unused]] int rc =
      ::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  assert(rc == 0);
  rc = ::listen(listen_fd, 64);
  assert(rc == 0);

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
  ep->port = ntohs(bound.sin_port);
  ep->listen_fd.store(listen_fd);

  endpoints_[pid] = std::move(ep);
}

void TcpNetwork::start() {
  assert(!running_.exchange(true));
  timer_thread_ = std::thread([this] { timer_loop(); });
  for (auto& [pid, ep] : endpoints_) {
    Endpoint* e = ep.get();
    e->mailbox_thread = std::thread([this, e] { mailbox_loop(e); });
    e->accept_thread = std::thread([this, e] { accept_loop(e); });
    enqueue(e, [e] { e->process->on_start(); });
  }
}

bool TcpNetwork::on_internal_thread() const {
  const auto self = std::this_thread::get_id();
  if (timer_thread_.joinable() && self == timer_thread_.get_id()) return true;
  for (const auto& [pid, ep] : endpoints_) {
    if (ep->accept_thread.joinable() && self == ep->accept_thread.get_id())
      return true;
    if (ep->mailbox_thread.joinable() && self == ep->mailbox_thread.get_id())
      return true;
  }
  return false;
}

void TcpNetwork::stop() {
  if (!running_.exchange(false)) return;
  // Joining our own accept/mailbox thread would deadlock; stop() is an
  // external-thread API (see header contract). Connection threads only
  // enqueue into mailboxes, so a handler never reaches stop() either.
  assert(!on_internal_thread() && "stop() called from a network-owned thread");
  {
    MutexLock lock(timer_mu_);
    timer_cv_.notify_all();
  }
  if (timer_thread_.joinable()) timer_thread_.join();
  for (auto& [pid, ep] : endpoints_) {
    // Shut the listener; accept() wakes with an error and the loop exits.
    const int listen_fd = ep->listen_fd.exchange(-1);
    if (listen_fd >= 0) {
      ::shutdown(listen_fd, SHUT_RDWR);
      ::close(listen_fd);
    }
    {
      MutexLock lock(ep->out_mu);
      for (auto& [to, fd] : ep->out_fds) ::close(fd);
      ep->out_fds.clear();
    }
    // Wake connection threads blocked in recv().
    {
      MutexLock lock(ep->conn_mu);
      for (int fd : ep->conn_fds) ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (auto& [pid, ep] : endpoints_) {
    if (ep->accept_thread.joinable()) ep->accept_thread.join();
    // The accept thread is joined, so no further connection threads can be
    // added; move them out under the lock and join outside it.
    std::vector<std::thread> conns;
    {
      MutexLock lock(ep->conn_mu);
      conns = std::move(ep->conn_threads);
      ep->conn_threads.clear();
    }
    for (auto& t : conns) {
      if (t.joinable()) t.join();
    }
    {
      MutexLock lock(ep->mu);
      ep->cv.notify_all();
    }
    if (ep->mailbox_thread.joinable()) ep->mailbox_thread.join();
  }
}

void TcpNetwork::enqueue(Endpoint* ep, std::function<void()> fn) {
  MutexLock lock(ep->mu);
  ep->items.push_back(std::move(fn));
  ep->cv.notify_one();
}

void TcpNetwork::mailbox_loop(Endpoint* ep) {
  for (;;) {
    std::function<void()> fn;
    {
      MutexLock lock(ep->mu);
      while (ep->items.empty() && running_.load()) ep->cv.wait(lock);
      if (ep->items.empty()) return;
      fn = std::move(ep->items.front());
      ep->items.pop_front();
    }
    fn();
  }
}

void TcpNetwork::accept_loop(Endpoint* ep) {
  for (;;) {
    const int listen_fd = ep->listen_fd.load();
    if (listen_fd < 0) return;  // stop() already closed the listener
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // listener closed
    MutexLock lock(ep->conn_mu);
    ep->conn_fds.push_back(fd);
    ep->conn_threads.emplace_back([this, ep, fd] { connection_loop(ep, fd); });
  }
}

void TcpNetwork::connection_loop(Endpoint* ep, int fd) {
  // Frames: [u32 len][from(5)][to(5)][mac u64][payload].
  for (;;) {
    uint8_t len_buf[4];
    if (!read_exact(fd, len_buf, 4)) break;
    Deserializer lend(len_buf, 4);
    const uint32_t frame_len = lend.get_u32();
    if (frame_len < 5 + 5 + 8 || frame_len > kMaxFrame) break;

    Bytes frame(frame_len);
    if (!read_exact(fd, frame.data(), frame_len)) break;

    Deserializer d(frame);
    const ProcessId from = d.get_process_id();
    const ProcessId to = d.get_process_id();
    const uint64_t mac = d.get_u64();
    if (!d.ok() || !(to == ep->pid)) break;  // misrouted or corrupt
    Bytes payload(frame.begin() + static_cast<long>(frame_len - d.remaining()),
                  frame.end());

    if (!auth_.verify(from, to, payload, mac)) {
      metrics_.on_auth_failure();
      continue;  // drop the forged frame, keep the connection
    }
    metrics_.on_deliver();
    net::Envelope env;
    env.from = from;
    env.to = to;
    env.mac = mac;
    env.payload = std::move(payload);
    net::IProcess* proc = ep->process;
    enqueue(ep, [proc, e = std::move(env)] { proc->on_message(e); });
  }
  ::close(fd);
}

Bytes TcpNetwork::seal_frame(const crypto::Authenticator& auth,
                             const ProcessId& from, const ProcessId& to,
                             const Bytes& payload) {
  Serializer s;
  const uint32_t frame_len = static_cast<uint32_t>(5 + 5 + 8 + payload.size());
  s.put_u32(frame_len);
  s.put_process_id(from);
  s.put_process_id(to);
  s.put_u64(auth.seal(from, to, payload));
  Bytes out = s.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

int TcpNetwork::connect_to(const ProcessId& to) {
  Endpoint* dst = find(to);
  if (dst == nullptr) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::inet_addr(config_.host);
  addr.sin_port = htons(dst->port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void TcpNetwork::send(const ProcessId& from, const ProcessId& to, Bytes payload) {
  if (!running_.load()) return;
  Endpoint* src = find(from);
  if (src == nullptr) return;

  const Bytes frame = seal_frame(auth_, from, to, payload);
  metrics_.on_send(payload.size());

  MutexLock lock(src->out_mu);
  auto it = src->out_fds.find(to);
  if (it == src->out_fds.end()) {
    const int fd = connect_to(to);
    if (fd < 0) return;  // destination gone (e.g. stopping)
    it = src->out_fds.emplace(to, fd).first;
  }
  if (!write_all(it->second, frame.data(), frame.size())) {
    ::close(it->second);
    src->out_fds.erase(it);
    // One reconnect attempt; drop on repeated failure (TCP gives us
    // reliable FIFO while up; process failure is a crash in the model).
    const int fd = connect_to(to);
    if (fd < 0) return;
    src->out_fds.emplace(to, fd);
    write_all(fd, frame.data(), frame.size());
  }
}

void TcpNetwork::timer_loop() {
  MutexLock lock(timer_mu_);
  for (;;) {
    if (!running_.load()) return;  // pending timers are dropped at shutdown
    if (timer_queue_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    const TimeNs due = timer_queue_.top().due;
    const TimeNs t = now();
    if (t < due) {
      timer_cv_.wait_for(lock, std::chrono::nanoseconds(due - t));
      continue;
    }
    Timer timer = std::move(const_cast<Timer&>(timer_queue_.top()));
    timer_queue_.pop();
    lock.unlock();
    post(timer.pid, std::move(timer.fn));
    lock.lock();
  }
}

void TcpNetwork::post_after(const ProcessId& pid, TimeNs delta,
                            std::function<void()> fn) {
  if (delta == 0) {
    post(pid, std::move(fn));
    return;
  }
  MutexLock lock(timer_mu_);
  timer_queue_.push(Timer{now() + delta, timer_seq_.fetch_add(1), pid, std::move(fn)});
  timer_cv_.notify_one();
}

void TcpNetwork::post(const ProcessId& pid, std::function<void()> fn) {
  if (Endpoint* ep = find(pid)) enqueue(ep, std::move(fn));
}

}  // namespace bftreg::socknet
