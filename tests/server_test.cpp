// Unit tests for RegisterServer (Fig. 3 / Fig. 6 server logic).
#include <gtest/gtest.h>

#include "registers/server.h"
#include "sim/simulator.h"

namespace bftreg::registers {
namespace {

class ClientProbe final : public net::IProcess {
 public:
  void on_message(const net::Envelope& env) override {
    auto msg = RegisterMessage::parse(env.payload);
    ASSERT_TRUE(msg.has_value());
    received.push_back(*msg);
  }
  std::vector<RegisterMessage> received;
};

class ServerFixture : public ::testing::Test {
 protected:
  ServerFixture()
      : sim_(sim::SimConfig::with_fixed_delay(1, 10)),
        config_{make_config()},
        server_(ProcessId::server(0), config_, &sim_, Bytes{'v', '0'}) {
    sim_.add_process(ProcessId::server(0), &server_);
    sim_.add_process(writer_, &writer_probe_);
    sim_.add_process(reader_, &reader_probe_);
  }

  static SystemConfig make_config() {
    SystemConfig c;
    c.n = 5;
    c.f = 1;
    c.initial_value = Bytes{'v', '0'};
    return c;
  }

  void send(const ProcessId& from, const RegisterMessage& msg) {
    sim_.send(from, ProcessId::server(0), msg.encode());
    sim_.run_until_idle();
  }

  RegisterMessage put(uint64_t op, Tag tag, Bytes value) {
    RegisterMessage m;
    m.type = MsgType::kPutData;
    m.op_id = op;
    m.tag = tag;
    m.value = std::move(value);
    return m;
  }

  sim::Simulator sim_;
  SystemConfig config_;
  RegisterServer server_;
  ProcessId writer_ = ProcessId::writer(0);
  ProcessId reader_ = ProcessId::reader(0);
  ClientProbe writer_probe_;
  ClientProbe reader_probe_;
};

TEST_F(ServerFixture, InitialStateHasT0) {
  EXPECT_EQ(server_.max_tag(), Tag::initial());
  EXPECT_EQ(server_.max_value(), (Bytes{'v', '0'}));
  EXPECT_EQ(server_.store().size(), 1u);
}

TEST_F(ServerFixture, QueryTagReturnsMaxTag) {
  RegisterMessage q;
  q.type = MsgType::kQueryTag;
  q.op_id = 5;
  send(writer_, q);
  ASSERT_EQ(writer_probe_.received.size(), 1u);
  EXPECT_EQ(writer_probe_.received[0].type, MsgType::kTagResp);
  EXPECT_EQ(writer_probe_.received[0].op_id, 5u);
  EXPECT_EQ(writer_probe_.received[0].tag, Tag::initial());
}

TEST_F(ServerFixture, PutDataStoresAndAcks) {
  const Tag t{1, ProcessId::writer(0)};
  send(writer_, put(9, t, Bytes{'a'}));
  ASSERT_EQ(writer_probe_.received.size(), 1u);
  EXPECT_EQ(writer_probe_.received[0].type, MsgType::kAck);
  EXPECT_EQ(writer_probe_.received[0].tag, t);
  EXPECT_EQ(server_.max_tag(), t);
  EXPECT_EQ(server_.max_value(), (Bytes{'a'}));
}

TEST_F(ServerFixture, AllPolicyKeepsInterleavedTags) {
  send(writer_, put(1, Tag{5, ProcessId::writer(0)}, Bytes{'5'}));
  send(writer_, put(2, Tag{3, ProcessId::writer(1)}, Bytes{'3'}));
  EXPECT_EQ(server_.store().size(), 3u);  // t0, 3, 5
  EXPECT_EQ(server_.max_tag(), (Tag{5, ProcessId::writer(0)}));
}

TEST_F(ServerFixture, LowerPutStillAcked) {
  send(writer_, put(1, Tag{5, ProcessId::writer(0)}, Bytes{'5'}));
  send(writer_, put(2, Tag{3, ProcessId::writer(1)}, Bytes{'3'}));
  EXPECT_EQ(writer_probe_.received.size(), 2u);
  EXPECT_EQ(writer_probe_.received[1].type, MsgType::kAck);
}

TEST_F(ServerFixture, QueryDataReturnsNewestPair) {
  send(writer_, put(1, Tag{2, ProcessId::writer(0)}, Bytes{'b'}));
  RegisterMessage q;
  q.type = MsgType::kQueryData;
  q.op_id = 77;
  send(reader_, q);
  ASSERT_EQ(reader_probe_.received.size(), 1u);
  const auto& resp = reader_probe_.received[0];
  EXPECT_EQ(resp.type, MsgType::kDataResp);
  EXPECT_EQ(resp.tag, (Tag{2, ProcessId::writer(0)}));
  EXPECT_EQ(resp.value, (Bytes{'b'}));
}

TEST_F(ServerFixture, QueryHistoryReturnsEverything) {
  send(writer_, put(1, Tag{1, ProcessId::writer(0)}, Bytes{'1'}));
  send(writer_, put(2, Tag{2, ProcessId::writer(0)}, Bytes{'2'}));
  RegisterMessage q;
  q.type = MsgType::kQueryHistory;
  send(reader_, q);
  ASSERT_EQ(reader_probe_.received.size(), 1u);
  EXPECT_EQ(reader_probe_.received[0].history.size(), 3u);  // t0 + two writes
}

TEST_F(ServerFixture, QueryTagHistoryReturnsAllTags) {
  send(writer_, put(1, Tag{4, ProcessId::writer(1)}, Bytes{'x'}));
  RegisterMessage q;
  q.type = MsgType::kQueryTagHistory;
  send(reader_, q);
  ASSERT_EQ(reader_probe_.received.size(), 1u);
  EXPECT_EQ(reader_probe_.received[0].tags.size(), 2u);
}

TEST_F(ServerFixture, QueryDataAtKnownTagAnswersImmediately) {
  const Tag t{1, ProcessId::writer(0)};
  send(writer_, put(1, t, Bytes{'k'}));
  RegisterMessage q;
  q.type = MsgType::kQueryDataAt;
  q.op_id = 3;
  q.tag = t;
  send(reader_, q);
  ASSERT_EQ(reader_probe_.received.size(), 1u);
  EXPECT_EQ(reader_probe_.received[0].type, MsgType::kDataAtResp);
  EXPECT_EQ(reader_probe_.received[0].value, (Bytes{'k'}));
}

TEST_F(ServerFixture, QueryDataAtUnknownTagDefersUntilPutArrives) {
  const Tag t{7, ProcessId::writer(0)};
  RegisterMessage q;
  q.type = MsgType::kQueryDataAt;
  q.op_id = 11;
  q.tag = t;
  send(reader_, q);
  ASSERT_EQ(reader_probe_.received.size(), 1u);
  EXPECT_EQ(reader_probe_.received[0].type, MsgType::kDataAtMissing);

  // The PUT-DATA for that tag arrives later: the server answers the
  // deferred query.
  send(writer_, put(1, t, Bytes{'d'}));
  ASSERT_EQ(reader_probe_.received.size(), 2u);
  EXPECT_EQ(reader_probe_.received[1].type, MsgType::kDataAtResp);
  EXPECT_EQ(reader_probe_.received[1].op_id, 11u);
  EXPECT_EQ(reader_probe_.received[1].value, (Bytes{'d'}));
}

TEST_F(ServerFixture, ReadDoneCancelsDeferredQuery) {
  const Tag t{7, ProcessId::writer(0)};
  RegisterMessage q;
  q.type = MsgType::kQueryDataAt;
  q.op_id = 11;
  q.tag = t;
  send(reader_, q);
  RegisterMessage done;
  done.type = MsgType::kReadDone;
  done.op_id = 11;
  send(reader_, done);
  send(writer_, put(1, t, Bytes{'d'}));
  // Only the initial DATA-AT-MISSING; no deferred answer after READ-DONE.
  ASSERT_EQ(reader_probe_.received.size(), 1u);
}

TEST_F(ServerFixture, MalformedPayloadIgnored) {
  sim_.send(writer_, ProcessId::server(0), Bytes{0xde, 0xad});
  sim_.run_until_idle();
  EXPECT_TRUE(writer_probe_.received.empty());
  EXPECT_EQ(server_.store().size(), 1u);
}

TEST_F(ServerFixture, StoredBytesTracksPayloads) {
  const size_t initial = server_.stored_bytes();
  send(writer_, put(1, Tag{1, ProcessId::writer(0)}, Bytes(100, 0)));
  EXPECT_EQ(server_.stored_bytes(), initial + 100);
}

TEST_F(ServerFixture, ReadOnlyQueriesDoNotCreateStores) {
  ASSERT_EQ(server_.objects_known(), 1u);  // only the default register

  RegisterMessage q;
  q.op_id = 1;
  q.object = 42;
  for (MsgType type : {MsgType::kQueryTag, MsgType::kQueryData,
                       MsgType::kQueryHistory, MsgType::kQueryTagHistory}) {
    q.type = type;
    send(reader_, q);
  }
  ASSERT_EQ(reader_probe_.received.size(), 4u);
  // Every answer is the lazy initialization {(t0, v0)} -- but the store for
  // object 42 was never materialized.
  EXPECT_EQ(reader_probe_.received[0].tag, Tag::initial());
  EXPECT_EQ(reader_probe_.received[1].value, (Bytes{'v', '0'}));
  ASSERT_EQ(reader_probe_.received[2].history.size(), 1u);
  EXPECT_EQ(reader_probe_.received[2].history[0].value, (Bytes{'v', '0'}));
  ASSERT_EQ(reader_probe_.received[3].tags.size(), 1u);
  EXPECT_EQ(reader_probe_.received[3].tags[0], Tag::initial());
  EXPECT_EQ(server_.objects_known(), 1u);

  // DATA-AT for t0 on an unknown object answers v0 without a store either.
  q.type = MsgType::kQueryDataAt;
  q.tag = Tag::initial();
  send(reader_, q);
  ASSERT_EQ(reader_probe_.received.size(), 5u);
  EXPECT_EQ(reader_probe_.received[4].type, MsgType::kDataAtResp);
  EXPECT_EQ(reader_probe_.received[4].value, (Bytes{'v', '0'}));
  EXPECT_EQ(server_.objects_known(), 1u);
}

TEST_F(ServerFixture, QueryDataBatchDoesNotCreateStores) {
  RegisterMessage q;
  q.type = MsgType::kQueryDataBatch;
  q.op_id = 9;
  q.objects = {7, 8, 9, 10};
  send(reader_, q);
  ASSERT_EQ(reader_probe_.received.size(), 1u);
  const auto& resp = reader_probe_.received[0];
  EXPECT_EQ(resp.type, MsgType::kDataBatchResp);
  ASSERT_EQ(resp.history.size(), 4u);
  for (const auto& tv : resp.history) {
    EXPECT_EQ(tv.tag, Tag::initial());
    EXPECT_EQ(tv.value, (Bytes{'v', '0'}));
  }
  // A (possibly Byzantine) client probing arbitrary ids must not balloon
  // server state: no stores were created for objects 7..10.
  EXPECT_EQ(server_.objects_known(), 1u);
}

TEST_F(ServerFixture, ReadDoneCancelsOnlyThatReadersWaiter) {
  // Two clients defer on the same unknown (object, tag); READ-DONE from one
  // must cancel only its own waiter, leaving the other to be satisfied.
  const Tag t{9, ProcessId::writer(0)};
  RegisterMessage q;
  q.type = MsgType::kQueryDataAt;
  q.tag = t;
  q.op_id = 21;
  send(reader_, q);
  q.op_id = 22;
  send(writer_, q);
  ASSERT_EQ(reader_probe_.received.size(), 1u);
  ASSERT_EQ(writer_probe_.received.size(), 1u);
  EXPECT_EQ(reader_probe_.received[0].type, MsgType::kDataAtMissing);
  EXPECT_EQ(writer_probe_.received[0].type, MsgType::kDataAtMissing);

  RegisterMessage done;
  done.type = MsgType::kReadDone;
  done.op_id = 21;
  send(reader_, done);

  send(writer_, put(1, t, Bytes{'z'}));
  // The writer-probe waiter survives the reader's cancel: it gets the
  // deferred answer (plus its own put ACK); the reader gets nothing more.
  ASSERT_EQ(reader_probe_.received.size(), 1u);
  ASSERT_EQ(writer_probe_.received.size(), 3u);
  EXPECT_EQ(writer_probe_.received[1].type, MsgType::kDataAtResp);
  EXPECT_EQ(writer_probe_.received[1].op_id, 22u);
  EXPECT_EQ(writer_probe_.received[1].value, (Bytes{'z'}));
  EXPECT_EQ(writer_probe_.received[2].type, MsgType::kAck);
}

// MaxOnly policy (Fig. 3 verbatim).
TEST(ServerMaxOnlyTest, DropsNonIncreasingTags) {
  sim::Simulator sim(sim::SimConfig::with_fixed_delay(1, 10));
  SystemConfig cfg;
  cfg.n = 5;
  cfg.f = 1;
  cfg.store_policy = StorePolicy::kMaxOnly;
  RegisterServer server(ProcessId::server(0), cfg, &sim, Bytes{});
  ClientProbe probe;
  sim.add_process(ProcessId::server(0), &server);
  sim.add_process(ProcessId::writer(0), &probe);

  auto put = [&](Tag tag, Bytes v) {
    RegisterMessage m;
    m.type = MsgType::kPutData;
    m.tag = tag;
    m.value = std::move(v);
    sim.send(ProcessId::writer(0), ProcessId::server(0), m.encode());
    sim.run_until_idle();
  };
  put(Tag{5, ProcessId::writer(0)}, Bytes{'5'});
  put(Tag{3, ProcessId::writer(1)}, Bytes{'3'});  // lower: dropped
  put(Tag{5, ProcessId::writer(0)}, Bytes{'X'});  // equal: dropped
  EXPECT_EQ(server.store().size(), 2u);  // t0 and tag 5
  EXPECT_EQ(server.max_value(), (Bytes{'5'}));
  EXPECT_EQ(probe.received.size(), 3u);  // all three ACKed regardless
}

// --- sharded object table (SystemConfig::server_shards) ---------------------

class ShardedServerFixture : public ::testing::Test {
 protected:
  static constexpr size_t kShards = 4;

  ShardedServerFixture()
      : sim_(sim::SimConfig::with_fixed_delay(1, 10)),
        server_(ProcessId::server(0), make_config(), &sim_, Bytes{'v', '0'}) {
    sim_.add_process(ProcessId::server(0), &server_);
    sim_.add_process(writer_, &probe_);
  }

  static SystemConfig make_config() {
    SystemConfig c;
    c.n = 5;
    c.f = 1;
    c.initial_value = Bytes{'v', '0'};
    c.server_shards = kShards;
    return c;
  }

  void send(const RegisterMessage& msg) {
    sim_.send(writer_, ProcessId::server(0), msg.encode());
    sim_.run_until_idle();
  }

  void put(uint32_t object, Tag tag, Bytes value) {
    RegisterMessage m;
    m.type = MsgType::kPutData;
    m.object = object;
    m.tag = tag;
    m.value = std::move(value);
    send(m);
  }

  sim::Simulator sim_;
  RegisterServer server_;
  ProcessId writer_ = ProcessId::writer(0);
  ClientProbe probe_;
};

TEST_F(ShardedServerFixture, ReportsOneDeliveryShardPerConfigShard) {
  EXPECT_EQ(server_.delivery_shards(), kShards);
}

TEST_F(ShardedServerFixture, ShardOfPeeksObjectConsistently) {
  // Same object -> same shard regardless of message type; every shard in
  // range; the mapping spreads sequential ids across more than one shard.
  std::vector<uint32_t> seen;
  for (uint32_t object = 0; object < 32; ++object) {
    RegisterMessage q;
    q.type = MsgType::kQueryTag;
    q.object = object;
    net::Envelope env;
    env.payload = Payload(q.encode());
    const uint32_t shard = server_.shard_of(env);
    ASSERT_LT(shard, kShards);
    seen.push_back(shard);

    RegisterMessage p;
    p.type = MsgType::kPutData;
    p.object = object;
    p.value = Bytes{'x'};
    net::Envelope put_env;
    put_env.payload = Payload(p.encode());
    EXPECT_EQ(server_.shard_of(put_env), shard) << "object " << object;
  }
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  EXPECT_GT(seen.size(), 1u);  // hash actually distributes
}

TEST_F(ShardedServerFixture, MalformedPayloadRoutesToShardZero) {
  net::Envelope env;
  env.payload = Payload(Bytes{1, 2, 3});  // shorter than the fixed prefix
  EXPECT_EQ(server_.shard_of(env), 0u);
}

TEST_F(ShardedServerFixture, PutsAndQueriesSpanShards) {
  constexpr uint32_t kObjects = 24;
  for (uint32_t object = 0; object < kObjects; ++object) {
    put(object, Tag{object + 1, writer_}, Bytes{static_cast<uint8_t>(object)});
  }
  EXPECT_EQ(server_.objects_known(), kObjects);
  for (uint32_t object = 0; object < kObjects; ++object) {
    EXPECT_EQ(server_.max_tag(object), (Tag{object + 1, writer_}));
    EXPECT_EQ(server_.max_value(object), Bytes{static_cast<uint8_t>(object)});
  }

  probe_.received.clear();
  RegisterMessage q;
  q.type = MsgType::kQueryData;
  q.object = 17;
  q.op_id = 42;
  send(q);
  ASSERT_EQ(probe_.received.size(), 1u);
  EXPECT_EQ(probe_.received[0].type, MsgType::kDataResp);
  EXPECT_EQ(probe_.received[0].tag, (Tag{18, writer_}));
  EXPECT_EQ(probe_.received[0].value, (Bytes{17}));
}

TEST_F(ShardedServerFixture, BatchReadsAcrossShardOwners) {
  put(3, Tag{1, writer_}, Bytes{'a'});
  put(9, Tag{2, writer_}, Bytes{'b'});
  put(14, Tag{3, writer_}, Bytes{'c'});

  probe_.received.clear();
  RegisterMessage q;
  q.type = MsgType::kQueryDataBatch;
  q.op_id = 7;
  q.objects = {3, 9, 14, 1000};  // 1000: never seen, reads as lazy init
  send(q);
  ASSERT_EQ(probe_.received.size(), 1u);
  const auto& resp = probe_.received[0];
  EXPECT_EQ(resp.type, MsgType::kDataBatchResp);
  ASSERT_EQ(resp.history.size(), 4u);
  EXPECT_EQ(resp.history[0].value, (Bytes{'a'}));
  EXPECT_EQ(resp.history[1].value, (Bytes{'b'}));
  EXPECT_EQ(resp.history[2].value, (Bytes{'c'}));
  EXPECT_EQ(resp.history[3].tag, Tag::initial());
  EXPECT_EQ(resp.history[3].value, (Bytes{'v', '0'}));
  // The never-seen object was answered without materializing state.
  EXPECT_EQ(server_.objects_known(), 4u);  // 0 (default), 3, 9, 14
}

TEST_F(ShardedServerFixture, OversizeValuesRoundTripThroughCache) {
  // Values past NewestCache::kInlineValueCap take the shared_ptr path.
  Bytes big(NewestCache::kInlineValueCap + 500, uint8_t{0xAB});
  put(5, Tag{1, writer_}, big);

  probe_.received.clear();
  RegisterMessage q;
  q.type = MsgType::kQueryData;
  q.object = 5;
  send(q);
  ASSERT_EQ(probe_.received.size(), 1u);
  EXPECT_EQ(probe_.received[0].value, big);

  // Shrink back under the cap: the inline path must supersede the pointer.
  put(5, Tag{2, writer_}, Bytes{'s'});
  probe_.received.clear();
  send(q);
  ASSERT_EQ(probe_.received.size(), 1u);
  EXPECT_EQ(probe_.received[0].tag, (Tag{2, writer_}));
  EXPECT_EQ(probe_.received[0].value, (Bytes{'s'}));
}

TEST_F(ShardedServerFixture, StoredBytesTracksAcrossShards) {
  const size_t initial = server_.stored_bytes();  // object 0's lazy init
  put(1, Tag{1, writer_}, Bytes(100, 'x'));
  put(2, Tag{1, writer_}, Bytes(50, 'y'));
  // Each first put materializes {t0, v0} (2 bytes) plus the value.
  EXPECT_EQ(server_.stored_bytes(), initial + 2 + 100 + 2 + 50);
}

TEST(ServerConfigTest, BuilderRejectsZeroShards) {
  auto result = SystemConfig::builder().n(5).f(1).server_shards(0).build();
  ASSERT_FALSE(result.ok());
}

TEST(ServerConfigTest, BuilderAcceptsShardCount) {
  auto result = SystemConfig::builder().n(5).f(1).server_shards(8).build_for_bsr();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().server_shards, 8u);
}

}  // namespace
}  // namespace bftreg::registers
