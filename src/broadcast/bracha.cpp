#include "broadcast/bracha.h"

#include <utility>

namespace bftreg::broadcast {

BrachaPeer::BrachaPeer(ProcessId self, std::vector<ProcessId> peers, size_t f,
                       std::function<void(const ProcessId&, Bytes)> send,
                       std::function<void(Bytes)> deliver)
    : self_(self),
      peers_(std::move(peers)),
      f_(f),
      send_(std::move(send)),
      deliver_(std::move(deliver)) {}

Bytes BrachaPeer::make_frame(Phase phase, const Bytes& blob) {
  Bytes frame;
  frame.reserve(blob.size() + 2);
  frame.push_back(kMagic);
  frame.push_back(static_cast<uint8_t>(phase));
  frame.insert(frame.end(), blob.begin(), blob.end());
  return frame;
}

BrachaPeer::Instance& BrachaPeer::instance_for(const Bytes& blob) {
  const uint64_t digest = fnv1a64(blob.data(), blob.size());
  Instance& inst = instances_[digest];
  if (inst.blob.empty()) inst.blob = blob;
  return inst;
}

void BrachaPeer::send_phase_to_all(Phase phase, const Bytes& blob) {
  const Bytes frame = make_frame(phase, blob);
  for (const ProcessId& peer : peers_) {
    if (peer == self_) continue;
    send_(peer, frame);
  }
}

void BrachaPeer::broadcast(const Bytes& blob) {
  send_phase_to_all(Phase::kSend, blob);
  on_external_send(blob);  // local SEND step
}

void BrachaPeer::on_external_send(const Bytes& blob) {
  Instance& inst = instance_for(blob);
  if (!inst.echoed) {
    inst.echoed = true;
    ++stats_.echoes_sent;
    send_phase_to_all(Phase::kEcho, blob);
    inst.echoes.insert(self_);
    const uint64_t digest = fnv1a64(blob.data(), blob.size());
    maybe_progress(digest, inst);
  }
}

bool BrachaPeer::on_frame(const ProcessId& from, BytesView frame) {
  if (frame.size() < 2 || frame[0] != kMagic) return false;
  const uint8_t phase = frame[1];
  if (phase < static_cast<uint8_t>(Phase::kSend) ||
      phase > static_cast<uint8_t>(Phase::kReady)) {
    return false;
  }
  const Bytes blob(frame.begin() + 2, frame.end());
  const uint64_t digest = fnv1a64(blob.data(), blob.size());
  Instance& inst = instance_for(blob);

  switch (static_cast<Phase>(phase)) {
    case Phase::kSend:
      on_external_send(blob);
      return true;
    case Phase::kEcho:
      inst.echoes.insert(from);
      break;
    case Phase::kReady:
      inst.readies.insert(from);
      break;
  }
  maybe_progress(digest, inst);
  return true;
}

void BrachaPeer::maybe_progress(uint64_t /*digest*/, Instance& inst) {
  // READY on enough ECHOs, or by amplification on f+1 READYs.
  if (!inst.readied && (inst.echoes.size() >= echo_threshold() ||
                        inst.readies.size() >= ready_amplify_threshold())) {
    inst.readied = true;
    ++stats_.readies_sent;
    send_phase_to_all(Phase::kReady, inst.blob);
    inst.readies.insert(self_);
  }
  if (!inst.delivered && inst.readies.size() >= deliver_threshold()) {
    inst.delivered = true;
    ++stats_.delivered;
    deliver_(inst.blob);
  }
}

}  // namespace bftreg::broadcast
