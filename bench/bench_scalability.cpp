// Ablation -- scalability in n: what do the paper's extra servers cost?
//
// BSR needs f more servers than RB-based designs and BCSR another f. This
// bench sweeps the cluster size and shows what actually grows: the number
// of messages per operation is linear in n, the *rounds* stay constant
// (reads 1, writes 2), and the latency -- which waits for the (n-f)-th
// fastest of n replies -- barely moves, because a larger n also gives the
// quorum more fast replies to choose from. Expected shape: flat latency
// and round columns, linear message columns; i.e. the paper's "add f
// servers" trade is cheap in the metrics that matter for latency-sensitive
// applications (Section I-B's motivation).
#include "bench_util.h"

using namespace bftreg;
using namespace bftreg::bench;

int main() {
  std::printf("scalability: cost of growing the server set\n");
  std::printf("uniform delay 0.5-1.5 us, f = max tolerable for each protocol\n\n");

  TextTable table({"protocol", "n", "f", "read med (us)", "write med (us)",
                   "msgs/read", "msgs/write", "read rounds"});

  auto measure = [&](harness::Protocol protocol, size_t n, size_t f) {
    harness::SimCluster cluster(make_options(protocol, n, f, 3, 500, 1500));
    // Warm up one write so reads have something to fetch.
    cluster.write(0, workload::make_value(1, 0, 64));
    cluster.sim().run_until_idle();

    Samples reads, writes;
    uint64_t read_msgs = 0;
    uint64_t write_msgs = 0;
    constexpr int kOps = 100;
    for (int i = 0; i < kOps; ++i) {
      auto before = cluster.sim().metrics().snapshot();
      const auto w = cluster.write(0, workload::make_value(1, i, 64));
      cluster.sim().run_until_idle();
      auto after = cluster.sim().metrics().snapshot();
      writes.add(static_cast<double>(w.completed_at - w.invoked_at));
      write_msgs += after.messages_sent - before.messages_sent;

      before = after;
      const auto r = cluster.read(0);
      cluster.sim().run_until_idle();
      after = cluster.sim().metrics().snapshot();
      reads.add(static_cast<double>(r.completed_at - r.invoked_at));
      read_msgs += after.messages_sent - before.messages_sent;
    }
    // Fixed-delay run for the exact round count.
    const auto fixed = run_quiescent(protocol, n, f, 20, 1, 1000, 1000);
    table.add_row({to_string(protocol), std::to_string(n), std::to_string(f),
                   fmt_us(reads.median()), fmt_us(writes.median()),
                   TextTable::fmt(static_cast<double>(read_msgs) / kOps, 1),
                   TextTable::fmt(static_cast<double>(write_msgs) / kOps, 1),
                   TextTable::fmt(fixed.read_rounds_mode, 1)});
  };

  for (size_t f : {size_t{1}, size_t{2}, size_t{3}, size_t{5}, size_t{10},
                   size_t{15}}) {
    measure(harness::Protocol::kBsr, 4 * f + 1, f);
  }
  for (size_t f : {size_t{1}, size_t{2}, size_t{3}, size_t{5}, size_t{10}}) {
    measure(harness::Protocol::kBcsr, 5 * f + 1, f);
  }
  for (size_t f : {size_t{1}, size_t{3}, size_t{5}, size_t{10}, size_t{15},
                   size_t{20}}) {
    measure(harness::Protocol::kRb, 3 * f + 1, f);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape check: rounds are constant in n for every protocol (reads stay\n"
      "one-shot at n = 61); latency is nearly flat (quorum order statistics);\n"
      "messages grow linearly for the client-server protocols but\n"
      "QUADRATICALLY for the RB baseline's writes (Bracha all-to-all) --\n"
      "the hidden scalability price of assuming reliable broadcast.\n");
  return 0;
}
