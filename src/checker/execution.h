// Execution recording: invocation/response intervals of every operation.
//
// The consistency definitions (Section II-C) are predicates over complete
// operations in an execution; the recorder captures exactly the events they
// quantify over -- invocation and response steps with their (virtual or
// wall-clock) times, the written/returned values, and the protocol tags.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/types.h"

namespace bftreg::checker {

struct OpRecord {
  enum class Kind : uint8_t { kWrite, kRead };

  Kind kind{Kind::kWrite};
  ProcessId client;
  uint64_t id{0};  // recorder-assigned, unique per operation
  TimeNs invoked_at{0};
  TimeNs responded_at{std::numeric_limits<TimeNs>::max()};
  bool completed{false};

  /// Written value (writes) or returned value (reads).
  Bytes value;
  /// The protocol tag: the tag installed by the write, or the tag the read
  /// associated with its returned value. Zero tag when unknown (e.g. BCSR
  /// reads, which decode values without learning a tag).
  Tag tag{};

  bool precedes(const OpRecord& other) const {
    return completed && responded_at <= other.invoked_at;
  }
  bool concurrent_with(const OpRecord& other) const {
    return !precedes(other) && !other.precedes(*this);
  }
};

/// Collects operations as the harness drives clients. Not thread-safe;
/// wrap with external synchronization for the threaded runtime.
class ExecutionRecorder {
 public:
  /// Returns the operation id to pass to `complete`.
  uint64_t begin_write(const ProcessId& client, TimeNs at, Bytes value);
  uint64_t begin_read(const ProcessId& client, TimeNs at);

  void complete_write(uint64_t id, TimeNs at, const Tag& tag);
  void complete_read(uint64_t id, TimeNs at, Bytes value, const Tag& tag);

  const std::vector<OpRecord>& ops() const { return ops_; }
  void clear() { ops_.clear(); }

  std::string dump() const;  // human-readable trace for failure messages

  /// ASCII Gantt chart of the execution: one row per operation, bars over
  /// a common virtual-time axis. Invaluable when staring at a checker
  /// violation -- concurrency is visible at a glance. `width` is the bar
  /// area in characters.
  std::string dump_timeline(size_t width = 64) const;

 private:
  OpRecord& find(uint64_t id);
  std::vector<OpRecord> ops_;
};

}  // namespace bftreg::checker
