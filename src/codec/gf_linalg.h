// Dense linear algebra over GF(2^8).
//
// The Berlekamp-Welch decoder reduces error correction to solving a small
// (possibly overdetermined) linear system; matrix inversion provides the
// precomputed fast-path decoding matrices used for erasure-only stripes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace bftreg::codec {

/// Row-major byte matrix over GF(2^8).
class GfMatrix {
 public:
  GfMatrix() = default;
  GfMatrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  uint8_t& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  uint8_t at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  const uint8_t* row(size_t r) const { return data_.data() + r * cols_; }
  uint8_t* row(size_t r) { return data_.data() + r * cols_; }

  /// Matrix-vector product; `v.size() == cols()`.
  std::vector<uint8_t> apply(const std::vector<uint8_t>& v) const;

 private:
  size_t rows_{0};
  size_t cols_{0};
  std::vector<uint8_t> data_;
};

/// Solves A x = b by Gaussian elimination. The system may be overdetermined
/// (rows >= cols); free variables (if rank < cols) are set to zero. Returns
/// nullopt iff the system is inconsistent.
std::optional<std::vector<uint8_t>> gf_solve(GfMatrix a, std::vector<uint8_t> b);

/// Inverse of a square matrix; nullopt if singular.
std::optional<GfMatrix> gf_invert(const GfMatrix& a);

/// Vandermonde matrix: rows_ evaluation points xs, cols_ powers 0..cols-1.
GfMatrix vandermonde(const std::vector<uint8_t>& xs, size_t cols);

}  // namespace bftreg::codec
