// E1 -- read latency and round counts (paper claims: Definition 3, Section
// I-B, Section I-D).
//
// Claim reproduced: BSR, BCSR and the history variant complete reads in ONE
// round of client-to-server communication; the two-round variant takes two;
// the RB-based baseline's reads are one round only in quiet periods and
// stretch under concurrent writes while write latency always carries the RB
// tax. Expected shape: the "rounds" column is exactly 1 / 1 / 2 / 1 / >=1,
// and under contention the baseline's p99 read latency exceeds BSR's.
#include "bench_util.h"

using namespace bftreg;
using namespace bftreg::bench;

int main() {
  std::printf("E1: read latency (one-shot reads)\n");
  std::printf("fixed one-way delay = 1000 ns => 1 round == 2000 ns\n\n");

  const struct {
    harness::Protocol protocol;
    size_t f;
  } rows[] = {
      {harness::Protocol::kBsr, 1},        {harness::Protocol::kBsr, 2},
      {harness::Protocol::kBsr, 3},        {harness::Protocol::kBsrHistory, 1},
      {harness::Protocol::kBsrHistory, 2}, {harness::Protocol::kBsr2R, 1},
      {harness::Protocol::kBsr2R, 2},      {harness::Protocol::kBcsr, 1},
      {harness::Protocol::kBcsr, 2},       {harness::Protocol::kRb, 1},
      {harness::Protocol::kRb, 2},         {harness::Protocol::kBsrWb, 1},
      {harness::Protocol::kBsrWb, 2},
  };

  TextTable table({"protocol", "n", "f", "read rounds", "quiescent med (us)",
                   "worst-phase med (us)", "worst-phase p99 (us)"});
  for (const auto& row : rows) {
    const size_t n = harness::min_servers(row.protocol, row.f);
    // Fixed delay: exact round counting.
    const auto fixed =
        run_quiescent(row.protocol, n, row.f, 50, 1, 1000, 1000);
    // Uniform random delay, read racing a write; worst arrival phase.
    const auto contended =
        run_contended_worst(row.protocol, n, row.f, 40, 2, 500, 1500);
    table.add_row({to_string(row.protocol), std::to_string(n),
                   std::to_string(row.f), TextTable::fmt(fixed.read_rounds_mode, 1),
                   fmt_us(fixed.reads.median()), fmt_us(contended.reads.median()),
                   fmt_us(contended.reads.p99())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape check: BSR/BCSR/history reads = 1.0 rounds at every n (one-shot,\n"
      "Def. 3) and stay ~1 round even in their worst read-arrival phase; 2R\n"
      "pays exactly one extra round for regularity. The RB baseline's read is\n"
      "also ~1 round against honest servers -- the RB tax lands on its writes\n"
      "(E2: 1.5x) and message complexity (E7: Theta(n^2) per write), which is\n"
      "precisely the paper's argument for dropping RB. The write-back\n"
      "extension (BSR-WB) shows the atomicity price: 2 rounds, as the\n"
      "semi-fast impossibility result [13] requires.\n");
  return 0;
}
