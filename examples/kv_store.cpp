// kv_store: a Byzantine-tolerant key-value store on real threads.
//
// The paper motivates safe registers with geo-replicated key-value storage
// (Cassandra, Redis; Section I). This example runs ONE five-server BSR
// cluster on the thread-per-process runtime (actual OS threads, wall-clock
// delays) and multiplexes every key over it as a separate shared variable
// (object id) -- the model's "finite set of shared variables" of Section
// II-B. One server is Byzantine throughout. The store is then driven with
// the read-heavy mix from the paper's TAO footnote (99.8% reads), printing
// wall-clock latency percentiles that show why one-shot reads matter.
//
// The whole store runs through a single RegisterClient: the operation
// multiplexer gives every key (object id) and every in-flight operation its
// own lane, so no per-key client pool -- and no provisioning keys up
// front -- is needed.
//
// With `--keys N` the demo is replaced by a bulk phase: N distinct keys are
// loaded through the same single multiplexed client (a window of pipelined
// writes), then a sample is read back through batched one-shot reads. This
// is the "no longer toy scale" mode -- the compact object store keeps the
// per-key server footprint flat, so N=100000 runs in the unit suite.
//
//   ./build/examples/kv_store
//   ./build/examples/kv_store --keys 100000
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "adversary/byzantine_server.h"
#include "common/stats.h"
#include "registers/registers.h"
#include "runtime/thread_network.h"
#include "workload/workload.h"

using namespace bftreg;

namespace {

/// One 5-server BSR cluster serving arbitrarily many keys: each key maps
/// to an object id, all served by one multiplexing client.
class KvStore {
 public:
  /// `delay_lo_ns`/`delay_hi_ns` bound the emulated one-way network delay.
  explicit KvStore(uint64_t delay_lo_ns = 50'000,
                   uint64_t delay_hi_ns = 200'000) {
    auto built = registers::SystemConfig::builder().n(5).f(1).build_for_bsr();
    assert(built.ok());
    config_ = built.value();

    runtime::RuntimeConfig rc;
    rc.seed = 7;
    rc.delay = std::make_unique<net::UniformDelay>(delay_lo_ns, delay_hi_ns);
    net_ = std::make_unique<runtime::ThreadNetwork>(std::move(rc));

    for (uint32_t i = 0; i + 1 < config_.n; ++i) {
      servers_.push_back(std::make_unique<registers::RegisterServer>(
          ProcessId::server(i), config_, net_.get(), Bytes{}));
      net_->add_process(ProcessId::server(i), servers_.back().get());
    }
    // The last server is Byzantine: it fabricates tags and values for
    // every key. The f+1 witness rule makes it irrelevant.
    adversary::ServerContext ctx;
    ctx.self = ProcessId::server(4);
    ctx.config = config_;
    ctx.transport = net_.get();
    ctx.rng = Rng(999);
    byzantine_ = std::make_unique<adversary::ByzantineServer>(
        std::move(ctx), adversary::make_strategy(
                            adversary::StrategyKind::kFabricate, 999));
    net_->add_process(ProcessId::server(4), byzantine_.get());

    client_ = std::make_unique<registers::RegisterClient>(
        ProcessId::writer(0), config_, net_.get());
    net_->add_process(client_->id(), client_.get());
    blocking_ = std::make_unique<registers::BlockingRegisterClient>(*client_);
    net_->start();
  }

  ~KvStore() { net_->stop(); }

  void put(const std::string& key, const std::string& value) {
    blocking_->write(object_for(key), Bytes(value.begin(), value.end()));
  }

  std::string get(const std::string& key) {
    const auto r = blocking_->read(object_for(key));
    return std::string(r.value.begin(), r.value.end());
  }

  /// Multi-get: ONE batched one-shot round for any number of keys.
  std::map<std::string, std::string> get_all(
      const std::vector<std::string>& keys) {
    std::vector<uint32_t> objects;
    objects.reserve(keys.size());
    for (const auto& key : keys) objects.push_back(object_for(key));
    const auto batch = blocking_->read_batch(objects);
    std::map<std::string, std::string> out;
    for (size_t i = 0; i < keys.size(); ++i) {
      const auto& v = batch.results.at(i).value;
      out[keys[i]] = std::string(v.begin(), v.end());
    }
    return out;
  }

  size_t keys() const { return objects_.size(); }

  /// Pipelined bulk load: writes "key:i" -> "v<i>" for i in [0, n) keeping
  /// up to `window` writes in flight through the one multiplexed client.
  /// Blocks the calling thread until every write has completed.
  void bulk_load(size_t n, size_t window) {
    // Assign object ids up front so the issue loop below never touches the
    // (non-thread-safe) name table from the client's execution context.
    std::vector<uint32_t> objects(n);
    for (size_t i = 0; i < n; ++i) {
      objects[i] = object_for("key:" + std::to_string(i));
    }
    std::mutex m;
    std::condition_variable cv;
    size_t completed = 0;
    size_t next = 0;
    // Runs only in the client's execution context, so `next` needs no lock:
    // the mailbox serializes the initial burst and every completion callback.
    std::function<void()> issue_one = [&] {
      const size_t i = next++;
      const std::string value = "v" + std::to_string(i);
      client_->write(objects[i], Bytes(value.begin(), value.end()),
                     [&, n](const registers::WriteResult&) {
                       if (next < n) issue_one();
                       std::lock_guard<std::mutex> lock(m);
                       if (++completed == n) cv.notify_one();
                     });
    };
    net_->post(client_->id(), [&, n, window] {
      for (size_t i = 0; i < std::min(window, n); ++i) issue_one();
    });
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return completed == n; });
  }

 private:
  uint32_t object_for(const std::string& key) {
    const auto it = objects_.find(key);
    if (it != objects_.end()) return it->second;
    const auto object = static_cast<uint32_t>(objects_.size());
    objects_.emplace(key, object);
    return object;
  }

  registers::SystemConfig config_;
  std::unique_ptr<runtime::ThreadNetwork> net_;
  std::vector<std::unique_ptr<registers::RegisterServer>> servers_;
  std::unique_ptr<adversary::ByzantineServer> byzantine_;
  std::unique_ptr<registers::RegisterClient> client_;
  std::unique_ptr<registers::BlockingRegisterClient> blocking_;
  std::map<std::string, uint32_t> objects_;
};

/// Bulk mode (--keys N): load N distinct keys, then spot-check a sample
/// with batched one-shot reads. Returns the process exit code.
int run_bulk(size_t n) {
  std::printf(
      "byzantine-tolerant kv store, bulk mode\n"
      "one BSR cluster (n=5, f=1, server 4 Byzantine), %zu keys through one\n"
      "multiplexed client, real threads, 2-10us one-way delays\n\n",
      n);
  // Same-rack delays: bulk mode exists to prove object-count scale, not to
  // re-measure WAN latency (the default demo already does that).
  KvStore store(2'000, 10'000);

  const auto t0 = std::chrono::steady_clock::now();
  store.bulk_load(n, /*window=*/256);
  const double load_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("loaded %zu keys in %.2f s (%.0f writes/s)\n", n, load_s,
              static_cast<double>(n) / load_s);

  // Spot-check: one batched one-shot round over a stride of keys must read
  // back exactly what the bulk phase wrote.
  std::vector<std::string> sample;
  const size_t stride = std::max<size_t>(1, n / 64);
  std::vector<size_t> indices;
  for (size_t i = 0; i < n; i += stride) indices.push_back(i);
  for (const size_t i : indices) sample.push_back("key:" + std::to_string(i));
  const auto batch = store.get_all(sample);
  size_t bad = 0;
  for (size_t s = 0; s < indices.size(); ++s) {
    const std::string want = "v" + std::to_string(indices[s]);
    if (batch.at(sample[s]) != want) ++bad;
  }
  std::printf("spot-check: %zu/%zu sampled keys correct (one batched round)\n",
              indices.size() - bad, indices.size());
  if (bad != 0 || store.keys() != n) {
    std::printf("FAILED\n");
    return 1;
  }
  std::printf("\n%zu keys on one cluster: the compact object store keeps the\n"
              "per-key server footprint flat, so key count is no longer the\n"
              "binding constraint -- see docs/PERF.md.\n",
              n);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t keys = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--keys") == 0 && i + 1 < argc) {
      keys = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--keys=", 7) == 0) {
      keys = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--keys N]\n", argv[0]);
      return 2;
    }
  }
  if (keys > 0) return run_bulk(keys);

  std::printf(
      "byzantine-tolerant kv store\n"
      "one BSR cluster (n=5, f=1, server 4 Byzantine), one object id per key,\n"
      "one multiplexed client, real threads, 50-200us one-way delays\n\n");

  KvStore store;

  store.put("user:42", "{\"name\":\"ada\"}");
  store.put("user:43", "{\"name\":\"grace\"}");
  store.put("counter", "0");
  std::printf("get user:42 -> %s\n", store.get("user:42").c_str());
  std::printf("get user:43 -> %s\n", store.get("user:43").c_str());
  std::printf("get counter -> %s\n", store.get("counter").c_str());
  const auto all = store.get_all({"user:42", "user:43", "counter"});
  std::printf("multi-get (%zu keys, one round) -> ok=%d\n\n", all.size(),
              all.at("user:42") == store.get("user:42"));

  // TAO-style read-heavy traffic (99.8% reads, Section I footnote 1)
  // against one hot key.
  auto opts = workload::WorkloadOptions::facebook_tao(500, 48);
  workload::WorkloadGenerator gen(opts);
  Samples read_lat;
  Samples write_lat;
  uint64_t version = 0;
  while (!gen.done()) {
    const auto op = gen.next();
    const auto t0 = std::chrono::steady_clock::now();
    if (op.is_read) {
      (void)store.get("user:42");
    } else {
      store.put("user:42", "v" + std::to_string(version++));
    }
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    (op.is_read ? read_lat : write_lat).add(us);
  }

  std::printf("TAO mix (%zu ops, %.1f%% reads) wall-clock latency per op:\n",
              opts.num_ops, opts.read_ratio * 100);
  std::printf("  reads : n=%zu  median=%.0f us  p99=%.0f us\n", read_lat.count(),
              read_lat.median(), read_lat.p99());
  if (write_lat.count() > 0) {
    std::printf("  writes: n=%zu  median=%.0f us  p99=%.0f us\n",
                write_lat.count(), write_lat.median(), write_lat.p99());
  }
  std::printf("\none-shot reads cost one round trip; writes cost two -- the\n"
              "read-heavy mix is exactly where BSR's trade-off pays off.\n");
  return 0;
}
