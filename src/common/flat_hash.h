// Open-addressing flat hash map for the million-object store.
//
// `std::map` (and `std::unordered_map`) cost one heap node per entry plus
// pointer-chasing on every lookup; at millions of objects the nodes alone
// dominate the resident set and every probe is a cache miss. FlatHashMap
// stores entries inline in two parallel arrays -- a one-byte control array
// (empty / tombstone / full) and a slot array holding the key/value pairs --
// so a lookup touches one control byte and, on a hit, one slot, both on
// adjacent cache lines.
//
// Design constraints (deliberately narrower than a general-purpose map):
//   * Linear probing over a power-of-two capacity. The probe sequence is
//     trivially prefetchable, and the registers workload hashes object ids
//     through fnv1a64 (common/types.h), which mixes well enough that
//     clustering is not a concern at the <= 7/8 load factor we enforce.
//   * Erase writes a tombstone; tombstones are dropped wholesale on the
//     next rehash. The deferred-reader maps (registers/server.h) churn
//     entries, the object tables almost never erase -- both are fine with
//     lazy reclamation.
//   * Iteration order is unspecified (a control-array scan). Callers that
//     need determinism sort, as they already did for std::map-free walks.
//   * NOT thread-safe, and rehashing moves value objects. Anything that
//     needs pointer stability (NewestCache with its seqlock slots) lives
//     behind an index stored here, never inside a slot -- see
//     registers/object_store.h.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace bftreg::common {

template <typename K, typename V, typename Hash = std::hash<K>>
class FlatHashMap {
 public:
  using value_type = std::pair<K, V>;

  FlatHashMap() = default;
  explicit FlatHashMap(size_t expected) { reserve(expected); }

  FlatHashMap(const FlatHashMap&) = delete;
  FlatHashMap& operator=(const FlatHashMap&) = delete;

  FlatHashMap(FlatHashMap&& other) noexcept { swap(other); }
  FlatHashMap& operator=(FlatHashMap&& other) noexcept {
    if (this != &other) {
      destroy();
      swap(other);
    }
    return *this;
  }

  ~FlatHashMap() { destroy(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return cap_; }

  /// Grows so that `expected` entries fit without another rehash.
  void reserve(size_t expected) {
    // Invert the 7/8 load bound, rounding up to the next power of two.
    size_t need = expected + expected / 7 + 1;
    if (need <= cap_) return;
    size_t cap = kMinCapacity;
    while (cap < need) cap <<= 1;
    rehash(cap);
  }

  V* find(const K& key) {
    if (cap_ == 0) return nullptr;
    const size_t idx = probe(key);
    return ctrl_[idx] == kFull ? &slot(idx)->second : nullptr;
  }
  const V* find(const K& key) const {
    return const_cast<FlatHashMap*>(this)->find(key);
  }
  bool contains(const K& key) const { return find(key) != nullptr; }

  /// Inserts default-or-given value if absent; returns (value*, inserted).
  template <typename... Args>
  std::pair<V*, bool> try_emplace(const K& key, Args&&... args) {
    if (load_needs_growth()) rehash(cap_ == 0 ? kMinCapacity : cap_ * 2);
    size_t idx = probe(key);
    if (ctrl_[idx] == kFull) return {&slot(idx)->second, false};
    if (ctrl_[idx] == kTombstone) --tombstones_;
    ctrl_[idx] = kFull;
    ::new (static_cast<void*>(slot(idx)))
        value_type(key, V(std::forward<Args>(args)...));
    ++size_;
    return {&slot(idx)->second, true};
  }

  V& operator[](const K& key) { return *try_emplace(key).first; }

  bool erase(const K& key) {
    if (cap_ == 0) return false;
    const size_t idx = probe(key);
    if (ctrl_[idx] != kFull) return false;
    slot(idx)->~value_type();
    ctrl_[idx] = kTombstone;
    ++tombstones_;
    --size_;
    return true;
  }

  void clear() {
    if (cap_ == 0) return;
    for (size_t i = 0; i < cap_; ++i) {
      if (ctrl_[i] == kFull) slot(i)->~value_type();
      ctrl_[i] = kEmpty;
    }
    size_ = tombstones_ = 0;
  }

  /// Visits every entry as fn(const K&, V&). Unspecified order; do not
  /// insert or erase from inside.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (size_t i = 0; i < cap_; ++i) {
      if (ctrl_[i] == kFull) fn(slot(i)->first, slot(i)->second);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (size_t i = 0; i < cap_; ++i) {
      if (ctrl_[i] == kFull) fn(slot(i)->first, slot(i)->second);
    }
  }

  /// Bytes owned by the table arrays (resident-cost accounting).
  size_t allocated_bytes() const {
    return cap_ * (sizeof(value_type) + 1);
  }

 private:
  static constexpr size_t kMinCapacity = 8;
  static constexpr uint8_t kEmpty = 0;
  static constexpr uint8_t kTombstone = 1;
  static constexpr uint8_t kFull = 2;

  value_type* slot(size_t i) {
    return std::launder(reinterpret_cast<value_type*>(slots_.get()) + i);
  }
  const value_type* slot(size_t i) const {
    return std::launder(reinterpret_cast<const value_type*>(slots_.get()) + i);
  }

  bool load_needs_growth() const {
    // Grow at 7/8 occupancy counting tombstones: the rehash drops them, so
    // a churn-heavy map (deferred readers) reclaims instead of ballooning.
    return cap_ == 0 || (size_ + tombstones_ + 1) * 8 > cap_ * 7;
  }

  /// Returns the index of `key`'s slot (ctrl kFull) or of the insertion
  /// slot (first tombstone seen, else the empty that ended the probe).
  size_t probe(const K& key) const {
    const size_t mask = cap_ - 1;
    size_t idx = Hash{}(key) & mask;
    size_t first_tombstone = SIZE_MAX;
    for (;;) {
      const uint8_t c = ctrl_[idx];
      if (c == kFull && slot_key_equals(idx, key)) return idx;
      if (c == kEmpty) {
        return first_tombstone != SIZE_MAX ? first_tombstone : idx;
      }
      if (c == kTombstone && first_tombstone == SIZE_MAX) first_tombstone = idx;
      idx = (idx + 1) & mask;
    }
  }

  bool slot_key_equals(size_t idx, const K& key) const {
    return slot(idx)->first == key;
  }

  void rehash(size_t new_cap) {
    assert((new_cap & (new_cap - 1)) == 0 && "capacity must be a power of 2");
    static_assert(alignof(value_type) <= alignof(std::max_align_t),
                  "slot storage relies on new[]'s fundamental alignment");
    std::unique_ptr<uint8_t[]> old_ctrl = std::move(ctrl_);
    std::unique_ptr<unsigned char[]> old_slots = std::move(slots_);
    const size_t old_cap = cap_;

    ctrl_ = std::make_unique<uint8_t[]>(new_cap);
    slots_ = std::make_unique<unsigned char[]>(new_cap * sizeof(value_type));
    cap_ = new_cap;
    size_ = tombstones_ = 0;

    for (size_t i = 0; i < old_cap; ++i) {
      if (old_ctrl[i] != kFull) continue;
      auto* entry = std::launder(
          reinterpret_cast<value_type*>(old_slots.get()) + i);
      const size_t idx = probe(entry->first);
      ctrl_[idx] = kFull;
      ::new (static_cast<void*>(slot(idx))) value_type(std::move(*entry));
      ++size_;
      entry->~value_type();
    }
  }

  void destroy() {
    clear();
    slots_.reset();
    ctrl_.reset();
    cap_ = 0;
  }

  void swap(FlatHashMap& other) noexcept {
    std::swap(ctrl_, other.ctrl_);
    std::swap(slots_, other.slots_);
    std::swap(cap_, other.cap_);
    std::swap(size_, other.size_);
    std::swap(tombstones_, other.tombstones_);
  }

  std::unique_ptr<uint8_t[]> ctrl_;
  std::unique_ptr<unsigned char[]> slots_;
  size_t cap_{0};
  size_t size_{0};
  size_t tombstones_{0};
};

}  // namespace bftreg::common
