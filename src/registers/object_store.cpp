#include "registers/object_store.h"

#include <algorithm>

namespace bftreg::registers {

// --- NewestCache ------------------------------------------------------------

void NewestCache::publish(const Tag& tag, BytesView value) {
  InlineEntry entry;
  entry.tag_num = tag.num;
  entry.writer_index = tag.writer.index;
  entry.writer_role = static_cast<uint8_t>(tag.writer.role);
  if (value.size() <= kInlineValueCap) {
    entry.oversize = 0;
    entry.len = static_cast<uint16_t>(value.size());
    if (!value.empty()) std::memcpy(entry.data, value.data(), value.size());
  } else {
    // Pointer first, sentinel second: a reader that observes the sentinel
    // through the seqlock's release/acquire pair also observes this store.
    oversize_.store(std::make_shared<const TaggedValue>(
                        TaggedValue{tag, Bytes(value.begin(), value.end())}),
                    std::memory_order_release);
    entry.oversize = 1;
  }
  inline_.publish(entry);
}

bool NewestCache::read(Tag* tag, Bytes* value) const {
  InlineEntry entry;
  if (!inline_.read(&entry)) return false;
  if (entry.oversize != 0) {
    // The pointee is immutable and carries its own tag, so even if the
    // pointer has advanced past the snapshot we read, the pair returned is
    // self-consistent (and newer -- monotonic, like the seqlock itself).
    const auto pair = oversize_.load(std::memory_order_acquire);
    if (pair == nullptr) return false;  // unreachable; defensive
    *tag = pair->tag;
    if (value != nullptr) *value = pair->value;
    return true;
  }
  *tag = Tag{entry.tag_num,
             ProcessId{static_cast<Role>(entry.writer_role),
                       entry.writer_index}};
  if (value != nullptr) value->assign(entry.data, entry.data + entry.len);
  return true;
}

// --- NewestCacheIndex -------------------------------------------------------

void NewestCacheIndex::insert(uint32_t object, const NewestCache* cache) {
  if (used_in_last_ == kNodesPerChunk) {
    node_chunks_.push_back(std::make_unique<Node[]>(kNodesPerChunk));
    used_in_last_ = 0;
  }
  Node* node = &node_chunks_.back()[used_in_last_++];
  node->object = object;
  node->cache = cache;
  std::atomic<Node*>& head = heads_[object & (kBuckets - 1)];
  node->next = head.load(std::memory_order_relaxed);
  // Publication point: the release pairs with find()'s acquire, ordering
  // the node's fields (and everything reachable through them) before any
  // reader can traverse to it.
  head.store(node, std::memory_order_release);
}

const NewestCache* NewestCacheIndex::find(uint32_t object) const {
  const std::atomic<Node*>& head = heads_[object & (kBuckets - 1)];
  for (const Node* n = head.load(std::memory_order_acquire); n != nullptr;
       n = n->next) {
    if (n->object == object) return n->cache;
  }
  return nullptr;
}

void NewestCacheIndex::collect(std::vector<uint32_t>* out) const {
  for (const std::atomic<Node*>& head : heads_) {
    for (const Node* n = head.load(std::memory_order_acquire); n != nullptr;
         n = n->next) {
      out->push_back(n->object);
    }
  }
}

// --- ObjectLog --------------------------------------------------------------

namespace {

void release_ref(ValueRef& ref, common::SlabArena& arena) {
  if (ref.len > ValueRef::kInlineCap) arena.deallocate(ref.ptr, ref.len);
  ref.len = 0;
}

}  // namespace

const LogEntry* ObjectLog::find(const Tag& tag) const {
  const LogEntry* lo = begin();
  const LogEntry* hi = end();
  while (lo < hi) {
    const LogEntry* mid = lo + (hi - lo) / 2;
    if (mid->tag < tag) {
      lo = mid + 1;
    } else if (tag < mid->tag) {
      hi = mid;
    } else {
      return mid;
    }
  }
  return nullptr;
}

void ObjectLog::grow(common::SlabArena& arena) {
  const uint32_t new_cap = cap_ == 0 ? 2 : cap_ * 2;
  auto* fresh = reinterpret_cast<LogEntry*>(
      arena.allocate(static_cast<size_t>(new_cap) * sizeof(LogEntry)));
  if (count_ > 0) {
    std::memcpy(fresh, slots_ + head_, count_ * sizeof(LogEntry));
  }
  if (slots_ != nullptr) {
    arena.deallocate(reinterpret_cast<uint8_t*>(slots_),
                     static_cast<size_t>(cap_) * sizeof(LogEntry));
  }
  slots_ = fresh;
  head_ = 0;
  cap_ = new_cap;
}

bool ObjectLog::insert(const Tag& tag, const ValueRef& val,
                       common::SlabArena& arena) {
  // Position of the first entry >= tag, relative to head_.
  uint32_t pos = count_;
  if (count_ > 0 && !(newest().tag < tag)) {
    const LogEntry* at = find(tag);
    if (at != nullptr) return false;
    const LogEntry* lo = begin();
    const LogEntry* hi = end();
    while (lo < hi) {
      const LogEntry* mid = lo + (hi - lo) / 2;
      if (mid->tag < tag) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    pos = static_cast<uint32_t>(lo - begin());
  }

  if (count_ == cap_) grow(arena);

  if (pos == count_ && head_ + count_ < cap_) {
    // Append fast path: tags are monotone per writer, so nearly every
    // insert lands here.
    slots_[head_ + count_] = LogEntry{tag, val};
  } else if (head_ > 0 && pos <= count_ / 2) {
    // Room at the front and the prefix is the shorter side.
    std::memmove(slots_ + head_ - 1, slots_ + head_, pos * sizeof(LogEntry));
    --head_;
    slots_[head_ + pos] = LogEntry{tag, val};
  } else {
    if (head_ + count_ == cap_) {
      // Back is full: reclaim the front slack (GC created it).
      assert(head_ > 0 && "grow() guarantees spare capacity");
      std::memmove(slots_, slots_ + head_, count_ * sizeof(LogEntry));
      head_ = 0;
    }
    std::memmove(slots_ + head_ + pos + 1, slots_ + head_ + pos,
                 (count_ - pos) * sizeof(LogEntry));
    slots_[head_ + pos] = LogEntry{tag, val};
  }
  ++count_;
  return true;
}

void ObjectLog::pop_oldest(common::SlabArena& arena) {
  assert(count_ > 0);
  release_ref(slots_[head_].val, arena);
  ++head_;
  --count_;
  if (count_ == 0) head_ = 0;
}

void ObjectLog::destroy(common::SlabArena& arena) {
  for (uint32_t i = 0; i < count_; ++i) {
    release_ref(slots_[head_ + i].val, arena);
  }
  if (slots_ != nullptr) {
    arena.deallocate(reinterpret_cast<uint8_t*>(slots_),
                     static_cast<size_t>(cap_) * sizeof(LogEntry));
  }
  slots_ = nullptr;
  head_ = count_ = cap_ = 0;
}

size_t ObjectLog::value_bytes() const {
  size_t total = 0;
  for (const LogEntry& e : *this) total += e.val.len;
  return total;
}

// --- CompactObjectStore -----------------------------------------------------

CompactObjectStore::CompactObjectStore(Bytes initial, StorePolicy policy,
                                       size_t max_history)
    : initial_(std::move(initial)),
      policy_(policy),
      max_history_(max_history) {}

CompactObjectStore::~CompactObjectStore() {
  // Values and log arrays live in arena_ whose chunks are freed wholesale;
  // per-log destroy() is only needed for huge blocks that bypassed the
  // arena's size classes (they are tracked individually).
  for (size_t c = 0; c < chunks_.size(); ++c) {
    const size_t n = (c + 1 == chunks_.size()) ? used_in_last_ : kRecsPerChunk;
    for (size_t i = 0; i < n; ++i) chunks_[c][i].log.destroy(arena_);
  }
}

ValueRef CompactObjectStore::make_ref(BytesView value) {
  ValueRef ref;
  ref.len = static_cast<uint32_t>(value.size());
  if (ref.len <= ValueRef::kInlineCap) {
    if (ref.len > 0) std::memcpy(ref.inl, value.data(), ref.len);
  } else {
    ref.ptr = arena_.allocate(ref.len);
    std::memcpy(ref.ptr, value.data(), ref.len);
  }
  return ref;
}

std::pair<CompactObjectStore::ObjectRec*, size_t>
CompactObjectStore::materialize(uint32_t object) {
  auto [slot, inserted] = map_.try_emplace(object, 0u);
  if (!inserted) return {&rec_at(*slot), 0};

  if (used_in_last_ == kRecsPerChunk) {
    chunks_.push_back(std::make_unique<ObjectRec[]>(kRecsPerChunk));
    used_in_last_ = 0;
  }
  const uint32_t idx =
      static_cast<uint32_t>((chunks_.size() - 1) * kRecsPerChunk +
                            used_in_last_);
  ++used_in_last_;
  ++count_;
  *slot = idx;

  ObjectRec& rec = rec_at(idx);
  rec.object = object;
  rec.log.insert(Tag::initial(), make_ref(initial_), arena_);
  rec.newest.publish(Tag::initial(), initial_);
  // Index entry last: a cross-shard reader that finds the cache sees it
  // already holding the {t0, initial} snapshot. Records never move, so the
  // pointer survives future inserts.
  index_.insert(object, &rec.newest);
  return {&rec, initial_.size()};
}

CompactObjectStore::ApplyResult CompactObjectStore::apply(uint32_t object,
                                                          const Tag& tag,
                                                          BytesView value) {
  ApplyResult out;
  auto [rec, init_bytes] = materialize(object);
  out.rec = rec;
  out.bytes_delta = static_cast<long long>(init_bytes);

  switch (policy_) {
    case StorePolicy::kMaxOnly:
      // Fig. 3 line 5: add only if the tag beats everything in L.
      if (!(rec->log.newest().tag < tag)) return out;
      break;
    case StorePolicy::kAll:
      break;
  }
  if (!rec->log.insert(tag, make_ref(value), arena_)) return out;
  out.added = true;
  out.bytes_delta += static_cast<long long>(value.size());

  // Optional GC: drop the lowest-tagged entries beyond the budget. The
  // newest pair always survives, so QUERY-TAG / QUERY-DATA semantics are
  // untouched; only history-consulting reads feel this.
  if (max_history_ > 0) {
    while (rec->log.size() > max_history_) {
      out.bytes_delta -= static_cast<long long>(rec->log.oldest().val.len);
      rec->log.pop_oldest(arena_);
    }
  }
  return out;
}

void CompactObjectStore::publish(ObjectRec& rec) {
  const LogEntry& newest = rec.log.newest();
  rec.newest.publish(newest.tag, newest.val.view());
}

size_t CompactObjectStore::walk_value_bytes() const {
  size_t total = 0;
  for_each([&total](const ObjectRec& rec) { total += rec.log.value_bytes(); });
  return total;
}

size_t CompactObjectStore::resident_bytes() const {
  return chunks_.size() * kRecsPerChunk * sizeof(ObjectRec) +
         map_.allocated_bytes() + arena_.allocated_bytes() +
         index_.allocated_bytes();
}

}  // namespace bftreg::registers
