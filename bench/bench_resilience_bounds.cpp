// E5 -- tightness of the resilience bounds (Theorems 2, 5; Lemma 4,
// Theorem 6).
//
// For each f, the Theorem 5 proof adversary + schedule is run against BSR
// at n = 4f (below the bound) and n = 4f+1 (at the bound), and the safety
// checker passes verdict; likewise the Theorem 6 element mix is decoded at
// n = 5f and n = 5f+1. Additionally, randomized adversarial executions at
// the bound must stay 100% safe. Expected shape: every below-bound row
// VIOLATES, every at-bound row HOLDS -- the bounds are exactly tight.
#include "bench_util.h"
#include "checker/consistency.h"
#include "codec/mds_code.h"
#include "harness/scenarios.h"

using namespace bftreg;
using namespace bftreg::bench;

namespace {

std::string theorem5_verdict(size_t n, size_t f) {
  harness::ClusterOptions o;
  o.protocol = harness::Protocol::kBsr;
  o.config.n = n;
  o.config.f = f;
  o.num_writers = 2;
  o.num_readers = 1;
  o.seed = 5;
  harness::SimCluster cluster(o);
  for (size_t i = 0; i < f; ++i) {
    cluster.set_byzantine(i, std::make_unique<harness::LaggingLiar>());
  }
  harness::run_theorem5_schedule(cluster);
  checker::CheckOptions copts;
  return checker::check_safety(cluster.recorder().ops(), copts).ok ? "HOLDS"
                                                                   : "VIOLATED";
}

std::string theorem6_verdict(size_t n, size_t f) {
  // k = n - 5f if possible, else the proof's k = n - f - 2e with e = f.
  const size_t k = n > 5 * f ? n - 5 * f : n - 3 * f;
  const codec::MdsCode code(n, k);
  Bytes v1(64, 0xAA);
  Bytes v2(64, 0xBB);
  const auto e1 = code.encode(v1);
  const auto e2 = code.encode(v2);
  // W1 reaches servers 0..n-2, W2 reaches 0 and 2..n-1; the reader hears
  // servers 0..n-2 with server 0 Byzantine-stale and server 1 honestly
  // stale (exactly the Theorem 6 distribution, generalized).
  std::vector<std::optional<Bytes>> received(n);
  received[0] = e1[0];
  for (size_t i = 1; i <= f; ++i) received[i] = e1[i];      // stale honest
  for (size_t i = f + 1; i < n - f; ++i) received[i] = e2[i];  // fresh
  const auto decoded = code.decode(received);
  if (decoded && *decoded == v2) return "HOLDS";
  return "VIOLATED";  // undecodable (or wrong): the one-shot read fails
}

double random_safety_rate(size_t n, size_t f, size_t trials) {
  size_t safe = 0;
  for (uint64_t seed = 1; seed <= trials; ++seed) {
    harness::ClusterOptions o =
        make_options(harness::Protocol::kBsr, n, f, seed, 500, 1500);
    o.num_writers = 2;
    o.num_readers = 2;
    harness::SimCluster cluster(o);
    Rng rng(seed);
    for (size_t i = 0; i < f; ++i) {
      cluster.set_byzantine(rng.uniform(n),
                            adversary::kAllStrategyKinds[rng.uniform(
                                std::size(adversary::kAllStrategyKinds))]);
    }
    std::vector<std::optional<uint64_t>> wop(2), rop(2);
    uint64_t counter = 0;
    for (int step = 0; step < 40; ++step) {
      for (auto& s : wop) {
        if (s && cluster.op_done(*s)) s.reset();
      }
      for (auto& s : rop) {
        if (s && cluster.op_done(*s)) s.reset();
      }
      const size_t c = rng.uniform(2);
      if (rng.bernoulli(0.4)) {
        if (!wop[c]) {
          wop[c] = cluster.start_write(c, workload::make_value(seed, counter++, 24));
        }
      } else if (!rop[c]) {
        rop[c] = cluster.start_read(c);
      }
      cluster.sim().run_until_time(cluster.sim().now() + rng.uniform(4000));
    }
    for (auto& s : wop) {
      if (s) cluster.await(*s);
    }
    for (auto& s : rop) {
      if (s) cluster.await(*s);
    }
    checker::CheckOptions copts;
    copts.strict_validity = true;
    if (checker::check_safety(cluster.recorder().ops(), copts).ok) ++safe;
  }
  return 100.0 * static_cast<double>(safe) / static_cast<double>(trials);
}

}  // namespace

int main() {
  std::printf("E5: resilience bounds are tight (Thms. 5 & 6)\n\n");

  TextTable t5({"register", "f", "n", "relation", "proof schedule", "random execs safe"});
  for (size_t f = 1; f <= 3; ++f) {
    t5.add_row({"BSR (replicated)", std::to_string(f), std::to_string(4 * f),
                "n = 4f", theorem5_verdict(4 * f, f), "-"});
    t5.add_row({"BSR (replicated)", std::to_string(f), std::to_string(4 * f + 1),
                "n = 4f+1", theorem5_verdict(4 * f + 1, f),
                TextTable::fmt(random_safety_rate(4 * f + 1, f, 25), 0) + "%"});
  }
  for (size_t f = 1; f <= 3; ++f) {
    t5.add_row({"BCSR (coded)", std::to_string(f), std::to_string(5 * f),
                "n = 5f", theorem6_verdict(5 * f, f), "-"});
    t5.add_row({"BCSR (coded)", std::to_string(f), std::to_string(5 * f + 1),
                "n = 5f+1", theorem6_verdict(5 * f + 1, f), "-"});
  }
  std::printf("%s\n", t5.render().c_str());
  std::printf(
      "shape check: each proof schedule VIOLATES safety exactly one server\n"
      "below the paper's bound and HOLDS at it; randomized adversarial\n"
      "executions at the bound are 100%% safe.\n");
  return 0;
}
