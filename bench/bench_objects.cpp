// Object-count scale benchmark of the storage layer (no network): the
// compact store (registers/object_store.h: flat-hash object table, ObjectRec
// pool, slab-allocated values, small-vector log rings) against a faithful
// in-bench replica of the layout it replaced (std::map<uint32_t,
// ObjectState> per shard, std::map<Tag, Bytes> list L per object, 256-byte
// inline NewestCache slots).
//
//   bench_objects                 1M-object footprint + YCSB throughput table
//   bench_objects --json=PATH     machine-readable snapshot (schema
//                                 bftreg-bench-objects-v1, rows keyed
//                                 store/workload/dist/keys/size; metrics
//                                 bytes_per_object -- gated as a CEILING by
//                                 tools/bench_regress -- and ops_per_sec,
//                                 gated as a floor)
//                 [--quick]       same key count, smaller op budgets
//                 [--keys=N]      object count (default 1,000,000)
//
// Two claims are enforced in-binary (exit 1), independent of any baseline
// file, so the comparison cannot drift as hosts change:
//   * resident bytes/object (malloc-level, mallinfo2 delta across the load
//     phase) of the compact store is >= 3x smaller than the legacy layout
//     at the headline 16-byte value size;
//   * YCSB-B/zipfian ops/s on the compact store is no worse than the legacy
//     store (with 15% measurement slack).
//
// Throughput drives the stores through the same per-op sequence the server
// uses uncoalesced -- update = apply + publish, read = newest log entry,
// RMW = read then apply -- so a regression in either the hash path or the
// seqlock publish path lands in these numbers.
#if defined(__GLIBC__) || defined(__linux__)
#include <malloc.h>
#endif

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/seqlock.h"
#include "common/types.h"
#include "registers/object_store.h"
#include "workload.h"

namespace bftreg::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kDefaultKeys = 1'000'000;
constexpr size_t kMaxHistory = 4;
constexpr double kZipfTheta = 0.99;
/// In-binary acceptance: compact footprint must beat legacy by this factor.
constexpr double kRequiredShrink = 3.0;
/// YCSB-B/zipfian throughput slack (wall-clock noise, not a contract).
constexpr double kOpsSlack = 0.85;

/// Heap bytes currently handed out by malloc (arena + mmapped blocks).
/// 0 when the libc cannot report it; memory rows are then skipped.
size_t heap_in_use() {
#if defined(__GLIBC__) && (__GLIBC__ > 2 || __GLIBC_MINOR__ >= 33)
  const struct mallinfo2 mi = mallinfo2();
  return static_cast<size_t>(mi.uordblks) + static_cast<size_t>(mi.hblkhd);
#else
  return 0;
#endif
}

// --- the pre-compaction layout, replicated byte for byte ------------------
// This is the storage half of registers/server.h as it stood before the
// compact store: the point of keeping it here (and nowhere else) is that
// the "before" column of docs/PERF.md stays measurable at any commit.

/// The common::Seqlock of the pre-compaction era, which still carried
/// alignas(64) on each slot: with the 272-byte inline entry that rounds the
/// pair of slots to 640 bytes and the whole lock to 704 -- padding the
/// current Seqlock no longer pays. Same publish protocol, so the measured
/// publish cost is the old one too.
template <typename T>
class LegacySeqlock {
 public:
  void publish(const T& value) {
    const uint32_t next = 1 - active_.load(std::memory_order_relaxed);
    Slot& slot = slots_[next];
    const uint64_t seq = slot.seq.load(std::memory_order_relaxed);
    slot.seq.store(seq + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    uint64_t words[kWords] = {};
    std::memcpy(words, &value, sizeof(T));
    for (size_t i = 0; i < kWords; ++i) {
      slot.words[i].store(words[i], std::memory_order_relaxed);
    }
    slot.version.store(++next_version_, std::memory_order_relaxed);
    slot.seq.store(seq + 2, std::memory_order_release);
    active_.store(next, std::memory_order_release);
  }

  bool read(T* out) const {
    for (;;) {
      const uint32_t idx = active_.load(std::memory_order_acquire);
      const Slot& slot = slots_[idx];
      const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 == 0) return false;
      if ((s1 & 1) != 0) continue;
      uint64_t words[kWords];
      for (size_t i = 0; i < kWords; ++i) {
        words[i] = slot.words[i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) continue;
      std::memcpy(out, words, sizeof(T));
      return true;
    }
  }

 private:
  static constexpr size_t kWords = (sizeof(T) + 7) / 8;

  struct alignas(64) Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> version{0};
    std::atomic<uint64_t> words[kWords]{};
  };

  Slot slots_[2];
  std::atomic<uint32_t> active_{0};
  uint64_t next_version_{0};
};

class LegacyNewestCache {
 public:
  static constexpr size_t kInlineValueCap = 256;

  void publish(const Tag& tag, const Bytes& value) {
    InlineEntry e;
    e.tag_num = tag.num;
    e.writer_index = tag.writer.index;
    e.writer_role = static_cast<uint8_t>(tag.writer.role);
    if (value.size() <= kInlineValueCap) {
      e.len = static_cast<uint16_t>(value.size());
      std::memcpy(e.data, value.data(), value.size());
    } else {
      oversize_.store(std::make_shared<const registers::TaggedValue>(
                          registers::TaggedValue{tag, value}),
                      std::memory_order_release);
      e.oversize = 1;
    }
    inline_.publish(e);
  }

  bool read(Tag* tag, Bytes* value) const {
    InlineEntry e;
    if (!inline_.read(&e)) return false;
    if (e.oversize != 0) {
      const auto tv = oversize_.load(std::memory_order_acquire);
      *tag = tv->tag;
      if (value != nullptr) *value = tv->value;
      return true;
    }
    *tag = Tag{e.tag_num, ProcessId{static_cast<Role>(e.writer_role),
                                     e.writer_index}};
    if (value != nullptr) value->assign(e.data, e.data + e.len);
    return true;
  }

 private:
  struct InlineEntry {
    uint64_t tag_num{0};
    uint32_t writer_index{0};
    uint8_t writer_role{0};
    uint8_t oversize{0};
    uint16_t len{0};
    uint8_t data[kInlineValueCap]{};
  };

  LegacySeqlock<InlineEntry> inline_;
  std::atomic<std::shared_ptr<const registers::TaggedValue>> oversize_;
};

class LegacyStore {
 public:
  LegacyStore(Bytes initial, registers::StorePolicy policy, size_t max_history)
      : initial_(std::move(initial)),
        policy_(policy),
        max_history_(max_history) {}

  bool apply(uint32_t object, const Tag& tag, Bytes value) {
    ObjectState& state = materialize(object);
    auto& store = state.log;
    bool added = false;
    switch (policy_) {
      case registers::StorePolicy::kMaxOnly:
        if (tag > store.rbegin()->first) {
          store.emplace(tag, std::move(value));
          added = true;
        }
        break;
      case registers::StorePolicy::kAll:
        added = store.emplace(tag, std::move(value)).second;
        break;
    }
    if (!added) return false;
    if (max_history_ > 0) {
      while (store.size() > max_history_) store.erase(store.begin());
    }
    const auto newest = store.rbegin();
    state.newest.publish(newest->first, newest->second);
    return true;
  }

  /// Newest (tag, value) from the owner-shard path (the log itself).
  std::pair<Tag, const Bytes*> newest(uint32_t object) const {
    const auto it = objects_.find(object);
    const auto entry = it->second.log.rbegin();
    return {entry->first, &entry->second};
  }

 private:
  struct ObjectState {
    std::map<Tag, Bytes> log;
    LegacyNewestCache newest;
  };

  ObjectState& materialize(uint32_t object) {
    auto [it, inserted] = objects_.try_emplace(object);
    if (inserted) {
      it->second.log.emplace(Tag::initial(), initial_);
      it->second.newest.publish(Tag::initial(), initial_);
    }
    return it->second;
  }

  Bytes initial_;
  registers::StorePolicy policy_;
  size_t max_history_;
  std::map<uint32_t, ObjectState> objects_;
};

/// Uniform driving surface over the two stores. Updates run the full
/// uncoalesced server sequence (apply + seqlock publish); reads return the
/// newest log entry, folded into `sink` so the loop cannot be elided.
struct CompactAdapter {
  static constexpr const char* kName = "compact";

  registers::CompactObjectStore store;
  uint64_t tag_seq{1};

  CompactAdapter(Bytes initial, size_t /*keys*/)
      : store(std::move(initial), registers::StorePolicy::kMaxOnly,
              kMaxHistory) {}

  void put(uint32_t key, BytesView value) {
    const Tag tag{++tag_seq, ProcessId::writer(0)};
    const auto res = store.apply(key, tag, value);
    if (res.added) store.publish(*res.rec);
  }
  uint64_t read(uint32_t key) const {
    const auto* rec = store.find(key);
    const auto& e = rec->log.newest();
    return e.tag.num ^ e.val.view().size();
  }
};

struct LegacyAdapter {
  static constexpr const char* kName = "legacy";

  LegacyStore store;
  uint64_t tag_seq{1};

  LegacyAdapter(Bytes initial, size_t /*keys*/)
      : store(std::move(initial), registers::StorePolicy::kMaxOnly,
              kMaxHistory) {}

  void put(uint32_t key, BytesView value) {
    const Tag tag{++tag_seq, ProcessId::writer(0)};
    store.apply(key, tag, Bytes(value.begin(), value.end()));
  }
  uint64_t read(uint32_t key) const {
    const auto [tag, value] = store.newest(key);
    return tag.num ^ value->size();
  }
};

struct MixPoint {
  const YcsbMix* mix;
  KeyDist dist;
};

struct Row {
  const char* store;
  const char* workload;  // "resident" for footprint rows
  const char* dist;
  size_t keys;
  size_t value_size;
  double bytes_per_object{-1};
  double ops_per_sec{-1};
};

/// One update-value per slot, reused round-robin: value generation must not
/// show up in the measured op cost (both stores would pay it equally, but
/// it would flatten the difference between them).
std::vector<Bytes> value_pool(uint64_t seed, size_t value_size) {
  std::vector<Bytes> pool;
  pool.reserve(64);
  for (uint64_t i = 0; i < 64; ++i) {
    pool.push_back(workload::make_value(seed, i + 1, value_size));
  }
  return pool;
}

template <typename Adapter>
double run_mix(Adapter& a, const MixPoint& point, size_t keys, size_t ops,
               size_t value_size, uint64_t seed, uint64_t* sink) {
  YcsbWorkload wl(*point.mix, point.dist, keys, seed, kZipfTheta);
  const std::vector<Bytes> pool = value_pool(seed, value_size);
  const auto t0 = Clock::now();
  for (size_t i = 0; i < ops; ++i) {
    const YcsbOp op = wl.next();
    const auto key = static_cast<uint32_t>(op.key);
    switch (op.kind) {
      case YcsbOpKind::kRead:
        *sink ^= a.read(key);
        break;
      case YcsbOpKind::kUpdate:
        a.put(key, pool[i % pool.size()]);
        break;
      case YcsbOpKind::kReadModifyWrite:
        *sink ^= a.read(key);
        a.put(key, pool[i % pool.size()]);
        break;
    }
  }
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  return static_cast<double>(ops) / secs;
}

/// Loads `keys` objects (one put each on top of the {t0, initial} seed) and
/// runs every mix point, appending one row per measurement.
template <typename Adapter>
void run_store(const std::vector<MixPoint>& points, size_t keys, size_t ops,
               size_t value_size, uint64_t seed, std::vector<Row>* rows,
               uint64_t* sink) {
  const size_t heap_before = heap_in_use();
  Adapter a(workload::make_value(seed, 0, value_size), keys);
  {
    const std::vector<Bytes> pool = value_pool(seed, value_size);
    for (size_t key = 0; key < keys; ++key) {
      a.put(static_cast<uint32_t>(key), pool[key % pool.size()]);
    }
  }
  const size_t heap_after = heap_in_use();

  Row mem{Adapter::kName, "resident", "none", keys, value_size, -1, -1};
  if (heap_after > heap_before) {
    mem.bytes_per_object =
        static_cast<double>(heap_after - heap_before) /
        static_cast<double>(keys);
    rows->push_back(mem);
  }
  for (const MixPoint& p : points) {
    Row r{Adapter::kName, p.mix->name, to_string(p.dist), keys, value_size,
          -1, -1};
    r.ops_per_sec = run_mix(a, p, keys, ops, value_size, seed, sink);
    rows->push_back(r);
    std::fprintf(stderr, "%-8s %-8s %-8s keys=%zu size=%zu %14.0f ops/s\n",
                 r.store, r.workload, r.dist, keys, value_size, r.ops_per_sec);
  }
}

const Row* find_row(const std::vector<Row>& rows, const char* store,
                    const char* workload, const char* dist, size_t value_size) {
  for (const Row& r : rows) {
    if (std::strcmp(r.store, store) == 0 &&
        std::strcmp(r.workload, workload) == 0 &&
        std::strcmp(r.dist, dist) == 0 && r.value_size == value_size) {
      return &r;
    }
  }
  return nullptr;
}

int run(const BenchArgs& args, size_t keys) {
  const size_t ops = args.quick ? 250'000 : 2'000'000;
  // The headline grid: footprint at two value sizes (16 B rides inline in
  // both the log entry and the seqlock slot; 64 B forces the slab and the
  // oversize publish path), throughput mixes at the headline size.
  const std::vector<MixPoint> mixes{{&kYcsbB, KeyDist::kZipfian},
                                    {&kYcsbB, KeyDist::kUniform},
                                    {&kYcsbC, KeyDist::kZipfian},
                                    {&kYcsbA, KeyDist::kZipfian},
                                    {&kYcsbF, KeyDist::kZipfian}};
  const std::vector<MixPoint> no_mixes;

  std::vector<Row> rows;
  uint64_t sink = 0;
  run_store<LegacyAdapter>(mixes, keys, ops, 16, args.seed, &rows, &sink);
  run_store<LegacyAdapter>(no_mixes, keys, ops, 64, args.seed, &rows, &sink);
  run_store<CompactAdapter>(mixes, keys, ops, 16, args.seed, &rows, &sink);
  run_store<CompactAdapter>(no_mixes, keys, ops, 64, args.seed, &rows, &sink);

  std::fprintf(stderr, "(sink %llu)\n", static_cast<unsigned long long>(sink));
  for (const Row& r : rows) {
    if (r.bytes_per_object >= 0) {
      std::fprintf(stderr, "%-8s size=%-3zu keys=%zu %10.1f bytes/object\n",
                   r.store, r.value_size, r.keys, r.bytes_per_object);
    }
  }

  if (!args.json_path.empty()) {
    FILE* out = std::fopen(args.json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_objects: cannot open %s for writing\n",
                   args.json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"schema\": \"bftreg-bench-objects-v1\",\n");
    std::fprintf(out, "  \"quick\": %s,\n  \"results\": [",
                 args.quick ? "true" : "false");
    bool first = true;
    for (const Row& r : rows) {
      std::fprintf(out,
                   "%s\n    {\"store\": \"%s\", \"workload\": \"%s\", "
                   "\"dist\": \"%s\", \"keys\": %zu, \"size\": %zu",
                   first ? "" : ",", r.store, r.workload, r.dist, r.keys,
                   r.value_size);
      if (r.bytes_per_object >= 0) {
        std::fprintf(out, ", \"bytes_per_object\": %.1f", r.bytes_per_object);
      }
      if (r.ops_per_sec >= 0) {
        std::fprintf(out, ", \"ops_per_sec\": %.0f", r.ops_per_sec);
      }
      std::fprintf(out, "}");
      first = false;
    }
    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
    std::fprintf(stderr, "bench_objects: wrote %s\n", args.json_path.c_str());
  }

  // In-binary acceptance, host-independent (ratios of two same-host runs).
  int failures = 0;
  const Row* legacy_mem = find_row(rows, "legacy", "resident", "none", 16);
  const Row* compact_mem = find_row(rows, "compact", "resident", "none", 16);
  if (legacy_mem != nullptr && compact_mem != nullptr) {
    const double shrink =
        legacy_mem->bytes_per_object / compact_mem->bytes_per_object;
    std::fprintf(stderr,
                 "footprint: %.1f -> %.1f bytes/object (%.2fx, need %.1fx)\n",
                 legacy_mem->bytes_per_object, compact_mem->bytes_per_object,
                 shrink, kRequiredShrink);
    if (shrink < kRequiredShrink) {
      std::fprintf(stderr, "FAIL: compact store shrinks footprint only %.2fx\n",
                   shrink);
      ++failures;
    }
  }
  const Row* legacy_b = find_row(rows, "legacy", "ycsb_b", "zipfian", 16);
  const Row* compact_b = find_row(rows, "compact", "ycsb_b", "zipfian", 16);
  if (legacy_b != nullptr && compact_b != nullptr &&
      compact_b->ops_per_sec < kOpsSlack * legacy_b->ops_per_sec) {
    std::fprintf(stderr,
                 "FAIL: YCSB-B/zipfian %.0f ops/s on compact vs %.0f legacy\n",
                 compact_b->ops_per_sec, legacy_b->ops_per_sec);
    ++failures;
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace bftreg::bench

int main(int argc, char** argv) {
  size_t keys = bftreg::bench::kDefaultKeys;
  const auto args = bftreg::bench::BenchArgs::parse(
      argc, argv, "[--keys=N]", [&keys](const char* a) {
        if (std::strncmp(a, "--keys=", 7) != 0) return false;
        keys = std::strtoull(a + 7, nullptr, 10);
        return keys > 0;
      });
  if (!args) return 2;
  return bftreg::bench::run(*args, keys);
}
