// BSR write protocol: Fig. 1.
//
// Two phases:
//   get-tag:  QUERY-TAG to all servers, wait for n-f TAG-RESPs, select the
//             (f+1)-th highest tag t. The rank-(f+1) selection is what makes
//             the phase Byzantine-robust: at most f fabricated sky-high tags
//             can sit above it, so the selected tag is bounded by a tag an
//             honest server actually reported, yet it is >= the tag of every
//             complete preceding write (Lemma 2, Case 1).
//   put-data: (t.num + 1, w) with the new value to all servers, wait for
//             n-f ACKs.
//
// This class is the low-level, single-operation client (start_write asserts
// the paper's one-operation-per-client well-formedness). The protocol logic
// lives in WriteOp (protocol_ops.h); applications wanting pipelined writes
// should use RegisterClient (client.h).
#pragma once

#include <functional>
#include <optional>

#include "codec/mds_code.h"
#include "net/transport.h"
#include "registers/config.h"
#include "registers/op_mux.h"
#include "registers/protocol_ops.h"
#include "registers/results.h"

namespace bftreg::registers {

class BsrWriter : public net::IProcess {
 public:
  using Callback = std::function<void(const WriteResult&)>;

  /// `object` selects which shared variable this writer writes
  /// (Section II-B); 0 is the default register.
  BsrWriter(ProcessId self, SystemConfig config, net::Transport* transport,
            uint32_t object = 0);

  /// Begins write(v). Must be invoked in this process's execution context
  /// (via Transport::post or from within one of its handlers).
  void start_write(Bytes value, Callback callback);

  void on_message(const net::Envelope& env) override { mux_.on_message(env); }

  bool busy() const { return !mux_.idle(); }
  const ProcessId& id() const { return mux_.id(); }
  uint64_t writes_completed() const { return writes_completed_; }

 protected:
  /// BCSR flavor: put-data ships per-server coded elements of `code`
  /// instead of the replicated value (Fig. 4 line 7).
  BsrWriter(ProcessId self, SystemConfig config, net::Transport* transport,
            uint32_t object, codec::MdsCode code);

 private:
  OpMux mux_;
  const uint32_t object_;
  std::optional<codec::MdsCode> code_;  // nullopt = replicated put-data
  LocalState state_;
  uint64_t writes_completed_{0};
};

}  // namespace bftreg::registers
