// Executable versions of the Section V lower-bound arguments.
//
// The theorems say NO algorithm can do better; an implementation can still
// make them concrete by exhibiting, for our algorithms, the exact adversary
// + schedule from each proof and watching the checker flag the violation at
// n = 4f (replication) / n = 5f (coding), while the same adversary is
// harmless at the paper's resilience (n = 4f+1 / 5f+1).
#include <gtest/gtest.h>

#include <map>

#include "checker/consistency.h"
#include "codec/mds_code.h"
#include "harness/scenarios.h"
#include "harness/sim_cluster.h"

namespace bftreg::harness {
namespace {

using checker::CheckOptions;
using checker::check_safety;

Bytes val(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(Theorem5Test, BsrViolatesSafetyAtFourF) {
  // n = 4, f = 1: the proof's scenario defeats the witness rule.
  ClusterOptions o;
  o.protocol = Protocol::kBsr;
  o.config.n = 4;
  o.config.f = 1;
  o.num_writers = 2;
  o.num_readers = 1;
  o.seed = 5;
  SimCluster cluster(o);
  cluster.set_byzantine(0, std::make_unique<harness::LaggingLiar>());

  const Bytes got = run_theorem5_schedule(cluster);
  // s0 lies v1, s1 honestly has only v1, s2 has v2: v1 collects f+1 = 2
  // witnesses and wins -- stale read.
  EXPECT_EQ(got, val("v1"));

  CheckOptions copts;
  const auto res = check_safety(cluster.recorder().ops(), copts);
  EXPECT_FALSE(res.ok) << "n = 4f must admit a safety violation (Thm. 5)";
}

TEST(Theorem5Test, SameAdversaryIsHarmlessAtFourFPlusOne) {
  ClusterOptions o;
  o.protocol = Protocol::kBsr;
  o.config.n = 5;
  o.config.f = 1;
  o.num_writers = 2;
  o.num_readers = 1;
  o.seed = 5;
  SimCluster cluster(o);
  cluster.set_byzantine(0, std::make_unique<harness::LaggingLiar>());

  const Bytes got = run_theorem5_schedule(cluster);
  EXPECT_EQ(got, val("v2")) << "at n = 4f+1 the newer value has f+1 witnesses too,"
                               " and the higher tag wins";

  CheckOptions copts;
  const auto res = check_safety(cluster.recorder().ops(), copts);
  EXPECT_TRUE(res.ok) << res.violation;
}

TEST(Lemma5Test, WitnessThresholdBelowFPlusOneAdoptsFabrications) {
  // Ablation: drop the witness threshold to 1 and a single Byzantine server
  // feeds the reader a fabricated value -- the Lemma 5 violation.
  ClusterOptions o;
  o.protocol = Protocol::kBsr;
  o.config.n = 5;
  o.config.f = 1;
  o.config.witness_threshold_override = 1;  // deliberately broken
  o.num_writers = 1;
  o.num_readers = 1;
  o.seed = 7;
  SimCluster cluster(o);
  cluster.set_byzantine(2, adversary::StrategyKind::kFabricate);

  cluster.write(0, val("real"));
  const auto r = cluster.read(0);
  // The fabricated pair has 1 witness and an enormous tag: with threshold 1
  // it wins over the real value.
  EXPECT_NE(r.value, val("real"));

  CheckOptions copts;
  copts.strict_validity = true;
  EXPECT_FALSE(check_safety(cluster.recorder().ops(), copts).ok);
}

TEST(Lemma5Test, PaperThresholdRejectsTheSameAttack) {
  ClusterOptions o;
  o.protocol = Protocol::kBsr;
  o.config.n = 5;
  o.config.f = 1;  // threshold f+1 = 2
  o.num_writers = 1;
  o.num_readers = 1;
  o.seed = 7;
  SimCluster cluster(o);
  cluster.set_byzantine(2, adversary::StrategyKind::kFabricate);
  cluster.write(0, val("real"));
  EXPECT_EQ(cluster.read(0).value, val("real"));
}

// Theorem 6 at the codec level: with n = 5f (here 5, f = 1) the proof's
// element distribution admits no consistent decode -- the reader cannot
// tell the two writes apart and Phi^{-1} must fail.
TEST(Theorem6Test, CodedDecodeImpossibleAtFiveF) {
  // [n=5, k=2] (k = n-f-2e with e = 1): W1's codeword at s0..s3, W2's at
  // s0, s2, s3, s4; reader hears s0 (Byzantine: stale element), s1 (honest
  // stale), s2, s3 (fresh). Received: 2 stale + 2 fresh of 4 -- distance 2
  // from both codewords, beyond the e = 1 budget.
  const codec::MdsCode code(5, 2);
  Bytes v1(64, 0xAA);
  Bytes v2(64, 0xBB);
  const auto e1 = code.encode(v1);
  const auto e2 = code.encode(v2);

  std::vector<std::optional<Bytes>> received(5);
  received[0] = e1[0];  // Byzantine lie: stale element
  received[1] = e1[1];  // honest but never saw W2
  received[2] = e2[2];
  received[3] = e2[3];
  // s4 slow: erasure.

  const auto decoded = code.decode(received);
  // No codeword lies within the error budget: decode must fail (and the
  // protocol falls back to v0, which violates safety after W2 completed --
  // hence 5f servers are not enough, Theorem 6).
  EXPECT_FALSE(decoded.has_value());
}

TEST(Theorem6Test, OneMoreServerMakesTheSameScheduleDecodable) {
  // n = 5f+1 = 6, k = 1: same adversarial mix, but now the reader gets
  // n-f = 5 elements of which 2 are erroneous -- within the (m-k)/2 = 2
  // budget, so the fresh value decodes.
  const auto code = codec::MdsCode::for_bcsr(6, 1);
  Bytes v1(64, 0xAA);
  Bytes v2(64, 0xBB);
  const auto e1 = code.encode(v1);
  const auto e2 = code.encode(v2);

  std::vector<std::optional<Bytes>> received(6);
  received[0] = e1[0];  // Byzantine stale lie
  received[1] = e1[1];  // honest stale
  received[2] = e2[2];
  received[3] = e2[3];
  received[4] = e2[4];
  // s5 slow: erasure.

  const auto decoded = code.decode(received);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, v2);
}

// Lemma 6/7 flavor: a BSR write that waits for more than n-f replies can
// never complete once f servers crash.
TEST(Lemma6Test, WaitingBeyondNMinusFForfeitsLiveness) {
  ClusterOptions o;
  o.protocol = Protocol::kBsr;
  o.config.n = 5;
  o.config.f = 1;
  o.num_writers = 1;
  o.num_readers = 1;
  SimCluster cluster(o);
  cluster.start();
  cluster.crash_server(4);

  // The paper's quorum completes...
  cluster.write(0, val("fine"));

  // ...but an operation demanding n responses stalls forever: drive the
  // read manually against all five and observe the simulator go idle with
  // the op still pending.
  const uint64_t rid = cluster.start_read(0);
  cluster.await(rid);  // n-f quorum: still completes
  EXPECT_TRUE(cluster.op_done(rid));

  // Direct check: with one server crashed only n-1 = 4 distinct responses
  // can ever arrive, so a 5-response wait would never be satisfied. (We
  // assert the bound rather than hanging a test on it.)
  EXPECT_EQ(cluster.options().config.quorum(), 4u);
}

}  // namespace
}  // namespace bftreg::harness
