// TCP loopback transport tests: frame transport, authentication, and the
// full BSR protocol running over real kernel sockets.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <set>
#include <thread>

#include "registers/registers.h"
#include "runtime/thread_network.h"
#include "socknet/tcp_network.h"

namespace bftreg::socknet {
namespace {

class Counter final : public net::IProcess {
 public:
  explicit Counter(ProcessId self, net::Transport* transport = nullptr)
      : self_(self), transport_(transport) {}

  void on_start() override { started_.store(true); }

  void on_message(const net::Envelope& env) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      payloads_.push_back(env.payload.to_bytes());
    }
    count_.fetch_add(1);
    if (transport_ != nullptr && !env.payload.empty() && env.payload[0] == 'P') {
      transport_->send(self_, env.from, Bytes{'R'});
    }
  }

  bool started() const { return started_.load(); }
  int count() const { return count_.load(); }
  Bytes payload(size_t i) {
    std::lock_guard<std::mutex> lock(mu_);
    return payloads_.at(i);
  }

 private:
  ProcessId self_;
  net::Transport* transport_;
  std::atomic<bool> started_{false};
  std::atomic<int> count_{0};
  std::mutex mu_;
  std::vector<Bytes> payloads_;
};

bool wait_for(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

TEST(TcpNetworkTest, BindsDistinctEphemeralPorts) {
  TcpNetwork net(TcpConfig{});
  Counter a(ProcessId::server(0));
  Counter b(ProcessId::server(1));
  net.add_process(ProcessId::server(0), &a);
  net.add_process(ProcessId::server(1), &b);
  EXPECT_NE(net.port_of(ProcessId::server(0)), 0);
  EXPECT_NE(net.port_of(ProcessId::server(1)), 0);
  EXPECT_NE(net.port_of(ProcessId::server(0)), net.port_of(ProcessId::server(1)));
}

TEST(TcpNetworkTest, DeliversFramesOverLoopback) {
  TcpNetwork net(TcpConfig{});
  Counter a(ProcessId::writer(0));
  Counter b(ProcessId::server(0));
  net.add_process(ProcessId::writer(0), &a);
  net.add_process(ProcessId::server(0), &b);
  net.start();
  EXPECT_TRUE(wait_for([&] { return a.started() && b.started(); }));

  net.send(ProcessId::writer(0), ProcessId::server(0), Bytes{1, 2, 3, 4});
  EXPECT_TRUE(wait_for([&] { return b.count() == 1; }));
  EXPECT_EQ(b.payload(0), (Bytes{1, 2, 3, 4}));
  net.stop();
}

TEST(TcpNetworkTest, RequestReplyOverSockets) {
  TcpNetwork net(TcpConfig{});
  Counter client(ProcessId::reader(0), &net);
  Counter server(ProcessId::server(0), &net);
  net.add_process(ProcessId::reader(0), &client);
  net.add_process(ProcessId::server(0), &server);
  net.start();

  net.send(ProcessId::reader(0), ProcessId::server(0), Bytes{'P'});
  EXPECT_TRUE(wait_for([&] { return client.count() == 1; }));
  EXPECT_EQ(client.payload(0), (Bytes{'R'}));
  net.stop();
}

TEST(TcpNetworkTest, ManyMessagesArriveInOrderPerConnection) {
  TcpNetwork net(TcpConfig{});
  Counter dst(ProcessId::server(0));
  net.add_process(ProcessId::server(0), &dst);
  Counter src(ProcessId::writer(0));
  net.add_process(ProcessId::writer(0), &src);
  net.start();

  constexpr int kCount = 200;
  for (int i = 0; i < kCount; ++i) {
    net.send(ProcessId::writer(0), ProcessId::server(0),
             Bytes{static_cast<uint8_t>(i)});
  }
  EXPECT_TRUE(wait_for([&] { return dst.count() == kCount; }));
  // TCP gives per-connection FIFO: payloads arrive in send order.
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(dst.payload(static_cast<size_t>(i))[0], static_cast<uint8_t>(i));
  }
  net.stop();
}

TEST(TcpNetworkTest, LargePayloadRoundTrip) {
  TcpNetwork net(TcpConfig{});
  Counter dst(ProcessId::server(0));
  net.add_process(ProcessId::server(0), &dst);
  Counter src(ProcessId::writer(0));
  net.add_process(ProcessId::writer(0), &src);
  net.start();

  Bytes big(1 << 20);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i * 13);
  net.send(ProcessId::writer(0), ProcessId::server(0), big);
  EXPECT_TRUE(wait_for([&] { return dst.count() == 1; }));
  EXPECT_EQ(dst.payload(0), big);
  net.stop();
}

TEST(TcpNetworkTest, StopIsIdempotent) {
  TcpNetwork net(TcpConfig{});
  Counter a(ProcessId::server(0));
  net.add_process(ProcessId::server(0), &a);
  net.start();
  net.stop();
  net.stop();
}

TEST(TcpNetworkTest, StopBeforeStartIsANoOp) {
  TcpNetwork net(TcpConfig{});
  Counter a(ProcessId::server(0));
  net.add_process(ProcessId::server(0), &a);
  net.stop();  // documented no-op: nothing running, nothing to join
  EXPECT_FALSE(a.started());
  // The network is still usable afterwards.
  net.start();
  EXPECT_TRUE(wait_for([&] { return a.started(); }));
  net.stop();
}

TEST(TcpNetworkTest, ShardHashIsStableAcrossInstances) {
  // loop_shard_of must be a pure function of (pid, loop_shards): the same
  // pid lands on the same shard every call and in every network built with
  // the same shard count, so tests and tools can reason about placement.
  TcpConfig cfg;
  cfg.options.loop_shards = 4;
  std::vector<ProcessId> pids;
  for (uint32_t i = 0; i < 16; ++i) pids.push_back(ProcessId::server(i));
  for (uint32_t i = 0; i < 16; ++i) pids.push_back(ProcessId::reader(i));

  std::vector<size_t> first;
  {
    TcpNetwork net(cfg);
    std::deque<Counter> procs;
    for (const auto& pid : pids) procs.emplace_back(pid);
    for (size_t i = 0; i < pids.size(); ++i) {
      net.add_process(pids[i], &procs[i], /*listen=*/false);
    }
    for (const auto& pid : pids) {
      const size_t s = net.test_hooks().loop_shard_of(pid);
      EXPECT_LT(s, cfg.options.loop_shards);
      EXPECT_EQ(s, net.test_hooks().loop_shard_of(pid));  // stable per call
      first.push_back(s);
    }
  }
  {
    TcpNetwork net(cfg);
    std::deque<Counter> procs;
    for (const auto& pid : pids) procs.emplace_back(pid);
    for (size_t i = 0; i < pids.size(); ++i) {
      net.add_process(pids[i], &procs[i], /*listen=*/false);
    }
    for (size_t i = 0; i < pids.size(); ++i) {
      EXPECT_EQ(net.test_hooks().loop_shard_of(pids[i]), first[i]);
    }
  }
  // The hash spreads: 32 pids over 4 shards should not collapse onto one.
  std::set<size_t> used(first.begin(), first.end());
  EXPECT_GT(used.size(), 1u);
}

TEST(TcpNetworkTest, ListenLessClientGetsRepliesOverItsOwnConnection) {
  // A listen=false endpoint has no acceptor: replies must ride the duplex
  // connection the client itself dialed (adopted by the server on the
  // first authenticated frame).
  TcpNetwork net(TcpConfig{});
  Counter client(ProcessId::reader(7), &net);
  Counter server(ProcessId::server(0), &net);
  net.add_process(ProcessId::reader(7), &client, /*listen=*/false);
  net.add_process(ProcessId::server(0), &server);
  EXPECT_EQ(net.port_of(ProcessId::reader(7)), 0);
  net.start();

  net.send(ProcessId::reader(7), ProcessId::server(0), Bytes{'P'});
  EXPECT_TRUE(wait_for([&] { return client.count() == 1; }));
  EXPECT_EQ(client.payload(0), (Bytes{'R'}));
  net.stop();
}

TEST(TcpNetworkTest, PartialWriteResumesAcrossEpolloutWakes) {
  // Freeze the receiver's read path so the sender's socket buffer fills:
  // sendmsg goes short, the flush arms EPOLLOUT, and resuming reads lets
  // the kernel drain -- every queued byte must then arrive via readiness
  // wakes picking up mid-frame (wr_offset).
  TcpConfig cfg;
  cfg.options.max_outbox_bytes = 256 * 1024 * 1024;  // don't shed in this test
  TcpNetwork net(cfg);
  Counter src(ProcessId::writer(0));
  Counter dst(ProcessId::server(0));
  net.add_process(ProcessId::writer(0), &src);
  net.add_process(ProcessId::server(0), &dst);
  net.start();
  ASSERT_TRUE(wait_for([&] { return src.started() && dst.started(); }));

  // Establish the connection first so pause_reads has a conn to disarm.
  net.send(ProcessId::writer(0), ProcessId::server(0), Bytes{'x'});
  ASSERT_TRUE(wait_for([&] { return dst.count() == 1; }));

  net.test_hooks().pause_reads(ProcessId::server(0), true);
  // Large payloads: far beyond any socket buffer, so writes MUST go short.
  constexpr int kMsgs = 8;
  Bytes big(4 << 20);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i * 31);
  for (int i = 0; i < kMsgs; ++i) {
    net.send(ProcessId::writer(0), ProcessId::server(0), big);
  }
  // The writer blocks against the frozen receiver and parks on EPOLLOUT.
  ASSERT_TRUE(wait_for([&] {
    return net.test_hooks().send_stats(ProcessId::writer(0)).epollout_arms > 0;
  }));

  net.test_hooks().pause_reads(ProcessId::server(0), false);
  ASSERT_TRUE(wait_for([&] { return dst.count() == 1 + kMsgs; }, 20000));
  EXPECT_EQ(dst.payload(kMsgs), big);

  const auto stats = net.test_hooks().send_stats(ProcessId::writer(0));
  EXPECT_GT(stats.epollout_arms, 0u);
  EXPECT_GT(stats.epollout_wakes, 0u);
  EXPECT_GT(stats.partial_writes, 0u);
  EXPECT_EQ(net.metrics().snapshot().messages_dropped, 0u);
  net.stop();
}

TEST(TcpNetworkTest, OutboxShedIsCountedInNetworkMetrics) {
  TcpConfig cfg;
  cfg.options.max_outbox_bytes = 4096;
  TcpNetwork net(cfg);
  Counter src(ProcessId::writer(0));
  Counter dst(ProcessId::server(0));
  net.add_process(ProcessId::writer(0), &src);
  net.add_process(ProcessId::server(0), &dst);
  net.start();
  ASSERT_TRUE(wait_for([&] { return src.started() && dst.started(); }));

  net.test_hooks().pause_writes(ProcessId::writer(0), true);
  const Bytes payload(1024, 0x11);
  const uint64_t before = net.metrics().snapshot().messages_dropped;
  for (int i = 0; i < 32; ++i) {
    net.send(ProcessId::writer(0), ProcessId::server(0), payload);
  }
  // Every shed frame shows up in the shared transport metrics, so the
  // harness sees backpressure without transport-specific hooks.
  const uint64_t after = net.metrics().snapshot().messages_dropped;
  EXPECT_GT(after, before);
  net.test_hooks().pause_writes(ProcessId::writer(0), false);
  net.stop();
}

TEST(TcpNetworkTest, SenderReconnectsAfterPeerSocketDies) {
  TcpNetwork net(TcpConfig{});
  Counter src(ProcessId::writer(0));
  Counter dst(ProcessId::server(0));
  net.add_process(ProcessId::writer(0), &src);
  net.add_process(ProcessId::server(0), &dst);
  net.start();

  net.send(ProcessId::writer(0), ProcessId::server(0), Bytes{'a'});
  ASSERT_TRUE(wait_for([&] { return dst.count() == 1; }));

  // Kill every connection the destination has accepted: the sender's cached
  // fd is now dead. Frames in flight when the writer first notices may be
  // dropped (reliable channels are per-connection), but the writer must
  // reconnect and later sends must flow again.
  net.test_hooks().shutdown_inbound(ProcessId::server(0));
  const int before = dst.count();
  ASSERT_TRUE(wait_for([&] {
    net.send(ProcessId::writer(0), ProcessId::server(0), Bytes{'b'});
    return dst.count() > before;
  }));
  net.stop();
}

TEST(TcpNetworkTest, FullOutboxShedsAndDrainsAfterResume) {
  TcpConfig cfg;
  cfg.options.max_outbox_bytes = 4096;  // a handful of frames
  TcpNetwork net(cfg);
  Counter src(ProcessId::writer(0));
  Counter dst(ProcessId::server(0));
  net.add_process(ProcessId::writer(0), &src);
  net.add_process(ProcessId::server(0), &dst);
  net.start();
  ASSERT_TRUE(wait_for([&] { return src.started() && dst.started(); }));

  net.test_hooks().pause_writes(ProcessId::writer(0), true);
  constexpr int kSends = 64;
  const Bytes payload(256, 0x5a);
  for (int i = 0; i < kSends; ++i) {
    net.send(ProcessId::writer(0), ProcessId::server(0), payload);
  }
  const uint64_t dropped = net.metrics().snapshot().messages_dropped;
  EXPECT_GT(dropped, 0u);
  EXPECT_LT(dropped, static_cast<uint64_t>(kSends));  // cap admits some
  // The queue respects the cap (one in-flight frame of slack: a frame is
  // only shed if the queue is already non-empty).
  EXPECT_LE(net.test_hooks().outbox_bytes(ProcessId::writer(0),
                                          ProcessId::server(0)),
            cfg.options.max_outbox_bytes + payload.size() + 32);

  net.test_hooks().pause_writes(ProcessId::writer(0), false);
  // Everything that was not shed drains to the destination.
  EXPECT_TRUE(wait_for(
      [&] { return dst.count() == kSends - static_cast<int>(dropped); }));
  net.stop();
}

TEST(TcpNetworkTest, DeliveryCopiesAtMostOneChunkTail) {
  TcpNetwork net(TcpConfig{});
  Counter src(ProcessId::writer(0));
  Counter dst(ProcessId::server(0));
  net.add_process(ProcessId::writer(0), &src);
  net.add_process(ProcessId::server(0), &dst);
  net.start();

  // 12 MiB of payload through the receive path: the only bytes the
  // transport may copy between kernel and handler are partial-frame tails
  // carried across a chunk roll -- bounded by one chunk per roll, never
  // proportional to payload size.
  constexpr int kMsgs = 4;
  Bytes big(3 << 20);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i * 7);
  for (int i = 0; i < kMsgs; ++i) {
    net.send(ProcessId::writer(0), ProcessId::server(0), big);
  }
  ASSERT_TRUE(wait_for([&] { return dst.count() == kMsgs; }));
  EXPECT_EQ(dst.payload(kMsgs - 1), big);

  const auto stats = net.test_hooks().recv_stats(ProcessId::server(0));
  EXPECT_EQ(stats.payload_bytes_delivered, big.size() * kMsgs);
  EXPECT_LE(stats.tail_bytes_copied,
            static_cast<uint64_t>(kMsgs) * TcpConfig{}.options.recv_chunk_bytes);
  EXPECT_LT(stats.tail_bytes_copied, stats.payload_bytes_delivered / 10);
  net.stop();
}

/// Records the address of each delivered payload's first byte, so tests can
/// prove delivery aliased a shared buffer instead of copying it.
class PointerProbe final : public net::IProcess {
 public:
  void on_message(const net::Envelope& env) override {
    std::lock_guard<std::mutex> lock(mu_);
    seen_.push_back(env.payload.data());
  }
  std::vector<const uint8_t*> seen() {
    std::lock_guard<std::mutex> lock(mu_);
    return seen_;
  }

 private:
  std::mutex mu_;
  std::vector<const uint8_t*> seen_;
};

TEST(ThreadNetworkZeroCopyTest, FanOutSharesOnePayloadBuffer) {
  runtime::ThreadNetwork net(runtime::RuntimeConfig{});
  PointerProbe b, c;
  Counter a(ProcessId::writer(0));
  net.add_process(ProcessId::writer(0), &a);
  net.add_process(ProcessId::server(0), &b);
  net.add_process(ProcessId::server(1), &c);
  net.start();

  Bytes data(4096, 0x7e);
  const uint8_t* origin = data.data();
  const Payload shared(std::move(data));
  net.send_payload(ProcessId::writer(0), ProcessId::server(0), shared);
  net.send_payload(ProcessId::writer(0), ProcessId::server(1), shared);
  ASSERT_TRUE(
      wait_for([&] { return b.seen().size() == 1 && c.seen().size() == 1; }));
  // Zero copies anywhere on the path: both deliveries alias the very bytes
  // the sender built (Payload(Bytes) is pointer-preserving, and the
  // in-memory transport moves the refcounted view through the mailbox).
  EXPECT_EQ(b.seen()[0], origin);
  EXPECT_EQ(c.seen()[0], origin);
  net.stop();
}

// The headline: the full BSR register protocol, unmodified, over real TCP.
TEST(TcpNetworkTest, BsrRegisterOverRealSockets) {
  TcpNetwork net(TcpConfig{});
  registers::SystemConfig cfg;
  cfg.n = 5;
  cfg.f = 1;
  std::vector<std::unique_ptr<registers::RegisterServer>> servers;
  for (uint32_t i = 0; i < cfg.n; ++i) {
    servers.push_back(std::make_unique<registers::RegisterServer>(
        ProcessId::server(i), cfg, &net, Bytes{}));
    net.add_process(ProcessId::server(i), servers.back().get());
  }
  registers::BsrWriter writer(ProcessId::writer(0), cfg, &net);
  registers::BsrReader reader(ProcessId::reader(0), cfg, &net);
  net.add_process(ProcessId::writer(0), &writer);
  net.add_process(ProcessId::reader(0), &reader);
  net.start();

  std::promise<void> wrote;
  net.post(ProcessId::writer(0), [&] {
    writer.start_write(Bytes{'t', 'c', 'p'},
                       [&](const registers::WriteResult&) { wrote.set_value(); });
  });
  ASSERT_EQ(wrote.get_future().wait_for(std::chrono::seconds(5)),
            std::future_status::ready);

  std::promise<Bytes> read_value;
  net.post(ProcessId::reader(0), [&] {
    reader.start_read([&](const registers::ReadResult& r) {
      read_value.set_value(r.value);
    });
  });
  auto fut = read_value.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  EXPECT_EQ(fut.get(), (Bytes{'t', 'c', 'p'}));
  net.stop();
}

TEST(TcpNetworkTest, BcsrRegisterOverRealSockets) {
  TcpNetwork net(TcpConfig{});
  registers::SystemConfig cfg;
  cfg.n = 6;
  cfg.f = 1;
  const auto initial = registers::bcsr_initial_elements(cfg);
  std::vector<std::unique_ptr<registers::RegisterServer>> servers;
  for (uint32_t i = 0; i < cfg.n; ++i) {
    servers.push_back(std::make_unique<registers::RegisterServer>(
        ProcessId::server(i), cfg, &net, initial[i]));
    net.add_process(ProcessId::server(i), servers.back().get());
  }
  registers::BcsrWriter writer(ProcessId::writer(0), cfg, &net);
  registers::BcsrReader reader(ProcessId::reader(0), cfg, &net);
  net.add_process(ProcessId::writer(0), &writer);
  net.add_process(ProcessId::reader(0), &reader);
  net.start();

  Bytes payload(10'000);
  for (size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<uint8_t>(i);

  std::promise<void> wrote;
  net.post(ProcessId::writer(0), [&] {
    writer.start_write(payload,
                       [&](const registers::WriteResult&) { wrote.set_value(); });
  });
  ASSERT_EQ(wrote.get_future().wait_for(std::chrono::seconds(5)),
            std::future_status::ready);

  std::promise<Bytes> got;
  net.post(ProcessId::reader(0), [&] {
    reader.start_read(
        [&](const registers::ReadResult& r) { got.set_value(r.value); });
  });
  auto fut = got.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  EXPECT_EQ(fut.get(), payload);
  net.stop();
}

}  // namespace
}  // namespace bftreg::socknet
