// Workload generation for the mixed-operation experiments (E3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace bftreg::workload {

struct WorkloadOptions {
  /// Fraction of operations that are reads. The paper motivates semi-fast
  /// registers with Facebook's measured 99.8% read share (Section I,
  /// footnote 1).
  double read_ratio{0.9};
  size_t num_ops{1000};
  size_t value_size{64};
  uint64_t seed{1};

  /// The TAO-style mix from the paper's introduction.
  static WorkloadOptions facebook_tao(size_t num_ops, size_t value_size) {
    WorkloadOptions o;
    o.read_ratio = 0.998;
    o.num_ops = num_ops;
    o.value_size = value_size;
    return o;
  }
};

struct Op {
  bool is_read{true};
  Bytes value;  // payload for writes; empty for reads
};

/// Deterministic stream of operations.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadOptions options);

  bool done() const { return emitted_ >= options_.num_ops; }
  size_t remaining() const { return options_.num_ops - emitted_; }

  /// Next operation; precondition !done().
  Op next();

  /// Entire stream at once.
  std::vector<Op> all();

  const WorkloadOptions& options() const { return options_; }

 private:
  WorkloadOptions options_;
  Rng rng_;
  size_t emitted_{0};
  uint64_t write_counter_{0};
};

/// A deterministic, self-describing value: `size` bytes derived from the
/// (seed, index) pair, so tests can verify a read returned the bytes of a
/// specific write.
Bytes make_value(uint64_t seed, uint64_t index, size_t size);

/// Zipfian key distribution over [0, n) (Gray et al., "Quickly generating
/// billion-record synthetic databases"): key k is drawn with probability
/// proportional to 1 / (k+1)^theta, so a handful of registers absorb most
/// of the load -- the skew real object stores see, and what the load
/// generator uses to create hot-register contention. theta in [0, 1);
/// 0 degenerates to uniform, 0.99 is the YCSB default.
class ZipfianKeys {
 public:
  ZipfianKeys(uint64_t n, double theta, uint64_t seed);

  uint64_t next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double zetan_;  // sum_{k=1..n} 1/k^theta
  double alpha_;
  double eta_;
  Rng rng_;
};

}  // namespace bftreg::workload
