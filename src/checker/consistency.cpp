#include "checker/consistency.h"

#include <algorithm>
#include <sstream>

namespace bftreg::checker {

namespace {

std::string describe(const OpRecord& op) {
  std::ostringstream out;
  out << (op.kind == OpRecord::Kind::kWrite ? "write#" : "read#") << op.id << "("
      << to_string(op.client) << ", [" << op.invoked_at << ","
      << (op.completed ? std::to_string(op.responded_at) : "inf") << "), tag "
      << to_string(op.tag) << ", |v|=" << op.value.size() << ")";
  return out.str();
}

bool is_write(const OpRecord& op) { return op.kind == OpRecord::Kind::kWrite; }

/// True iff some complete write w2 falls entirely between w's response and
/// r's invocation (only meaningful for complete w).
bool superseded(const OpRecord& w, const OpRecord& r,
                const std::vector<OpRecord>& ops) {
  if (!w.completed) return false;
  for (const OpRecord& w2 : ops) {
    if (!is_write(w2) || !w2.completed || w2.id == w.id) continue;
    if (w2.invoked_at >= w.responded_at && w2.responded_at <= r.invoked_at) {
      return true;
    }
  }
  return false;
}

/// Is `value` legal for a read r NOT concurrent with any write?
CheckResult check_nonconcurrent_read(const OpRecord& r,
                                     const std::vector<OpRecord>& ops,
                                     const CheckOptions& opts) {
  // v0 is legal iff no write completed before r began.
  const bool some_write_completed_before = std::any_of(
      ops.begin(), ops.end(), [&](const OpRecord& w) {
        return is_write(w) && w.completed && w.responded_at <= r.invoked_at;
      });
  if (r.value == opts.initial_value && !some_write_completed_before) {
    return CheckResult::pass();
  }

  for (const OpRecord& w : ops) {
    if (!is_write(w) || w.value != r.value) continue;
    if (w.invoked_at >= r.invoked_at) continue;  // must have begun before r
    if (!superseded(w, r, ops)) return CheckResult::pass();
  }
  return CheckResult::fail("safety: non-concurrent " + describe(r) +
                           " returned a value that is neither the latest "
                           "unsuperseded write nor a legal v0");
}

CheckResult check_concurrent_read(const OpRecord& r,
                                  const std::vector<OpRecord>& ops,
                                  const CheckOptions& opts) {
  if (!opts.strict_validity) return CheckResult::pass();  // clause (ii): V is all bytes
  if (r.value == opts.initial_value) return CheckResult::pass();
  for (const OpRecord& w : ops) {
    if (is_write(w) && w.value == r.value && w.invoked_at < r.responded_at) {
      return CheckResult::pass();
    }
  }
  return CheckResult::fail("strict validity: " + describe(r) +
                           " returned a value no write ever wrote");
}

}  // namespace

CheckResult check_safety(const std::vector<OpRecord>& ops, const CheckOptions& opts) {
  for (const OpRecord& r : ops) {
    if (is_write(r) || !r.completed) continue;

    const bool concurrent = std::any_of(
        ops.begin(), ops.end(), [&](const OpRecord& w) {
          return is_write(w) && w.concurrent_with(r);
        });

    const CheckResult res = concurrent ? check_concurrent_read(r, ops, opts)
                                       : check_nonconcurrent_read(r, ops, opts);
    if (!res.ok) return res;
  }
  return CheckResult::pass();
}

CheckResult check_regularity(const std::vector<OpRecord>& ops,
                             const CheckOptions& opts) {
  CheckOptions strict = opts;
  strict.strict_validity = true;
  if (CheckResult res = check_safety(ops, strict); !res.ok) {
    res.violation = "regularity implies " + res.violation;
    return res;
  }

  // Freshness under concurrency: the returned value must come from a write
  // concurrent with r, or from an unsuperseded write that began before r,
  // or be a legal v0. (Theorem 3's execution fails here: the read returns
  // v0 although a write completed long before it.)
  for (const OpRecord& r : ops) {
    if (is_write(r) || !r.completed) continue;
    const bool some_write_completed_before = std::any_of(
        ops.begin(), ops.end(), [&](const OpRecord& w) {
          return is_write(w) && w.completed && w.responded_at <= r.invoked_at;
        });
    bool legal = r.value == opts.initial_value && !some_write_completed_before;
    for (const OpRecord& w : ops) {
      if (legal) break;
      if (!is_write(w) || w.value != r.value) continue;
      if (w.concurrent_with(r)) {
        legal = true;
      } else if (w.invoked_at < r.invoked_at && !superseded(w, r, ops)) {
        legal = true;
      }
    }
    if (!legal) {
      return CheckResult::fail("regularity: " + describe(r) +
                               " returned a stale or unknown value");
    }
  }

  // Reads agree on the order of writes (tags per Lemma 2). Checked as
  // per-reader monotonicity: a reader must never go backward across its own
  // sequential reads. Cross-reader inversion is deliberately allowed --
  // permitting it is exactly what separates regularity from atomicity.
  if (opts.reads_report_tags) {
    for (const OpRecord& r1 : ops) {
      if (is_write(r1) || !r1.completed) continue;
      for (const OpRecord& r2 : ops) {
        if (is_write(r2) || !r2.completed || r2.id == r1.id) continue;
        if (r2.client != r1.client) continue;
        if (r1.precedes(r2) && r2.tag < r1.tag) {
          return CheckResult::fail("regularity: new/old inversion between " +
                                   describe(r1) + " and " + describe(r2));
        }
      }
    }
  }
  return CheckResult::pass();
}

CheckResult check_atomicity(const std::vector<OpRecord>& ops,
                            const CheckOptions& opts) {
  if (CheckResult res = check_regularity(ops, opts); !res.ok) {
    res.violation = "atomicity implies " + res.violation;
    return res;
  }
  if (!opts.reads_report_tags) return CheckResult::pass();

  // Cross-reader new/old inversion: the distinguishing power of atomicity
  // over regularity.
  for (const OpRecord& r1 : ops) {
    if (is_write(r1) || !r1.completed) continue;
    for (const OpRecord& r2 : ops) {
      if (is_write(r2) || !r2.completed || r2.id == r1.id) continue;
      if (r1.precedes(r2) && r2.tag < r1.tag) {
        return CheckResult::fail("atomicity: cross-reader new/old inversion between " +
                                 describe(r1) + " and " + describe(r2));
      }
    }
  }
  return CheckResult::pass();
}

}  // namespace bftreg::checker
