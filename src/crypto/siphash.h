// SipHash-2-4 keyed pseudo-random function.
//
// The paper's channels "provide message authentication using digital
// signatures" (Section II-A) so that Byzantine servers cannot spread
// misinformation about a message's sender. The property the proofs actually
// use is unforgeability of sender identity; a keyed MAC over pairwise shared
// keys provides exactly that in our closed simulated world (see DESIGN.md,
// substitution table). SipHash is the standard short-input MAC for this job.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace bftreg::crypto {

struct SipHashKey {
  uint64_t k0{0};
  uint64_t k1{0};

  friend bool operator==(const SipHashKey&, const SipHashKey&) = default;
};

/// SipHash-2-4 of `len` bytes under `key`.
uint64_t siphash24(const SipHashKey& key, const void* data, size_t len);

inline uint64_t siphash24(const SipHashKey& key, BytesView data) {
  return siphash24(key, data.data(), data.size());
}

}  // namespace bftreg::crypto
