// E7 -- the cost of reliable broadcast (Section I-B: "reliable broadcast
// implementation on top of reliable point-to-point channel typically
// requires 1.5 rounds of delay" and inflates latency by 1.5x).
//
// Microbenchmark of the Bracha substrate itself: delivery latency at the
// origin and at non-origin processes vs a plain point-to-point send, and
// the message complexity per broadcast, across n. Expected shape: plain
// send = 1 one-way delay; RB delivery = 3 one-way delays (SEND, ECHO,
// READY); messages per RB ~ 2n^2 + n vs n for a plain multicast.
#include <memory>

#include "bench_util.h"
#include "broadcast/bracha.h"
#include "sim/simulator.h"

using namespace bftreg;
using namespace bftreg::bench;

namespace {

class Host final : public net::IProcess {
 public:
  Host(ProcessId self, std::vector<ProcessId> peers, size_t f,
       net::Transport* transport, sim::Simulator* sim)
      : self_(self), sim_(sim) {
    peer_ = std::make_unique<broadcast::BrachaPeer>(
        self, std::move(peers), f,
        [this, transport](const ProcessId& to, Bytes frame) {
          transport->send(self_, to, std::move(frame));
        },
        [this](Bytes) { delivered_at_ = sim_->now(); });
  }
  void on_message(const net::Envelope& env) override {
    peer_->on_frame(env.from, env.payload);
  }
  broadcast::BrachaPeer& peer() { return *peer_; }
  TimeNs delivered_at() const { return delivered_at_; }

 private:
  ProcessId self_;
  sim::Simulator* sim_;
  std::unique_ptr<broadcast::BrachaPeer> peer_;
  TimeNs delivered_at_{0};
};

}  // namespace

int main() {
  std::printf("E7: Bracha reliable-broadcast cost vs plain send\n");
  std::printf("fixed one-way delay d = 1000 ns\n\n");

  TextTable table({"n", "f", "plain send (d)", "RB origin deliver (d)",
                   "RB remote deliver (d)", "msgs/broadcast", "msgs plain"});
  for (size_t f = 1; f <= 5; ++f) {
    const size_t n = 3 * f + 1;
    sim::Simulator sim(sim::SimConfig::with_fixed_delay(1, 1000));
    std::vector<ProcessId> ids;
    for (uint32_t i = 0; i < n; ++i) ids.push_back(ProcessId::server(i));
    std::vector<std::unique_ptr<Host>> hosts;
    for (uint32_t i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<Host>(ids[i], ids, f, &sim, &sim));
      sim.add_process(ids[i], hosts.back().get());
    }
    const auto before = sim.metrics().snapshot();
    const TimeNs start = sim.now();
    hosts[0]->peer().broadcast(Bytes{'m'});
    sim.run_until_idle();
    const auto after = sim.metrics().snapshot();

    TimeNs remote_max = 0;
    for (size_t i = 1; i < n; ++i) {
      remote_max = std::max(remote_max, hosts[i]->delivered_at());
    }
    table.add_row(
        {std::to_string(n), std::to_string(f), "1.0",
         TextTable::fmt(static_cast<double>(hosts[0]->delivered_at() - start) / 1000.0, 1),
         TextTable::fmt(static_cast<double>(remote_max - start) / 1000.0, 1),
         std::to_string(after.messages_sent - before.messages_sent),
         std::to_string(n)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape check: a plain multicast costs 1 one-way delay and n messages;\n"
      "RB delivery at remote peers costs 3 one-way delays (SEND+ECHO+READY --\n"
      "the paper's \"1.5 rounds\") and Theta(n^2) messages. An emulation that\n"
      "wraps every write in RB pays this on every operation; BSR pays it\n"
      "never, at the price of f extra servers (Section I-B).\n");
  return 0;
}
