// bftreg_lint: project-specific static checks over src/.
//
// Usage: bftreg_lint [repo_root]   (default: current directory)
//
// Exit code 0 when clean, 1 on violations, 2 on I/O errors. Registered as
// the `bftreg_lint` ctest test so `ctest` fails when a banned pattern lands;
// the rule list and the waiver syntax are documented in tools/lint_rules.h
// and docs/ANALYSIS.md.
#include <cstdio>
#include <exception>

#include "tools/lint_rules.h"

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : ".";
  try {
    const auto violations = bftreg::lint::lint_tree(root);
    for (const auto& v : violations) {
      std::fprintf(stderr, "%s\n", bftreg::lint::format(v).c_str());
    }
    if (!violations.empty()) {
      std::fprintf(stderr, "bftreg_lint: %zu violation(s)\n", violations.size());
      return 1;
    }
    std::printf("bftreg_lint: clean\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bftreg_lint: %s\n", e.what());
    return 2;
  }
}
