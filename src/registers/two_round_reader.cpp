#include "registers/two_round_reader.h"

#include <cassert>
#include <memory>

namespace bftreg::registers {

TwoRoundReader::TwoRoundReader(ProcessId self, SystemConfig config,
                               net::Transport* transport, uint32_t object)
    : mux_(self, std::move(config), transport),
      object_(object),
      state_(LocalState::initial(mux_.config())) {}

void TwoRoundReader::start_read(Callback callback) {
  assert(!busy() && "at most one operation per client");
  mux_.start(std::make_unique<TwoRoundReadOp>(mux_.config(), &state_,
                                              std::move(callback)),
             OpKind::kTwoRoundRead, object_);
}

}  // namespace bftreg::registers
