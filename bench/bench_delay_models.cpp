// Ablation -- protocol latency under different network delay regimes.
//
// The paper's asynchrony argument is qualitative; this bench makes it
// quantitative: under uniform, exponential, and heavy-tailed (lognormal)
// one-way delays, one-shot reads wait for the (n-f)-th fastest of n
// responses ONCE, while multi-phase operations resample the tail every
// round. Expected shape: the latency gap between BSR reads and 2R/RB reads
// widens as the delay tail gets heavier.
#include <memory>

#include "bench_util.h"

using namespace bftreg;
using namespace bftreg::bench;

namespace {

enum class DelayKind { kUniform, kExponential, kLognormal };

const char* to_string(DelayKind k) {
  switch (k) {
    case DelayKind::kUniform: return "uniform 0.5-1.5us";
    case DelayKind::kExponential: return "exp(min .5us, mean 1us)";
    case DelayKind::kLognormal: return "lognormal (heavy tail)";
  }
  return "?";
}

std::unique_ptr<net::DelayModel> make_delay(DelayKind kind) {
  switch (kind) {
    case DelayKind::kUniform:
      return std::make_unique<net::UniformDelay>(500, 1500);
    case DelayKind::kExponential:
      return std::make_unique<net::ExponentialDelay>(500, 1000.0);
    case DelayKind::kLognormal:
      // median e^6.2 ~ 490ns extra, sigma 1.2 -> long tail
      return std::make_unique<net::LognormalDelay>(300, 6.2, 1.2);
  }
  return nullptr;
}

struct Lat {
  double read_med;
  double read_p99;
  double write_med;
};

Lat run(harness::Protocol protocol, DelayKind kind, uint64_t seed) {
  const size_t f = 1;
  const size_t n = harness::min_servers(protocol, f);
  harness::ClusterOptions o = make_options(protocol, n, f, seed, 500, 1500);
  harness::SimCluster cluster(o);
  // Swap in the requested delay model via the scripted wrapper's hook
  // mechanism: simplest is to construct the cluster with defaults and then
  // override every message's delay through the hook.
  auto model = std::make_shared<std::unique_ptr<net::DelayModel>>(make_delay(kind));
  auto rng = std::make_shared<Rng>(seed * 97 + 11);
  cluster.sim().delay_model().set_hook(
      [model, rng](const net::Envelope& env) -> std::optional<TimeNs> {
        return (*model)->delay(env, *rng);
      });

  Samples reads, writes;
  for (int i = 0; i < 300; ++i) {
    const auto w = cluster.write(0, workload::make_value(seed, i, 32));
    writes.add(static_cast<double>(w.completed_at - w.invoked_at));
    const auto r = cluster.read(0);
    reads.add(static_cast<double>(r.completed_at - r.invoked_at));
  }
  return Lat{reads.median(), reads.p99(), writes.median()};
}

}  // namespace

int main() {
  std::printf("ablation: latency under delay regimes (n = min servers, f = 1)\n\n");
  TextTable table({"delay model", "protocol", "read med (us)", "read p99 (us)",
                   "write med (us)"});
  for (DelayKind kind :
       {DelayKind::kUniform, DelayKind::kExponential, DelayKind::kLognormal}) {
    for (auto protocol :
         {harness::Protocol::kBsr, harness::Protocol::kBsr2R,
          harness::Protocol::kRb}) {
      const auto lat = run(protocol, kind, 5);
      table.add_row({to_string(kind), harness::to_string(protocol),
                     fmt_us(lat.read_med), fmt_us(lat.read_p99),
                     fmt_us(lat.write_med)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape check: under heavier tails the extra phases hurt more -- the\n"
      "p99 gap between one-shot BSR reads and two-round/RB reads widens,\n"
      "which is the latency-sensitivity argument of Section I-B.\n");
  return 0;
}
