// Bracha reliable broadcast: agreement, all-or-none, Byzantine resistance,
// and the latency overhead the paper charges RB with (Section I-B).
#include <gtest/gtest.h>

#include <memory>

#include "broadcast/bracha.h"
#include "sim/simulator.h"

namespace bftreg::broadcast {
namespace {

class BrachaHost final : public net::IProcess {
 public:
  BrachaHost(ProcessId self, std::vector<ProcessId> peers, size_t f,
             net::Transport* transport)
      : self_(self) {
    peer_ = std::make_unique<BrachaPeer>(
        self, std::move(peers), f,
        [this, transport](const ProcessId& to, Bytes frame) {
          transport->send(self_, to, std::move(frame));
        },
        [this](Bytes blob) {
          delivered_.push_back(std::move(blob));
          delivered_at_.push_back(0);
        });
  }

  void on_message(const net::Envelope& env) override {
    peer_->on_frame(env.from, env.payload);
  }

  BrachaPeer& peer() { return *peer_; }
  const std::vector<Bytes>& delivered() const { return delivered_; }

 private:
  ProcessId self_;
  std::unique_ptr<BrachaPeer> peer_;
  std::vector<Bytes> delivered_;
  std::vector<TimeNs> delivered_at_;
};

struct BrachaCluster {
  explicit BrachaCluster(size_t n, size_t f, uint64_t seed = 1,
                         TimeNs delay = 100)
      : sim(sim::SimConfig::with_fixed_delay(seed, delay)) {
    std::vector<ProcessId> peers;
    for (uint32_t i = 0; i < n; ++i) peers.push_back(ProcessId::server(i));
    for (uint32_t i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<BrachaHost>(ProcessId::server(i), peers, f,
                                                   &sim));
      sim.add_process(ProcessId::server(i), hosts.back().get());
    }
  }

  size_t delivered_count(const Bytes& blob) const {
    size_t c = 0;
    for (const auto& h : hosts) {
      for (const auto& d : h->delivered()) {
        if (d == blob) ++c;
      }
    }
    return c;
  }

  sim::Simulator sim;
  std::vector<std::unique_ptr<BrachaHost>> hosts;
};

TEST(BrachaTest, AllHonestDeliverBroadcast) {
  BrachaCluster c(4, 1);
  const Bytes blob{'m', '1'};
  c.hosts[0]->peer().broadcast(blob);
  c.sim.run_until_idle();
  EXPECT_EQ(c.delivered_count(blob), 4u);
}

TEST(BrachaTest, DeliversExactlyOncePerHost) {
  BrachaCluster c(7, 2);
  const Bytes blob{'x'};
  c.hosts[3]->peer().broadcast(blob);
  c.sim.run_until_idle();
  for (const auto& h : c.hosts) {
    EXPECT_EQ(h->delivered().size(), 1u);
  }
}

TEST(BrachaTest, ConcurrentBroadcastsAllDeliver) {
  BrachaCluster c(4, 1);
  const Bytes b1{'a'};
  const Bytes b2{'b'};
  const Bytes b3{'c'};
  c.hosts[0]->peer().broadcast(b1);
  c.hosts[1]->peer().broadcast(b2);
  c.hosts[2]->peer().broadcast(b3);
  c.sim.run_until_idle();
  EXPECT_EQ(c.delivered_count(b1), 4u);
  EXPECT_EQ(c.delivered_count(b2), 4u);
  EXPECT_EQ(c.delivered_count(b3), 4u);
}

TEST(BrachaTest, AllOrNone_CrashedOriginAfterEchoStillDelivers) {
  // Once any honest peer echoes and thresholds are met, everyone delivers,
  // even if the origin crashes right after its SEND multicast: the
  // all-or-none property BSR deliberately lives without.
  BrachaCluster c(4, 1);
  const Bytes blob{'z'};
  c.hosts[0]->peer().broadcast(blob);
  c.sim.mark_crashed(ProcessId::server(0));  // origin crashes post-send
  c.sim.run_until_idle();
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(c.hosts[i]->delivered().size(), 1u) << "host " << i;
  }
}

TEST(BrachaTest, SilentByzantinePeerDoesNotBlockDelivery) {
  BrachaCluster c(4, 1);
  c.sim.mark_crashed(ProcessId::server(3));  // worst case: one peer mute
  const Bytes blob{'q'};
  c.hosts[0]->peer().broadcast(blob);
  c.sim.run_until_idle();
  EXPECT_EQ(c.delivered_count(blob), 3u);
}

TEST(BrachaTest, ForgedReadiesAloneCannotForceDelivery) {
  // A single Byzantine peer sends READY for a blob nobody broadcast; with
  // f = 1 the deliver threshold is 2f+1 = 3 readies, so nothing delivers.
  BrachaCluster c(4, 1);
  const Bytes bogus{'!', '!'};
  const Bytes frame = BrachaPeer::make_frame(BrachaPeer::Phase::kReady, bogus);
  for (uint32_t i = 0; i < 4; ++i) {
    if (i == 2) continue;
    c.sim.send(ProcessId::server(2), ProcessId::server(i), frame);
  }
  c.sim.run_until_idle();
  EXPECT_EQ(c.delivered_count(bogus), 0u);
}

TEST(BrachaTest, NonBrachaFramesAreRejected) {
  BrachaCluster c(4, 1);
  BrachaPeer& p = c.hosts[0]->peer();
  EXPECT_FALSE(p.on_frame(ProcessId::server(1), Bytes{}));
  EXPECT_FALSE(p.on_frame(ProcessId::server(1), Bytes{0x00, 0x01, 0x02}));
  EXPECT_FALSE(p.on_frame(ProcessId::server(1), Bytes{BrachaPeer::kMagic, 99}));
}

TEST(BrachaTest, DeliveryTakesAtLeastTwoExtraHops) {
  // The "1.5 rounds" claim: with one-way delay d, direct point-to-point
  // delivery costs d, while RB delivery at a non-origin host costs at
  // least 3d (SEND -> ECHO -> READY chains). Measure it.
  BrachaCluster c(4, 1, /*seed=*/1, /*delay=*/1000);
  const Bytes blob{'t'};
  c.hosts[0]->peer().broadcast(blob);
  bool all = false;
  c.sim.run_until([&] {
    all = true;
    for (size_t i = 1; i < 4; ++i) all = all && !c.hosts[i]->delivered().empty();
    return all;
  });
  ASSERT_TRUE(all);
  // Non-origin hosts need SEND(d) + ECHO(d) + READY(d).
  EXPECT_GE(c.sim.now(), 3000u);
}

TEST(BrachaTest, StatsCountPhases) {
  BrachaCluster c(4, 1);
  const Bytes blob{'s'};
  c.hosts[0]->peer().broadcast(blob);
  c.sim.run_until_idle();
  const auto& st = c.hosts[0]->peer().stats();
  EXPECT_EQ(st.echoes_sent, 1u);
  EXPECT_EQ(st.readies_sent, 1u);
  EXPECT_EQ(st.delivered, 1u);
}

struct BrachaParam {
  size_t n;
  size_t f;
};

class BrachaSweepTest : public ::testing::TestWithParam<BrachaParam> {};

TEST_P(BrachaSweepTest, DeliversAtScaleWithFSilentPeers) {
  const auto [n, f] = GetParam();
  BrachaCluster c(n, f, 42);
  for (size_t i = 0; i < f; ++i) {
    c.sim.mark_crashed(ProcessId::server(static_cast<uint32_t>(n - 1 - i)));
  }
  const Bytes blob{'p'};
  c.hosts[0]->peer().broadcast(blob);
  c.sim.run_until_idle();
  EXPECT_EQ(c.delivered_count(blob), n - f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BrachaSweepTest,
                         ::testing::Values(BrachaParam{4, 1}, BrachaParam{7, 2},
                                           BrachaParam{10, 3}, BrachaParam{13, 4},
                                           BrachaParam{16, 5}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "f" +
                                  std::to_string(info.param.f);
                         });

}  // namespace
}  // namespace bftreg::broadcast
