// Wall-clock experiment harness: the SimCluster counterpart on real
// threads.
//
// Same protocol selection and Byzantine placement as SimCluster, but the
// processes run on runtime::ThreadNetwork (one mailbox thread per delivery
// shard, real delays, wall-clock time) and operations are blocking calls
// safe to issue from concurrent caller threads -- one caller per client,
// per the model's one-operation-per-client rule. Used by bench_wallclock
// and available to applications that want a ready-made deployment harness.
//
// Sharded servers: set options.config.server_shards > 1 and each
// RegisterServer splits its object table across that many mailbox threads
// (hash(object)-disjoint, see registers/server.h); clients and protocol
// semantics are unaffected.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "adversary/byzantine_server.h"
#include "harness/sim_cluster.h"  // Protocol enum, min_servers
#include "registers/registers.h"
#include "runtime/thread_network.h"

namespace bftreg::harness {

struct ThreadClusterOptions {
  Protocol protocol{Protocol::kBsr};
  registers::SystemConfig config{};
  size_t num_writers{1};
  size_t num_readers{1};
  uint64_t seed{1};
  /// Artificial one-way delay range in wall nanoseconds (0 = none).
  TimeNs delay_lo{0};
  TimeNs delay_hi{0};
  /// When non-empty, honest servers are WAL-backed (logging to
  /// `<wal_dir>/server-<i>.wal`) and restart_server() becomes available.
  std::string wal_dir{};
};

class ThreadCluster {
 public:
  explicit ThreadCluster(ThreadClusterOptions options);
  ~ThreadCluster();

  ThreadCluster(const ThreadCluster&) = delete;
  ThreadCluster& operator=(const ThreadCluster&) = delete;

  /// Replaces server `index` with a Byzantine one. Call before start().
  void set_byzantine(size_t index, adversary::StrategyKind kind);

  /// Spawns all threads; implicit on the first operation. Thread-safe and
  /// idempotent: concurrent first operations from several client threads
  /// race here by design (std::call_once picks the winner).
  void start();

  /// Stops the underlying network. Inherits ThreadNetwork::stop()'s
  /// contract: idempotent, concurrent calls allowed (only the first does
  /// the work), and must come from a client/owner thread -- never from a
  /// protocol callback, which runs on a network-owned mailbox thread.
  void stop();

  /// Blocking operations; safe to call from one thread per client index.
  registers::WriteResult write(size_t writer, Bytes value);
  registers::ReadResult read(size_t reader);

  /// Crash-and-rejoin under live traffic (requires options.wal_dir; the
  /// network must be started). Marks the server crashed, quiesces its
  /// mailbox threads (so WAL replay cannot race a half-run handler), swaps
  /// in a recovered server (kCatchUpBeforeServe), revives delivery, and
  /// BLOCKS until quorum catch-up completes and the server is serving
  /// again. Call from an external (non-mailbox) thread only -- same
  /// contract as stop().
  void restart_server(size_t index);

  /// The WAL-backed server at `index`; nullptr when wal_dir is unset or
  /// the slot is Byzantine.
  storage::PersistentRegisterServer* persistent_server(size_t index);

  runtime::ThreadNetwork& net() { return *net_; }
  const ThreadClusterOptions& options() const { return options_; }

 private:
  struct WriterSlot;
  struct ReaderSlot;

  Bytes initial_for_server(size_t index) const;
  std::string wal_path(size_t index) const;
  void build();
  void start_impl();

  ThreadClusterOptions options_;
  std::unique_ptr<runtime::ThreadNetwork> net_;
  std::vector<std::unique_ptr<net::IProcess>> servers_;
  /// Parallel typed view of servers_ when wal_dir is set (else nullptr).
  std::vector<storage::PersistentRegisterServer*> persistent_servers_;
  /// Replaced server objects, kept alive until teardown: in-flight
  /// MailItems may still carry their (never re-dereferenced) pointers.
  std::vector<std::unique_ptr<net::IProcess>> retired_;
  std::vector<std::unique_ptr<WriterSlot>> writers_;
  std::vector<std::unique_ptr<ReaderSlot>> readers_;
  std::vector<Bytes> initial_elements_;
  std::once_flag start_once_;
  // Published by the call_once winner; read by set_byzantine's precondition
  // assert, which may run on a different thread than the one that started.
  std::atomic<bool> started_{false};
};

}  // namespace bftreg::harness
