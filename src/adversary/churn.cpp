#include "adversary/churn.h"

namespace bftreg::adversary {

const char* to_string(ChurnAction a) {
  switch (a) {
    case ChurnAction::kCrash: return "crash";
    case ChurnAction::kRestart: return "restart";
    case ChurnAction::kStartWrite: return "start-write";
    case ChurnAction::kStartRead: return "start-read";
  }
  return "?";
}

// Timing notes: the harness's default uniform delay is [500, 1500] ns per
// hop, so one client round trip lands around 1-3 us. Offsets below place
// crashes INSIDE a round (hundreds of ns after its start) and restarts
// after the surrounding operations finished, with a final write+read wave
// well past the rejoin to prove the recovered cluster still serves fresh
// values.

ChurnSchedule crash_during_write_schedule(size_t victim) {
  ChurnSchedule s;
  s.name = "crash-during-write";
  s.steps = {
      {ChurnAction::kStartWrite, 0, 0},
      // get-tag needs ~2 hops (~2000ns); 700ns in, the victim has likely
      // answered QUERY-TAG but the PUT-DATA round is still ahead or in
      // flight -- the crash can eat an already-counted ACK.
      {ChurnAction::kCrash, victim, 700},
      {ChurnAction::kStartRead, 0, 5'000},
      {ChurnAction::kRestart, victim, 9'000},
      // Post-rejoin wave: the recovered server participates in fresh
      // quorums (offsets leave room for catch-up's two peer rounds).
      {ChurnAction::kStartWrite, 0, 40'000},
      {ChurnAction::kStartRead, 0, 45'000},
  };
  return s;
}

ChurnSchedule crash_during_read_writeback_schedule(size_t victim) {
  ChurnSchedule s;
  s.name = "crash-during-read-writeback";
  s.steps = {
      {ChurnAction::kStartWrite, 0, 0},
      // A kBsrWb read starts at 4000ns (the write has finished by ~3000);
      // 700ns into the read its get-data quorum is complete or nearly so,
      // and the crash lands on the write-back put.
      {ChurnAction::kStartRead, 0, 4'000},
      {ChurnAction::kCrash, victim, 4'700},
      {ChurnAction::kRestart, victim, 9'000},
      {ChurnAction::kStartRead, 0, 40'000},
  };
  return s;
}

ChurnSchedule rejoin_mid_round_schedule(size_t victim) {
  ChurnSchedule s;
  s.name = "rejoin-mid-round";
  s.steps = {
      {ChurnAction::kCrash, victim, 0},
      {ChurnAction::kStartWrite, 0, 100},
      // The write's rounds are still running when the victim rejoins, so
      // its QUERY-OBJECTS/DATA-BATCH catch-up interleaves with live
      // PUT-DATA -- and the refusal window must swallow any client
      // requests that reach it before catch-up completes.
      {ChurnAction::kRestart, victim, 800},
      {ChurnAction::kStartRead, 0, 5'000},
      {ChurnAction::kStartWrite, 0, 6'000},
  };
  return s;
}

}  // namespace bftreg::adversary
