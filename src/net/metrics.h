// Network accounting used by the bandwidth/storage experiments (E4, E7).
#pragma once

#include <atomic>
#include <cstdint>

namespace bftreg::net {

struct MetricsSnapshot {
  uint64_t messages_sent{0};
  uint64_t bytes_sent{0};
  uint64_t messages_delivered{0};
  uint64_t auth_failures{0};
  /// Frames shed by a bounded transport queue (or dropped after a failed
  /// reconnect) instead of blocking the sender. Client deadlines retransmit.
  uint64_t messages_dropped{0};
  /// Deliveries that found their shard's MPSC ring full and spilled to the
  /// mutex-guarded overflow deque (runtime/mailbox.h). Nothing is lost --
  /// this counts how often the control plane fell off its lock-free path.
  uint64_t mailbox_overflows{0};
};

/// Thread-safe counters; the simulator uses it single-threaded, the
/// threaded runtime concurrently. Lock-free: the hooks run on the transport
/// hot path -- on_drop() fires inside send_payload's out_mu scope -- so a
/// mutex here would both serialize senders and put a foreign lock under
/// every transport mutex in the global lock-order graph. Relaxed ordering
/// is enough: counters are independent and snapshot() needs no cross-field
/// consistency beyond "each value was current at some point".
class NetworkMetrics {
 public:
  void on_send(uint64_t bytes) {
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void on_deliver() {
    messages_delivered_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_auth_failure() {
    auth_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_drop() { on_drop_n(1); }
  void on_drop_n(uint64_t count) {
    messages_dropped_.fetch_add(count, std::memory_order_relaxed);
  }
  void on_mailbox_overflow() {
    mailbox_overflows_.fetch_add(1, std::memory_order_relaxed);
  }

  MetricsSnapshot snapshot() const {
    MetricsSnapshot s;
    s.messages_sent = messages_sent_.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    s.messages_delivered = messages_delivered_.load(std::memory_order_relaxed);
    s.auth_failures = auth_failures_.load(std::memory_order_relaxed);
    s.messages_dropped = messages_dropped_.load(std::memory_order_relaxed);
    s.mailbox_overflows = mailbox_overflows_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() {
    messages_sent_.store(0, std::memory_order_relaxed);
    bytes_sent_.store(0, std::memory_order_relaxed);
    messages_delivered_.store(0, std::memory_order_relaxed);
    auth_failures_.store(0, std::memory_order_relaxed);
    messages_dropped_.store(0, std::memory_order_relaxed);
    mailbox_overflows_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> messages_sent_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> messages_delivered_{0};
  std::atomic<uint64_t> auth_failures_{0};
  std::atomic<uint64_t> messages_dropped_{0};
  std::atomic<uint64_t> mailbox_overflows_{0};
};

}  // namespace bftreg::net
