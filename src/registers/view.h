// Epoch-stamped membership views (reconfiguration extension).
//
// The paper's model fixes the server set; the reconfiguration layer keeps
// that universe of n indices as the *identity* space but lets the set of
// servers a client should currently talk to -- the view -- change over
// time. Views are totally ordered by a monotonically increasing epoch:
//
//   - Epoch 0 is the initial static view: all n servers.
//   - A VIEW-ANNOUNCE message carries (epoch, member indices). An empty
//     member list means "the full static set" (the common case after a
//     rejoin completes).
//   - Every server stamps its current epoch into every reply, so clients
//     learn of view changes by piggyback even if they miss the announce.
//
// Quorum math is deliberately NOT view-relative: quorum() = n - f over the
// full universe, always (see docs/MEMBERSHIP.md for why shrinking quorums
// with the view would break intersection with f Byzantine servers).
// Consequently a ViewTracker refuses to adopt a member list smaller than
// the quorum -- such a view could never complete an operation, and a
// Byzantine server could otherwise wedge a client by announcing one.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "registers/config.h"
#include "registers/messages.h"

namespace bftreg::registers {

/// One membership view: the epoch plus the server indices a client should
/// address. `members` is always sorted and deduplicated.
struct MembershipView {
  uint64_t epoch{0};
  std::vector<uint32_t> members;
};

/// Tracks the newest membership view a process has evidence for. Not
/// thread-safe; OpMux drives it from under its own mutex.
class ViewTracker {
 public:
  explicit ViewTracker(const SystemConfig& config)
      : n_(config.n), quorum_(config.quorum()) {
    view_.members = full_set();
  }

  /// Folds one incoming message into the view. Returns true when the view
  /// advanced (the caller should retransmit operations started under the
  /// old epoch). Two signals advance it:
  ///   - a VIEW-ANNOUNCE with a higher epoch (adopts its member list when
  ///     plausible, else the full set), or
  ///   - any reply piggybacking a higher epoch (adopts the full set: the
  ///     sender is alive, and the conservative superset is always safe
  ///     because quorums are counted over the full universe anyway).
  bool observe(const RegisterMessage& msg) {
    if (msg.epoch <= view_.epoch) return false;
    view_.epoch = msg.epoch;
    if (msg.type == MsgType::kViewAnnounce && plausible(msg.objects)) {
      view_.members = msg.objects;
      std::sort(view_.members.begin(), view_.members.end());
      view_.members.erase(
          std::unique(view_.members.begin(), view_.members.end()),
          view_.members.end());
    } else {
      view_.members = full_set();
    }
    return true;
  }

  const MembershipView& view() const { return view_; }
  uint64_t epoch() const { return view_.epoch; }
  const std::vector<uint32_t>& members() const { return view_.members; }

 private:
  std::vector<uint32_t> full_set() const {
    std::vector<uint32_t> all(n_);
    for (uint32_t i = 0; i < n_; ++i) all[i] = i;
    return all;
  }

  /// A member list is adoptable only if every index names a real server
  /// and enough members remain to ever form a quorum. An implausible list
  /// (Byzantine announce, or a LEAVE that would kill liveness) still
  /// advances the epoch but falls back to the full set.
  bool plausible(const std::vector<uint32_t>& members) const {
    if (members.size() < quorum_ || members.size() > n_) return false;
    for (const uint32_t m : members) {
      if (m >= n_) return false;
    }
    return true;
  }

  uint32_t n_;
  size_t quorum_;
  MembershipView view_;
};

}  // namespace bftreg::registers
