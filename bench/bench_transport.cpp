// Transport data-plane throughput: loopback TCP and the in-memory thread
// runtime under a credit-windowed fan-in echo workload.
//
//   bench_transport                 human-readable table over the full grid
//   bench_transport --json=PATH     machine-readable snapshot
//                   [--quick]       shorter per-point message budget
//                   [--mailbox]     only the shard-count sweep (the CI
//                                   mailbox-bench quick gate)
//                   [--filter=STR]  only points whose "net/size/fanin[/sN]"
//                                   key contains STR (dev iteration)
//
// The common flags (--json/--quick/--seed/--duration) parse through
// bench::BenchArgs like every other bench binary; --mailbox/--filter are
// this binary's extras.
//
// Workload: `fanin - 1` source processes each keep a window of messages of
// `size` bytes in flight toward one sink; the sink acknowledges every
// message with an 8-byte credit, and a source refills its window as credits
// return. Throughput is counted at the sink (one-way payload bytes), so the
// numbers measure the data plane the registers actually ride: many clients
// converging on one server, full-duplex sockets, handlers firing on the
// destination's mailbox thread.
//
// The shard sweep re-runs the small-payload points with the sink split
// into 1/2/4/8 delivery shards (IProcess::delivery_shards) to expose how
// the MPSC-ring control plane scales when a hot process fans its handlers
// out; rows carry a "shards" field so bench_regress keys them apart.
//
// The JSON snapshot (schema bftreg-bench-transport-v1, points keyed by
// (transport, size, fanin[, shards])) is diffed against the checked-in
// BENCH_transport.json by tools/bench_regress in CI; a >20% drop in
// msgs_per_sec or mbps on any point fails the gate. docs/PERF.md records
// the before/after tables for the writev-coalescing and lock-free-mailbox
// rewrites.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/transport.h"
#include "runtime/thread_network.h"
#include "socknet/tcp_network.h"

namespace bftreg::bench {
namespace {

using Clock = std::chrono::steady_clock;

/// Sink: counts arrivals and returns an 8-byte credit per message. With
/// `shards > 1` it opts into parallel delivery: envelopes round-robin
/// across shards by send sequence, handlers for different shards run
/// concurrently, so the counter is relaxed-atomic and the credit reply
/// rides the thread-safe send path.
class EchoSink final : public net::IProcess {
 public:
  EchoSink(ProcessId self, net::Transport* transport, uint32_t shards)
      : self_(self), transport_(transport), shards_(shards) {}

  void on_message(const net::Envelope& env) override {
    received_.fetch_add(1, std::memory_order_relaxed);
    transport_->send_payload(self_, env.from, credit_);
  }

  uint32_t delivery_shards() const override { return shards_; }
  uint32_t shard_of(const net::Envelope& env) const override {
    return static_cast<uint32_t>(env.seq % shards_);
  }

  uint64_t received() const { return received_.load(std::memory_order_relaxed); }

 private:
  const ProcessId self_;
  net::Transport* const transport_;
  const uint32_t shards_;
  // One refcounted credit shared by every reply (zero-copy send path).
  const Payload credit_{Bytes(8, 0xAC)};
  std::atomic<uint64_t> received_{0};
};

/// Source: keeps `window` payloads in flight; every credit refills the
/// window until `total` messages have been sent and acknowledged.
class CreditSource final : public net::IProcess {
 public:
  CreditSource(ProcessId self, ProcessId sink, net::Transport* transport,
               Payload payload, uint64_t total, uint64_t window)
      : self_(self),
        sink_(sink),
        transport_(transport),
        payload_(std::move(payload)),
        total_(total),
        window_(window) {}

  /// Runs on the source's mailbox thread (posted by the driver).
  void pump() {
    while (sent_ < total_ && sent_ - acked_ < window_) {
      transport_->send_payload(self_, sink_, payload_);
      ++sent_;
    }
  }

  void on_message(const net::Envelope&) override {
    ++acked_;
    done_.fetch_add(1, std::memory_order_relaxed);
    pump();
  }

  uint64_t acked() const { return done_.load(std::memory_order_relaxed); }

 private:
  const ProcessId self_;
  const ProcessId sink_;
  net::Transport* const transport_;
  // Refcounted: all in-flight messages share this one buffer, exercising
  // the transports' zero-copy fan-out path.
  const Payload payload_;
  const uint64_t total_;
  const uint64_t window_;
  // sent_/acked_ are touched only on the mailbox thread; done_ mirrors
  // acked_ for the driver's completion poll.
  uint64_t sent_{0};
  uint64_t acked_{0};
  std::atomic<uint64_t> done_{0};
};

struct RunResult {
  double msgs_per_sec{0};
  double mbps{0};
  bool completed{true};
};

/// Builds a fresh `NetT`, attaches one sink + `fanin - 1` sources, runs the
/// workload to completion and returns sink-side rates. NetT is TcpNetwork
/// or ThreadNetwork; both expose the same add_process/start/stop surface.
template <typename NetT, typename... Args>
RunResult run_point(size_t fanin, size_t size, uint64_t per_source,
                    uint32_t sink_shards, Args&&... args) {
  NetT net(std::forward<Args>(args)...);
  const size_t sources = fanin - 1;
  const ProcessId sink_pid = ProcessId::server(0);
  constexpr uint64_t kWindow = 32;

  EchoSink sink(sink_pid, &net, sink_shards);
  net.add_process(sink_pid, &sink);

  Bytes payload(size);
  for (size_t i = 0; i < size; ++i) payload[i] = static_cast<uint8_t>(i * 131);

  std::vector<std::unique_ptr<CreditSource>> srcs;
  for (size_t i = 0; i < sources; ++i) {
    const ProcessId pid = ProcessId::writer(static_cast<uint32_t>(i));
    srcs.push_back(std::make_unique<CreditSource>(pid, sink_pid, &net, payload,
                                                  per_source, kWindow));
    net.add_process(pid, srcs.back().get());
  }

  net.start();
  const auto t0 = Clock::now();
  for (size_t i = 0; i < sources; ++i) {
    CreditSource* s = srcs[i].get();
    net.post(ProcessId::writer(static_cast<uint32_t>(i)), [s] { s->pump(); });
  }

  const uint64_t expect = per_source * sources;
  const auto deadline = t0 + std::chrono::seconds(120);
  auto all_acked = [&] {
    uint64_t acked = 0;
    for (const auto& s : srcs) acked += s->acked();
    return acked >= expect;
  };
  bool completed = true;
  while (!all_acked()) {
    if (Clock::now() > deadline) {
      completed = false;
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  net.stop();

  RunResult out;
  out.completed = completed;
  const double delivered = static_cast<double>(sink.received());
  out.msgs_per_sec = delivered / secs;
  out.mbps = delivered * static_cast<double>(size) / (secs * 1024.0 * 1024.0);
  return out;
}

struct GridPoint {
  size_t fanin;
  size_t size;
  uint64_t per_source;  // full-mode budget; quick mode divides by 4
  /// 0 = base grid (no "shards" JSON field, sink uses 1 shard);
  /// >0 = shard-sweep row.
  uint32_t shards{0};
};

/// (fanin, size) grid: the payload-size sweep at the paper's smallest BSR
/// cluster (n = 5), plus a fan-in sweep at the 512 B serving sweet spot.
constexpr GridPoint kGrid[] = {
    {5, 64, 20000},      {5, 512, 20000},     {5, 4096, 8000},
    {5, 65536, 1200},    {5, 1 << 20, 96},    {11, 512, 8000},
    {21, 512, 4000},
};

/// Shard-count sweep at the small-payload points where the control plane
/// (not memcpy) is the cost: how does the sink scale as its delivery fans
/// out over 1/2/4/8 MPSC rings?
constexpr GridPoint kShardSweep[] = {
    {5, 64, 20000, 1},  {5, 64, 20000, 2},  {5, 64, 20000, 4},
    {5, 64, 20000, 8},  {5, 512, 20000, 1}, {5, 512, 20000, 2},
    {5, 512, 20000, 4}, {5, 512, 20000, 8},
};

RunResult run_transport(const std::string& transport, const GridPoint& p,
                        uint64_t per_source) {
  const uint32_t sink_shards = p.shards == 0 ? 1 : p.shards;
  if (transport == "tcp") {
    return run_point<socknet::TcpNetwork>(p.fanin, p.size, per_source,
                                          sink_shards, socknet::TcpConfig{});
  }
  runtime::RuntimeConfig cfg;
  cfg.seed = 1;
  return run_point<runtime::ThreadNetwork>(p.fanin, p.size, per_source,
                                           sink_shards, std::move(cfg));
}

int run_grid(const std::string& json_path, bool quick, bool mailbox_only,
             const std::string& filter) {
  FILE* out = nullptr;
  if (!json_path.empty()) {
    out = std::fopen(json_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "bench_transport: cannot open %s for writing\n",
                   json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"schema\": \"bftreg-bench-transport-v1\",\n");
    std::fprintf(out, "  \"quick\": %s,\n  \"results\": [", quick ? "true" : "false");
  }

  std::fprintf(stderr, "%-7s %8s %6s %7s %14s %10s\n", "net", "size", "fanin",
               "shards", "msgs/s", "MB/s");
  bool first = true;
  int failures = 0;
  for (const char* transport : {"tcp", "thread"}) {
    std::vector<GridPoint> points;
    if (!mailbox_only) {
      points.insert(points.end(), std::begin(kGrid), std::end(kGrid));
    }
    points.insert(points.end(), std::begin(kShardSweep), std::end(kShardSweep));
    for (const auto& p : points) {
      char key[96];
      if (p.shards == 0) {
        std::snprintf(key, sizeof(key), "%s/%zu/%zu", transport, p.size, p.fanin);
      } else {
        std::snprintf(key, sizeof(key), "%s/%zu/%zu/s%u", transport, p.size,
                      p.fanin, p.shards);
      }
      if (!filter.empty() && std::strstr(key, filter.c_str()) == nullptr) {
        continue;
      }
      const uint64_t per_source =
          quick ? std::max<uint64_t>(p.per_source / 4, 16) : p.per_source;
      const RunResult r = run_transport(transport, p, per_source);
      if (!r.completed) ++failures;
      std::fprintf(stderr, "%-7s %8zu %6zu %7u %14.0f %10.1f%s\n", transport,
                   p.size, p.fanin, p.shards == 0 ? 1 : p.shards,
                   r.msgs_per_sec, r.mbps, r.completed ? "" : "  [TIMEOUT]");
      if (out) {
        std::fprintf(out,
                     "%s\n    {\"transport\": \"%s\", \"size\": %zu, "
                     "\"fanin\": %zu, ",
                     first ? "" : ",", transport, p.size, p.fanin);
        if (p.shards != 0) std::fprintf(out, "\"shards\": %u, ", p.shards);
        std::fprintf(out, "\"msgs_per_sec\": %.0f, \"mbps\": %.1f}",
                     r.msgs_per_sec, r.mbps);
        first = false;
      }
    }
  }
  if (out) {
    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
    std::fprintf(stderr, "bench_transport: wrote %s\n", json_path.c_str());
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace bftreg::bench

int main(int argc, char** argv) {
  std::string filter;
  bool mailbox_only = false;
  const auto args = bftreg::bench::BenchArgs::parse(
      argc, argv, "[--mailbox] [--filter=STR]", [&](const char* a) {
        if (std::strncmp(a, "--filter=", 9) == 0) {
          filter = a + 9;
          return true;
        }
        if (std::strcmp(a, "--mailbox") == 0) {
          mailbox_only = true;
          return true;
        }
        return false;
      });
  if (!args) return 2;
  return bftreg::bench::run_grid(args->json_path, args->quick, mailbox_only,
                                 filter);
}
