// Network accounting used by the bandwidth/storage experiments (E4, E7).
#pragma once

#include <cstdint>
#include <mutex>

namespace bftreg::net {

struct MetricsSnapshot {
  uint64_t messages_sent{0};
  uint64_t bytes_sent{0};
  uint64_t messages_delivered{0};
  uint64_t auth_failures{0};
};

/// Thread-safe counters; the simulator uses it single-threaded, the
/// threaded runtime concurrently.
class NetworkMetrics {
 public:
  void on_send(uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    ++snap_.messages_sent;
    snap_.bytes_sent += bytes;
  }
  void on_deliver() {
    std::lock_guard<std::mutex> lock(mu_);
    ++snap_.messages_delivered;
  }
  void on_auth_failure() {
    std::lock_guard<std::mutex> lock(mu_);
    ++snap_.auth_failures;
  }

  MetricsSnapshot snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return snap_;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    snap_ = MetricsSnapshot{};
  }

 private:
  mutable std::mutex mu_;
  MetricsSnapshot snap_;
};

}  // namespace bftreg::net
