// BSR write protocol: Fig. 1.
//
// Two phases:
//   get-tag:  QUERY-TAG to all servers, wait for n-f TAG-RESPs, select the
//             (f+1)-th highest tag t. The rank-(f+1) selection is what makes
//             the phase Byzantine-robust: at most f fabricated sky-high tags
//             can sit above it, so the selected tag is bounded by a tag an
//             honest server actually reported, yet it is >= the tag of every
//             complete preceding write (Lemma 2, Case 1).
//   put-data: (t.num + 1, w) with the new value to all servers, wait for
//             n-f ACKs.
//
// The writer is a single-operation client (the model allows at most one
// outstanding operation per client); start_write asserts non-concurrency.
#pragma once

#include <functional>
#include <vector>

#include "net/transport.h"
#include "registers/config.h"
#include "registers/messages.h"
#include "registers/quorum.h"

namespace bftreg::registers {

struct WriteResult {
  Tag tag;                 // the tag this write installed
  TimeNs invoked_at{0};
  TimeNs completed_at{0};
  int rounds{2};           // get-tag + put-data
};

class BsrWriter : public net::IProcess {
 public:
  using Callback = std::function<void(const WriteResult&)>;

  /// `object` selects which shared variable this writer writes
  /// (Section II-B); 0 is the default register.
  BsrWriter(ProcessId self, SystemConfig config, net::Transport* transport,
            uint32_t object = 0);

  /// Begins write(v). Must be invoked in this process's execution context
  /// (via Transport::post or from within one of its handlers).
  void start_write(Bytes value, Callback callback);

  void on_message(const net::Envelope& env) override;

  bool busy() const { return phase_ != Phase::kIdle; }
  const ProcessId& id() const { return self_; }
  uint64_t writes_completed() const { return writes_completed_; }

 protected:
  /// Sends PUT-DATA to every server. The replication flavor sends the same
  /// (tag, value); BCSR overrides this to send per-server coded elements.
  virtual void send_put_data(const Tag& tag);

  void send_to_all_servers(const RegisterMessage& msg);
  void send_to_server(uint32_t index, const RegisterMessage& msg);
  uint64_t current_op_id() const { return op_id_; }
  uint32_t object() const { return object_; }

  const ProcessId self_;
  const SystemConfig config_;
  net::Transport* const transport_;
  const uint32_t object_;
  Bytes value_;  // the value being written, visible to send_put_data

 private:
  enum class Phase { kIdle, kGetTag, kPutData };

  void on_tag_resp(const ProcessId& from, const RegisterMessage& msg);
  void on_ack(const ProcessId& from, const RegisterMessage& msg);
  void finish();

  Phase phase_{Phase::kIdle};
  uint64_t op_id_{0};
  QuorumTracker responded_;
  std::vector<Tag> tags_;
  Tag write_tag_{};
  Callback callback_;
  TimeNs invoked_at_{0};
  uint64_t writes_completed_{0};
};

}  // namespace bftreg::registers
