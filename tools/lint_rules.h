// Whole-program protocol analyzer for bftreg (CLI driver in
// tools/bftreg_lint.cpp, fixtures in tests/lint_test.cpp).
//
// The analyzer runs in two stages. Stage one builds a lightweight program
// model over every .h/.cpp under src/: a symbol index of function
// definitions, the call graph between them, MutexLock scopes (including
// explicit guard.unlock()/guard.lock() hand-off), declared and observed
// lock-acquisition edges, the ordered Serializer::put_* / Deserializer::
// get_* sequence of every serde function, and per-function summaries
// ("may this function transitively reach a blocking syscall?", "which
// locks may it transitively acquire?") computed to a fixpoint over the
// call graph. Stage two runs the rule passes over the merged model, so a
// violation may span any number of files.
//
// The rules encode conventions the compiler cannot check but that the
// protocol correctness argument (Lemmas 1-4) leans on:
//
//   raw-thread          std::thread outside src/runtime, src/socknet,
//                       src/harness -- protocol code must stay
//                       single-threaded per process; only the transports
//                       and the harness may spawn threads.
//   detach              .detach() anywhere -- detached threads outlive
//                       their network and turn shutdown into a race.
//   raw-random          rand()/srand()/std::random_device outside
//                       src/common/rng.h -- all randomness must flow
//                       through the seeded Rng so executions replay.
//   unguarded-mutex     a mutex member with no GUARDED_BY(name) companion
//                       in the same file -- every lock must write down what
//                       it protects.
//   resilience-literal  `k * f` resilience arithmetic outside
//                       src/registers/config.h -- the 4f+1 / 5f+1 / 3f+1
//                       bounds live in exactly one place.
//   quorum-arithmetic   quorum-sized expressions (`n - f`, `(n + f) / 2`)
//                       outside src/registers/config.h -- quorum sizes flow
//                       from SystemConfig::quorum() / catch_up_quorum() /
//                       witness_threshold(), same single-source rule as the
//                       resilience bounds. Index arithmetic that happens to
//                       spell `n - f` (e.g. "the last f servers" in a
//                       scripted schedule) is waived in place.
//   lock-order          a nested `MutexLock` scope that acquires against a
//                       declared ACQUIRED_BEFORE / ACQUIRED_AFTER edge.
//                       Direct inversions only; transitive consequences of
//                       the declared+observed graph are `lock-cycle`'s job.
//   legacy-single-op    a `.busy()` / `->busy()` call outside
//                       src/registers/ -- busy() is the low-level clients'
//                       one-operation-at-a-time guard; new code should go
//                       through RegisterClient, whose multiplexer runs any
//                       number of operations concurrently (client.h).
//   blocking-in-lock    a call chain from a MutexLock scope to a blocking
//                       syscall (`::sendmsg`, `::recv`, `::connect`, ...)
//                       or framed-I/O helper (write_all/read_exact).
//                       Interprocedural: a direct syscall under the lock is
//                       flagged where it stands, and a call into a function
//                       that *transitively* reaches one is flagged at the
//                       call site with the offending chain spelled out
//                       (`flush -> sendmsg_frames -> ::sendmsg`). I/O under
//                       a lock serializes every thread contending on that
//                       mutex behind the kernel (the old transport's
//                       write_all-under-mutex was exactly this); stage data
//                       under the lock, release, then perform the syscall.
//   lock-cycle          a cycle in the global lock-order graph: declared
//                       ACQUIRED_BEFORE/AFTER edges from every header
//                       merged with acquisition orders actually observed in
//                       code (nested MutexLock scopes, including locks
//                       taken inside transitive callees), transitive
//                       closure computed over the union. A cycle is a
//                       potential deadlock no single file can show.
//   lock-order-undeclared  an acquisition order observed in code (again
//                       including through calls) with no declared
//                       ACQUIRED_BEFORE/AFTER edge covering it. Observed
//                       nesting must be written down where both Clang's
//                       analysis and this linter can hold it against future
//                       edits -- an undeclared edge is invisible until it
//                       completes a cycle.
//   serde-symmetry      a serialize/deserialize pair whose wire formats
//                       drifted apart. For every paired writer/reader (the
//                       `encode`/`parse` methods of one type, or free
//                       `encode_X`/`decode_X` functions sharing the stem X)
//                       the ordered put_* sequence must match the ordered
//                       get_* sequence in count, order, and width
//                       (put_bytes/get_bytes/get_bytes_view/get_string are
//                       one length-prefixed class; put_bool is u8-width).
//                       Catches wire-format drift at lint time instead of
//                       on a cross-version cluster.
//   unchecked-result    a discarded `Result<T>` return: a statement that
//                       calls a Result-returning function and does nothing
//                       with the value. Mirrors the [[nodiscard]] attribute
//                       on Result so the linter and the compiler agree
//                       (and so non-compiled snippets are covered too).
//   atomic-in-ring      an atomic load/store/exchange/fetch_*/
//                       compare_exchange_* without an explicit
//                       memory_order argument inside the lock-free
//                       delivery path (src/runtime/**, common/mpsc_ring.h,
//                       common/seqlock.h). Those files carry a written
//                       memory-order argument per access; an implicit
//                       seq_cst both hides which ordering the proof relies
//                       on and costs a full fence on weakly-ordered
//                       targets. Multi-line calls are handled by a bounded
//                       paren-balanced look-ahead.
//   socknet-thread      std::thread inside src/socknet/ anywhere but
//                       event_loop.{h,cpp}. The transport's entire thread
//                       budget is the LoopShard pool + MailboxPool
//                       consumers; a thread spawned elsewhere in the
//                       transport is the per-endpoint reader/writer design
//                       creeping back in.
//
// A finding can be waived by putting `bftreg-lint: allow(<rule>)` in a
// comment on the offending line or the line directly above it, with a
// justification.
//
// Precision bar: the model is textual (comment-stripped, string-aware,
// brace-tracked), not a C++ front end. Calls are resolved by name, not by
// type; calls made through macros are invisible; a call and its arguments
// must share a line. That is the same bar as the original single-file
// rules -- and every finding is waivable the same way.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace bftreg::lint {

struct Violation {
  std::string file;  // path as given to lint_content (repo-relative)
  int line{0};       // 1-based
  std::string rule;
  std::string message;
};

/// One source file handed to the whole-program analyzer.
struct SourceFile {
  std::string path;     // repo-relative, forward slashes
  std::string content;
};

/// Declared acquisition order: order["a"] contains "b" iff `a` must be
/// acquired before `b` (from `ACQUIRED_BEFORE` / `ACQUIRED_AFTER`
/// annotations on mutex members). Mutexes are identified by their bare
/// member name -- `box->mu` and `mu` are the same lock for this purpose.
using LockOrder = std::map<std::string, std::set<std::string>>;

/// Extracts the ACQUIRED_BEFORE / ACQUIRED_AFTER edges declared in one
/// file's contents (comments stripped first).
LockOrder collect_lock_order(const std::string& content);

/// Runs the single-file rules over one file's contents. `rel_path` must be
/// repo-relative with forward slashes (e.g. "src/codec/rs.cpp") -- the
/// path-scoped rules key off it. The two-argument form checks lock order
/// against the edges declared in the same file; lint_program passes the
/// merged program-wide order. The whole-program passes (interprocedural
/// blocking, lock graph, serde symmetry, unchecked result) need the full
/// model and only run under lint_program / lint_tree.
std::vector<Violation> lint_content(const std::string& rel_path,
                                    const std::string& content);
std::vector<Violation> lint_content(const std::string& rel_path,
                                    const std::string& content,
                                    const LockOrder& order);

/// Builds the program model over `files` and runs every pass: the
/// single-file rules on each file plus the whole-program analyses over the
/// merged model. This is the full analyzer; lint_tree is a thin directory
/// walker over it.
std::vector<Violation> lint_program(const std::vector<SourceFile>& files);

/// Scans `<repo_root>/src` recursively for .h/.cpp files and runs
/// lint_program over them. Returns all violations; I/O errors throw
/// std::runtime_error.
std::vector<Violation> lint_tree(const std::string& repo_root);

/// "path:line: [rule] message" -- one line, compiler-style.
std::string format(const Violation& v);

/// SARIF 2.1.0 document for CI code-scanning upload (one run, one result
/// per violation, rule metadata included). Deterministic output -- the
/// golden test in tests/lint_test.cpp diffs it byte-for-byte.
std::string to_sarif(const std::vector<Violation>& violations);

}  // namespace bftreg::lint
