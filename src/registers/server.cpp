#include "registers/server.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/log.h"

namespace bftreg::registers {

// --- NewestCache ------------------------------------------------------------

void NewestCache::publish(const Tag& tag, const Bytes& value) {
  InlineEntry entry;
  entry.tag_num = tag.num;
  entry.writer_index = tag.writer.index;
  entry.writer_role = static_cast<uint8_t>(tag.writer.role);
  if (value.size() <= kInlineValueCap) {
    entry.oversize = 0;
    entry.len = static_cast<uint16_t>(value.size());
    if (!value.empty()) std::memcpy(entry.data, value.data(), value.size());
  } else {
    // Pointer first, sentinel second: a reader that observes the sentinel
    // through the seqlock's release/acquire pair also observes this store.
    oversize_.store(std::make_shared<const TaggedValue>(TaggedValue{tag, value}),
                    std::memory_order_release);
    entry.oversize = 1;
  }
  inline_.publish(entry);
}

bool NewestCache::read(Tag* tag, Bytes* value) const {
  InlineEntry entry;
  if (!inline_.read(&entry)) return false;
  if (entry.oversize != 0) {
    // The pointee is immutable and carries its own tag, so even if the
    // pointer has advanced past the snapshot we read, the pair returned is
    // self-consistent (and newer -- monotonic, like the seqlock itself).
    const auto pair = oversize_.load(std::memory_order_acquire);
    if (pair == nullptr) return false;  // unreachable; defensive
    *tag = pair->tag;
    if (value != nullptr) *value = pair->value;
    return true;
  }
  *tag = Tag{entry.tag_num,
             ProcessId{static_cast<Role>(entry.writer_role), entry.writer_index}};
  if (value != nullptr) value->assign(entry.data, entry.data + entry.len);
  return true;
}

// --- NewestCacheIndex -------------------------------------------------------

void NewestCacheIndex::insert(uint32_t object, const NewestCache* cache) {
  auto node = std::make_unique<Node>();
  node->object = object;
  node->cache = cache;
  std::atomic<Node*>& head = heads_[object & (kBuckets - 1)];
  node->next = head.load(std::memory_order_relaxed);
  Node* raw = node.get();
  nodes_.push_back(std::move(node));
  // Publication point: the release pairs with find()'s acquire, ordering
  // the node's fields (and everything reachable through them) before any
  // reader can traverse to it.
  head.store(raw, std::memory_order_release);
}

const NewestCache* NewestCacheIndex::find(uint32_t object) const {
  const std::atomic<Node*>& head = heads_[object & (kBuckets - 1)];
  for (const Node* n = head.load(std::memory_order_acquire); n != nullptr;
       n = n->next) {
    if (n->object == object) return n->cache;
  }
  return nullptr;
}

void NewestCacheIndex::collect(std::vector<uint32_t>* out) const {
  for (const std::atomic<Node*>& head : heads_) {
    for (const Node* n = head.load(std::memory_order_acquire); n != nullptr;
         n = n->next) {
      out->push_back(n->object);
    }
  }
}

// --- RegisterServer ---------------------------------------------------------

RegisterServer::RegisterServer(ProcessId self, SystemConfig config,
                               net::Transport* transport, Bytes initial)
    : self_(self),
      config_(std::move(config)),
      transport_(transport),
      initial_(std::move(initial)) {
  initial_store_.emplace(Tag::initial(), initial_);
  const size_t nshards = std::max<size_t>(1, config_.server_shards);
  shards_.reserve(nshards);
  for (size_t s = 0; s < nshards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  materialize(0);  // the default register exists from the start
}

uint32_t RegisterServer::delivery_shards() const {
  return static_cast<uint32_t>(shards_.size());
}

uint32_t RegisterServer::shard_of(const net::Envelope& env) const {
  // Wire layout (messages.cpp): type u8 at 0, op_id u64 at 1, object u32
  // little-endian at 9. Peeking avoids a full defensive parse per routing
  // decision; anything shorter than the fixed prefix cannot be a valid
  // message and lands on shard 0 for the parser to reject.
  constexpr size_t kObjectOffset = 1 + 8;
  if (env.payload.size() < kObjectOffset + 4) return 0;
  const uint8_t* p = env.payload.data() + kObjectOffset;
  const uint32_t object = static_cast<uint32_t>(p[0]) |
                          (static_cast<uint32_t>(p[1]) << 8) |
                          (static_cast<uint32_t>(p[2]) << 16) |
                          (static_cast<uint32_t>(p[3]) << 24);
  return owner_shard(object);
}

uint32_t RegisterServer::owner_shard(uint32_t object) const {
  if (shards_.size() == 1) return 0;
  return static_cast<uint32_t>(fnv1a64(&object, sizeof(object)) %
                               shards_.size());
}

RegisterServer::Shard& RegisterServer::shard_for(uint32_t object) {
  return *shards_[owner_shard(object)];
}

const RegisterServer::Shard& RegisterServer::shard_for(uint32_t object) const {
  return *shards_[owner_shard(object)];
}

RegisterServer::ObjectState& RegisterServer::materialize(uint32_t object) {
  Shard& shard = shard_for(object);
  auto it = shard.objects.find(object);
  if (it == shard.objects.end()) {
    it = shard.objects.try_emplace(object).first;  // in place: not movable
    it->second.log.emplace(Tag::initial(), initial_);
    stored_bytes_.fetch_add(initial_.size(), std::memory_order_relaxed);
    it->second.newest.publish(Tag::initial(), initial_);
    // Index entry last: a cross-shard reader that finds the cache sees it
    // already holding the {t0, initial} snapshot. Map nodes are stable, so
    // the pointer survives future inserts.
    shard.index.insert(object, &it->second.newest);
  }
  return it->second;
}

std::map<Tag, Bytes>& RegisterServer::object_store(uint32_t object) {
  return materialize(object).log;
}

const std::map<Tag, Bytes>* RegisterServer::find_store(uint32_t object) const {
  const Shard& shard = shard_for(object);
  auto it = shard.objects.find(object);
  return it == shard.objects.end() ? nullptr : &it->second.log;
}

std::pair<Tag, const Bytes*> RegisterServer::newest_entry(uint32_t object) const {
  if (const auto* store = find_store(object)) {
    auto newest = store->rbegin();
    return {newest->first, &newest->second};
  }
  return {Tag::initial(), &initial_};
}

bool RegisterServer::read_newest(uint32_t object, Tag* tag, Bytes* value) const {
  const NewestCache* cache = shard_for(object).index.find(object);
  return cache != nullptr && cache->read(tag, value);
}

size_t RegisterServer::stored_bytes() const {
  const size_t total = stored_bytes_.load(std::memory_order_relaxed);
#ifndef NDEBUG
  // Quiescent callers only (see header): cross-check the incremental
  // counter against the full walk it replaced.
  size_t walked = 0;
  for (const auto& shard : shards_) {
    for (const auto& [object, state] : shard->objects) {
      for (const auto& [tag, value] : state.log) walked += value.size();
    }
  }
  assert(walked == total && "incremental stored_bytes diverged from walk");
#endif
  return total;
}

size_t RegisterServer::objects_known() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->objects.size();
  return total;
}

std::vector<uint32_t> RegisterServer::object_ids() const {
  std::vector<uint32_t> out;
  for (const auto& shard : shards_) {
    for (const auto& [object, state] : shard->objects) out.push_back(object);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void RegisterServer::reply(const ProcessId& to, RegisterMessage& msg) {
  msg.epoch = view_epoch_.load(std::memory_order_acquire);
  transport_->send(self_, to, msg.encode());
}

void RegisterServer::observe_epoch(uint64_t epoch) {
  uint64_t cur = view_epoch_.load(std::memory_order_relaxed);
  while (epoch > cur &&
         !view_epoch_.compare_exchange_weak(cur, epoch,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
  }
}

void RegisterServer::broadcast_view(uint64_t epoch,
                                    const std::vector<uint32_t>& members,
                                    const std::vector<ProcessId>& recipients) {
  observe_epoch(epoch);
  RegisterMessage msg;
  msg.type = MsgType::kViewAnnounce;
  msg.objects = members;
  msg.epoch = epoch;  // the announced epoch, not (necessarily) our newest
  const Bytes payload = msg.encode();
  for (const ProcessId& to : recipients) {
    if (to == self_) continue;
    transport_->send(self_, to, payload);
  }
}

void RegisterServer::handle_query_objects(const ProcessId& from,
                                          const RegisterMessage& req) {
  // Same cap as QUERY-DATA-BATCH: the recovering peer syncs in batches, and
  // an unbounded id list would let a ballooned store forge a huge reply.
  constexpr size_t kMaxObjects = 4096;
  RegisterMessage resp;
  resp.type = MsgType::kObjectsResp;
  resp.op_id = req.op_id;
  for (const auto& shard : shards_) {
    shard->index.collect(&resp.objects);
    if (resp.objects.size() >= kMaxObjects) break;
  }
  std::sort(resp.objects.begin(), resp.objects.end());
  if (resp.objects.size() > kMaxObjects) resp.objects.resize(kMaxObjects);
  reply(from, resp);
}

void RegisterServer::on_message(const net::Envelope& env) {
  auto msg = RegisterMessage::parse(env.payload);
  if (!msg) {
    LOG_DEBUG << to_string(self_) << ": dropping malformed payload from "
              << to_string(env.from);
    return;
  }
  // Fold the piggybacked epoch in before dispatch: even requests carry the
  // sender's view, so a server that missed an announce converges anyway.
  observe_epoch(msg->epoch);
  switch (msg->type) {
    case MsgType::kQueryTag:
      handle_query_tag(env.from, *msg);
      break;
    case MsgType::kPutData:
      handle_put_data(env.from, std::move(*msg));
      break;
    case MsgType::kQueryData:
      handle_query_data(env.from, *msg);
      break;
    case MsgType::kQueryHistory:
      handle_query_history(env.from, *msg);
      break;
    case MsgType::kQueryTagHistory:
      handle_query_tag_history(env.from, *msg);
      break;
    case MsgType::kQueryDataAt:
      handle_query_data_at(env.from, *msg);
      break;
    case MsgType::kReadDone:
      handle_read_done(env.from, *msg);
      break;
    case MsgType::kQueryDataBatch:
      handle_query_data_batch(env.from, *msg);
      break;
    case MsgType::kQueryObjects:
      handle_query_objects(env.from, *msg);
      break;
    case MsgType::kViewAnnounce:
      // The epoch fold above is the whole effect: views are tracked by
      // clients; servers only need the epoch for piggybacking.
      break;
    default:
      // Response types and RB frames are not for a basic server.
      break;
  }
}

void RegisterServer::handle_query_tag(const ProcessId& from,
                                      const RegisterMessage& req) {
  RegisterMessage resp;
  resp.type = MsgType::kTagResp;
  resp.op_id = req.op_id;
  resp.object = req.object;
  // Seqlock fast path: the newest tag comes from the published snapshot,
  // not the shard's map (identical answer -- the owner publishes on every
  // applied put and this handler runs on the owner shard).
  if (!read_newest(req.object, &resp.tag, nullptr)) resp.tag = Tag::initial();
  reply(from, resp);
}

bool RegisterServer::apply_put(uint32_t object, const Tag& tag, Bytes value) {
  ObjectState& state = materialize(object);
  auto& store = state.log;
  const size_t value_size = value.size();
  bool added = false;
  switch (config_.store_policy) {
    case StorePolicy::kMaxOnly:
      // Fig. 3 line 5: add only if the tag beats everything in L.
      if (tag > store.rbegin()->first) {
        store.emplace(tag, std::move(value));
        added = true;
      }
      break;
    case StorePolicy::kAll:
      added = store.emplace(tag, std::move(value)).second;
      break;
  }
  if (!added) return false;
  puts_applied_.fetch_add(1, std::memory_order_relaxed);
  stored_bytes_.fetch_add(value_size, std::memory_order_relaxed);

  // Optional GC: drop the lowest-tagged entries beyond the budget. The
  // newest pair always survives, so QUERY-TAG / QUERY-DATA semantics are
  // untouched; only history-consulting reads feel this.
  if (config_.max_history > 0) {
    while (store.size() > config_.max_history) {
      stored_bytes_.fetch_sub(store.begin()->second.size(),
                              std::memory_order_relaxed);
      store.erase(store.begin());
    }
  }

  // Publish the (possibly unchanged, if an old tag was back-filled) newest
  // pair; tags only grow, so snapshot versions are tag-monotonic.
  const auto newest = store.rbegin();
  state.newest.publish(newest->first, newest->second);

  // Wake any readers whose two-round get-data asked for this tag.
  Shard& shard = shard_for(object);
  if (auto it = shard.deferred.find({object, tag}); it != shard.deferred.end()) {
    RegisterMessage resp;
    resp.type = MsgType::kDataAtResp;
    resp.object = object;
    resp.tag = tag;
    resp.value = store[tag];
    for (const auto& [reader, op_id] : it->second) {
      resp.op_id = op_id;
      reply(reader, resp);
      // Unindex the satisfied waiter (its other deferred keys, if any, stay).
      if (auto rev = shard.deferred_by_op.find({reader, op_id});
          rev != shard.deferred_by_op.end()) {
        std::erase(rev->second, std::make_pair(object, tag));
        if (rev->second.empty()) shard.deferred_by_op.erase(rev);
      }
    }
    shard.deferred.erase(it);
  }
  return true;
}

void RegisterServer::handle_put_data(const ProcessId& from, RegisterMessage req) {
  apply_put(req.object, req.tag, std::move(req.value));
  // Fig. 3: the ACK is sent regardless of whether the entry was new.
  RegisterMessage ack;
  ack.type = MsgType::kAck;
  ack.op_id = req.op_id;
  ack.object = req.object;
  ack.tag = req.tag;
  reply(from, ack);
}

void RegisterServer::handle_query_data(const ProcessId& from,
                                       const RegisterMessage& req) {
  RegisterMessage resp;
  resp.type = MsgType::kDataResp;
  resp.op_id = req.op_id;
  resp.object = req.object;
  if (!read_newest(req.object, &resp.tag, &resp.value)) {
    resp.tag = Tag::initial();
    resp.value = initial_;
  }
  reply(from, resp);
}

void RegisterServer::handle_query_history(const ProcessId& from,
                                          const RegisterMessage& req) {
  RegisterMessage resp;
  resp.type = MsgType::kHistoryResp;
  resp.op_id = req.op_id;
  resp.object = req.object;
  if (const auto* store = find_store(req.object)) {
    resp.history.reserve(store->size());
    for (const auto& [tag, value] : *store) {
      resp.history.push_back(TaggedValue{tag, value});
    }
  } else {
    resp.history.push_back(TaggedValue{Tag::initial(), initial_});
  }
  reply(from, resp);
}

void RegisterServer::handle_query_tag_history(const ProcessId& from,
                                              const RegisterMessage& req) {
  RegisterMessage resp;
  resp.type = MsgType::kTagHistoryResp;
  resp.op_id = req.op_id;
  resp.object = req.object;
  if (const auto* store = find_store(req.object)) {
    resp.tags.reserve(store->size());
    for (const auto& [tag, value] : *store) resp.tags.push_back(tag);
  } else {
    resp.tags.push_back(Tag::initial());
  }
  reply(from, resp);
}

void RegisterServer::handle_query_data_at(const ProcessId& from,
                                          const RegisterMessage& req) {
  const auto* store = find_store(req.object);
  const Bytes* value = nullptr;
  if (store != nullptr) {
    if (auto it = store->find(req.tag); it != store->end()) value = &it->second;
  } else if (req.tag == Tag::initial()) {
    value = &initial_;  // unknown object reads as its lazy initialization
  }
  if (value != nullptr) {
    RegisterMessage resp;
    resp.type = MsgType::kDataAtResp;
    resp.op_id = req.op_id;
    resp.object = req.object;
    resp.tag = req.tag;
    resp.value = *value;
    reply(from, resp);
    return;
  }
  // Not known yet: tell the reader so, and defer a real answer until the
  // corresponding PUT-DATA reaches us (channels are reliable, so unless the
  // writer crashed mid-multicast it eventually will; see the liveness
  // discussion in two_round_reader.h). PUT-DATA for this object routes to
  // this shard, so the wake-up in apply_put finds the waiter locally.
  Shard& shard = shard_for(req.object);
  shard.deferred[{req.object, req.tag}].emplace_back(from, req.op_id);
  shard.deferred_by_op[{from, req.op_id}].emplace_back(req.object, req.tag);
  RegisterMessage resp;
  resp.type = MsgType::kDataAtMissing;
  resp.op_id = req.op_id;
  resp.object = req.object;
  resp.tag = req.tag;
  reply(from, resp);
}

void RegisterServer::handle_query_data_batch(const ProcessId& from,
                                             const RegisterMessage& req) {
  // Cap the batch: an oversized request must not balloon server state with
  // lazily created stores (the model's clients are crash-only, but defense
  // in depth costs nothing).
  constexpr size_t kMaxBatch = 4096;
  const size_t count = std::min(req.objects.size(), kMaxBatch);

  RegisterMessage resp;
  resp.type = MsgType::kDataBatchResp;
  resp.op_id = req.op_id;
  resp.objects.assign(req.objects.begin(),
                      req.objects.begin() + static_cast<long>(count));
  resp.history.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // The request's objects may be owned by other shards; the seqlock
    // snapshots are the one structure safe to read across shard threads.
    TaggedValue tv;
    if (!read_newest(req.objects[i], &tv.tag, &tv.value)) {
      tv = TaggedValue{Tag::initial(), initial_};
    }
    resp.history.push_back(std::move(tv));
  }
  reply(from, resp);
}

void RegisterServer::handle_read_done(const ProcessId& from,
                                      const RegisterMessage& req) {
  // Exact-match on the op id: ids are namespaced per (client, object,
  // protocol) and therefore NOT monotone across a client's concurrent
  // operations -- a range erase (op_id <= done id) would cancel deferred
  // replies belonging to that client's still-running reads in other
  // namespaces. The reverse index pinpoints this op's deferred keys, so
  // the cancel never touches other readers' waiters. READ-DONE carries the
  // op's object id, so it routes to the shard holding those waiters.
  Shard& shard = shard_for(req.object);
  auto rev = shard.deferred_by_op.find({from, req.op_id});
  if (rev == shard.deferred_by_op.end()) return;
  for (const auto& key : rev->second) {
    auto it = shard.deferred.find(key);
    if (it == shard.deferred.end()) continue;
    auto& waiters = it->second;
    std::erase_if(waiters, [&](const auto& w) {
      return w.first == from && w.second == req.op_id;
    });
    if (waiters.empty()) shard.deferred.erase(it);
  }
  shard.deferred_by_op.erase(rev);
}

}  // namespace bftreg::registers
