#include "harness/scenarios.h"

#include <cassert>
#include <string>

#include "storage/persistent_server.h"

namespace bftreg::harness {

using registers::MsgType;
using registers::RegisterMessage;

void LaggingLiar::handle(const net::Envelope& env, adversary::ServerContext& ctx) {
  auto msg = RegisterMessage::parse(env.payload);
  if (!msg) return;
  RegisterMessage resp;
  resp.op_id = msg->op_id;
  switch (msg->type) {
    case MsgType::kQueryTag:
      resp.type = MsgType::kTagResp;
      resp.tag = store_.empty() ? Tag::initial() : store_.rbegin()->first;
      break;
    case MsgType::kPutData:
      store_[msg->tag] = msg->value;
      resp.type = MsgType::kAck;
      resp.tag = msg->tag;
      break;
    case MsgType::kQueryData: {
      resp.type = MsgType::kDataResp;
      auto it = store_.rbegin();
      if (it != store_.rend() && std::next(it) != store_.rend()) ++it;
      if (it == store_.rend()) {
        resp.tag = Tag::initial();
        resp.value = ctx.initial;
      } else {
        resp.tag = it->first;
        resp.value = it->second;
      }
      break;
    }
    default:
      return;
  }
  ctx.send(env.from, resp);
}

Bytes run_theorem5_schedule(SimCluster& cluster) {
  cluster.start();
  auto& delay = cluster.sim().delay_model();
  const auto n = static_cast<uint32_t>(cluster.options().config.n);
  const auto f = static_cast<uint32_t>(cluster.options().config.f);

  // Generalization of the proof's n = 4, f = 1 schedule to arbitrary f
  // (callers place LaggingLiar adversaries at servers 0..f-1):
  //   W1(v1) is withheld from the last f servers;
  //   W2(v2) is withheld from the f honest servers right after the liars;
  //   the read gets no replies from the last f servers.
  // At n = 4f the read's quorum sees v1 at 2f servers (f liars + f honest
  // that missed W2) and v2 at only f < f+1 -- stale v1 wins. At n = 4f+1
  // one more fresh server pushes v2 to f+1 witnesses and its higher tag
  // prevails.
  auto withhold_put = [](uint32_t writer, uint32_t from, uint32_t to) {
    return [writer, from, to](const net::Envelope& env) -> std::optional<TimeNs> {
      auto msg = RegisterMessage::parse(env.payload);
      if (msg && msg->type == MsgType::kPutData &&
          env.from == ProcessId::writer(writer) && env.to.is_server() &&
          env.to.index >= from && env.to.index < to) {
        return TimeNs{1'000'000'000};
      }
      return std::nullopt;
    };
  };

  // "The last f servers" of the proof schedule: index arithmetic, not a
  // quorum size. bftreg-lint: allow(quorum-arithmetic)
  delay.set_hook(withhold_put(0, n - f, n));
  cluster.write(0, Bytes{'v', '1'});
  cluster.sim().run_until_time(cluster.sim().now() + 100'000);

  delay.set_hook(withhold_put(1, f, 2 * f));
  cluster.write(1, Bytes{'v', '2'});
  cluster.sim().run_until_time(cluster.sim().now() + 100'000);

  delay.set_hook([n, f](const net::Envelope& env) -> std::optional<TimeNs> {
    // Schedule index range, not a quorum size: the read hears nothing
    // from the last f servers. bftreg-lint: allow(quorum-arithmetic)
    if (env.from.is_server() && env.from.index >= n - f &&
        env.to.role == Role::kReader) {
      return TimeNs{1'000'000'000};
    }
    return std::nullopt;
  });
  return cluster.read(0).value;
}

registers::ReadResult run_theorem3_schedule(SimCluster& cluster) {
  cluster.write(0, Bytes{'v', '1'});
  cluster.sim().run_until_idle();

  cluster.sim().delay_model().set_hook(
      [](const net::Envelope& env) -> std::optional<TimeNs> {
        if (env.from.role != Role::kWriter || env.from.index == 0) {
          return std::nullopt;
        }
        auto msg = RegisterMessage::parse(env.payload);
        if (!msg || msg->type != MsgType::kPutData) return std::nullopt;
        if (env.to == ProcessId::server(env.from.index)) return TimeNs{10};
        return TimeNs{1'000'000'000};  // "the other messages ... are slow"
      });

  for (size_t w = 1; w <= 4; ++w) {
    cluster.start_write(w, Bytes{'v', static_cast<uint8_t>('1' + w)});
  }
  cluster.sim().run_until_time(cluster.sim().now() + 200'000);

  const uint64_t rid = cluster.start_read(0);
  cluster.await(rid);
  return cluster.read_result(rid);
}

// --- churn schedules ---------------------------------------------------------

uint64_t schedule_seed(const std::string& name, uint64_t base_seed) {
  return fnv1a64(name.data(), name.size()) ^ base_seed;
}

ChurnOutcome run_churn_schedule(SimCluster& cluster,
                                const adversary::ChurnSchedule& schedule) {
  cluster.start();
  ChurnOutcome out;
  out.seed = schedule_seed(schedule.name, cluster.options().seed);
  // Reseed the scenario RNG (delay draws AND the write values below): from
  // here on the execution is a pure function of (schedule name, base seed),
  // whatever ran on this simulator before.
  cluster.sim().rng().reseed(out.seed);
  Rng values(out.seed * 0x9E3779B97F4A7C15ULL + 1);

  const TimeNs t0 = cluster.sim().now();
  std::vector<size_t> restarted;
  for (const auto& step : schedule.steps) {
    cluster.sim().run_until_time(t0 + step.at);
    switch (step.action) {
      case adversary::ChurnAction::kCrash:
        cluster.crash_server(step.index);
        break;
      case adversary::ChurnAction::kRestart:
        cluster.restart_server(step.index);
        restarted.push_back(step.index);
        break;
      case adversary::ChurnAction::kStartWrite: {
        Bytes value(8);
        const uint64_t v = values.next_u64();
        for (size_t b = 0; b < value.size(); ++b) {
          value[b] = static_cast<uint8_t>(v >> (8 * b));
        }
        out.write_ids.push_back(cluster.start_write(step.index, std::move(value)));
        break;
      }
      case adversary::ChurnAction::kStartRead:
        out.read_ids.push_back(cluster.start_read(step.index));
        break;
    }
  }
  for (const uint64_t id : out.write_ids) cluster.await(id);
  for (const uint64_t id : out.read_ids) cluster.await(id);

  // Drive the catch-up state machines to completion and collect the proof
  // counters: requests a recovering server received were dropped, never
  // answered.
  for (const size_t index : restarted) {
    auto* srv = cluster.persistent_server(index);
    assert(srv != nullptr);
    const bool ok = cluster.sim().run_until([srv] { return srv->is_serving(); });
    out.recovered_serving = out.recovered_serving && ok;
    out.refused_during_catch_up += srv->refused_while_catching_up();
  }
  return out;
}

}  // namespace bftreg::harness
