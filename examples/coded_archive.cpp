// coded_archive: store large documents with BCSR and measure what the
// erasure coding buys (Section I-C / Section IV).
//
// An "archive" of documents is written through the SWMR coded register at
// n = 5f+1 servers and read back with one-shot reads while f servers
// fabricate elements and another f lag behind -- the worst-case erroneous
// mix of Lemma 4. The example prints, side by side with a replicated BSR
// deployment of equal fault tolerance, the per-server and total storage
// and the bytes moved per operation: coding cuts both by ~k/n.
//
//   ./build/examples/coded_archive
#include <cstdio>
#include <string>

#include "harness/sim_cluster.h"
#include "workload/workload.h"

using namespace bftreg;

namespace {

struct Footprint {
  size_t stored_total{0};
  uint64_t write_bytes{0};
  uint64_t read_bytes{0};
  bool reads_ok{true};
};

Footprint run_archive(harness::Protocol protocol, size_t n, size_t f,
                      size_t doc_size, size_t docs) {
  harness::ClusterOptions o;
  o.protocol = protocol;
  o.config.n = n;
  o.config.f = f;
  // Keep only the newest version server-side so the storage comparison is
  // apples to apples (one live version per server).
  o.config.store_policy = registers::StorePolicy::kMaxOnly;
  o.num_writers = 1;
  o.num_readers = 1;
  o.seed = 99;
  harness::SimCluster cluster(o);
  if (protocol == harness::Protocol::kBcsr) {
    cluster.set_byzantine(0, adversary::StrategyKind::kFabricate);
  }

  Footprint fp;
  for (size_t d = 0; d < docs; ++d) {
    const Bytes doc = workload::make_value(42, d, doc_size);

    auto before = cluster.sim().metrics().snapshot();
    cluster.write(0, doc);
    cluster.sim().run_until_idle();
    auto after = cluster.sim().metrics().snapshot();
    fp.write_bytes += after.bytes_sent - before.bytes_sent;

    before = after;
    const auto r = cluster.read(0);
    cluster.sim().run_until_idle();
    after = cluster.sim().metrics().snapshot();
    fp.read_bytes += after.bytes_sent - before.bytes_sent;
    fp.reads_ok = fp.reads_ok && (r.value == doc);
  }
  fp.stored_total = cluster.total_stored_bytes();
  return fp;
}

}  // namespace

int main() {
  constexpr size_t kDocSize = 64 * 1024;  // 64 KiB documents
  constexpr size_t kDocs = 8;
  constexpr size_t kF = 1;
  const size_t n_bcsr = 5 * kF + 1;  // 6 servers, k = 1... use a wider cluster
  // A wider BCSR cluster gives a real k: n = 11, f = 1 -> k = 6.
  const size_t n_wide = 11;
  const size_t k_wide = n_wide - 5 * kF;
  const size_t n_bsr = 4 * kF + 1;

  std::printf("document archive: %zu docs x %zu KiB, f = %zu\n\n", kDocs,
              kDocSize / 1024, kF);

  const auto repl = run_archive(harness::Protocol::kBsr, n_bsr, kF, kDocSize, kDocs);
  const auto coded =
      run_archive(harness::Protocol::kBcsr, n_wide, kF, kDocSize, kDocs);
  const auto coded_min =
      run_archive(harness::Protocol::kBcsr, n_bcsr, kF, kDocSize, kDocs);

  std::printf("%-26s %14s %14s %14s\n", "", "BSR n=5 (repl)", "BCSR n=11 k=6",
              "BCSR n=6 k=1");
  std::printf("%-26s %11zu KiB %11zu KiB %11zu KiB\n", "total bytes stored",
              repl.stored_total / 1024, coded.stored_total / 1024,
              coded_min.stored_total / 1024);
  std::printf("%-26s %11llu KiB %11llu KiB %11llu KiB\n", "bytes moved per write",
              static_cast<unsigned long long>(repl.write_bytes / kDocs / 1024),
              static_cast<unsigned long long>(coded.write_bytes / kDocs / 1024),
              static_cast<unsigned long long>(coded_min.write_bytes / kDocs / 1024));
  std::printf("%-26s %11llu KiB %11llu KiB %11llu KiB\n", "bytes moved per read",
              static_cast<unsigned long long>(repl.read_bytes / kDocs / 1024),
              static_cast<unsigned long long>(coded.read_bytes / kDocs / 1024),
              static_cast<unsigned long long>(coded_min.read_bytes / kDocs / 1024));
  std::printf("%-26s %14s %14s %14s\n", "reads correct under faults",
              repl.reads_ok ? "yes" : "NO", coded.reads_ok ? "yes" : "NO",
              coded_min.reads_ok ? "yes" : "NO");

  std::printf(
      "\nreplication stores n full copies; [n=%zu,k=%zu] MDS coding stores\n"
      "n/k = %.2f copies' worth -- at the price of %zu extra servers versus\n"
      "BSR (n >= 5f+1 instead of 4f+1, and that bound is tight: Thm. 6).\n",
      n_wide, k_wide, static_cast<double>(n_wide) / static_cast<double>(k_wide),
      n_wide - n_bsr);

  return repl.reads_ok && coded.reads_ok && coded_min.reads_ok ? 0 : 1;
}
