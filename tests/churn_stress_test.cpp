// Rolling-restart fault drill on the wall-clock runtime: every server of a
// live cluster is crash/rejoined in sequence while four client threads keep
// a mixed read/write workload running, and the whole recorded execution is
// judged by the atomicity checker afterwards.
//
// This is the membership layer's end-to-end obligation on real threads:
//   - ThreadNetwork::quiesce must fence half-run handlers before the WAL
//     is replayed (no torn state, no data race -- TSan watches);
//   - the recovering server must refuse traffic until quorum catch-up
//     completes (clients just see a slow server and finish on the others);
//   - the post-recovery VIEW-ANNOUNCE must not confuse in-flight ops.
//
// Labeled slow+churn: the sanitizer CI jobs run it (`ctest -L churn`),
// quick local runs skip it (`ctest -LE slow`).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "checker/consistency.h"
#include "checker/execution.h"
#include "harness/thread_cluster.h"
#include "storage/persistent_server.h"

namespace bftreg::harness {
namespace {

/// Unique temp directory per test; removed recursively on destruction.
class TempWalDir {
 public:
  explicit TempWalDir(const std::string& stem) {
    path_ = (std::filesystem::temp_directory_path() /
             ("bftreg_" + stem + "_" + std::to_string(::getpid())))
                .string();
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempWalDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TimeNs wall_now() {
  return static_cast<TimeNs>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count());
}

/// ExecutionRecorder is not thread-safe; every client thread records its
/// invocation/response events through this mutex-guarded wrapper.
class SharedRecorder {
 public:
  uint64_t begin_write(const ProcessId& client, Bytes value) {
    std::lock_guard<std::mutex> lock(mu_);
    return rec_.begin_write(client, wall_now(), std::move(value));
  }
  void complete_write(uint64_t id, const Tag& tag) {
    std::lock_guard<std::mutex> lock(mu_);
    rec_.complete_write(id, wall_now(), tag);
  }
  uint64_t begin_read(const ProcessId& client) {
    std::lock_guard<std::mutex> lock(mu_);
    return rec_.begin_read(client, wall_now());
  }
  void complete_read(uint64_t id, Bytes value, const Tag& tag) {
    std::lock_guard<std::mutex> lock(mu_);
    rec_.complete_read(id, wall_now(), std::move(value), tag);
  }
  /// Only valid after the client threads joined.
  const checker::ExecutionRecorder& recorder() const { return rec_; }

 private:
  std::mutex mu_;
  checker::ExecutionRecorder rec_;
};

Bytes value_of(size_t writer, uint64_t seq) {
  Bytes v(8);
  v[0] = static_cast<uint8_t>('A' + writer);
  for (size_t b = 1; b < 8; ++b) v[b] = static_cast<uint8_t>(seq >> (8 * (b - 1)));
  return v;
}

TEST(ChurnStressTest, RollingRestartUnderMixedLoadStaysAtomic) {
  constexpr size_t kN = 5;
  constexpr size_t kF = 1;
  constexpr size_t kWriters = 2;
  constexpr size_t kReaders = 2;

  TempWalDir wal("churn_stress");
  ThreadClusterOptions o;
  o.protocol = Protocol::kBsrWb;  // the atomic variant: strongest oracle
  o.config.n = kN;
  o.config.f = kF;
  o.num_writers = kWriters;
  o.num_readers = kReaders;
  o.seed = 29;
  o.wal_dir = wal.path();
  ThreadCluster cluster(o);
  cluster.start();

  SharedRecorder recorder;
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;

  // Clients run until the drill ends (stop is set after the last restart),
  // lightly throttled so the recorded history stays small enough for the
  // O(ops^2) checkers while still overlapping every restart window.
  for (size_t w = 0; w < kWriters; ++w) {
    clients.emplace_back([&, w] {
      for (uint64_t seq = 1; !stop.load(); ++seq) {
        Bytes v = value_of(w, seq);
        const uint64_t id = recorder.begin_write(ProcessId::writer(static_cast<uint32_t>(w)), v);
        const auto result = cluster.write(w, std::move(v));
        recorder.complete_write(id, result.tag);
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      }
    });
  }
  for (size_t r = 0; r < kReaders; ++r) {
    clients.emplace_back([&, r] {
      while (!stop.load()) {
        const uint64_t id = recorder.begin_read(ProcessId::reader(static_cast<uint32_t>(r)));
        const auto result = cluster.read(r);
        recorder.complete_read(id, result.value, result.tag);
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      }
    });
  }

  // The drill: bounce every server in sequence while the load runs. Each
  // restart_server call BLOCKS until the recovered server finished quorum
  // catch-up, so restarts never overlap and a quorum of n - 1 = 4 healthy
  // servers always remains for the clients.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  for (size_t i = 0; i < kN; ++i) {
    cluster.restart_server(i);
    auto* srv = cluster.persistent_server(i);
    ASSERT_NE(srv, nullptr);
    EXPECT_TRUE(srv->is_serving());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  stop.store(true);
  for (auto& t : clients) t.join();
  cluster.stop();

  // Every recorded operation must have completed (blocking API), and the
  // full interleaving -- restarts included -- must still linearize.
  const auto& ops = recorder.recorder().ops();
  ASSERT_FALSE(ops.empty());
  size_t writes = 0;
  for (const auto& op : ops) {
    EXPECT_TRUE(op.completed);
    if (op.kind == checker::OpRecord::Kind::kWrite) ++writes;
  }
  EXPECT_GT(writes, 0u);

  checker::CheckOptions copts;
  const auto verdict = checker::check_atomicity(ops, copts);
  EXPECT_TRUE(verdict.ok) << verdict.violation << "\n"
                          << recorder.recorder().dump_timeline();
}

}  // namespace
}  // namespace bftreg::harness
