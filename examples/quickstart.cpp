// Quickstart: a 5-server BSR register (n = 4f+1, f = 1) in the
// deterministic simulator, driven through the high-level RegisterClient --
// write a value, read it back in one round, then pipeline a burst of
// operations over many objects through the same single client.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "adversary/byzantine_server.h"
#include "checker/consistency.h"
#include "checker/execution.h"
#include "registers/registers.h"
#include "sim/simulator.h"

using namespace bftreg;

int main() {
  // Centralized validation: a bad (n, f) is reported, not asserted.
  auto built = registers::SystemConfig::builder().n(5).f(1).build_for_bsr();
  if (!built) {
    std::fprintf(stderr, "config: %s\n", built.error().detail.c_str());
    return 2;
  }
  const registers::SystemConfig config = built.value();

  sim::SimConfig sc;
  sc.seed = 2024;
  sim::Simulator sim(std::move(sc));

  // n servers; one of them turns out to be Byzantine. BSR does not care.
  std::vector<std::unique_ptr<registers::RegisterServer>> servers;
  for (uint32_t i = 0; i < config.n; ++i) {
    if (i == 3) continue;
    servers.push_back(std::make_unique<registers::RegisterServer>(
        ProcessId::server(i), config, &sim, Bytes{}));
    sim.add_process(ProcessId::server(i), servers.back().get());
  }
  adversary::ServerContext ctx;
  ctx.self = ProcessId::server(3);
  ctx.config = config;
  ctx.transport = &sim;
  ctx.rng = Rng(999);
  adversary::ByzantineServer byzantine(
      std::move(ctx),
      adversary::make_strategy(adversary::StrategyKind::kFabricate, 999));
  sim.add_process(ProcessId::server(3), &byzantine);

  // ONE client object serves every operation of this process -- reads,
  // writes, batches, across any number of objects, any number in flight.
  registers::RegisterClient client(ProcessId::writer(0), config, &sim);
  sim.add_process(client.id(), &client);
  sim.start_all();

  std::printf("BSR register: n=%zu servers, f=%zu Byzantine tolerated\n\n",
              config.n, config.f);

  checker::ExecutionRecorder recorder;

  // Write: two rounds (get-tag, put-data).
  const std::string text = "hello, byzantine world";
  registers::WriteResult w;
  bool write_done = false;
  sim.post(client.id(), [&] {
    const uint64_t rec =
        recorder.begin_write(client.id(), sim.now(), Bytes(text.begin(), text.end()));
    client.write(0, Bytes(text.begin(), text.end()),
                 [&, rec](const registers::WriteResult& r) {
                   recorder.complete_write(rec, r.completed_at, r.tag);
                   w = r;
                   write_done = true;
                 });
  });
  sim.run_until([&] { return write_done; });
  std::printf("write(\"%s\")\n  tag=(%llu, writer:%u), rounds=%d, latency=%llu ns\n",
              text.c_str(), static_cast<unsigned long long>(w.tag.num),
              w.tag.writer.index, w.rounds,
              static_cast<unsigned long long>(w.completed_at - w.invoked_at));

  // Read: ONE round -- the paper's headline one-shot read.
  registers::ReadResult r;
  bool read_done = false;
  sim.post(client.id(), [&] {
    const uint64_t rec = recorder.begin_read(client.id(), sim.now());
    client.read(0, [&, rec](const registers::ReadResult& res) {
      recorder.complete_read(rec, res.completed_at, res.value, res.tag);
      r = res;
      read_done = true;
    });
  });
  sim.run_until([&] { return read_done; });
  std::printf("read()\n  -> \"%s\", rounds=%d (one-shot), latency=%llu ns\n",
              std::string(r.value.begin(), r.value.end()).c_str(), r.rounds,
              static_cast<unsigned long long>(r.completed_at - r.invoked_at));

  // Pipelining: the client multiplexes operations, so a burst of writes to
  // 8 different objects (plus a batched read of all of them) runs
  // concurrently from this one process -- no client pool needed.
  size_t peak_in_flight = 0;
  size_t burst_done = 0;
  sim.post(client.id(), [&] {
    for (uint32_t object = 1; object <= 8; ++object) {
      const std::string v = "obj-" + std::to_string(object);
      const uint64_t rec =
          recorder.begin_write(client.id(), sim.now(), Bytes(v.begin(), v.end()));
      client.write(object, Bytes(v.begin(), v.end()),
                   [&, rec](const registers::WriteResult& res) {
                     recorder.complete_write(rec, res.completed_at, res.tag);
                     ++burst_done;
                   });
    }
    peak_in_flight = client.in_flight();
  });
  sim.run_until([&] { return burst_done == 8; });
  registers::BatchReadResult batch;
  bool batch_done = false;
  sim.post(client.id(), [&] {
    client.read_batch({1, 2, 3, 4, 5, 6, 7, 8},
                      [&](const registers::BatchReadResult& res) {
                        batch = res;
                        batch_done = true;
                      });
  });
  sim.run_until([&] { return batch_done; });
  std::printf(
      "\npipelined burst: 8 writes in flight at once (peak %zu), then one\n"
      "batched read returned %zu objects in a single round\n",
      peak_in_flight, batch.results.size());

  // The f+1 witness rule guarantees the fabricating server could not plant
  // a value; verify against the recorded execution.
  checker::CheckOptions copts;
  copts.strict_validity = true;
  const auto verdict = checker::check_safety(recorder.ops(), copts);
  std::printf("\nsafety check over the recorded execution: %s\n",
              verdict.ok ? "OK" : verdict.violation.c_str());
  return verdict.ok ? 0 : 1;
}
