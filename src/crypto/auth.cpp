#include "crypto/auth.h"

#include <cstring>

namespace bftreg::crypto {

namespace {

/// put_process_id's wire layout (role u8, index u32 LE) packed on the
/// stack; key derivation must stay byte-identical to the serde encoding so
/// MACs agree across every code path that derives a channel key.
void pack_pair(const ProcessId& from, const ProcessId& to, uint8_t out[10]) {
  out[0] = static_cast<uint8_t>(from.role);
  out[1] = static_cast<uint8_t>(from.index);
  out[2] = static_cast<uint8_t>(from.index >> 8);
  out[3] = static_cast<uint8_t>(from.index >> 16);
  out[4] = static_cast<uint8_t>(from.index >> 24);
  out[5] = static_cast<uint8_t>(to.role);
  out[6] = static_cast<uint8_t>(to.index);
  out[7] = static_cast<uint8_t>(to.index >> 8);
  out[8] = static_cast<uint8_t>(to.index >> 16);
  out[9] = static_cast<uint8_t>(to.index >> 24);
}

}  // namespace

SipHashKey KeyRegistry::channel_key(const ProcessId& from, const ProcessId& to) const {
  // Domain-separated derivation: key parts are SipHash of the endpoint ids
  // under master-derived keys. The adversary never sees `master_`.
  uint8_t ids[10];
  pack_pair(from, to, ids);
  const BytesView view(ids, sizeof(ids));
  const SipHashKey d0{master_, 0x6b65792d64657230ULL};  // "key-der0"
  const SipHashKey d1{master_, 0x6b65792d64657231ULL};  // "key-der1"
  return SipHashKey{siphash24(d0, view), siphash24(d1, view)};
}

void Authenticator::precompute(const std::vector<ProcessId>& ids) {
  cache_.reserve(ids.size() * ids.size());
  for (const ProcessId& from : ids) {
    for (const ProcessId& to : ids) {
      cache_.emplace(PairKey{from, to}, registry_.channel_key(from, to));
    }
  }
}

void Authenticator::precompute_pairs(const std::vector<ProcessId>& hubs,
                                     const std::vector<ProcessId>& peers) {
  cache_.reserve(cache_.size() + 2 * hubs.size() * peers.size());
  for (const ProcessId& hub : hubs) {
    for (const ProcessId& peer : peers) {
      cache_.emplace(PairKey{hub, peer}, registry_.channel_key(hub, peer));
      cache_.emplace(PairKey{peer, hub}, registry_.channel_key(peer, hub));
    }
  }
}

SipHashKey Authenticator::key_for(const ProcessId& from,
                                  const ProcessId& to) const {
  if (!cache_.empty()) {
    auto it = cache_.find(PairKey{from, to});
    if (it != cache_.end()) return it->second;
  }
  return registry_.channel_key(from, to);
}

MacTag Authenticator::seal(const ProcessId& from, const ProcessId& to,
                           BytesView payload) const {
  return siphash24(key_for(from, to), payload);
}

bool Authenticator::verify(const ProcessId& from, const ProcessId& to,
                           BytesView payload, MacTag mac) const {
  return seal(from, to, payload) == mac;
}

}  // namespace bftreg::crypto
