// Refcounted immutable payload buffers.
//
// The zero-copy delivery path hands message handlers *views* into the
// transport's receive buffers instead of per-message byte vectors: the TCP
// data plane parses frames in place inside a large refcounted chunk, and a
// delivered `Payload` aliases that chunk (shared_ptr aliasing), keeping it
// alive exactly as long as any handler still holds the envelope. In-memory
// transports construct a Payload from the sender's `Bytes` by moving the
// vector into a shared control block -- the data never moves, so a pointer
// captured before send() still identifies the delivered bytes (asserted by
// tests/socknet_test.cpp).
#pragma once

#include <algorithm>
#include <memory>
#include <utility>

#include "common/types.h"

namespace bftreg {

/// Immutable byte payload: a (refcount, view) pair. Cheap to copy (one
/// shared_ptr bump), never copies the underlying data. Implicitly converts
/// from `Bytes` (taking ownership) and to `BytesView` (for parsers).
class Payload {
 public:
  Payload() = default;

  /// Takes ownership of `bytes` without copying the data: the vector is
  /// moved into a shared control block, so `bytes.data()` before the call
  /// and `payload.data()` after are the same pointer.
  // NOLINTNEXTLINE(google-explicit-constructor): send paths pass Bytes.
  Payload(Bytes bytes) {
    auto owned = std::make_shared<const Bytes>(std::move(bytes));
    view_ = BytesView(owned->data(), owned->size());
    owner_ = std::move(owned);
  }

  /// Aliasing view: `view` must point into storage kept alive by `owner`.
  Payload(std::shared_ptr<const void> owner, BytesView view)
      : owner_(std::move(owner)), view_(view) {}

  const uint8_t* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  const uint8_t* begin() const { return view_.data(); }
  const uint8_t* end() const { return view_.data() + view_.size(); }
  uint8_t operator[](size_t i) const { return view_[i]; }

  BytesView view() const { return view_; }
  // NOLINTNEXTLINE(google-explicit-constructor): parsers take BytesView.
  operator BytesView() const { return view_; }

  /// Materializes an owned copy (introspection/test helper; the hot paths
  /// parse through the view instead).
  Bytes to_bytes() const { return Bytes(begin(), end()); }

  /// The owning buffer's identity -- distinct payloads parsed out of one
  /// receive chunk share it. Test/diagnostic hook.
  const void* owner() const { return owner_.get(); }

  friend bool operator==(const Payload& a, const Payload& b) {
    return a.view_.size() == b.view_.size() &&
           std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const Payload& a, const Bytes& b) {
    return a.view_.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const Bytes& a, const Payload& b) { return b == a; }

 private:
  std::shared_ptr<const void> owner_;
  BytesView view_;
};

}  // namespace bftreg
