// Multi-object (shared-variable set) tests: one server set emulating many
// independent registers, per Section II-B's model of "a finite set of
// shared variables".
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "registers/registers.h"
#include "sim/simulator.h"

namespace bftreg::registers {
namespace {

Bytes val(const std::string& s) { return Bytes(s.begin(), s.end()); }

/// A hand-wired cluster: n servers plus one writer/reader pair per object.
class MultiObjectFixture : public ::testing::Test {
 protected:
  static constexpr size_t kN = 5;
  static constexpr size_t kF = 1;

  MultiObjectFixture() : sim_(sim::SimConfig::with_uniform_delay(7, 100, 500)) {
    config_.n = kN;
    config_.f = kF;
    for (uint32_t i = 0; i < kN; ++i) {
      servers_.push_back(std::make_unique<RegisterServer>(ProcessId::server(i),
                                                          config_, &sim_, Bytes{}));
      sim_.add_process(ProcessId::server(i), servers_.back().get());
    }
  }

  /// Creates a writer/reader pair for `object`; ids must be unique.
  void add_clients(uint32_t object) {
    auto w = std::make_unique<BsrWriter>(ProcessId::writer(object), config_, &sim_,
                                         object);
    auto r = std::make_unique<BsrReader>(ProcessId::reader(object), config_, &sim_,
                                         object);
    sim_.add_process(ProcessId::writer(object), w.get());
    sim_.add_process(ProcessId::reader(object), r.get());
    writers_[object] = std::move(w);
    readers_[object] = std::move(r);
  }

  WriteResult write(uint32_t object, Bytes value) {
    WriteResult out;
    bool done = false;
    writers_[object]->start_write(std::move(value), [&](const WriteResult& w) {
      out = w;
      done = true;
    });
    EXPECT_TRUE(sim_.run_until([&] { return done; }));
    return out;
  }

  ReadResult read(uint32_t object) {
    ReadResult out;
    bool done = false;
    readers_[object]->start_read([&](const ReadResult& r) {
      out = r;
      done = true;
    });
    EXPECT_TRUE(sim_.run_until([&] { return done; }));
    return out;
  }

  sim::Simulator sim_;
  SystemConfig config_;
  std::vector<std::unique_ptr<RegisterServer>> servers_;
  std::map<uint32_t, std::unique_ptr<BsrWriter>> writers_;
  std::map<uint32_t, std::unique_ptr<BsrReader>> readers_;
};

TEST_F(MultiObjectFixture, ObjectsAreIsolated) {
  add_clients(1);
  add_clients(2);
  write(1, val("one"));
  write(2, val("two"));
  EXPECT_EQ(read(1).value, val("one"));
  EXPECT_EQ(read(2).value, val("two"));
}

TEST_F(MultiObjectFixture, UnwrittenObjectReturnsInitialValue) {
  add_clients(1);
  add_clients(9);
  write(1, val("data"));
  EXPECT_EQ(read(9).value, Bytes{});
}

TEST_F(MultiObjectFixture, TagsAdvanceIndependentlyPerObject) {
  add_clients(1);
  add_clients(2);
  for (int i = 0; i < 3; ++i) write(1, val("a" + std::to_string(i)));
  const auto w2 = write(2, val("b"));
  // Object 2's first write gets tag 1 regardless of object 1's history.
  EXPECT_EQ(w2.tag.num, 1u);
  const auto w1 = write(1, val("a3"));
  EXPECT_EQ(w1.tag.num, 4u);
}

TEST_F(MultiObjectFixture, ServerStoresPerObjectLists) {
  add_clients(1);
  add_clients(2);
  write(1, val("x"));
  write(1, val("y"));
  write(2, val("z"));
  sim_.run_until_idle();
  // Every server knows the default object plus 1 and 2.
  EXPECT_EQ(servers_[0]->objects_known(), 3u);
  EXPECT_EQ(servers_[0]->store(1).size(), 3u);  // t0 + two writes
  EXPECT_EQ(servers_[0]->store(2).size(), 2u);  // t0 + one write
  EXPECT_EQ(servers_[0]->max_value(1), val("y"));
  EXPECT_EQ(servers_[0]->max_value(2), val("z"));
}

TEST_F(MultiObjectFixture, ConcurrentOpsOnDifferentObjectsDoNotInterfere) {
  add_clients(1);
  add_clients(2);
  bool d1 = false;
  bool d2 = false;
  Bytes r2;
  writers_[1]->start_write(val("big"), [&](const WriteResult&) { d1 = true; });
  readers_[2]->start_read([&](const ReadResult& r) {
    d2 = true;
    r2 = r.value;
  });
  EXPECT_TRUE(sim_.run_until([&] { return d1 && d2; }));
  EXPECT_EQ(r2, Bytes{});  // object 2 untouched by object 1's write
}

TEST_F(MultiObjectFixture, HistoryAndTwoRoundReadersHonorObjects) {
  add_clients(3);
  write(3, val("h"));

  HistoryReader hist(ProcessId::reader(50), config_, &sim_, /*object=*/3);
  sim_.add_process(ProcessId::reader(50), &hist);
  bool done = false;
  Bytes got;
  hist.start_read([&](const ReadResult& r) {
    done = true;
    got = r.value;
  });
  ASSERT_TRUE(sim_.run_until([&] { return done; }));
  EXPECT_EQ(got, val("h"));

  TwoRoundReader two(ProcessId::reader(51), config_, &sim_, /*object=*/3);
  sim_.add_process(ProcessId::reader(51), &two);
  done = false;
  two.start_read([&](const ReadResult& r) {
    done = true;
    got = r.value;
  });
  ASSERT_TRUE(sim_.run_until([&] { return done; }));
  EXPECT_EQ(got, val("h"));

  // A reader bound to a different object still sees v0.
  TwoRoundReader other(ProcessId::reader(52), config_, &sim_, /*object=*/4);
  sim_.add_process(ProcessId::reader(52), &other);
  done = false;
  other.start_read([&](const ReadResult& r) {
    done = true;
    got = r.value;
  });
  ASSERT_TRUE(sim_.run_until([&] { return done; }));
  EXPECT_EQ(got, Bytes{});
}

// BCSR with objects: coded elements are stored per object.
TEST(MultiObjectBcsrTest, CodedObjectsAreIsolated) {
  sim::Simulator sim(sim::SimConfig::with_uniform_delay(3, 100, 500));
  SystemConfig cfg;
  cfg.n = 6;
  cfg.f = 1;
  const auto initial = bcsr_initial_elements(cfg);
  std::vector<std::unique_ptr<RegisterServer>> servers;
  for (uint32_t i = 0; i < cfg.n; ++i) {
    servers.push_back(std::make_unique<RegisterServer>(ProcessId::server(i), cfg,
                                                       &sim, initial[i]));
    sim.add_process(ProcessId::server(i), servers.back().get());
  }
  BcsrWriter w1(ProcessId::writer(0), cfg, &sim, 1);
  BcsrWriter w2(ProcessId::writer(1), cfg, &sim, 2);
  BcsrReader r1(ProcessId::reader(0), cfg, &sim, 1);
  BcsrReader r2(ProcessId::reader(1), cfg, &sim, 2);
  sim.add_process(ProcessId::writer(0), &w1);
  sim.add_process(ProcessId::writer(1), &w2);
  sim.add_process(ProcessId::reader(0), &r1);
  sim.add_process(ProcessId::reader(1), &r2);

  bool d = false;
  w1.start_write(Bytes(100, 0xAA), [&](const WriteResult&) { d = true; });
  ASSERT_TRUE(sim.run_until([&] { return d; }));
  d = false;
  w2.start_write(Bytes(100, 0xBB), [&](const WriteResult&) { d = true; });
  ASSERT_TRUE(sim.run_until([&] { return d; }));

  Bytes got1;
  Bytes got2;
  d = false;
  r1.start_read([&](const ReadResult& r) {
    got1 = r.value;
    d = true;
  });
  ASSERT_TRUE(sim.run_until([&] { return d; }));
  d = false;
  r2.start_read([&](const ReadResult& r) {
    got2 = r.value;
    d = true;
  });
  ASSERT_TRUE(sim.run_until([&] { return d; }));

  EXPECT_EQ(got1, Bytes(100, 0xAA));
  EXPECT_EQ(got2, Bytes(100, 0xBB));
}

// RB baseline with objects.
TEST(MultiObjectRbTest, BaselineObjectsAreIsolated) {
  sim::Simulator sim(sim::SimConfig::with_uniform_delay(5, 100, 500));
  SystemConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  std::vector<std::unique_ptr<RbServer>> servers;
  for (uint32_t i = 0; i < cfg.n; ++i) {
    servers.push_back(
        std::make_unique<RbServer>(ProcessId::server(i), cfg, &sim, Bytes{}));
    sim.add_process(ProcessId::server(i), servers.back().get());
  }
  RbWriter w1(ProcessId::writer(0), cfg, &sim, 1);
  RbReader r1(ProcessId::reader(0), cfg, &sim, 1);
  RbReader r2(ProcessId::reader(1), cfg, &sim, 2);
  sim.add_process(ProcessId::writer(0), &w1);
  sim.add_process(ProcessId::reader(0), &r1);
  sim.add_process(ProcessId::reader(1), &r2);

  bool d = false;
  w1.start_write(Bytes{'q'}, [&](const WriteResult&) { d = true; });
  ASSERT_TRUE(sim.run_until([&] { return d; }));

  Bytes got1;
  Bytes got2{'x'};
  d = false;
  r1.start_read([&](const ReadResult& r) {
    got1 = r.value;
    d = true;
  });
  ASSERT_TRUE(sim.run_until([&] { return d; }));
  d = false;
  r2.start_read([&](const ReadResult& r) {
    got2 = r.value;
    d = true;
  });
  ASSERT_TRUE(sim.run_until([&] { return d; }));
  EXPECT_EQ(got1, Bytes{'q'});
  EXPECT_EQ(got2, Bytes{});
}

}  // namespace
}  // namespace bftreg::registers
