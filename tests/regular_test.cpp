// Tests for the Section III-C regularity extensions (HistoryReader and
// TwoRoundReader), centered on the Theorem 3 counterexample: the schedule
// under which plain BSR is provably NOT regular, and both extensions are.
#include <gtest/gtest.h>

#include <string>

#include "checker/consistency.h"
#include "harness/scenarios.h"
#include "harness/sim_cluster.h"
#include "workload/workload.h"

namespace bftreg::harness {
namespace {

using adversary::StrategyKind;
using checker::CheckOptions;
using checker::check_regularity;
using checker::check_safety;

Bytes val(const std::string& s) { return Bytes(s.begin(), s.end()); }

ClusterOptions options_for(Protocol p, size_t n, size_t f, uint64_t seed = 1,
                           size_t writers = 2, size_t readers = 2) {
  ClusterOptions o;
  o.protocol = p;
  o.config.n = n;
  o.config.f = f;
  o.num_writers = writers;
  o.num_readers = readers;
  o.seed = seed;
  return o;
}

// ------------------------------------------------------- Theorem 3 schedule

TEST(Theorem3Test, PlainBsrViolatesRegularity) {
  SimCluster cluster(options_for(Protocol::kBsr, 5, 1, 42, 5, 1));
  const auto r = run_theorem3_schedule(cluster);

  // The read finds no pair with f+1 = 2 witnesses and slides back to v0.
  EXPECT_EQ(r.value, Bytes{});
  EXPECT_FALSE(r.fresh);

  CheckOptions copts;
  EXPECT_TRUE(check_safety(cluster.recorder().ops(), copts).ok)
      << "BSR stays SAFE under the schedule (Def. 1(ii))";
  const auto reg = check_regularity(cluster.recorder().ops(), copts);
  EXPECT_FALSE(reg.ok) << "but it is NOT regular (Theorem 3)";
}

TEST(Theorem3Test, HistoryReaderStaysRegular) {
  SimCluster cluster(options_for(Protocol::kBsrHistory, 5, 1, 42, 5, 1));
  const auto r = run_theorem3_schedule(cluster);
  // v1 is in every honest server's history: 2+ witnesses, returned.
  EXPECT_EQ(r.value, val("v1"));
  CheckOptions copts;
  const auto reg = check_regularity(cluster.recorder().ops(), copts);
  EXPECT_TRUE(reg.ok) << reg.violation;
}

TEST(Theorem3Test, TwoRoundReaderStaysRegular) {
  SimCluster cluster(options_for(Protocol::kBsr2R, 5, 1, 42, 5, 1));
  const auto r = run_theorem3_schedule(cluster);
  EXPECT_EQ(r.value, val("v1"));
  EXPECT_EQ(r.rounds, 2);
  CheckOptions copts;
  const auto reg = check_regularity(cluster.recorder().ops(), copts);
  EXPECT_TRUE(reg.ok) << reg.violation;
}

// ----------------------------------------------------------- basic behavior

class RegularVariantTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(RegularVariantTest, ReadAfterWriteReturnsWrittenValue) {
  SimCluster cluster(options_for(GetParam(), 5, 1));
  cluster.write(0, val("hello"));
  const auto r = cluster.read(0);
  EXPECT_EQ(r.value, val("hello"));
}

TEST_P(RegularVariantTest, ReadBeforeAnyWriteReturnsInitial) {
  SimCluster cluster(options_for(GetParam(), 5, 1));
  EXPECT_EQ(cluster.read(0).value, Bytes{});
}

TEST_P(RegularVariantTest, SurvivesFCrashedServers) {
  SimCluster cluster(options_for(GetParam(), 9, 2));
  cluster.start();
  cluster.crash_server(1);
  cluster.crash_server(6);
  cluster.write(0, val("alive"));
  EXPECT_EQ(cluster.read(0).value, val("alive"));
}

TEST_P(RegularVariantTest, SequentialWorkloadIsRegularUnderByzantine) {
  SimCluster cluster(options_for(GetParam(), 9, 2, 7));
  cluster.set_byzantine(2, StrategyKind::kFabricate);
  cluster.set_byzantine(5, StrategyKind::kStale);
  for (int i = 0; i < 8; ++i) {
    cluster.write(i % 2, val("r" + std::to_string(i)));
    EXPECT_EQ(cluster.read(i % 2).value, val("r" + std::to_string(i)));
  }
  CheckOptions copts;
  const auto res = check_regularity(cluster.recorder().ops(), copts);
  EXPECT_TRUE(res.ok) << res.violation;
}

INSTANTIATE_TEST_SUITE_P(Variants, RegularVariantTest,
                         ::testing::Values(Protocol::kBsrHistory, Protocol::kBsr2R),
                         [](const auto& info) {
                           return info.param == Protocol::kBsrHistory
                                      ? std::string("History")
                                      : std::string("TwoRound");
                         });

// Two-round reads really take two rounds; history reads stay one-shot.
TEST(RegularVariantTest, RoundCounts) {
  SimCluster h(options_for(Protocol::kBsrHistory, 5, 1));
  h.write(0, val("x"));
  EXPECT_EQ(h.read(0).rounds, 1);

  SimCluster t(options_for(Protocol::kBsr2R, 5, 1));
  t.write(0, val("x"));
  EXPECT_EQ(t.read(0).rounds, 2);
}

// The history read's bandwidth grows with history length -- the cost knob
// the paper trades against BSR's constant-size responses.
TEST(RegularVariantTest, HistoryReadBandwidthGrowsWithWrites) {
  SimCluster cluster(options_for(Protocol::kBsrHistory, 5, 1));
  cluster.write(0, val("aaaaaaaaaaaaaaaa"));
  cluster.sim().run_until_idle();
  const auto before1 = cluster.sim().metrics().snapshot().bytes_sent;
  cluster.read(0);
  cluster.sim().run_until_idle();
  const auto read1_bytes = cluster.sim().metrics().snapshot().bytes_sent - before1;

  for (int i = 0; i < 10; ++i) cluster.write(0, val("bbbbbbbbbbbbbbb" + std::to_string(i)));
  cluster.sim().run_until_idle();
  const auto before2 = cluster.sim().metrics().snapshot().bytes_sent;
  cluster.read(0);
  cluster.sim().run_until_idle();
  const auto read2_bytes = cluster.sim().metrics().snapshot().bytes_sent - before2;

  EXPECT_GT(read2_bytes, read1_bytes * 2);
}

// Randomized concurrent schedules must stay regular for both variants.
struct RegularRandomParam {
  Protocol protocol;
  uint64_t seed;
};

class RegularRandomScheduleTest
    : public ::testing::TestWithParam<RegularRandomParam> {};

TEST_P(RegularRandomScheduleTest, RandomExecutionIsRegular) {
  const auto [protocol, seed] = GetParam();
  Rng rng(seed * 17 + 3);
  const size_t f = 1 + rng.uniform(2);
  const size_t n = 4 * f + 1 + rng.uniform(2);
  SimCluster cluster(options_for(protocol, n, f, seed, 2, 2));
  for (size_t i = 0; i < f; ++i) {
    // Regularity variants rely on honest servers retaining history; the
    // adversaries may do anything.
    const auto kind = adversary::kAllStrategyKinds[rng.uniform(
        std::size(adversary::kAllStrategyKinds))];
    cluster.set_byzantine(rng.uniform(n), kind);
  }

  std::vector<std::optional<uint64_t>> writer_op(2), reader_op(2);
  uint64_t counter = 0;
  auto reap = [&](std::vector<std::optional<uint64_t>>& slots) {
    for (auto& s : slots) {
      if (s && cluster.op_done(*s)) s.reset();
    }
  };
  for (int step = 0; step < 60; ++step) {
    reap(writer_op);
    reap(reader_op);
    const size_t c = rng.uniform(2);
    if (rng.bernoulli(0.4)) {
      if (!writer_op[c]) {
        writer_op[c] =
            cluster.start_write(c, workload::make_value(seed, counter++, 20));
      }
    } else if (!reader_op[c]) {
      reader_op[c] = cluster.start_read(c);
    }
    cluster.sim().run_until_time(cluster.sim().now() + rng.uniform(3500));
  }
  for (auto& s : writer_op) {
    if (s) cluster.await(*s);
  }
  for (auto& s : reader_op) {
    if (s) cluster.await(*s);
  }

  CheckOptions copts;
  const auto res = check_regularity(cluster.recorder().ops(), copts);
  EXPECT_TRUE(res.ok) << to_string(protocol) << " seed=" << seed << ": "
                      << res.violation << "\n" << cluster.recorder().dump();
}

std::vector<RegularRandomParam> regular_random_params() {
  std::vector<RegularRandomParam> out;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    out.push_back({Protocol::kBsrHistory, seed});
    out.push_back({Protocol::kBsr2R, seed});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegularRandomScheduleTest,
                         ::testing::ValuesIn(regular_random_params()),
                         [](const auto& info) {
                           return std::string(info.param.protocol ==
                                                      Protocol::kBsrHistory
                                                  ? "History"
                                                  : "TwoRound") +
                                  "_s" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace bftreg::harness
