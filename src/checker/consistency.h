// Consistency checkers for recorded executions.
//
// These are the ground truth of the test suite and of the resilience-bound
// experiments (E5, E6): a protocol run is driven under an adversary, the
// harness records every operation, and the checker decides -- directly from
// Definitions 1 and 2 (Section II-C) -- whether the execution was safe /
// regular.
//
// Semantics implemented (matching the paper's proofs, see DESIGN.md §6.4):
//
// SAFETY (Def. 1). For every completed read r:
//  (i)  if r is not concurrent with any write, it must return the value of
//       a write w that began before r such that no *complete* write falls
//       entirely between w and r ("between" needs w's response event, so a
//       crashed write w cannot be superseded -- this matches the total
//       order construction in Theorem 2, which orders writes by tag, and
//       Lemma 3, which only requires w to have begun before r). The initial
//       value v0 is legal iff no write completed before r began.
//  (ii) otherwise (r concurrent with some write) the returned value need
//       only lie in the register's value range V. Since V here is "all
//       byte strings", clause (ii) is vacuous; `strict_validity` optionally
//       tightens it to "some write's value or v0", which BSR additionally
//       guarantees via the witness rule (Lemma 3) -- useful for catching
//       fabricated values in tests.
//
// REGULARITY (Def. 2). Safety, plus for every completed read r the value
// must come from the last preceding complete write or a write concurrent
// with r (no sliding back past a completed write even under concurrency --
// exactly what the Theorem 3 counterexample violates), plus no new/old
// inversion between sequential reads OF THE SAME READER: if r1 completes
// before r2 begins at one reader, r2's returned tag must be >= r1's.
// Cross-reader inversions are allowed -- permitting them is what separates
// regular from atomic registers.
#pragma once

#include <string>
#include <vector>

#include "checker/execution.h"

namespace bftreg::checker {

struct CheckResult {
  bool ok{true};
  std::string violation;  // empty when ok

  static CheckResult pass() { return {}; }
  static CheckResult fail(std::string why) { return {false, std::move(why)}; }
};

struct CheckOptions {
  Bytes initial_value{};  // v0
  /// Tighten clause (ii): concurrent reads must also return a written
  /// value or v0 (holds for BSR-family protocols; see header comment).
  bool strict_validity{false};
  /// Skip the tag-based inter-read checks for protocols whose reads do not
  /// report tags (BCSR).
  bool reads_report_tags{true};
};

/// Definition 1.
CheckResult check_safety(const std::vector<OpRecord>& ops, const CheckOptions& opts);

/// Definition 2 (necessary conditions; see header comment).
CheckResult check_regularity(const std::vector<OpRecord>& ops,
                             const CheckOptions& opts);

/// Atomicity (linearizability for registers): regularity plus *cross-reader*
/// agreement -- if any read r1 completes before read r2 begins, r2 must not
/// return an older write than r1, regardless of which readers ran them.
/// None of the paper's protocols claims atomicity (a semi-fast MWMR atomic
/// register is impossible, Georgiou et al. [13]); this checker exists to
/// demonstrate exactly where they fall short of it.
CheckResult check_atomicity(const std::vector<OpRecord>& ops,
                            const CheckOptions& opts);

}  // namespace bftreg::checker
