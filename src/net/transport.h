// Transport and process interfaces.
//
// Protocol code (writers, readers, servers, broadcast) is written once as
// event-driven state machines against `Transport` + `IProcess`, then run
// either deterministically under the discrete-event `sim::Simulator` or in
// real time under the `runtime::ThreadNetwork`. This is the central design
// decision of the repo (DESIGN.md §6.1).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>

#include "common/types.h"
#include "net/envelope.h"
#include "net/metrics.h"

namespace bftreg::net {

/// Execution knobs shared by the real-time transports. These are purely
/// operational -- protocol semantics never depend on them -- and they are
/// the one place transport sizing is spelled out: SystemConfig::Builder
/// validates and carries a TransportOptions, and socknet::TcpConfig embeds
/// one, so a deployment tunes "how many event-loop shards, how many
/// handler threads, how much outbound buffering" in a single struct instead
/// of a grab-bag of per-transport fields.
struct TransportOptions {
  /// Event-loop shards (socknet::EventLoop): every connection, listener,
  /// and timer is owned by exactly one shard's epoll set, so the I/O
  /// thread count is fixed at this value no matter how many endpoints are
  /// registered. 0 = auto (hardware concurrency clamped to [1, 4]).
  size_t loop_shards{0};
  /// Handler (mailbox) threads: delivery contexts of all endpoints are
  /// multiplexed onto this many MPSC-ring consumers (runtime/mailbox.h).
  /// The per-(process, delivery-shard) serialization guarantee of
  /// IProcess is preserved -- a context is pinned to one consumer -- but
  /// the thread count no longer grows with the endpoint count.
  /// 0 = auto (hardware concurrency clamped to [2, 8]).
  size_t mailbox_shards{0};
  /// Per-destination outbound queue cap in bytes (headers + payloads),
  /// counting both frames not yet picked up by the event loop and frames
  /// waiting on socket writability. A send() that would push a non-empty
  /// queue past the cap is shed and counted in metrics().messages_dropped;
  /// a single frame larger than the cap is still accepted so jumbo
  /// payloads cannot deadlock themselves.
  size_t max_outbox_bytes{32 * 1024 * 1024};
  /// Receive chunk size: frames are parsed in place inside refcounted
  /// chunks of this capacity (grown per-frame when one frame is larger).
  size_t recv_chunk_bytes{256 * 1024};
  /// Cap on the pooled receive-chunk bytes (shared across connections).
  size_t recv_pool_bytes{64 * 1024 * 1024};

  /// The auto defaults resolved against the actual hardware; every
  /// transport uses this so tools and tests agree on the effective values.
  TransportOptions resolved() const {
    TransportOptions out = *this;
    // Hardware query, not a thread spawn: bftreg-lint: allow(raw-thread)
    const size_t hw = std::thread::hardware_concurrency();
    if (out.loop_shards == 0) out.loop_shards = std::clamp<size_t>(hw, 1, 4);
    if (out.mailbox_shards == 0) {
      out.mailbox_shards = std::clamp<size_t>(hw, 2, 8);
    }
    return out;
  }
};

/// A participant in the protocol. Handlers are always invoked in the
/// process's execution context. By default that context is singular
/// (simulator event or one mailbox thread), so handlers never run
/// concurrently for the same process. A process may opt into parallel
/// delivery by overriding delivery_shards()/shard_of(): the threaded
/// transports then run one mailbox per shard, and the serialization
/// guarantee narrows to *per shard* -- two envelopes mapping to the same
/// shard are still handled one at a time and in push order, but handlers
/// for different shards of the same process run concurrently. The
/// discrete-event simulator ignores sharding (it is single-threaded, so
/// the default guarantee holds there regardless).
class IProcess {
 public:
  virtual ~IProcess() = default;

  /// Called once before any message is delivered. Runs on shard 0.
  virtual void on_start() {}

  /// An authenticated message has arrived. `env.payload` is adversarial
  /// input if the sender is Byzantine; implementations must parse defensively.
  virtual void on_message(const Envelope& env) = 0;

  /// Number of independent delivery shards this process wants. Read once
  /// by the transport at registration; must be >= 1 and constant for the
  /// process's lifetime.
  virtual uint32_t delivery_shards() const { return 1; }

  /// Maps an inbound envelope to a shard in [0, delivery_shards()).
  /// Called on the *sender's* (or socket reader's) thread, possibly
  /// concurrently with handlers and with itself -- implementations must be
  /// pure functions of the envelope (typically a hash of a routing field
  /// peeked from the payload) and touch no mutable process state.
  virtual uint32_t shard_of(const Envelope& env) const {
    (void)env;
    return 0;
  }

  /// Mailbox batch brackets. Transports that drain deliveries in batches
  /// (runtime mailboxes, socknet consumer pools) call on_batch_begin(shard)
  /// on `shard`'s delivery thread before a run of consecutive on_message
  /// calls for this process, and on_batch_end(shard) after the run -- both
  /// under exactly the same serialization guarantee as on_message itself.
  /// A begin is always paired with an end on the same thread; batches for
  /// different shards may be open concurrently. Default: no-op, and
  /// transports that deliver one message at a time (the simulator) never
  /// call either -- implementations must not depend on the brackets for
  /// correctness, only use them to amortize (e.g. the register server's
  /// write coalescing).
  virtual void on_batch_begin(uint32_t shard) { (void)shard; }
  virtual void on_batch_end(uint32_t shard) { (void)shard; }
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends payload over the reliable authenticated channel from->to.
  /// Never blocks. Delivery order is arbitrary (asynchronous model).
  void send(const ProcessId& from, const ProcessId& to, Bytes payload) {
    send_payload(from, to, Payload(std::move(payload)));
  }

  /// Zero-copy variant of send(): the payload is a refcounted view, so a
  /// sender fanning the same bytes out to n destinations (or re-sending on
  /// retry) shares one buffer across all of them instead of copying per
  /// message. Transports must not mutate the bytes.
  virtual void send_payload(const ProcessId& from, const ProcessId& to,
                            Payload payload) = 0;

  /// Current transport time (virtual in the simulator, wall clock in the
  /// threaded runtime), in nanoseconds.
  virtual TimeNs now() const = 0;

  /// Runs `fn` in `pid`'s execution context (as a zero-delay event in the
  /// simulator; on the mailbox thread in the runtime). Used to inject
  /// client operation starts without racing message handlers.
  virtual void post(const ProcessId& pid, std::function<void()> fn) = 0;

  /// Runs `fn` in `pid`'s execution context no earlier than `delta` ns from
  /// now (virtual ns in the simulator, wall ns in the runtimes). The timer
  /// hook behind client deadlines and retries (registers::OpMux); like every
  /// handler, the closure never runs concurrently with the process's other
  /// handlers. Timers pending at shutdown are dropped, and a crashed
  /// process's timers do not fire.
  virtual void post_after(const ProcessId& pid, TimeNs delta,
                          std::function<void()> fn) = 0;

  virtual NetworkMetrics& metrics() = 0;
};

}  // namespace bftreg::net
