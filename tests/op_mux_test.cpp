// OpMux unit tests: wire op-id namespacing, straggler routing, deadline
// retransmission bookkeeping, and the SystemConfig builder's centralized
// validation.
//
// The stale-response regression here is the reason op ids are namespaced
// per (client, object, protocol) in ONE place (OpMux::allocate_op_id): with
// the historical per-client monotone counters, a straggler reply to a
// completed read could alias the op id of a newer read and inject a stale
// value into its tally. With namespaced ids + exact-match routing the
// straggler parses fine but matches no in-flight op and is dropped.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/delay.h"
#include "registers/registers.h"
#include "sim/simulator.h"

namespace bftreg::registers {
namespace {

Bytes val(const std::string& s) { return Bytes(s.begin(), s.end()); }

// --- op-id allocation ------------------------------------------------------

/// Inert operation: sends nothing, completes only on timeout. Lets the
/// tests drive OpMux's table directly.
class NullOp final : public PendingOp {
 public:
  explicit NullOp(int* sends = nullptr) : sends_(sends) {}

 protected:
  void send_request() override {
    if (sends_) ++*sends_;
  }
  void on_response(const ProcessId&, RegisterMessage) override {}
  void on_timeout() override {
    auto self = detach_self();  // completes with nothing to report
  }

 private:
  int* sends_;
};

class OpIdTest : public ::testing::Test {
 protected:
  OpIdTest()
      : sim_(sim::SimConfig::with_uniform_delay(1, 100, 500)),
        mux_(ProcessId::reader(0), SystemConfig{}, &sim_) {}

  uint64_t start(OpKind kind, uint32_t object) {
    return mux_.start(std::make_unique<NullOp>(), kind, object);
  }

  sim::Simulator sim_;
  OpMux mux_;
};

TEST_F(OpIdTest, SequencesAreNamespacedPerObjectAndKind) {
  const uint64_t read_a = start(OpKind::kBsrRead, /*object=*/1);
  const uint64_t read_b = start(OpKind::kBsrRead, /*object=*/2);
  const uint64_t hist_a = start(OpKind::kHistoryRead, /*object=*/1);
  const uint64_t write_a = start(OpKind::kWrite, /*object=*/1);

  // Distinct namespaces -> distinct upper halves; none may collide.
  EXPECT_NE(read_a >> 32, read_b >> 32);
  EXPECT_NE(read_a >> 32, hist_a >> 32);
  EXPECT_NE(read_a >> 32, write_a >> 32);
  EXPECT_NE(read_a, read_b);
  EXPECT_NE(read_a, hist_a);
  EXPECT_NE(read_a, write_a);

  // Same namespace -> same upper half, consecutive sequence numbers.
  const uint64_t read_a2 = start(OpKind::kBsrRead, /*object=*/1);
  EXPECT_EQ(read_a >> 32, read_a2 >> 32);
  EXPECT_EQ((read_a & 0xffffffffu) + 1, read_a2 & 0xffffffffu);

  // A wire id of 0 is never valid and sequences start at 1.
  EXPECT_NE(read_a, 0u);
  EXPECT_EQ(read_a & 0xffffffffu, 1u);
  EXPECT_EQ(mux_.in_flight(), 5u);
}

TEST_F(OpIdTest, IdsNeverRepeatWhileInFlight) {
  std::vector<uint64_t> ids;
  for (int i = 0; i < 256; ++i) ids.push_back(start(OpKind::kBsrRead, 7));
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST_F(OpIdTest, DeadlineRetransmitsThenGivesUp) {
  int sends = 0;
  RetryPolicy policy;
  policy.timeout = 1'000;
  policy.max_retries = 2;
  policy.backoff = 2.0;
  mux_.start(std::make_unique<NullOp>(&sends), OpKind::kBsrRead, 0, policy);
  EXPECT_EQ(sends, 1);

  sim_.run_until_idle();
  // First attempt + 2 retransmissions, then the retry budget is exhausted
  // and on_timeout() completed (detached) the op.
  EXPECT_EQ(sends, 3);
  EXPECT_EQ(mux_.retransmits(), 2u);
  EXPECT_EQ(mux_.timeouts(), 1u);
  EXPECT_TRUE(mux_.idle());
  // Backoff: deadlines at 1000, then +2000, then +4000.
  EXPECT_EQ(sim_.now(), 7'000u);
}

TEST_F(OpIdTest, ZeroTimeoutNeverArmsATimer) {
  mux_.start(std::make_unique<NullOp>(), OpKind::kBsrRead, 0);  // default policy
  EXPECT_FALSE(sim_.step());  // no events at all: no timer was scheduled
  EXPECT_EQ(mux_.in_flight(), 1u);
}

// --- stale-response regression --------------------------------------------

/// 5 honest servers + one multiplexing client under scripted delays.
class StragglerTest : public ::testing::Test {
 protected:
  StragglerTest() : sim_(sim::SimConfig::with_uniform_delay(3, 1'000, 1'000)) {
    auto built = SystemConfig::builder().n(5).f(1).build_for_bsr();
    config_ = built.value();
    for (uint32_t i = 0; i < config_.n; ++i) {
      servers_.push_back(std::make_unique<RegisterServer>(
          ProcessId::server(i), config_, &sim_, Bytes{}));
      sim_.add_process(ProcessId::server(i), servers_.back().get());
    }
    client_ = std::make_unique<RegisterClient>(ProcessId::reader(0), config_,
                                               &sim_);
    sim_.add_process(client_->id(), client_.get());
    sim_.start_all();
  }

  sim::Simulator sim_;
  SystemConfig config_;
  std::vector<std::unique_ptr<RegisterServer>> servers_;
  std::unique_ptr<RegisterClient> client_;
};

TEST_F(StragglerTest, InterleavedStragglerReplyCannotPolluteALaterRead) {
  // write "v1" so the register holds a real value.
  bool done = false;
  sim_.post(client_->id(), [&] {
    client_->write(0, val("v1"), [&](const WriteResult&) { done = true; });
  });
  ASSERT_TRUE(sim_.run_until([&] { return done; }));

  // Read A with server:0's reply delayed far beyond everything below: A
  // completes on the other four replies (quorum n-f = 4) and the fifth
  // reply becomes a straggler carrying A's op id and the OLD value.
  sim_.delay_model().set_link_delay(ProcessId::server(0), client_->id(),
                                    50'000);
  ReadResult a;
  done = false;
  sim_.post(client_->id(), [&] {
    client_->read(0, [&](const ReadResult& r) {
      a = r;
      done = true;
    });
  });
  ASSERT_TRUE(sim_.run_until([&] { return done; }));
  EXPECT_EQ(a.value, val("v1"));
  ASSERT_TRUE(client_->idle());
  sim_.delay_model().clear_all_links();

  // Overwrite with "v2", completed well before the straggler lands.
  done = false;
  sim_.post(client_->id(), [&] {
    client_->write(0, val("v2"), [&](const WriteResult&) { done = true; });
  });
  ASSERT_TRUE(sim_.run_until([&] { return done; }));

  // Read B, timed so the straggler from A arrives INSIDE B's window. B and
  // A share the (client, object, protocol) namespace -- under the old
  // monotone op-id scheme this is exactly the aliasing case.
  // With the fixed 1000ns link delay, A's request reached server:0 at
  // t=5000, so its delayed reply lands at t=55'000. Issue B just before.
  ReadResult b;
  done = false;
  const TimeNs kStragglerLands = 55'000;
  const TimeNs kIssueB = kStragglerLands - 1'100;
  ASSERT_LT(sim_.now(), kIssueB);
  sim_.schedule_at(kIssueB, [&] {
    client_->read(0, [&](const ReadResult& r) {
      b = r;
      done = true;
    });
  });
  ASSERT_TRUE(sim_.run_until([&] { return done; }));
  // B completed after the straggler landed: the stale reply really did
  // arrive inside B's window, and was dropped.
  EXPECT_GT(sim_.now(), kStragglerLands);
  EXPECT_EQ(b.value, val("v2"));
  EXPECT_TRUE(b.fresh);
  EXPECT_TRUE(client_->idle());
}

TEST_F(StragglerTest, ConcurrentReadsOfDifferentObjectsDoNotCross) {
  bool w1 = false, w2 = false;
  sim_.post(client_->id(), [&] {
    client_->write(1, val("one"), [&](const WriteResult&) { w1 = true; });
    client_->write(2, val("two"), [&](const WriteResult&) { w2 = true; });
  });
  ASSERT_TRUE(sim_.run_until([&] { return w1 && w2; }));

  ReadResult r1, r2;
  bool d1 = false, d2 = false;
  sim_.post(client_->id(), [&] {
    client_->read(1, [&](const ReadResult& r) {
      r1 = r;
      d1 = true;
    });
    client_->read(2, [&](const ReadResult& r) {
      r2 = r;
      d2 = true;
    });
    EXPECT_EQ(client_->in_flight(), 2u);
  });
  ASSERT_TRUE(sim_.run_until([&] { return d1 && d2; }));
  EXPECT_EQ(r1.value, val("one"));
  EXPECT_EQ(r2.value, val("two"));
}

// --- SystemConfig::Builder -------------------------------------------------

TEST(SystemConfigBuilder, AcceptsValidBsrConfig) {
  auto c = SystemConfig::builder().n(9).f(2).build_for_bsr();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().n, 9u);
  EXPECT_EQ(c.value().f, 2u);
  EXPECT_EQ(c.value().quorum(), 7u);
}

TEST(SystemConfigBuilder, RejectsDegenerateCounts) {
  EXPECT_FALSE(SystemConfig::builder().n(0).f(0).build().ok());
  EXPECT_FALSE(SystemConfig::builder().n(3).f(3).build().ok());
}

TEST(SystemConfigBuilder, EnforcesProtocolBounds) {
  // One server below each protocol's resilience bound must be rejected,
  // the bound itself accepted -- via the same helpers the protocols use.
  EXPECT_FALSE(SystemConfig::builder().n(bsr_min_servers(2) - 1).f(2)
                   .build_for_bsr().ok());
  EXPECT_TRUE(SystemConfig::builder().n(bsr_min_servers(2)).f(2)
                  .build_for_bsr().ok());
  EXPECT_FALSE(SystemConfig::builder().n(bcsr_min_servers(2) - 1).f(2)
                   .build_for_bcsr().ok());
  EXPECT_TRUE(SystemConfig::builder().n(bcsr_min_servers(2)).f(2)
                  .build_for_bcsr().ok());
  EXPECT_FALSE(SystemConfig::builder().n(rb_min_servers(2) - 1).f(2)
                   .build_for_rb().ok());
  EXPECT_TRUE(SystemConfig::builder().n(rb_min_servers(2)).f(2)
                  .build_for_rb().ok());
}

TEST(SystemConfigBuilder, ErrorsCarryActionableDetail) {
  auto c = SystemConfig::builder().n(4).f(1).build_for_bsr();
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.error().code, Errc::kInvalidArgument);
  EXPECT_NE(c.error().detail.find("n >= 5"), std::string::npos);
}

TEST(SystemConfigBuilder, RejectsOverridesThatWouldHang) {
  // Waiting for more identical answers than the quorum collects can never
  // complete; the builder rejects rather than letting an ablation hang.
  EXPECT_FALSE(SystemConfig::builder().n(5).f(1)
                   .witness_threshold_override(5).build_for_bsr().ok());
  EXPECT_TRUE(SystemConfig::builder().n(5).f(1)
                  .witness_threshold_override(4).build_for_bsr().ok());
  EXPECT_FALSE(SystemConfig::builder().n(5).f(1)
                   .tag_rank_override(5).build_for_bsr().ok());
}

}  // namespace
}  // namespace bftreg::registers
