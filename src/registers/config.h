// Shared system configuration for register emulations.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace bftreg::registers {

// Resilience bounds (the only place the `k*f + 1` literals may appear;
// tools/bftreg_lint enforces that everything else calls these helpers, so a
// bound can never silently drift from the paper's theorems).

/// BSR needs n >= 4f + 1 (Theorems 2 and 5).
constexpr size_t bsr_min_servers(size_t f) { return 4 * f + 1; }

/// BCSR needs n >= 5f + 1 (Lemma 4 and Theorem 6).
constexpr size_t bcsr_min_servers(size_t f) { return 5 * f + 1; }

/// RB-based baseline needs n >= 3f + 1 (Bracha broadcast bound).
constexpr size_t rb_min_servers(size_t f) { return 3 * f + 1; }

/// Dimension k = n - 5f of BCSR's [n, k] MDS code (Section IV).
constexpr size_t bcsr_code_dimension(size_t n, size_t f) { return n - 5 * f; }

/// How a server maintains its list L of (tag, value) pairs.
enum class StorePolicy : uint8_t {
  /// Fig. 3 verbatim: add (t_in, v_in) only when t_in exceeds every tag in
  /// L. Minimal state; sufficient for BSR/BCSR safety.
  kMaxOnly = 0,
  /// Keep every distinct tag ever received. Required by the regularity
  /// extensions (history reads, two-round reads with deferred replies),
  /// which consult older entries of L.
  kAll = 1,
};

struct SystemConfig {
  size_t n{5};
  size_t f{1};
  Bytes initial_value{};  // v0
  StorePolicy store_policy{StorePolicy::kAll};

  /// Ablation knobs (0 = use the paper's value). Overriding these breaks
  /// the correctness guarantees on purpose; bench_quorum_ablation uses them
  /// to demonstrate *why* the paper's choices are necessary.
  size_t witness_threshold_override{0};
  size_t tag_rank_override{0};

  /// History garbage collection: keep at most this many entries per object
  /// in each server's list L (0 = unbounded, the paper's model). Pruning
  /// never touches correctness of plain BSR/BCSR (they only consult the
  /// newest pair) but *does* erode the regularity extensions, which consult
  /// older entries -- tests/extensions_test.cpp demonstrates the history
  /// fix failing the Theorem 3 schedule at max_history = 1.
  size_t max_history{0};

  /// Operations wait for exactly n - f server responses (Lemma 6 shows
  /// waiting for more forfeits liveness).
  size_t quorum() const { return n - f; }

  /// Witness threshold: f + 1 identical responses pin at least one honest
  /// server behind a value (Lemma 5 shows fewer is unsafe).
  size_t witness_threshold() const {
    return witness_threshold_override != 0 ? witness_threshold_override : f + 1;
  }

  /// get-tag selection rank: the writer picks the rank-th highest tag
  /// (1 = maximum). The paper uses f + 1 (Fig. 1 line 4).
  size_t tag_rank() const { return tag_rank_override != 0 ? tag_rank_override : f + 1; }

  std::vector<ProcessId> servers() const {
    std::vector<ProcessId> out;
    out.reserve(n);
    for (uint32_t i = 0; i < n; ++i) out.push_back(ProcessId::server(i));
    return out;
  }

  /// BSR resilience requirement (Theorems 2 and 5).
  bool valid_for_bsr() const { return n >= bsr_min_servers(f); }

  /// BCSR resilience requirement (Lemma 4 and Theorem 6).
  bool valid_for_bcsr() const { return n >= bcsr_min_servers(f); }

  /// RB-based baseline requirement (Bracha broadcast bound).
  bool valid_for_rb() const { return n >= rb_min_servers(f); }
};

}  // namespace bftreg::registers
