// Double-buffered seqlock: wait-free single-writer publication of a
// trivially-copyable snapshot, readable from any thread without locks.
//
// Layout: two slots, each a (sequence counter, payload words) pair, plus an
// `active` index naming the slot readers should try first. The writer
// alternates slots -- it rebuilds the *inactive* slot while readers keep
// consuming the active one, then flips `active`. A reader therefore only
// retries when the writer laps it twice (publishes two snapshots while the
// read is in flight), which makes the read loop effectively wait-free under
// any realistic write rate; a classic single-slot seqlock forces a retry on
// *every* concurrent write.
//
// Memory-order argument (the Boehm seqlock construction, "Can seqlocks get
// along with programming language memory models?", MSPC'12):
//
//   writer                               reader
//   seq = s+1      (relaxed store)       s1 = seq        (acquire load)
//   fence(release)                       payload words   (relaxed loads)
//   payload words  (relaxed stores)      fence(acquire)
//   seq = s+2      (release store)       s2 = seq        (relaxed load)
//                                        valid iff s1 == s2 && s1 even
//
// The release store of the even sequence orders every payload store before
// it; the reader's acquire load of s1 pairs with it, so a reader that sees
// the even value sees the full payload. The acquire fence before the
// re-check orders the payload loads before the s2 load: if any payload word
// came from a *newer* write, that write's preceding odd-sequence store
// (ordered by the writer's release fence) is visible too, s2 != s1, and the
// read retries. Payload words are relaxed *atomics* -- concurrent read/write
// of a torn snapshot is defined behavior (the torn value is discarded by the
// re-check), where plain loads would be a data race TSan rightly flags.
//
// The `active` flip is a release store published only after the slot's even
// sequence; readers acquire it, so the slot they pick is always fully
// published. Versions (returned to readers) increase by one per publish,
// which gives readers a cross-slot monotonicity guarantee: slots are
// flipped in version order, so two sequential reads on one thread can never
// observe versions going backwards.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace bftreg::common {

template <typename T>
class Seqlock {
  static_assert(std::is_trivially_copyable_v<T>,
                "Seqlock snapshots are published by memcpy");

 public:
  Seqlock() = default;
  Seqlock(const Seqlock&) = delete;
  Seqlock& operator=(const Seqlock&) = delete;

  /// Publishes a new snapshot. Single writer only; wait-free (never spins,
  /// never blocks on readers).
  void publish(const T& value) {
    const uint32_t next = 1 - active_.load(std::memory_order_relaxed);
    Slot& slot = slots_[next];
    const uint64_t seq = slot.seq.load(std::memory_order_relaxed);
    slot.seq.store(seq + 1, std::memory_order_relaxed);  // odd: under construction
    std::atomic_thread_fence(std::memory_order_release);
    uint64_t words[kWords] = {};
    std::memcpy(words, &value, sizeof(T));
    for (size_t i = 0; i < kWords; ++i) {
      slot.words[i].store(words[i], std::memory_order_relaxed);
    }
    slot.version.store(++next_version_, std::memory_order_relaxed);
    slot.seq.store(seq + 2, std::memory_order_release);
    active_.store(next, std::memory_order_release);
  }

  /// Copies the newest published snapshot into `out`. Any thread; lock-free
  /// (retries only when the writer lapped this reader twice mid-read).
  /// Returns false only before the first publish().
  bool read(T* out, uint64_t* version = nullptr) const {
    for (;;) {
      const uint32_t idx = active_.load(std::memory_order_acquire);
      const Slot& slot = slots_[idx];
      const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 == 0) return false;  // nothing published yet
      if ((s1 & 1) != 0) continue;  // writer mid-flight on this slot
      uint64_t words[kWords];
      for (size_t i = 0; i < kWords; ++i) {
        words[i] = slot.words[i].load(std::memory_order_relaxed);
      }
      const uint64_t ver = slot.version.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) continue;
      std::memcpy(out, words, sizeof(T));
      if (version != nullptr) *version = ver;
      return true;
    }
  }

  /// Snapshots published so far (writer thread only; used by tests).
  uint64_t versions_published() const { return next_version_; }

 private:
  static constexpr size_t kWords = (sizeof(T) + 7) / 8;

  /// Deliberately NOT alignas(64): per-slot cache-line isolation bought
  /// nothing (the single writer alternates slots and readers follow it via
  /// `active`, so writer/reader sharing is inherent to the protocol), and
  /// the rounding is ruinous for embedders that keep one seqlock per object
  /// at object-count scale -- a 64-byte payload would cost 320 bytes of
  /// slots instead of 160.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    /// Monotonic publish counter, written inside the odd-sequence window so
    /// the validity re-check covers it like any payload word.
    std::atomic<uint64_t> version{0};
    std::atomic<uint64_t> words[kWords]{};
  };

  Slot slots_[2];
  std::atomic<uint32_t> active_{0};
  uint64_t next_version_{0};  // writer-private
};

}  // namespace bftreg::common
