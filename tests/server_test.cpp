// Unit tests for RegisterServer (Fig. 3 / Fig. 6 server logic).
#include <gtest/gtest.h>

#include "registers/server.h"
#include "sim/simulator.h"

namespace bftreg::registers {
namespace {

class ClientProbe final : public net::IProcess {
 public:
  void on_message(const net::Envelope& env) override {
    auto msg = RegisterMessage::parse(env.payload);
    ASSERT_TRUE(msg.has_value());
    received.push_back(*msg);
  }
  std::vector<RegisterMessage> received;
};

class ServerFixture : public ::testing::Test {
 protected:
  ServerFixture()
      : sim_(sim::SimConfig::with_fixed_delay(1, 10)),
        config_{make_config()},
        server_(ProcessId::server(0), config_, &sim_, Bytes{'v', '0'}) {
    sim_.add_process(ProcessId::server(0), &server_);
    sim_.add_process(writer_, &writer_probe_);
    sim_.add_process(reader_, &reader_probe_);
  }

  static SystemConfig make_config() {
    SystemConfig c;
    c.n = 5;
    c.f = 1;
    c.initial_value = Bytes{'v', '0'};
    return c;
  }

  void send(const ProcessId& from, const RegisterMessage& msg) {
    sim_.send(from, ProcessId::server(0), msg.encode());
    sim_.run_until_idle();
  }

  RegisterMessage put(uint64_t op, Tag tag, Bytes value) {
    RegisterMessage m;
    m.type = MsgType::kPutData;
    m.op_id = op;
    m.tag = tag;
    m.value = std::move(value);
    return m;
  }

  sim::Simulator sim_;
  SystemConfig config_;
  RegisterServer server_;
  ProcessId writer_ = ProcessId::writer(0);
  ProcessId reader_ = ProcessId::reader(0);
  ClientProbe writer_probe_;
  ClientProbe reader_probe_;
};

TEST_F(ServerFixture, InitialStateHasT0) {
  EXPECT_EQ(server_.max_tag(), Tag::initial());
  EXPECT_EQ(server_.max_value(), (Bytes{'v', '0'}));
  EXPECT_EQ(server_.store().size(), 1u);
}

TEST_F(ServerFixture, QueryTagReturnsMaxTag) {
  RegisterMessage q;
  q.type = MsgType::kQueryTag;
  q.op_id = 5;
  send(writer_, q);
  ASSERT_EQ(writer_probe_.received.size(), 1u);
  EXPECT_EQ(writer_probe_.received[0].type, MsgType::kTagResp);
  EXPECT_EQ(writer_probe_.received[0].op_id, 5u);
  EXPECT_EQ(writer_probe_.received[0].tag, Tag::initial());
}

TEST_F(ServerFixture, PutDataStoresAndAcks) {
  const Tag t{1, ProcessId::writer(0)};
  send(writer_, put(9, t, Bytes{'a'}));
  ASSERT_EQ(writer_probe_.received.size(), 1u);
  EXPECT_EQ(writer_probe_.received[0].type, MsgType::kAck);
  EXPECT_EQ(writer_probe_.received[0].tag, t);
  EXPECT_EQ(server_.max_tag(), t);
  EXPECT_EQ(server_.max_value(), (Bytes{'a'}));
}

TEST_F(ServerFixture, AllPolicyKeepsInterleavedTags) {
  send(writer_, put(1, Tag{5, ProcessId::writer(0)}, Bytes{'5'}));
  send(writer_, put(2, Tag{3, ProcessId::writer(1)}, Bytes{'3'}));
  EXPECT_EQ(server_.store().size(), 3u);  // t0, 3, 5
  EXPECT_EQ(server_.max_tag(), (Tag{5, ProcessId::writer(0)}));
}

TEST_F(ServerFixture, LowerPutStillAcked) {
  send(writer_, put(1, Tag{5, ProcessId::writer(0)}, Bytes{'5'}));
  send(writer_, put(2, Tag{3, ProcessId::writer(1)}, Bytes{'3'}));
  EXPECT_EQ(writer_probe_.received.size(), 2u);
  EXPECT_EQ(writer_probe_.received[1].type, MsgType::kAck);
}

TEST_F(ServerFixture, QueryDataReturnsNewestPair) {
  send(writer_, put(1, Tag{2, ProcessId::writer(0)}, Bytes{'b'}));
  RegisterMessage q;
  q.type = MsgType::kQueryData;
  q.op_id = 77;
  send(reader_, q);
  ASSERT_EQ(reader_probe_.received.size(), 1u);
  const auto& resp = reader_probe_.received[0];
  EXPECT_EQ(resp.type, MsgType::kDataResp);
  EXPECT_EQ(resp.tag, (Tag{2, ProcessId::writer(0)}));
  EXPECT_EQ(resp.value, (Bytes{'b'}));
}

TEST_F(ServerFixture, QueryHistoryReturnsEverything) {
  send(writer_, put(1, Tag{1, ProcessId::writer(0)}, Bytes{'1'}));
  send(writer_, put(2, Tag{2, ProcessId::writer(0)}, Bytes{'2'}));
  RegisterMessage q;
  q.type = MsgType::kQueryHistory;
  send(reader_, q);
  ASSERT_EQ(reader_probe_.received.size(), 1u);
  EXPECT_EQ(reader_probe_.received[0].history.size(), 3u);  // t0 + two writes
}

TEST_F(ServerFixture, QueryTagHistoryReturnsAllTags) {
  send(writer_, put(1, Tag{4, ProcessId::writer(1)}, Bytes{'x'}));
  RegisterMessage q;
  q.type = MsgType::kQueryTagHistory;
  send(reader_, q);
  ASSERT_EQ(reader_probe_.received.size(), 1u);
  EXPECT_EQ(reader_probe_.received[0].tags.size(), 2u);
}

TEST_F(ServerFixture, QueryDataAtKnownTagAnswersImmediately) {
  const Tag t{1, ProcessId::writer(0)};
  send(writer_, put(1, t, Bytes{'k'}));
  RegisterMessage q;
  q.type = MsgType::kQueryDataAt;
  q.op_id = 3;
  q.tag = t;
  send(reader_, q);
  ASSERT_EQ(reader_probe_.received.size(), 1u);
  EXPECT_EQ(reader_probe_.received[0].type, MsgType::kDataAtResp);
  EXPECT_EQ(reader_probe_.received[0].value, (Bytes{'k'}));
}

TEST_F(ServerFixture, QueryDataAtUnknownTagDefersUntilPutArrives) {
  const Tag t{7, ProcessId::writer(0)};
  RegisterMessage q;
  q.type = MsgType::kQueryDataAt;
  q.op_id = 11;
  q.tag = t;
  send(reader_, q);
  ASSERT_EQ(reader_probe_.received.size(), 1u);
  EXPECT_EQ(reader_probe_.received[0].type, MsgType::kDataAtMissing);

  // The PUT-DATA for that tag arrives later: the server answers the
  // deferred query.
  send(writer_, put(1, t, Bytes{'d'}));
  ASSERT_EQ(reader_probe_.received.size(), 2u);
  EXPECT_EQ(reader_probe_.received[1].type, MsgType::kDataAtResp);
  EXPECT_EQ(reader_probe_.received[1].op_id, 11u);
  EXPECT_EQ(reader_probe_.received[1].value, (Bytes{'d'}));
}

TEST_F(ServerFixture, ReadDoneCancelsDeferredQuery) {
  const Tag t{7, ProcessId::writer(0)};
  RegisterMessage q;
  q.type = MsgType::kQueryDataAt;
  q.op_id = 11;
  q.tag = t;
  send(reader_, q);
  RegisterMessage done;
  done.type = MsgType::kReadDone;
  done.op_id = 11;
  send(reader_, done);
  send(writer_, put(1, t, Bytes{'d'}));
  // Only the initial DATA-AT-MISSING; no deferred answer after READ-DONE.
  ASSERT_EQ(reader_probe_.received.size(), 1u);
}

TEST_F(ServerFixture, MalformedPayloadIgnored) {
  sim_.send(writer_, ProcessId::server(0), Bytes{0xde, 0xad});
  sim_.run_until_idle();
  EXPECT_TRUE(writer_probe_.received.empty());
  EXPECT_EQ(server_.store().size(), 1u);
}

TEST_F(ServerFixture, StoredBytesTracksPayloads) {
  const size_t initial = server_.stored_bytes();
  send(writer_, put(1, Tag{1, ProcessId::writer(0)}, Bytes(100, 0)));
  EXPECT_EQ(server_.stored_bytes(), initial + 100);
}

TEST_F(ServerFixture, ReadOnlyQueriesDoNotCreateStores) {
  ASSERT_EQ(server_.objects_known(), 1u);  // only the default register

  RegisterMessage q;
  q.op_id = 1;
  q.object = 42;
  for (MsgType type : {MsgType::kQueryTag, MsgType::kQueryData,
                       MsgType::kQueryHistory, MsgType::kQueryTagHistory}) {
    q.type = type;
    send(reader_, q);
  }
  ASSERT_EQ(reader_probe_.received.size(), 4u);
  // Every answer is the lazy initialization {(t0, v0)} -- but the store for
  // object 42 was never materialized.
  EXPECT_EQ(reader_probe_.received[0].tag, Tag::initial());
  EXPECT_EQ(reader_probe_.received[1].value, (Bytes{'v', '0'}));
  ASSERT_EQ(reader_probe_.received[2].history.size(), 1u);
  EXPECT_EQ(reader_probe_.received[2].history[0].value, (Bytes{'v', '0'}));
  ASSERT_EQ(reader_probe_.received[3].tags.size(), 1u);
  EXPECT_EQ(reader_probe_.received[3].tags[0], Tag::initial());
  EXPECT_EQ(server_.objects_known(), 1u);

  // DATA-AT for t0 on an unknown object answers v0 without a store either.
  q.type = MsgType::kQueryDataAt;
  q.tag = Tag::initial();
  send(reader_, q);
  ASSERT_EQ(reader_probe_.received.size(), 5u);
  EXPECT_EQ(reader_probe_.received[4].type, MsgType::kDataAtResp);
  EXPECT_EQ(reader_probe_.received[4].value, (Bytes{'v', '0'}));
  EXPECT_EQ(server_.objects_known(), 1u);
}

TEST_F(ServerFixture, QueryDataBatchDoesNotCreateStores) {
  RegisterMessage q;
  q.type = MsgType::kQueryDataBatch;
  q.op_id = 9;
  q.objects = {7, 8, 9, 10};
  send(reader_, q);
  ASSERT_EQ(reader_probe_.received.size(), 1u);
  const auto& resp = reader_probe_.received[0];
  EXPECT_EQ(resp.type, MsgType::kDataBatchResp);
  ASSERT_EQ(resp.history.size(), 4u);
  for (const auto& tv : resp.history) {
    EXPECT_EQ(tv.tag, Tag::initial());
    EXPECT_EQ(tv.value, (Bytes{'v', '0'}));
  }
  // A (possibly Byzantine) client probing arbitrary ids must not balloon
  // server state: no stores were created for objects 7..10.
  EXPECT_EQ(server_.objects_known(), 1u);
}

TEST_F(ServerFixture, ReadDoneCancelsOnlyThatReadersWaiter) {
  // Two clients defer on the same unknown (object, tag); READ-DONE from one
  // must cancel only its own waiter, leaving the other to be satisfied.
  const Tag t{9, ProcessId::writer(0)};
  RegisterMessage q;
  q.type = MsgType::kQueryDataAt;
  q.tag = t;
  q.op_id = 21;
  send(reader_, q);
  q.op_id = 22;
  send(writer_, q);
  ASSERT_EQ(reader_probe_.received.size(), 1u);
  ASSERT_EQ(writer_probe_.received.size(), 1u);
  EXPECT_EQ(reader_probe_.received[0].type, MsgType::kDataAtMissing);
  EXPECT_EQ(writer_probe_.received[0].type, MsgType::kDataAtMissing);

  RegisterMessage done;
  done.type = MsgType::kReadDone;
  done.op_id = 21;
  send(reader_, done);

  send(writer_, put(1, t, Bytes{'z'}));
  // The writer-probe waiter survives the reader's cancel: it gets the
  // deferred answer (plus its own put ACK); the reader gets nothing more.
  ASSERT_EQ(reader_probe_.received.size(), 1u);
  ASSERT_EQ(writer_probe_.received.size(), 3u);
  EXPECT_EQ(writer_probe_.received[1].type, MsgType::kDataAtResp);
  EXPECT_EQ(writer_probe_.received[1].op_id, 22u);
  EXPECT_EQ(writer_probe_.received[1].value, (Bytes{'z'}));
  EXPECT_EQ(writer_probe_.received[2].type, MsgType::kAck);
}

// MaxOnly policy (Fig. 3 verbatim).
TEST(ServerMaxOnlyTest, DropsNonIncreasingTags) {
  sim::Simulator sim(sim::SimConfig::with_fixed_delay(1, 10));
  SystemConfig cfg;
  cfg.n = 5;
  cfg.f = 1;
  cfg.store_policy = StorePolicy::kMaxOnly;
  RegisterServer server(ProcessId::server(0), cfg, &sim, Bytes{});
  ClientProbe probe;
  sim.add_process(ProcessId::server(0), &server);
  sim.add_process(ProcessId::writer(0), &probe);

  auto put = [&](Tag tag, Bytes v) {
    RegisterMessage m;
    m.type = MsgType::kPutData;
    m.tag = tag;
    m.value = std::move(v);
    sim.send(ProcessId::writer(0), ProcessId::server(0), m.encode());
    sim.run_until_idle();
  };
  put(Tag{5, ProcessId::writer(0)}, Bytes{'5'});
  put(Tag{3, ProcessId::writer(1)}, Bytes{'3'});  // lower: dropped
  put(Tag{5, ProcessId::writer(0)}, Bytes{'X'});  // equal: dropped
  EXPECT_EQ(server.store().size(), 2u);  // t0 and tag 5
  EXPECT_EQ(server.max_value(), (Bytes{'5'}));
  EXPECT_EQ(probe.received.size(), 3u);  // all three ACKed regardless
}

}  // namespace
}  // namespace bftreg::registers
