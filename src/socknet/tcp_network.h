// TCP loopback transport: the protocols over a real network stack.
//
// Third implementation of net::Transport (after the deterministic
// simulator and the in-memory thread runtime): every process gets a
// listening TCP socket on 127.0.0.1; sends open (and cache) real
// connections and ship length-prefixed, MAC-sealed frames through the
// kernel. Nothing protocol-level changes -- the same state machines run
// unmodified -- which is the point: the paper's algorithms assume only
// reliable authenticated point-to-point channels, and TCP + the MAC layer
// provides exactly that.
//
// Scope: single-host loopback (the offline build environment has no
// external network). The wire format is position-independent, so pointing
// the address book at remote hosts is a config change, not a code change.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/sync.h"
#include "common/types.h"
#include "crypto/auth.h"
#include "net/transport.h"

namespace bftreg::socknet {

struct TcpConfig {
  uint64_t master_secret{0x5eC4e7B17e5eCBA5ULL};
  /// Listening address (loopback only in this build).
  const char* host{"127.0.0.1"};
};

class TcpNetwork final : public net::Transport {
 public:
  explicit TcpNetwork(TcpConfig config);
  ~TcpNetwork() override;

  TcpNetwork(const TcpNetwork&) = delete;
  TcpNetwork& operator=(const TcpNetwork&) = delete;

  /// Registers a process: binds a listening socket on an ephemeral port
  /// and records it in the address book. Call before start().
  void add_process(const ProcessId& pid, net::IProcess* process);

  /// Spawns the accept/receive threads and delivers on_start() to every
  /// process (on its mailbox thread, like the other runtimes).
  void start();

  /// Closes sockets and joins all threads.
  ///
  /// Contract: idempotent -- only the first call (the winner of the
  /// `running_` exchange) performs the shutdown; later or concurrent calls
  /// return immediately without waiting for it to finish. Must be called
  /// from an *external* thread (the owner or any client thread), never from
  /// a mailbox, accept, or connection thread: stop() joins those threads
  /// and would self-deadlock. Asserted in debug builds.
  void stop();

  /// The port a process listens on (for logging / external tooling).
  uint16_t port_of(const ProcessId& pid) const;

  // --- net::Transport -----------------------------------------------------
  void send(const ProcessId& from, const ProcessId& to, Bytes payload) override;
  TimeNs now() const override;
  void post(const ProcessId& pid, std::function<void()> fn) override;
  void post_after(const ProcessId& pid, TimeNs delta,
                  std::function<void()> fn) override;
  net::NetworkMetrics& metrics() override { return metrics_; }

 private:
  struct Endpoint;

  /// Pending post_after timer; fired by the timer thread via post().
  struct Timer {
    TimeNs due;
    uint64_t seq;
    ProcessId pid;
    std::function<void()> fn;
    bool operator>(const Timer& o) const {
      return due != o.due ? due > o.due : seq > o.seq;
    }
  };

  void accept_loop(Endpoint* ep);
  void connection_loop(Endpoint* ep, int fd);
  void mailbox_loop(Endpoint* ep);
  void timer_loop() EXCLUDES(timer_mu_);
  void enqueue(Endpoint* ep, std::function<void()> fn);
  int connect_to(const ProcessId& to);
  Endpoint* find(const ProcessId& pid);
  bool on_internal_thread() const;

  /// Frame: [u32 length][from pid (5)][to pid (5)][u64 mac][payload].
  static Bytes seal_frame(const crypto::Authenticator& auth, const ProcessId& from,
                          const ProcessId& to, const Bytes& payload);

  crypto::Authenticator auth_;
  TcpConfig config_;
  net::NetworkMetrics metrics_;
  std::map<ProcessId, std::unique_ptr<Endpoint>> endpoints_;
  std::atomic<bool> running_{false};
  std::chrono::steady_clock::time_point epoch_;

  Mutex timer_mu_;
  CondVar timer_cv_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timer_queue_
      GUARDED_BY(timer_mu_);
  std::thread timer_thread_;
  std::atomic<uint64_t> timer_seq_{0};
};

}  // namespace bftreg::socknet
