#include "adversary/byzantine_server.h"

#include "registers/server.h"

namespace bftreg::adversary {

using registers::MsgType;
using registers::RegisterMessage;
using registers::TaggedValue;

namespace {

/// A strategy that behaves exactly like an honest RegisterServer; used as
/// the "before" phase of TurncoatStrategy.
class HonestAdapter final : public Strategy {
 public:
  void handle(const net::Envelope& env, ServerContext& ctx) override {
    if (!server_) {
      server_ = std::make_unique<registers::RegisterServer>(
          ctx.self, ctx.config, ctx.transport, ctx.initial);
    }
    server_->on_message(env);
  }

 private:
  std::unique_ptr<registers::RegisterServer> server_;
};

Bytes random_bytes(Rng& rng, size_t len) {
  Bytes b(len);
  for (auto& v : b) v = static_cast<uint8_t>(rng.uniform(256));
  return b;
}

}  // namespace

// ----------------------------------------------------------------- Stale

void StaleStrategy::handle(const net::Envelope& env, ServerContext& ctx) {
  auto msg = RegisterMessage::parse(env.payload);
  if (!msg) return;
  RegisterMessage resp;
  resp.op_id = msg->op_id;
  switch (msg->type) {
    case MsgType::kQueryTag:
      resp.type = MsgType::kTagResp;
      resp.tag = Tag::initial();
      break;
    case MsgType::kPutData:
      resp.type = MsgType::kAck;
      resp.tag = msg->tag;  // ack but never store
      break;
    case MsgType::kQueryData:
      resp.type = MsgType::kDataResp;
      resp.tag = Tag::initial();
      resp.value = ctx.initial;
      break;
    case MsgType::kQueryHistory:
      resp.type = MsgType::kHistoryResp;
      resp.history = {TaggedValue{Tag::initial(), ctx.initial}};
      break;
    case MsgType::kQueryTagHistory:
      resp.type = MsgType::kTagHistoryResp;
      resp.tags = {Tag::initial()};
      break;
    case MsgType::kQueryDataAt:
      if (msg->tag == Tag::initial()) {
        resp.type = MsgType::kDataAtResp;
        resp.tag = msg->tag;
        resp.value = ctx.initial;
      } else {
        resp.type = MsgType::kDataAtMissing;
        resp.tag = msg->tag;
      }
      break;
    default:
      return;
  }
  ctx.send(env.from, resp);
}

// ------------------------------------------------------------- Fabricate

void FabricateStrategy::handle(const net::Envelope& env, ServerContext& ctx) {
  auto msg = RegisterMessage::parse(env.payload);
  if (!msg) return;
  const Tag wild{1'000'000'000 + ctx.rng.uniform(1'000'000),
                 ProcessId::writer(static_cast<uint32_t>(ctx.rng.uniform(4)))};
  RegisterMessage resp;
  resp.op_id = msg->op_id;
  switch (msg->type) {
    case MsgType::kQueryTag:
      resp.type = MsgType::kTagResp;
      resp.tag = wild;
      break;
    case MsgType::kPutData:
      resp.type = MsgType::kAck;
      resp.tag = msg->tag;
      break;
    case MsgType::kQueryData:
      resp.type = MsgType::kDataResp;
      resp.tag = wild;
      resp.value = random_bytes(ctx.rng, 16 + ctx.rng.uniform(48));
      break;
    case MsgType::kQueryHistory:
      resp.type = MsgType::kHistoryResp;
      resp.history = {TaggedValue{wild, random_bytes(ctx.rng, 32)},
                      TaggedValue{Tag{wild.num + 1, wild.writer},
                                  random_bytes(ctx.rng, 32)}};
      break;
    case MsgType::kQueryTagHistory:
      resp.type = MsgType::kTagHistoryResp;
      resp.tags = {wild, Tag{wild.num + 7, wild.writer}};
      break;
    case MsgType::kQueryDataAt:
      // Claim to hold the requested tag, with a fabricated value.
      resp.type = MsgType::kDataAtResp;
      resp.tag = msg->tag;
      resp.value = random_bytes(ctx.rng, 24);
      break;
    default:
      return;
  }
  ctx.send(env.from, resp);
}

// --------------------------------------------------------------- Collude

Tag ColludeStrategy::team_tag(uint64_t op_id) const {
  return Tag{1'000'000 + ((team_seed_ ^ op_id) % 997),
             ProcessId::writer(static_cast<uint32_t>(team_seed_ % 3))};
}

Bytes ColludeStrategy::team_value(uint64_t op_id) const {
  // Deterministic in (team_seed_, op_id): every colluder fabricates the
  // *same* pair, maximizing the witness count of the lie.
  uint64_t h = fnv1a64(&op_id, sizeof(op_id), team_seed_);
  Bytes b(16);
  for (size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<uint8_t>(h >> ((i % 8) * 8));
    if (i % 8 == 7) h = fnv1a64(&h, sizeof(h));
  }
  return b;
}

void ColludeStrategy::handle(const net::Envelope& env, ServerContext& ctx) {
  auto msg = RegisterMessage::parse(env.payload);
  if (!msg) return;
  const Tag t = team_tag(msg->op_id);
  RegisterMessage resp;
  resp.op_id = msg->op_id;
  switch (msg->type) {
    case MsgType::kQueryTag:
      resp.type = MsgType::kTagResp;
      resp.tag = t;
      break;
    case MsgType::kPutData:
      resp.type = MsgType::kAck;
      resp.tag = msg->tag;
      break;
    case MsgType::kQueryData:
      resp.type = MsgType::kDataResp;
      resp.tag = t;
      resp.value = team_value(msg->op_id);
      break;
    case MsgType::kQueryHistory:
      resp.type = MsgType::kHistoryResp;
      resp.history = {TaggedValue{t, team_value(msg->op_id)}};
      break;
    case MsgType::kQueryTagHistory:
      resp.type = MsgType::kTagHistoryResp;
      resp.tags = {t};
      break;
    case MsgType::kQueryDataAt:
      resp.type = MsgType::kDataAtResp;
      resp.tag = msg->tag;
      resp.value = team_value(msg->op_id);
      break;
    default:
      return;
  }
  ctx.send(env.from, resp);
}

// ----------------------------------------------------------- DoubleReply

void DoubleReplyStrategy::handle(const net::Envelope& env, ServerContext& ctx) {
  auto msg = RegisterMessage::parse(env.payload);
  if (!msg) return;
  RegisterMessage first;
  RegisterMessage second;
  first.op_id = second.op_id = msg->op_id;
  switch (msg->type) {
    case MsgType::kQueryTag:
      first.type = second.type = MsgType::kTagResp;
      first.tag = Tag{7, ProcessId::writer(0)};
      second.tag = Tag{9, ProcessId::writer(1)};
      break;
    case MsgType::kPutData:
      first.type = second.type = MsgType::kAck;
      first.tag = second.tag = msg->tag;
      break;
    case MsgType::kQueryData:
      first.type = second.type = MsgType::kDataResp;
      first.tag = Tag{5, ProcessId::writer(0)};
      first.value = random_bytes(ctx.rng, 8);
      second.tag = Tag{6, ProcessId::writer(1)};
      second.value = random_bytes(ctx.rng, 8);
      break;
    default:
      return;
  }
  ctx.send(env.from, first);
  ctx.send(env.from, second);
}

// ------------------------------------------------------------- Malformed

void MalformedStrategy::handle(const net::Envelope& env, ServerContext& ctx) {
  // Random junk of random length, including empty payloads.
  ctx.send_raw(env.from, random_bytes(ctx.rng, ctx.rng.uniform(64)));
}

// -------------------------------------------------------------- Turncoat

TurncoatStrategy::TurncoatStrategy(uint64_t honest_ops)
    : remaining_(honest_ops), honest_(std::make_unique<HonestAdapter>()) {}

void TurncoatStrategy::handle(const net::Envelope& env, ServerContext& ctx) {
  if (remaining_ > 0) {
    --remaining_;
    honest_->handle(env, ctx);
    return;
  }
  stale_.handle(env, ctx);
}

// --------------------------------------------------------------- factory

const char* to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kSilent: return "silent";
    case StrategyKind::kStale: return "stale";
    case StrategyKind::kFabricate: return "fabricate";
    case StrategyKind::kCollude: return "collude";
    case StrategyKind::kDoubleReply: return "double-reply";
    case StrategyKind::kMalformed: return "malformed";
    case StrategyKind::kTurncoat: return "turncoat";
  }
  return "?";
}

std::unique_ptr<Strategy> make_strategy(StrategyKind kind, uint64_t seed) {
  switch (kind) {
    case StrategyKind::kSilent:
      return std::make_unique<SilentStrategy>();
    case StrategyKind::kStale:
      return std::make_unique<StaleStrategy>();
    case StrategyKind::kFabricate:
      return std::make_unique<FabricateStrategy>();
    case StrategyKind::kCollude:
      return std::make_unique<ColludeStrategy>(seed);
    case StrategyKind::kDoubleReply:
      return std::make_unique<DoubleReplyStrategy>();
    case StrategyKind::kMalformed:
      return std::make_unique<MalformedStrategy>();
    case StrategyKind::kTurncoat:
      return std::make_unique<TurncoatStrategy>(20);
  }
  return std::make_unique<SilentStrategy>();
}

}  // namespace bftreg::adversary
