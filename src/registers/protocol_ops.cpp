#include "registers/protocol_ops.h"

#include <algorithm>

namespace bftreg::registers {

// --- BsrReadOp --------------------------------------------------------------

void BsrReadOp::send_request() {
  RegisterMessage query;
  query.type = MsgType::kQueryData;
  query.op_id = op_id();
  query.object = object();
  send_to_all_servers(query);
}

void BsrReadOp::on_response(const ProcessId& from, RegisterMessage msg) {
  if (msg.type != MsgType::kDataResp || msg.object != object()) return;
  if (!responded_.add(from)) return;
  responses_.emplace(from, TaggedValue{msg.tag, std::move(msg.value)});
  if (responded_.reached()) finish();
}

void BsrReadOp::finish() {
  // P <- pairs with at least f+1 witnesses (Fig. 2 line 5).
  std::map<TaggedValue, size_t> witnesses;
  for (const auto& [server, pair] : responses_) ++witnesses[pair];

  const TaggedValue* best = nullptr;
  for (const auto& [pair, count] : witnesses) {
    if (count >= config().witness_threshold()) {
      // std::map iterates in ascending order, so the last qualifying pair
      // is the highest (Fig. 2 line 6).
      best = &pair;
    }
  }

  bool fresh = false;
  if (best != nullptr && best->tag > state_->local.tag) {  // Fig. 2 line 7
    state_->local = *best;
    fresh = true;
  }
  complete(fresh);
}

// On timeout the witness selection still runs over the partial response
// set: f+1 identical reports pin an honest server regardless of how many
// other responses arrived, so any pair it promotes is a real write. Only
// the freshness guarantee of a full quorum is lost, which timed_out flags.
void BsrReadOp::on_timeout() { finish(); }

void BsrReadOp::complete(bool fresh) {
  auto self = detach_self();
  ReadResult result;
  result.value = state_->local.value;
  result.tag = state_->local.tag;
  result.fresh = fresh;
  fill_result(result, 1);
  if (cb_) cb_(result);
}

// --- BcsrReadOp -------------------------------------------------------------

void BcsrReadOp::send_request() {
  RegisterMessage query;
  query.type = MsgType::kQueryData;
  query.op_id = op_id();
  query.object = object();
  send_to_all_servers(query);
}

void BcsrReadOp::on_response(const ProcessId& from, RegisterMessage msg) {
  if (msg.type != MsgType::kDataResp || msg.object != object()) return;
  if (from.index >= config().n) return;
  if (!responded_.add(from)) return;
  elements_[from.index] = std::move(msg.value);
  if (!responded_.reached()) return;

  // Fig. 5 line 4: return Phi^{-1}(received elements) if possible,
  // otherwise fall back (v0 / last decodable value).
  bool fresh = false;
  if (auto decoded = code_->decode(elements_)) {
    state_->last_decoded = *decoded;
    fresh = true;
  } else {
    ++state_->decode_failures;
  }
  complete(fresh);
}

void BcsrReadOp::on_timeout() { complete(false); }

void BcsrReadOp::complete(bool fresh) {
  auto self = detach_self();
  ReadResult result;
  result.value = state_->last_decoded;
  result.fresh = fresh;
  fill_result(result, 1);
  if (cb_) cb_(result);
}

// --- HistoryReadOp ----------------------------------------------------------

void HistoryReadOp::send_request() {
  RegisterMessage query;
  query.type = MsgType::kQueryHistory;
  query.op_id = op_id();
  query.object = object();
  send_to_all_servers(query);
}

void HistoryReadOp::on_response(const ProcessId& from, RegisterMessage msg) {
  if (msg.type != MsgType::kHistoryResp || msg.object != object()) return;
  if (!responded_.add(from)) return;

  // A server witnesses each *distinct* pair in its history once; a
  // Byzantine history repeating one pair a thousand times counts once.
  std::set<TaggedValue> distinct(msg.history.begin(), msg.history.end());
  for (const auto& pair : distinct) ++witnesses_[pair];

  if (responded_.reached()) finish();
}

void HistoryReadOp::finish() {
  const TaggedValue* best = nullptr;
  for (const auto& [pair, count] : witnesses_) {
    if (count >= config().witness_threshold()) best = &pair;  // ascending map
  }
  bool fresh = false;
  if (best != nullptr && best->tag > state_->local.tag) {
    state_->local = *best;
    fresh = true;
  }
  complete(fresh);
}

// Like BsrReadOp: the f+1-witness rule is sound over a partial response
// set, so the timeout path still promotes whatever was pinned.
void HistoryReadOp::on_timeout() { finish(); }

void HistoryReadOp::complete(bool fresh) {
  auto self = detach_self();
  ReadResult result;
  result.value = state_->local.value;
  result.tag = state_->local.tag;
  result.fresh = fresh;
  fill_result(result, 1);
  if (cb_) cb_(result);
}

// --- TwoRoundReadOp ---------------------------------------------------------

void TwoRoundReadOp::send_request() {
  RegisterMessage query;
  switch (phase_) {
    case Phase::kGetTag:
      query.type = MsgType::kQueryTagHistory;
      break;
    case Phase::kGetData:
      query.type = MsgType::kQueryDataAt;
      query.tag = target_;
      break;
  }
  query.op_id = op_id();
  query.object = object();
  send_to_all_servers(query);
}

void TwoRoundReadOp::on_response(const ProcessId& from, RegisterMessage msg) {
  if (msg.object != object()) return;
  switch (msg.type) {
    case MsgType::kTagHistoryResp:
      on_tag_history(from, msg);
      break;
    case MsgType::kDataAtResp:
      on_data_at(from, msg);
      break;
    case MsgType::kDataAtMissing:
      // Provisional: the server will answer again when it learns the tag.
      break;
    default:
      break;
  }
}

void TwoRoundReadOp::on_tag_history(const ProcessId& from,
                                    const RegisterMessage& msg) {
  if (phase_ != Phase::kGetTag) return;
  if (!responded_.add(from)) return;
  for (const Tag& t : msg.tags) tag_votes_[t].insert(from);
  if (responded_.reached()) begin_get_data();
}

void TwoRoundReadOp::begin_get_data() {
  // Largest tag vouched by >= f+1 servers. t0 always qualifies (every
  // honest server's history contains it), so a target always exists.
  target_ = Tag::initial();
  for (const auto& [tag, voters] : tag_votes_) {
    if (voters.size() >= config().witness_threshold()) target_ = tag;  // ascending
  }
  phase_ = Phase::kGetData;
  responded_.reset();
  send_request();
}

void TwoRoundReadOp::on_data_at(const ProcessId& from, const RegisterMessage& msg) {
  if (phase_ != Phase::kGetData) return;
  if (msg.tag != target_) return;  // Byzantine answer for a different tag
  auto& voters = value_votes_[msg.value];
  voters.insert(from);
  if (voters.size() < config().witness_threshold()) return;

  bool fresh = false;
  if (target_ > state_->local.tag) {
    state_->local = TaggedValue{target_, msg.value};
    fresh = true;
  }
  complete(fresh);
}

void TwoRoundReadOp::send_read_done() {
  // Cancel the deferred QUERY-DATA-AT replies left behind at the servers.
  RegisterMessage done;
  done.type = MsgType::kReadDone;
  done.op_id = op_id();
  done.object = object();
  send_to_all_servers(done);
}

void TwoRoundReadOp::on_timeout() {
  send_read_done();
  complete(false);
}

void TwoRoundReadOp::complete(bool fresh) {
  if (!timed_out()) send_read_done();
  auto self = detach_self();
  ReadResult result;
  result.value = state_->local.value;
  result.tag = state_->local.tag;
  result.fresh = fresh;
  fill_result(result, 2);
  if (cb_) cb_(result);
}

// --- WriteBackReadOp --------------------------------------------------------

void WriteBackReadOp::send_request() {
  switch (phase_) {
    case Phase::kGetData: {
      RegisterMessage query;
      query.type = MsgType::kQueryData;
      query.op_id = op_id();
      query.object = object();
      send_to_all_servers(query);
      break;
    }
    case Phase::kWriteBack: {
      RegisterMessage put;
      put.type = MsgType::kPutData;
      put.op_id = op_id();
      put.object = object();
      put.tag = state_->local.tag;
      put.value = state_->local.value;
      send_to_all_servers(put);
      break;
    }
  }
}

void WriteBackReadOp::on_response(const ProcessId& from, RegisterMessage msg) {
  if (msg.object != object()) return;
  switch (msg.type) {
    case MsgType::kDataResp: {
      if (phase_ != Phase::kGetData) return;
      if (!responded_.add(from)) return;
      responses_.emplace(from, TaggedValue{msg.tag, std::move(msg.value)});
      if (responded_.reached()) begin_write_back();
      break;
    }
    case MsgType::kAck: {
      if (phase_ != Phase::kWriteBack) return;
      if (msg.tag != state_->local.tag) return;
      if (!responded_.add(from)) return;
      if (responded_.reached()) complete(fresh_);
      break;
    }
    default:
      break;
  }
}

void WriteBackReadOp::begin_write_back() {
  // Fig. 2's selection: the highest pair with f+1 witnesses, if it beats
  // the local pair.
  std::map<TaggedValue, size_t> witnesses;
  for (const auto& [server, pair] : responses_) ++witnesses[pair];
  const TaggedValue* best = nullptr;
  for (const auto& [pair, count] : witnesses) {
    if (count >= config().witness_threshold()) best = &pair;  // ascending map
  }
  if (best != nullptr && best->tag > state_->local.tag) {
    state_->local = *best;
    fresh_ = true;
  }

  // Phase two: write the chosen pair back before returning, pinning every
  // later read's quorum to at least this pair.
  phase_ = Phase::kWriteBack;
  responded_.reset();
  send_request();
}

// If the get-data phase already chose a witnessed pair, report it (with
// its freshness) even though the write-back did not reach a quorum: the
// value is real, only the atomicity pinning is incomplete -- timed_out
// tells the caller the stronger guarantee was not earned.
void WriteBackReadOp::on_timeout() { complete(fresh_); }

void WriteBackReadOp::complete(bool fresh) {
  auto self = detach_self();
  ReadResult result;
  result.value = state_->local.value;
  result.tag = state_->local.tag;
  result.fresh = fresh;
  fill_result(result, 2);
  if (cb_) cb_(result);
}

// --- WriteOp ----------------------------------------------------------------

void WriteOp::send_request() {
  switch (phase_) {
    case Phase::kGetTag: {
      RegisterMessage query;
      query.type = MsgType::kQueryTag;
      query.op_id = op_id();
      query.object = object();
      send_to_all_servers(query);
      break;
    }
    case Phase::kPutData:
      send_put_data();
      break;
  }
}

void WriteOp::on_response(const ProcessId& from, RegisterMessage msg) {
  if (msg.object != object()) return;
  switch (msg.type) {
    case MsgType::kTagResp:
      on_tag_resp(from, msg);
      break;
    case MsgType::kAck:
      on_ack(from, msg);
      break;
    default:
      break;
  }
}

void WriteOp::on_tag_resp(const ProcessId& from, const RegisterMessage& msg) {
  if (phase_ != Phase::kGetTag) return;
  if (!responded_.add(from)) return;  // Byzantine double-reply
  tags_.push_back(msg.tag);
  if (!responded_.reached()) return;

  // Fig. 1 line 4: the (f+1)-th highest among the n-f collected tags. The
  // per-object floor keeps a client's pipelined writes on distinct tags
  // even when their get-tag phases ran concurrently.
  std::sort(tags_.begin(), tags_.end(), std::greater<>());
  const Tag base = tags_[std::min(config().tag_rank(), tags_.size()) - 1];
  const uint64_t num = std::max(base.num, state_->last_issued_num) + 1;
  state_->last_issued_num = num;
  write_tag_ = Tag{num, self()};

  phase_ = Phase::kPutData;
  responded_.reset();
  send_put_data();
}

void WriteOp::send_put_data() {
  RegisterMessage put;
  put.type = MsgType::kPutData;
  put.op_id = op_id();
  put.object = object();
  put.tag = write_tag_;
  if (code_ == nullptr) {
    put.value = value_;
    send_to_all_servers(put);
    return;
  }
  // Fig. 4 line 7: (PUT-DATA, (t_w, c_i)) to s_i, where c_i = Phi_i(v).
  std::vector<Bytes> elements = code_->encode(value_);
  for (uint32_t i = 0; i < config().n; ++i) {
    // Each element is consumed by exactly one message; move it into the
    // frame instead of re-copying a value_size/k buffer per server.
    put.value = std::move(elements[i]);
    send_to_server(i, put);
  }
}

void WriteOp::on_ack(const ProcessId& from, const RegisterMessage& msg) {
  if (phase_ != Phase::kPutData) return;
  if (msg.tag != write_tag_) return;  // ack for something we did not send
  if (!responded_.add(from)) return;
  if (responded_.reached()) complete();
}

void WriteOp::on_timeout() { complete(); }

void WriteOp::complete() {
  auto self = detach_self();
  WriteResult result;
  result.tag = write_tag_;
  fill_result(result, 2);
  if (cb_) cb_(result);
}

// --- BatchReadOp ------------------------------------------------------------

void BatchReadOp::send_request() {
  RegisterMessage query;
  query.type = MsgType::kQueryDataBatch;
  query.op_id = op_id();
  query.objects = objects_;
  send_to_all_servers(query);
}

void BatchReadOp::on_response(const ProcessId& from, RegisterMessage msg) {
  if (msg.type != MsgType::kDataBatchResp) return;
  // A response that does not cover the full request (malformed or capped)
  // cannot vouch per object; drop it.
  if (msg.objects != objects_ || msg.history.size() != objects_.size()) return;
  if (!responded_.add(from)) return;
  responses_.emplace(from, std::move(msg.history));
  if (responded_.reached()) complete();
}

void BatchReadOp::on_timeout() { complete(); }

void BatchReadOp::complete() {
  auto self = detach_self();
  BatchReadResult batch;
  batch.results.reserve(objects_.size());

  for (size_t i = 0; i < objects_.size(); ++i) {
    const uint32_t object = objects_[i];
    // Fig. 2's selection, object-wise.
    std::map<TaggedValue, size_t> witnesses;
    for (const auto& [server, pairs] : responses_) ++witnesses[pairs[i]];
    const TaggedValue* best = nullptr;
    for (const auto& [pair, count] : witnesses) {
      if (count >= config().witness_threshold()) best = &pair;  // ascending
    }

    auto [it, inserted] = states_->try_emplace(object, LocalState::initial(config()));
    LocalState& state = it->second;
    ReadResult r;
    if (best != nullptr && best->tag > state.local.tag) {
      state.local = *best;
      r.fresh = true;
    }
    r.value = state.local.value;
    r.tag = state.local.tag;
    fill_result(r, 1);
    batch.results.push_back(std::move(r));
  }

  fill_result(batch, 1);
  if (cb_) cb_(batch);
}

}  // namespace bftreg::registers
