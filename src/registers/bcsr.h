// BCSR: Byzantine Coded Safe Register (Section IV, Figs. 4-6).
//
// Single-writer multi-reader safe register storing [n, k] MDS coded
// elements, k = n - 5f. The write is Fig. 1's two phases except PUT-DATA
// carries the per-server coded element Phi_i(v) (Fig. 4 line 7). The read
// (Fig. 5) is one-shot: collect n-f coded elements and run the
// error-correcting decoder Phi^{-1}; among the received elements at most
// (n-f) - (n-3f) = 2f are erroneous (Byzantine-corrupted or stale), which
// is exactly the decoder's budget (Lemma 4).
//
// The emulation tolerates multiple writers as long as their writes are
// never concurrent (paper, footnote 2); concurrent writes may cause a
// decode failure, in which case the read falls back to the reader's last
// decoded value (initially v0) -- consistent with Definition 1(ii).
//
// These are the low-level, single-operation clients; the protocol logic
// lives in WriteOp/BcsrReadOp (protocol_ops.h) and RegisterClient
// (client.h) runs the same ops with multiplexing.
#pragma once

#include <functional>

#include "codec/mds_code.h"
#include "net/transport.h"
#include "registers/bsr_reader.h"
#include "registers/bsr_writer.h"
#include "registers/config.h"
#include "registers/op_mux.h"
#include "registers/protocol_ops.h"

namespace bftreg::registers {

/// Builds the per-server initial elements Phi_i(v0) that BCSR servers are
/// seeded with (Fig. 6: L initially {(t0, c0^s)}).
std::vector<Bytes> bcsr_initial_elements(const SystemConfig& config);

class BcsrWriter final : public BsrWriter {
 public:
  BcsrWriter(ProcessId self, SystemConfig config, net::Transport* transport,
             uint32_t object = 0);
};

class BcsrReader final : public net::IProcess {
 public:
  using Callback = std::function<void(const ReadResult&)>;

  BcsrReader(ProcessId self, SystemConfig config, net::Transport* transport,
             uint32_t object = 0);

  void start_read(Callback callback);
  void on_message(const net::Envelope& env) override { mux_.on_message(env); }

  bool busy() const { return !mux_.idle(); }
  const ProcessId& id() const { return mux_.id(); }
  uint64_t decode_failures() const { return state_.decode_failures; }

 private:
  OpMux mux_;
  const uint32_t object_;
  codec::MdsCode code_;
  LocalState state_;
};

}  // namespace bftreg::registers
