#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace bftreg {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::percentile(double p) const {
  if (values_.empty()) return 0.0;
  // Lazy sort mutates `mutable` state: const here means logically-const,
  // not thread-safe. Concurrent percentile() calls race (see header).
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  if (p <= 0) return values_.front();
  if (p >= 100) return values_.back();
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  emit_row(headers_);
  out << '|';
  for (size_t w : widths) out << std::string(w + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace bftreg
