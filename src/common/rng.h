// Deterministic pseudo-random number generation.
//
// Every source of randomness in the simulator (message delays, workload
// mixes, adversary choices) draws from an explicitly seeded `Rng` so that
// any execution -- including ones that expose a safety violation -- can be
// replayed exactly from its seed. xoshiro256** is used for speed and
// statistical quality; seeding goes through SplitMix64 as its authors
// recommend.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

namespace bftreg {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (bound > 0).
  uint64_t uniform(uint64_t bound) {
    // Lemire's nearly-divisionless method.
    uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed interval [lo, hi].
  uint64_t uniform_range(uint64_t lo, uint64_t hi) {
    return lo + uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) { return uniform_double() < p; }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    double u = uniform_double();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(1.0 - u);
  }

  /// Lognormal by mu/sigma of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::exp(mu + sigma * normal());
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform_double() - 1.0;
      v = 2.0 * uniform_double() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform(i)]);
    }
  }

  /// Pick a uniformly random element (container must be non-empty).
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[uniform(v.size())];
  }

  /// Derive an independent child generator (for per-process streams).
  Rng fork() { return Rng(next_u64()); }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<uint64_t, 4> state_{};
  bool have_spare_{false};
  double spare_{0.0};
};

}  // namespace bftreg
