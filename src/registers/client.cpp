#include "registers/client.h"

#include <future>
#include <memory>
#include <utility>

namespace bftreg::registers {

const char* to_string(ProtocolVariant v) {
  switch (v) {
    case ProtocolVariant::kBsr:
      return "bsr";
    case ProtocolVariant::kBsrHistory:
      return "bsr-history";
    case ProtocolVariant::kBsrTwoRound:
      return "bsr-2r";
    case ProtocolVariant::kBsrWriteBack:
      return "bsr-wb";
    case ProtocolVariant::kBcsr:
      return "bcsr";
  }
  return "?";
}

RegisterClient::RegisterClient(ProcessId self, SystemConfig config,
                               net::Transport* transport, ClientOptions options)
    : mux_(self, std::move(config), transport), options_(options) {
  if (options_.variant == ProtocolVariant::kBcsr) {
    assert(mux_.config().valid_for_bcsr());
    code_ = codec::MdsCode::for_bcsr(mux_.config().n, mux_.config().f);
  } else {
    assert(mux_.config().valid_for_bsr());
  }
}

LocalState& RegisterClient::state_for(uint32_t object) {
  auto [it, inserted] =
      states_.try_emplace(object, LocalState::initial(mux_.config()));
  return it->second;
}

uint64_t RegisterClient::decode_failures() const {
  uint64_t total = 0;
  for (const auto& [object, state] : states_) total += state.decode_failures;
  return total;
}

RetryPolicy RegisterClient::effective_policy(const OpOptions& opts) const {
  RetryPolicy policy = opts.retry_policy.value_or(options_.retry);
  if (opts.deadline != 0) policy.timeout = opts.deadline;
  return policy;
}

void RegisterClient::read(uint32_t object, ReadCallback cb) {
  read(object, OpOptions{}, std::move(cb));
}

void RegisterClient::read(uint32_t object, const OpOptions& opts,
                          ReadCallback cb) {
  const SystemConfig& cfg = mux_.config();
  LocalState* state = &state_for(object);
  std::unique_ptr<PendingOp> op;
  OpKind kind = OpKind::kBsrRead;
  switch (options_.variant) {
    case ProtocolVariant::kBsr:
      op = std::make_unique<BsrReadOp>(cfg, state, std::move(cb));
      kind = OpKind::kBsrRead;
      break;
    case ProtocolVariant::kBsrHistory:
      op = std::make_unique<HistoryReadOp>(cfg, state, std::move(cb));
      kind = OpKind::kHistoryRead;
      break;
    case ProtocolVariant::kBsrTwoRound:
      op = std::make_unique<TwoRoundReadOp>(cfg, state, std::move(cb));
      kind = OpKind::kTwoRoundRead;
      break;
    case ProtocolVariant::kBsrWriteBack:
      op = std::make_unique<WriteBackReadOp>(cfg, state, std::move(cb));
      kind = OpKind::kWriteBackRead;
      break;
    case ProtocolVariant::kBcsr:
      op = std::make_unique<BcsrReadOp>(cfg, &*code_, state, std::move(cb));
      kind = OpKind::kBcsrRead;
      break;
  }
  mux_.start(std::move(op), kind, object, effective_policy(opts));
}

void RegisterClient::write(uint32_t object, Bytes value, WriteCallback cb) {
  write(object, std::move(value), OpOptions{}, std::move(cb));
}

void RegisterClient::write(uint32_t object, Bytes value, const OpOptions& opts,
                           WriteCallback cb) {
  mux_.start(std::make_unique<WriteOp>(mux_.config(),
                                       code_ ? &*code_ : nullptr,
                                       &state_for(object), std::move(value),
                                       std::move(cb)),
             OpKind::kWrite, object, effective_policy(opts));
}

void RegisterClient::read_batch(std::span<const uint32_t> objects,
                                BatchReadCallback cb) {
  assert(options_.variant != ProtocolVariant::kBcsr &&
         "batched reads need replicated storage");
  assert(!objects.empty());
  assert(objects.size() <= 4096 && "batch exceeds the server-side cap");
  // The op owns its id list; the caller's span may die with the call.
  std::vector<uint32_t> owned(objects.begin(), objects.end());
  mux_.start(std::make_unique<BatchReadOp>(mux_.config(), &states_,
                                           std::move(owned), std::move(cb)),
             OpKind::kBatchRead, /*object=*/0, options_.retry);
}

// --- BlockingRegisterClient -------------------------------------------------

ReadResult BlockingRegisterClient::read(uint32_t object, const OpOptions& opts) {
  auto promise = std::make_shared<std::promise<ReadResult>>();
  std::future<ReadResult> fut = promise->get_future();
  client_.transport()->post(client_.id(), [this, object, opts, promise] {
    client_.read(object, opts,
                 [promise](const ReadResult& r) { promise->set_value(r); });
  });
  return fut.get();
}

WriteResult BlockingRegisterClient::write(uint32_t object, Bytes value,
                                          const OpOptions& opts) {
  auto promise = std::make_shared<std::promise<WriteResult>>();
  std::future<WriteResult> fut = promise->get_future();
  client_.transport()->post(
      client_.id(),
      [this, object, opts, v = std::move(value), promise]() mutable {
        client_.write(object, std::move(v), opts,
                      [promise](const WriteResult& r) { promise->set_value(r); });
      });
  return fut.get();
}

BatchReadResult BlockingRegisterClient::read_batch(
    std::span<const uint32_t> objects) {
  // Copy before posting: the caller's span only has to outlive this call,
  // not the asynchronous hop into the client's context.
  std::vector<uint32_t> owned(objects.begin(), objects.end());
  auto promise = std::make_shared<std::promise<BatchReadResult>>();
  std::future<BatchReadResult> fut = promise->get_future();
  client_.transport()->post(
      client_.id(), [this, objs = std::move(owned), promise]() mutable {
        client_.read_batch(std::span<const uint32_t>(objs),
                           [promise](const BatchReadResult& r) {
                             promise->set_value(r);
                           });
      });
  return fut.get();
}

}  // namespace bftreg::registers
