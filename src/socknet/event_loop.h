// Sharded event loop: the thread model of the TCP transport.
//
// A `LoopShard` is one epoll set driven by one thread. Everything the old
// transport did with dedicated per-endpoint threads -- blocking writers,
// per-endpoint readers, one global timer thread -- is expressed against
// this surface instead:
//
//   * file descriptors: add_fd/mod_fd/del_fd register a callback per fd;
//     the loop thread invokes it with the ready epoll event mask. Readers
//     parse on readiness, writers arm EPOLLOUT on partial writes and
//     disarm when drained -- no thread ever blocks in a socket call.
//   * tasks: post() enqueues a closure from any thread (eventfd wake);
//     the loop thread runs it before the next epoll_wait. This is how
//     other threads hand fds and flush work to the owning shard.
//   * timers: run_after() schedules a closure on the shard's timer heap;
//     the epoll_wait timeout is derived from the nearest deadline. This
//     absorbs the old dedicated timer thread.
//
// `EventLoop` is the pool: N shards, started and stopped together. The
// shard count is fixed at construction (net::TransportOptions::loop_shards)
// and *independent of how many endpoints or connections exist* -- that is
// the point. Work is distributed by hashing: an endpoint's home shard is
// hash(pid) % N (stable for the endpoint's lifetime; asserted by tests),
// and accepted connections are spread round-robin so one hot server's
// client fleet does not serialize behind a single thread.
//
// Threading contract:
//   * post()/run_after() are thread-safe.
//   * add_fd/mod_fd/del_fd must be called on the shard's own thread
//     (post() a task to get there). Asserted in debug builds.
//   * handlers run on the shard thread, one at a time; a handler may
//     add/del fds of its own shard, including the one it fired for.
//
// `MailboxPool` is the matching consolidation of handler threads: a fixed
// set of MPSC-ring consumers (runtime/mailbox.h) onto which the transport
// multiplexes every (process, delivery-shard) context. One context maps to
// exactly one consumer, so the IProcess serialization guarantee holds; the
// thread count stops scaling with the endpoint count.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "common/types.h"
#include "runtime/mailbox.h"

namespace bftreg::socknet {

class LoopShard {
 public:
  /// Callback for fd readiness; receives the ready epoll event mask
  /// (EPOLLIN / EPOLLOUT / EPOLLERR / EPOLLHUP bits).
  using FdHandler = std::function<void(uint32_t events)>;

  LoopShard();
  ~LoopShard();

  LoopShard(const LoopShard&) = delete;
  LoopShard& operator=(const LoopShard&) = delete;

  void start();
  /// Runs every already-posted task, drops pending timers (the transport
  /// contract: timers pending at shutdown are dropped), and joins the
  /// thread. Registered fds are NOT closed -- their owner reclaims them
  /// after the join, when nothing can race the close.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  bool on_loop_thread() const;

  /// Enqueues `fn` to run on the loop thread. Thread-safe; never blocks.
  void post(std::function<void()> fn);

  /// Runs `fn` on the loop thread no earlier than `delta_ns` from now.
  /// Thread-safe. Pending timers are dropped at stop().
  void run_after(TimeNs delta_ns, std::function<void()> fn);

  // --- fd registration (loop thread only) ---------------------------------

  void add_fd(int fd, uint32_t events, FdHandler handler);
  void mod_fd(int fd, uint32_t events);
  /// Unregisters the handler. Does not close the fd. Safe to call from the
  /// fd's own handler; a deleted fd's queued events in the current batch
  /// are skipped.
  void del_fd(int fd);
  bool has_fd(int fd) const;

 private:
  struct Timer {
    TimeNs due;
    uint64_t seq;
    std::function<void()> fn;
  };

  void loop();
  /// Runs every queued task; returns true when at least one ran (progress
  /// signal for the park heuristic in loop()).
  bool drain_tasks();
  /// Kicks the loop out of epoll_wait. Coalesced: between two drains only
  /// the first caller pays the eventfd write syscall; later callers see
  /// wake_pending_ already set and return immediately.
  void wake();
  /// Merges newly posted timers, fires the due ones, and returns the
  /// epoll_wait timeout (ms) until the next deadline (-1 = none).
  int run_timers();
  static TimeNs mono_now();

  int epoll_fd_{-1};
  int wake_fd_{-1};
  std::thread thread_;
  std::atomic<bool> running_{false};
  /// True while a wake has been issued that the loop has not yet consumed
  /// (cleared at the top of drain_tasks, before the task swap, so a post
  /// landing after the clear either joins the in-progress swap or issues a
  /// fresh -- at worst spurious -- wake; a wake is never lost).
  std::atomic<bool> wake_pending_{false};
  /// True only while the loop is parked (or about to park) in epoll_wait.
  /// wake() skips the eventfd syscall entirely when this is false: the
  /// loop is busy and rechecks the queues under mu_ before it next parks
  /// (sleep/wake handshake, same shape as runtime/mailbox.h). On the
  /// 1-CPU ping-pong path this removes two syscalls per flush cycle.
  std::atomic<bool> polling_{false};

  Mutex mu_;
  std::deque<std::function<void()>> tasks_ GUARDED_BY(mu_);
  std::vector<Timer> new_timers_ GUARDED_BY(mu_);

  // Loop-thread private.
  std::map<int, std::shared_ptr<FdHandler>> handlers_;
  std::vector<Timer> heap_;  // min-heap on (due, seq)
  uint64_t timer_seq_{0};
};

/// Fixed pool of LoopShards plus the hashing that assigns work to them.
class EventLoop {
 public:
  explicit EventLoop(size_t shards);

  void start();
  void stop();

  size_t size() const { return shards_.size(); }
  LoopShard& shard(size_t idx) { return *shards_[idx]; }

  /// Stable home shard for an endpoint: hash(pid) % size(). Listeners,
  /// dialed connections, and timers of the endpoint live here.
  size_t shard_of(const ProcessId& pid) const;

  /// Spreads accepted connections across shards (round-robin), so inbound
  /// load of one hot endpoint is not pinned to its home shard.
  size_t next_conn_shard();

  bool on_loop_thread() const;

 private:
  std::vector<std::unique_ptr<LoopShard>> shards_;
  std::atomic<uint64_t> conn_rr_{0};
};

/// Fixed pool of mailbox consumers. Contexts (one per process delivery
/// shard) are assigned round-robin at registration time, so distinct
/// delivery shards of one process land on distinct consumers whenever the
/// pool is at least as large as the process's shard count.
class MailboxPool {
 public:
  explicit MailboxPool(size_t shards);

  void start();
  /// Drains every shard, then joins the consumer threads. Idempotent.
  void stop();

  size_t size() const { return shards_.size(); }

  /// Assigns the next context to a consumer; returns its index. Call
  /// before start() (registration time), like Transport::add_process.
  size_t assign_context() { return next_assign_++ % shards_.size(); }

  runtime::MailboxShard& shard(size_t idx) { return *shards_[idx]; }

  bool on_pool_thread() const;

 private:
  std::vector<std::unique_ptr<runtime::MailboxShard>> shards_;
  std::vector<std::thread> threads_;
  size_t next_assign_{0};
};

}  // namespace bftreg::socknet
