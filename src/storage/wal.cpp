#include "storage/wal.h"

#include <cassert>
#include <cstdio>

#include "common/serde.h"

namespace bftreg::storage {

namespace {

constexpr uint32_t kMagic = 0xB5F7106Au;

uint32_t record_crc(const Bytes& body) {
  return static_cast<uint32_t>(fnv1a64(body.data(), body.size()) & 0xffffffffu);
}

/// Serialized record body (everything the crc covers).
Bytes encode_body(const WalRecord& r) {
  Serializer s;
  s.put_u32(r.object);
  s.put_tag(r.tag);
  s.put_bytes(r.value);
  return s.take();
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string path) : path_(std::move(path)) {
  open_for_append();
}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) std::fclose(file_);
}

void WriteAheadLog::open_for_append() {
  file_ = std::fopen(path_.c_str(), "ab");
  assert(file_ != nullptr && "cannot open WAL for append");
}

void WriteAheadLog::append(const WalRecord& record) {
  const Bytes body = encode_body(record);
  Serializer s;
  s.put_u32(kMagic);
  Bytes head = s.take();
  Serializer tail;
  tail.put_u32(record_crc(body));
  const Bytes crc = tail.buffer();

  std::fwrite(head.data(), 1, head.size(), file_);
  std::fwrite(body.data(), 1, body.size(), file_);
  std::fwrite(crc.data(), 1, crc.size(), file_);
  std::fflush(file_);
  bytes_written_ += head.size() + body.size() + crc.size();
}

void WriteAheadLog::compact(const std::vector<WalRecord>& records) {
  const std::string tmp = path_ + ".tmp";
  {
    std::FILE* out = std::fopen(tmp.c_str(), "wb");
    assert(out != nullptr);
    for (const WalRecord& r : records) {
      const Bytes body = encode_body(r);
      Serializer s;
      s.put_u32(kMagic);
      const Bytes head = s.buffer();
      Serializer t;
      t.put_u32(record_crc(body));
      const Bytes crc = t.buffer();
      std::fwrite(head.data(), 1, head.size(), out);
      std::fwrite(body.data(), 1, body.size(), out);
      std::fwrite(crc.data(), 1, crc.size(), out);
    }
    std::fclose(out);
  }
  if (file_ != nullptr) std::fclose(file_);
  [[maybe_unused]] const int rc = std::rename(tmp.c_str(), path_.c_str());
  assert(rc == 0);
  open_for_append();
}

ReplayResult WriteAheadLog::replay(const std::string& path) {
  ReplayResult out;
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return out;  // no log yet: empty state

  // Slurp the file; WALs here are test/deployment scale, not TB-scale.
  std::fseek(in, 0, SEEK_END);
  const long size = std::ftell(in);
  std::fseek(in, 0, SEEK_SET);
  Bytes data(static_cast<size_t>(size));
  if (size > 0 && std::fread(data.data(), 1, data.size(), in) != data.size()) {
    std::fclose(in);
    out.truncated_bytes = data.size();
    return out;
  }
  std::fclose(in);

  size_t pos = 0;
  while (pos < data.size()) {
    Deserializer d(data.data() + pos, data.size() - pos);
    const uint32_t magic = d.get_u32();
    WalRecord r;
    r.object = d.get_u32();
    r.tag = d.get_tag();
    r.value = d.get_bytes();
    const size_t body_len = 4 + 13 + 4 + r.value.size();
    const uint32_t crc = d.get_u32();
    if (!d.ok() || magic != kMagic) break;

    // Re-derive the crc over the body bytes as they appeared on disk.
    const uint32_t expect = static_cast<uint32_t>(
        fnv1a64(data.data() + pos + 4, body_len) & 0xffffffffu);
    if (crc != expect) break;

    out.records.push_back(std::move(r));
    pos += 4 + body_len + 4;
  }
  out.truncated_bytes = data.size() - pos;
  return out;
}

}  // namespace bftreg::storage
