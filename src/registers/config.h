// Shared system configuration for register emulations.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "net/transport.h"

namespace bftreg::registers {

// Resilience bounds (the only place the `k*f + 1` literals may appear;
// tools/bftreg_lint enforces that everything else calls these helpers, so a
// bound can never silently drift from the paper's theorems).

/// BSR needs n >= 4f + 1 (Theorems 2 and 5).
constexpr size_t bsr_min_servers(size_t f) { return 4 * f + 1; }

/// BCSR needs n >= 5f + 1 (Lemma 4 and Theorem 6).
constexpr size_t bcsr_min_servers(size_t f) { return 5 * f + 1; }

/// RB-based baseline needs n >= 3f + 1 (Bracha broadcast bound).
constexpr size_t rb_min_servers(size_t f) { return 3 * f + 1; }

/// Dimension k = n - 5f of BCSR's [n, k] MDS code (Section IV).
constexpr size_t bcsr_code_dimension(size_t n, size_t f) { return n - 5 * f; }

/// How a server maintains its list L of (tag, value) pairs.
enum class StorePolicy : uint8_t {
  /// Fig. 3 verbatim: add (t_in, v_in) only when t_in exceeds every tag in
  /// L. Minimal state; sufficient for BSR/BCSR safety.
  kMaxOnly = 0,
  /// Keep every distinct tag ever received. Required by the regularity
  /// extensions (history reads, two-round reads with deferred replies),
  /// which consult older entries of L.
  kAll = 1,
};

struct SystemConfig {
  size_t n{5};
  size_t f{1};
  Bytes initial_value{};  // v0
  StorePolicy store_policy{StorePolicy::kAll};

  /// Ablation knobs (0 = use the paper's value). Overriding these breaks
  /// the correctness guarantees on purpose; bench_quorum_ablation uses them
  /// to demonstrate *why* the paper's choices are necessary.
  size_t witness_threshold_override{0};
  size_t tag_rank_override{0};

  /// History garbage collection: keep at most this many entries per object
  /// in each server's list L (0 = unbounded, the paper's model). Pruning
  /// never touches correctness of plain BSR/BCSR (they only consult the
  /// newest pair) but *does* erode the regularity extensions, which consult
  /// older entries -- tests/extensions_test.cpp demonstrates the history
  /// fix failing the Theorem 3 schedule at max_history = 1.
  size_t max_history{0};

  /// Real-time transport sizing (event-loop shards, handler threads,
  /// outbound buffering -- see net::TransportOptions). Validated by the
  /// builder alongside the protocol knobs and consumed by whoever
  /// constructs the TcpNetwork/ThreadNetwork for this config; the
  /// simulator ignores it.
  net::TransportOptions transport{};

  /// Object-table shards per server: each server asks its transport for
  /// this many delivery contexts and splits its per-object state across
  /// them by hash(object) (see registers/server.h). Purely an execution
  /// knob -- protocol semantics are per-object and objects never span
  /// shards. 1 (the default) reproduces the single-mailbox behavior;
  /// transports without sharding support (the simulator) ignore it.
  size_t server_shards{1};

  /// Operations wait for exactly n - f server responses (Lemma 6 shows
  /// waiting for more forfeits liveness).
  size_t quorum() const { return n - f; }

  /// Catch-up quorum: how many of its n - 1 peers a recovering server must
  /// hear from before adopting state (f of the peers may be faulty or
  /// down). Among any such peer set, every completed write -- stored on
  /// >= n - f servers, hence >= n - f - 1 peers -- has at least
  /// n - 2f - 1 >= f + 1 honest holders for n >= 4f + 1, so the
  /// witness_threshold() vote over the responses recovers it.
  size_t catch_up_quorum() const { return n - f - 1; }

  /// Witness threshold: f + 1 identical responses pin at least one honest
  /// server behind a value (Lemma 5 shows fewer is unsafe).
  size_t witness_threshold() const {
    return witness_threshold_override != 0 ? witness_threshold_override : f + 1;
  }

  /// get-tag selection rank: the writer picks the rank-th highest tag
  /// (1 = maximum). The paper uses f + 1 (Fig. 1 line 4).
  size_t tag_rank() const { return tag_rank_override != 0 ? tag_rank_override : f + 1; }

  std::vector<ProcessId> servers() const {
    std::vector<ProcessId> out;
    out.reserve(n);
    for (uint32_t i = 0; i < n; ++i) out.push_back(ProcessId::server(i));
    return out;
  }

  /// BSR resilience requirement (Theorems 2 and 5).
  bool valid_for_bsr() const { return n >= bsr_min_servers(f); }

  /// BCSR resilience requirement (Lemma 4 and Theorem 6).
  bool valid_for_bcsr() const { return n >= bcsr_min_servers(f); }

  /// RB-based baseline requirement (Bracha broadcast bound).
  bool valid_for_rb() const { return n >= rb_min_servers(f); }

  class Builder;
  /// Fluent construction with centralized validation; the build_for_*
  /// terminals return Result instead of asserting, so tools and examples
  /// can report a bad (n, f) instead of aborting.
  static Builder builder();
};

/// Validating builder for SystemConfig.
///
///   auto config = SystemConfig::builder().n(5).f(1).build_for_bsr();
///   if (!config) { ...config.error().detail... }
///
/// Validation is centralized here -- the bound checks delegate to the same
/// bsr_min_servers/bcsr_min_servers/rb_min_servers helpers the protocols
/// use (the only place the paper's k*f+1 literals may appear), so builder
/// and protocol can never disagree on a resilience bound.
class SystemConfig::Builder {
 public:
  Builder& n(size_t value) { config_.n = value; return *this; }
  Builder& f(size_t value) { config_.f = value; return *this; }
  Builder& initial_value(Bytes value) {
    config_.initial_value = std::move(value);
    return *this;
  }
  Builder& store_policy(StorePolicy value) {
    config_.store_policy = value;
    return *this;
  }
  Builder& witness_threshold_override(size_t value) {
    config_.witness_threshold_override = value;
    return *this;
  }
  Builder& tag_rank_override(size_t value) {
    config_.tag_rank_override = value;
    return *this;
  }
  Builder& max_history(size_t value) { config_.max_history = value; return *this; }
  Builder& server_shards(size_t value) {
    config_.server_shards = value;
    return *this;
  }
  /// Transport sizing for the real-time runtimes (0 fields = auto).
  Builder& transport_options(net::TransportOptions value) {
    config_.transport = value;
    return *this;
  }

  /// Protocol-independent sanity only (clients of build() must check the
  /// protocol bound themselves; prefer the build_for_* terminals).
  Result<SystemConfig> build() const {
    if (config_.n == 0) {
      return Error{Errc::kInvalidArgument, "n must be positive"};
    }
    if (config_.f >= config_.n) {
      return Error{Errc::kInvalidArgument,
                   "f=" + std::to_string(config_.f) + " leaves no quorum at n=" +
                       std::to_string(config_.n)};
    }
    // Ablation overrides above the quorum size would wait for more
    // identical answers than responses collected: the operation never
    // completes. Reject rather than hang.
    if (config_.witness_threshold_override > config_.quorum()) {
      return Error{Errc::kInvalidArgument,
                   "witness threshold override exceeds the quorum n-f"};
    }
    if (config_.tag_rank_override > config_.quorum()) {
      return Error{Errc::kInvalidArgument,
                   "tag rank override exceeds the quorum n-f"};
    }
    if (config_.server_shards == 0) {
      return Error{Errc::kInvalidArgument, "server_shards must be positive"};
    }
    // Transport sizing: 0 means auto, but explicit values must be sane. A
    // frame must fit in the outbox (header + some payload), and shard
    // counts beyond 1024 are a typo, not a deployment.
    if (config_.transport.loop_shards > 1024) {
      return Error{Errc::kInvalidArgument, "transport.loop_shards > 1024"};
    }
    if (config_.transport.mailbox_shards > 1024) {
      return Error{Errc::kInvalidArgument, "transport.mailbox_shards > 1024"};
    }
    if (config_.transport.max_outbox_bytes < 4096) {
      return Error{Errc::kInvalidArgument,
                   "transport.max_outbox_bytes below one frame (4096)"};
    }
    return config_;
  }

  /// BSR: n >= 4f+1 (Theorems 2 and 5).
  Result<SystemConfig> build_for_bsr() const {
    return build_bounded(bsr_min_servers(config_.f), "BSR");
  }

  /// BCSR: n >= 5f+1 (Lemma 4 and Theorem 6).
  Result<SystemConfig> build_for_bcsr() const {
    return build_bounded(bcsr_min_servers(config_.f), "BCSR");
  }

  /// RB baseline: n >= 3f+1 (Bracha broadcast bound).
  Result<SystemConfig> build_for_rb() const {
    return build_bounded(rb_min_servers(config_.f), "RB");
  }

 private:
  Result<SystemConfig> build_bounded(size_t min_servers,
                                     const char* protocol) const {
    auto base = build();
    if (!base) return base;
    if (config_.n < min_servers) {
      return Error{Errc::kInvalidArgument,
                   std::string(protocol) + " needs n >= " +
                       std::to_string(min_servers) + " at f=" +
                       std::to_string(config_.f) + ", got n=" +
                       std::to_string(config_.n)};
    }
    return base;
  }

  SystemConfig config_{};
};

inline SystemConfig::Builder SystemConfig::builder() { return Builder{}; }

}  // namespace bftreg::registers
