// Tests for the write-back reader extension (BSR-WB): atomic reads at the
// price of a second round.
#include <gtest/gtest.h>

#include <string>

#include "checker/consistency.h"
#include "harness/sim_cluster.h"
#include "workload/workload.h"

namespace bftreg::harness {
namespace {

using adversary::StrategyKind;
using checker::CheckOptions;
using checker::check_atomicity;
using checker::check_safety;

Bytes val(const std::string& s) { return Bytes(s.begin(), s.end()); }

ClusterOptions wb_options(size_t n, size_t f, uint64_t seed = 1,
                          size_t writers = 2, size_t readers = 2) {
  ClusterOptions o;
  o.protocol = Protocol::kBsrWb;
  o.config.n = n;
  o.config.f = f;
  o.num_writers = writers;
  o.num_readers = readers;
  o.seed = seed;
  return o;
}

TEST(WriteBackTest, ReadAfterWriteReturnsWrittenValue) {
  SimCluster cluster(wb_options(5, 1));
  cluster.write(0, val("wb"));
  const auto r = cluster.read(0);
  EXPECT_EQ(r.value, val("wb"));
  EXPECT_EQ(r.rounds, 2);  // the price of atomicity
}

TEST(WriteBackTest, InitialReadWorks) {
  SimCluster cluster(wb_options(5, 1));
  EXPECT_EQ(cluster.read(0).value, Bytes{});
}

TEST(WriteBackTest, SurvivesByzantineServers) {
  SimCluster cluster(wb_options(9, 2, 3));
  cluster.set_byzantine(1, StrategyKind::kFabricate);
  cluster.set_byzantine(6, StrategyKind::kStale);
  for (int i = 0; i < 8; ++i) {
    cluster.write(i % 2, val("w" + std::to_string(i)));
    EXPECT_EQ(cluster.read(i % 2).value, val("w" + std::to_string(i)));
  }
  CheckOptions copts;
  copts.strict_validity = true;
  EXPECT_TRUE(check_safety(cluster.recorder().ops(), copts).ok);
}

TEST(WriteBackTest, DefeatsTheCrossReaderInversionSchedule) {
  // The exact schedule under which plain BSR is provably not atomic
  // (extensions_test.cpp/AtomicityTest.BsrIsProvablyNotAtomic): w(v2)
  // reaches only s0 and s1; reader 0's quorum sees it, reader 1's barely
  // does. With write-back, reader 0 replicates v2 to n-f servers before
  // returning it, so reader 1 must see it too.
  SimCluster cluster(wb_options(5, 1, 9));
  cluster.start();
  cluster.write(0, val("v1"));
  cluster.sim().run_until_idle();

  auto& delay = cluster.sim().delay_model();
  auto block_writer_puts = [](const net::Envelope& env) -> std::optional<TimeNs> {
    auto msg = registers::RegisterMessage::parse(env.payload);
    // Only the WRITER's put-data is withheld from s2..s4; the reader's
    // write-back put-data must pass.
    if (msg && msg->type == registers::MsgType::kPutData &&
        env.from.role == Role::kWriter && env.to.is_server() &&
        env.to.index >= 2) {
      return TimeNs{1'000'000'000};
    }
    return std::nullopt;
  };
  delay.set_hook(block_writer_puts);
  const uint64_t wid = cluster.start_write(1, val("v2"));
  cluster.sim().run_until_time(cluster.sim().now() + 100'000);
  EXPECT_FALSE(cluster.op_done(wid));

  // Reader 0 with server 4 delayed: quorum includes s0, s1 -> sees v2.
  delay.set_hook([&](const net::Envelope& env) -> std::optional<TimeNs> {
    if (auto d = block_writer_puts(env)) return d;
    if (env.from == ProcessId::server(4) && env.to == ProcessId::reader(0)) {
      return TimeNs{1'000'000'000};
    }
    return std::nullopt;
  });
  const auto r1 = cluster.read(0);
  EXPECT_EQ(r1.value, val("v2"));

  // Reader 1 with server 0's replies delayed: under plain BSR this read
  // returned v1; the write-back forces v2.
  delay.set_hook([&](const net::Envelope& env) -> std::optional<TimeNs> {
    if (auto d = block_writer_puts(env)) return d;
    if (env.from == ProcessId::server(0) && env.to == ProcessId::reader(1)) {
      return TimeNs{1'000'000'000};
    }
    return std::nullopt;
  });
  const auto r2 = cluster.read(1);
  EXPECT_EQ(r2.value, val("v2"));

  CheckOptions copts;
  const auto atom = check_atomicity(cluster.recorder().ops(), copts);
  EXPECT_TRUE(atom.ok) << atom.violation;
}

class WriteBackRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WriteBackRandomTest, RandomExecutionIsAtomic) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 101 + 7);
  const size_t f = 1 + rng.uniform(2);
  const size_t n = 4 * f + 1 + rng.uniform(2);
  SimCluster cluster(wb_options(n, f, seed, 2, 3));
  for (size_t i = 0; i < f; ++i) {
    cluster.set_byzantine(rng.uniform(n),
                          adversary::kAllStrategyKinds[rng.uniform(
                              std::size(adversary::kAllStrategyKinds))]);
  }

  std::vector<std::optional<uint64_t>> wop(2), rop(3);
  uint64_t counter = 0;
  for (int step = 0; step < 60; ++step) {
    for (auto& s : wop) {
      if (s && cluster.op_done(*s)) s.reset();
    }
    for (auto& s : rop) {
      if (s && cluster.op_done(*s)) s.reset();
    }
    const size_t w = rng.uniform(2);
    if (rng.bernoulli(0.4) && !wop[w]) {
      wop[w] = cluster.start_write(w, workload::make_value(seed, counter++, 24));
    }
    const size_t r = rng.uniform(3);
    if (rng.bernoulli(0.5) && !rop[r]) rop[r] = cluster.start_read(r);
    cluster.sim().run_until_time(cluster.sim().now() + rng.uniform(3000));
  }
  for (auto& s : wop) {
    if (s) cluster.await(*s);
  }
  for (auto& s : rop) {
    if (s) cluster.await(*s);
  }

  CheckOptions copts;
  copts.strict_validity = true;
  const auto atom = check_atomicity(cluster.recorder().ops(), copts);
  EXPECT_TRUE(atom.ok) << "seed=" << seed << ": " << atom.violation << "\n"
                       << cluster.recorder().dump();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WriteBackRandomTest,
                         ::testing::Range<uint64_t>(1, 16));

}  // namespace
}  // namespace bftreg::harness
