#include "registers/batch_reader.h"

#include <cassert>
#include <memory>

namespace bftreg::registers {

BatchReader::BatchReader(ProcessId self, SystemConfig config,
                         net::Transport* transport)
    : mux_(self, std::move(config), transport) {}

void BatchReader::start_read(std::vector<uint32_t> objects, Callback callback) {
  assert(!busy() && "at most one operation per client");
  assert(!objects.empty());
  // Servers cap batches at 4096 (see RegisterServer); a larger request
  // would have every honest response rejected as partial.
  assert(objects.size() <= 4096 && "batch exceeds the server-side cap");
  mux_.start(std::make_unique<BatchReadOp>(mux_.config(), &states_,
                                           std::move(objects),
                                           std::move(callback)),
             OpKind::kBatchRead, /*object=*/0);
}

}  // namespace bftreg::registers
