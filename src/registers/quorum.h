// Client-side response bookkeeping shared by all protocol clients.
#pragma once

#include <cstddef>
#include <unordered_set>

#include "common/types.h"

namespace bftreg::registers {

/// Tracks which servers have responded in the current phase, deduplicating
/// Byzantine double-replies: only the first response per server counts
/// toward the quorum.
class QuorumTracker {
 public:
  explicit QuorumTracker(size_t target) : target_(target) {}

  /// Returns true if this server had not responded yet this phase.
  bool add(const ProcessId& server) { return seen_.insert(server).second; }

  bool contains(const ProcessId& server) const { return seen_.count(server) > 0; }
  bool reached() const { return seen_.size() >= target_; }
  size_t count() const { return seen_.size(); }
  size_t target() const { return target_; }

  void reset() { seen_.clear(); }

 private:
  size_t target_;
  std::unordered_set<ProcessId> seen_;
};

}  // namespace bftreg::registers
