#include "sim/simulator.h"

#include <cassert>
#include <utility>

#include "common/log.h"

namespace bftreg::sim {

Simulator::Simulator(SimConfig config)
    : rng_(config.seed),
      auth_(crypto::KeyRegistry(config.master_secret)),
      scripted_(std::make_unique<net::ScriptedDelay>(
          config.delay ? std::move(config.delay)
                       : std::make_unique<net::FixedDelay>(1000))) {}

void Simulator::add_process(const ProcessId& pid, net::IProcess* process) {
  assert(process != nullptr);
  processes_[pid] = process;
}

void Simulator::mark_crashed(const ProcessId& pid) { crashed_.insert(pid); }

bool Simulator::is_crashed(const ProcessId& pid) const {
  return crashed_.count(pid) > 0;
}

void Simulator::start_all() {
  for (auto& [pid, proc] : processes_) {
    net::IProcess* p = proc;
    ProcessId id = pid;
    schedule_at(now_, [this, p, id] {
      if (!is_crashed(id)) p->on_start();
    });
  }
}

void Simulator::send_payload(const ProcessId& from, const ProcessId& to,
                             Payload payload) {
  if (is_crashed(from)) return;  // a crashed process places no messages
  net::Envelope env;
  env.from = from;
  env.to = to;
  env.seq = next_seq_++;
  env.sent_at = now_;
  env.mac = auth_.seal(from, to, payload);
  env.payload = std::move(payload);
  metrics_.on_send(env.payload.size());
  const TimeNs d = scripted_->delay(env, rng_);
  schedule_at(now_ + d, [this, e = std::move(env)]() mutable { deliver(std::move(e)); });
}

void Simulator::inject_raw(net::Envelope env) {
  env.seq = next_seq_++;
  env.sent_at = now_;
  metrics_.on_send(env.payload.size());
  const TimeNs d = scripted_->delay(env, rng_);
  schedule_at(now_ + d, [this, e = std::move(env)]() mutable { deliver(std::move(e)); });
}

void Simulator::deliver(net::Envelope env) {
  if (is_crashed(env.to)) return;
  auto it = processes_.find(env.to);
  if (it == processes_.end()) return;
  if (!auth_.verify(env.from, env.to, env.payload, env.mac)) {
    metrics_.on_auth_failure();
    LOG_WARN << "dropping forged envelope claiming from=" << to_string(env.from)
             << " to=" << to_string(env.to);
    return;
  }
  metrics_.on_deliver();
  it->second->on_message(env);
}

void Simulator::post(const ProcessId& pid, std::function<void()> fn) {
  schedule_at(now_, [this, pid, f = std::move(fn)] {
    if (!is_crashed(pid)) f();
  });
}

void Simulator::post_after(const ProcessId& pid, TimeNs delta,
                           std::function<void()> fn) {
  schedule_at(now_ + delta, [this, pid, f = std::move(fn)] {
    if (!is_crashed(pid)) f();
  });
}

void Simulator::schedule_at(TimeNs at, std::function<void()> fn) {
  assert(at >= now_);
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Simulator::schedule_after(TimeNs delta, std::function<void()> fn) {
  schedule_at(now_ + delta, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ++events_executed_;
  ev.fn();
  return true;
}

void Simulator::run_until_idle() {
  while (step()) {
  }
}

bool Simulator::run_until(const std::function<bool()>& pred) {
  while (!pred()) {
    if (!step()) return pred();
  }
  return true;
}

void Simulator::run_until_time(TimeNs deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
  }
  now_ = std::max(now_, deadline);
}

}  // namespace bftreg::sim
