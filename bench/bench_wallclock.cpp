// Wall-clock protocol comparison on REAL THREADS (harness::ThreadCluster).
//
// Everything else in bench/ measures deterministic virtual time; this
// binary re-measures the headline round-count claims with actual OS
// threads, mailboxes and a 50-150 us emulated one-way delay -- the
// environment an adopter would deploy in. Absolute numbers include real
// thread-wakeup overhead (hundreds of us per hop on a small shared box),
// so the check is on RATIOS: reads:writes = 1:2 for one-shot protocols,
// two-round reads 2x one-shot reads, RB writes 1.5x everyone else's --
// the same structure the virtual-time benches (E1/E2) report.
#include <atomic>
#include <thread>

#include "bench_util.h"
#include "harness/thread_cluster.h"

using namespace bftreg;
using namespace bftreg::bench;

namespace {

struct WallResult {
  double read_med_us;
  double write_med_us;
  double concurrent_ops_per_s;
};

WallResult run(harness::Protocol protocol, size_t f) {
  harness::ThreadClusterOptions o;
  o.protocol = protocol;
  o.config.n = harness::min_servers(protocol, f);
  o.config.f = f;
  o.num_writers = 2;
  o.num_readers = 2;
  o.seed = 7;
  o.delay_lo = 50'000;   // 50 us
  o.delay_hi = 150'000;  // 150 us
  harness::ThreadCluster cluster(o);
  cluster.set_byzantine(o.config.n - 1, adversary::StrategyKind::kFabricate);

  Samples reads, writes;
  for (int i = 0; i < 60; ++i) {
    const auto w = cluster.write(0, workload::make_value(1, i, 64));
    writes.add(static_cast<double>(w.completed_at - w.invoked_at) / 1000.0);
    const auto r = cluster.read(0);
    reads.add(static_cast<double>(r.completed_at - r.invoked_at) / 1000.0);
  }

  // Concurrent clients: 2 writer threads + 2 reader threads, 40 ops each.
  std::atomic<int> ops{0};
  const auto t0 = std::chrono::steady_clock::now();
  auto writer_loop = [&](size_t w) {
    for (int i = 0; i < 40; ++i) {
      cluster.write(w, workload::make_value(2, i, 64));
      ops.fetch_add(1);
    }
  };
  auto reader_loop = [&](size_t r) {
    for (int i = 0; i < 40; ++i) {
      cluster.read(r);
      ops.fetch_add(1);
    }
  };
  std::thread t1(writer_loop, 0), t2(writer_loop, 1);
  std::thread t3(reader_loop, 0), t4(reader_loop, 1);
  t1.join();
  t2.join();
  t3.join();
  t4.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  WallResult out;
  out.read_med_us = reads.median();
  out.write_med_us = writes.median();
  out.concurrent_ops_per_s = static_cast<double>(ops.load()) / secs;
  return out;
}

}  // namespace

int main() {
  std::printf("wall-clock protocol comparison (real threads, 50-150 us one-way,\n");
  std::printf("one fabricating Byzantine server in every cluster)\n\n");
  TextTable table({"protocol", "n", "read med (us)", "write med (us)",
                   "4-client ops/s"});
  const size_t f = 1;
  for (auto protocol :
       {harness::Protocol::kBsr, harness::Protocol::kBsrHistory,
        harness::Protocol::kBsr2R, harness::Protocol::kBcsr,
        harness::Protocol::kRb, harness::Protocol::kBsrWb}) {
    const auto res = run(protocol, f);
    table.add_row({harness::to_string(protocol),
                   std::to_string(harness::min_servers(protocol, f)),
                   TextTable::fmt(res.read_med_us, 0),
                   TextTable::fmt(res.write_med_us, 0),
                   TextTable::fmt(res.concurrent_ops_per_s, 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape check (ratios; absolutes include real thread-wakeup overhead):\n"
      "one-shot reads ~ half their protocol's write latency; two-round and\n"
      "write-back reads ~ equal to it; the RB baseline's writes ~1.5x every\n"
      "other protocol's -- the same 1x/2x/1.5x structure as E1/E2, now on\n"
      "OS threads. Concurrent clients amortize mailbox wakeups, so 4-client\n"
      "throughput exceeds 1/latency.\n");
  return 0;
}
