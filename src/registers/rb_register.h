// Baseline: RB-based Byzantine-tolerant register, n >= 3f+1.
//
// The comparator the paper positions itself against (Kanjani et al. [15]
// style): writes are disseminated with Bracha reliable broadcast among the
// servers, buying the eventual all-or-none property that lets the system
// run with only 3f+1 servers -- at the price of the RB latency tax
// (Section I-B: "reliable broadcast ... typically requires 1.5 rounds") and
// of reads that may have to wait for RB propagation instead of completing
// in one shot.
//
// Flow:
//   write: get-tag as in Fig. 1; then PUT-DATA to all servers. Each server
//     treats the writer's PUT-DATA as the Bracha SEND step and runs
//     ECHO/READY with its peers; it applies the pair and ACKs the writer
//     only upon RB-delivery. The writer completes on n-f ACKs.
//   read: QUERY-DATA to all servers; a server answers with its newest pair
//     and subscribes the reader, pushing DATA-UPDATE for pairs applied
//     while the read is in progress. The reader completes once >= n-f
//     servers responded and some pair has f+1 matching vouchers with tag at
//     least H, where H is the (f+1)-th largest per-server tag seen -- i.e.
//     it waits out RB propagation until a verifiably fresh pair emerges.
//
// Scope note: this baseline exists to measure the latency/bandwidth cost
// of relying on RB (benches E1-E3, E7). It is a faithful *latency* model of
// [15] (same phase structure, same RB substrate) and satisfies safety in
// all executions our adversary suite generates, but we do not claim the
// full regularity proof of [15], whose relay details its authors give in
// their paper.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>

#include "broadcast/bracha.h"
#include "net/transport.h"
#include "registers/bsr_reader.h"
#include "registers/bsr_writer.h"
#include "registers/config.h"
#include "registers/messages.h"
#include "registers/object_store.h"
#include "registers/quorum.h"

namespace bftreg::registers {

/// The baseline writer is protocol-identical to BSR's (Fig. 1); only the
/// server side differs (apply-on-RB-delivery).
using RbWriter = BsrWriter;

class RbServer final : public net::IProcess {
 public:
  RbServer(ProcessId self, SystemConfig config, net::Transport* transport,
           Bytes initial);

  void on_message(const net::Envelope& env) override;

  /// The list L for `object`, materialized into owned pairs (ascending by
  /// tag); {(t0, initial)} if this server has never heard of the object.
  std::vector<TaggedValue> store(uint32_t object = 0) const;
  /// Total payload bytes stored across every object, tracked against
  /// max_history GC -- the RB baseline pays the same storage-cost metric
  /// the BSR server reports.
  size_t stored_bytes() const { return stored_bytes_; }
  const broadcast::BrachaStats& bracha_stats() const { return bracha_->stats(); }

 private:
  void handle_put_data(const ProcessId& from, const RegisterMessage& msg);
  void handle_query(const ProcessId& from, const RegisterMessage& msg);
  void on_rb_deliver(const Bytes& blob);
  void reply(const ProcessId& to, const RegisterMessage& msg);

  const ProcessId self_;
  const SystemConfig config_;
  net::Transport* const transport_;

  Bytes initial_;
  std::unique_ptr<broadcast::BrachaPeer> bracha_;
  /// object -> L, same compact layout as RegisterServer's shards. RB-
  /// delivery applies every pair (kAll -- the Bracha agreement already
  /// filtered duplicates), and config_.max_history GC now applies here too
  /// (it previously did not, so the baseline's logs grew without bound).
  CompactObjectStore store_;
  /// Single delivery shard, so a plain counter suffices.
  size_t stored_bytes_{0};
  /// reader -> (read op_id, object being read)
  std::map<ProcessId, std::pair<uint64_t, uint32_t>> subscribers_;
};

class RbReader final : public net::IProcess {
 public:
  using Callback = std::function<void(const ReadResult&)>;

  RbReader(ProcessId self, SystemConfig config, net::Transport* transport,
           uint32_t object = 0);

  void start_read(Callback callback);
  void on_message(const net::Envelope& env) override;

  bool busy() const { return reading_; }
  const ProcessId& id() const { return self_; }

 private:
  void note_pair(const ProcessId& from, const TaggedValue& pair);
  void try_complete();
  void finish(const TaggedValue& chosen, bool fresh);

  const ProcessId self_;
  const SystemConfig config_;
  net::Transport* const transport_;
  const uint32_t object_;

  TaggedValue local_;

  bool reading_{false};
  bool saw_update_{false};
  uint64_t op_id_{0};
  QuorumTracker responded_;
  std::map<ProcessId, Tag> max_tag_;            // newest tag per server
  std::map<TaggedValue, std::set<ProcessId>> vouchers_;
  Callback callback_;
  TimeNs invoked_at_{0};
};

}  // namespace bftreg::registers
