// Pairwise-key message authentication.
//
// `KeyRegistry` plays the role of the PKI / signature scheme [19] assumed by
// the paper: every ordered pair of processes shares a symmetric key derived
// from a master secret that the adversary does not know. `Authenticator`
// seals payloads with a MAC binding (sender, receiver, payload); a Byzantine
// server can replay or garble its *own* messages but cannot forge a MAC for
// a message claiming to come from another process.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "crypto/siphash.h"

namespace bftreg::crypto {

using MacTag = uint64_t;

/// Derives the pairwise channel keys from a master secret. Stateless:
/// keys are recomputed on demand, so the registry is trivially copyable
/// and safe to share across threads.
class KeyRegistry {
 public:
  explicit KeyRegistry(uint64_t master_secret) : master_(master_secret) {}

  /// Key for the directed channel `from -> to`.
  SipHashKey channel_key(const ProcessId& from, const ProcessId& to) const;

 private:
  uint64_t master_;
};

class Authenticator {
 public:
  explicit Authenticator(KeyRegistry registry) : registry_(registry) {}

  /// Derives and caches the channel key for every ordered pair in `ids`.
  /// seal/verify on a cached pair then cost one SipHash pass over the
  /// payload instead of three (two derivation passes plus the MAC) -- on
  /// the transports' delivery hot path that is most of the per-message
  /// crypto. Uncached pairs still derive on demand, so this is purely an
  /// optimization. NOT thread-safe: call before the authenticator is
  /// shared across threads (the transports call it at start()).
  void precompute(const std::vector<ProcessId>& ids);

  /// Sparse variant for hub-and-spoke topologies: caches only the ordered
  /// pairs that touch a hub (hub->peer and peer->hub for every hub x peer
  /// combination). A 10k-client fleet talking to a handful of servers then
  /// costs O(hubs * peers) derivations instead of the O(peers^2) of full
  /// precompute(); pairs never cached still derive on demand. Same
  /// thread-safety caveat as precompute().
  void precompute_pairs(const std::vector<ProcessId>& hubs,
                        const std::vector<ProcessId>& peers);

  /// MAC over (from, to, payload) under the from->to channel key.
  MacTag seal(const ProcessId& from, const ProcessId& to, BytesView payload) const;

  /// True iff `mac` is a valid seal for (from, to, payload).
  bool verify(const ProcessId& from, const ProcessId& to, BytesView payload,
              MacTag mac) const;

 private:
  struct PairKey {
    ProcessId from;
    ProcessId to;
    friend bool operator==(const PairKey&, const PairKey&) = default;
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& p) const noexcept {
      const size_t h = std::hash<ProcessId>{}(p.from);
      return std::hash<ProcessId>{}(p.to) ^
             (h + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    }
  };

  SipHashKey key_for(const ProcessId& from, const ProcessId& to) const;

  KeyRegistry registry_;
  /// Immutable after precompute(); concurrent readers share it lock-free.
  std::unordered_map<PairKey, SipHashKey, PairKeyHash> cache_;
};

}  // namespace bftreg::crypto
