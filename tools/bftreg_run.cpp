// bftreg_run: command-line experiment runner.
//
// Assembles a cluster for any protocol, runs a workload against chosen
// Byzantine strategies, prints latency statistics, and passes the recorded
// execution through the safety/regularity/atomicity checkers. Everything
// is deterministic in --seed.
//
// Examples:
//   bftreg_run --protocol=bsr --n=9 --f=2 --byzantine=fabricate --ops=500
//   bftreg_run --protocol=bcsr --n=11 --f=2 --value-size=4096 --read-ratio=0.9
//   bftreg_run --protocol=bsr2r --scenario=theorem3
//   bftreg_run --protocol=bsr --n=4 --f=1 --scenario=theorem5 --trace
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <string>

#include "adversary/churn.h"
#include "checker/consistency.h"
#include "common/stats.h"
#include "harness/scenarios.h"
#include "harness/sim_cluster.h"
#include "workload/workload.h"

using namespace bftreg;

namespace {

struct Options {
  harness::Protocol protocol{harness::Protocol::kBsr};
  size_t n{0};  // 0 = min for protocol
  size_t f{1};
  size_t ops{200};
  double read_ratio{0.9};
  size_t value_size{64};
  uint64_t seed{1};
  std::string byzantine;  // strategy name, applied to f servers
  std::string scenario;   // "", "theorem3", "theorem5"
  bool trace{false};
};

void usage() {
  std::printf(
      "bftreg_run -- deterministic register-emulation experiments\n\n"
      "  --protocol=bsr|history|bsr2r|bcsr|rb|wb   protocol (default bsr)\n"
      "  --n=<int>            servers (default: protocol minimum for f)\n"
      "  --f=<int>            Byzantine budget (default 1)\n"
      "  --ops=<int>          operations to run (default 200)\n"
      "  --read-ratio=<0..1>  workload mix (default 0.9)\n"
      "  --value-size=<int>   bytes per written value (default 64)\n"
      "  --seed=<int>         RNG seed (default 1)\n"
      "  --byzantine=<kind>   silent|stale|fabricate|collude|double-reply|\n"
      "                       malformed|turncoat  (applied to f servers)\n"
      "  --scenario=<name>    theorem3 | theorem5 (proof schedules), or\n"
      "                       churn-crash-write | churn-crash-writeback |\n"
      "                       churn-rejoin (crash/rejoin drills; server 1 is\n"
      "                       bounced mid-operation, WAL-backed, and must\n"
      "                       catch up from a quorum before serving again)\n"
      "  --trace              dump the recorded execution\n");
}

std::optional<std::string> arg_value(const char* arg, const char* name) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return std::string(arg + len + 1);
  }
  return std::nullopt;
}

std::optional<Options> parse(int argc, char** argv) {
  static const std::map<std::string, harness::Protocol> kProtocols = {
      {"bsr", harness::Protocol::kBsr},
      {"history", harness::Protocol::kBsrHistory},
      {"bsr2r", harness::Protocol::kBsr2R},
      {"bcsr", harness::Protocol::kBcsr},
      {"rb", harness::Protocol::kRb},
      {"wb", harness::Protocol::kBsrWb},
  };
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (auto v = arg_value(a, "--protocol")) {
      auto it = kProtocols.find(*v);
      if (it == kProtocols.end()) {
        std::fprintf(stderr, "unknown protocol '%s'\n", v->c_str());
        return std::nullopt;
      }
      o.protocol = it->second;
    } else if (auto v = arg_value(a, "--n")) {
      o.n = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = arg_value(a, "--f")) {
      o.f = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = arg_value(a, "--ops")) {
      o.ops = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = arg_value(a, "--read-ratio")) {
      o.read_ratio = std::strtod(v->c_str(), nullptr);
    } else if (auto v = arg_value(a, "--value-size")) {
      o.value_size = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = arg_value(a, "--seed")) {
      o.seed = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = arg_value(a, "--byzantine")) {
      o.byzantine = *v;
    } else if (auto v = arg_value(a, "--scenario")) {
      o.scenario = *v;
    } else if (std::strcmp(a, "--trace") == 0) {
      o.trace = true;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n\n", a);
      return std::nullopt;
    }
  }
  if (o.n == 0) o.n = harness::min_servers(o.protocol, o.f);
  return o;
}

std::optional<adversary::StrategyKind> strategy_by_name(const std::string& name) {
  for (auto kind : adversary::kAllStrategyKinds) {
    if (name == adversary::to_string(kind)) return kind;
  }
  return std::nullopt;
}

/// Validates (n, f) against the requested protocol's resilience bound via
/// the SystemConfig builder, so a bad combination is a printed error, not
/// an assert deep inside a client constructor.
Result<registers::SystemConfig> build_config(const Options& o) {
  auto b = registers::SystemConfig::builder().n(o.n).f(o.f);
  switch (o.protocol) {
    case harness::Protocol::kBcsr:
      return b.build_for_bcsr();
    case harness::Protocol::kRb:
      return b.build_for_rb();
    default:
      return b.build_for_bsr();
  }
}

int run_scenario(const Options& o) {
  // Scenarios replay the paper's impossibility schedules, which *deliberately*
  // run below the resilience bound (e.g. theorem5 at n = 4f); only the
  // protocol-independent sanity checks apply here.
  auto config = registers::SystemConfig::builder().n(o.n).f(o.f).build();
  if (!config) {
    std::fprintf(stderr, "%s\n", config.error().detail.c_str());
    return 2;
  }

  harness::ClusterOptions co;
  co.protocol = o.protocol;
  co.config = config.value();
  co.seed = o.seed;
  co.num_readers = 1;

  checker::CheckOptions copts;
  copts.reads_report_tags = o.protocol != harness::Protocol::kBcsr;

  if (o.scenario == "theorem3") {
    co.num_writers = 5;
    harness::SimCluster cluster(co);
    const auto r = harness::run_theorem3_schedule(cluster);
    std::printf("theorem-3 schedule on %s (n=%zu, f=%zu): read returned \"%s\"\n",
                to_string(o.protocol), o.n, o.f,
                std::string(r.value.begin(), r.value.end()).c_str());
    const auto safe = checker::check_safety(cluster.recorder().ops(), copts);
    const auto reg = checker::check_regularity(cluster.recorder().ops(), copts);
    std::printf("  safety:     %s\n", safe.ok ? "OK" : safe.violation.c_str());
    std::printf("  regularity: %s\n", reg.ok ? "OK" : reg.violation.c_str());
    if (o.trace) std::printf("\n%s", cluster.recorder().dump().c_str());
    return 0;
  }
  if (o.scenario == "theorem5") {
    co.num_writers = 2;
    harness::SimCluster cluster(co);
    for (size_t i = 0; i < o.f; ++i) {
      cluster.set_byzantine(i, std::make_unique<harness::LaggingLiar>());
    }
    const Bytes got = harness::run_theorem5_schedule(cluster);
    std::printf("theorem-5 schedule on %s (n=%zu, f=%zu): read returned \"%s\"\n",
                to_string(o.protocol), o.n, o.f,
                std::string(got.begin(), got.end()).c_str());
    const auto safe = checker::check_safety(cluster.recorder().ops(), copts);
    std::printf("  safety: %s\n", safe.ok ? "OK" : safe.violation.c_str());
    if (o.trace) {
      std::printf("\n%s\n%s", cluster.recorder().dump().c_str(),
                  cluster.recorder().dump_timeline().c_str());
    }
    return 0;
  }
  if (o.scenario.rfind("churn-", 0) == 0) {
    adversary::ChurnSchedule schedule;
    if (o.scenario == "churn-crash-write") {
      schedule = adversary::crash_during_write_schedule(1);
    } else if (o.scenario == "churn-crash-writeback") {
      schedule = adversary::crash_during_read_writeback_schedule(1);
    } else if (o.scenario == "churn-rejoin") {
      schedule = adversary::rejoin_mid_round_schedule(1);
    } else {
      std::fprintf(stderr, "unknown churn scenario '%s'\n", o.scenario.c_str());
      return 2;
    }

    // Restarts need durable server state: stage WAL files in a temp dir.
    const auto wal_dir =
        std::filesystem::temp_directory_path() /
        ("bftreg_run_churn_" + std::to_string(::getpid()));
    std::filesystem::remove_all(wal_dir);
    std::filesystem::create_directories(wal_dir);
    co.wal_dir = wal_dir.string();

    int rc = 0;
    {
      harness::SimCluster cluster(co);
      const auto out = harness::run_churn_schedule(cluster, schedule);
      std::printf(
          "churn schedule '%s' on %s (n=%zu, f=%zu): %zu writes, %zu reads\n",
          schedule.name.c_str(), to_string(o.protocol), o.n, o.f,
          out.write_ids.size(), out.read_ids.size());
      std::printf("  effective seed:        0x%016llx\n",
                  static_cast<unsigned long long>(out.seed));
      std::printf("  recovered & serving:   %s\n",
                  out.recovered_serving ? "yes" : "NO");
      std::printf("  refused in catch-up:   %llu requests (dropped, never "
                  "answered)\n",
                  static_cast<unsigned long long>(out.refused_during_catch_up));
      const auto safe = checker::check_safety(cluster.recorder().ops(), copts);
      const auto reg = checker::check_regularity(cluster.recorder().ops(), copts);
      const auto atom = checker::check_atomicity(cluster.recorder().ops(), copts);
      std::printf("  safety:     %s\n", safe.ok ? "OK" : safe.violation.c_str());
      std::printf("  regularity: %s\n", reg.ok ? "OK" : reg.violation.c_str());
      std::printf("  atomicity:  %s\n", atom.ok ? "OK" : atom.violation.c_str());
      if (o.trace) {
        std::printf("\n%s\n%s", cluster.recorder().dump().c_str(),
                    cluster.recorder().dump_timeline().c_str());
      }
      rc = (safe.ok && reg.ok && out.recovered_serving) ? 0 : 1;
    }
    std::filesystem::remove_all(wal_dir);
    return rc;
  }
  std::fprintf(stderr, "unknown scenario '%s'\n", o.scenario.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = parse(argc, argv);
  if (!parsed) {
    usage();
    return 2;
  }
  const Options& o = *parsed;

  if (!o.scenario.empty()) return run_scenario(o);

  auto config = build_config(o);
  if (!config) {
    std::fprintf(stderr, "%s\n", config.error().detail.c_str());
    return 2;
  }

  harness::ClusterOptions co;
  co.protocol = o.protocol;
  co.config = config.value();
  co.seed = o.seed;
  co.num_writers = 2;
  co.num_readers = 2;
  harness::SimCluster cluster(co);

  if (!o.byzantine.empty()) {
    auto kind = strategy_by_name(o.byzantine);
    if (!kind) {
      std::fprintf(stderr, "unknown byzantine strategy '%s'\n", o.byzantine.c_str());
      return 2;
    }
    Rng rng(o.seed * 31);
    for (size_t i = 0; i < o.f; ++i) {
      const size_t index = rng.uniform(o.n);
      cluster.set_byzantine(index, *kind);
      std::printf("server %zu: Byzantine (%s)\n", index, o.byzantine.c_str());
    }
  }

  std::printf("%s  n=%zu f=%zu  ops=%zu  read-ratio=%.3f  value=%zuB  seed=%llu\n\n",
              to_string(o.protocol), o.n, o.f, o.ops, o.read_ratio, o.value_size,
              static_cast<unsigned long long>(o.seed));

  workload::WorkloadOptions wo;
  wo.read_ratio = o.read_ratio;
  wo.num_ops = o.ops;
  wo.value_size = o.value_size;
  wo.seed = o.seed;
  workload::WorkloadGenerator gen(wo);

  Samples reads, writes;
  size_t turn = 0;
  while (!gen.done()) {
    const auto op = gen.next();
    const size_t client = turn++ % 2;
    if (op.is_read) {
      const auto r = cluster.read(client);
      reads.add(static_cast<double>(r.completed_at - r.invoked_at));
    } else {
      const auto w = cluster.write(client, op.value);
      writes.add(static_cast<double>(w.completed_at - w.invoked_at));
    }
  }

  const auto m = cluster.sim().metrics().snapshot();
  std::printf("reads : %zu ops, median %.1f us, p99 %.1f us\n", reads.count(),
              reads.median() / 1000, reads.p99() / 1000);
  std::printf("writes: %zu ops, median %.1f us, p99 %.1f us\n", writes.count(),
              writes.median() / 1000, writes.p99() / 1000);
  std::printf("network: %llu messages, %llu bytes, %llu auth failures\n\n",
              static_cast<unsigned long long>(m.messages_sent),
              static_cast<unsigned long long>(m.bytes_sent),
              static_cast<unsigned long long>(m.auth_failures));

  checker::CheckOptions copts;
  copts.reads_report_tags = o.protocol != harness::Protocol::kBcsr;
  const auto safe = checker::check_safety(cluster.recorder().ops(), copts);
  const auto reg = checker::check_regularity(cluster.recorder().ops(), copts);
  const auto atom = checker::check_atomicity(cluster.recorder().ops(), copts);
  std::printf("safety:     %s\n", safe.ok ? "OK" : safe.violation.c_str());
  std::printf("regularity: %s\n", reg.ok ? "OK" : reg.violation.c_str());
  std::printf("atomicity:  %s\n", atom.ok ? "OK" : atom.violation.c_str());
  if (o.trace) {
    std::printf("\n%s\n%s", cluster.recorder().dump().c_str(),
                cluster.recorder().dump_timeline().c_str());
  }
  return safe.ok ? 0 : 1;
}
