// Experiment harness: assemble a full register emulation in the simulator.
//
// A SimCluster instantiates n servers (honest RegisterServer / RbServer, or
// Byzantine ByzantineServer at chosen positions), plus writer and reader
// clients for the selected protocol, wires everything to a seeded
// deterministic Simulator, and records every operation into an
// ExecutionRecorder so the checkers can pass judgment afterwards. It is
// used by the integration tests, the property tests, every bench binary,
// and the examples.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adversary/byzantine_server.h"
#include "checker/execution.h"
#include "registers/registers.h"
#include "sim/simulator.h"

namespace bftreg::storage {
class PersistentRegisterServer;
}

namespace bftreg::harness {

enum class Protocol {
  kBsr,         // Section III: replicated, one-shot reads, n >= 4f+1
  kBsrHistory,  // Section III-C option 1: regular, history reads
  kBsr2R,       // Section III-C option 2: regular, two-round reads
  kBcsr,        // Section IV: erasure-coded, one-shot reads, n >= 5f+1
  kRb,          // baseline: RB-based, n >= 3f+1
  kBsrWb,       // extension: write-back reads, atomic, two rounds
};

const char* to_string(Protocol p);

/// Minimum servers the protocol needs for f Byzantine faults.
size_t min_servers(Protocol p, size_t f);

struct ClusterOptions {
  Protocol protocol{Protocol::kBsr};
  registers::SystemConfig config{};
  size_t num_writers{1};
  size_t num_readers{1};
  uint64_t seed{1};
  /// Base uniform message delay [lo, hi] in virtual ns.
  TimeNs delay_lo{500};
  TimeNs delay_hi{1500};
  /// When non-empty, honest servers are WAL-backed PersistentRegisterServer
  /// instances logging to `<wal_dir>/server-<i>.wal`, and restart_server()
  /// becomes available (crash -> replay -> quorum catch-up -> rejoin).
  std::string wal_dir{};
};

class SimCluster {
 public:
  explicit SimCluster(ClusterOptions options);
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  // --- setup (before start()) ----------------------------------------------

  /// Replaces server `index` with a Byzantine server of the given kind.
  void set_byzantine(size_t index, adversary::StrategyKind kind);
  void set_byzantine(size_t index, std::unique_ptr<adversary::Strategy> strategy);

  /// Registers processes with the simulator. Idempotent; called implicitly
  /// by the first operation.
  void start();

  // --- synchronous operations (run the simulator until completion) ---------

  registers::WriteResult write(size_t writer, Bytes value);
  registers::ReadResult read(size_t reader);

  // --- asynchronous operations (for concurrency / partial schedules) -------

  /// Starts the op and returns immediately; `sim().run_*` drives it.
  /// The returned id indexes the recorder and the completion queries below.
  uint64_t start_write(size_t writer, Bytes value);
  uint64_t start_read(size_t reader);

  bool op_done(uint64_t recorder_id) const;
  /// Runs the simulator until the given op completes; asserts it did.
  void await(uint64_t recorder_id);
  /// Result accessors (valid once done).
  const registers::WriteResult& write_result(uint64_t recorder_id) const;
  const registers::ReadResult& read_result(uint64_t recorder_id) const;

  // --- faults ---------------------------------------------------------------

  void crash_server(size_t index);
  void crash_writer(size_t index);

  // --- dynamic membership (requires options.wal_dir) -----------------------

  /// Crash-and-rejoin: retires the server object at `index` (its WAL file
  /// survives), constructs a recovered PersistentRegisterServer that replays
  /// the WAL, registers it under the same pid, revives delivery, and posts
  /// begin_catch_up(). The server refuses register traffic until it has
  /// synced newest state from a quorum of peers; drive the simulator (or
  /// await ops) to let the catch-up rounds complete.
  void restart_server(size_t index);

  /// The WAL-backed server at `index`; nullptr when wal_dir is unset or the
  /// slot is Byzantine.
  storage::PersistentRegisterServer* persistent_server(size_t index);

  /// Has the lowest-indexed live honest server broadcast
  /// VIEW-ANNOUNCE(epoch, members) to all servers and clients (an empty
  /// member list means the full static set).
  void announce_view(uint64_t epoch, const std::vector<uint32_t>& members);

  // --- access ---------------------------------------------------------------

  sim::Simulator& sim() { return *sim_; }
  checker::ExecutionRecorder& recorder() { return recorder_; }
  const ClusterOptions& options() const { return options_; }

  /// The honest server at `index`, or nullptr if Byzantine / RB-protocol.
  registers::RegisterServer* server(size_t index);
  /// Total bytes stored across honest servers (storage-cost metric, E4).
  size_t total_stored_bytes() const;

  ProcessId writer_id(size_t index) const { return ProcessId::writer(static_cast<uint32_t>(index)); }
  ProcessId reader_id(size_t index) const { return ProcessId::reader(static_cast<uint32_t>(index)); }

 private:
  struct WriterSlot;
  struct ReaderSlot;

  Bytes initial_for_server(size_t index) const;
  std::string wal_path(size_t index) const;
  void build();

  ClusterOptions options_;
  std::unique_ptr<sim::Simulator> sim_;
  checker::ExecutionRecorder recorder_;

  std::vector<std::unique_ptr<net::IProcess>> servers_;
  std::vector<registers::RegisterServer*> honest_servers_;  // parallel, may hold nullptr
  /// Parallel typed view of servers_ when wal_dir is set (else nullptr).
  std::vector<storage::PersistentRegisterServer*> persistent_servers_;
  /// Replaced server objects, kept alive until teardown: simulator events
  /// queued before a restart may still reference them.
  std::vector<std::unique_ptr<net::IProcess>> retired_;
  std::vector<std::unique_ptr<WriterSlot>> writers_;
  std::vector<std::unique_ptr<ReaderSlot>> readers_;

  std::vector<Bytes> initial_elements_;  // BCSR: Phi_i(v0)

  struct PendingWrite {
    bool done{false};
    registers::WriteResult result;
  };
  struct PendingRead {
    bool done{false};
    registers::ReadResult result;
  };
  std::unordered_map<uint64_t, PendingWrite> pending_writes_;
  std::unordered_map<uint64_t, PendingRead> pending_reads_;

  bool started_{false};
};

}  // namespace bftreg::harness
