#include "registers/bsr_writer.h"

#include <cassert>
#include <memory>
#include <utility>

namespace bftreg::registers {

BsrWriter::BsrWriter(ProcessId self, SystemConfig config,
                     net::Transport* transport, uint32_t object)
    : mux_(self, std::move(config), transport),
      object_(object),
      state_(LocalState::initial(mux_.config())) {}

BsrWriter::BsrWriter(ProcessId self, SystemConfig config,
                     net::Transport* transport, uint32_t object,
                     codec::MdsCode code)
    : mux_(self, std::move(config), transport),
      object_(object),
      code_(std::move(code)),
      state_(LocalState::initial(mux_.config())) {}

void BsrWriter::start_write(Bytes value, Callback callback) {
  assert(!busy() && "at most one operation per client");
  mux_.start(std::make_unique<WriteOp>(
                 mux_.config(), code_ ? &*code_ : nullptr, &state_,
                 std::move(value),
                 [this, cb = std::move(callback)](const WriteResult& result) {
                   ++writes_completed_;
                   if (cb) cb(result);
                 }),
             OpKind::kWrite, object_);
}

}  // namespace bftreg::registers
