// Two-round regular read: second regularity fix of Section III-C.
//
// Phase get-tag: QUERY-TAG-HISTORY to all servers; wait for n-f
//   TAG-HISTORY-RESPs; the candidate tags are those present in at least
//   f+1 histories (so at least one honest server vouches the tag belongs
//   to a real write -- a fabricated Byzantine tag can collect at most f).
//   Choose the largest candidate t*.
// Phase get-data: QUERY-DATA-AT(t*) to all servers; complete when f+1
//   servers return the identical pair (t*, v); return v.
//
// Liveness note (documented deviation): servers answer QUERY-DATA-AT
// lazily -- if they have not yet received t*'s PUT-DATA they reply
// DATA-AT-MISSING and answer again once it arrives (reliable channels
// guarantee it will, since the writer multicasts PUT-DATA to all n
// servers). The single schedule this does not cover is a writer crashing
// *mid-multicast* after reaching f+1 servers but before the message to
// some honest server was placed in its channel; the paper's own Remark 1
// identifies exactly this all-or-none gap as the price of dropping
// reliable broadcast, and defers the full treatment to a technical
// report. bench_regularity exercises the non-crashing schedules.
//
// Low-level single-operation client; protocol logic in TwoRoundReadOp
// (protocol_ops.h), multiplexed flavor in RegisterClient (client.h).
#pragma once

#include <functional>

#include "net/transport.h"
#include "registers/config.h"
#include "registers/op_mux.h"
#include "registers/protocol_ops.h"
#include "registers/results.h"

namespace bftreg::registers {

class TwoRoundReader final : public net::IProcess {
 public:
  using Callback = std::function<void(const ReadResult&)>;

  TwoRoundReader(ProcessId self, SystemConfig config, net::Transport* transport,
                 uint32_t object = 0);

  void start_read(Callback callback);
  void on_message(const net::Envelope& env) override { mux_.on_message(env); }

  bool busy() const { return !mux_.idle(); }
  const ProcessId& id() const { return mux_.id(); }
  const Tag& local_tag() const { return state_.local.tag; }

 private:
  OpMux mux_;
  const uint32_t object_;
  LocalState state_;
};

}  // namespace bftreg::registers
