// Batched multi-object reads (library extension).
//
// A single one-shot round fetches the newest pair of MANY shared variables
// at once -- the multi-get pattern every key-value store serves. Each
// object gets the full Fig. 2 treatment independently: per-object witness
// counting with the f+1 threshold, per-object monotone local state. The
// batch costs one round and one request/response message per server no
// matter how many objects it names, so a b-object batch saves a factor of
// b in messages over b separate BSR reads (and keeps the paper's safety
// guarantee per object, since the witness argument of Lemma 1/Lemma 5 is
// object-wise).
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "net/transport.h"
#include "registers/bsr_reader.h"
#include "registers/config.h"
#include "registers/messages.h"
#include "registers/quorum.h"

namespace bftreg::registers {

struct BatchReadResult {
  /// Per-object results, aligned with the requested object list.
  std::vector<ReadResult> results;
  TimeNs invoked_at{0};
  TimeNs completed_at{0};
  int rounds{1};
};

class BatchReader final : public net::IProcess {
 public:
  using Callback = std::function<void(const BatchReadResult&)>;

  BatchReader(ProcessId self, SystemConfig config, net::Transport* transport);

  /// Begins a batched read of `objects` (deduplicated server-side state is
  /// per object; duplicates in the list are allowed and answered twice).
  void start_read(std::vector<uint32_t> objects, Callback callback);

  void on_message(const net::Envelope& env) override;

  bool busy() const { return reading_; }
  const ProcessId& id() const { return self_; }

 private:
  void finish();

  const ProcessId self_;
  const SystemConfig config_;
  net::Transport* const transport_;

  /// Persistent per-object local pairs (Fig. 2 line 1, object-wise).
  std::map<uint32_t, TaggedValue> locals_;

  bool reading_{false};
  uint64_t op_id_{0};
  std::vector<uint32_t> objects_;
  QuorumTracker responded_;
  /// server -> (per requested index) reported pair.
  std::map<ProcessId, std::vector<TaggedValue>> responses_;
  Callback callback_;
  TimeNs invoked_at_{0};
};

}  // namespace bftreg::registers
