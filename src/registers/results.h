// Unified operation results for all register clients.
//
// Every client operation -- read, write, batched read, across every
// protocol variant -- reports the same bookkeeping spine (`OpResult`):
// invocation/completion timestamps, round count, and the deadline/retry
// outcome maintained by the operation multiplexer (op_mux.h). Protocol
// flavors extend it with their payload fields only, so harnesses and
// benches consume one shape instead of three near-duplicates.
#pragma once

#include <vector>

#include "common/types.h"

namespace bftreg::registers {

/// Bookkeeping common to every operation, filled in by the multiplexer.
struct OpResult {
  TimeNs invoked_at{0};
  TimeNs completed_at{0};
  /// Client-to-server communication rounds this operation used.
  int rounds{1};
  /// True iff the operation exhausted its retry budget and completed with
  /// fallback state instead of a quorum-backed outcome.
  bool timed_out{false};
  /// Retransmissions performed (0 on the fast path).
  uint32_t retries{0};
};

struct ReadResult : OpResult {
  Bytes value;
  Tag tag;            // tag associated with the returned value
  bool fresh{false};  // true iff a witnessed pair beat the local pair
};

struct WriteResult : OpResult {
  Tag tag;  // the tag this write installed
  WriteResult() { rounds = 2; }  // get-tag + put-data
};

struct BatchReadResult : OpResult {
  /// Per-object results, aligned with the requested object list.
  std::vector<ReadResult> results;
};

}  // namespace bftreg::registers
