#include "tools/lint_rules.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <stdexcept>

namespace bftreg::lint {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool thread_allowed(const std::string& path) {
  return starts_with(path, "src/runtime/") || starts_with(path, "src/socknet/") ||
         starts_with(path, "src/harness/");
}

/// Strips // and /* */ comments (tracking block state across lines) so the
/// pattern rules see only code. Waiver detection runs on the raw line.
std::string strip_comments(const std::string& line, bool& in_block) {
  std::string out;
  out.reserve(line.size());
  for (size_t i = 0; i < line.size(); ++i) {
    if (in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block = false;
        ++i;
      }
      continue;
    }
    if (line[i] == '/' && i + 1 < line.size()) {
      if (line[i + 1] == '/') break;  // rest of line is a comment
      if (line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
    }
    out.push_back(line[i]);
  }
  return out;
}

bool waived(const std::vector<std::string>& raw_lines, size_t idx,
            const std::string& rule) {
  const std::string needle = "bftreg-lint: allow(" + rule + ")";
  if (raw_lines[idx].find(needle) != std::string::npos) return true;
  return idx > 0 && raw_lines[idx - 1].find(needle) != std::string::npos;
}

const std::regex kRawThread(R"(\bstd\s*::\s*thread\b)");
const std::regex kDetach(R"(\.\s*detach\s*\()");
const std::regex kRandCall(R"((^|[^0-9A-Za-z_])s?rand\s*\()");
const std::regex kRandomDevice(R"(\bstd\s*::\s*random_device\b)");
// `std::mutex name;` / `Mutex name;` / `mutable std::shared_mutex name{};`
const std::regex kMutexMember(
    R"(^\s*(?:mutable\s+)?(?:std\s*::\s*(?:shared_)?mutex|Mutex)\s+([A-Za-z_]\w*)\s*(?:\{\s*\})?\s*;)");
// Resilience arithmetic: `3|4|5 * f` in either operand order. Deliberately
// not `\d+`: schedule constructions legitimately slice index ranges like
// `2 * f`, while 3/4/5 are exactly the protocol bounds (3f+1 RB, 4f+1 BSR,
// 5f+1 BCSR) that must live in config.h.
const std::regex kResilienceLiteral(R"(\b[345]\s*\*\s*f\b|\bf\s*\*\s*[345]\b)");

}  // namespace

std::vector<Violation> lint_content(const std::string& rel_path,
                                    const std::string& content) {
  std::vector<Violation> out;

  std::vector<std::string> raw_lines;
  {
    std::istringstream in(content);
    std::string line;
    while (std::getline(in, line)) raw_lines.push_back(line);
  }

  std::vector<std::string> code_lines;
  code_lines.reserve(raw_lines.size());
  bool in_block = false;
  for (const auto& line : raw_lines) {
    code_lines.push_back(strip_comments(line, in_block));
  }

  auto flag = [&](size_t idx, const std::string& rule, const std::string& message) {
    if (waived(raw_lines, idx, rule)) return;
    out.push_back(Violation{rel_path, static_cast<int>(idx) + 1, rule, message});
  };

  for (size_t i = 0; i < code_lines.size(); ++i) {
    const std::string& code = code_lines[i];
    if (code.empty()) continue;

    if (!thread_allowed(rel_path) && std::regex_search(code, kRawThread)) {
      flag(i, "raw-thread",
           "std::thread outside src/runtime, src/socknet, src/harness; "
           "protocol code must stay single-threaded per process");
    }
    if (std::regex_search(code, kDetach)) {
      flag(i, "detach",
           "detached threads outlive their transport; join via stop() instead");
    }
    if (rel_path != "src/common/rng.h" &&
        (std::regex_search(code, kRandCall) ||
         std::regex_search(code, kRandomDevice))) {
      flag(i, "raw-random",
           "unseeded randomness breaks replayability; draw from bftreg::Rng "
           "(src/common/rng.h)");
    }
    std::smatch m;
    if (std::regex_search(code, m, kMutexMember)) {
      const std::string name = m[1].str();
      const std::string companion = "GUARDED_BY(" + name + ")";
      if (content.find(companion) == std::string::npos) {
        flag(i, "unguarded-mutex",
             "mutex member '" + name + "' has no " + companion +
                 " companion field; write down what the lock protects");
      }
    }
    if (rel_path != "src/registers/config.h" &&
        std::regex_search(code, kResilienceLiteral)) {
      flag(i, "resilience-literal",
           "resilience bound arithmetic belongs in src/registers/config.h "
           "(use bsr_min_servers/bcsr_min_servers/rb_min_servers/"
           "bcsr_code_dimension)");
    }
  }
  return out;
}

std::vector<Violation> lint_tree(const std::string& repo_root) {
  namespace fs = std::filesystem;
  const fs::path root(repo_root);
  const fs::path src = root / "src";
  if (!fs::is_directory(src)) {
    throw std::runtime_error("no src/ directory under " + repo_root);
  }

  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cpp") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> out;
  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot read " + path.string());
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string rel =
        fs::relative(path, root).generic_string();  // forward slashes
    auto found = lint_content(rel, buf.str());
    out.insert(out.end(), found.begin(), found.end());
  }
  return out;
}

std::string format(const Violation& v) {
  return v.file + ":" + std::to_string(v.line) + ": [" + v.rule + "] " + v.message;
}

}  // namespace bftreg::lint
