#!/usr/bin/env bash
# Formatting gate: clang-format --dry-run over the first-party sources.
#
# Usage: tools/check_format.sh [repo_root]
# Exit codes: 0 clean, 1 formatting violations, 77 clang-format unavailable
# (ctest maps 77 to SKIPPED via SKIP_RETURN_CODE so offline environments
# without the tool do not fail the suite).
set -u

root="${1:-.}"
cd "$root" || exit 2

fmt="${CLANG_FORMAT:-clang-format}"
if ! command -v "$fmt" >/dev/null 2>&1; then
  echo "check_format: $fmt not found; skipping" >&2
  exit 77
fi

files=$(find src tests bench tools examples \
  \( -name '*.h' -o -name '*.cpp' \) -type f 2>/dev/null | sort)
if [ -z "$files" ]; then
  echo "check_format: no sources found under $root" >&2
  exit 2
fi

# shellcheck disable=SC2086
if "$fmt" --dry-run -Werror $files; then
  echo "check_format: clean"
  exit 0
else
  echo "check_format: run '$fmt -i' on the files above" >&2
  exit 1
fi
