#include "codec/gf_linalg.h"

#include <cassert>

#include "codec/gf256.h"

namespace bftreg::codec {

std::vector<uint8_t> GfMatrix::apply(const std::vector<uint8_t>& v) const {
  assert(v.size() == cols_);
  std::vector<uint8_t> out(rows_, 0);
  for (size_t r = 0; r < rows_; ++r) {
    const uint8_t* rp = row(r);
    uint8_t acc = 0;
    for (size_t c = 0; c < cols_; ++c) {
      acc = gf::add(acc, gf::mul(rp[c], v[c]));
    }
    out[r] = acc;
  }
  return out;
}

std::optional<std::vector<uint8_t>> gf_solve(GfMatrix a, std::vector<uint8_t> b) {
  assert(a.rows() == b.size());
  const size_t rows = a.rows();
  const size_t cols = a.cols();

  std::vector<size_t> pivot_col_of_row(rows, SIZE_MAX);
  size_t rank = 0;
  for (size_t col = 0; col < cols && rank < rows; ++col) {
    // Find a pivot in this column at or below `rank`.
    size_t pivot = SIZE_MAX;
    for (size_t r = rank; r < rows; ++r) {
      if (a.at(r, col) != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot == SIZE_MAX) continue;
    if (pivot != rank) {
      for (size_t c = 0; c < cols; ++c) std::swap(a.at(pivot, c), a.at(rank, c));
      std::swap(b[pivot], b[rank]);
    }
    const uint8_t inv_p = gf::inv(a.at(rank, col));
    for (size_t c = col; c < cols; ++c) a.at(rank, c) = gf::mul(a.at(rank, c), inv_p);
    b[rank] = gf::mul(b[rank], inv_p);
    for (size_t r = 0; r < rows; ++r) {
      if (r == rank) continue;
      const uint8_t factor = a.at(r, col);
      if (factor == 0) continue;
      for (size_t c = col; c < cols; ++c) {
        a.at(r, c) = gf::sub(a.at(r, c), gf::mul(factor, a.at(rank, c)));
      }
      b[r] = gf::sub(b[r], gf::mul(factor, b[rank]));
    }
    pivot_col_of_row[rank] = col;
    ++rank;
  }

  // Inconsistent if any zero row has nonzero rhs.
  for (size_t r = rank; r < rows; ++r) {
    if (b[r] != 0) return std::nullopt;
  }

  std::vector<uint8_t> x(cols, 0);  // free variables zero
  for (size_t r = 0; r < rank; ++r) {
    x[pivot_col_of_row[r]] = b[r];
  }
  return x;
}

std::optional<GfMatrix> gf_invert(const GfMatrix& a) {
  assert(a.rows() == a.cols());
  const size_t n = a.rows();
  GfMatrix work = a;
  GfMatrix inv(n, n);
  for (size_t i = 0; i < n; ++i) inv.at(i, i) = 1;

  for (size_t col = 0; col < n; ++col) {
    size_t pivot = SIZE_MAX;
    for (size_t r = col; r < n; ++r) {
      if (work.at(r, col) != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot == SIZE_MAX) return std::nullopt;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) {
        std::swap(work.at(pivot, c), work.at(col, c));
        std::swap(inv.at(pivot, c), inv.at(col, c));
      }
    }
    const uint8_t inv_p = gf::inv(work.at(col, col));
    for (size_t c = 0; c < n; ++c) {
      work.at(col, c) = gf::mul(work.at(col, c), inv_p);
      inv.at(col, c) = gf::mul(inv.at(col, c), inv_p);
    }
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const uint8_t factor = work.at(r, col);
      if (factor == 0) continue;
      for (size_t c = 0; c < n; ++c) {
        work.at(r, c) = gf::sub(work.at(r, c), gf::mul(factor, work.at(col, c)));
        inv.at(r, c) = gf::sub(inv.at(r, c), gf::mul(factor, inv.at(col, c)));
      }
    }
  }
  return inv;
}

GfMatrix vandermonde(const std::vector<uint8_t>& xs, size_t cols) {
  GfMatrix m(xs.size(), cols);
  for (size_t r = 0; r < xs.size(); ++r) {
    uint8_t p = 1;
    for (size_t c = 0; c < cols; ++c) {
      m.at(r, c) = p;
      p = gf::mul(p, xs[r]);
    }
  }
  return m;
}

}  // namespace bftreg::codec
