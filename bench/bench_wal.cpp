// Ablation -- the cost of durability (library extension, storage/).
//
// google-benchmark microbenchmarks: WAL append throughput by record size,
// replay speed, compaction, and the end-to-end overhead a persistent
// server adds to a PUT application versus the in-memory server. Expected
// shape: appends are sequential-write cheap; replay is linear; the
// persistent server costs one buffered write + flush per applied PUT.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "registers/registers.h"
#include "sim/simulator.h"
#include "storage/persistent_server.h"
#include "workload/workload.h"

using namespace bftreg;

namespace {

std::string temp_path(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          ("bftreg_bench_" + stem + "_" + std::to_string(::getpid())))
      .string();
}

storage::WalRecord make_record(uint64_t num, size_t value_size) {
  return storage::WalRecord{0, Tag{num, ProcessId::writer(0)},
                            workload::make_value(1, num, value_size)};
}

void bm_wal_append(benchmark::State& state) {
  const size_t value_size = static_cast<size_t>(state.range(0));
  const std::string path = temp_path("append");
  std::remove(path.c_str());
  storage::WriteAheadLog wal(path);
  uint64_t num = 1;
  for (auto _ : state) {
    wal.append(make_record(num++, value_size));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * value_size));
  std::remove(path.c_str());
}

void bm_wal_replay(benchmark::State& state) {
  const size_t records = static_cast<size_t>(state.range(0));
  const std::string path = temp_path("replay");
  std::remove(path.c_str());
  {
    storage::WriteAheadLog wal(path);
    for (uint64_t i = 1; i <= records; ++i) wal.append(make_record(i, 128));
  }
  for (auto _ : state) {
    auto result = storage::WriteAheadLog::replay(path);
    benchmark::DoNotOptimize(result);
    if (result.records.size() != records) state.SkipWithError("bad replay");
  }
  state.counters["records"] = static_cast<double>(records);
  std::remove(path.c_str());
}

/// Put application cost: persistent vs in-memory server.
template <bool kDurable>
void bm_server_put(benchmark::State& state) {
  const size_t value_size = static_cast<size_t>(state.range(0));
  sim::Simulator sim(sim::SimConfig::with_fixed_delay(1, 10));
  registers::SystemConfig cfg;
  cfg.n = 5;
  cfg.f = 1;
  cfg.max_history = 4;  // bound memory across millions of iterations

  const std::string path = temp_path("srv");
  std::remove(path.c_str());
  std::unique_ptr<registers::RegisterServer> server;
  if constexpr (kDurable) {
    server = std::make_unique<storage::PersistentRegisterServer>(
        ProcessId::server(0), cfg, &sim, Bytes{}, path);
  } else {
    server = std::make_unique<registers::RegisterServer>(ProcessId::server(0), cfg,
                                                         &sim, Bytes{});
  }

  uint64_t num = 1;
  const Bytes value = workload::make_value(1, 0, value_size);
  for (auto _ : state) {
    registers::RegisterMessage m;
    m.type = registers::MsgType::kPutData;
    m.tag = Tag{num++, ProcessId::writer(0)};
    m.value = value;
    net::Envelope env;
    env.from = ProcessId::writer(0);
    env.to = ProcessId::server(0);
    env.payload = m.encode();
    server->on_message(env);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * value_size));
  server.reset();
  std::remove(path.c_str());
}

void bm_server_put_memory(benchmark::State& state) { bm_server_put<false>(state); }
void bm_server_put_durable(benchmark::State& state) { bm_server_put<true>(state); }

BENCHMARK(bm_wal_append)->Arg(64)->Arg(1024)->Arg(16384)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_wal_replay)->Arg(100)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_server_put_memory)->Arg(64)->Arg(1024)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_server_put_durable)->Arg(64)->Arg(1024)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
