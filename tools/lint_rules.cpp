#include "tools/lint_rules.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace bftreg::lint {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool thread_allowed(const std::string& path) {
  return starts_with(path, "src/runtime/") || starts_with(path, "src/socknet/") ||
         starts_with(path, "src/harness/");
}

/// Strips // and /* */ comments (tracking block state across lines) so the
/// pattern rules see only code. Waiver detection runs on the raw line.
std::string strip_comments(const std::string& line, bool& in_block) {
  std::string out;
  out.reserve(line.size());
  for (size_t i = 0; i < line.size(); ++i) {
    if (in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block = false;
        ++i;
      }
      continue;
    }
    if (line[i] == '/' && i + 1 < line.size()) {
      if (line[i + 1] == '/') break;  // rest of line is a comment
      if (line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
    }
    out.push_back(line[i]);
  }
  return out;
}

bool waived(const std::vector<std::string>& raw_lines, size_t idx,
            const std::string& rule) {
  if (idx >= raw_lines.size()) return false;
  const std::string needle = "bftreg-lint: allow(" + rule + ")";
  if (raw_lines[idx].find(needle) != std::string::npos) return true;
  return idx > 0 && raw_lines[idx - 1].find(needle) != std::string::npos;
}

const std::regex kRawThread(R"(\bstd\s*::\s*thread\b)");
const std::regex kDetach(R"(\.\s*detach\s*\()");
const std::regex kRandCall(R"((^|[^0-9A-Za-z_])s?rand\s*\()");
const std::regex kRandomDevice(R"(\bstd\s*::\s*random_device\b)");
// `std::mutex name;` / `Mutex name;` / `mutable std::shared_mutex name{};`
const std::regex kMutexMember(
    R"(^\s*(?:mutable\s+)?(?:std\s*::\s*(?:shared_)?mutex|Mutex)\s+([A-Za-z_]\w*)\s*(?:\{\s*\})?\s*;)");
// Resilience arithmetic: `3|4|5 * f` in either operand order. Deliberately
// not `\d+`: schedule constructions legitimately slice index ranges like
// `2 * f`, while 3/4/5 are exactly the protocol bounds (3f+1 RB, 4f+1 BSR,
// 5f+1 BCSR) that must live in config.h.
const std::regex kResilienceLiteral(R"(\b[345]\s*\*\s*f\b|\bf\s*\*\s*[345]\b)");
// Quorum-sized expressions spelled inline: `n - f` (the BSR quorum,
// Lemma 6) or the majority form `(n + f) / 2`. Like the k*f bounds, these
// must come from SystemConfig's accessors (quorum(), catch_up_quorum(),
// witness_threshold()) so a resilience change edits exactly one file.
const std::regex kQuorumArithmetic(
    R"(\bn\s*-\s*f\b|\(\s*n\s*\+\s*f\s*\)\s*/\s*2)");
// `Mutex name ACQUIRED_BEFORE(a, b);` / `std::mutex name ACQUIRED_AFTER(a);`
const std::regex kOrderedMutex(
    R"((?:std\s*::\s*(?:shared_)?mutex|Mutex)\s+([A-Za-z_]\w*)\s+ACQUIRED_(BEFORE|AFTER)\s*\(([^)]*)\))");
// `x.busy()` / `p->busy()` -- the single-operation guard of the low-level
// protocol clients.
const std::regex kBusyCall(R"((\.|->)\s*busy\s*\(\s*\))");
// A Tag-keyed std::map in the register layer is almost always a per-object
// value log -- the unbounded-node-count layout the compact store
// (object_store.h) replaced. Tag-keyed maps bounded by the response set of
// one operation are fine; waive those.
const std::regex kUnboundedStore(R"(\bstd\s*::\s*map\s*<\s*Tag\s*,)");
// Atomic member-function calls whose default memory order is seq_cst. The
// paren is part of the match so the argument scan knows where to start.
const std::regex kAtomicOp(
    R"((\.|->)\s*(load|store|exchange|fetch_add|fetch_sub|fetch_or|fetch_and|compare_exchange_weak|compare_exchange_strong)\s*\()");

/// Files the atomic-in-ring rule covers: the lock-free delivery path, where
/// every atomic access is part of a documented protocol and an implicit
/// seq_cst hides the synchronization argument (and costs a full fence on
/// weakly-ordered targets).
bool atomic_order_scoped(const std::string& rel_path) {
  return rel_path.rfind("src/runtime/", 0) == 0 ||
         rel_path == "src/common/mpsc_ring.h" ||
         rel_path == "src/common/seqlock.h";
}

/// Argument text of a call whose opening paren sits at (line `idx`, column
/// `open`) of the comment-stripped lines; bounded look-ahead covers calls
/// broken across lines by clang-format.
std::string call_args(const std::vector<std::string>& code_lines, size_t idx,
                      size_t open) {
  std::string args;
  int depth = 0;
  for (size_t l = idx; l < code_lines.size() && l < idx + 6; ++l) {
    const std::string& line = code_lines[l];
    for (size_t c = (l == idx ? open : 0); c < line.size(); ++c) {
      const char ch = line[c];
      if (ch == '(') {
        if (++depth == 1) continue;
      } else if (ch == ')') {
        if (--depth == 0) return args;
      }
      args += ch;
    }
    args += ' ';
  }
  return args;  // unbalanced within the budget; scan what we collected
}

/// Reduces a lock expression to the bare member name the order edges use:
/// `box->mu` -> `mu`, `this->sched_mu_` -> `sched_mu_`, `*ep->mu` -> `mu`.
std::string lock_target(std::string expr) {
  while (!expr.empty() && (expr.front() == '*' || expr.front() == '&' ||
                           expr.front() == ' ' || expr.front() == '\n')) {
    expr.erase(expr.begin());
  }
  while (!expr.empty() && (expr.back() == ' ' || expr.back() == '\n')) {
    expr.pop_back();
  }
  size_t cut = std::string::npos;
  for (const char* sep : {"->", ".", "::"}) {
    const size_t at = expr.rfind(sep);
    if (at != std::string::npos) {
      const size_t after = at + std::strlen(sep);
      if (cut == std::string::npos || after > cut) cut = after;
    }
  }
  if (cut != std::string::npos) expr = expr.substr(cut);
  return expr;
}

// ---------------------------------------------------------------------------
// Text preparation for the structural scan.
// ---------------------------------------------------------------------------

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)); }

/// Blanks the contents of string and character literals so braces, parens,
/// and identifiers inside them cannot confuse the structural scan. A `'`
/// directly after an identifier character is a digit separator (1'000), not
/// a character literal.
std::string scrub_literals(const std::string& line) {
  std::string out = line;
  bool in_str = false, in_chr = false, esc = false;
  char prev = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    if (in_str || in_chr) {
      if (esc) {
        esc = false;
        out[i] = ' ';
        continue;
      }
      if (c == '\\') {
        esc = true;
        out[i] = ' ';
        continue;
      }
      if ((in_str && c == '"') || (in_chr && c == '\'')) {
        in_str = in_chr = false;
        prev = c;
        continue;
      }
      out[i] = ' ';
      continue;
    }
    if (c == '"') {
      in_str = true;
    } else if (c == '\'' && !is_ident(prev)) {
      in_chr = true;
    }
    prev = c;
  }
  return out;
}

struct Prepared {
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;  // comment-stripped (line rules)
  std::string text;                     // scrubbed joined text (scan)
  std::vector<int> line_of;             // 1-based line per text position
};

Prepared prepare(const std::string& content) {
  Prepared p;
  {
    std::istringstream in(content);
    std::string line;
    while (std::getline(in, line)) p.raw_lines.push_back(line);
  }
  bool in_block = false;
  p.code_lines.reserve(p.raw_lines.size());
  for (const auto& line : p.raw_lines) {
    p.code_lines.push_back(strip_comments(line, in_block));
  }
  for (size_t i = 0; i < p.code_lines.size(); ++i) {
    std::string scan = scrub_literals(p.code_lines[i]);
    // Preprocessor directives are not code for the structural scan (macro
    // bodies have unbalanced braces; #include paths look like identifiers).
    size_t first = scan.find_first_not_of(" \t");
    if (first != std::string::npos && scan[first] == '#') scan.clear();
    p.text += scan;
    p.text += '\n';
    p.line_of.insert(p.line_of.end(), scan.size() + 1, static_cast<int>(i) + 1);
  }
  return p;
}

// ---------------------------------------------------------------------------
// Program model.
// ---------------------------------------------------------------------------

struct SerdeOp {
  std::string name;   // put_u32, get_bytes_view, ...
  std::string token;  // canonical width class: u8/u16/u32/u64/bytes/tag/...
  int line{0};
  bool is_put{false};
};

struct CallSite {
  std::string callee;  // last path component of the name
  int line{0};
  std::vector<std::string> held;  // active lock names at the call
  bool discarded{false};          // statement-shaped call, value unused
};

struct FnModel {
  std::string name;  // last component ("send")
  std::string qual;  // qualifier ("TcpNetwork"), empty for free/inline
  std::string file;
  int line{0};
  bool returns_result{false};
  std::vector<CallSite> calls;
  std::vector<std::pair<std::string, int>> blocking;  // direct ::syscall etc
  std::vector<std::pair<std::string, int>> acquires;  // direct lock, line
  std::vector<SerdeOp> serde;
};

struct ObservedEdge {
  std::string before, after;
  std::string file;
  std::string via;  // callee name for interprocedural edges, empty if direct
  int line{0};
};

struct DeclEdge {
  std::string before, after;
  std::string file;
  int line{0};
};

struct FileScan {
  std::vector<Violation> vio;  // structural single-file rules
  std::vector<FnModel> fns;
  std::vector<ObservedEdge> edges;  // direct nested acquisitions
};

const std::set<std::string>& keyword_set() {
  static const std::set<std::string> kKeywords = {
      "if",       "for",       "while",    "switch",   "catch",
      "return",   "sizeof",    "new",      "delete",   "throw",
      "do",       "else",      "case",     "default",  "goto",
      "operator", "static_assert",         "alignof",  "alignas",
      "decltype", "typeid",    "co_await", "co_return", "co_yield",
      "int",      "char",      "bool",     "void",     "float",
      "double",   "long",      "short",    "unsigned", "signed",
      "auto",     "constexpr", "const",    "static",   "inline",
      "explicit", "virtual",   "typename", "template", "using",
      "namespace", "noexcept", "requires", "assert",   "defined"};
  return kKeywords;
}

const std::set<std::string>& syscall_set() {
  static const std::set<std::string> kSyscalls = {
      "sendmsg", "sendto",   "send",     "recvmsg",  "recvfrom", "recv",
      "readv",   "read",     "writev",   "write",    "connect",  "accept4",
      "accept",  "poll",     "select",   "fsync",    "fdatasync",
      "shutdown", "close",   "epoll_wait"};
  return kSyscalls;
}

/// write_all / read_exact are the project's framed-I/O helpers: blocking by
/// contract, flagged directly under a lock wherever they are called.
bool is_blocking_helper(const std::string& name) {
  return name == "write_all" || name == "read_exact";
}

/// Canonical wire-width token for a serde call, or "" if the name is not a
/// serde primitive. bool is one byte on the wire; bytes/bytes_view/string
/// are all one length-prefixed class.
std::string serde_token(const std::string& name, bool* is_put) {
  std::string suffix;
  if (starts_with(name, "put_")) {
    *is_put = true;
    suffix = name.substr(4);
  } else if (starts_with(name, "get_")) {
    *is_put = false;
    suffix = name.substr(4);
  } else {
    return "";
  }
  static const std::map<std::string, std::string> kTokens = {
      {"u8", "u8"},       {"u16", "u16"},         {"u32", "u32"},
      {"u64", "u64"},     {"bool", "u8"},         {"bytes", "bytes"},
      {"bytes_view", "bytes"}, {"string", "bytes"},
      {"process_id", "process_id"}, {"tag", "tag"}};
  const auto it = kTokens.find(suffix);
  return it == kTokens.end() ? std::string() : it->second;
}

bool all_caps_token(const std::string& w) {
  bool has_alpha = false;
  for (char c : w) {
    if (c >= 'a' && c <= 'z') return false;
    if (c >= 'A' && c <= 'Z') has_alpha = true;
  }
  return has_alpha;
}

size_t match_paren(const std::string& t, size_t open) {
  int depth = 0;
  for (size_t i = open; i < t.size(); ++i) {
    if (t[i] == '(') ++depth;
    if (t[i] == ')' && --depth == 0) return i;
  }
  return std::string::npos;
}

/// From the '(' at `open` (body-candidate already matched), classifies the
/// tokens after the parameter list. Returns the position of the function
/// body's '{', or npos if this is a declaration/call/initializer.
size_t find_body_brace(const std::string& t, size_t close) {
  size_t p = close + 1;
  auto body_or_init = [&](size_t stop_semi) -> size_t {
    // Inside a ctor-init list or trailing return type: the body '{' is the
    // first brace at paren depth 0 that does not directly follow an
    // identifier character (those are brace-inits like `a_{x}` / `Vec{1}`).
    int pd = 0;
    while (p < t.size()) {
      const char c = t[p];
      if (c == '(' || c == '[') ++pd;
      if (c == ')' || c == ']') --pd;
      if (pd == 0 && c == '{') {
        if (p > 0 && (is_ident(t[p - 1]) || t[p - 1] == '>')) {
          int bd = 0;
          while (p < t.size()) {  // skip the brace-init
            if (t[p] == '{') ++bd;
            if (t[p] == '}' && --bd == 0) break;
            ++p;
          }
        } else {
          return p;
        }
      }
      if (stop_semi && pd == 0 && c == ';') return std::string::npos;
      ++p;
    }
    return std::string::npos;
  };
  while (p < t.size()) {
    while (p < t.size() && is_space(t[p])) ++p;
    if (p >= t.size()) return std::string::npos;
    const char c = t[p];
    if (c == '{') return p;
    if (c == ':') {
      if (p + 1 < t.size() && t[p + 1] == ':') return std::string::npos;
      ++p;
      return body_or_init(/*stop_semi=*/1);
    }
    if (c == '-' && p + 1 < t.size() && t[p + 1] == '>') {
      p += 2;
      return body_or_init(/*stop_semi=*/1);
    }
    if (is_ident_start(c)) {
      size_t e = p;
      while (e < t.size() && is_ident(t[e])) ++e;
      const std::string w = t.substr(p, e - p);
      if (w == "const" || w == "noexcept" || w == "override" || w == "final" ||
          w == "mutable" || w == "throw" || w == "try" || all_caps_token(w)) {
        p = e;
        while (p < t.size() && is_space(t[p])) ++p;
        if (p < t.size() && t[p] == '(') {
          const size_t cp = match_paren(t, p);
          if (cp == std::string::npos) return std::string::npos;
          p = cp + 1;
        }
        continue;
      }
      return std::string::npos;
    }
    return std::string::npos;
  }
  return std::string::npos;
}

/// True when the call whose qualified name starts at `start` and whose
/// argument list opens at `open` is a whole discarded statement:
/// `receiver.chain()->build();` with nothing consuming the value.
bool discarded_statement(const std::string& t, size_t start, size_t open) {
  const size_t close = match_paren(t, open);
  if (close == std::string::npos) return false;
  size_t p = close + 1;
  while (p < t.size() && is_space(t[p])) ++p;
  if (p >= t.size() || t[p] != ';') return false;

  std::string prefix;
  size_t k = start;
  while (k > 0) {
    const char c = t[k - 1];
    if (is_ident(c) || c == '.' || c == ':' || c == '-' || c == '>' ||
        is_space(c)) {
      prefix.push_back(is_space(c) ? ' ' : c);
      --k;
      continue;
    }
    break;
  }
  const char stop = k == 0 ? '{' : t[k - 1];
  if (stop != ';' && stop != '{' && stop != '}') return false;
  // `return cfg.build();` consumes the value -- the word lands in prefix.
  std::reverse(prefix.begin(), prefix.end());
  static const std::set<std::string> kConsumers = {
      "return", "co_return", "co_await", "co_yield", "throw", "goto", "case"};
  size_t i = 0;
  while (i < prefix.size()) {
    if (!is_ident_start(prefix[i])) {
      ++i;
      continue;
    }
    size_t e = i;
    while (e < prefix.size() && is_ident(prefix[e])) ++e;
    if (kConsumers.count(prefix.substr(i, e - i))) return false;
    i = e;
  }
  return true;
}

/// The structural scan: one sequential pass over the scrubbed text that
/// tracks brace depth, MutexLock scopes (with guard.unlock()/guard.lock()
/// hand-off), and function bodies, emitting both the direct lock rules and
/// the per-function model the whole-program passes consume.
FileScan scan_file(const std::string& rel, const Prepared& p,
                   const LockOrder& order) {
  FileScan out;
  const std::string& t = p.text;

  auto line_at = [&](size_t pos) {
    if (p.line_of.empty()) return 1;
    return p.line_of[std::min(pos, p.line_of.size() - 1)];
  };
  auto flag = [&](size_t pos, const std::string& rule, std::string msg) {
    const int ln = line_at(pos);
    if (waived(p.raw_lines, static_cast<size_t>(ln) - 1, rule)) return;
    out.vio.push_back(Violation{rel, ln, rule, std::move(msg)});
  };

  struct HeldLock {
    std::string guard, lock;
    int depth;
    bool active;
  };
  struct OpenFn {
    size_t fn;       // index into out.fns
    int open_depth;  // depth just before the body '{'
  };
  std::vector<HeldLock> held;
  std::vector<OpenFn> fn_stack;
  std::map<size_t, size_t> pending_body;  // body '{' pos -> fn index
  int depth = 0;

  auto cur_fn = [&]() -> FnModel* {
    return fn_stack.empty() ? nullptr : &out.fns[fn_stack.back().fn];
  };
  auto active_held = [&]() {
    std::vector<std::string> v;
    for (const auto& h : held) {
      if (h.active) v.push_back(h.lock);
    }
    return v;
  };

  size_t i = 0;
  while (i < t.size()) {
    const char c = t[i];
    if (c == '{') {
      const auto it = pending_body.find(i);
      if (it != pending_body.end()) {
        fn_stack.push_back(OpenFn{it->second, depth});
        pending_body.erase(it);
      }
      ++depth;
      ++i;
      continue;
    }
    if (c == '}') {
      --depth;
      while (!held.empty() && held.back().depth > depth) held.pop_back();
      if (!fn_stack.empty() && depth == fn_stack.back().open_depth) {
        fn_stack.pop_back();
      }
      ++i;
      continue;
    }
    if (!is_ident_start(c) || (i > 0 && is_ident(t[i - 1]))) {
      ++i;
      continue;
    }

    // Parse a qualified identifier: a::b::c (no whitespace around ::).
    const size_t start = i;
    const bool leading_global =
        i >= 2 && t[i - 1] == ':' && t[i - 2] == ':' &&
        (i < 3 || (!is_ident(t[i - 3]) && t[i - 3] != ':' && t[i - 3] != '>'));
    size_t j = i;
    std::string last;
    size_t last_start = j;
    while (true) {
      size_t k = j;
      while (k < t.size() && is_ident(t[k])) ++k;
      last = t.substr(j, k - j);
      last_start = j;
      if (k + 2 < t.size() && t[k] == ':' && t[k + 1] == ':' &&
          is_ident_start(t[k + 2])) {
        j = k + 2;
        continue;
      }
      j = k;
      break;
    }
    i = j;  // main loop resumes after the identifier
    size_t nw = j;
    while (nw < t.size() && is_space(t[nw])) ++nw;

    // `MutexLock guard(expr);` -- the acquisition form the codebase uses.
    if (last == "MutexLock" && nw < t.size() && is_ident_start(t[nw])) {
      size_t ge = nw;
      while (ge < t.size() && is_ident(t[ge])) ++ge;
      const std::string guard = t.substr(nw, ge - nw);
      size_t po = ge;
      while (po < t.size() && is_space(t[po])) ++po;
      if (po < t.size() && t[po] == '(') {
        const size_t pc = match_paren(t, po);
        if (pc != std::string::npos) {
          const std::string lock = lock_target(t.substr(po + 1, pc - po - 1));
          const int ln = line_at(start);
          const auto must_precede = order.find(lock);
          for (const auto& h : held) {
            if (!h.active) continue;
            if (must_precede != order.end() &&
                must_precede->second.count(h.lock)) {
              flag(start, "lock-order",
                   "acquiring '" + lock + "' while '" + h.lock +
                       "' is held inverts the declared order ('" + lock +
                       "' ACQUIRED_BEFORE '" + h.lock + "')");
            }
            if (h.lock != lock) {
              out.edges.push_back(ObservedEdge{h.lock, lock, rel, "", ln});
            }
          }
          if (FnModel* f = cur_fn()) f->acquires.emplace_back(lock, ln);
          held.push_back(HeldLock{guard, lock, depth, true});
          i = pc + 1;
          continue;
        }
      }
      continue;
    }

    if (nw >= t.size() || t[nw] != '(') continue;

    // `guard.unlock()` / `guard.lock()` hand-off on a tracked MutexLock.
    if ((last == "unlock" || last == "lock") && last_start >= 2) {
      size_t rb = last_start - 1;
      while (rb > 0 && is_space(t[rb])) --rb;
      if (t[rb] == '.') {
        size_t re = rb;
        while (re > 0 && is_space(t[re - 1])) --re;
        size_t rs = re;
        while (rs > 0 && is_ident(t[rs - 1])) --rs;
        const std::string recv = t.substr(rs, re - rs);
        bool handled = false;
        for (auto it = held.rbegin(); it != held.rend(); ++it) {
          if (it->guard == recv) {
            it->active = (last == "lock");
            handled = true;
            break;
          }
        }
        if (handled) {
          const size_t pc = match_paren(t, nw);
          if (pc != std::string::npos) i = pc + 1;
          continue;
        }
      }
    }

    if (keyword_set().count(last)) continue;

    // `::sendmsg(...)` -- a global-namespace blocking syscall.
    if (leading_global) {
      if (syscall_set().count(last)) {
        const int ln = line_at(start);
        if (FnModel* f = cur_fn()) f->blocking.emplace_back("::" + last, ln);
        const auto now_held = active_held();
        if (!now_held.empty()) {
          flag(start, "blocking-in-lock",
               "blocking call '::" + last + "' while '" + now_held.back() +
                   "' is held; every thread contending on that mutex stalls "
                   "for the I/O -- stage the data under the lock, release, "
                   "then do the syscall");
        }
      }
      continue;
    }

    if (!fn_stack.empty()) {
      // Inside a function body: calls, serde ops, blocking helpers.
      if (is_blocking_helper(last)) {
        const int ln = line_at(start);
        if (FnModel* f = cur_fn()) f->blocking.emplace_back(last, ln);
        const auto now_held = active_held();
        if (!now_held.empty()) {
          flag(start, "blocking-in-lock",
               "blocking call '" + last + "' while '" + now_held.back() +
                   "' is held; every thread contending on that mutex stalls "
                   "for the I/O -- stage the data under the lock, release, "
                   "then do the syscall");
        }
        continue;
      }
      bool is_put = false;
      const std::string token = serde_token(last, &is_put);
      if (!token.empty() && rel != "src/common/serde.h") {
        cur_fn()->serde.push_back(SerdeOp{last, token, line_at(start), is_put});
        continue;
      }
      cur_fn()->calls.push_back(CallSite{last, line_at(start), active_held(),
                                         discarded_statement(t, start, nw)});
      continue;
    }

    // Outside any function body: a candidate definition.
    const size_t close = match_paren(t, nw);
    if (close == std::string::npos) continue;
    const size_t body = find_body_brace(t, close);
    if (body == std::string::npos) continue;
    std::string qual = t.substr(start, last_start - start);
    while (!qual.empty() && qual.back() == ':') qual.pop_back();
    size_t b = start;
    while (b > 0 && t[b - 1] != ';' && t[b - 1] != '{' && t[b - 1] != '}') --b;
    // `Result` must appear as a whole token: ReadResult/WriteResult are
    // plain structs, only the Result<T> template carries an error to check.
    bool returns_result = false;
    const std::string head = t.substr(b, start - b);
    for (size_t at = head.find("Result"); at != std::string::npos;
         at = head.find("Result", at + 1)) {
      const bool lead_ok = at == 0 || !is_ident(head[at - 1]);
      const size_t after = at + 6;
      const bool tail_ok = after >= head.size() || !is_ident(head[after]);
      if (lead_ok && tail_ok) {
        returns_result = true;
        break;
      }
    }
    FnModel fn;
    fn.name = last;
    fn.qual = qual;
    fn.file = rel;
    fn.line = line_at(last_start);
    fn.returns_result = returns_result;
    pending_body[body] = out.fns.size();
    out.fns.push_back(std::move(fn));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Line rules (unchanged from the single-file linter).
// ---------------------------------------------------------------------------

void line_rules(const std::string& rel_path, const Prepared& p,
                const std::string& content, std::vector<Violation>& out) {
  auto flag = [&](size_t idx, const std::string& rule,
                  const std::string& message) {
    if (waived(p.raw_lines, idx, rule)) return;
    out.push_back(
        Violation{rel_path, static_cast<int>(idx) + 1, rule, message});
  };

  for (size_t i = 0; i < p.code_lines.size(); ++i) {
    const std::string& code = p.code_lines[i];
    if (code.empty()) continue;

    if (!thread_allowed(rel_path) && std::regex_search(code, kRawThread)) {
      flag(i, "raw-thread",
           "std::thread outside src/runtime, src/socknet, src/harness; "
           "protocol code must stay single-threaded per process");
    }
    // Within the TCP transport the thread budget is the event loop's:
    // N loop shards + M mailbox consumers, all owned by event_loop.{h,cpp}.
    // Any other std::thread in src/socknet/ reintroduces the
    // thread-per-endpoint design the shard rewrite removed.
    if (starts_with(rel_path, "src/socknet/") &&
        rel_path != "src/socknet/event_loop.h" &&
        rel_path != "src/socknet/event_loop.cpp" &&
        std::regex_search(code, kRawThread)) {
      flag(i, "socknet-thread",
           "std::thread in src/socknet outside event_loop.{h,cpp}; transport "
           "threads belong to the LoopShard / MailboxPool budget");
    }
    if (std::regex_search(code, kDetach)) {
      flag(i, "detach",
           "detached threads outlive their transport; join via stop() instead");
    }
    if (rel_path != "src/common/rng.h" &&
        (std::regex_search(code, kRandCall) ||
         std::regex_search(code, kRandomDevice))) {
      flag(i, "raw-random",
           "unseeded randomness breaks replayability; draw from bftreg::Rng "
           "(src/common/rng.h)");
    }
    std::smatch m;
    if (std::regex_search(code, m, kMutexMember)) {
      const std::string name = m[1].str();
      const std::string companion = "GUARDED_BY(" + name + ")";
      if (content.find(companion) == std::string::npos) {
        flag(i, "unguarded-mutex",
             "mutex member '" + name + "' has no " + companion +
                 " companion field; write down what the lock protects");
      }
    }
    if (!starts_with(rel_path, "src/registers/") &&
        std::regex_search(code, kBusyCall)) {
      flag(i, "legacy-single-op",
           "busy() gates the low-level one-operation-per-client classes; "
           "use RegisterClient (src/registers/client.h), which multiplexes "
           "concurrent operations instead of serializing on busy()");
    }
    if (rel_path != "src/registers/config.h" &&
        std::regex_search(code, kResilienceLiteral)) {
      flag(i, "resilience-literal",
           "resilience bound arithmetic belongs in src/registers/config.h "
           "(use bsr_min_servers/bcsr_min_servers/rb_min_servers/"
           "bcsr_code_dimension)");
    }
    if (starts_with(rel_path, "src/registers/") &&
        rel_path != "src/registers/object_store.h" &&
        std::regex_search(code, kUnboundedStore)) {
      flag(i, "unbounded-store",
           "Tag-keyed std::map in the register layer: per-object logs "
           "belong in CompactObjectStore (src/registers/object_store.h), "
           "which bounds them with max_history and slab-allocates values; "
           "waive only maps bounded by one operation's response set");
    }
    if (rel_path != "src/registers/config.h" &&
        std::regex_search(code, kQuorumArithmetic)) {
      flag(i, "quorum-arithmetic",
           "quorum-sized arithmetic (n - f, (n + f) / 2) belongs in "
           "src/registers/config.h (use SystemConfig::quorum()/"
           "catch_up_quorum()/witness_threshold())");
    }
    if (atomic_order_scoped(rel_path)) {
      for (auto it = std::sregex_iterator(code.begin(), code.end(), kAtomicOp);
           it != std::sregex_iterator(); ++it) {
        const std::smatch& am = *it;
        const size_t open =
            static_cast<size_t>(am.position(0)) + am.length(0) - 1;
        if (call_args(p.code_lines, i, open).find("memory_order") ==
            std::string::npos) {
          flag(i, "atomic-in-ring",
               "atomic " + am[2].str() +
                   "() without an explicit memory order in the lock-free "
                   "delivery path; the default seq_cst hides the "
                   "synchronization argument -- name the order the protocol "
                   "comment justifies (see src/common/mpsc_ring.h)");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Whole-program passes.
// ---------------------------------------------------------------------------

using StringSetMap = std::map<std::string, std::set<std::string>>;

StringSetMap transitive_closure(StringSetMap g) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [from, tos] : g) {
      std::set<std::string> add;
      for (const auto& mid : tos) {
        const auto it = g.find(mid);
        if (it == g.end()) continue;
        for (const auto& to : it->second) {
          if (!tos.count(to)) add.insert(to);
        }
      }
      if (!add.empty()) {
        tos.insert(add.begin(), add.end());
        changed = true;
      }
    }
  }
  return g;
}

struct EdgeInfo {
  std::string file, via;
  int line{0};
  bool declared{false};
};

std::string chain_string(const std::string& fn,
                         const std::map<std::string, std::string>& next,
                         const std::map<std::string, std::string>& term) {
  std::string s = fn;
  std::string cur = fn;
  while (true) {
    const auto it = next.find(cur);
    if (it == next.end() || it->second.empty()) break;
    cur = it->second;
    s += " -> " + cur;
  }
  const auto tm = term.find(cur);
  if (tm != term.end()) s += " -> " + tm->second;
  return s;
}

}  // namespace

LockOrder collect_lock_order(const std::string& content) {
  LockOrder order;
  std::istringstream in(content);
  std::string line, code;
  bool in_block = false;
  while (std::getline(in, line)) {
    code += strip_comments(line, in_block);
    code += '\n';
  }
  for (std::sregex_iterator it(code.begin(), code.end(), kOrderedMutex), end;
       it != end; ++it) {
    const std::string name = (*it)[1].str();
    const bool before = (*it)[2].str() == "BEFORE";
    std::istringstream args((*it)[3].str());
    std::string arg;
    while (std::getline(args, arg, ',')) {
      const std::string other = lock_target(arg);
      if (other.empty()) continue;
      if (before) {
        order[name].insert(other);  // name < other
      } else {
        order[other].insert(name);  // other < name
      }
    }
  }
  return order;
}

std::vector<Violation> lint_content(const std::string& rel_path,
                                    const std::string& content) {
  return lint_content(rel_path, content, collect_lock_order(content));
}

std::vector<Violation> lint_content(const std::string& rel_path,
                                    const std::string& content,
                                    const LockOrder& order) {
  const Prepared p = prepare(content);
  std::vector<Violation> out;
  line_rules(rel_path, p, content, out);
  FileScan scan = scan_file(rel_path, p, order);
  out.insert(out.end(), scan.vio.begin(), scan.vio.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const Violation& a, const Violation& b) {
                     return a.line < b.line;
                   });
  return out;
}

std::vector<Violation> lint_program(const std::vector<SourceFile>& files) {
  std::vector<Violation> out;

  // Stage 1: per-file preparation, merged declared lock order, file scans.
  std::map<std::string, Prepared> prepared;
  LockOrder declared;
  std::vector<DeclEdge> decl_edges;
  for (const auto& f : files) {
    Prepared p = prepare(f.content);
    for (std::sregex_iterator it(p.text.begin(), p.text.end(), kOrderedMutex),
         end;
         it != end; ++it) {
      const std::string name = (*it)[1].str();
      const bool before = (*it)[2].str() == "BEFORE";
      const int ln = p.line_of[std::min(static_cast<size_t>(it->position(0)),
                                        p.line_of.size() - 1)];
      std::istringstream args((*it)[3].str());
      std::string arg;
      while (std::getline(args, arg, ',')) {
        const std::string other = lock_target(arg);
        if (other.empty()) continue;
        const std::string a = before ? name : other;
        const std::string b = before ? other : name;
        declared[a].insert(b);
        decl_edges.push_back(DeclEdge{a, b, f.path, ln});
      }
    }
    prepared.emplace(f.path, std::move(p));
  }

  std::vector<FnModel> all_fns;
  std::vector<ObservedEdge> observed;
  for (const auto& f : files) {
    const Prepared& p = prepared.at(f.path);
    line_rules(f.path, p, f.content, out);
    FileScan scan = scan_file(f.path, p, declared);
    out.insert(out.end(), scan.vio.begin(), scan.vio.end());
    observed.insert(observed.end(), scan.edges.begin(), scan.edges.end());
    for (auto& fn : scan.fns) all_fns.push_back(std::move(fn));
  }

  auto waived_at = [&](const std::string& file, int line,
                       const std::string& rule) {
    const auto it = prepared.find(file);
    if (it == prepared.end()) return false;
    return waived(it->second.raw_lines, static_cast<size_t>(line) - 1, rule);
  };
  auto flag = [&](const std::string& file, int line, const std::string& rule,
                  std::string msg) {
    if (waived_at(file, line, rule)) return;
    out.push_back(Violation{file, line, rule, std::move(msg)});
  };

  // Stage 2: per-definition summaries, merged by bare name under agreement
  // semantics. Calls resolve by name only, so overloads and same-named
  // methods (count(), read(), build(), ...) alias each other; a name-level
  // summary therefore claims only what EVERY definition of that name
  // agrees on. That trades false negatives on genuinely-aliased names for
  // zero lock/blocking noise from std-style accessor names -- the
  // documented precision bar.
  std::map<std::string, std::vector<size_t>> defs_of;
  for (size_t d = 0; d < all_fns.size(); ++d) {
    defs_of[all_fns[d].name].push_back(d);
  }

  std::vector<std::set<std::string>> def_acq(all_fns.size());
  std::vector<char> def_block(all_fns.size(), 0);
  std::vector<std::pair<std::string, std::string>> def_witness(
      all_fns.size());  // (next callee or "", terminal syscall)
  std::map<std::string, std::set<std::string>> name_acq;
  std::map<std::string, char> name_block;
  std::map<std::string, std::string> block_next, block_term;

  for (size_t d = 0; d < all_fns.size(); ++d) {
    const FnModel& fn = all_fns[d];
    for (const auto& [lock, line] : fn.acquires) def_acq[d].insert(lock);
    if (!fn.blocking.empty()) {
      def_block[d] = 1;
      def_witness[d] = {"", fn.blocking.front().first};
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (size_t d = 0; d < all_fns.size(); ++d) {
      const FnModel& fn = all_fns[d];
      for (const auto& c : fn.calls) {
        if (!def_block[d]) {
          if (is_blocking_helper(c.callee)) {
            def_block[d] = 1;
            def_witness[d] = {"", c.callee};
          } else if (name_block.count(c.callee) && name_block.at(c.callee)) {
            def_block[d] = 1;
            def_witness[d] = {c.callee, block_term.at(c.callee)};
          }
        }
        const auto it = name_acq.find(c.callee);
        if (it != name_acq.end()) {
          def_acq[d].insert(it->second.begin(), it->second.end());
        }
      }
    }
    for (const auto& [name, defs] : defs_of) {
      const bool blocks = std::all_of(defs.begin(), defs.end(),
                                      [&](size_t d) { return def_block[d]; });
      char& nb = name_block[name];
      if (blocks && !nb) {
        nb = 1;
        block_next[name] = def_witness[defs.front()].first;
        block_term[name] = def_witness[defs.front()].second;
        changed = true;
      }
      std::set<std::string> agreed = def_acq[defs.front()];
      for (size_t k = 1; k < defs.size() && !agreed.empty(); ++k) {
        std::set<std::string> keep;
        std::set_intersection(agreed.begin(), agreed.end(),
                              def_acq[defs[k]].begin(), def_acq[defs[k]].end(),
                              std::inserter(keep, keep.begin()));
        agreed.swap(keep);
      }
      if (agreed != name_acq[name]) {
        name_acq[name] = std::move(agreed);
        changed = true;
      }
    }
  }

  std::set<std::string> result_fns;
  for (const auto& [name, defs] : defs_of) {
    if (std::all_of(defs.begin(), defs.end(), [&](size_t d) {
          return all_fns[d].returns_result;
        })) {
      result_fns.insert(name);
    }
  }

  // Pass: interprocedural blocking-in-lock, and observed interprocedural
  // lock edges (held lock -> every lock the callee may take).
  for (const auto& fn : all_fns) {
    for (const auto& c : fn.calls) {
      if (c.held.empty()) continue;
      const auto defined = defs_of.find(c.callee);
      if (defined == defs_of.end()) continue;
      if (name_block.count(c.callee) && name_block.at(c.callee)) {
        flag(fn.file, c.line, "blocking-in-lock",
             "call '" + c.callee + "()' may reach a blocking syscall while '" +
                 c.held.back() + "' is held (" +
                 chain_string(c.callee, block_next, block_term) +
                 "); stage data under the lock, release, then do the I/O");
      }
      const auto it = name_acq.find(c.callee);
      if (it == name_acq.end()) continue;
      for (const auto& lock : it->second) {
        for (const auto& h : c.held) {
          if (h == lock) continue;
          observed.push_back(ObservedEdge{h, lock, fn.file, c.callee, c.line});
        }
      }
    }
  }

  // Pass: global lock-order graph. Union of declared and observed edges;
  // cycles are potential deadlocks, observed edges outside the declared
  // closure must be written down.
  std::map<std::pair<std::string, std::string>, EdgeInfo> edge_info;
  StringSetMap graph;
  for (const auto& e : decl_edges) {
    graph[e.before].insert(e.after);
    edge_info.emplace(std::make_pair(e.before, e.after),
                      EdgeInfo{e.file, "", e.line, true});
  }
  for (const auto& e : observed) {
    graph[e.before].insert(e.after);
    edge_info.emplace(std::make_pair(e.before, e.after),
                      EdgeInfo{e.file, e.via, e.line, false});
  }

  const StringSetMap declared_closure = transitive_closure(declared);

  {
    // DFS cycle detection over the union graph; one report per distinct
    // cycle node set, anchored at the back edge's provenance.
    std::map<std::string, int> color;  // 0 new, 1 on stack, 2 done
    std::vector<std::string> path;
    std::set<std::string> reported;
    std::function<void(const std::string&)> dfs =
        [&](const std::string& u) {
          color[u] = 1;
          path.push_back(u);
          const auto it = graph.find(u);
          if (it != graph.end()) {
            for (const auto& v : it->second) {
              if (color[v] == 1) {
                auto at = std::find(path.begin(), path.end(), v);
                std::vector<std::string> cyc(at, path.end());
                std::vector<std::string> key = cyc;
                std::sort(key.begin(), key.end());
                std::string canon;
                for (const auto& n : key) canon += n + "|";
                if (!reported.insert(canon).second) continue;
                std::string walk;
                for (const auto& n : cyc) walk += n + " -> ";
                walk += v;
                std::string provenance;
                for (size_t e = 0; e < cyc.size(); ++e) {
                  const std::string& a = cyc[e];
                  const std::string& b = e + 1 < cyc.size() ? cyc[e + 1] : v;
                  const auto ei = edge_info.at(std::make_pair(a, b));
                  provenance += "; '" + a + "' -> '" + b + "' " +
                                (ei.declared ? "declared" : "observed") +
                                " at " + ei.file + ":" + std::to_string(ei.line);
                  if (!ei.via.empty()) provenance += " (via '" + ei.via + "')";
                }
                const auto back = edge_info.at(std::make_pair(u, v));
                flag(back.file, back.line, "lock-cycle",
                     "lock-order cycle " + walk + provenance +
                         "; a cycle in the acquisition graph is a potential "
                         "deadlock");
              } else if (color[v] == 0) {
                dfs(v);
              }
            }
          }
          path.pop_back();
          color[u] = 2;
        };
    for (const auto& [node, tos] : graph) {
      if (color[node] == 0) dfs(node);
    }
  }

  {
    std::set<std::pair<std::string, std::string>> seen;
    for (const auto& e : observed) {
      if (!seen.insert(std::make_pair(e.before, e.after)).second) continue;
      const auto before_it = declared_closure.find(e.before);
      if (before_it != declared_closure.end() &&
          before_it->second.count(e.after)) {
        continue;  // covered by the declared order
      }
      const auto after_it = declared_closure.find(e.after);
      if (after_it != declared_closure.end() &&
          after_it->second.count(e.before)) {
        continue;  // inverts a declared edge: the cycle pass reports it
      }
      std::string how =
          e.via.empty()
              ? "nested acquisition takes '" + e.before + "' then '" + e.after +
                    "'"
              : "holding '" + e.before + "', the call to '" + e.via +
                    "()' acquires '" + e.after + "'";
      flag(e.file, e.line, "lock-order-undeclared",
           how +
               ", but no ACQUIRED_BEFORE/ACQUIRED_AFTER edge declares that "
               "order; write it on the mutex member so this analyzer and "
               "Clang's thread-safety analysis can hold future edits to it");
    }
  }

  // Pass: serde wire-symmetry. Writers and readers pair on (scope, stem):
  // the encode/parse methods of one type, or free encode_X/decode_X
  // functions sharing the stem X. Exactly one writer and one reader per key
  // participate; the put_* token sequence must equal the get_* sequence.
  {
    static const std::vector<std::string> kWriteVerbs = {
        "encode", "serialize", "save", "pack", "seal", "marshal", "write",
        "put"};
    static const std::vector<std::string> kReadVerbs = {
        "decode", "parse", "deserialize", "load", "unpack", "read", "get",
        "unseal", "unmarshal"};
    auto stem_of = [](const std::string& name,
                      const std::vector<std::string>& verbs,
                      bool* matched) -> std::string {
      for (const auto& v : verbs) {
        if (name == v) {
          *matched = true;
          return "";
        }
        if (starts_with(name, v + "_")) {
          *matched = true;
          return name.substr(v.size() + 1);
        }
      }
      *matched = false;
      return "";
    };
    std::map<std::string, std::vector<const FnModel*>> writers, readers;
    for (const auto& fn : all_fns) {
      if (fn.serde.empty()) continue;
      const bool all_puts = std::all_of(
          fn.serde.begin(), fn.serde.end(),
          [](const SerdeOp& op) { return op.is_put; });
      const bool all_gets = std::all_of(
          fn.serde.begin(), fn.serde.end(),
          [](const SerdeOp& op) { return !op.is_put; });
      bool matched = false;
      if (all_puts) {
        const std::string stem = stem_of(fn.name, kWriteVerbs, &matched);
        if (matched) writers[fn.qual + "#" + stem].push_back(&fn);
      } else if (all_gets) {
        const std::string stem = stem_of(fn.name, kReadVerbs, &matched);
        if (matched) readers[fn.qual + "#" + stem].push_back(&fn);
      }
    }
    for (const auto& [key, ws] : writers) {
      const auto rit = readers.find(key);
      if (rit == readers.end()) continue;
      if (ws.size() != 1 || rit->second.size() != 1) continue;  // ambiguous
      const FnModel& w = *ws.front();
      const FnModel& r = *rit->second.front();
      const std::string pair_desc =
          "'" + (w.qual.empty() ? w.name : w.qual + "::" + w.name) + "' (" +
          w.file + ":" + std::to_string(w.line) + ") vs '" +
          (r.qual.empty() ? r.name : r.qual + "::" + r.name) + "' (" + r.file +
          ":" + std::to_string(r.line) + ")";
      const size_t n = std::min(w.serde.size(), r.serde.size());
      bool diverged = false;
      for (size_t k = 0; k < n; ++k) {
        if (w.serde[k].token == r.serde[k].token) continue;
        flag(r.file, r.serde[k].line, "serde-symmetry",
             "wire format drift between " + pair_desc + ": field " +
                 std::to_string(k + 1) + " is written with '" +
                 w.serde[k].name + "' (" + w.file + ":" +
                 std::to_string(w.serde[k].line) + ") but read with '" +
                 r.serde[k].name + "'");
        diverged = true;
        break;
      }
      if (!diverged && w.serde.size() != r.serde.size()) {
        const FnModel& longer = w.serde.size() > r.serde.size() ? w : r;
        const SerdeOp& extra = longer.serde[n];
        flag(longer.file, extra.line, "serde-symmetry",
             "wire format drift between " + pair_desc + ": the writer emits " +
                 std::to_string(w.serde.size()) + " field(s) but the reader "
                 "consumes " +
                 std::to_string(r.serde.size()) + "; '" + extra.name +
                 "' has no counterpart");
      }
    }
  }

  // Pass: unchecked-result. A statement-shaped call to a Result-returning
  // function whose value nothing consumes.
  for (const auto& fn : all_fns) {
    for (const auto& c : fn.calls) {
      if (!c.discarded || !result_fns.count(c.callee)) continue;
      flag(fn.file, c.line, "unchecked-result",
           "result of '" + c.callee +
               "()' is discarded but the function returns Result; check ok() "
               "or propagate the error");
    }
  }

  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return out;
}

std::vector<Violation> lint_tree(const std::string& repo_root) {
  namespace fs = std::filesystem;
  const fs::path root(repo_root);
  const fs::path src = root / "src";
  if (!fs::is_directory(src)) {
    throw std::runtime_error("no src/ directory under " + repo_root);
  }

  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cpp") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot read " + path.string());
    std::ostringstream buf;
    buf << in.rdbuf();
    files.push_back(
        SourceFile{fs::relative(path, root).generic_string(), buf.str()});
  }
  return lint_program(files);
}

std::string format(const Violation& v) {
  return v.file + ":" + std::to_string(v.line) + ": [" + v.rule + "] " + v.message;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

struct RuleMeta {
  const char* id;
  const char* text;
};

// Fixed catalog order so ruleIndex values (and the golden test) are stable.
constexpr RuleMeta kRuleCatalog[] = {
    {"raw-thread", "std::thread outside the runtime/transport/harness layers"},
    {"detach", "detached thread outlives its transport"},
    {"raw-random", "unseeded randomness breaks replayability"},
    {"unguarded-mutex", "mutex member without a GUARDED_BY companion"},
    {"resilience-literal", "resilience bound arithmetic outside config.h"},
    {"lock-order", "nested acquisition inverts a declared lock order"},
    {"legacy-single-op", "busy() call outside the low-level register clients"},
    {"blocking-in-lock",
     "call chain from a MutexLock scope to a blocking syscall"},
    {"lock-cycle", "cycle in the global declared+observed lock-order graph"},
    {"lock-order-undeclared",
     "observed acquisition order with no declared edge"},
    {"serde-symmetry", "serialize/deserialize wire formats drifted apart"},
    {"unchecked-result", "discarded Result<T> return value"},
    {"atomic-in-ring",
     "implicit seq_cst atomic access in the lock-free delivery path"},
    // Appended last: ruleIndex values above are frozen by the SARIF golden.
    {"quorum-arithmetic", "quorum-sized arithmetic outside config.h"},
    {"socknet-thread",
     "std::thread in src/socknet outside the event-loop shard pool"},
    {"unbounded-store",
     "Tag-keyed std::map outside the compact object store"},
};

}  // namespace

std::string to_sarif(const std::vector<Violation>& violations) {
  std::map<std::string, int> rule_index;
  std::string rules;
  for (const auto& meta : kRuleCatalog) {
    rule_index[meta.id] = static_cast<int>(rule_index.size());
    if (!rules.empty()) rules += ",";
    rules += std::string("\n        {\"id\": \"") + meta.id +
             "\", \"shortDescription\": {\"text\": \"" + meta.text + "\"}}";
  }
  std::string results;
  for (const auto& v : violations) {
    if (!results.empty()) results += ",";
    results += "\n      {\"ruleId\": \"" + json_escape(v.rule) + "\"";
    const auto it = rule_index.find(v.rule);
    if (it != rule_index.end()) {
      results += ", \"ruleIndex\": " + std::to_string(it->second);
    }
    results +=
        ", \"level\": \"error\", \"message\": {\"text\": \"" +
        json_escape(v.message) +
        "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
        "{\"uri\": \"" +
        json_escape(v.file) +
        "\"}, \"region\": {\"startLine\": " + std::to_string(v.line) +
        "}}}]}";
  }
  std::string doc;
  doc += "{\n";
  doc += "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  doc += "  \"version\": \"2.1.0\",\n";
  doc += "  \"runs\": [{\n";
  doc += "    \"tool\": {\"driver\": {\n";
  doc += "      \"name\": \"bftreg_lint\",\n";
  doc += "      \"informationUri\": \"docs/ANALYSIS.md\",\n";
  doc += "      \"rules\": [" + rules + "\n      ]\n";
  doc += "    }},\n";
  doc += "    \"results\": [" + results + (results.empty() ? "]\n" : "\n    ]\n");
  doc += "  }]\n";
  doc += "}\n";
  return doc;
}

}  // namespace bftreg::lint
