// Small statistics helpers used by the benchmark harness and tests.
//
// Thread-safety: OnlineStats, Samples, and TextTable are single-threaded
// (note that Samples::percentile sorts lazily under const, so even
// concurrent *reads* race). When several threads record into one
// accumulator -- e.g. per-client latency recording in the wall-clock
// harness -- use ConcurrentStats, whose lock discipline is statically
// checked via the annotations in common/thread_annotations.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.h"

namespace bftreg {

/// Streaming mean/variance (Welford) plus min/max.
class OnlineStats {
 public:
  void add(double x);

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  uint64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Sample collector with exact percentiles (sorts on demand).
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  void clear() {
    values_.clear();
    sorted_ = false;
  }

  size_t count() const { return values_.size(); }
  double mean() const;
  /// p in [0, 100]; nearest-rank percentile. Returns 0 on empty.
  double percentile(double p) const;
  double min() const { return percentile(0); }
  double median() const { return percentile(50); }
  double p99() const { return percentile(99); }
  double max() const { return percentile(100); }

  const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_{false};
};

/// Thread-safe OnlineStats: many recorder threads, any thread may snapshot.
/// A single mutex is deliberate -- recording is a handful of arithmetic ops,
/// so sharding buys nothing at the rates the harness produces; revisit if a
/// perf PR makes this a hot path.
class ConcurrentStats {
 public:
  void add(double x) {
    MutexLock lock(mu_);
    stats_.add(x);
  }

  /// Consistent point-in-time copy; prefer this over calling the individual
  /// accessors in sequence when the recorders are still running.
  OnlineStats snapshot() const {
    MutexLock lock(mu_);
    return stats_;
  }

  uint64_t count() const {
    MutexLock lock(mu_);
    return stats_.count();
  }
  double mean() const {
    MutexLock lock(mu_);
    return stats_.mean();
  }
  double stddev() const {
    MutexLock lock(mu_);
    return stats_.stddev();
  }
  double min() const {
    MutexLock lock(mu_);
    return stats_.min();
  }
  double max() const {
    MutexLock lock(mu_);
    return stats_.max();
  }
  double sum() const {
    MutexLock lock(mu_);
    return stats_.sum();
  }

 private:
  mutable Mutex mu_;
  OnlineStats stats_ GUARDED_BY(mu_);
};

/// Fixed-width text table used by the bench binaries to print the
/// paper-claim reproductions in a uniform format.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> row);
  std::string render() const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bftreg
