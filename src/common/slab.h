// Slab/arena allocator for the compact object store.
//
// Every value and every object-log array used to be its own malloc: at a
// million objects that is several million allocations, each paying a
// ~16-byte allocator header and landing wherever the heap had room. The
// arena replaces them with bump allocation out of 64 KiB chunks plus
// size-class free lists, so
//   * a block costs exactly its rounded size -- no per-block header; the
//     caller (ValueRef / ObjectLog) already tracks the length, and
//     deallocate() takes the size back, so none needs to be stored;
//   * freed blocks are reused LIFO within their class (the free block
//     itself stores the next pointer, which is why the minimum class is
//     pointer-sized);
//   * locality follows allocation order, which for the object store means
//     objects materialized together sit together.
//
// Size classes: multiples of 16 up to 1 KiB (exact fit for the store's
// 40-byte log entries and small values), then powers of two up to the
// chunk payload; larger blocks fall through to operator new and are
// tracked so accounting stays truthful.
//
// Single-threaded by design: each store shard owns one arena and only its
// owner thread allocates or frees. No destructor walks: chunks are freed
// wholesale when the arena dies, so leaking a block into the arena is
// harmless (it just forgoes reuse).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace bftreg::common {

class SlabArena {
 public:
  static constexpr size_t kChunkBytes = 64 * 1024;
  static constexpr size_t kAlign = 16;
  static constexpr size_t kLinearLimit = 1024;     // 16-byte classes below
  static constexpr size_t kMaxClassBytes = 32 * 1024;  // pow2 classes below

  SlabArena() = default;
  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  uint8_t* allocate(size_t n) {
    if (n == 0) n = 1;
    if (n > kMaxClassBytes) {
      huge_bytes_ += n;
      return static_cast<uint8_t*>(::operator new(n));
    }
    const size_t cls = class_of(n);
    if (free_lists_[cls] != nullptr) {
      uint8_t* block = free_lists_[cls];
      std::memcpy(&free_lists_[cls], block, sizeof(uint8_t*));
      live_bytes_ += class_bytes(cls);
      return block;
    }
    const size_t want = class_bytes(cls);
    if (bump_remaining_ < want) new_chunk();
    uint8_t* block = bump_;
    bump_ += want;
    bump_remaining_ -= want;
    live_bytes_ += want;
    return block;
  }

  void deallocate(uint8_t* p, size_t n) {
    if (p == nullptr) return;
    if (n == 0) n = 1;
    if (n > kMaxClassBytes) {
      huge_bytes_ -= n;
      ::operator delete(p);
      return;
    }
    const size_t cls = class_of(n);
    std::memcpy(p, &free_lists_[cls], sizeof(uint8_t*));
    free_lists_[cls] = p;
    live_bytes_ -= class_bytes(cls);
  }

  /// Rounded bytes currently handed out (excludes free-listed blocks).
  size_t live_bytes() const { return live_bytes_ + huge_bytes_; }
  /// Bytes this arena holds from the system: whole chunks + huge blocks.
  size_t allocated_bytes() const {
    return chunks_.size() * kChunkBytes + huge_bytes_;
  }

 private:
  // Classes 0..63: (c+1)*16 bytes. Classes 64..: 2 KiB, 4 KiB, ... 32 KiB.
  static constexpr size_t kLinearClasses = kLinearLimit / kAlign;
  static constexpr size_t kNumClasses = kLinearClasses + 5;

  static size_t class_of(size_t n) {
    if (n <= kLinearLimit) return (n + kAlign - 1) / kAlign - 1;
    size_t cls = kLinearClasses;
    size_t bytes = kLinearLimit * 2;
    while (bytes < n) {
      bytes <<= 1;
      ++cls;
    }
    assert(cls < kNumClasses);
    return cls;
  }

  static size_t class_bytes(size_t cls) {
    if (cls < kLinearClasses) return (cls + 1) * kAlign;
    return kLinearLimit << (cls - kLinearClasses + 1);
  }

  void new_chunk() {
    chunks_.push_back(std::make_unique<uint8_t[]>(kChunkBytes));
    bump_ = chunks_.back().get();
    bump_remaining_ = kChunkBytes;
  }

  std::vector<std::unique_ptr<uint8_t[]>> chunks_;
  uint8_t* bump_{nullptr};
  size_t bump_remaining_{0};
  uint8_t* free_lists_[kNumClasses]{};
  size_t live_bytes_{0};
  size_t huge_bytes_{0};
};

}  // namespace bftreg::common
