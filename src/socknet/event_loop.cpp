#include "socknet/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "net/transport.h"

namespace bftreg::socknet {

namespace {
constexpr int kMaxEvents = 128;
}  // namespace

// --- LoopShard -------------------------------------------------------------

LoopShard::LoopShard() {
  epoll_fd_ = ::epoll_create1(0);
  assert(epoll_fd_ >= 0);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  assert(wake_fd_ >= 0);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

LoopShard::~LoopShard() {
  stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  wake_fd_ = epoll_fd_ = -1;
}

TimeNs LoopShard::mono_now() {
  return static_cast<TimeNs>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void LoopShard::start() {
  assert(!running_.load());
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
}

void LoopShard::stop() {
  if (!running_.exchange(false)) return;
  assert(!on_loop_thread() && "stop() from the loop thread would self-join");
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t w = ::write(wake_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
}

bool LoopShard::on_loop_thread() const {
  return thread_.joinable() && std::this_thread::get_id() == thread_.get_id();
}

void LoopShard::wake() {
  // Sleep/wake handshake: the eventfd syscall is only needed when the loop
  // is parked (or parking) in epoll_wait. A busy loop re-checks the queues
  // under mu_ before it next parks, so enqueue-then-see-!polling_ means the
  // task is guaranteed to be drained without any wake. When it *is*
  // parked, coalesce: one unconsumed eventfd write is enough.
  if (!polling_.load(std::memory_order_acquire)) return;
  if (wake_pending_.exchange(true, std::memory_order_acq_rel)) return;
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t w = ::write(wake_fd_, &one, sizeof(one));
}

void LoopShard::post(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    tasks_.push_back(std::move(fn));
  }
  wake();
}

void LoopShard::run_after(TimeNs delta_ns, std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    new_timers_.push_back(Timer{mono_now() + delta_ns, 0, std::move(fn)});
  }
  // Wake so the loop recomputes its epoll timeout against the new deadline.
  wake();
}

void LoopShard::add_fd(int fd, uint32_t events, FdHandler handler) {
  assert(on_loop_thread());
  handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  [[maybe_unused]] int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  assert(rc == 0);
}

void LoopShard::mod_fd(int fd, uint32_t events) {
  assert(on_loop_thread());
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  [[maybe_unused]] int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  assert(rc == 0);
}

void LoopShard::del_fd(int fd) {
  assert(on_loop_thread());
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

bool LoopShard::has_fd(int fd) const {
  assert(on_loop_thread());
  return handlers_.count(fd) != 0;
}

bool LoopShard::drain_tasks() {
  // Re-arm wake() BEFORE swapping the queue: a post() that lands after this
  // store is either included in the swap below (its wake was spurious) or
  // arrives later and issues a fresh eventfd write -- either way the loop
  // cannot park with work queued.
  wake_pending_.store(false, std::memory_order_release);
  // Swap the whole queue out so task bodies (which may post more tasks,
  // even to this shard) never run under mu_.
  std::deque<std::function<void()>> tasks;
  {
    MutexLock lock(mu_);
    tasks.swap(tasks_);
  }
  for (auto& fn : tasks) fn();
  return !tasks.empty();
}

int LoopShard::run_timers() {
  {
    MutexLock lock(mu_);
    for (auto& t : new_timers_) {
      t.seq = ++timer_seq_;
      heap_.push_back(std::move(t));
      std::push_heap(heap_.begin(), heap_.end(), [](const Timer& a, const Timer& b) {
        return a.due != b.due ? a.due > b.due : a.seq > b.seq;
      });
    }
    new_timers_.clear();
  }
  const auto later = [](const Timer& a, const Timer& b) {
    return a.due != b.due ? a.due > b.due : a.seq > b.seq;
  };
  for (;;) {
    if (heap_.empty()) return -1;
    const TimeNs now = mono_now();
    if (heap_.front().due > now) {
      // Round up so we never spin on a sub-millisecond remainder.
      const TimeNs wait_ms = (heap_.front().due - now + 999'999) / 1'000'000;
      return static_cast<int>(std::min<TimeNs>(wait_ms, 60'000));
    }
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Timer t = std::move(heap_.back());
    heap_.pop_back();
    t.fn();
  }
}

void LoopShard::loop() {
  epoll_event evs[kMaxEvents];
  bool yielded = false;
  while (running_.load(std::memory_order_acquire)) {
    const bool ran_tasks = drain_tasks();
    const int timeout_ms = run_timers();
    // Non-blocking poll first: under load the next readiness is usually
    // already here and the park/wake machinery below never runs.
    int n = ::epoll_wait(epoll_fd_, evs, kMaxEvents, 0);
    if (n == 0 && !ran_tasks) {
      // Nothing at all this pass. Yield once before parking: on a loaded
      // single-core box the thread about to feed us (a mailbox consumer
      // mid-handler) is runnable right now, and letting it run turns a
      // park + eventfd wake + context switch into a plain reschedule
      // (same heuristic as runtime/mailbox.h pop_wait_consume).
      if (!yielded) {
        yielded = true;
        std::this_thread::yield();
        continue;
      }
      // Park protocol: publish the intent to sleep, then re-check the task
      // and timer queues under mu_. A poster that enqueued after the drain
      // above but saw polling_ == false skipped its wake -- this re-check
      // is what makes that safe (mu_'s acquire/release pairs with the
      // poster's enqueue; the seq_cst store orders it before the reads).
      polling_.store(true, std::memory_order_seq_cst);
      bool queued;
      {
        MutexLock lock(mu_);
        queued = !tasks_.empty() || !new_timers_.empty();
      }
      n = ::epoll_wait(epoll_fd_, evs, kMaxEvents, queued ? 0 : timeout_ms);
      polling_.store(false, std::memory_order_release);
    }
    if (n != 0 || ran_tasks) yielded = false;
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = evs[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t v;
        [[maybe_unused]] ssize_t r = ::read(wake_fd_, &v, sizeof(v));
        continue;
      }
      // Look the handler up per event: a handler earlier in this batch may
      // have del_fd()'d this one (e.g. closed a sibling connection).
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      // Keep the closure alive across the call even if it del_fd()s itself.
      std::shared_ptr<FdHandler> h = it->second;
      (*h)(evs[i].events);
    }
  }
  // Final drain: stop() posts rundown work (e.g. outbox flushes) before
  // flipping running_; run what is already queued, then exit. Timers are
  // dropped by contract.
  drain_tasks();
}

// --- EventLoop -------------------------------------------------------------

EventLoop::EventLoop(size_t shards) {
  shards_.reserve(std::max<size_t>(shards, 1));
  for (size_t i = 0; i < std::max<size_t>(shards, 1); ++i) {
    shards_.push_back(std::make_unique<LoopShard>());
  }
}

void EventLoop::start() {
  for (auto& s : shards_) s->start();
}

void EventLoop::stop() {
  for (auto& s : shards_) s->stop();
}

size_t EventLoop::shard_of(const ProcessId& pid) const {
  // Stable under the endpoint's lifetime AND across runs: hash only the
  // identity, never a pointer or registration order (tests pin this).
  uint8_t key[5];
  key[0] = static_cast<uint8_t>(pid.role);
  key[1] = static_cast<uint8_t>(pid.index);
  key[2] = static_cast<uint8_t>(pid.index >> 8);
  key[3] = static_cast<uint8_t>(pid.index >> 16);
  key[4] = static_cast<uint8_t>(pid.index >> 24);
  return fnv1a64(key, sizeof(key)) % shards_.size();
}

size_t EventLoop::next_conn_shard() {
  return conn_rr_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
}

bool EventLoop::on_loop_thread() const {
  for (const auto& s : shards_) {
    if (s->on_loop_thread()) return true;
  }
  return false;
}

// --- MailboxPool -----------------------------------------------------------

MailboxPool::MailboxPool(size_t shards) {
  shards_.reserve(std::max<size_t>(shards, 1));
  for (size_t i = 0; i < std::max<size_t>(shards, 1); ++i) {
    shards_.push_back(std::make_unique<runtime::MailboxShard>());
  }
}

void MailboxPool::start() {
  threads_.reserve(shards_.size());
  for (auto& shard : shards_) {
    runtime::MailboxShard* s = shard.get();
    threads_.emplace_back([s] {
      // Batch brackets (IProcess::on_batch_begin/end), keyed on the item's
      // (process, delivery-shard): unlike the per-process runtime mailbox,
      // one pool consumer multiplexes contexts of several processes, so a
      // bracket closes whenever the next item belongs to a different
      // context (or is a task), and at the end of every drained batch.
      net::IProcess* open = nullptr;
      uint32_t open_shard = 0;
      auto close_batch = [&open, &open_shard] {
        if (open == nullptr) return;
        open->on_batch_end(open_shard);
        open = nullptr;
      };
      auto handle = [&open, &open_shard, &close_batch](runtime::MailItem& item) {
        if (item.proc != nullptr) {
          if (open != nullptr && (open != item.proc || open_shard != item.shard)) {
            close_batch();
          }
          if (open == nullptr) {
            item.proc->on_batch_begin(item.shard);
            open = item.proc;
            open_shard = item.shard;
          }
          item.proc->on_message(item.env);
        } else {
          close_batch();
          if (item.fn) item.fn();
        }
      };
      while (s->pop_wait_consume(handle)) {
        close_batch();
      }
    });
  }
}

void MailboxPool::stop() {
  for (auto& shard : shards_) shard->stop();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

bool MailboxPool::on_pool_thread() const {
  const auto self = std::this_thread::get_id();
  for (const auto& t : threads_) {
    if (t.joinable() && self == t.get_id()) return true;
  }
  return false;
}

}  // namespace bftreg::socknet
