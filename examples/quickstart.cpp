// Quickstart: a 5-server BSR register (n = 4f+1, f = 1) in the
// deterministic simulator -- write a value, read it back in one round.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "checker/consistency.h"
#include "harness/sim_cluster.h"

using namespace bftreg;

int main() {
  // A cluster is the whole emulated system: n servers, writers, readers,
  // and a seeded virtual network. Everything is deterministic in the seed.
  harness::ClusterOptions options;
  options.protocol = harness::Protocol::kBsr;  // replicated, one-shot reads
  options.config.n = 5;                        // 4f + 1 servers
  options.config.f = 1;                        // tolerate 1 Byzantine server
  options.num_writers = 1;
  options.num_readers = 1;
  options.seed = 2024;

  harness::SimCluster cluster(options);

  // One of the five servers turns out to be Byzantine. BSR does not care.
  cluster.set_byzantine(3, adversary::StrategyKind::kFabricate);

  std::printf("BSR register: n=%zu servers, f=%zu Byzantine tolerated\n\n",
              options.config.n, options.config.f);

  // Write: two rounds (get-tag, put-data).
  const std::string text = "hello, byzantine world";
  const auto w = cluster.write(0, Bytes(text.begin(), text.end()));
  std::printf("write(\"%s\")\n  tag=(%llu, writer:%u), rounds=%d, latency=%llu ns\n",
              text.c_str(), static_cast<unsigned long long>(w.tag.num),
              w.tag.writer.index, w.rounds,
              static_cast<unsigned long long>(w.completed_at - w.invoked_at));

  // Read: ONE round -- the paper's headline one-shot read.
  const auto r = cluster.read(0);
  std::printf("read()\n  -> \"%s\", rounds=%d (one-shot), latency=%llu ns\n",
              std::string(r.value.begin(), r.value.end()).c_str(), r.rounds,
              static_cast<unsigned long long>(r.completed_at - r.invoked_at));

  // The f+1 witness rule guarantees the fabricating server could not plant
  // a value; verify against the recorded execution.
  checker::CheckOptions copts;
  copts.strict_validity = true;
  const auto verdict = checker::check_safety(cluster.recorder().ops(), copts);
  std::printf("\nsafety check over the recorded execution: %s\n",
              verdict.ok ? "OK" : verdict.violation.c_str());
  return verdict.ok ? 0 : 1;
}
