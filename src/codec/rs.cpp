#include "codec/rs.h"

#include <cassert>
#include <unordered_set>

#include "codec/gf256.h"

namespace bftreg::codec {

RsCode::RsCode(size_t n, size_t k, RsLayout layout)
    : n_(n), k_(k), layout_(layout) {
  assert(k >= 1 && k <= n && n <= 255);
  alphas_.resize(n);
  for (size_t i = 0; i < n; ++i) alphas_[i] = gf::exp_table(static_cast<unsigned>(i));

  if (layout_ == RsLayout::kCoefficients) {
    // coded[i] = sum_j data[j] * alpha_i^j: the Vandermonde power matrix.
    gen_ = vandermonde(alphas_, k_);
  }
  if (layout_ == RsLayout::kSystematic && n_ > k_) {
    // parity = V_parity * V_data^{-1}: maps the k data symbols (values of
    // P at alpha_0..alpha_{k-1}) to the n-k parity symbols.
    std::vector<uint8_t> data_points(alphas_.begin(),
                                     alphas_.begin() + static_cast<long>(k_));
    auto inv = gf_invert(vandermonde(data_points, k_));
    assert(inv.has_value() && "Vandermonde over distinct points is invertible");
    std::vector<uint8_t> parity_points(alphas_.begin() + static_cast<long>(k_),
                                       alphas_.end());
    const GfMatrix vp = vandermonde(parity_points, k_);
    parity_ = GfMatrix(n_ - k_, k_);
    for (size_t r = 0; r < n_ - k_; ++r) {
      for (size_t c = 0; c < k_; ++c) {
        uint8_t acc = 0;
        for (size_t i = 0; i < k_; ++i) {
          acc = gf::add(acc, gf::mul(vp.at(r, i), inv->at(i, c)));
        }
        parity_.at(r, c) = acc;
      }
    }
  }
  if (layout_ == RsLayout::kSystematic) {
    // Identity rows (data passes through) stacked over the parity map.
    gen_ = GfMatrix(n_, k_);
    for (size_t i = 0; i < k_; ++i) gen_.at(i, i) = 1;
    for (size_t r = 0; r < n_ - k_; ++r) {
      for (size_t c = 0; c < k_; ++c) gen_.at(k_ + r, c) = parity_.at(r, c);
    }
  }
}

std::vector<uint8_t> RsCode::coeffs_to_data(
    const std::vector<uint8_t>& coeffs) const {
  if (layout_ == RsLayout::kCoefficients) return coeffs;
  std::vector<uint8_t> data(k_);
  for (size_t i = 0; i < k_; ++i) data[i] = poly_eval(coeffs, alphas_[i]);
  return data;
}

uint8_t poly_eval(const std::vector<uint8_t>& coeffs, uint8_t x) {
  // Horner, highest coefficient first.
  uint8_t acc = 0;
  for (size_t i = coeffs.size(); i-- > 0;) {
    acc = gf::add(gf::mul(acc, x), coeffs[i]);
  }
  return acc;
}

std::optional<std::vector<uint8_t>> poly_divide_exact(std::vector<uint8_t> num,
                                                      std::vector<uint8_t> den) {
  while (!den.empty() && den.back() == 0) den.pop_back();
  if (den.empty()) return std::nullopt;
  while (!num.empty() && num.back() == 0) num.pop_back();
  if (num.empty()) return std::vector<uint8_t>{};
  if (num.size() < den.size()) return std::nullopt;

  std::vector<uint8_t> quotient(num.size() - den.size() + 1, 0);
  const uint8_t lead_inv = gf::inv(den.back());
  for (size_t i = quotient.size(); i-- > 0;) {
    const uint8_t coef = gf::mul(num[i + den.size() - 1], lead_inv);
    quotient[i] = coef;
    if (coef == 0) continue;
    for (size_t j = 0; j < den.size(); ++j) {
      num[i + j] = gf::sub(num[i + j], gf::mul(coef, den[j]));
    }
  }
  for (size_t i = 0; i + 1 < den.size(); ++i) {
    if (num[i] != 0) return std::nullopt;  // nonzero remainder
  }
  while (!quotient.empty() && quotient.back() == 0) quotient.pop_back();
  return quotient;
}

std::vector<uint8_t> RsCode::encode_stripe(const uint8_t* data) const {
  std::vector<uint8_t> out(n_);
  if (layout_ == RsLayout::kSystematic) {
    // Data symbols pass through; only parity costs arithmetic.
    std::copy(data, data + k_, out.begin());
    for (size_t r = 0; r < n_ - k_; ++r) {
      uint8_t acc = 0;
      for (size_t c = 0; c < k_; ++c) {
        acc = gf::add(acc, gf::mul(parity_.at(r, c), data[c]));
      }
      out[k_ + r] = acc;
    }
    return out;
  }
  for (size_t i = 0; i < n_; ++i) {
    // Horner with coefficients data[0..k-1].
    uint8_t acc = 0;
    const uint8_t x = alphas_[i];
    for (size_t j = k_; j-- > 0;) {
      acc = gf::add(gf::mul(acc, x), data[j]);
    }
    out[i] = acc;
  }
  return out;
}

std::optional<std::vector<uint8_t>> RsCode::interpolate(
    const std::vector<ReceivedSymbol>& symbols) const {
  if (symbols.size() != k_) return std::nullopt;
  std::unordered_set<size_t> seen;
  std::vector<uint8_t> xs(k_);
  std::vector<uint8_t> ys(k_);
  for (size_t i = 0; i < k_; ++i) {
    if (symbols[i].position >= n_ || !seen.insert(symbols[i].position).second) {
      return std::nullopt;
    }
    xs[i] = alphas_[symbols[i].position];
    ys[i] = symbols[i].value;
  }
  return gf_solve(vandermonde(xs, k_), ys);
}

std::optional<std::vector<uint8_t>> RsCode::bw_decode(
    const std::vector<ReceivedSymbol>& symbols, size_t e_max) const {
  const size_t m = symbols.size();
  if (m < k_) return std::nullopt;
  const size_t e = std::min(e_max, max_errors(m));

  {
    std::unordered_set<size_t> seen;
    for (const auto& s : symbols) {
      if (s.position >= n_ || !seen.insert(s.position).second) return std::nullopt;
    }
  }

  if (e == 0) {
    // Plain interpolation through the first k points, then verify the rest.
    std::vector<ReceivedSymbol> head(
        symbols.begin(), symbols.begin() + static_cast<std::ptrdiff_t>(k_));
    auto coeffs = interpolate(head);
    if (!coeffs) return std::nullopt;
    coeffs->resize(k_, 0);
    for (const auto& s : symbols) {
      if (poly_eval(*coeffs, alphas_[s.position]) != s.value) return std::nullopt;
    }
    return coeffs;
  }

  // Berlekamp-Welch: find Q (deg < k+e) and monic E (deg == e) with
  //   Q(x_j) = r_j * E(x_j)   for every received point (x_j, r_j).
  // Unknowns: q_0..q_{k+e-1}, e_0..e_{e-1}  (e_e is fixed to 1).
  // Row j:  sum_i q_i x_j^i  -  r_j * sum_{i<e} e_i x_j^i  =  r_j * x_j^e.
  const size_t q_terms = k_ + e;
  const size_t unknowns = q_terms + e;
  GfMatrix a(m, unknowns);
  std::vector<uint8_t> b(m);
  for (size_t j = 0; j < m; ++j) {
    const uint8_t x = alphas_[symbols[j].position];
    const uint8_t r = symbols[j].value;
    uint8_t xp = 1;
    for (size_t i = 0; i < q_terms; ++i) {
      a.at(j, i) = xp;
      if (i < e) a.at(j, q_terms + i) = gf::mul(r, xp);  // note: add == sub in GF(2^8)
      xp = gf::mul(xp, x);
    }
    // xp now holds x^{k+e-1} * x; recompute x^e for the rhs.
    b[j] = gf::mul(r, gf::pow(x, static_cast<unsigned>(e)));
  }

  auto sol = gf_solve(std::move(a), std::move(b));
  if (!sol) return std::nullopt;

  std::vector<uint8_t> q(sol->begin(), sol->begin() + static_cast<long>(q_terms));
  std::vector<uint8_t> locator(sol->begin() + static_cast<long>(q_terms), sol->end());
  locator.push_back(1);  // monic term x^e

  auto p = poly_divide_exact(std::move(q), std::move(locator));
  if (!p) return std::nullopt;
  if (p->size() > k_) return std::nullopt;
  p->resize(k_, 0);

  // Accept only if the decoded word is within distance e of the received
  // word -- this is what makes a successful decode trustworthy.
  size_t disagreements = 0;
  for (const auto& s : symbols) {
    if (poly_eval(*p, alphas_[s.position]) != s.value) ++disagreements;
  }
  if (disagreements > e) return std::nullopt;
  return p;
}

}  // namespace bftreg::codec
