// Tests for the RB-based baseline register (n >= 3f+1) -- the comparator
// whose latency cost motivates the paper (Section I-B, Section VI / [15]).
#include <gtest/gtest.h>

#include <string>

#include "checker/consistency.h"
#include "harness/sim_cluster.h"
#include "workload/workload.h"

namespace bftreg::harness {
namespace {

using adversary::StrategyKind;
using checker::CheckOptions;
using checker::check_safety;

Bytes val(const std::string& s) { return Bytes(s.begin(), s.end()); }

ClusterOptions rb_options(size_t n, size_t f, uint64_t seed = 1) {
  ClusterOptions o;
  o.protocol = Protocol::kRb;
  o.config.n = n;
  o.config.f = f;
  o.num_writers = 2;
  o.num_readers = 2;
  o.seed = seed;
  return o;
}

TEST(RbRegisterTest, WorksWithOnly3fPlus1Servers) {
  // The whole point of assuming RB: fewer servers than BSR's 4f+1.
  SimCluster cluster(rb_options(4, 1));
  cluster.write(0, val("rb"));
  EXPECT_EQ(cluster.read(0).value, val("rb"));
}

TEST(RbRegisterTest, ReadBeforeWriteReturnsInitial) {
  SimCluster cluster(rb_options(4, 1));
  EXPECT_EQ(cluster.read(0).value, Bytes{});
}

TEST(RbRegisterTest, SequentialWorkloadReadsLatest) {
  SimCluster cluster(rb_options(7, 2, 3));
  for (int i = 0; i < 8; ++i) {
    cluster.write(i % 2, val("q" + std::to_string(i)));
    EXPECT_EQ(cluster.read(i % 2).value, val("q" + std::to_string(i)));
  }
  CheckOptions copts;
  copts.strict_validity = true;
  const auto res = check_safety(cluster.recorder().ops(), copts);
  EXPECT_TRUE(res.ok) << res.violation;
}

TEST(RbRegisterTest, SurvivesFSilentServers) {
  SimCluster cluster(rb_options(7, 2, 5));
  cluster.set_byzantine(1, StrategyKind::kSilent);
  cluster.set_byzantine(4, StrategyKind::kSilent);
  cluster.write(0, val("still-works"));
  EXPECT_EQ(cluster.read(0).value, val("still-works"));
}

TEST(RbRegisterTest, WriteLatencyIncludesRbPropagation) {
  // With fixed one-way delay d, a BSR write is 4d (two rounds). An RB write
  // pays get-tag (2d) + PUT (d) + ECHO (d) + READY (d) + ACK (d) = 6d: the
  // 1.5x blowup of Section I-B, measured end to end.
  ClusterOptions bsr;
  bsr.protocol = Protocol::kBsr;
  bsr.config.n = 5;
  bsr.config.f = 1;
  bsr.delay_lo = bsr.delay_hi = 1000;
  SimCluster bsr_cluster(bsr);
  const auto wb = bsr_cluster.write(0, val("x"));
  const TimeNs bsr_latency = wb.completed_at - wb.invoked_at;
  EXPECT_EQ(bsr_latency, 4000u);

  ClusterOptions rb = rb_options(4, 1);
  rb.delay_lo = rb.delay_hi = 1000;
  SimCluster rb_cluster(rb);
  const auto wr = rb_cluster.write(0, val("x"));
  const TimeNs rb_latency = wr.completed_at - wr.invoked_at;
  EXPECT_EQ(rb_latency, 6000u);
  EXPECT_EQ(rb_latency, bsr_latency * 3 / 2);  // exactly 1.5x
}

TEST(RbRegisterTest, ReaderWaitsOutPropagationWhenServersLag) {
  // Delay the Bracha READY messages toward two servers so they apply the
  // write late; the reader must keep waiting (via DATA-UPDATE pushes)
  // instead of returning a verified-stale answer.
  SimCluster cluster(rb_options(4, 1, 9));
  cluster.start();
  cluster.write(0, val("first"));
  cluster.sim().run_until_idle();

  auto& delay = cluster.sim().delay_model();
  delay.set_hook([](const net::Envelope& env) -> std::optional<TimeNs> {
    // Slow all server-to-server frames toward servers 2 and 3.
    if (env.from.is_server() && env.to.is_server() &&
        (env.to.index == 2 || env.to.index == 3)) {
      return TimeNs{400'000};
    }
    return std::nullopt;
  });
  cluster.write(0, val("second"));

  const auto r = cluster.read(0);
  EXPECT_EQ(r.value, val("second"));
}

TEST(RbRegisterTest, ConcurrentWritersBothLand) {
  SimCluster cluster(rb_options(4, 1, 11));
  const auto w0 = cluster.start_write(0, val("a"));
  const auto w1 = cluster.start_write(1, val("b"));
  cluster.await(w0);
  cluster.await(w1);
  EXPECT_NE(cluster.write_result(w0).tag, cluster.write_result(w1).tag);
  const auto r = cluster.read(0);
  EXPECT_TRUE(r.value == val("a") || r.value == val("b"));
}

class RbRandomScheduleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RbRandomScheduleTest, RandomExecutionIsSafe) {
  const uint64_t seed = GetParam();
  Rng rng(seed + 1000);
  const size_t f = 1 + rng.uniform(2);
  const size_t n = 3 * f + 1 + rng.uniform(2);
  SimCluster cluster(rb_options(n, f, seed));
  // Byzantine servers in the RB baseline: silent only -- an RbServer that
  // fabricates Bracha frames attacks the broadcast layer, whose resilience
  // bracha_test covers; here we exercise the register layer.
  for (size_t i = 0; i < f; ++i) {
    cluster.set_byzantine(rng.uniform(n), StrategyKind::kSilent);
  }

  std::vector<std::optional<uint64_t>> writer_op(2), reader_op(2);
  uint64_t counter = 0;
  for (int step = 0; step < 50; ++step) {
    for (auto& s : writer_op) {
      if (s && cluster.op_done(*s)) s.reset();
    }
    for (auto& s : reader_op) {
      if (s && cluster.op_done(*s)) s.reset();
    }
    const size_t c = rng.uniform(2);
    if (rng.bernoulli(0.4)) {
      if (!writer_op[c]) {
        writer_op[c] =
            cluster.start_write(c, workload::make_value(seed, counter++, 16));
      }
    } else if (!reader_op[c]) {
      reader_op[c] = cluster.start_read(c);
    }
    cluster.sim().run_until_time(cluster.sim().now() + rng.uniform(3000));
  }
  for (auto& s : writer_op) {
    if (s) cluster.await(*s);
  }
  for (auto& s : reader_op) {
    if (s) cluster.await(*s);
  }

  CheckOptions copts;
  copts.strict_validity = true;
  const auto res = check_safety(cluster.recorder().ops(), copts);
  EXPECT_TRUE(res.ok) << "seed=" << seed << ": " << res.violation << "\n"
                      << cluster.recorder().dump();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbRandomScheduleTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace bftreg::harness
