#include "registers/writeback_reader.h"

#include <cassert>

namespace bftreg::registers {

WriteBackReader::WriteBackReader(ProcessId self, SystemConfig config,
                                 net::Transport* transport, uint32_t object)
    : self_(self),
      config_(std::move(config)),
      transport_(transport),
      object_(object),
      responded_(config_.quorum()) {
  local_ = TaggedValue{Tag::initial(), config_.initial_value};
}

void WriteBackReader::start_read(Callback callback) {
  assert(phase_ == Phase::kIdle && "at most one operation per client");
  phase_ = Phase::kGetData;
  callback_ = std::move(callback);
  invoked_at_ = transport_->now();
  ++op_id_;
  responded_.reset();
  responses_.clear();
  fresh_ = false;

  RegisterMessage query;
  query.type = MsgType::kQueryData;
  query.op_id = op_id_;
  query.object = object_;
  const Bytes payload = query.encode();
  for (uint32_t i = 0; i < config_.n; ++i) {
    transport_->send(self_, ProcessId::server(i), payload);
  }
}

void WriteBackReader::on_message(const net::Envelope& env) {
  if (!env.from.is_server()) return;
  auto msg = RegisterMessage::parse(env.payload);
  if (!msg || msg->op_id != op_id_ || msg->object != object_) return;
  switch (msg->type) {
    case MsgType::kDataResp:
      on_data_resp(env.from, *msg);
      break;
    case MsgType::kAck:
      on_ack(env.from, *msg);
      break;
    default:
      break;
  }
}

void WriteBackReader::on_data_resp(const ProcessId& from,
                                   const RegisterMessage& msg) {
  if (phase_ != Phase::kGetData) return;
  if (!responded_.add(from)) return;
  responses_.emplace(from, TaggedValue{msg.tag, msg.value});
  if (responded_.reached()) begin_write_back();
}

void WriteBackReader::begin_write_back() {
  // Fig. 2's selection: the highest pair with f+1 witnesses, if it beats
  // the local pair.
  std::map<TaggedValue, size_t> witnesses;
  for (const auto& [server, pair] : responses_) ++witnesses[pair];
  const TaggedValue* best = nullptr;
  for (const auto& [pair, count] : witnesses) {
    if (count >= config_.witness_threshold()) best = &pair;  // ascending map
  }
  if (best != nullptr && best->tag > local_.tag) {
    local_ = *best;
    fresh_ = true;
  }

  // Phase two: write the chosen pair back before returning it, pinning
  // every later read's quorum to at least this pair.
  phase_ = Phase::kWriteBack;
  responded_.reset();
  RegisterMessage put;
  put.type = MsgType::kPutData;
  put.op_id = op_id_;
  put.object = object_;
  put.tag = local_.tag;
  put.value = local_.value;
  const Bytes payload = put.encode();
  for (uint32_t i = 0; i < config_.n; ++i) {
    transport_->send(self_, ProcessId::server(i), payload);
  }
}

void WriteBackReader::on_ack(const ProcessId& from, const RegisterMessage& msg) {
  if (phase_ != Phase::kWriteBack) return;
  if (msg.tag != local_.tag) return;
  if (!responded_.add(from)) return;
  if (responded_.reached()) finish(fresh_);
}

void WriteBackReader::finish(bool fresh) {
  phase_ = Phase::kIdle;
  ReadResult result;
  result.value = local_.value;
  result.tag = local_.tag;
  result.fresh = fresh;
  result.invoked_at = invoked_at_;
  result.completed_at = transport_->now();
  result.rounds = 2;
  Callback cb = std::move(callback_);
  callback_ = nullptr;
  if (cb) cb(result);
}

}  // namespace bftreg::registers
