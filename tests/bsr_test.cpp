// Integration and property tests for BSR (Section III): the MWMR
// replicated safe register with one-shot reads, n >= 4f+1.
#include <gtest/gtest.h>

#include <string>

#include "checker/consistency.h"
#include "harness/sim_cluster.h"
#include "workload/workload.h"

namespace bftreg::harness {
namespace {

using adversary::StrategyKind;
using checker::CheckOptions;
using checker::check_regularity;
using checker::check_safety;

Bytes val(const std::string& s) { return Bytes(s.begin(), s.end()); }

ClusterOptions bsr_options(size_t n, size_t f, uint64_t seed = 1,
                           size_t writers = 2, size_t readers = 2) {
  ClusterOptions o;
  o.protocol = Protocol::kBsr;
  o.config.n = n;
  o.config.f = f;
  o.num_writers = writers;
  o.num_readers = readers;
  o.seed = seed;
  return o;
}

CheckOptions bsr_check() {
  CheckOptions c;
  c.strict_validity = true;  // BSR guarantees validity via f+1 witnesses
  return c;
}

TEST(BsrTest, ReadBeforeAnyWriteReturnsInitialValue) {
  SimCluster cluster(bsr_options(5, 1));
  const auto r = cluster.read(0);
  EXPECT_EQ(r.value, Bytes{});
  EXPECT_EQ(r.tag, Tag::initial());
  EXPECT_FALSE(r.fresh);
}

TEST(BsrTest, ReadAfterWriteReturnsWrittenValue) {
  SimCluster cluster(bsr_options(5, 1));
  const auto w = cluster.write(0, val("hello"));
  EXPECT_EQ(w.tag.num, 1u);
  EXPECT_EQ(w.tag.writer, ProcessId::writer(0));
  const auto r = cluster.read(0);
  EXPECT_EQ(r.value, val("hello"));
  EXPECT_EQ(r.tag, w.tag);
  EXPECT_TRUE(r.fresh);
}

TEST(BsrTest, WriteTakesTwoRoundsReadTakesOne) {
  // Definition 3 / Section I-D: the headline one-shot-read property.
  SimCluster cluster(bsr_options(5, 1));
  const auto w = cluster.write(0, val("x"));
  EXPECT_EQ(w.rounds, 2);
  const auto r = cluster.read(0);
  EXPECT_EQ(r.rounds, 1);
}

TEST(BsrTest, OneShotReadMessageComplexity) {
  // One-shot read = n requests + at most n replies, nothing else.
  SimCluster cluster(bsr_options(5, 1));
  cluster.write(0, val("x"));
  cluster.sim().run_until_idle();
  const auto before = cluster.sim().metrics().snapshot();
  cluster.read(0);
  cluster.sim().run_until_idle();
  const auto after = cluster.sim().metrics().snapshot();
  EXPECT_EQ(after.messages_sent - before.messages_sent, 2 * 5u);
}

TEST(BsrTest, SequentialWritesGetStrictlyIncreasingTags) {
  // Lemma 2, Case 1.
  SimCluster cluster(bsr_options(5, 1));
  Tag prev = Tag::initial();
  for (int i = 0; i < 10; ++i) {
    const auto w = cluster.write(i % 2, val("v" + std::to_string(i)));
    EXPECT_GT(w.tag, prev);
    prev = w.tag;
  }
}

TEST(BsrTest, ReadsAlwaysSeeLatestCompletedWrite) {
  SimCluster cluster(bsr_options(9, 2));
  for (int i = 0; i < 8; ++i) {
    cluster.write(i % 2, val("gen" + std::to_string(i)));
    const auto r = cluster.read(i % 2);
    EXPECT_EQ(r.value, val("gen" + std::to_string(i)));
  }
  const auto res = check_safety(cluster.recorder().ops(), bsr_check());
  EXPECT_TRUE(res.ok) << res.violation;
}

TEST(BsrTest, ConcurrentWritersGetDistinctTags) {
  // Lemma 2, Case 2: concurrent writes are ordered, ties broken by id.
  SimCluster cluster(bsr_options(5, 1, 7));
  const uint64_t w0 = cluster.start_write(0, val("from-w0"));
  const uint64_t w1 = cluster.start_write(1, val("from-w1"));
  cluster.await(w0);
  cluster.await(w1);
  EXPECT_NE(cluster.write_result(w0).tag, cluster.write_result(w1).tag);
}

TEST(BsrTest, LivenessWithFCrashedServers) {
  // Theorem 1: everything completes with n-f live servers.
  SimCluster cluster(bsr_options(5, 1));
  cluster.start();
  cluster.crash_server(4);
  const auto w = cluster.write(0, val("survives"));
  const auto r = cluster.read(0);
  EXPECT_EQ(r.value, val("survives"));
  EXPECT_EQ(w.rounds, 2);
}

TEST(BsrTest, LivenessWithFByzantineAndWorkload) {
  SimCluster cluster(bsr_options(9, 2, 3));
  cluster.set_byzantine(0, StrategyKind::kSilent);
  cluster.set_byzantine(5, StrategyKind::kFabricate);
  for (int i = 0; i < 6; ++i) {
    cluster.write(0, val("w" + std::to_string(i)));
    EXPECT_EQ(cluster.read(1).value, val("w" + std::to_string(i)));
  }
}

TEST(BsrTest, FabricatedTagsCannotInflateWriterTags) {
  // The (f+1)-th highest selection caps tag growth at honest reality.
  SimCluster cluster(bsr_options(5, 1, 11));
  cluster.set_byzantine(2, StrategyKind::kFabricate);  // reports tags ~1e9
  Tag prev = Tag::initial();
  for (uint64_t i = 1; i <= 5; ++i) {
    const auto w = cluster.write(0, val("x"));
    EXPECT_EQ(w.tag.num, i) << "tag must advance by exactly 1 per write";
    EXPECT_GT(w.tag, prev);
    prev = w.tag;
  }
}

TEST(BsrTest, ColludingServersCannotForgeAValue) {
  // f colluders answer reads with an identical fabricated pair; with the
  // f+1 witness threshold the lie never wins (Lemma 5 rationale).
  SimCluster cluster(bsr_options(9, 2, 13));
  cluster.set_byzantine(1, std::make_unique<adversary::ColludeStrategy>(555));
  cluster.set_byzantine(7, std::make_unique<adversary::ColludeStrategy>(555));
  cluster.write(0, val("truth"));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(cluster.read(0).value, val("truth"));
  }
  const auto res = check_safety(cluster.recorder().ops(), bsr_check());
  EXPECT_TRUE(res.ok) << res.violation;
}

TEST(BsrTest, ReaderLocalStateIsMonotone) {
  // Fig. 2 line 7: the reader never goes backward across its own reads.
  SimCluster cluster(bsr_options(5, 1, 17));
  cluster.set_byzantine(3, StrategyKind::kStale);
  Tag prev = Tag::initial();
  for (int i = 0; i < 6; ++i) {
    cluster.write(0, val("m" + std::to_string(i)));
    const auto r = cluster.read(0);
    EXPECT_GE(r.tag, prev);
    prev = r.tag;
  }
}

TEST(BsrTest, MalformedRepliesAreSurvived) {
  SimCluster cluster(bsr_options(5, 1, 19));
  cluster.set_byzantine(0, StrategyKind::kMalformed);
  cluster.write(0, val("ok"));
  EXPECT_EQ(cluster.read(0).value, val("ok"));
}

TEST(BsrTest, DoubleRepliesAreDeduplicated) {
  SimCluster cluster(bsr_options(5, 1, 23));
  cluster.set_byzantine(1, StrategyKind::kDoubleReply);
  cluster.write(0, val("dd"));
  EXPECT_EQ(cluster.read(0).value, val("dd"));
  const auto res = check_safety(cluster.recorder().ops(), bsr_check());
  EXPECT_TRUE(res.ok) << res.violation;
}

// ---------------------------------------------------------------- sweeps

struct AdversarySweepParam {
  StrategyKind kind;
  size_t n;
  size_t f;
};

class BsrAdversarySweep : public ::testing::TestWithParam<AdversarySweepParam> {};

TEST_P(BsrAdversarySweep, SequentialWorkloadStaysSafeUnderFByzantine) {
  const auto [kind, n, f] = GetParam();
  SimCluster cluster(bsr_options(n, f, 31 + n * 3 + f));
  // Place f Byzantine servers at spread positions.
  for (size_t i = 0; i < f; ++i) {
    cluster.set_byzantine((i * 4 + 1) % n, kind);
  }
  for (int i = 0; i < 10; ++i) {
    cluster.write(i % 2, val("s" + std::to_string(i)));
    const auto r = cluster.read(i % 2);
    // No concurrency: safety forces the exact latest value.
    EXPECT_EQ(r.value, val("s" + std::to_string(i)))
        << to_string(kind) << " n=" << n << " f=" << f;
  }
  const auto res = check_safety(cluster.recorder().ops(), bsr_check());
  EXPECT_TRUE(res.ok) << res.violation << "\n" << cluster.recorder().dump();
}

std::vector<AdversarySweepParam> adversary_sweep_params() {
  std::vector<AdversarySweepParam> out;
  for (StrategyKind kind : adversary::kAllStrategyKinds) {
    out.push_back({kind, 5, 1});
    out.push_back({kind, 9, 2});
    out.push_back({kind, 13, 3});
    out.push_back({kind, 17, 4});
    out.push_back({kind, 23, 5});  // n > 4f+1: slack beyond the bound
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, BsrAdversarySweep,
                         ::testing::ValuesIn(adversary_sweep_params()),
                         [](const auto& info) {
                           std::string name = to_string(info.param.kind);
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name + "_n" + std::to_string(info.param.n);
                         });

// Randomized concurrent executions, checked for safety. This is the
// workhorse property test: random interleavings of reads and writes with
// random Byzantine strategies and random network delays, all deterministic
// in the seed.
class BsrRandomScheduleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BsrRandomScheduleTest, RandomConcurrentExecutionIsSafe) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const size_t f = 1 + rng.uniform(2);
  const size_t n = 4 * f + 1 + rng.uniform(3);
  ClusterOptions opts = bsr_options(n, f, seed, /*writers=*/3, /*readers=*/3);
  SimCluster cluster(opts);
  for (size_t i = 0; i < f; ++i) {
    const auto kind = adversary::kAllStrategyKinds[rng.uniform(
        std::size(adversary::kAllStrategyKinds))];
    cluster.set_byzantine(rng.uniform(n), kind);  // may overlap; still <= f
  }

  // Per-client outstanding op (the model allows one op per client).
  std::vector<std::optional<uint64_t>> writer_op(3), reader_op(3);
  uint64_t write_counter = 0;
  auto reap = [&](std::vector<std::optional<uint64_t>>& slots) {
    for (auto& slot : slots) {
      if (slot && cluster.op_done(*slot)) slot.reset();
    }
  };
  for (int step = 0; step < 80; ++step) {
    reap(writer_op);
    reap(reader_op);
    const size_t client = rng.uniform(3);
    if (rng.bernoulli(0.4)) {
      if (!writer_op[client]) {
        writer_op[client] = cluster.start_write(
            client, workload::make_value(seed, write_counter++, 24));
      }
    } else if (!reader_op[client]) {
      reader_op[client] = cluster.start_read(client);
    }
    // Advance virtual time a random amount so ops interleave mid-flight.
    cluster.sim().run_until_time(cluster.sim().now() + rng.uniform(4000));
  }
  for (auto& slot : writer_op) {
    if (slot) cluster.await(*slot);
  }
  for (auto& slot : reader_op) {
    if (slot) cluster.await(*slot);
  }

  CheckOptions copts = bsr_check();
  const auto res = check_safety(cluster.recorder().ops(), copts);
  EXPECT_TRUE(res.ok) << "seed=" << seed << ": " << res.violation << "\n"
                      << cluster.recorder().dump();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BsrRandomScheduleTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace bftreg::harness
