#include "registers/history_reader.h"

#include <cassert>
#include <set>

namespace bftreg::registers {

HistoryReader::HistoryReader(ProcessId self, SystemConfig config,
                             net::Transport* transport, uint32_t object)
    : self_(self),
      config_(std::move(config)),
      transport_(transport),
      object_(object),
      responded_(config_.quorum()) {
  local_ = TaggedValue{Tag::initial(), config_.initial_value};
}

void HistoryReader::start_read(Callback callback) {
  assert(!reading_ && "at most one operation per client");
  reading_ = true;
  callback_ = std::move(callback);
  invoked_at_ = transport_->now();
  ++op_id_;
  responded_.reset();
  witnesses_.clear();

  RegisterMessage query;
  query.type = MsgType::kQueryHistory;
  query.op_id = op_id_;
  query.object = object_;
  const Bytes payload = query.encode();
  for (uint32_t i = 0; i < config_.n; ++i) {
    transport_->send(self_, ProcessId::server(i), payload);
  }
}

void HistoryReader::on_message(const net::Envelope& env) {
  if (!reading_ || !env.from.is_server()) return;
  auto msg = RegisterMessage::parse(env.payload);
  if (!msg || msg->type != MsgType::kHistoryResp || msg->op_id != op_id_ ||
      msg->object != object_) {
    return;
  }
  if (!responded_.add(env.from)) return;

  // A server witnesses each *distinct* pair in its history once; a
  // Byzantine history repeating one pair a thousand times counts once.
  std::set<TaggedValue> distinct(msg->history.begin(), msg->history.end());
  for (const auto& pair : distinct) ++witnesses_[pair];

  if (responded_.reached()) finish();
}

void HistoryReader::finish() {
  const TaggedValue* best = nullptr;
  for (const auto& [pair, count] : witnesses_) {
    if (count >= config_.witness_threshold()) best = &pair;  // ascending map
  }

  bool fresh = false;
  if (best != nullptr && best->tag > local_.tag) {
    local_ = *best;
    fresh = true;
  }

  reading_ = false;
  ReadResult result;
  result.value = local_.value;
  result.tag = local_.tag;
  result.fresh = fresh;
  result.invoked_at = invoked_at_;
  result.completed_at = transport_->now();
  result.rounds = 1;
  Callback cb = std::move(callback_);
  callback_ = nullptr;
  if (cb) cb(result);
}

}  // namespace bftreg::registers
