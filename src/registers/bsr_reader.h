// BSR one-shot read protocol: Fig. 2.
//
// A single get-data phase: QUERY-DATA to all servers, wait for n-f
// DATA-RESPs, build P = the set of (tag, value) pairs reported identically
// by at least f+1 servers (the "witness" rule of Section III: f+1 matching
// reports pin at least one honest server behind the pair). Return the
// highest pair of P if it beats the reader's local pair, else the local
// pair (initially (t0, v0)).
//
// One round of client-to-server communication -- Definition 3's one-shot
// read -- which is the paper's headline property.
//
// This class is the low-level, single-operation client: one object, one
// operation at a time (start_read asserts the paper's well-formedness).
// The protocol logic lives in BsrReadOp (protocol_ops.h); applications
// wanting many concurrent operations should use RegisterClient (client.h),
// which runs the same ops through the same multiplexer without the
// one-at-a-time restriction.
#pragma once

#include <functional>

#include "net/transport.h"
#include "registers/config.h"
#include "registers/op_mux.h"
#include "registers/protocol_ops.h"
#include "registers/results.h"

namespace bftreg::registers {

class BsrReader : public net::IProcess {
 public:
  using Callback = std::function<void(const ReadResult&)>;

  BsrReader(ProcessId self, SystemConfig config, net::Transport* transport,
            uint32_t object = 0);

  /// Begins a read. Must run in this process's execution context.
  void start_read(Callback callback);

  void on_message(const net::Envelope& env) override { mux_.on_message(env); }

  bool busy() const { return !mux_.idle(); }
  const ProcessId& id() const { return mux_.id(); }

  /// The reader's persistent local pair (t_local, v_local) of Fig. 2.
  const Tag& local_tag() const { return state_.local.tag; }
  const Bytes& local_value() const { return state_.local.value; }

 private:
  OpMux mux_;
  const uint32_t object_;
  LocalState state_;
};

}  // namespace bftreg::registers
