// Pairwise-key message authentication.
//
// `KeyRegistry` plays the role of the PKI / signature scheme [19] assumed by
// the paper: every ordered pair of processes shares a symmetric key derived
// from a master secret that the adversary does not know. `Authenticator`
// seals payloads with a MAC binding (sender, receiver, payload); a Byzantine
// server can replay or garble its *own* messages but cannot forge a MAC for
// a message claiming to come from another process.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "crypto/siphash.h"

namespace bftreg::crypto {

using MacTag = uint64_t;

/// Derives the pairwise channel keys from a master secret. Stateless:
/// keys are recomputed on demand, so the registry is trivially copyable
/// and safe to share across threads.
class KeyRegistry {
 public:
  explicit KeyRegistry(uint64_t master_secret) : master_(master_secret) {}

  /// Key for the directed channel `from -> to`.
  SipHashKey channel_key(const ProcessId& from, const ProcessId& to) const;

 private:
  uint64_t master_;
};

class Authenticator {
 public:
  explicit Authenticator(KeyRegistry registry) : registry_(registry) {}

  /// MAC over (from, to, payload) under the from->to channel key.
  MacTag seal(const ProcessId& from, const ProcessId& to, BytesView payload) const;

  /// True iff `mac` is a valid seal for (from, to, payload).
  bool verify(const ProcessId& from, const ProcessId& to, BytesView payload,
              MacTag mac) const;

 private:
  KeyRegistry registry_;
};

}  // namespace bftreg::crypto
