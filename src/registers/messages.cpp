#include "registers/messages.h"

#include "common/serde.h"

namespace bftreg::registers {

namespace {
constexpr uint8_t kMinType = static_cast<uint8_t>(MsgType::kQueryTag);
constexpr uint8_t kMaxType = static_cast<uint8_t>(MsgType::kViewAnnounce);
}  // namespace

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kQueryTag: return "QUERY-TAG";
    case MsgType::kTagResp: return "TAG-RESP";
    case MsgType::kPutData: return "PUT-DATA";
    case MsgType::kAck: return "ACK";
    case MsgType::kQueryData: return "QUERY-DATA";
    case MsgType::kDataResp: return "DATA-RESP";
    case MsgType::kQueryHistory: return "QUERY-HISTORY";
    case MsgType::kHistoryResp: return "HISTORY-RESP";
    case MsgType::kQueryTagHistory: return "QUERY-TAG-HISTORY";
    case MsgType::kTagHistoryResp: return "TAG-HISTORY-RESP";
    case MsgType::kQueryDataAt: return "QUERY-DATA-AT";
    case MsgType::kDataAtResp: return "DATA-AT-RESP";
    case MsgType::kDataAtMissing: return "DATA-AT-MISSING";
    case MsgType::kReadDone: return "READ-DONE";
    case MsgType::kRbEcho: return "RB-ECHO";
    case MsgType::kRbReady: return "RB-READY";
    case MsgType::kDataUpdate: return "DATA-UPDATE";
    case MsgType::kQueryDataBatch: return "QUERY-DATA-BATCH";
    case MsgType::kDataBatchResp: return "DATA-BATCH-RESP";
    case MsgType::kQueryObjects: return "QUERY-OBJECTS";
    case MsgType::kObjectsResp: return "OBJECTS-RESP";
    case MsgType::kViewAnnounce: return "VIEW-ANNOUNCE";
  }
  return "?";
}

Bytes RegisterMessage::encode() const {
  // Exact wire size, so the buffer is allocated once and the (often large)
  // coded elements append without any realloc re-copy: fixed fields 13 +
  // tag 13 + 4 length prefixes + trailing epoch 8, plus 17 per history
  // entry (tag + length prefix), 13 per tag, 4 per object id, plus the raw
  // payload bytes.
  size_t total = 13 + 13 + 4 * 4 + 8 + value.size();
  for (const auto& tv : history) total += 17 + tv.value.size();
  for (const auto& [t, v] : history_views) total += 17 + v.size();
  total += 13 * tags.size() + 4 * objects.size();

  Serializer s;
  s.reserve(total);
  s.put_u8(static_cast<uint8_t>(type));
  s.put_u64(op_id);
  s.put_u32(object);
  s.put_tag(tag);
  s.put_bytes(value);
  // Owned and borrowed history entries share one wire count; the receiver
  // cannot tell (nor care) which representation the sender held.
  const size_t owned = history.size();
  s.put_u32(static_cast<uint32_t>(owned + history_views.size()));
  for (size_t i = 0; i < owned + history_views.size(); ++i) {
    const Tag& t = i < owned ? history[i].tag : history_views[i - owned].first;
    const BytesView v = i < owned ? BytesView(history[i].value)
                                  : history_views[i - owned].second;
    s.put_tag(t);
    s.put_bytes(v);
  }
  s.put_u32(static_cast<uint32_t>(tags.size()));
  for (const auto& t : tags) s.put_tag(t);
  s.put_u32(static_cast<uint32_t>(objects.size()));
  for (const uint32_t o : objects) s.put_u32(o);
  s.put_u64(epoch);
  return s.take();
}

std::optional<RegisterMessage> RegisterMessage::parse(BytesView payload) {
  Deserializer d(payload);
  RegisterMessage m;
  const uint8_t type = d.get_u8();
  if (!d.ok() || type < kMinType || type > kMaxType) return std::nullopt;
  m.type = static_cast<MsgType>(type);
  m.op_id = d.get_u64();
  m.object = d.get_u32();
  m.tag = d.get_tag();
  // Large payloads (coded elements) flow through the zero-copy view and
  // land in their owning vector with exactly one copy.
  const BytesView value = d.get_bytes_view();
  m.value.assign(value.begin(), value.end());

  const uint32_t history_count = d.get_u32();
  if (!d.ok()) return std::nullopt;
  // Each entry needs at least a tag (13 bytes) + length prefix (4); a count
  // larger than the remaining bytes could allow is a forgery.
  if (static_cast<size_t>(history_count) * 17 > d.remaining()) return std::nullopt;
  m.history.reserve(history_count);
  for (uint32_t i = 0; i < history_count; ++i) {
    TaggedValue tv;
    tv.tag = d.get_tag();
    const BytesView hv = d.get_bytes_view();
    if (!d.ok()) return std::nullopt;
    tv.value.assign(hv.begin(), hv.end());
    m.history.push_back(std::move(tv));
  }

  const uint32_t tag_count = d.get_u32();
  if (!d.ok()) return std::nullopt;
  if (static_cast<size_t>(tag_count) * 13 > d.remaining()) return std::nullopt;
  m.tags.reserve(tag_count);
  for (uint32_t i = 0; i < tag_count; ++i) {
    m.tags.push_back(d.get_tag());
  }

  const uint32_t object_count = d.get_u32();
  if (!d.ok()) return std::nullopt;
  if (static_cast<size_t>(object_count) * 4 > d.remaining()) return std::nullopt;
  m.objects.reserve(object_count);
  for (uint32_t i = 0; i < object_count; ++i) m.objects.push_back(d.get_u32());

  m.epoch = d.get_u64();

  if (!d.done()) return std::nullopt;
  return m;
}

}  // namespace bftreg::registers
