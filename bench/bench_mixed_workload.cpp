// E3 -- mixed read/write workloads (paper claim: Section I + footnote 1,
// "read requests form around 99.8% of all operations", so making reads
// cheaper than writes is the right trade).
//
// Closed-loop clients (each issues its next op when the previous completes)
// run mixes from write-heavy to the TAO mix over each protocol; we report
// virtual-time throughput and mean operation latency. Expected shape: the
// semi-fast protocols' advantage over both the two-round variant and the RB
// baseline grows with the read ratio, and is largest at 99.8% reads.
#include "bench_util.h"

using namespace bftreg;
using namespace bftreg::bench;

namespace {

struct MixResult {
  double ops_per_ms{0};
  double mean_read_us{0};
  double mean_write_us{0};
};

MixResult run_mix(harness::Protocol protocol, size_t f, double read_ratio,
                  size_t total_ops, uint64_t seed) {
  const size_t n = harness::min_servers(protocol, f);
  auto options = make_options(protocol, n, f, seed, 500, 1500);
  options.num_writers = 2;
  options.num_readers = 2;
  harness::SimCluster cluster(options);

  workload::WorkloadOptions wo;
  wo.read_ratio = read_ratio;
  wo.num_ops = total_ops;
  wo.value_size = 64;
  wo.seed = seed;
  workload::WorkloadGenerator gen(wo);

  // Four closed-loop clients (2 writers, 2 readers); reads and writes are
  // drawn from the mix and dispatched to an idle client of the right kind.
  std::vector<std::optional<uint64_t>> wop(2), rop(2);
  Samples read_lat, write_lat;
  const TimeNs start = cluster.sim().now();

  auto reap = [&](std::vector<std::optional<uint64_t>>& slots, Samples& lat,
                  bool is_read) {
    for (auto& s : slots) {
      if (s && cluster.op_done(*s)) {
        if (is_read) {
          const auto& r = cluster.read_result(*s);
          lat.add(static_cast<double>(r.completed_at - r.invoked_at));
        } else {
          const auto& w = cluster.write_result(*s);
          lat.add(static_cast<double>(w.completed_at - w.invoked_at));
        }
        s.reset();
      }
    }
  };

  std::optional<workload::Op> queued;
  while (!gen.done() || queued) {
    reap(wop, write_lat, false);
    reap(rop, read_lat, true);
    if (!queued && !gen.done()) queued = gen.next();
    if (queued) {
      auto& slots = queued->is_read ? rop : wop;
      for (size_t c = 0; c < slots.size() && queued; ++c) {
        if (!slots[c]) {
          if (queued->is_read) {
            slots[c] = cluster.start_read(c);
          } else {
            slots[c] = cluster.start_write(c, std::move(queued->value));
          }
          queued.reset();
        }
      }
    }
    if (!cluster.sim().step()) break;  // drive one event at a time
  }
  for (auto& s : wop) {
    if (s) cluster.await(*s);
  }
  for (auto& s : rop) {
    if (s) cluster.await(*s);
  }
  reap(wop, write_lat, false);
  reap(rop, read_lat, true);

  MixResult out;
  const double elapsed_ms =
      static_cast<double>(cluster.sim().now() - start) / 1'000'000.0;
  out.ops_per_ms = elapsed_ms > 0 ? static_cast<double>(total_ops) / elapsed_ms : 0;
  out.mean_read_us = read_lat.mean() / 1000.0;
  out.mean_write_us = write_lat.mean() / 1000.0;
  return out;
}

}  // namespace

int main() {
  std::printf("E3: mixed workloads (closed loop, 2 writers + 2 readers)\n");
  std::printf("1000 ops per cell, uniform delay 500-1500 ns, f = 1\n\n");

  const double ratios[] = {0.5, 0.9, 0.998};
  const harness::Protocol protocols[] = {
      harness::Protocol::kBsr, harness::Protocol::kBsrHistory,
      harness::Protocol::kBsr2R, harness::Protocol::kBcsr, harness::Protocol::kRb};

  TextTable table({"protocol", "read ratio", "ops/ms (virtual)", "mean read (us)",
                   "mean write (us)"});
  for (const auto protocol : protocols) {
    for (const double ratio : ratios) {
      const auto res = run_mix(protocol, 1, ratio, 1000, 7);
      table.add_row({to_string(protocol), TextTable::fmt(ratio, 3),
                     TextTable::fmt(res.ops_per_ms, 2),
                     TextTable::fmt(res.mean_read_us, 2),
                     TextTable::fmt(res.mean_write_us, 2)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape check: at 99.8%% reads, throughput tracks read cost almost\n"
      "exclusively -- the one-shot protocols (BSR, history, BCSR) beat the\n"
      "two-round reader, and the baseline's RB write tax stops mattering\n"
      "while its read path still lags under write interference.\n");
  return 0;
}
