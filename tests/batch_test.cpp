// Tests for the batched multi-get extension: one one-shot round reading
// many shared variables, each with the full f+1 witness guarantee.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "adversary/byzantine_server.h"
#include "registers/registers.h"
#include "sim/simulator.h"

namespace bftreg::registers {
namespace {

Bytes val(const std::string& s) { return Bytes(s.begin(), s.end()); }

class BatchFixture : public ::testing::Test {
 protected:
  static constexpr size_t kN = 5;

  BatchFixture() : sim_(sim::SimConfig::with_uniform_delay(11, 100, 500)) {
    config_.n = kN;
    config_.f = 1;
    for (uint32_t i = 0; i < kN; ++i) {
      servers_.push_back(std::make_unique<RegisterServer>(ProcessId::server(i),
                                                          config_, &sim_, Bytes{}));
      sim_.add_process(ProcessId::server(i), servers_.back().get());
    }
    reader_ = std::make_unique<BatchReader>(ProcessId::reader(0), config_, &sim_);
    sim_.add_process(ProcessId::reader(0), reader_.get());
  }

  void make_byzantine(uint32_t index, adversary::StrategyKind kind) {
    adversary::ServerContext ctx;
    ctx.self = ProcessId::server(index);
    ctx.config = config_;
    ctx.transport = &sim_;
    ctx.rng = Rng(777);
    byzantine_ = std::make_unique<adversary::ByzantineServer>(
        std::move(ctx), adversary::make_strategy(kind, 777));
    sim_.add_process(ProcessId::server(index), byzantine_.get());
  }

  void write(uint32_t object, uint64_t num, Bytes v) {
    auto writer = std::make_unique<BsrWriter>(
        ProcessId::writer(next_writer_), config_, &sim_, object);
    sim_.add_process(ProcessId::writer(next_writer_), writer.get());
    ++next_writer_;
    bool done = false;
    writer->start_write(std::move(v), [&](const WriteResult& w) {
      EXPECT_EQ(w.tag.num, num);
      done = true;
    });
    EXPECT_TRUE(sim_.run_until([&] { return done; }));
    writers_.push_back(std::move(writer));
  }

  BatchReadResult read_batch(std::vector<uint32_t> objects) {
    BatchReadResult out;
    bool done = false;
    reader_->start_read(std::move(objects), [&](const BatchReadResult& r) {
      out = r;
      done = true;
    });
    EXPECT_TRUE(sim_.run_until([&] { return done; }));
    return out;
  }

  sim::Simulator sim_;
  SystemConfig config_;
  std::vector<std::unique_ptr<RegisterServer>> servers_;
  std::vector<std::unique_ptr<BsrWriter>> writers_;
  std::unique_ptr<adversary::ByzantineServer> byzantine_;
  std::unique_ptr<BatchReader> reader_;
  uint32_t next_writer_{0};
};

TEST_F(BatchFixture, MultiGetReturnsPerObjectValues) {
  write(1, 1, val("one"));
  write(2, 1, val("two"));
  write(3, 1, val("three"));
  const auto batch = read_batch({1, 2, 3, 4});
  ASSERT_EQ(batch.results.size(), 4u);
  EXPECT_EQ(batch.results[0].value, val("one"));
  EXPECT_EQ(batch.results[1].value, val("two"));
  EXPECT_EQ(batch.results[2].value, val("three"));
  EXPECT_EQ(batch.results[3].value, Bytes{});  // untouched object: v0
  EXPECT_EQ(batch.rounds, 1);
}

TEST_F(BatchFixture, BatchIsOneRoundOfMessages) {
  write(1, 1, val("x"));
  sim_.run_until_idle();
  const auto before = sim_.metrics().snapshot().messages_sent;
  read_batch({1, 2, 3, 4, 5, 6, 7, 8});
  sim_.run_until_idle();
  const auto after = sim_.metrics().snapshot().messages_sent;
  // n requests + n responses, independent of the batch width.
  EXPECT_EQ(after - before, 2 * kN);
}

TEST_F(BatchFixture, WitnessRuleHoldsPerObjectUnderByzantine) {
  make_byzantine(2, adversary::StrategyKind::kFabricate);
  write(1, 1, val("real-1"));
  write(2, 1, val("real-2"));
  const auto batch = read_batch({1, 2});
  EXPECT_EQ(batch.results[0].value, val("real-1"));
  EXPECT_EQ(batch.results[1].value, val("real-2"));
}

TEST_F(BatchFixture, LocalStateIsMonotonePerObject) {
  write(1, 1, val("a"));
  auto b1 = read_batch({1});
  EXPECT_EQ(b1.results[0].tag.num, 1u);
  write(1, 2, val("b"));
  auto b2 = read_batch({1});
  EXPECT_EQ(b2.results[0].tag.num, 2u);
  EXPECT_GE(b2.results[0].tag, b1.results[0].tag);
}

TEST_F(BatchFixture, RepeatedObjectsInOneBatchAreAnswered) {
  write(7, 1, val("dup"));
  const auto batch = read_batch({7, 7});
  ASSERT_EQ(batch.results.size(), 2u);
  EXPECT_EQ(batch.results[0].value, val("dup"));
  EXPECT_EQ(batch.results[1].value, val("dup"));
}

TEST_F(BatchFixture, TruncatedBatchResponsesAreIgnored) {
  // A Byzantine server answering with a mismatched object list must not be
  // counted toward the quorum (its per-index vouching is meaningless).
  // With one server silent-by-mismatch the batch still completes off the
  // other n-f honest servers.
  make_byzantine(4, adversary::StrategyKind::kMalformed);
  write(1, 1, val("ok"));
  const auto batch = read_batch({1});
  EXPECT_EQ(batch.results[0].value, val("ok"));
}

}  // namespace
}  // namespace bftreg::registers
