// BCSR: Byzantine Coded Safe Register (Section IV, Figs. 4-6).
//
// Single-writer multi-reader safe register storing [n, k] MDS coded
// elements, k = n - 5f. The write is Fig. 1's two phases except PUT-DATA
// carries the per-server coded element Phi_i(v) (Fig. 4 line 7). The read
// (Fig. 5) is one-shot: collect n-f coded elements and run the
// error-correcting decoder Phi^{-1}; among the received elements at most
// (n-f) - (n-3f) = 2f are erroneous (Byzantine-corrupted or stale), which
// is exactly the decoder's budget (Lemma 4).
//
// The emulation tolerates multiple writers as long as their writes are
// never concurrent (paper, footnote 2); concurrent writes may cause a
// decode failure, in which case the read falls back to the reader's last
// decoded value (initially v0) -- consistent with Definition 1(ii).
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "codec/mds_code.h"
#include "net/transport.h"
#include "registers/bsr_reader.h"
#include "registers/bsr_writer.h"
#include "registers/config.h"

namespace bftreg::registers {

/// Builds the per-server initial elements Phi_i(v0) that BCSR servers are
/// seeded with (Fig. 6: L initially {(t0, c0^s)}).
std::vector<Bytes> bcsr_initial_elements(const SystemConfig& config);

class BcsrWriter final : public BsrWriter {
 public:
  BcsrWriter(ProcessId self, SystemConfig config, net::Transport* transport,
             uint32_t object = 0);

 protected:
  /// Fig. 4 line 7: server i receives (tag, Phi_i(v)).
  void send_put_data(const Tag& tag) override;

 private:
  codec::MdsCode code_;
};

class BcsrReader final : public net::IProcess {
 public:
  using Callback = std::function<void(const ReadResult&)>;

  BcsrReader(ProcessId self, SystemConfig config, net::Transport* transport,
             uint32_t object = 0);

  void start_read(Callback callback);
  void on_message(const net::Envelope& env) override;

  bool busy() const { return reading_; }
  const ProcessId& id() const { return self_; }
  uint64_t decode_failures() const { return decode_failures_; }

 private:
  void finish();

  const ProcessId self_;
  const SystemConfig config_;
  net::Transport* const transport_;
  const uint32_t object_;
  codec::MdsCode code_;

  Bytes last_value_;  // falls back here when decoding is impossible

  bool reading_{false};
  uint64_t op_id_{0};
  QuorumTracker responded_;
  std::vector<std::optional<Bytes>> elements_;  // index = server position
  Callback callback_;
  TimeNs invoked_at_{0};
  uint64_t decode_failures_{0};
};

}  // namespace bftreg::registers
