#include "registers/two_round_reader.h"

#include <cassert>

namespace bftreg::registers {

TwoRoundReader::TwoRoundReader(ProcessId self, SystemConfig config,
                               net::Transport* transport, uint32_t object)
    : self_(self),
      config_(std::move(config)),
      transport_(transport),
      object_(object),
      responded_(config_.quorum()) {
  local_ = TaggedValue{Tag::initial(), config_.initial_value};
}

void TwoRoundReader::start_read(Callback callback) {
  assert(phase_ == Phase::kIdle && "at most one operation per client");
  phase_ = Phase::kGetTag;
  callback_ = std::move(callback);
  invoked_at_ = transport_->now();
  ++op_id_;
  responded_.reset();
  tag_votes_.clear();
  value_votes_.clear();

  RegisterMessage query;
  query.type = MsgType::kQueryTagHistory;
  query.op_id = op_id_;
  query.object = object_;
  const Bytes payload = query.encode();
  for (uint32_t i = 0; i < config_.n; ++i) {
    transport_->send(self_, ProcessId::server(i), payload);
  }
}

void TwoRoundReader::on_message(const net::Envelope& env) {
  if (!env.from.is_server()) return;
  auto msg = RegisterMessage::parse(env.payload);
  if (!msg || msg->op_id != op_id_ || msg->object != object_) return;
  switch (msg->type) {
    case MsgType::kTagHistoryResp:
      on_tag_history(env.from, *msg);
      break;
    case MsgType::kDataAtResp:
      on_data_at(env.from, *msg);
      break;
    case MsgType::kDataAtMissing:
      // Provisional: the server will answer again when it learns the tag.
      break;
    default:
      break;
  }
}

void TwoRoundReader::on_tag_history(const ProcessId& from,
                                    const RegisterMessage& msg) {
  if (phase_ != Phase::kGetTag) return;
  if (!responded_.add(from)) return;
  for (const Tag& t : msg.tags) tag_votes_[t].insert(from);
  if (responded_.reached()) begin_get_data();
}

void TwoRoundReader::begin_get_data() {
  // Largest tag vouched by >= f+1 servers. t0 always qualifies (every
  // honest server's history contains it), so a target always exists.
  target_ = Tag::initial();
  for (const auto& [tag, voters] : tag_votes_) {
    if (voters.size() >= config_.witness_threshold()) target_ = tag;  // ascending
  }

  phase_ = Phase::kGetData;
  RegisterMessage query;
  query.type = MsgType::kQueryDataAt;
  query.op_id = op_id_;
  query.object = object_;
  query.tag = target_;
  const Bytes payload = query.encode();
  for (uint32_t i = 0; i < config_.n; ++i) {
    transport_->send(self_, ProcessId::server(i), payload);
  }
}

void TwoRoundReader::on_data_at(const ProcessId& from, const RegisterMessage& msg) {
  if (phase_ != Phase::kGetData) return;
  if (msg.tag != target_) return;  // Byzantine answer for a different tag
  auto& voters = value_votes_[msg.value];
  voters.insert(from);
  if (voters.size() < config_.witness_threshold()) return;

  bool fresh = false;
  if (target_ > local_.tag) {
    local_ = TaggedValue{target_, msg.value};
    fresh = true;
  }
  finish(fresh);
}

void TwoRoundReader::finish(bool fresh) {
  phase_ = Phase::kIdle;

  // Cancel the deferred QUERY-DATA-AT replies left behind at the servers.
  RegisterMessage done;
  done.type = MsgType::kReadDone;
  done.op_id = op_id_;
  done.object = object_;
  const Bytes payload = done.encode();
  for (uint32_t i = 0; i < config_.n; ++i) {
    transport_->send(self_, ProcessId::server(i), payload);
  }

  ReadResult result;
  result.value = local_.value;
  result.tag = local_.tag;
  result.fresh = fresh;
  result.invoked_at = invoked_at_;
  result.completed_at = transport_->now();
  result.rounds = 2;
  Callback cb = std::move(callback_);
  callback_ = nullptr;
  if (cb) cb(result);
}

}  // namespace bftreg::registers
