#include "codec/mds_code.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "codec/gf256.h"
#include "common/types.h"
#include "registers/config.h"

namespace bftreg::codec {

namespace {

constexpr size_t kHeaderBytes = 8;  // u32 length + u32 checksum

uint32_t value_checksum(const Bytes& v) {
  return static_cast<uint32_t>(fnv1a64(v.data(), v.size()) & 0xffffffffu);
}

}  // namespace

MdsCode::MdsCode(size_t n, size_t k, RsLayout layout) : rs_(n, k, layout) {}

MdsCode MdsCode::for_bcsr(size_t n, size_t f, RsLayout layout) {
  assert(n >= registers::bcsr_min_servers(f) && "BCSR requires n >= 5f + 1");
  return MdsCode(n, registers::bcsr_code_dimension(n, f), layout);
}

size_t MdsCode::element_size(size_t value_size) const {
  const size_t payload = value_size + kHeaderBytes;
  return (payload + k() - 1) / k();
}

std::vector<Bytes> MdsCode::encode(const Bytes& value) const {
  const size_t stripes = element_size(value.size());
  const size_t kk = k();

  // payload = [len u32][checksum u32][value][zero padding]
  std::vector<uint8_t> payload(stripes * kk, 0);
  const auto len = static_cast<uint32_t>(value.size());
  const uint32_t sum = value_checksum(value);
  for (size_t i = 0; i < 4; ++i) payload[i] = static_cast<uint8_t>(len >> (8 * i));
  for (size_t i = 0; i < 4; ++i) payload[4 + i] = static_cast<uint8_t>(sum >> (8 * i));
  std::copy(value.begin(), value.end(), payload.begin() + kHeaderBytes);

  std::vector<Bytes> elements(n(), Bytes(stripes));
  for (size_t s = 0; s < stripes; ++s) {
    const std::vector<uint8_t> coded = rs_.encode_stripe(payload.data() + s * kk);
    for (size_t i = 0; i < n(); ++i) elements[i][s] = coded[i];
  }
  return elements;
}

struct MdsCode::Group {
  size_t size{0};                   // element size (== stripe count)
  std::vector<size_t> positions;    // server indices with this size
};

std::optional<Bytes> MdsCode::decode(
    const std::vector<std::optional<Bytes>>& elements) const {
  assert(elements.size() == n());

  // Bucket present elements by size; a Byzantine server lying about the
  // element size lands in a minority bucket and is simply excluded, which
  // costs it its vote but cannot corrupt a majority-size decode.
  std::map<size_t, Group> groups;
  for (size_t i = 0; i < n(); ++i) {
    if (!elements[i] || elements[i]->empty()) continue;
    Group& g = groups[elements[i]->size()];
    g.size = elements[i]->size();
    g.positions.push_back(i);
  }

  std::vector<const Group*> ordered;
  ordered.reserve(groups.size());
  for (const auto& [sz, g] : groups) ordered.push_back(&g);
  std::sort(ordered.begin(), ordered.end(), [](const Group* a, const Group* b) {
    if (a->positions.size() != b->positions.size()) {
      return a->positions.size() > b->positions.size();
    }
    return a->size > b->size;
  });

  for (const Group* g : ordered) {
    if (g->positions.size() < k()) continue;
    if (auto v = decode_group_impl(g, elements)) return v;
  }
  return std::nullopt;
}

// Out-of-line helper so the header stays minimal. Decodes one same-size
// bucket with the fast interpolation path and a Berlekamp-Welch fallback.
std::optional<Bytes> MdsCode::decode_group_impl(
    const Group* g, const std::vector<std::optional<Bytes>>& elements) const {
  const size_t stripes = g->size;
  const size_t m = g->positions.size();
  const size_t e_budget = rs_.max_errors(m);
  const size_t kk = k();

  auto symbol_at = [&](size_t stripe) {
    std::vector<ReceivedSymbol> syms;
    syms.reserve(m);
    for (size_t pos : g->positions) {
      syms.push_back(ReceivedSymbol{pos, (*elements[pos])[stripe]});
    }
    return syms;
  };

  // Stripe 0 via Berlekamp-Welch establishes the trusted position set; the
  // set (and its interpolation matrix) is rebuilt whenever a later stripe
  // proves it wrong -- e.g. a stale element that happens to agree with the
  // fresh codeword on the early stripes but diverges afterwards. Each
  // rebuild costs one O(k^3) inversion; an adversary can force at most one
  // rebuild per corrupted element pattern, so the amortized per-stripe
  // cost stays at the O(k^2) interpolation fast path.
  std::vector<size_t> good;
  std::optional<GfMatrix> inv;
  auto rebuild_trusted = [&](const std::vector<uint8_t>& coeffs,
                             size_t stripe) -> bool {
    good.clear();
    for (size_t pos : g->positions) {
      if (poly_eval(coeffs, rs_.alpha(pos)) == (*elements[pos])[stripe]) {
        good.push_back(pos);
      }
    }
    if (good.size() < kk) return false;
    std::vector<uint8_t> xs(kk);
    for (size_t i = 0; i < kk; ++i) xs[i] = rs_.alpha(good[i]);
    inv = gf_invert(vandermonde(xs, kk));
    return inv.has_value();
  };

  auto first = rs_.bw_decode(symbol_at(0), e_budget);
  if (!first || !rebuild_trusted(*first, 0)) return std::nullopt;

  std::vector<uint8_t> payload(stripes * kk);
  {
    const auto data0 = rs_.coeffs_to_data(*first);
    for (size_t j = 0; j < kk; ++j) payload[j] = data0[j];
  }

  std::vector<uint8_t> ys(kk);
  for (size_t s = 1; s < stripes; ++s) {
    for (size_t i = 0; i < kk; ++i) ys[i] = (*elements[good[i]])[s];
    std::vector<uint8_t> coeffs = inv->apply(ys);

    // Verify against every trusted position; a miss means this stripe's
    // error pattern differs -- fall back to full B-W and re-learn which
    // positions to trust.
    bool consistent = true;
    for (size_t pos : good) {
      if (poly_eval(coeffs, rs_.alpha(pos)) != (*elements[pos])[s]) {
        consistent = false;
        break;
      }
    }
    if (!consistent) {
      auto fixed = rs_.bw_decode(symbol_at(s), e_budget);
      if (!fixed || !rebuild_trusted(*fixed, s)) return std::nullopt;
      coeffs = std::move(*fixed);
    }
    const auto data = rs_.coeffs_to_data(coeffs);
    for (size_t j = 0; j < kk; ++j) payload[s * kk + j] = data[j];
  }
  return finish(payload);
}

std::optional<Bytes> MdsCode::finish(const std::vector<uint8_t>& payload) const {
  if (payload.size() < kHeaderBytes) return std::nullopt;
  uint32_t len = 0;
  uint32_t sum = 0;
  for (size_t i = 0; i < 4; ++i) len |= static_cast<uint32_t>(payload[i]) << (8 * i);
  for (size_t i = 0; i < 4; ++i)
    sum |= static_cast<uint32_t>(payload[4 + i]) << (8 * i);
  if (len > payload.size() - kHeaderBytes) return std::nullopt;
  Bytes value(payload.begin() + kHeaderBytes,
              payload.begin() + kHeaderBytes + len);
  if (value_checksum(value) != sum) return std::nullopt;
  return value;
}

}  // namespace bftreg::codec
