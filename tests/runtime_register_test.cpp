// End-to-end register protocols on the REAL-TIME thread runtime: the same
// state machines that the simulator tests exercise, now on OS threads with
// wall-clock delays -- validating the central design decision that protocol
// code is transport-agnostic (DESIGN.md §6.1).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "harness/thread_cluster.h"
#include "registers/registers.h"
#include "runtime/thread_network.h"

namespace bftreg::registers {
namespace {

Bytes val(const std::string& s) { return Bytes(s.begin(), s.end()); }

/// A full BSR deployment over ThreadNetwork.
class RuntimeBsr {
 public:
  RuntimeBsr(size_t n, size_t f, TimeNs delay_lo = 0, TimeNs delay_hi = 0,
             size_t server_shards = 1) {
    runtime::RuntimeConfig rc;
    rc.seed = 11;
    if (delay_hi > 0) {
      rc.delay = std::make_unique<net::UniformDelay>(delay_lo, delay_hi);
    }
    net_ = std::make_unique<runtime::ThreadNetwork>(std::move(rc));
    config_.n = n;
    config_.f = f;
    config_.server_shards = server_shards;
    for (uint32_t i = 0; i < n; ++i) {
      servers_.push_back(std::make_unique<RegisterServer>(ProcessId::server(i),
                                                          config_, net_.get(),
                                                          Bytes{}));
      net_->add_process(ProcessId::server(i), servers_.back().get());
    }
  }

  ~RuntimeBsr() { net_->stop(); }

  void add_writer(uint32_t i) {
    writers_.push_back(std::make_unique<BsrWriter>(ProcessId::writer(i), config_,
                                                   net_.get()));
    net_->add_process(ProcessId::writer(i), writers_.back().get());
  }
  void add_reader(uint32_t i) {
    readers_.push_back(std::make_unique<BsrReader>(ProcessId::reader(i), config_,
                                                   net_.get()));
    net_->add_process(ProcessId::reader(i), readers_.back().get());
  }
  void start() { net_->start(); }

  WriteResult write(size_t w, Bytes value) {
    WriteResult out;
    runtime::BlockingInvoker invoker(*net_);
    invoker.run(ProcessId::writer(static_cast<uint32_t>(w)),
                [&](std::function<void()> done) {
                  writers_[w]->start_write(std::move(value),
                                           [&out, done](const WriteResult& r) {
                                             out = r;
                                             done();
                                           });
                });
    return out;
  }

  ReadResult read(size_t r) {
    ReadResult out;
    runtime::BlockingInvoker invoker(*net_);
    invoker.run(ProcessId::reader(static_cast<uint32_t>(r)),
                [&](std::function<void()> done) {
                  readers_[r]->start_read([&out, done](const ReadResult& res) {
                    out = res;
                    done();
                  });
                });
    return out;
  }

  runtime::ThreadNetwork& net() { return *net_; }

 private:
  SystemConfig config_;
  std::unique_ptr<runtime::ThreadNetwork> net_;
  std::vector<std::unique_ptr<RegisterServer>> servers_;
  std::vector<std::unique_ptr<BsrWriter>> writers_;
  std::vector<std::unique_ptr<BsrReader>> readers_;
};

TEST(RuntimeRegisterTest, WriteThenReadOnRealThreads) {
  RuntimeBsr cluster(5, 1);
  cluster.add_writer(0);
  cluster.add_reader(0);
  cluster.start();
  const auto w = cluster.write(0, val("threads"));
  EXPECT_EQ(w.tag.num, 1u);
  EXPECT_EQ(cluster.read(0).value, val("threads"));
}

TEST(RuntimeRegisterTest, SurvivesCrashedServerOnThreads) {
  RuntimeBsr cluster(5, 1);
  cluster.add_writer(0);
  cluster.add_reader(0);
  cluster.start();
  cluster.net().mark_crashed(ProcessId::server(2));
  cluster.write(0, val("minus-one"));
  EXPECT_EQ(cluster.read(0).value, val("minus-one"));
}

TEST(RuntimeRegisterTest, SequentialWritesReadLatest) {
  RuntimeBsr cluster(5, 1, 10'000, 100'000);  // 10-100us delays
  cluster.add_writer(0);
  cluster.add_reader(0);
  cluster.start();
  for (int i = 0; i < 10; ++i) {
    cluster.write(0, val("gen" + std::to_string(i)));
    EXPECT_EQ(cluster.read(0).value, val("gen" + std::to_string(i)));
  }
}

TEST(RuntimeRegisterTest, ConcurrentClientsFromDifferentThreads) {
  // Two writer client threads and two reader client threads hammer the
  // register concurrently; every read must return some written value or
  // v0 (validity) -- checked inline.
  RuntimeBsr cluster(5, 1);
  cluster.add_writer(0);
  cluster.add_writer(1);
  cluster.add_reader(0);
  cluster.add_reader(1);
  cluster.start();

  std::vector<Bytes> legal;
  legal.push_back({});  // v0
  for (int i = 0; i < 40; ++i) legal.push_back(val("w" + std::to_string(i)));

  std::atomic<int> next{0};
  auto writer_thread = [&](size_t w) {
    for (int i = 0; i < 20; ++i) {
      cluster.write(w, legal[static_cast<size_t>(1 + next.fetch_add(1))]);
    }
  };
  std::atomic<bool> ok{true};
  auto reader_thread = [&](size_t r) {
    for (int i = 0; i < 20; ++i) {
      const auto res = cluster.read(r);
      bool found = false;
      for (const auto& v : legal) found = found || v == res.value;
      if (!found) ok.store(false);
    }
  };
  std::thread tw0(writer_thread, 0);
  std::thread tw1(writer_thread, 1);
  std::thread tr0(reader_thread, 0);
  std::thread tr1(reader_thread, 1);
  tw0.join();
  tw1.join();
  tr0.join();
  tr1.join();
  EXPECT_TRUE(ok.load());
}

TEST(RuntimeRegisterTest, ShardedServersOnRealThreads) {
  // Each server runs 4 delivery shards (4 mailbox threads apiece): the
  // envelope-peek routing, per-shard object tables, and seqlock newest
  // caches all run on real OS threads here, not just the simulator.
  RuntimeBsr cluster(5, 1, 0, 0, /*server_shards=*/4);
  cluster.add_writer(0);
  cluster.add_writer(1);
  cluster.add_reader(0);
  cluster.start();
  for (int i = 0; i < 8; ++i) {
    const auto v = val("shard" + std::to_string(i));
    cluster.write(static_cast<size_t>(i % 2), v);
    EXPECT_EQ(cluster.read(0).value, v);
  }
}

TEST(RuntimeRegisterTest, BcsrDecodesOnRealThreads) {
  runtime::RuntimeConfig rc;
  rc.seed = 13;
  runtime::ThreadNetwork net(std::move(rc));
  SystemConfig cfg;
  cfg.n = 6;
  cfg.f = 1;
  const auto initial = bcsr_initial_elements(cfg);
  std::vector<std::unique_ptr<RegisterServer>> servers;
  for (uint32_t i = 0; i < cfg.n; ++i) {
    servers.push_back(std::make_unique<RegisterServer>(ProcessId::server(i), cfg,
                                                       &net, initial[i]));
    net.add_process(ProcessId::server(i), servers.back().get());
  }
  BcsrWriter writer(ProcessId::writer(0), cfg, &net);
  BcsrReader reader(ProcessId::reader(0), cfg, &net);
  net.add_process(ProcessId::writer(0), &writer);
  net.add_process(ProcessId::reader(0), &reader);
  net.start();

  const Bytes payload(5000, 0x5C);
  runtime::BlockingInvoker invoker(net);
  invoker.run(ProcessId::writer(0), [&](std::function<void()> done) {
    writer.start_write(payload, [done](const WriteResult&) { done(); });
  });
  Bytes got;
  invoker.run(ProcessId::reader(0), [&](std::function<void()> done) {
    reader.start_read([&got, done](const ReadResult& r) {
      got = r.value;
      done();
    });
  });
  EXPECT_EQ(got, payload);
  net.stop();
}

TEST(ThreadClusterTest, AllProtocolsWorkOnRealThreads) {
  for (auto protocol :
       {harness::Protocol::kBsr, harness::Protocol::kBsrHistory,
        harness::Protocol::kBsr2R, harness::Protocol::kBcsr,
        harness::Protocol::kRb, harness::Protocol::kBsrWb}) {
    harness::ThreadClusterOptions o;
    o.protocol = protocol;
    o.config.f = 1;
    o.config.n = harness::min_servers(protocol, 1);
    o.num_writers = 1;
    o.num_readers = 1;
    harness::ThreadCluster cluster(o);
    cluster.set_byzantine(o.config.n - 1, adversary::StrategyKind::kStale);
    cluster.write(0, val("tc-" + std::string(harness::to_string(protocol))));
    const auto r = cluster.read(0);
    EXPECT_EQ(r.value, val("tc-" + std::string(harness::to_string(protocol))))
        << harness::to_string(protocol);
    cluster.stop();
  }
}

TEST(ThreadClusterTest, ConcurrentClientThreads) {
  harness::ThreadClusterOptions o;
  o.protocol = harness::Protocol::kBsr;
  o.config.n = 5;
  o.config.f = 1;
  o.num_writers = 2;
  o.num_readers = 2;
  harness::ThreadCluster cluster(o);
  std::atomic<bool> ok{true};
  auto writer_loop = [&](size_t w) {
    for (int i = 0; i < 15; ++i) {
      cluster.write(w, Bytes{static_cast<uint8_t>(i)});
    }
  };
  auto reader_loop = [&](size_t r) {
    for (int i = 0; i < 15; ++i) {
      const auto res = cluster.read(r);
      if (res.value.size() > 1) ok.store(false);  // only 1-byte values written
    }
  };
  std::thread t1(writer_loop, 0), t2(writer_loop, 1);
  std::thread t3(reader_loop, 0), t4(reader_loop, 1);
  t1.join();
  t2.join();
  t3.join();
  t4.join();
  EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace bftreg::registers
