// kv_store: a Byzantine-tolerant key-value store on real threads.
//
// The paper motivates safe registers with geo-replicated key-value storage
// (Cassandra, Redis; Section I). This example runs ONE five-server BSR
// cluster on the thread-per-process runtime (actual OS threads, wall-clock
// delays) and multiplexes every key over it as a separate shared variable
// (object id) -- the model's "finite set of shared variables" of Section
// II-B. One server is Byzantine throughout. The store is then driven with
// the read-heavy mix from the paper's TAO footnote (99.8% reads), printing
// wall-clock latency percentiles that show why one-shot reads matter.
//
//   ./build/examples/kv_store
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adversary/byzantine_server.h"
#include "common/stats.h"
#include "registers/registers.h"
#include "runtime/thread_network.h"
#include "workload/workload.h"

using namespace bftreg;

namespace {

/// One 5-server BSR cluster serving arbitrarily many keys: each key maps
/// to an object id; a writer/reader client pair is created lazily per key.
class KvStore {
 public:
  /// `max_keys` client pairs are registered up front: processes cannot
  /// join a running ThreadNetwork (as in a real deployment, clients are
  /// provisioned with their key ranges).
  explicit KvStore(size_t max_keys) {
    runtime::RuntimeConfig rc;
    rc.seed = 7;
    // Emulate a fast LAN: 50-200 microseconds one-way.
    rc.delay = std::make_unique<net::UniformDelay>(50'000, 200'000);
    net_ = std::make_unique<runtime::ThreadNetwork>(std::move(rc));

    config_.n = 5;
    config_.f = 1;
    for (uint32_t i = 0; i + 1 < config_.n; ++i) {
      servers_.push_back(std::make_unique<registers::RegisterServer>(
          ProcessId::server(i), config_, net_.get(), Bytes{}));
      net_->add_process(ProcessId::server(i), servers_.back().get());
    }
    // The last server is Byzantine: it fabricates tags and values for
    // every key. The f+1 witness rule makes it irrelevant.
    adversary::ServerContext ctx;
    ctx.self = ProcessId::server(4);
    ctx.config = config_;
    ctx.transport = net_.get();
    ctx.rng = Rng(999);
    byzantine_ = std::make_unique<adversary::ByzantineServer>(
        std::move(ctx), adversary::make_strategy(
                            adversary::StrategyKind::kFabricate, 999));
    net_->add_process(ProcessId::server(4), byzantine_.get());

    for (uint32_t object = 0; object < max_keys; ++object) {
      writer_pool_.push_back(std::make_unique<registers::BsrWriter>(
          ProcessId::writer(object), config_, net_.get(), object));
      reader_pool_.push_back(std::make_unique<registers::BsrReader>(
          ProcessId::reader(object), config_, net_.get(), object));
      net_->add_process(ProcessId::writer(object), writer_pool_.back().get());
      net_->add_process(ProcessId::reader(object), reader_pool_.back().get());
    }
    net_->start();
  }

  ~KvStore() { net_->stop(); }

  void put(const std::string& key, const std::string& value) {
    auto& s = slot(key);
    runtime::BlockingInvoker invoker(*net_);
    invoker.run(s.writer_id, [&](std::function<void()> done) {
      s.writer->start_write(Bytes(value.begin(), value.end()),
                            [done](const registers::WriteResult&) { done(); });
    });
  }

  std::string get(const std::string& key) {
    auto& s = slot(key);
    std::string out;
    runtime::BlockingInvoker invoker(*net_);
    invoker.run(s.reader_id, [&](std::function<void()> done) {
      s.reader->start_read([&out, done](const registers::ReadResult& r) {
        out.assign(r.value.begin(), r.value.end());
        done();
      });
    });
    return out;
  }

  size_t keys() const { return slots_.size(); }

 private:
  struct Slot {
    ProcessId writer_id;
    ProcessId reader_id;
    std::unique_ptr<registers::BsrWriter> writer;
    std::unique_ptr<registers::BsrReader> reader;
  };

  Slot& slot(const std::string& key) {
    auto it = slots_.find(key);
    if (it != slots_.end()) return it->second;

    const auto object = static_cast<uint32_t>(slots_.size());
    Slot s;
    s.writer_id = ProcessId::writer(object);
    s.reader_id = ProcessId::reader(object);
    s.writer = std::move(writer_pool_.at(object));
    s.reader = std::move(reader_pool_.at(object));
    return slots_.emplace(key, std::move(s)).first->second;
  }

  registers::SystemConfig config_;
  std::unique_ptr<runtime::ThreadNetwork> net_;
  std::vector<std::unique_ptr<registers::RegisterServer>> servers_;
  std::unique_ptr<adversary::ByzantineServer> byzantine_;
  std::vector<std::unique_ptr<registers::BsrWriter>> writer_pool_;
  std::vector<std::unique_ptr<registers::BsrReader>> reader_pool_;
  std::map<std::string, Slot> slots_;
};

}  // namespace

int main() {
  std::printf(
      "byzantine-tolerant kv store\n"
      "one BSR cluster (n=5, f=1, server 4 Byzantine), one object id per key,\n"
      "real threads, 50-200us one-way delays\n\n");

  KvStore store(/*max_keys=*/8);

  store.put("user:42", "{\"name\":\"ada\"}");
  store.put("user:43", "{\"name\":\"grace\"}");
  store.put("counter", "0");
  std::printf("get user:42 -> %s\n", store.get("user:42").c_str());
  std::printf("get user:43 -> %s\n", store.get("user:43").c_str());
  std::printf("get counter -> %s\n\n", store.get("counter").c_str());

  // TAO-style read-heavy traffic (99.8% reads, Section I footnote 1)
  // against one hot key.
  auto opts = workload::WorkloadOptions::facebook_tao(500, 48);
  workload::WorkloadGenerator gen(opts);
  Samples read_lat;
  Samples write_lat;
  uint64_t version = 0;
  while (!gen.done()) {
    const auto op = gen.next();
    const auto t0 = std::chrono::steady_clock::now();
    if (op.is_read) {
      (void)store.get("user:42");
    } else {
      store.put("user:42", "v" + std::to_string(version++));
    }
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    (op.is_read ? read_lat : write_lat).add(us);
  }

  std::printf("TAO mix (%zu ops, %.1f%% reads) wall-clock latency per op:\n",
              opts.num_ops, opts.read_ratio * 100);
  std::printf("  reads : n=%zu  median=%.0f us  p99=%.0f us\n", read_lat.count(),
              read_lat.median(), read_lat.p99());
  if (write_lat.count() > 0) {
    std::printf("  writes: n=%zu  median=%.0f us  p99=%.0f us\n",
                write_lat.count(), write_lat.median(), write_lat.p99());
  }
  std::printf("\none-shot reads cost one round trip; writes cost two -- the\n"
              "read-heavy mix is exactly where BSR's trade-off pays off.\n");
  return 0;
}
