// Project-specific lint rules for bftreg (see tools/bftreg_lint.cpp for the
// CLI driver and tests/lint_test.cpp for the fixture).
//
// The rules encode conventions that the compiler cannot check but that the
// protocol correctness argument leans on:
//
//   raw-thread          std::thread outside src/runtime, src/socknet,
//                       src/harness -- protocol code must stay
//                       single-threaded per process; only the transports
//                       and the harness may spawn threads.
//   detach              .detach() anywhere -- detached threads outlive
//                       their network and turn shutdown into a race.
//   raw-random          rand()/srand()/std::random_device outside
//                       src/common/rng.h -- all randomness must flow
//                       through the seeded Rng so executions replay.
//   unguarded-mutex     a mutex member with no GUARDED_BY(name) companion
//                       in the same file -- every lock must write down what
//                       it protects.
//   resilience-literal  `k * f` resilience arithmetic outside
//                       src/registers/config.h -- the 4f+1 / 5f+1 / 3f+1
//                       bounds live in exactly one place.
//   lock-order          a nested `MutexLock` scope that acquires against a
//                       declared ACQUIRED_BEFORE / ACQUIRED_AFTER edge --
//                       lock-order inversions are the one class the clang
//                       thread-safety analysis and TSan both only catch
//                       dynamically, so the declared order is checked
//                       statically here (direct edges, no transitivity).
//   legacy-single-op    a `.busy()` / `->busy()` call outside
//                       src/registers/ -- busy() is the low-level clients'
//                       one-operation-at-a-time guard; new code should go
//                       through RegisterClient, whose multiplexer runs any
//                       number of operations concurrently (client.h).
//   blocking-in-lock    a blocking syscall (`::sendmsg`, `::recv`,
//                       `::connect`, ...) or framed-I/O helper
//                       (write_all/read_exact) inside a MutexLock scope --
//                       I/O under a lock serializes every thread contending
//                       on that mutex behind the kernel (the old transport's
//                       write_all-under-mutex was exactly this); stage data
//                       under the lock, release, then perform the syscall.
//
// A finding can be waived by putting `bftreg-lint: allow(<rule>)` in a
// comment on the offending line or the line directly above it, with a
// justification.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace bftreg::lint {

struct Violation {
  std::string file;  // path as given to lint_content (repo-relative)
  int line{0};       // 1-based
  std::string rule;
  std::string message;
};

/// Declared acquisition order: order["a"] contains "b" iff `a` must be
/// acquired before `b` (from `ACQUIRED_BEFORE` / `ACQUIRED_AFTER`
/// annotations on mutex members). Mutexes are identified by their bare
/// member name -- `box->mu` and `mu` are the same lock for this purpose.
using LockOrder = std::map<std::string, std::set<std::string>>;

/// Extracts the ACQUIRED_BEFORE / ACQUIRED_AFTER edges declared in one
/// file's contents (comments stripped first).
LockOrder collect_lock_order(const std::string& content);

/// Runs every rule over one file's contents. `rel_path` must be
/// repo-relative with forward slashes (e.g. "src/codec/rs.cpp") -- the
/// path-scoped rules key off it. The two-argument form checks lock order
/// against the edges declared in the same file; `lint_tree` collects edges
/// from every header first and passes the merged order.
std::vector<Violation> lint_content(const std::string& rel_path,
                                    const std::string& content);
std::vector<Violation> lint_content(const std::string& rel_path,
                                    const std::string& content,
                                    const LockOrder& order);

/// Scans `<repo_root>/src` recursively for .h/.cpp files and lints each.
/// Returns all violations; I/O errors throw std::runtime_error.
std::vector<Violation> lint_tree(const std::string& repo_root);

/// "path:line: [rule] message" -- one line, compiler-style.
std::string format(const Violation& v);

}  // namespace bftreg::lint
