// Unit + property tests for the GF(2^8) / Reed-Solomon / Berlekamp-Welch /
// MdsCode stack (the paper's Phi and Phi^{-1}, Section IV-A).
#include <gtest/gtest.h>

#include <optional>

#include "codec/gf256.h"
#include "codec/gf_linalg.h"
#include "codec/mds_code.h"
#include "codec/rs.h"
#include "common/rng.h"

namespace bftreg::codec {
namespace {

// ---------------------------------------------------------------- GF(2^8)

TEST(Gf256Test, AddIsXor) {
  EXPECT_EQ(gf::add(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(gf::add(0, 0xFF), 0xFF);
}

TEST(Gf256Test, MulByZeroAndOne) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(gf::mul(static_cast<uint8_t>(a), 0), 0);
    EXPECT_EQ(gf::mul(static_cast<uint8_t>(a), 1), a);
  }
}

TEST(Gf256Test, MulCommutesAndAssociates) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<uint8_t>(rng.uniform(256));
    const auto b = static_cast<uint8_t>(rng.uniform(256));
    const auto c = static_cast<uint8_t>(rng.uniform(256));
    EXPECT_EQ(gf::mul(a, b), gf::mul(b, a));
    EXPECT_EQ(gf::mul(gf::mul(a, b), c), gf::mul(a, gf::mul(b, c)));
  }
}

TEST(Gf256Test, MulDistributesOverAdd) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<uint8_t>(rng.uniform(256));
    const auto b = static_cast<uint8_t>(rng.uniform(256));
    const auto c = static_cast<uint8_t>(rng.uniform(256));
    EXPECT_EQ(gf::mul(a, gf::add(b, c)), gf::add(gf::mul(a, b), gf::mul(a, c)));
  }
}

TEST(Gf256Test, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto inv = gf::inv(static_cast<uint8_t>(a));
    EXPECT_EQ(gf::mul(static_cast<uint8_t>(a), inv), 1) << "a=" << a;
  }
}

TEST(Gf256Test, DivIsMulByInverse) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<uint8_t>(rng.uniform(256));
    const auto b = static_cast<uint8_t>(1 + rng.uniform(255));
    EXPECT_EQ(gf::div(a, b), gf::mul(a, gf::inv(b)));
  }
}

TEST(Gf256Test, PowMatchesRepeatedMul) {
  for (int a = 0; a < 256; a += 7) {
    uint8_t acc = 1;
    for (unsigned p = 0; p < 12; ++p) {
      EXPECT_EQ(gf::pow(static_cast<uint8_t>(a), p), acc);
      acc = gf::mul(acc, static_cast<uint8_t>(a));
    }
  }
}

TEST(Gf256Test, GeneratorHasFullOrder) {
  // g = 2 generates all 255 nonzero elements.
  std::set<uint8_t> seen;
  for (unsigned i = 0; i < 255; ++i) seen.insert(gf::exp_table(i));
  EXPECT_EQ(seen.size(), 255u);
  EXPECT_EQ(seen.count(0), 0u);
}

// ------------------------------------------------------------- Linear algebra

TEST(GfLinalgTest, SolveIdentity) {
  GfMatrix a(3, 3);
  for (int i = 0; i < 3; ++i) a.at(i, i) = 1;
  auto x = gf_solve(a, {5, 6, 7});
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(*x, (std::vector<uint8_t>{5, 6, 7}));
}

TEST(GfLinalgTest, SolveRandomInvertibleSystems) {
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.uniform(8);
    GfMatrix a(n, n);
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < n; ++c) {
        a.at(r, c) = static_cast<uint8_t>(rng.uniform(256));
      }
    }
    std::vector<uint8_t> x_true(n);
    for (auto& v : x_true) v = static_cast<uint8_t>(rng.uniform(256));
    const auto b = a.apply(x_true);
    auto x = gf_solve(a, b);
    ASSERT_TRUE(x.has_value());
    // The system may be singular (random matrix); verify Ax = b rather
    // than x == x_true.
    EXPECT_EQ(a.apply(*x), b);
  }
}

TEST(GfLinalgTest, DetectsInconsistentSystem) {
  GfMatrix a(2, 1);
  a.at(0, 0) = 1;
  a.at(1, 0) = 1;
  EXPECT_FALSE(gf_solve(a, {1, 2}).has_value());
}

TEST(GfLinalgTest, OverdeterminedConsistentSystem) {
  GfMatrix a(3, 1);
  a.at(0, 0) = 2;
  a.at(1, 0) = 4;
  a.at(2, 0) = 8;
  const uint8_t x = 0x1b;
  auto sol = gf_solve(a, {gf::mul(2, x), gf::mul(4, x), gf::mul(8, x)});
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ((*sol)[0], x);
}

TEST(GfLinalgTest, InvertRoundTrip) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.uniform(6);
    // Vandermonde over distinct points is always invertible.
    std::vector<uint8_t> xs;
    while (xs.size() < n) {
      const auto v = static_cast<uint8_t>(1 + rng.uniform(255));
      if (std::find(xs.begin(), xs.end(), v) == xs.end()) xs.push_back(v);
    }
    const GfMatrix v = vandermonde(xs, n);
    auto inv = gf_invert(v);
    ASSERT_TRUE(inv.has_value());
    std::vector<uint8_t> e(n, 0);
    for (size_t i = 0; i < n; ++i) {
      std::fill(e.begin(), e.end(), 0);
      e[i] = 1;
      const auto col = inv->apply(v.apply(e));
      EXPECT_EQ(col, e);
    }
  }
}

TEST(GfLinalgTest, SingularMatrixNotInvertible) {
  GfMatrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 1;
  a.at(1, 1) = 2;
  EXPECT_FALSE(gf_invert(a).has_value());
}

// ------------------------------------------------------------ Polynomials

TEST(PolyTest, EvalMatchesManualHorner) {
  // p(x) = 3 + 2x + x^2 over GF(2^8)
  const std::vector<uint8_t> p{3, 2, 1};
  const uint8_t x = 5;
  const uint8_t expect = gf::add(gf::add(3, gf::mul(2, x)), gf::mul(x, x));
  EXPECT_EQ(poly_eval(p, x), expect);
}

TEST(PolyTest, ExactDivision) {
  // (x + a)(x + b) / (x + a) == (x + b)
  const uint8_t a = 17;
  const uint8_t b = 101;
  // (x+a)(x+b) = x^2 + (a+b) x + ab
  const std::vector<uint8_t> num{gf::mul(a, b), gf::add(a, b), 1};
  auto q = poly_divide_exact(num, {a, 1});
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, (std::vector<uint8_t>{b, 1}));
}

TEST(PolyTest, InexactDivisionRejected) {
  // x^2 + 1 is not divisible by x + 2 (remainder nonzero in GF(2^8)).
  auto q = poly_divide_exact({1, 0, 1}, {2, 1});
  EXPECT_FALSE(q.has_value());
}

TEST(PolyTest, DivisionByZeroRejected) {
  EXPECT_FALSE(poly_divide_exact({1, 2}, {0}).has_value());
}

// ------------------------------------------------------------ Reed-Solomon

TEST(RsCodeTest, EncodeInterpolateRoundTrip) {
  const RsCode rs(10, 4);
  const std::vector<uint8_t> data{11, 22, 33, 44};
  const auto coded = rs.encode_stripe(data.data());
  ASSERT_EQ(coded.size(), 10u);

  std::vector<ReceivedSymbol> syms;
  for (size_t i : {1u, 4u, 7u, 9u}) syms.push_back({i, coded[i]});
  auto decoded = rs.interpolate(syms);
  ASSERT_TRUE(decoded.has_value());
  decoded->resize(4);
  EXPECT_EQ(*decoded, data);
}

TEST(RsCodeTest, InterpolateRejectsDuplicatePositions) {
  const RsCode rs(6, 2);
  std::vector<ReceivedSymbol> syms{{1, 5}, {1, 5}};
  EXPECT_FALSE(rs.interpolate(syms).has_value());
}

TEST(RsCodeTest, AnyKSubsetDecodes) {
  // The MDS property itself: every k-subset of coded symbols reconstructs.
  const RsCode rs(6, 3);
  const std::vector<uint8_t> data{0xDE, 0xAD, 0x42};
  const auto coded = rs.encode_stripe(data.data());
  for (size_t a = 0; a < 6; ++a) {
    for (size_t b = a + 1; b < 6; ++b) {
      for (size_t c = b + 1; c < 6; ++c) {
        std::vector<ReceivedSymbol> syms{{a, coded[a]}, {b, coded[b]}, {c, coded[c]}};
        auto d = rs.interpolate(syms);
        ASSERT_TRUE(d.has_value());
        d->resize(3);
        EXPECT_EQ(*d, data);
      }
    }
  }
}

TEST(RsCodeTest, BwDecodeNoErrors) {
  const RsCode rs(11, 3);
  const std::vector<uint8_t> data{7, 8, 9};
  const auto coded = rs.encode_stripe(data.data());
  std::vector<ReceivedSymbol> syms;
  for (size_t i = 0; i < 11; ++i) syms.push_back({i, coded[i]});
  auto d = rs.bw_decode(syms, 4);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, data);
}

TEST(RsCodeTest, BwDecodeCorrectsErrors) {
  const RsCode rs(11, 3);  // can fix up to (11-3)/2 = 4 errors
  const std::vector<uint8_t> data{1, 2, 3};
  const auto coded = rs.encode_stripe(data.data());
  Rng rng(6);
  for (size_t errors = 1; errors <= 4; ++errors) {
    std::vector<ReceivedSymbol> syms;
    for (size_t i = 0; i < 11; ++i) syms.push_back({i, coded[i]});
    // Corrupt `errors` distinct symbols.
    for (size_t e = 0; e < errors; ++e) {
      syms[e * 2].value ^= static_cast<uint8_t>(1 + rng.uniform(255));
    }
    auto d = rs.bw_decode(syms, 4);
    ASSERT_TRUE(d.has_value()) << errors << " errors";
    EXPECT_EQ(*d, data) << errors << " errors";
  }
}

TEST(RsCodeTest, BwDecodeHandlesErasuresPlusErrors) {
  const RsCode rs(16, 4);
  std::vector<uint8_t> data{9, 9, 9, 9};
  const auto coded = rs.encode_stripe(data.data());
  // Receive only 10 of 16 (6 erasures): budget = (10-4)/2 = 3 errors.
  std::vector<ReceivedSymbol> syms;
  for (size_t i = 0; i < 10; ++i) syms.push_back({i, coded[i]});
  syms[0].value ^= 0x55;
  syms[5].value ^= 0xAA;
  syms[9].value ^= 0x0F;
  auto d = rs.bw_decode(syms, 3);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, data);
}

TEST(RsCodeTest, BwDecodeFailsBeyondBudget) {
  const RsCode rs(7, 3);  // budget (7-3)/2 = 2
  const std::vector<uint8_t> data{1, 2, 3};
  auto coded = rs.encode_stripe(data.data());
  std::vector<ReceivedSymbol> syms;
  for (size_t i = 0; i < 7; ++i) syms.push_back({i, coded[i]});
  // Three coordinated corruptions exceed the budget; decode must either
  // fail or (never) return a wrong word silently. We assert it does not
  // return the original -- distance > e -- and in fact reports failure
  // because no codeword is within distance 2 of this word.
  syms[0].value ^= 1;
  syms[1].value ^= 2;
  syms[2].value ^= 3;
  auto d = rs.bw_decode(syms, 2);
  if (d.has_value()) {
    // If anything decodes, it must be a word within distance 2; verify.
    size_t disagree = 0;
    for (auto& s : syms) {
      if (poly_eval(*d, rs.alpha(s.position)) != s.value) ++disagree;
    }
    EXPECT_LE(disagree, 2u);
  }
}

TEST(RsCodeTest, BwDecodeTooFewSymbolsFails) {
  const RsCode rs(9, 4);
  std::vector<ReceivedSymbol> syms{{0, 1}, {1, 2}, {2, 3}};  // m = 3 < k
  EXPECT_FALSE(rs.bw_decode(syms, 2).has_value());
}

// Property sweep: random data, random error patterns within budget.
struct RsParam {
  size_t n;
  size_t k;
};

class RsPropertyTest : public ::testing::TestWithParam<RsParam> {};

TEST_P(RsPropertyTest, RandomErrorsWithinBudgetAlwaysDecode) {
  const auto [n, k] = GetParam();
  const RsCode rs(n, k);
  Rng rng(1000 + n * 7 + k);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<uint8_t> data(k);
    for (auto& v : data) v = static_cast<uint8_t>(rng.uniform(256));
    const auto coded = rs.encode_stripe(data.data());

    // Random subset of received positions (m of n), random errors <= budget.
    std::vector<size_t> positions(n);
    for (size_t i = 0; i < n; ++i) positions[i] = i;
    rng.shuffle(positions);
    const size_t m = k + rng.uniform(n - k + 1);
    positions.resize(m);

    std::vector<ReceivedSymbol> syms;
    for (size_t p : positions) syms.push_back({p, coded[p]});
    const size_t budget = rs.max_errors(m);
    const size_t errors = rng.uniform(budget + 1);
    for (size_t e = 0; e < errors; ++e) {
      syms[e].value ^= static_cast<uint8_t>(1 + rng.uniform(255));
    }

    auto d = rs.bw_decode(syms, budget);
    ASSERT_TRUE(d.has_value())
        << "n=" << n << " k=" << k << " m=" << m << " errors=" << errors;
    EXPECT_EQ(*d, data);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RsPropertyTest,
                         ::testing::Values(RsParam{5, 1}, RsParam{6, 1},
                                           RsParam{7, 3}, RsParam{11, 6},
                                           RsParam{16, 11}, RsParam{21, 16},
                                           RsParam{31, 11}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "k" +
                                  std::to_string(info.param.k);
                         });

// --------------------------------------------------- systematic layout

TEST(RsSystematicTest, DataSymbolsPassThrough) {
  const RsCode rs(10, 4, RsLayout::kSystematic);
  const std::vector<uint8_t> data{11, 22, 33, 44};
  const auto coded = rs.encode_stripe(data.data());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(coded[i], data[i]) << "systematic symbol " << i;
  }
}

TEST(RsSystematicTest, ParityMakesItTheSamePolynomialCode) {
  // Systematic symbols must still lie on a degree < k polynomial evaluated
  // at the alphas -- i.e. B-W and interpolation work unchanged.
  const RsCode rs(9, 3, RsLayout::kSystematic);
  const std::vector<uint8_t> data{7, 77, 177};
  const auto coded = rs.encode_stripe(data.data());
  std::vector<ReceivedSymbol> syms;
  for (size_t i : {4u, 6u, 8u}) syms.push_back({i, coded[i]});  // parity only
  auto coeffs = rs.interpolate(syms);
  ASSERT_TRUE(coeffs.has_value());
  coeffs->resize(3, 0);
  EXPECT_EQ(rs.coeffs_to_data(*coeffs), data);
}

TEST(RsSystematicTest, BwDecodeCorrectsErrorsInSystematicLayout) {
  const RsCode rs(11, 3, RsLayout::kSystematic);
  const std::vector<uint8_t> data{1, 2, 3};
  const auto coded = rs.encode_stripe(data.data());
  std::vector<ReceivedSymbol> syms;
  for (size_t i = 0; i < 11; ++i) syms.push_back({i, coded[i]});
  syms[0].value ^= 0x11;  // corrupt a data symbol
  syms[7].value ^= 0x22;  // corrupt a parity symbol
  auto coeffs = rs.bw_decode(syms, 4);
  ASSERT_TRUE(coeffs.has_value());
  EXPECT_EQ(rs.coeffs_to_data(*coeffs), data);
}

TEST(MdsSystematicTest, RoundTripAndWorstCaseMix) {
  const MdsCode code(11, 3, RsLayout::kSystematic);
  Bytes value;
  for (int i = 0; i < 777; ++i) value.push_back(static_cast<uint8_t>(i * 31));
  const auto elements = code.encode(value);

  // All present.
  std::vector<std::optional<Bytes>> received(11);
  for (size_t i = 0; i < 11; ++i) received[i] = elements[i];
  auto decoded = code.decode(received);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, value);

  // Lemma 4 mix: garbage + stale within budget.
  const Bytes old_value(777, 0x5A);
  const auto old_elements = code.encode(old_value);
  received[2] = old_elements[2];
  received[9] = old_elements[9];
  Rng rng(31);
  for (auto& b : *received[5]) b = static_cast<uint8_t>(rng.uniform(256));
  decoded = code.decode(received);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, value);
}

TEST(MdsSystematicTest, LayoutsProduceDifferentParityButSameData) {
  const MdsCode coef(8, 3);
  const MdsCode sys(8, 3, RsLayout::kSystematic);
  const Bytes value(100, 0x3C);
  const auto e1 = coef.encode(value);
  const auto e2 = sys.encode(value);
  EXPECT_NE(e1, e2);  // different codeword mapping...
  std::vector<std::optional<Bytes>> r1(8), r2(8);
  for (size_t i = 0; i < 8; ++i) {
    r1[i] = e1[i];
    r2[i] = e2[i];
  }
  EXPECT_EQ(coef.decode(r1).value(), value);  // ...same decoded value
  EXPECT_EQ(sys.decode(r2).value(), value);
}

// ------------------------------------------------------------ MdsCode facade

TEST(MdsCodeTest, ElementSizeApproximatesValueOverK) {
  const MdsCode code(11, 6);
  // 6000-byte value: payload 6008, elements ceil(6008/6) = 1002 bytes.
  EXPECT_EQ(code.element_size(6000), 1002u);
}

TEST(MdsCodeTest, ForBcsrUsesPaperParameterization) {
  const auto code = MdsCode::for_bcsr(11, 2);  // n = 5f+1
  EXPECT_EQ(code.k(), 1u);
  const auto code2 = MdsCode::for_bcsr(16, 2);
  EXPECT_EQ(code2.k(), 6u);
}

TEST(MdsCodeTest, EncodeDecodeRoundTripAllPresent) {
  const MdsCode code(10, 4);
  Bytes value;
  for (int i = 0; i < 1000; ++i) value.push_back(static_cast<uint8_t>(i * 37));
  const auto elements = code.encode(value);
  ASSERT_EQ(elements.size(), 10u);

  std::vector<std::optional<Bytes>> received(10);
  for (size_t i = 0; i < 10; ++i) received[i] = elements[i];
  auto decoded = code.decode(received);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, value);
}

TEST(MdsCodeTest, DecodesFromExactlyKElements) {
  const MdsCode code(10, 4);
  Bytes value{1, 2, 3, 4, 5};
  const auto elements = code.encode(value);
  std::vector<std::optional<Bytes>> received(10);
  received[2] = elements[2];
  received[3] = elements[3];
  received[5] = elements[5];
  received[8] = elements[8];
  auto decoded = code.decode(received);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, value);
}

TEST(MdsCodeTest, FailsBelowKElements) {
  const MdsCode code(10, 4);
  const auto elements = code.encode(Bytes{1, 2, 3});
  std::vector<std::optional<Bytes>> received(10);
  received[0] = elements[0];
  received[1] = elements[1];
  received[2] = elements[2];
  EXPECT_FALSE(code.decode(received).has_value());
}

TEST(MdsCodeTest, ToleratesCorruptElementsWithinBudget) {
  const MdsCode code(11, 3);  // m=11 => budget (11-3)/2 = 4
  Bytes value;
  for (int i = 0; i < 500; ++i) value.push_back(static_cast<uint8_t>(i));
  const auto elements = code.encode(value);
  std::vector<std::optional<Bytes>> received(11);
  for (size_t i = 0; i < 11; ++i) received[i] = elements[i];
  // Corrupt 4 elements entirely (simulates Byzantine servers).
  Rng rng(8);
  for (size_t i : {0u, 3u, 7u, 10u}) {
    for (auto& b : *received[i]) b = static_cast<uint8_t>(rng.uniform(256));
  }
  auto decoded = code.decode(received);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, value);
}

TEST(MdsCodeTest, ToleratesStaleElements) {
  // Stale = coded element of an older value: the paper's second kind of
  // "erroneous" element (Section IV-A).
  const MdsCode code(11, 3);
  Bytes old_value(300, 0xAA);
  Bytes new_value(300, 0xBB);
  const auto old_el = code.encode(old_value);
  const auto new_el = code.encode(new_value);
  std::vector<std::optional<Bytes>> received(11);
  for (size_t i = 0; i < 11; ++i) received[i] = new_el[i];
  received[1] = old_el[1];
  received[4] = old_el[4];
  received[6] = old_el[6];
  received[9] = old_el[9];
  auto decoded = code.decode(received);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, new_value);
}

TEST(MdsCodeTest, MixedSizeLiesAreExcluded) {
  const MdsCode code(11, 3);
  Bytes value(100, 0x11);
  const auto elements = code.encode(value);
  std::vector<std::optional<Bytes>> received(11);
  for (size_t i = 0; i < 11; ++i) received[i] = elements[i];
  // Two Byzantine servers report elements of a bogus size.
  received[0] = Bytes(999, 0xFF);
  received[5] = Bytes(7, 0x00);
  auto decoded = code.decode(received);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, value);
}

TEST(MdsCodeTest, EmptyValueRoundTrip) {
  const MdsCode code(6, 1);
  const auto elements = code.encode(Bytes{});
  std::vector<std::optional<Bytes>> received(6);
  received[3] = elements[3];
  auto decoded = code.decode(received);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(MdsCodeTest, AllAbsentFails) {
  const MdsCode code(6, 1);
  std::vector<std::optional<Bytes>> received(6);
  EXPECT_FALSE(code.decode(received).has_value());
}

// BCSR-shaped property sweep: n = 5f+1+extra, m = n-f responses, up to 2f
// erroneous elements -- the exact situation of Lemma 4.
struct BcsrCodecParam {
  size_t n;
  size_t f;
  RsLayout layout;
};

class BcsrCodecPropertyTest : public ::testing::TestWithParam<BcsrCodecParam> {};

TEST_P(BcsrCodecPropertyTest, Lemma4Scenario) {
  const auto [n, f, layout] = GetParam();
  const auto code = MdsCode::for_bcsr(n, f, layout);
  Rng rng(2000 + n * 13 + f);
  for (int trial = 0; trial < 25; ++trial) {
    Bytes new_value(64 + rng.uniform(256), 0);
    for (auto& b : new_value) b = static_cast<uint8_t>(rng.uniform(256));
    Bytes old_value(new_value.size(), 0);  // same size: worst case for grouping
    for (auto& b : old_value) b = static_cast<uint8_t>(rng.uniform(256));

    const auto new_el = code.encode(new_value);
    const auto old_el = code.encode(old_value);

    // n-f responses; up to 2f erroneous among them (f Byzantine + f stale).
    std::vector<size_t> positions(n);
    for (size_t i = 0; i < n; ++i) positions[i] = i;
    rng.shuffle(positions);

    std::vector<std::optional<Bytes>> received(n);
    for (size_t i = 0; i < n - f; ++i) {
      const size_t pos = positions[i];
      if (i < f) {
        // Byzantine: random garbage of the correct size.
        Bytes junk(new_el[pos].size());
        for (auto& b : junk) b = static_cast<uint8_t>(rng.uniform(256));
        received[pos] = junk;
      } else if (i < 2 * f) {
        received[pos] = old_el[pos];  // stale honest server
      } else {
        received[pos] = new_el[pos];  // up-to-date honest server
      }
    }
    auto decoded = code.decode(received);
    ASSERT_TRUE(decoded.has_value()) << "n=" << n << " f=" << f;
    EXPECT_EQ(*decoded, new_value);
  }
}

std::vector<BcsrCodecParam> bcsr_codec_params() {
  std::vector<BcsrCodecParam> out;
  for (auto layout : {RsLayout::kCoefficients, RsLayout::kSystematic}) {
    out.push_back({6, 1, layout});
    out.push_back({8, 1, layout});
    out.push_back({11, 2, layout});
    out.push_back({13, 2, layout});
    out.push_back({16, 3, layout});
    out.push_back({21, 4, layout});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BcsrCodecPropertyTest,
                         ::testing::ValuesIn(bcsr_codec_params()),
                         [](const auto& info) {
                           return std::string(info.param.layout ==
                                                      RsLayout::kSystematic
                                                  ? "sys_"
                                                  : "coef_") +
                                  "n" + std::to_string(info.param.n) + "f" +
                                  std::to_string(info.param.f);
                         });

}  // namespace
}  // namespace bftreg::codec
