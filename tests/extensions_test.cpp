// Tests for the library's extensions beyond the paper's pseudocode, and
// for edge schedules the paper only discusses in prose:
//   - history garbage collection (SystemConfig::max_history) and its
//     interaction with the regularity fixes,
//   - the atomicity checker and BSR's (expected) non-atomicity,
//   - BCSR with multiple non-concurrent writers (paper footnote 2),
//   - writer crash mid-multicast (the all-or-none gap of Remark 1),
//   - StorePolicy::kMaxOnly (Fig. 3 verbatim) across protocols.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "checker/consistency.h"
#include "harness/scenarios.h"
#include "harness/sim_cluster.h"
#include "workload/workload.h"

namespace bftreg::harness {
namespace {

using checker::CheckOptions;
using checker::check_atomicity;
using checker::check_regularity;
using checker::check_safety;

Bytes val(const std::string& s) { return Bytes(s.begin(), s.end()); }

ClusterOptions base_options(Protocol p, size_t n, size_t f, uint64_t seed = 1) {
  ClusterOptions o;
  o.protocol = p;
  o.config.n = n;
  o.config.f = f;
  o.num_writers = 2;
  o.num_readers = 2;
  o.seed = seed;
  return o;
}

// ------------------------------------------------------------ history GC

TEST(HistoryGcTest, ServerPrunesToBudget) {
  ClusterOptions o = base_options(Protocol::kBsr, 5, 1);
  o.config.max_history = 3;
  SimCluster cluster(o);
  for (int i = 0; i < 10; ++i) cluster.write(0, val("v" + std::to_string(i)));
  cluster.sim().run_until_idle();
  for (size_t s = 0; s < 5; ++s) {
    EXPECT_LE(cluster.server(s)->store().size(), 3u);
    EXPECT_EQ(cluster.server(s)->max_value(), val("v9"));
  }
}

TEST(HistoryGcTest, BsrUnaffectedByAggressiveGc) {
  ClusterOptions o = base_options(Protocol::kBsr, 5, 1, 3);
  o.config.max_history = 1;  // keep only the newest pair
  SimCluster cluster(o);
  cluster.set_byzantine(2, adversary::StrategyKind::kStale);
  for (int i = 0; i < 8; ++i) {
    cluster.write(i % 2, val("g" + std::to_string(i)));
    EXPECT_EQ(cluster.read(i % 2).value, val("g" + std::to_string(i)));
  }
  CheckOptions copts;
  copts.strict_validity = true;
  EXPECT_TRUE(check_safety(cluster.recorder().ops(), copts).ok);
}

TEST(HistoryGcTest, AggressiveGcBreaksTheHistoryRegularityFix) {
  // With max_history = 1 the history read degenerates to the plain BSR
  // read, and the Theorem 3 schedule defeats it again: history-based
  // regularity NEEDS the history.
  ClusterOptions o = base_options(Protocol::kBsrHistory, 5, 1, 42);
  o.config.max_history = 1;
  o.num_writers = 5;
  o.num_readers = 1;
  SimCluster cluster(o);
  const auto r = run_theorem3_schedule(cluster);
  EXPECT_EQ(r.value, Bytes{}) << "slid back to v0, like plain BSR";
  CheckOptions copts;
  EXPECT_FALSE(check_regularity(cluster.recorder().ops(), copts).ok);
}

TEST(HistoryGcTest, ModestGcPreservesTheoremThreeFix) {
  // The Thm. 3 schedule only needs the last completed write to survive one
  // extra in-progress write per server: budget 2 suffices here.
  ClusterOptions o = base_options(Protocol::kBsrHistory, 5, 1, 42);
  o.config.max_history = 2;
  o.num_writers = 5;
  o.num_readers = 1;
  SimCluster cluster(o);
  const auto r = run_theorem3_schedule(cluster);
  EXPECT_EQ(r.value, val("v1"));
}

// ------------------------------------------------------------- atomicity

TEST(AtomicityCheckerTest, CrossReaderInversionFailsAtomicityOnly) {
  checker::ExecutionRecorder rec;
  const uint64_t w1 = rec.begin_write(ProcessId::writer(0), 0, val("a"));
  rec.complete_write(w1, 10, Tag{1, ProcessId::writer(0)});
  const uint64_t w2 = rec.begin_write(ProcessId::writer(0), 20, val("b"));
  // still in progress at both reads
  const uint64_t r1 = rec.begin_read(ProcessId::reader(0), 30);
  rec.complete_read(r1, 40, val("b"), Tag{2, ProcessId::writer(0)});
  const uint64_t r2 = rec.begin_read(ProcessId::reader(1), 50);
  rec.complete_read(r2, 60, val("a"), Tag{1, ProcessId::writer(0)});
  (void)w2;

  CheckOptions copts;
  EXPECT_TRUE(check_regularity(rec.ops(), copts).ok);
  const auto atom = check_atomicity(rec.ops(), copts);
  EXPECT_FALSE(atom.ok);
  EXPECT_NE(atom.violation.find("cross-reader"), std::string::npos);
}

TEST(AtomicityCheckerTest, SequentialHistoryIsAtomic) {
  checker::ExecutionRecorder rec;
  const uint64_t w1 = rec.begin_write(ProcessId::writer(0), 0, val("a"));
  rec.complete_write(w1, 10, Tag{1, ProcessId::writer(0)});
  const uint64_t r1 = rec.begin_read(ProcessId::reader(0), 20);
  rec.complete_read(r1, 30, val("a"), Tag{1, ProcessId::writer(0)});
  CheckOptions copts;
  EXPECT_TRUE(check_atomicity(rec.ops(), copts).ok);
}

TEST(AtomicityTest, BsrIsProvablyNotAtomic) {
  // The schedule: w(v1) completes; w(v2) reaches only servers 0 and 1;
  // reader 0 (quorum includes both) returns v2 with f+1 witnesses; then
  // reader 1 (server 0's reply delayed) sees v2 only once and returns v1.
  // Regular -- v2's write is still in progress -- but not atomic. This is
  // why the paper targets safety/regularity: semi-fast MWMR *atomicity* is
  // impossible (Georgiou et al. [13]).
  ClusterOptions o = base_options(Protocol::kBsr, 5, 1, 9);
  SimCluster cluster(o);
  cluster.start();
  cluster.write(0, val("v1"));
  cluster.sim().run_until_idle();

  auto& delay = cluster.sim().delay_model();
  delay.set_hook([](const net::Envelope& env) -> std::optional<TimeNs> {
    auto msg = registers::RegisterMessage::parse(env.payload);
    if (msg && msg->type == registers::MsgType::kPutData && env.to.is_server() &&
        env.to.index >= 2) {
      return TimeNs{1'000'000'000};  // v2 reaches only s0, s1
    }
    return std::nullopt;
  });
  const uint64_t wid = cluster.start_write(1, val("v2"));
  cluster.sim().run_until_time(cluster.sim().now() + 100'000);
  EXPECT_FALSE(cluster.op_done(wid));  // in progress, as scripted

  // Reader 0: server 4's reply is delayed so its quorum is s0..s3 --
  // v2 has f+1 = 2 witnesses and the highest tag.
  delay.set_hook([](const net::Envelope& env) -> std::optional<TimeNs> {
    auto msg = registers::RegisterMessage::parse(env.payload);
    if (msg && msg->type == registers::MsgType::kPutData && env.to.is_server() &&
        env.to.index >= 2) {
      return TimeNs{1'000'000'000};
    }
    if (env.from == ProcessId::server(4) && env.to == ProcessId::reader(0)) {
      return TimeNs{1'000'000'000};
    }
    return std::nullopt;
  });
  const auto r1 = cluster.read(0);
  EXPECT_EQ(r1.value, val("v2"));

  // Reader 1: server 0 and 1 replies delayed; quorum = s2..s4 + ...
  delay.set_hook([](const net::Envelope& env) -> std::optional<TimeNs> {
    auto msg = registers::RegisterMessage::parse(env.payload);
    if (msg && msg->type == registers::MsgType::kPutData && env.to.is_server() &&
        env.to.index >= 2) {
      return TimeNs{1'000'000'000};
    }
    if (env.from == ProcessId::server(0) && env.to == ProcessId::reader(1)) {
      return TimeNs{1'000'000'000};
    }
    return std::nullopt;
  });
  const auto r2 = cluster.read(1);
  EXPECT_EQ(r2.value, val("v1"));

  CheckOptions copts;
  EXPECT_TRUE(check_regularity(cluster.recorder().ops(), copts).ok);
  EXPECT_FALSE(check_atomicity(cluster.recorder().ops(), copts).ok);
}

// ------------------------------------- BCSR multiple sequential writers

TEST(BcsrMultiWriterTest, NonConcurrentWritersAreFine) {
  // Paper footnote 2: BCSR "can tolerate multiple writers as long as
  // writes are not concurrent".
  ClusterOptions o = base_options(Protocol::kBcsr, 6, 1, 21);
  o.num_writers = 3;
  SimCluster cluster(o);
  for (int i = 0; i < 9; ++i) {
    const Bytes payload = workload::make_value(4, i, 77);
    cluster.write(i % 3, payload);  // rotate writers, never concurrent
    EXPECT_EQ(cluster.read(i % 2).value, payload) << "round " << i;
  }
}

// ------------------------------------------- writer crash mid-multicast

TEST(WriterCrashTest, PartialPutDataKeepsBsrSafe) {
  ClusterOptions o = base_options(Protocol::kBsr, 5, 1, 17);
  SimCluster cluster(o);
  cluster.start();
  cluster.write(0, val("stable"));
  cluster.sim().run_until_idle();

  // Writer 1's PUT-DATA is placed only toward s0, s1; then the writer
  // crashes (the model allows crashing after placing a subset).
  cluster.sim().delay_model().set_hook(
      [](const net::Envelope& env) -> std::optional<TimeNs> {
        auto msg = registers::RegisterMessage::parse(env.payload);
        if (msg && msg->type == registers::MsgType::kPutData &&
            env.from == ProcessId::writer(1) && env.to.is_server() &&
            env.to.index >= 2) {
          return TimeNs{1'000'000'000};  // never placed before the crash
        }
        return std::nullopt;
      });
  const uint64_t wid = cluster.start_write(1, val("orphan"));
  cluster.sim().run_until_time(cluster.sim().now() + 50'000);
  cluster.crash_writer(1);
  EXPECT_FALSE(cluster.op_done(wid));

  // Reads may return the stable value or the orphaned one (both legal:
  // the orphan began before the read and, being incomplete, cannot be
  // superseded); safety must hold either way.
  for (int i = 0; i < 4; ++i) {
    const auto r = cluster.read(i % 2);
    EXPECT_TRUE(r.value == val("stable") || r.value == val("orphan"));
  }
  CheckOptions copts;
  copts.strict_validity = true;
  const auto res = check_safety(cluster.recorder().ops(), copts);
  EXPECT_TRUE(res.ok) << res.violation;
}

// A Byzantine server that stores puts and reports tags honestly but lies
// about the value in the 2R get-data phase.
class ValueLiar final : public adversary::Strategy {
 public:
  void handle(const net::Envelope& env, adversary::ServerContext& ctx) override {
    auto msg = registers::RegisterMessage::parse(env.payload);
    if (!msg) return;
    registers::RegisterMessage resp;
    resp.op_id = msg->op_id;
    resp.object = msg->object;
    switch (msg->type) {
      case registers::MsgType::kPutData:
        store_[msg->tag] = msg->value;
        resp.type = registers::MsgType::kAck;
        resp.tag = msg->tag;
        break;
      case registers::MsgType::kQueryTagHistory: {
        resp.type = registers::MsgType::kTagHistoryResp;
        resp.tags.push_back(Tag::initial());
        for (const auto& [t, v] : store_) resp.tags.push_back(t);
        break;
      }
      case registers::MsgType::kQueryDataAt:
        resp.type = registers::MsgType::kDataAtResp;
        resp.tag = msg->tag;
        resp.value = Bytes{0xBA, 0xD1};  // never matches the honest value
        break;
      default:
        return;
    }
    ctx.send(env.from, resp);
  }

 private:
  std::map<Tag, Bytes> store_;
};

TEST(WriterCrashTest, TwoRoundReadCanStallAfterPartialMulticast) {
  // The documented liveness caveat of the 2R variant (two_round_reader.h,
  // paper Remark 1): a write that crashed after reaching exactly one
  // honest server plus a Byzantine one leaves a tag with f+1 histories
  // behind it but only ONE honest value-holder. The 2R read targets that
  // tag and waits for f+1 matching values that can never come -- the
  // precise all-or-none gap reliable broadcast would have closed.
  ClusterOptions o = base_options(Protocol::kBsr2R, 5, 1, 23);
  o.num_readers = 1;
  SimCluster cluster(o);
  cluster.set_byzantine(0, std::make_unique<ValueLiar>());
  cluster.start();

  cluster.sim().delay_model().set_hook(
      [](const net::Envelope& env) -> std::optional<TimeNs> {
        auto msg = registers::RegisterMessage::parse(env.payload);
        if (msg && msg->type == registers::MsgType::kPutData &&
            env.to.is_server() && env.to.index >= 2) {
          // In-flight for longer than the whole test horizon: models the
          // crashed writer's PUT-DATA that has not (yet, or ever) been
          // delivered to the other honest servers.
          return TimeNs{1'000'000'000};
        }
        // Pin the reader's phase-1 quorum to s0..s3 so both holders of the
        // orphaned tag are inside it and the tag becomes the read target.
        if (env.from == ProcessId::server(4) && env.to.role == Role::kReader) {
          return TimeNs{1'000'000'000};
        }
        return std::nullopt;
      });
  const uint64_t wid = cluster.start_write(0, val("doomed"));
  cluster.sim().run_until_time(cluster.sim().now() + 50'000);
  cluster.crash_writer(0);
  EXPECT_FALSE(cluster.op_done(wid));

  const uint64_t rid = cluster.start_read(0);
  cluster.sim().run_until_time(cluster.sim().now() + 500'000);
  EXPECT_FALSE(cluster.op_done(rid))
      << "the 2R read must still be waiting: one honest holder cannot "
         "produce f+1 matching values";
  // (Had the writer crashed *before* placing those sends, the wait would
  // be forever; with reliable broadcast, never. That asymmetry is the
  // paper's Remark 1.)
}

// ---------------------------------------------- StorePolicy::kMaxOnly

struct PolicyParam {
  Protocol protocol;
  size_t n;
  size_t f;
};

class MaxOnlyPolicyTest : public ::testing::TestWithParam<PolicyParam> {};

TEST_P(MaxOnlyPolicyTest, FigureThreeVerbatimPolicyIsSafe) {
  const auto [protocol, n, f] = GetParam();
  ClusterOptions o = base_options(protocol, n, f, 29);
  o.config.store_policy = registers::StorePolicy::kMaxOnly;
  SimCluster cluster(o);
  cluster.set_byzantine(n - 1, adversary::StrategyKind::kFabricate);
  for (int i = 0; i < 6; ++i) {
    const Bytes payload = workload::make_value(6, i, 40);
    cluster.write(0, payload);
    EXPECT_EQ(cluster.read(0).value, payload);
  }
  CheckOptions copts;
  copts.reads_report_tags = protocol != Protocol::kBcsr;
  copts.strict_validity = protocol != Protocol::kBcsr;
  const auto res = check_safety(cluster.recorder().ops(), copts);
  EXPECT_TRUE(res.ok) << res.violation;
}

INSTANTIATE_TEST_SUITE_P(Protocols, MaxOnlyPolicyTest,
                         ::testing::Values(PolicyParam{Protocol::kBsr, 5, 1},
                                           PolicyParam{Protocol::kBsr, 9, 2},
                                           PolicyParam{Protocol::kBcsr, 6, 1},
                                           PolicyParam{Protocol::kBsrHistory, 5, 1},
                                           PolicyParam{Protocol::kBsr2R, 5, 1}),
                         [](const auto& info) {
                           std::string name = to_string(info.param.protocol);
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name + "_n" + std::to_string(info.param.n);
                         });

}  // namespace
}  // namespace bftreg::harness
