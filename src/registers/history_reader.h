// History-based regular read: first regularity fix of Section III-C.
//
// "We change line 9 of Algorithm 3 to send the entire history of writes (L)
// instead of just the locally available (t, v) pair."
//
// The read stays one-shot (a single QUERY-HISTORY round), but a server now
// *witnesses* every pair in its history, not just its newest. In the
// Theorem 3 counterexample this is exactly what rescues regularity: the
// four concurrent writers each reached only one server with their PUT-DATA,
// so no new pair has f+1 witnesses -- but the previously completed write is
// in every honest server's history and wins, instead of the read sliding
// back to v0.
//
// Costs: server-to-reader bandwidth grows with the history length
// (bench_regularity and bench_storage_comm quantify this against BSR).
//
// Low-level single-operation client; protocol logic in HistoryReadOp
// (protocol_ops.h), multiplexed flavor in RegisterClient (client.h).
#pragma once

#include <functional>

#include "net/transport.h"
#include "registers/config.h"
#include "registers/op_mux.h"
#include "registers/protocol_ops.h"
#include "registers/results.h"

namespace bftreg::registers {

class HistoryReader final : public net::IProcess {
 public:
  using Callback = std::function<void(const ReadResult&)>;

  HistoryReader(ProcessId self, SystemConfig config, net::Transport* transport,
                uint32_t object = 0);

  void start_read(Callback callback);
  void on_message(const net::Envelope& env) override { mux_.on_message(env); }

  bool busy() const { return !mux_.idle(); }
  const ProcessId& id() const { return mux_.id(); }
  const Tag& local_tag() const { return state_.local.tag; }

 private:
  OpMux mux_;
  const uint32_t object_;
  LocalState state_;
};

}  // namespace bftreg::registers
