// Tests for the durability substrate: WAL record format, torn-tail
// recovery, compaction, and server crash-restart cycles.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "registers/registers.h"
#include "sim/simulator.h"
#include "storage/persistent_server.h"
#include "storage/wal.h"

namespace bftreg::storage {
namespace {

/// Unique temp path per test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& stem) {
    path_ = (std::filesystem::temp_directory_path() /
             ("bftreg_" + stem + "_" +
              std::to_string(::getpid()) + "_" +
              std::to_string(counter_++)))
                .string();
    std::remove(path_.c_str());
  }
  ~TempFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

WalRecord rec(uint32_t object, uint64_t num, Bytes value) {
  return WalRecord{object, Tag{num, ProcessId::writer(0)}, std::move(value)};
}

TEST(WalTest, ReplayOfMissingFileIsEmpty) {
  const auto result = WriteAheadLog::replay("/nonexistent/definitely/not/here");
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.truncated_bytes, 0u);
}

TEST(WalTest, AppendReplayRoundTrip) {
  TempFile tmp("roundtrip");
  {
    WriteAheadLog wal(tmp.path());
    wal.append(rec(0, 1, Bytes{'a'}));
    wal.append(rec(0, 2, Bytes{'b', 'b'}));
    wal.append(rec(7, 1, Bytes{}));
  }
  const auto result = WriteAheadLog::replay(tmp.path());
  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_EQ(result.truncated_bytes, 0u);
  EXPECT_EQ(result.records[0], rec(0, 1, Bytes{'a'}));
  EXPECT_EQ(result.records[1], rec(0, 2, Bytes{'b', 'b'}));
  EXPECT_EQ(result.records[2], rec(7, 1, Bytes{}));
}

TEST(WalTest, TornTailIsDiscarded) {
  TempFile tmp("torn");
  {
    WriteAheadLog wal(tmp.path());
    wal.append(rec(0, 1, Bytes(100, 'x')));
    wal.append(rec(0, 2, Bytes(100, 'y')));
  }
  // Simulate a crash mid-append: chop the last 30 bytes.
  const auto size = std::filesystem::file_size(tmp.path());
  std::filesystem::resize_file(tmp.path(), size - 30);

  const auto result = WriteAheadLog::replay(tmp.path());
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].tag.num, 1u);
  EXPECT_GT(result.truncated_bytes, 0u);
}

TEST(WalTest, CorruptedCrcStopsReplay) {
  TempFile tmp("crc");
  {
    WriteAheadLog wal(tmp.path());
    wal.append(rec(0, 1, Bytes(64, 'x')));
    wal.append(rec(0, 2, Bytes(64, 'y')));
  }
  // Flip a byte inside the first record's value.
  std::FILE* f = std::fopen(tmp.path().c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 30, SEEK_SET);
  const uint8_t junk = 0xEE;
  std::fwrite(&junk, 1, 1, f);
  std::fclose(f);

  // The corrupted record fails its crc; replay must not yield it, nor
  // anything after it (the stream cannot be trusted past the tear).
  const auto result = WriteAheadLog::replay(tmp.path());
  EXPECT_TRUE(result.records.empty());
  EXPECT_GT(result.truncated_bytes, 0u);
}

TEST(WalTest, CompactionDropsSupersededRecords) {
  TempFile tmp("compact");
  WriteAheadLog wal(tmp.path());
  for (uint64_t i = 1; i <= 50; ++i) wal.append(rec(0, i, Bytes(100, 'v')));
  const auto before = std::filesystem::file_size(tmp.path());

  wal.compact({rec(0, 50, Bytes(100, 'v'))});
  const auto after = std::filesystem::file_size(tmp.path());
  EXPECT_LT(after, before / 10);

  const auto result = WriteAheadLog::replay(tmp.path());
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].tag.num, 50u);

  // The log must still be appendable after compaction.
  wal.append(rec(0, 51, Bytes{'z'}));
  EXPECT_EQ(WriteAheadLog::replay(tmp.path()).records.size(), 2u);
}

// ------------------------------------------------- persistent server

registers::SystemConfig small_config() {
  registers::SystemConfig c;
  c.n = 5;
  c.f = 1;
  return c;
}

TEST(PersistentServerTest, FreshServerHasNoRecoveredRecords) {
  TempFile tmp("fresh");
  sim::Simulator sim(sim::SimConfig::with_fixed_delay(1, 10));
  PersistentRegisterServer server(ProcessId::server(0), small_config(), &sim,
                                  Bytes{}, tmp.path());
  EXPECT_EQ(server.recovered_records(), 0u);
  EXPECT_EQ(server.max_tag(), Tag::initial());
}

TEST(PersistentServerTest, StateSurvivesRestart) {
  TempFile tmp("restart");
  sim::Simulator sim(sim::SimConfig::with_fixed_delay(1, 10));
  const auto cfg = small_config();

  auto put = [&](net::IProcess& server, uint64_t num, Bytes v, uint32_t object = 0) {
    registers::RegisterMessage m;
    m.type = registers::MsgType::kPutData;
    m.object = object;
    m.tag = Tag{num, ProcessId::writer(0)};
    m.value = std::move(v);
    net::Envelope env;
    env.from = ProcessId::writer(0);
    env.to = ProcessId::server(0);
    env.payload = m.encode();
    server.on_message(env);
  };

  {
    PersistentRegisterServer server(ProcessId::server(0), cfg, &sim, Bytes{},
                                    tmp.path());
    put(server, 1, Bytes{'a'});
    put(server, 2, Bytes{'b'});
    put(server, 1, Bytes{'k'}, /*object=*/9);
  }  // "crash": the server object is destroyed

  PersistentRegisterServer revived(ProcessId::server(0), cfg, &sim, Bytes{},
                                   tmp.path());
  EXPECT_EQ(revived.recovered_records(), 3u);
  EXPECT_EQ(revived.max_tag(0), (Tag{2, ProcessId::writer(0)}));
  EXPECT_EQ(revived.max_value(0), (Bytes{'b'}));
  EXPECT_EQ(revived.max_value(9), (Bytes{'k'}));
  EXPECT_EQ(revived.store(0).size(), 3u);  // t0 + two writes
}

TEST(PersistentServerTest, RecoveryDoesNotRelog) {
  TempFile tmp("norelog");
  sim::Simulator sim(sim::SimConfig::with_fixed_delay(1, 10));
  const auto cfg = small_config();
  {
    PersistentRegisterServer server(ProcessId::server(0), cfg, &sim, Bytes{},
                                    tmp.path());
    registers::RegisterMessage m;
    m.type = registers::MsgType::kPutData;
    m.tag = Tag{1, ProcessId::writer(0)};
    m.value = Bytes{'a'};
    net::Envelope env;
    env.from = ProcessId::writer(0);
    env.to = ProcessId::server(0);
    env.payload = m.encode();
    server.on_message(env);
  }
  const auto size1 = std::filesystem::file_size(tmp.path());
  {
    PersistentRegisterServer revived(ProcessId::server(0), cfg, &sim, Bytes{},
                                     tmp.path());
    EXPECT_EQ(revived.recovered_records(), 1u);
  }
  EXPECT_EQ(std::filesystem::file_size(tmp.path()), size1)
      << "replay must not append duplicate records";
}

TEST(PersistentServerTest, CompactKeepsLiveStateOnly) {
  TempFile tmp("srvcompact");
  sim::Simulator sim(sim::SimConfig::with_fixed_delay(1, 10));
  auto cfg = small_config();
  cfg.max_history = 1;  // server keeps only the newest pair
  PersistentRegisterServer server(ProcessId::server(0), cfg, &sim, Bytes{},
                                  tmp.path());
  for (uint64_t i = 1; i <= 30; ++i) {
    registers::RegisterMessage m;
    m.type = registers::MsgType::kPutData;
    m.tag = Tag{i, ProcessId::writer(0)};
    m.value = Bytes(64, static_cast<uint8_t>(i));
    net::Envelope env;
    env.from = ProcessId::writer(0);
    env.to = ProcessId::server(0);
    env.payload = m.encode();
    server.on_message(env);
  }
  const auto before = std::filesystem::file_size(tmp.path());
  server.compact();
  const auto after = std::filesystem::file_size(tmp.path());
  EXPECT_LT(after, before / 5);

  const auto replayed = WriteAheadLog::replay(tmp.path());
  ASSERT_EQ(replayed.records.size(), 1u);
  EXPECT_EQ(replayed.records[0].tag.num, 30u);
}

// End-to-end: a full BSR cluster where one server restarts between a write
// and a read -- the recovered server still witnesses the write, so the
// read gets its f+1 witnesses even if the remaining quorum is thin.
TEST(PersistentServerTest, RecoveryKeepsWitnessGuarantee) {
  TempFile tmp("witness");
  sim::Simulator sim(sim::SimConfig::with_fixed_delay(3, 100));
  registers::SystemConfig cfg = small_config();

  std::vector<std::unique_ptr<net::IProcess>> servers;
  auto persistent = std::make_unique<PersistentRegisterServer>(
      ProcessId::server(0), cfg, &sim, Bytes{}, tmp.path());
  auto* persistent_raw = persistent.get();
  servers.push_back(std::move(persistent));
  for (uint32_t i = 1; i < cfg.n; ++i) {
    servers.push_back(std::make_unique<registers::RegisterServer>(
        ProcessId::server(i), cfg, &sim, Bytes{}));
  }
  for (uint32_t i = 0; i < cfg.n; ++i) {
    sim.add_process(ProcessId::server(i), servers[i].get());
  }
  registers::BsrWriter writer(ProcessId::writer(0), cfg, &sim);
  registers::BsrReader reader(ProcessId::reader(0), cfg, &sim);
  sim.add_process(ProcessId::writer(0), &writer);
  sim.add_process(ProcessId::reader(0), &reader);

  bool done = false;
  writer.start_write(Bytes{'d', 'u', 'r'},
                     [&](const registers::WriteResult&) { done = true; });
  ASSERT_TRUE(sim.run_until([&] { return done; }));
  sim.run_until_idle();
  (void)persistent_raw;

  // "Restart" server 0: replace the process object with a recovered one.
  servers[0] = std::make_unique<PersistentRegisterServer>(
      ProcessId::server(0), cfg, &sim, Bytes{}, tmp.path());
  sim.add_process(ProcessId::server(0), servers[0].get());

  done = false;
  Bytes got;
  reader.start_read([&](const registers::ReadResult& r) {
    got = r.value;
    done = true;
  });
  ASSERT_TRUE(sim.run_until([&] { return done; }));
  EXPECT_EQ(got, (Bytes{'d', 'u', 'r'}));
}

// ------------------------------------------- crash/rejoin catch-up

/// Collects every envelope the server under test sends back.
class ReplyProbe final : public net::IProcess {
 public:
  void on_message(const net::Envelope& env) override {
    replies.push_back(env);
  }
  std::vector<net::Envelope> replies;
};

/// A 5-server BSR fixture where server 0 is WAL-backed and the other four
/// are plain in-memory servers; used to exercise the crash -> replay ->
/// refuse -> quorum-catch-up -> serve cycle.
class CatchUpFixture : public ::testing::Test {
 protected:
  CatchUpFixture()
      : tmp_("catchup"),
        sim_(sim::SimConfig::with_fixed_delay(3, 100)),
        cfg_(small_config()),
        writer_(ProcessId::writer(0), cfg_, &sim_) {
    for (uint32_t i = 1; i < cfg_.n; ++i) {
      peers_.push_back(std::make_unique<registers::RegisterServer>(
          ProcessId::server(i), cfg_, &sim_, Bytes{}));
      sim_.add_process(ProcessId::server(i), peers_.back().get());
    }
    sim_.add_process(ProcessId::writer(0), &writer_);
    sim_.add_process(ProcessId::reader(0), &probe_);
  }

  void write(Bytes v) {
    bool done = false;
    writer_.start_write(std::move(v),
                        [&](const registers::WriteResult&) { done = true; });
    ASSERT_TRUE(sim_.run_until([&] { return done; }));
    sim_.run_until_idle();
  }

  /// Injects a client request directly into `server` (from reader 0, whose
  /// mailbox is the probe) and drains the simulator.
  void send_request(PersistentRegisterServer& server, registers::MsgType type) {
    registers::RegisterMessage m;
    m.type = type;
    m.op_id = 7777;
    m.tag = Tag{99, ProcessId::writer(0)};
    m.value = Bytes{'z'};
    net::Envelope env;
    env.from = ProcessId::reader(0);
    env.to = ProcessId::server(0);
    env.payload = m.encode();
    server.on_message(env);
    sim_.run_until_idle();
  }

  TempFile tmp_;
  sim::Simulator sim_;
  registers::SystemConfig cfg_;
  std::vector<std::unique_ptr<net::IProcess>> peers_;
  registers::BsrWriter writer_;
  ReplyProbe probe_;
};

TEST_F(CatchUpFixture, KilledMidAppendReplaysThenRefusesUntilQuorumCatchUp) {
  // Live phase: server 0 logs two completed writes...
  {
    PersistentRegisterServer server(ProcessId::server(0), cfg_, &sim_, Bytes{},
                                    tmp_.path());
    sim_.add_process(ProcessId::server(0), &server);
    write(Bytes(64, 'a'));
    write(Bytes(64, 'b'));
    sim_.mark_crashed(ProcessId::server(0));
  }  // ...and dies. (Destroyed only after mark_crashed: no dangling deliveries.)

  // A third write completes at the surviving n - f = 4 servers; server 0
  // never saw it, so WAL replay alone CANNOT restore it.
  write(Bytes(64, 'c'));

  // The kill also tore the tail of the final append (the 64-byte records
  // are longer than the 30 bytes chopped, so the tear lands mid-record).
  const auto size = std::filesystem::file_size(tmp_.path());
  std::filesystem::resize_file(tmp_.path(), size - 30);

  PersistentRegisterServer recovered(ProcessId::server(0), cfg_, &sim_, Bytes{},
                                     tmp_.path(),
                                     RecoveryPolicy::kCatchUpBeforeServe);
  EXPECT_EQ(recovered.recovered_records(), 1u) << "torn record must be dropped";
  EXPECT_GT(recovered.recovered_truncated_bytes(), 0u);
  ASSERT_FALSE(recovered.is_serving());
  sim_.add_process(ProcessId::server(0), &recovered);
  sim_.revive(ProcessId::server(0));

  // Proof obligation: between replay and catch-up completion the server
  // answers NOTHING -- queries and writes alike vanish into the refusal
  // counter.
  send_request(recovered, registers::MsgType::kQueryTag);
  send_request(recovered, registers::MsgType::kQueryData);
  send_request(recovered, registers::MsgType::kPutData);
  EXPECT_TRUE(probe_.replies.empty());
  EXPECT_EQ(recovered.refused_while_catching_up(), 3u);
  EXPECT_EQ(recovered.max_tag(0), (Tag{1, ProcessId::writer(0)}))
      << "the refused put must not have been applied either";

  recovered.begin_catch_up();
  ASSERT_TRUE(sim_.run_until([&] { return recovered.is_serving(); }));
  sim_.run_until_idle();

  // Catch-up recovered the write it missed while down.
  EXPECT_GE(recovered.catch_up_adopted(), 1u);
  EXPECT_EQ(recovered.max_tag(0), (Tag{3, ProcessId::writer(0)}));
  EXPECT_EQ(recovered.max_value(0), Bytes(64, 'c'));

  // Now -- and only now -- it answers.
  send_request(recovered, registers::MsgType::kQueryTag);
  ASSERT_EQ(probe_.replies.size(), 1u);
  const auto reply = registers::RegisterMessage::parse(probe_.replies[0].payload);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, registers::MsgType::kTagResp);
  EXPECT_EQ(reply->tag, (Tag{3, ProcessId::writer(0)}));
  EXPECT_EQ(recovered.refused_while_catching_up(), 3u) << "counter frozen once serving";
}

TEST_F(CatchUpFixture, EmptyWalStillRefusesThenAdoptsPeerState) {
  // Server 0 was down from the start: no WAL file, two writes completed at
  // its peers. A blank rejoin that served immediately could un-witness
  // them; the catch-up policy must adopt the peers' newest state first.
  sim_.mark_crashed(ProcessId::server(0));
  write(Bytes{'x'});
  write(Bytes{'y'});

  PersistentRegisterServer recovered(ProcessId::server(0), cfg_, &sim_, Bytes{},
                                     tmp_.path(),
                                     RecoveryPolicy::kCatchUpBeforeServe);
  EXPECT_EQ(recovered.recovered_records(), 0u);
  ASSERT_FALSE(recovered.is_serving());
  sim_.add_process(ProcessId::server(0), &recovered);
  sim_.revive(ProcessId::server(0));

  send_request(recovered, registers::MsgType::kQueryData);
  EXPECT_TRUE(probe_.replies.empty());
  EXPECT_EQ(recovered.refused_while_catching_up(), 1u);

  recovered.begin_catch_up();
  ASSERT_TRUE(sim_.run_until([&] { return recovered.is_serving(); }));
  sim_.run_until_idle();
  EXPECT_GE(recovered.catch_up_adopted(), 1u);
  EXPECT_EQ(recovered.max_tag(0), (Tag{2, ProcessId::writer(0)}));
  EXPECT_EQ(recovered.max_value(0), (Bytes{'y'}));
}

TEST(PersistentServerTest, CatchUpWithNoPeersFinishesImmediately) {
  // n = 1, f = 0: catch_up_quorum() is zero, so begin_catch_up flips the
  // server straight to serving (there is no one to sync from).
  TempFile tmp("solo");
  sim::Simulator sim(sim::SimConfig::with_fixed_delay(1, 10));
  registers::SystemConfig cfg;
  cfg.n = 1;
  cfg.f = 0;
  PersistentRegisterServer server(ProcessId::server(0), cfg, &sim, Bytes{},
                                  tmp.path(),
                                  RecoveryPolicy::kCatchUpBeforeServe);
  sim.add_process(ProcessId::server(0), &server);
  EXPECT_FALSE(server.is_serving());
  server.begin_catch_up();
  EXPECT_TRUE(server.is_serving());
  EXPECT_EQ(server.refused_while_catching_up(), 0u);
  EXPECT_EQ(server.catch_up_adopted(), 0u);
}

TEST(PersistentServerTest, ServeImmediatelyPolicyIsUnchanged) {
  // The default policy must behave exactly as before the membership layer:
  // up and answering from construction.
  TempFile tmp("immediate");
  sim::Simulator sim(sim::SimConfig::with_fixed_delay(1, 10));
  PersistentRegisterServer server(ProcessId::server(0), small_config(), &sim,
                                  Bytes{}, tmp.path());
  EXPECT_TRUE(server.is_serving());
  EXPECT_EQ(server.refused_while_catching_up(), 0u);
}

}  // namespace
}  // namespace bftreg::storage
