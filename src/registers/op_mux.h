// Operation multiplexer: many concurrent operations per client.
//
// The paper's model (Section II-A) is well-formed clients -- one operation
// at a time -- and the protocol clients were historically written that way:
// one QuorumTracker, one response map, one callback, guarded by busy().
// Nothing in the correctness argument actually needs that restriction on a
// *process*: the witness rule (Lemma 1/Lemma 5) and the quorum bound
// (Lemma 6) are counted per operation, so a client that keeps per-operation
// state can run dozens-to-hundreds of logically independent operations
// (across many shared variables) concurrently, exactly like issuing them
// from that many well-formed virtual clients.
//
// OpMux is that per-operation bookkeeping, factored out once:
//
//   * a table of in-flight PendingOps keyed by wire op id; responses are
//     routed to their operation by id, so a straggler from a completed or
//     retransmitted operation can never pollute a newer one;
//   * wire op ids namespaced per (client, object, protocol):
//     id = (ns_hash32 << 32) | seq32. Two concurrent reads of different
//     objects -- or a BSR read and a history read of the same object --
//     can never collide, and ids never repeat across operations;
//   * deadline-based timeouts with capped retransmission: an operation that
//     misses its deadline is re-issued under the SAME op id (so straggler
//     replies to the first attempt still count toward the quorum) with
//     multiplicative backoff, until the retry budget is exhausted and the
//     operation completes with its protocol's fallback state, flagged
//     timed_out.
//
// Protocol logic (what to send, how to count witnesses, when the operation
// is done) stays in PendingOp subclasses (protocol_ops.h); OpMux owns only
// the bookkeeping that used to be copy-pasted per client.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/transport.h"
#include "registers/config.h"
#include "registers/messages.h"
#include "registers/results.h"
#include "registers/view.h"

namespace bftreg::registers {

class OpMux;

/// Deadline/retry policy for one operation. The default (timeout 0) never
/// arms a timer: the operation waits for its quorum forever, which is the
/// paper's asynchronous model and the mode the deterministic protocol tests
/// run in.
struct RetryPolicy {
  /// Per-attempt deadline in transport ns; 0 disables timeouts entirely.
  TimeNs timeout{0};
  /// Retransmissions after the first attempt before giving up.
  uint32_t max_retries{0};
  /// Deadline multiplier per retransmission (values < 1 are treated as 1).
  double backoff{2.0};
};

/// One in-flight operation. Subclasses implement the protocol: what the
/// request looks like, how responses are tallied, and what the fallback
/// result is on timeout.
///
/// Lifecycle: OpMux::start() installs the op in the table and calls
/// send_request(); responses arrive via on_response(); the op ends by
/// calling detach_self() -- which removes it from the table so no further
/// response or timer can reach it -- and then invoking its user callback.
/// `this` is destroyed when the detached holder goes out of scope, so the
/// completion path must be the last thing a handler does.
class PendingOp {
 public:
  virtual ~PendingOp() = default;

  PendingOp(const PendingOp&) = delete;
  PendingOp& operator=(const PendingOp&) = delete;

  uint64_t op_id() const { return op_id_; }
  uint32_t object() const { return object_; }

 protected:
  PendingOp() = default;

  friend class OpMux;

  /// Sends the first attempt. Runs after the op is installed in the table.
  virtual void send_request() = 0;

  /// Re-issues the request after a missed deadline, under the same op id.
  /// Multi-phase ops should resend only the current phase's request.
  virtual void retransmit() { send_request(); }

  /// A server response carrying this op's id. `from` is deduplicated by
  /// nothing here -- protocols keep their own QuorumTracker per phase.
  virtual void on_response(const ProcessId& from, RegisterMessage msg) = 0;

  /// Retry budget exhausted. Implementations must complete the operation
  /// (detach_self + callback) with their fallback state; timed_out() is
  /// already true when this runs.
  virtual void on_timeout() = 0;

  // --- services provided by the mux --------------------------------------
  OpMux& mux() const { return *mux_; }
  const SystemConfig& config() const;
  net::Transport* transport() const;
  const ProcessId& self() const;
  TimeNs invoked_at() const { return invoked_at_; }
  uint32_t retries() const { return retries_; }
  bool timed_out() const { return timed_out_; }

  /// Sends to every member of the current view (not blindly 0..n-1), and
  /// stamps the view epoch into `msg` (hence non-const) plus into this op,
  /// so the mux can tell which in-flight ops straddle a later view change.
  void send_to_all_servers(RegisterMessage& msg);
  void send_to_server(uint32_t index, RegisterMessage& msg);

  /// The membership epoch under which this op last sent a request.
  uint64_t view_epoch() const { return view_epoch_; }

  /// Stamps the bookkeeping fields every result shares (timestamps, round
  /// count, retry/timeout outcome).
  void fill_result(OpResult& out, int rounds) const;

  /// Removes this op from the mux table and returns ownership. Call first
  /// on every completion path; the user callback may start new operations
  /// on the same mux without observing this one as in-flight.
  std::unique_ptr<PendingOp> detach_self();

 private:
  OpMux* mux_{nullptr};
  uint64_t op_id_{0};
  uint32_t object_{0};
  TimeNs invoked_at_{0};
  uint32_t retries_{0};
  uint64_t timer_gen_{0};
  bool timed_out_{false};
  RetryPolicy policy_{};
  TimeNs cur_timeout_{0};
  /// Epoch of the view this op last sent under; stale ops are retransmitted
  /// (same id -- earlier replies still count) when the view advances.
  uint64_t view_epoch_{0};
};

/// Protocol discriminator for op-id namespacing. Distinct kinds make the
/// (client, object, protocol) namespaces disjoint even when two protocol
/// flavors run over the same object concurrently.
enum class OpKind : uint8_t {
  kBsrRead = 1,
  kBcsrRead = 2,
  kHistoryRead = 3,
  kTwoRoundRead = 4,
  kWriteBackRead = 5,
  kWrite = 6,
  kBatchRead = 7,
};

/// Per-client table of in-flight operations. Not itself registered with the
/// transport: the owning client (RegisterClient or a legacy protocol class)
/// forwards its envelopes to on_message(). All methods must run in the
/// owning process's execution context (simulator event / mailbox thread);
/// like every protocol object in this repo, OpMux is single-threaded by
/// construction.
class OpMux final {
 public:
  OpMux(ProcessId self, SystemConfig config, net::Transport* transport);
  ~OpMux();

  OpMux(const OpMux&) = delete;
  OpMux& operator=(const OpMux&) = delete;

  /// Installs `op` under a fresh namespaced wire id and launches it.
  /// Returns the wire id (useful for tests; protocol code never needs it).
  uint64_t start(std::unique_ptr<PendingOp> op, OpKind kind, uint32_t object,
                 const RetryPolicy& policy = {});

  /// Routes a server response to its operation by op id. Envelopes that
  /// parse but match no in-flight op (stragglers of completed operations,
  /// Byzantine fabrications) are dropped here, in one place.
  void on_message(const net::Envelope& env);

  size_t in_flight() const { return ops_.size(); }
  bool idle() const { return ops_.empty(); }

  const ProcessId& id() const { return self_; }
  const SystemConfig& config() const { return config_; }
  net::Transport* transport() const { return transport_; }

  /// Operations that exhausted their retry budget.
  uint64_t timeouts() const { return timeouts_; }
  /// Deadline-triggered retransmissions across all operations.
  uint64_t retransmits() const { return retransmits_; }

  // --- dynamic membership -------------------------------------------------

  /// Current membership view (epoch 0 / full set until a change is seen).
  const MembershipView& view() const { return view_.view(); }
  uint64_t view_epoch() const { return view_.epoch(); }
  /// Retransmissions forced by a view change (ops that straddled an epoch
  /// boundary and were re-issued -- the "abort and retry" of the tentpole;
  /// same op id, so replies already collected still count).
  uint64_t view_retries() const { return view_retries_; }

 private:
  friend class PendingOp;

  std::unique_ptr<PendingOp> detach(uint64_t op_id);
  void arm_timer(PendingOp* op);
  void on_timer(uint64_t op_id, uint64_t gen);
  uint64_t allocate_op_id(OpKind kind, uint32_t object);
  /// The view advanced: re-issue every in-flight op that last sent under an
  /// older epoch. retransmit() never completes/detaches an op, so iterating
  /// the table while calling it is safe.
  void on_view_change();

  const ProcessId self_;
  const SystemConfig config_;
  net::Transport* const transport_;
  ViewTracker view_{config_};

  std::unordered_map<uint64_t, std::unique_ptr<PendingOp>> ops_;
  /// Namespace hash -> next sequence number (starts at 1; 0 is never used,
  /// so a wire id of 0 is never valid).
  std::unordered_map<uint32_t, uint32_t> next_seq_;

  /// Timer closures handed to Transport::post_after may outlive this mux
  /// (the transport drains queues on its own schedule); they hold this flag
  /// and become no-ops once the mux is gone.
  std::shared_ptr<std::atomic<bool>> alive_;

  uint64_t timeouts_{0};
  uint64_t retransmits_{0};
  uint64_t view_retries_{0};
};

}  // namespace bftreg::registers
