// TSan-focused stress tests: hammer the concurrency seams of the wall-clock
// runtime -- ThreadNetwork::send vs. stop, concurrent ConcurrentStats
// recording, racing first operations on ThreadCluster, and double-stop --
// from many threads at once. Labeled `slow`: the sanitizer CI jobs include
// it (`ctest --preset tsan`), quick local runs skip it (`ctest -LE slow`).
//
// The assertions here are deliberately weak (counts, liveness); the real
// oracle is ThreadSanitizer observing the interleavings.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "harness/thread_cluster.h"
#include "net/delay.h"
#include "net/transport.h"
#include "runtime/thread_network.h"

namespace bftreg {
namespace {

/// Counts messages; replies to nothing.
class SinkProcess : public net::IProcess {
 public:
  void on_start() override {}
  void on_message(const net::Envelope&) override { received_.fetch_add(1); }
  uint64_t received() const { return received_.load(); }

 private:
  std::atomic<uint64_t> received_{0};
};

TEST(RaceStress, ConcurrentSendersAgainstStop) {
  constexpr size_t kProcs = 4;
  constexpr size_t kSenders = 8;
  constexpr int kMsgsPerSender = 2000;

  runtime::RuntimeConfig rc;
  rc.seed = 7;
  // A delay model keeps the scheduler thread and its queue in play.
  rc.delay = std::make_unique<net::UniformDelay>(0, 20'000);  // 0-20us
  runtime::ThreadNetwork net(std::move(rc));

  std::vector<SinkProcess> procs(kProcs);
  for (size_t i = 0; i < kProcs; ++i) {
    net.add_process(ProcessId::server(static_cast<uint32_t>(i)), &procs[i]);
  }
  net.start();

  std::atomic<bool> go{false};
  std::vector<std::thread> senders;
  for (size_t s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kMsgsPerSender; ++i) {
        const auto from = ProcessId::server(static_cast<uint32_t>(s % kProcs));
        const auto to =
            ProcessId::server(static_cast<uint32_t>((s + i + 1) % kProcs));
        net.send(from, to, Bytes{1, 2, 3, static_cast<uint8_t>(i)});
      }
    });
  }
  go.store(true);
  // Stop while senders are still pushing: sends racing shutdown must be
  // dropped or delivered cleanly, never crash or corrupt.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  net.stop();
  for (auto& t : senders) t.join();

  uint64_t delivered = 0;
  for (const auto& p : procs) delivered += p.received();
  EXPECT_LE(delivered, static_cast<uint64_t>(kSenders) * kMsgsPerSender);
  // stop() again must be a no-op (idempotence contract).
  net.stop();
}

TEST(RaceStress, ConcurrentStatsRecording) {
  constexpr int kThreads = 16;
  constexpr int kPerThread = 20'000;

  ConcurrentStats stats;
  std::vector<std::thread> recorders;
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&stats, t] {
      for (int i = 0; i < kPerThread; ++i) {
        stats.add(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  // Snapshot concurrently with the recorders to exercise reader/writer
  // contention, not just writer/writer.
  std::thread snapshotter([&stats] {
    for (int i = 0; i < 200; ++i) {
      const OnlineStats snap = stats.snapshot();
      ASSERT_LE(snap.min(), snap.max());
      std::this_thread::yield();
    }
  });
  for (auto& t : recorders) t.join();
  snapshotter.join();

  EXPECT_EQ(stats.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.max(), kThreads * kPerThread - 1.0);
}

TEST(RaceStress, ThreadClusterRacingFirstOperations) {
  harness::ThreadClusterOptions opts;
  opts.protocol = harness::Protocol::kBsr;
  opts.config.n = 5;
  opts.config.f = 1;
  opts.config.initial_value = Bytes{0};
  opts.num_writers = 2;
  opts.num_readers = 2;
  opts.seed = 11;

  harness::ThreadCluster cluster(std::move(opts));

  // Four client threads issue their first operation at once: the implicit
  // start() races by design (call_once picks a winner). Operations block
  // until the protocol completes, so finishing all of them is the liveness
  // assertion.
  std::vector<std::thread> clients;
  std::atomic<int> completed{0};
  for (int w = 0; w < 2; ++w) {
    clients.emplace_back([&, w] {
      for (int i = 0; i < 10; ++i) {
        const auto r = cluster.write(static_cast<size_t>(w),
                                     Bytes{static_cast<uint8_t>(w), 1});
        if (r.completed_at >= r.invoked_at) completed.fetch_add(1);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    clients.emplace_back([&, r] {
      for (int i = 0; i < 10; ++i) {
        const auto res = cluster.read(static_cast<size_t>(r));
        if (res.completed_at >= res.invoked_at) completed.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(completed.load(), 40);

  // Concurrent double-stop: only the winner shuts down, the rest no-op.
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) stoppers.emplace_back([&] { cluster.stop(); });
  for (auto& t : stoppers) t.join();
}

}  // namespace
}  // namespace bftreg
