// Lock-free delivery shard for the threaded transports.
//
// A `MailboxShard` replaces the mutex+deque mailbox: producers (sender and
// socket-reader threads) publish `MailItem`s into a bounded MPSC ring
// (common/mpsc_ring.h) and the one consumer thread that owns the shard
// drains them in batches. The mutex+CondVar pair survives only on the cold
// paths: parking an idle consumer, and spilling items when the ring is full
// (reliable channels must not drop, so overflow diverts to a guarded deque
// instead of failing the send).
//
// Idle/wake handshake (the only seq_cst in the mailbox): a sleeping
// consumer must not miss a push, and a producer must not futex-wake a
// consumer that is busy draining. Classic store/load (Dekker) pattern:
//
//   consumer                          producer
//   idle_ = true          (relaxed)   ring push / overflow push
//   fence(seq_cst)                    fence(seq_cst)
//   ring empty? overflow empty?       idle_ ?
//   yes -> cv wait                    true -> lock mu_, notify
//
// The two seq_cst fences totally order each side's store before its load:
// either the producer's push is visible to the consumer's emptiness check
// (consumer does not sleep), or the consumer's idle_ store is visible to
// the producer's load (producer notifies). The notify itself is taken
// under mu_, which the consumer holds from before setting idle_ until
// cv_.wait() releases it -- so a notify can never fall between the
// consumer's last check and its wait. Steady-state traffic touches neither
// mu_ nor the futex.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/mpsc_ring.h"
#include "common/sync.h"
#include "net/envelope.h"

namespace bftreg::net {
class IProcess;
}

namespace bftreg::runtime {

/// One unit of mailbox work. Deliveries carry the envelope inline (no
/// per-message closure allocation -- the old deque<function> mailbox heap-
/// allocated a capture block for every envelope); tasks (on_start, post,
/// timer fire) carry a closure.
struct MailItem {
  /// Non-null: deliver `env` to this process. Null: run `fn`.
  net::IProcess* proc{nullptr};
  net::Envelope env;
  std::function<void()> fn;
  /// The process delivery shard this item targets (IProcess::shard_of).
  /// Consumers key their on_batch_begin/on_batch_end brackets on
  /// (proc, shard) while draining a batch.
  uint32_t shard{0};
};

class MailboxShard {
 public:
  static constexpr size_t kDefaultRingCapacity = 1024;

  explicit MailboxShard(size_t ring_capacity = kDefaultRingCapacity)
      : ring_(ring_capacity) {}

  MailboxShard(const MailboxShard&) = delete;
  MailboxShard& operator=(const MailboxShard&) = delete;

  /// Producer side; any thread. Never drops. Returns true when the ring
  /// was full and the item spilled to the overflow deque (callers count it
  /// in their transport metrics).
  bool push_item(MailItem&& item) {
    bool spilled = false;
    if (!ring_.try_push(item)) {
      MutexLock lock(mu_);
      overflow_.push_back(std::move(item));
      spilled_.store(true, std::memory_order_release);
      spilled = true;
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (idle_.load(std::memory_order_relaxed)) {
      // Transition wake: idle_ is only set by a consumer that found both
      // queues empty, so this fires once per sleep, not once per message.
      MutexLock lock(mu_);
      cv_.notify_one();
    }
    return spilled;
  }

  /// Consumer side; single thread only. Invokes `fn(item)` on the next
  /// batch of items, blocking while the shard is empty. Returns false only
  /// when stop() was called and everything already pushed has been
  /// drained; callers loop `while (pop_wait_consume(fn)) {}`.
  template <typename Fn>
  bool pop_wait_consume(Fn&& fn) {
    bool yielded = false;
    for (;;) {
      size_t handled = ring_.consume_batch(fn, ring_.capacity());
      if (spilled_.load(std::memory_order_acquire)) {
        // Move spilled items out before invoking handlers: fn may send,
        // and sending can take another shard's mu_ -- never nest that
        // under ours.
        std::vector<MailItem> spill;
        {
          MutexLock lock(mu_);
          while (!overflow_.empty()) {
            spill.push_back(std::move(overflow_.front()));
            overflow_.pop_front();
          }
          spilled_.store(false, std::memory_order_relaxed);
        }
        for (MailItem& item : spill) fn(item);
        handled += spill.size();
      }
      if (handled > 0) return true;

      // One yield before parking: on a loaded box the producer that is
      // about to feed us is often runnable on this core right now, and
      // letting it run skips a futex wait/wake round trip. Bounded to a
      // single attempt so a truly idle shard still parks promptly.
      if (!yielded) {
        yielded = true;
        std::this_thread::yield();
        continue;
      }

      MutexLock lock(mu_);
      idle_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (!ring_.empty() || !overflow_.empty()) {
        idle_.store(false, std::memory_order_relaxed);
        continue;
      }
      if (stopped_.load(std::memory_order_acquire)) {
        idle_.store(false, std::memory_order_relaxed);
        return false;
      }
      cv_.wait(lock);
      idle_.store(false, std::memory_order_relaxed);
    }
  }

  /// Unblocks the consumer; pop_wait keeps returning batches until the
  /// shard is fully drained, then returns false. Idempotent; any thread.
  void stop() {
    stopped_.store(true, std::memory_order_release);
    MutexLock lock(mu_);
    cv_.notify_all();
  }

 private:
  common::MpscRing<MailItem> ring_;
  Mutex mu_;
  CondVar cv_;
  std::deque<MailItem> overflow_ GUARDED_BY(mu_);
  /// Set under mu_ by a spilling producer, cleared under mu_ by the
  /// consumer; the lock-free acquire load in pop_wait only decides whether
  /// to bother taking the lock.
  std::atomic<bool> spilled_{false};
  std::atomic<bool> idle_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace bftreg::runtime
