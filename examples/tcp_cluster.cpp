// tcp_cluster: the BSR register over REAL TCP sockets.
//
// Every server and client binds its own loopback TCP port; frames travel
// through the kernel with length prefixes and SipHash MACs. The protocol
// objects are byte-for-byte the ones the deterministic simulator verifies
// -- the transport is the only thing that changed, which is the repo's
// central design claim (DESIGN.md §6.1). Pointing the address book at
// other hosts would distribute the emulation for real.
//
//   ./build/examples/tcp_cluster
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "registers/registers.h"
#include "socknet/tcp_network.h"

using namespace bftreg;

int main() {
  socknet::TcpNetwork net(socknet::TcpConfig{});

  registers::SystemConfig cfg;
  cfg.n = 5;
  cfg.f = 1;

  std::vector<std::unique_ptr<registers::RegisterServer>> servers;
  for (uint32_t i = 0; i < cfg.n; ++i) {
    servers.push_back(std::make_unique<registers::RegisterServer>(
        ProcessId::server(i), cfg, &net, Bytes{}));
    net.add_process(ProcessId::server(i), servers.back().get());
  }
  registers::BsrWriter writer(ProcessId::writer(0), cfg, &net);
  registers::BsrReader reader(ProcessId::reader(0), cfg, &net);
  net.add_process(ProcessId::writer(0), &writer);
  net.add_process(ProcessId::reader(0), &reader);
  net.start();

  std::printf("BSR over TCP loopback (n=%zu, f=%zu)\n", cfg.n, cfg.f);
  for (uint32_t i = 0; i < cfg.n; ++i) {
    std::printf("  server:%u listening on 127.0.0.1:%u\n", i,
                net.port_of(ProcessId::server(i)));
  }
  std::printf("\n");

  auto do_write = [&](const std::string& v) {
    std::promise<void> done;
    net.post(ProcessId::writer(0), [&] {
      writer.start_write(Bytes(v.begin(), v.end()),
                         [&](const registers::WriteResult&) { done.set_value(); });
    });
    done.get_future().wait();
  };
  auto do_read = [&] {
    std::promise<std::string> out;
    net.post(ProcessId::reader(0), [&] {
      reader.start_read([&](const registers::ReadResult& r) {
        out.set_value(std::string(r.value.begin(), r.value.end()));
      });
    });
    return out.get_future().get();
  };

  do_write("over-the-wire");
  std::printf("write(\"over-the-wire\"), read() -> \"%s\"\n\n", do_read().c_str());

  Samples reads, writes;
  for (int i = 0; i < 200; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    do_write("v" + std::to_string(i));
    writes.add(std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - t0)
                   .count());
    t0 = std::chrono::steady_clock::now();
    (void)do_read();
    reads.add(std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
  }
  const auto m = net.metrics().snapshot();
  std::printf("200 write+read pairs over kernel sockets:\n");
  std::printf("  read : median %.0f us, p99 %.0f us   (one-shot: 1 RTT)\n",
              reads.median(), reads.p99());
  std::printf("  write: median %.0f us, p99 %.0f us   (two rounds: 2 RTT)\n",
              writes.median(), writes.p99());
  std::printf("  %llu messages, %llu bytes on the wire, %llu auth failures\n",
              static_cast<unsigned long long>(m.messages_sent),
              static_cast<unsigned long long>(m.bytes_sent),
              static_cast<unsigned long long>(m.auth_failures));

  net.stop();
  return 0;
}
